// Figure 2 — Effect of taking into account RIC information.
//
// Setup (paper): 10^3 nodes, 2*10^4 4-way join queries, theta = 0.9;
// snapshots after 50/100/200/400 tuples. Three planners are compared:
// Worst (always the worst placement), Random, and RJoin (RIC-driven), with
// RJoin's RIC-request traffic shown separately.
//
// Series reproduced: (a) total messages per node, (b) query processing load
// per node, (c) storage load per node.

#include <iostream>

#include "bench/bench_common.h"
#include "stats/reporter.h"

using namespace rjoin;

int main() {
  const std::vector<size_t> kCheckpoints =
      bench::ScaledCounts({50, 100, 200, 400});

  struct Variant {
    const char* label;
    core::PlannerPolicy policy;
    bool charge_ric;
  };
  const Variant kVariants[] = {
      {"Worst", core::PlannerPolicy::kWorst, false},
      {"Random", core::PlannerPolicy::kRandom, false},
      {"RJoin", core::PlannerPolicy::kRic, true},
  };

  workload::ExperimentConfig base = bench::PaperBaseConfig(2);
  base.num_tuples = kCheckpoints.back();
  base.checkpoints = kCheckpoints;
  // Full Section 6 candidate set: value triples and attribute pairs. This
  // is what lets "Worst" pick genuinely terrible placements.
  base.rewrite_levels = core::RewriteIndexLevels::kIncludeAttribute;
  bench::PrintHeader("Figure 2: effect of RIC information", base);
  bench::JsonReporter json("fig2_ric_effect",
                           "Figure 2: effect of RIC information", base);

  bench::RunRepeated(json, [&] {
    std::vector<std::vector<double>> msgs(3), qpl(3), storage(3);
    std::vector<double> ric_requests;

    for (size_t v = 0; v < 3; ++v) {
      workload::ExperimentConfig cfg = base;
      cfg.policy = kVariants[v].policy;
      cfg.charge_ric = kVariants[v].charge_ric;
      workload::Experiment experiment(cfg);
      auto result = experiment.Run();
      json.AddTuplesProcessed(result.num_tuples);
      for (const auto& snap : result.snapshots) {
        msgs[v].push_back(bench::PerNode(snap.messages));
        qpl[v].push_back(bench::PerNode(snap.qpl));
        storage[v].push_back(bench::PerNode(snap.storage));
        if (kVariants[v].policy == core::PlannerPolicy::kRic) {
          ric_requests.push_back(bench::PerNode(snap.ric_messages));
        }
      }
    }

    std::vector<double> xs(kCheckpoints.begin(), kCheckpoints.end());

    stats::TableReporter a("Fig 2(a): total messages per node", "# tuples");
    a.set_x(xs);
    for (size_t v = 0; v < 3; ++v) {
      a.AddSeries({kVariants[v].label, msgs[v]});
    }
    a.AddSeries({"RequestRIC", ric_requests});
    a.Print(std::cout);
    json.AddChart(a);

    stats::TableReporter b("Fig 2(b): query processing load per node",
                           "# tuples");
    b.set_x(xs);
    for (size_t v = 0; v < 3; ++v) {
      b.AddSeries({kVariants[v].label, qpl[v]});
    }
    b.Print(std::cout);
    json.AddChart(b);

    stats::TableReporter c("Fig 2(c): storage load per node", "# tuples");
    c.set_x(xs);
    for (size_t v = 0; v < 3; ++v) {
      c.AddSeries({kVariants[v].label, storage[v]});
    }
    c.Print(std::cout);
    json.AddChart(c);
  });
  json.Write();

  return 0;
}
