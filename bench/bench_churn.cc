// Churn — live topology churn during the tuple stream (docs/churn.md).
//
// Not a paper figure: the paper's Section 2 assumes the DHT hides network
// dynamism; this bench measures what that dynamism costs the engine once
// joins and graceful leaves are first-class in-band events. Sweeps the
// churn rate (operations per published tuple) and reports:
//   (a) delivered answers and answers/sec vs churn rate (completeness is
//       asserted by tests; the bench tracks throughput cost),
//   (b) handoff volume: StateHandoff messages, moved records, approximate
//       bytes,
//   (c) recovery: mean virtual ticks (and runtime rounds) from handoff
//       emission to installation, plus post-churn forwarded payloads.

#include <chrono>
#include <iostream>

#include "bench/bench_common.h"
#include "stats/reporter.h"

using namespace rjoin;

int main() {
  const std::vector<double> kRates = {0.0, 0.1, 0.25, 0.5, 1.0};

  workload::ExperimentConfig base = bench::PaperBaseConfig(21);
  base.num_tuples = bench::ScaledCount(400);
  bench::PrintHeader("Churn: live topology churn vs throughput", base);
  bench::JsonReporter json("churn", "Live topology churn during the stream",
                           base);

  bench::RunRepeated(json, [&] {
    std::vector<double> xs;
    std::vector<double> answers_series, answers_per_sec_series;
    std::vector<double> handoff_msgs_series, handoff_records_series;
    std::vector<double> handoff_bytes_series, recovery_rounds_series;
    std::vector<double> forwarded_series, msgs_per_node_series;

    for (double rate : kRates) {
      workload::ExperimentConfig cfg = base;
      if (rate > 0.0) {
        workload::ChurnSpec churn;
        churn.rate = rate;
        // Half the leave victims are startup spares, the rest are joiners
        // departing again — both directions of id movement.
        churn.spare_nodes = std::max<size_t>(
            2, static_cast<size_t>(rate * cfg.num_tuples / 4));
        cfg.churn = churn;
      }
      workload::Experiment experiment(cfg);
      const auto start = std::chrono::steady_clock::now();
      auto result = experiment.Run();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      json.AddTuplesProcessed(result.num_tuples);

      const auto& cs = experiment.engine().churn_stats();
      const uint64_t ops = cs.joins_applied + cs.leaves_applied;
      const double lookahead =
          experiment.runtime() != nullptr
              ? static_cast<double>(experiment.runtime()->lookahead())
              : 1.0;
      const double recovery_rounds =
          cs.handoffs_installed == 0
              ? 0.0
              : static_cast<double>(cs.handoff_recovery_ticks) /
                    static_cast<double>(cs.handoffs_installed) / lookahead;

      xs.push_back(rate);
      answers_series.push_back(static_cast<double>(result.answers_delivered));
      answers_per_sec_series.push_back(
          secs > 0.0 ? static_cast<double>(result.answers_delivered) / secs
                     : 0.0);
      handoff_msgs_series.push_back(static_cast<double>(cs.handoff_messages));
      handoff_records_series.push_back(static_cast<double>(
          cs.handoff_queries + cs.handoff_tuples + cs.handoff_altt +
          cs.handoff_rates));
      handoff_bytes_series.push_back(static_cast<double>(cs.handoff_bytes));
      recovery_rounds_series.push_back(recovery_rounds);
      forwarded_series.push_back(static_cast<double>(cs.forwarded_messages));
      msgs_per_node_series.push_back(result.MsgsPerNodePerTuple());

      std::cout << "rate=" << rate << ": ops=" << ops
                << " handoffs=" << cs.handoff_messages
                << " records=" << handoff_records_series.back()
                << " bytes=" << cs.handoff_bytes
                << " recovery_rounds=" << recovery_rounds
                << " forwarded=" << cs.forwarded_messages
                << " answers=" << result.answers_delivered
                << " answers/s=" << answers_per_sec_series.back() << "\n";
    }

    stats::TableReporter a("Churn (a): answers vs churn rate",
                           "churn ops per tuple");
    a.set_x(xs);
    a.AddSeries({"AnswersDelivered", answers_series});
    a.AddSeries({"AnswersPerSec", answers_per_sec_series});
    a.AddSeries({"MsgsPerNodePerTuple", msgs_per_node_series});
    a.Print(std::cout);
    json.AddChart(a);

    stats::TableReporter b("Churn (b): handoff volume", "churn ops per tuple");
    b.set_x(xs);
    b.AddSeries({"HandoffMessages", handoff_msgs_series});
    b.AddSeries({"HandoffRecords", handoff_records_series});
    b.AddSeries({"HandoffBytes", handoff_bytes_series});
    b.Print(std::cout);
    json.AddChart(b);

    stats::TableReporter c("Churn (c): recovery", "churn ops per tuple");
    c.set_x(xs);
    c.AddSeries({"RecoveryRounds", recovery_rounds_series});
    c.AddSeries({"ForwardedPayloads", forwarded_series});
    c.Print(std::cout);
    json.AddChart(c);

    // Trajectory scalars: the highest-churn point, so the cost of churn is
    // one number per PR.
    json.AddScalar("max_rate_handoff_bytes", handoff_bytes_series.back());
    json.AddScalar("max_rate_handoff_messages", handoff_msgs_series.back());
    json.AddScalar("max_rate_recovery_rounds", recovery_rounds_series.back());
    json.AddScalar("max_rate_answers_per_sec", answers_per_sec_series.back());
    json.AddScalar("zero_rate_answers_per_sec",
                   answers_per_sec_series.front());
  });
  json.Write();
  return 0;
}
