// Figure 4 — Effect of increasing the number of indexed queries.
//
// Setup (paper): 10^3 nodes; 2k/4k/8k/16k/32k 4-way join queries; then 10^3
// tuples. Series: (a) per-tuple traffic (total vs RIC), (b)/(c) ranked QPL
// and SL distributions per query count.

#include <iostream>

#include "bench/bench_common.h"
#include "stats/reporter.h"

using namespace rjoin;

int main() {
  const std::vector<size_t> kQueryCounts = {2000, 4000, 8000, 16000, 32000};

  workload::ExperimentConfig base = bench::PaperBaseConfig(4);
  base.num_tuples = bench::ScaledCount(1000);
  base.rewrite_levels = core::RewriteIndexLevels::kIncludeAttribute;
  bench::PrintHeader("Figure 4: effect of increasing indexed queries", base);
  bench::JsonReporter json("fig4_queries",
                           "Figure 4: effect of increasing indexed queries",
                           base);

  bench::RunRepeated(json, [&] {
    std::vector<double> xs, total_series, ric_series;
    std::vector<std::string> labels;
    std::vector<stats::RankedDistribution> qpl_dists, sl_dists;

    for (size_t q : kQueryCounts) {
      workload::ExperimentConfig cfg = base;
      cfg.num_queries =
          std::max<size_t>(16, static_cast<size_t>(q * bench::AppliedScale()));
      workload::Experiment experiment(cfg);
      auto result = experiment.Run();
      json.AddTuplesProcessed(result.num_tuples);

      xs.push_back(static_cast<double>(q) / 1000.0);
      total_series.push_back(result.MsgsPerNodePerTuple());
      ric_series.push_back(result.RicMsgsPerNodePerTuple());
      labels.push_back(std::to_string(q / 1000) + "K queries");
      qpl_dists.push_back(bench::Ranked(result.final_snapshot.qpl));
      sl_dists.push_back(bench::Ranked(result.final_snapshot.storage));
    }

    stats::TableReporter a("Fig 4(a): messages per node per tuple",
                           "# queries (x1000)");
    a.set_x(xs);
    a.AddSeries({"TotalHops", total_series});
    a.AddSeries({"RequestRIC", ric_series});
    a.Print(std::cout);
    json.AddChart(a);

    PrintRankedFigure(std::cout, "Fig 4(b): query processing load", labels,
                      qpl_dists);
    PrintRankedFigure(std::cout, "Fig 4(c): storage load", labels, sl_dists);
    json.AddRankedChart("Fig 4(b): query processing load", labels, qpl_dists);
    json.AddRankedChart("Fig 4(c): storage load", labels, sl_dists);
  });
  json.Write();
  return 0;
}
