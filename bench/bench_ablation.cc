// Ablation study — the design choices DESIGN.md calls out, each toggled
// independently on the paper's base workload:
//
//  (1) Section 7 reuse: candidate-table caching + RIC piggy-backing
//      vs paying the full k*O(log N) RIC chain for every indexing decision.
//  (2) Rewrite candidate levels: Section 3's value-preferred placement vs
//      the full Section 6 candidate set (with attribute-level pairs).
//  (3) Attribute-level query replication ([18]): load on the hottest
//      attribute-level rendezvous vs the messaging overhead it costs.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "stats/reporter.h"

using namespace rjoin;

namespace {

struct Row {
  std::string label;
  double total_msgs_per_node = 0;
  double ric_msgs_per_node = 0;
  double qpl_per_node = 0;
  uint64_t max_qpl = 0;
};

Row RunVariant(const std::string& label, workload::ExperimentConfig cfg) {
  workload::Experiment experiment(cfg);
  auto result = experiment.Run();
  Row row;
  row.label = label;
  row.total_msgs_per_node = result.TotalMsgsPerNode();
  row.ric_msgs_per_node = result.RicMsgsPerNode();
  row.qpl_per_node = result.QplPerNode();
  for (uint64_t v : result.final_snapshot.qpl) {
    row.max_qpl = std::max(row.max_qpl, v);
  }
  return row;
}

}  // namespace

int main() {
  workload::ExperimentConfig base = bench::PaperBaseConfig(42);
  base.num_tuples = bench::ScaledCount(400);
  bench::PrintHeader("Ablation study", base);
  bench::JsonReporter json("ablation", "Ablation study", base);

  std::vector<Row> rows;

  bench::RunRepeated(json, [&] {
    rows.clear();
    {
      workload::ExperimentConfig cfg = base;
      rows.push_back(RunVariant("RJoin (all optimizations)", cfg));
    }
    {
      workload::ExperimentConfig cfg = base;
      cfg.reuse_ric_info = false;
      rows.push_back(RunVariant("no CT/piggyback reuse (S7 off)", cfg));
    }
    {
      workload::ExperimentConfig cfg = base;
      cfg.charge_ric = false;
      rows.push_back(RunVariant("free statistics (oracle RIC)", cfg));
    }
    {
      workload::ExperimentConfig cfg = base;
      cfg.rewrite_levels = core::RewriteIndexLevels::kIncludeAttribute;
      rows.push_back(RunVariant("full S6 candidate set", cfg));
    }
    {
      workload::ExperimentConfig cfg = base;
      cfg.attr_replication = 4;
      rows.push_back(RunVariant("attr replication r=4", cfg));
    }
    json.AddTuplesProcessed(rows.size() * base.num_tuples);

    std::vector<double> xs;
    stats::Series msgs{"msgs_per_node", {}}, ric{"ric_per_node", {}},
        qpl{"qpl_per_node", {}}, max_qpl{"max_qpl", {}};
    for (size_t i = 0; i < rows.size(); ++i) {
      xs.push_back(static_cast<double>(i));
      msgs.values.push_back(rows[i].total_msgs_per_node);
      ric.values.push_back(rows[i].ric_msgs_per_node);
      qpl.values.push_back(rows[i].qpl_per_node);
      max_qpl.values.push_back(static_cast<double>(rows[i].max_qpl));
      json.AddScalar(rows[i].label + " msgs/node",
                     rows[i].total_msgs_per_node);
    }
    json.AddChart("Ablations (per-node averages)", "variant index", xs,
                  {msgs, ric, qpl, max_qpl});
  });
  json.Write();

  std::cout << "== Ablations (per-node averages over the whole run) ==\n";
  printf("%-34s %14s %14s %14s %12s\n", "variant", "msgs/node", "ric/node",
         "QPL/node", "max QPL");
  for (const Row& r : rows) {
    printf("%-34s %14.1f %14.1f %14.1f %12llu\n", r.label.c_str(),
           r.total_msgs_per_node, r.ric_msgs_per_node, r.qpl_per_node,
           static_cast<unsigned long long>(r.max_qpl));
  }
  std::cout << "\nReadings: S7 reuse cuts RIC traffic roughly in half; "
               "'free statistics' shows the\npure algorithm traffic floor; "
               "the full S6 candidate set trades extra options\nfor the "
               "finite-Delta ALTT caveat (see planner.h). Replication "
               "spreads the\nattribute-level rendezvous load across shards "
               "(measured directly in\nReplicationTest.SpreadsAttributeLevel"
               "Load) at the cost of extra copies of\nqueries and their "
               "global QPL.\n";
  return 0;
}
