// Runtime scaling — serial simulator vs the sharded parallel runtime at
// S = {1, 2, 4, 8} worker threads on the Figure-3-style workload (paper
// base setup, full Section 6 candidate set), streamed in pipelined mode so
// cascades from many tuples are in flight at once — the steady-state load a
// production deployment would see.
//
// Reported: wall-clock seconds and tuples/sec per configuration, plus
// speedups relative to the 1-shard runtime (S >= 1 runs execute the
// identical event schedule, so the speedup is pure runtime efficiency; the
// serial row uses live RIC rates and is listed for reference). Shard counts
// above the machine's core count cannot speed up — "hardware_threads"
// records what the numbers were measured on.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "stats/reporter.h"
#include "util/logging.h"

using namespace rjoin;

namespace {

struct Row {
  std::string label;
  uint32_t shards = 0;  // 0 = serial simulator
  double wall_seconds = 0;
  double tuples_per_sec = 0;
  uint64_t answers = 0;
  uint64_t total_messages = 0;
  uint64_t watermark_stalls = 0;  // worker park episodes (perf signal)
  double overlap_ratio = 0;       // barriers eliminated vs lockstep rounds
};

Row RunConfig(workload::ExperimentConfig cfg, uint32_t shards,
              const std::string& label) {
  cfg.shards = shards;
  workload::Experiment experiment(cfg);
  const auto start = std::chrono::steady_clock::now();
  auto result = experiment.Run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  Row row;
  row.label = label;
  row.shards = workload::ResolveShardCount(shards);  // kForceSerial -> 0
  row.wall_seconds = wall;
  row.tuples_per_sec =
      wall > 0 ? static_cast<double>(result.num_tuples) / wall : 0;
  row.answers = result.answers_delivered;
  row.total_messages = result.per_tuple.back().total_messages;
  if (experiment.runtime() != nullptr) {
    const auto sched = experiment.runtime()->scheduler_stats();
    row.watermark_stalls = sched.watermark_stalls;
    row.overlap_ratio = sched.overlap_ratio();
  }
  return row;
}

}  // namespace

int main() {
  workload::ExperimentConfig cfg = bench::PaperBaseConfig(3);
  cfg.num_tuples = bench::ScaledCount(2560);
  cfg.rewrite_levels = core::RewriteIndexLevels::kIncludeAttribute;
  cfg.pipeline_stream = true;  // keep many tuple cascades in flight
  cfg.tuple_gap = 8;
  // round_width stays 0: the watermark scheduler needs no overlap cap —
  // epochs stretch to RIC-epoch boundaries and shards overlap freely in
  // between, with exact 1-tick message timing throughout.
  bench::PrintHeader("Runtime scaling: serial vs sharded workers", cfg);
  bench::JsonReporter json("runtime_scaling",
                           "Runtime scaling: serial vs sharded workers", cfg);

  bench::RunRepeated(json, [&] {
    std::vector<Row> rows;
    // kForceSerial, not 0: the baseline must stay on the legacy serial
    // simulator even when RJOIN_SHARDS is set (as in the sharded CI job).
    rows.push_back(RunConfig(cfg, workload::ExperimentConfig::kForceSerial,
                             "serial simulator"));
    json.AddTuplesProcessed(cfg.num_tuples);
    for (uint32_t s : {1u, 2u, 4u, 8u}) {
      rows.push_back(RunConfig(cfg, s, "shards=" + std::to_string(s)));
      json.AddTuplesProcessed(cfg.num_tuples);
    }

    // Sharded runs execute one deterministic schedule: any divergence
    // between S values is a runtime bug, so check it on every bench run.
    for (size_t i = 2; i < rows.size(); ++i) {
      RJOIN_CHECK(rows[i].answers == rows[1].answers &&
                  rows[i].total_messages == rows[1].total_messages)
          << rows[i].label << " diverged from shards=1: answers "
          << rows[i].answers << " vs " << rows[1].answers << ", messages "
          << rows[i].total_messages << " vs " << rows[1].total_messages;
    }

    const double base_tps = rows[1].tuples_per_sec;  // shards=1 runtime
    std::vector<double> xs;
    stats::Series tps{"tuples_per_sec", {}}, wall{"wall_seconds", {}},
        speedup{"speedup_vs_s1", {}};
    printf("%-18s %12s %14s %12s %12s %14s %10s %9s\n", "config", "wall s",
           "tuples/s", "speedup", "answers", "messages", "stalls", "overlap");
    for (const Row& r : rows) {
      const double sp = base_tps > 0 ? r.tuples_per_sec / base_tps : 0;
      xs.push_back(static_cast<double>(r.shards));
      tps.values.push_back(r.tuples_per_sec);
      wall.values.push_back(r.wall_seconds);
      speedup.values.push_back(sp);
      printf("%-18s %12.3f %14.0f %11.2fx %12llu %14llu %10llu %9.3f\n",
             r.label.c_str(), r.wall_seconds, r.tuples_per_sec, sp,
             static_cast<unsigned long long>(r.answers),
             static_cast<unsigned long long>(r.total_messages),
             static_cast<unsigned long long>(r.watermark_stalls),
             r.overlap_ratio);
      json.AddScalar(r.label + " tuples_per_sec", r.tuples_per_sec);
    }
    // Scheduler-health trajectory scalars, from the widest sharded run: the
    // overlap ratio is the fraction of the old lockstep barrier schedule the
    // watermark model eliminated (deterministic); stalls count worker park
    // episodes (wall-clock-dependent, perf signal only).
    const Row& widest = rows.back();
    json.AddScalar("watermark_stalls",
                   static_cast<double>(widest.watermark_stalls));
    json.AddScalar("overlap_ratio", widest.overlap_ratio);
    json.AddChart("Streaming throughput vs worker shards",
                  "shards (0 = serial)", xs, {tps, wall, speedup});
    json.AddScalar("speedup_s2_vs_s1", speedup.values[2]);
    json.AddScalar("speedup_s4_vs_s1", speedup.values[3]);
    json.AddScalar("speedup_s8_vs_s1", speedup.values[4]);
    // The trajectory scalar: best sharded throughput over the legacy serial
    // simulator (rows[0]); bounded by hardware_threads on small machines.
    double best_sharded_tps = 0;
    for (size_t i = 1; i < rows.size(); ++i) {
      best_sharded_tps = std::max(best_sharded_tps, rows[i].tuples_per_sec);
    }
    json.AddSpeedup("speedup_sharded_vs_serial", rows[0].tuples_per_sec,
                    best_sharded_tps);
  });
  json.Write();

  json.PrintMessagePlane(std::cout);

  std::cout << "All sharded runs produced identical answers and message "
               "counts (checked).\nSpeedup is bounded by hardware_threads; "
               "see BENCH_runtime_scaling.json.\n";
  return 0;
}
