// Figure 3 — Effect of increasing the number of incoming tuples.
//
// Setup (paper): 10^3 nodes, 2*10^4 4-way join queries, theta = 0.9;
// one run streaming 2560 tuples with snapshots at 40/80/160/320/640/1280/
// 2560.
//
// Series reproduced: (a) per-tuple traffic per node (total vs RIC-request),
// (b) ranked query-processing-load distribution per tuple count, (c) ranked
// storage-load distribution per tuple count.

#include <iostream>

#include "bench/bench_common.h"
#include "stats/reporter.h"

using namespace rjoin;

int main() {
  const std::vector<size_t> kCounts =
      bench::ScaledCounts({40, 80, 160, 320, 640, 1280, 2560});

  workload::ExperimentConfig cfg = bench::PaperBaseConfig(3);
  cfg.num_tuples = kCounts.back();
  cfg.checkpoints = kCounts;
  cfg.rewrite_levels = core::RewriteIndexLevels::kIncludeAttribute;
  bench::PrintHeader("Figure 3: effect of increasing incoming tuples", cfg);
  bench::JsonReporter json("fig3_tuples",
                           "Figure 3: effect of increasing incoming tuples",
                           cfg);

  bench::RunRepeated(json, [&] {
    workload::Experiment experiment(cfg);
    auto result = experiment.Run();
    json.AddTuplesProcessed(result.num_tuples);

    // Steady-state alloc window: the last two checkpoints bound the second
    // half of the stream (1280 -> 2560 at paper scale), after pools and
    // dictionaries have warmed — the window the <= 1 allocs-per-tuple
    // target is defined over. The whole-run average (which folds in the
    // cold ramp) still lands in allocs_per_tuple_lifetime.
    if (result.snapshots.size() >= 2) {
      const auto& head = result.snapshots[result.snapshots.size() - 2];
      const auto& tail = result.snapshots.back();
      json.SetSteadyStateAllocs(head.allocs, tail.allocs,
                                tail.after_tuples - head.after_tuples);
      json.SetSteadyStateRouteCache(head.route_cache, tail.route_cache);
    }

    // (a) incremental per-tuple traffic between snapshots.
    std::vector<double> xs, total_series, ric_series;
    uint64_t prev_msgs = result.traffic_after_queries;
    uint64_t prev_ric = result.ric_after_queries;
    size_t prev_count = 0;
    for (const auto& snap : result.snapshots) {
      const uint64_t msgs = bench::SumLoads(snap.messages);
      const uint64_t ric = bench::SumLoads(snap.ric_messages);
      const double dt = static_cast<double>(snap.after_tuples - prev_count);
      const double n = static_cast<double>(cfg.num_nodes);
      xs.push_back(static_cast<double>(snap.after_tuples));
      total_series.push_back(static_cast<double>(msgs - prev_msgs) / (n * dt));
      ric_series.push_back(static_cast<double>(ric - prev_ric) / (n * dt));
      prev_msgs = msgs;
      prev_ric = ric;
      prev_count = snap.after_tuples;
    }
    stats::TableReporter a("Fig 3(a): messages per node per tuple",
                           "# tuples");
    a.set_x(xs);
    a.AddSeries({"TotalHops", total_series});
    a.AddSeries({"RequestRIC", ric_series});
    a.Print(std::cout);
    json.AddChart(a);

    // (b)/(c) ranked distributions.
    std::vector<std::string> labels;
    std::vector<stats::RankedDistribution> qpl_dists, sl_dists;
    for (const auto& snap : result.snapshots) {
      labels.push_back(std::to_string(snap.after_tuples) + " tuples");
      qpl_dists.push_back(bench::Ranked(snap.qpl));
      sl_dists.push_back(bench::Ranked(snap.storage));
    }
    PrintRankedFigure(std::cout, "Fig 3(b): query processing load", labels,
                      qpl_dists);
    PrintRankedFigure(std::cout, "Fig 3(c): storage load", labels, sl_dists);
    json.AddRankedChart("Fig 3(b): query processing load", labels, qpl_dists);
    json.AddRankedChart("Fig 3(c): storage load", labels, sl_dists);
  });
  json.Write();
  return 0;
}
