// Micro-benchmarks for the building blocks: SHA-1 hashing, identifier
// arithmetic, Chord lookup/routing, SQL parsing, the rewrite step, and the
// Zipf sampler. Uses google-benchmark.

#include <benchmark/benchmark.h>

#include "core/key.h"
#include "core/planner.h"
#include "core/residual.h"
#include "dht/chord_network.h"
#include "sql/parser.h"
#include "sql/rewriter.h"
#include "util/random.h"
#include "util/sha1.h"
#include "util/zipf.h"

namespace {

using namespace rjoin;

void BM_Sha1Short(benchmark::State& state) {
  const std::string key = "R0|A3|42";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1(key));
  }
}
BENCHMARK(BM_Sha1Short);

void BM_Sha1Block(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Block)->Arg(64)->Arg(1024)->Arg(16384);

void BM_NodeIdArithmetic(benchmark::State& state) {
  const dht::NodeId a = dht::NodeId::FromKey("a");
  const dht::NodeId b = dht::NodeId::FromKey("b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Add(b).Subtract(b));
  }
}
BENCHMARK(BM_NodeIdArithmetic);

void BM_ChordSuccessor(benchmark::State& state) {
  auto net = dht::ChordNetwork::Create(static_cast<size_t>(state.range(0)),
                                       1);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net->SuccessorOf(dht::NodeId::FromUint64(rng.Next())));
  }
}
BENCHMARK(BM_ChordSuccessor)->Arg(256)->Arg(1024);

void BM_ChordRoute(benchmark::State& state) {
  auto net = dht::ChordNetwork::Create(static_cast<size_t>(state.range(0)),
                                       1);
  const auto alive = net->AliveNodes();
  Rng rng(11);
  for (auto _ : state) {
    const auto src = alive[rng.NextBounded(alive.size())];
    benchmark::DoNotOptimize(
        net->RouteHops(src, dht::NodeId::FromUint64(rng.Next())));
  }
}
BENCHMARK(BM_ChordRoute)->Arg(256)->Arg(1024);

void BM_ParseQuery(benchmark::State& state) {
  const std::string text =
      "SELECT R.B, S.B FROM R, S, P, M "
      "WHERE R.A=S.A AND S.B=P.B AND P.C=M.C WINDOW 100 TUPLES";
  for (auto _ : state) {
    auto q = sql::Parser::Parse(text);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseQuery);

sql::Catalog MicroCatalog() {
  sql::Catalog c;
  (void)c.AddRelation(sql::Schema("R", {"A", "B", "C"}));
  (void)c.AddRelation(sql::Schema("S", {"A", "B", "C"}));
  (void)c.AddRelation(sql::Schema("P", {"A", "B", "C"}));
  return c;
}

void BM_ReferenceRewrite(benchmark::State& state) {
  sql::Catalog catalog = MicroCatalog();
  auto q = sql::Parser::Parse(
      "SELECT R.B, S.B FROM R,S,P WHERE R.A=S.A AND S.B=P.B");
  sql::Rewriter rewriter(&catalog);
  auto t = sql::MakeTuple(
      "R", {sql::Value::Int(3), sql::Value::Int(5), sql::Value::Int(7)}, 1,
      1, 1);
  for (auto _ : state) {
    auto out = rewriter.Rewrite(*q, *t);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReferenceRewrite);

void BM_ResidualBind(benchmark::State& state) {
  sql::Catalog catalog = MicroCatalog();
  auto spec = sql::Parser::Parse(
      "SELECT R.B, S.B FROM R,S,P WHERE R.A=S.A AND S.B=P.B");
  auto iq = core::InputQuery::Create(1, 0, 0, *spec, &catalog);
  core::Residual r0(*iq);
  auto t = sql::MakeTuple(
      "R", {sql::Value::Int(3), sql::Value::Int(5), sql::Value::Int(7)}, 1,
      1, 1);
  for (auto _ : state) {
    if (r0.Matches(0, *t)) {
      benchmark::DoNotOptimize(r0.Bind(0, t));
    }
  }
}
BENCHMARK(BM_ResidualBind);

void BM_IndexingCandidates(benchmark::State& state) {
  sql::Catalog catalog = MicroCatalog();
  auto spec = sql::Parser::Parse(
      "SELECT R.B, S.B FROM R,S,P WHERE R.A=S.A AND S.B=P.B");
  auto iq = core::InputQuery::Create(1, 0, 0, *spec, &catalog);
  auto t = sql::MakeTuple(
      "R", {sql::Value::Int(3), sql::Value::Int(5), sql::Value::Int(7)}, 1,
      1, 1);
  core::Residual r = core::Residual(*iq).Bind(0, t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::IndexingCandidates(
        r, core::RewriteIndexLevels::kIncludeAttribute));
  }
}
BENCHMARK(BM_IndexingCandidates);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution z(static_cast<uint64_t>(state.range(0)), 0.9);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
