// Micro-benchmarks for the building blocks: SHA-1 hashing, identifier
// arithmetic, Chord lookup/routing, SQL parsing, the rewrite step, the Zipf
// sampler, and the tuple-ingest hot path (per-tuple PublishTuple vs batched
// PublishBatch). Uses google-benchmark; results also land in
// BENCH_micro_core.json (google-benchmark's JSON format) unless the caller
// passes an explicit --benchmark_out.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "core/interner.h"
#include "core/key.h"
#include "core/messages.h"
#include "dht/route_cache.h"
#include "sim/event_queue.h"
#include "core/planner.h"
#include "core/residual.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/parser.h"
#include "sql/rewriter.h"
#include "stats/metrics.h"
#include "util/random.h"
#include "util/sha1.h"
#include "util/zipf.h"
#include "workload/generator.h"

namespace {

using namespace rjoin;

void BM_Sha1Short(benchmark::State& state) {
  const std::string key = "R0|A3|42";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1(key));
  }
}
BENCHMARK(BM_Sha1Short);

void BM_Sha1Block(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Block)->Arg(64)->Arg(1024)->Arg(16384);

// The key-id plane hot path: interning an already-seen key (lock-free
// dictionary probe, no allocation) vs. the SHA-1 the string-keyed plane
// paid per message (BM_Sha1Short above).
void BM_InternHitValueKey(benchmark::State& state) {
  core::KeyInterner interner;
  const sql::Value v = sql::Value::Int(42);
  interner.InternValue("R0", "A3", v);  // first sight outside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(interner.InternValue("R0", "A3", v));
  }
}
BENCHMARK(BM_InternHitValueKey);

// Resolving the cached ring id from an interned key (what Transport's
// SendKey routes on) — replaces a per-message SHA-1.
void BM_InternedRingId(benchmark::State& state) {
  core::KeyInterner interner;
  const core::KeyId key = interner.InternValue("R0", "A3", sql::Value::Int(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(interner.ring_id(key));
  }
}
BENCHMARK(BM_InternedRingId);

void BM_NodeIdArithmetic(benchmark::State& state) {
  const dht::NodeId a = dht::NodeId::FromKey("a");
  const dht::NodeId b = dht::NodeId::FromKey("b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Add(b).Subtract(b));
  }
}
BENCHMARK(BM_NodeIdArithmetic);

void BM_ChordSuccessor(benchmark::State& state) {
  auto net = dht::ChordNetwork::Create(static_cast<size_t>(state.range(0)),
                                       1);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net->SuccessorOf(dht::NodeId::FromUint64(rng.Next())));
  }
}
BENCHMARK(BM_ChordSuccessor)->Arg(256)->Arg(1024);

void BM_ChordRoute(benchmark::State& state) {
  auto net = dht::ChordNetwork::Create(static_cast<size_t>(state.range(0)),
                                       1);
  const auto alive = net->AliveNodes();
  Rng rng(11);
  for (auto _ : state) {
    const auto src = alive[rng.NextBounded(alive.size())];
    benchmark::DoNotOptimize(
        net->RouteHops(src, dht::NodeId::FromUint64(rng.Next())));
  }
}
BENCHMARK(BM_ChordRoute)->Arg(256)->Arg(1024);

// ------------------------------------------------------- routing plane --
//
// What the route cache buys per steady-state send: BM_RouteResolveUncached
// is the O(log N) greedy finger walk every message paid before the cache;
// BM_RouteResolveCached is the open-addressed probe a warm send pays now.
// Both cycle the same 512-key working set from one source node.

constexpr size_t kRouteKeys = 512;

// SHA-1-hashed keys, like the index keys the engine routes on — spread over
// the whole ring (NodeId::FromUint64 would pile every key next to ring
// position zero and make all routes from the first ring node degenerate).
std::vector<dht::NodeId> SpreadKeys() {
  std::vector<dht::NodeId> keys;
  keys.reserve(kRouteKeys);
  for (size_t i = 0; i < kRouteKeys; ++i) {
    keys.push_back(dht::NodeId::FromKey("route-key-" + std::to_string(i)));
  }
  return keys;
}

void BM_RouteResolveUncached(benchmark::State& state) {
  auto net = dht::ChordNetwork::Create(static_cast<size_t>(state.range(0)),
                                       1);
  const auto alive = net->AliveNodes();
  const dht::NodeIndex src = alive[alive.size() / 2];
  const std::vector<dht::NodeId> keys = SpreadKeys();
  std::vector<dht::NodeIndex> path;
  size_t i = 0;
  for (auto _ : state) {
    net->RoutePath(src, keys[i++ % kRouteKeys], &path);
    benchmark::DoNotOptimize(path.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteResolveUncached)->Arg(256)->Arg(1024);

void BM_RouteResolveCached(benchmark::State& state) {
  auto net = dht::ChordNetwork::Create(static_cast<size_t>(state.range(0)),
                                       1);
  const auto alive = net->AliveNodes();
  const dht::NodeIndex src = alive[alive.size() / 2];
  const uint64_t gen = net->topology_generation();
  const std::vector<dht::NodeId> keys = SpreadKeys();
  dht::RouteCache cache;
  std::vector<dht::NodeIndex> path;
  for (uint32_t k = 0; k < kRouteKeys; ++k) {
    net->RoutePath(src, keys[k], &path);
    cache.Insert(k, gen, path);
  }
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(i++ % kRouteKeys, gen));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteResolveCached)->Arg(256)->Arg(1024);

// -------------------------------------------------------- event pumps --
//
// Hold-model comparison of the old std::push_heap/pop_heap vector against
// the calendar queue behind sim::EventQueue: with H events pending, each
// iteration pops the earliest and reschedules it a small delay ahead (the
// discrete-event steady state). The binary heap sifts O(log H) per
// operation; the calendar queue stays O(1) as H grows.

constexpr uint64_t kHoldSpread = 64;  // delay range, ticks (<< window size)

void PrimeEnvelope(core::EnvelopeRef& env, Rng& rng, uint64_t& order) {
  env->time = rng.NextBounded(kHoldSpread);
  env->order = order++;
}

void BM_BinaryHeapHold(benchmark::State& state) {
  const size_t pending = static_cast<size_t>(state.range(0));
  struct HeapLater {
    bool operator()(const core::EnvelopeRef& a,
                    const core::EnvelopeRef& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->order > b->order;
    }
  };
  core::MessagePool pool(1024);
  std::vector<core::EnvelopeRef> heap;
  heap.reserve(pending);
  Rng rng(21);
  uint64_t order = 0;
  for (size_t i = 0; i < pending; ++i) {
    core::EnvelopeRef env = pool.Acquire();
    PrimeEnvelope(env, rng, order);
    heap.push_back(std::move(env));
    std::push_heap(heap.begin(), heap.end(), HeapLater{});
  }
  for (auto _ : state) {
    std::pop_heap(heap.begin(), heap.end(), HeapLater{});
    core::EnvelopeRef env = std::move(heap.back());
    heap.pop_back();
    env->time += 1 + rng.NextBounded(kHoldSpread - 1);
    env->order = order++;
    heap.push_back(std::move(env));
    std::push_heap(heap.begin(), heap.end(), HeapLater{});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinaryHeapHold)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_CalendarQueueHold(benchmark::State& state) {
  const size_t pending = static_cast<size_t>(state.range(0));
  core::MessagePool pool(1024);
  sim::EventQueue queue;
  Rng rng(21);
  uint64_t order = 0;
  for (size_t i = 0; i < pending; ++i) {
    core::EnvelopeRef env = pool.Acquire();
    PrimeEnvelope(env, rng, order);
    queue.Push(std::move(env));
  }
  for (auto _ : state) {
    core::EnvelopeRef env = queue.Pop();
    env->time += 1 + rng.NextBounded(kHoldSpread - 1);
    queue.Push(std::move(env));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalendarQueueHold)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_ParseQuery(benchmark::State& state) {
  const std::string text =
      "SELECT R.B, S.B FROM R, S, P, M "
      "WHERE R.A=S.A AND S.B=P.B AND P.C=M.C WINDOW 100 TUPLES";
  for (auto _ : state) {
    auto q = sql::Parser::Parse(text);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseQuery);

sql::Catalog MicroCatalog() {
  sql::Catalog c;
  (void)c.AddRelation(sql::Schema("R", {"A", "B", "C"}));
  (void)c.AddRelation(sql::Schema("S", {"A", "B", "C"}));
  (void)c.AddRelation(sql::Schema("P", {"A", "B", "C"}));
  return c;
}

void BM_ReferenceRewrite(benchmark::State& state) {
  sql::Catalog catalog = MicroCatalog();
  auto q = sql::Parser::Parse(
      "SELECT R.B, S.B FROM R,S,P WHERE R.A=S.A AND S.B=P.B");
  sql::Rewriter rewriter(&catalog);
  auto t = sql::MakeTuple(
      "R", {sql::Value::Int(3), sql::Value::Int(5), sql::Value::Int(7)}, 1,
      1, 1);
  for (auto _ : state) {
    auto out = rewriter.Rewrite(*q, *t);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReferenceRewrite);

void BM_ResidualBind(benchmark::State& state) {
  sql::Catalog catalog = MicroCatalog();
  auto spec = sql::Parser::Parse(
      "SELECT R.B, S.B FROM R,S,P WHERE R.A=S.A AND S.B=P.B");
  auto iq = core::InputQuery::Create(1, 0, 0, *spec, &catalog);
  core::Residual r0(*iq);
  auto t = sql::MakeTuple(
      "R", {sql::Value::Int(3), sql::Value::Int(5), sql::Value::Int(7)}, 1,
      1, 1);
  for (auto _ : state) {
    if (r0.Matches(0, *t)) {
      benchmark::DoNotOptimize(r0.Bind(0, t));
    }
  }
}
BENCHMARK(BM_ResidualBind);

void BM_IndexingCandidates(benchmark::State& state) {
  sql::Catalog catalog = MicroCatalog();
  auto spec = sql::Parser::Parse(
      "SELECT R.B, S.B FROM R,S,P WHERE R.A=S.A AND S.B=P.B");
  auto iq = core::InputQuery::Create(1, 0, 0, *spec, &catalog);
  auto t = sql::MakeTuple(
      "R", {sql::Value::Int(3), sql::Value::Int(5), sql::Value::Int(7)}, 1,
      1, 1);
  core::Residual r = core::Residual(*iq).Bind(0, t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::IndexingCandidates(
        r, core::RewriteIndexLevels::kIncludeAttribute));
  }
}
BENCHMARK(BM_IndexingCandidates);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution z(static_cast<uint64_t>(state.range(0)), 0.9);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10000);

// ------------------------------------------------------ tuple ingest path --
//
// Per-tuple ingest cost of the two publish paths, message handling included
// (each iteration runs the simulator to quiescence). items_per_second in the
// report is tuples/s; compare BM_PublishPerTuple against BM_PublishBatch to
// see what batching amortizes (schema lookup, attribute-key hashing, tuple
// and message allocation, MultiSend dispatch).

struct IngestHarness {
  explicit IngestHarness(size_t nodes, uint32_t attr_replication = 1)
      : catalog(workload::BuildCatalog(
            {.num_relations = 4, .num_attributes = 5, .num_values = 100})),
        network(dht::ChordNetwork::Create(nodes, 1)),
        latency(1),
        transport(network.get(), &sim, &latency, &metrics, Rng(99)) {
    core::EngineConfig cfg;
    cfg.attr_replication = attr_replication;
    engine = std::make_unique<core::RJoinEngine>(
        cfg, catalog.get(), network.get(), &transport, &sim, &metrics);
  }

  std::unique_ptr<sql::Catalog> catalog;
  std::unique_ptr<dht::ChordNetwork> network;
  sim::Simulator sim;
  sim::FixedLatency latency;
  stats::MetricsRegistry metrics;
  dht::Transport transport;
  std::unique_ptr<core::RJoinEngine> engine;
};

std::vector<sql::Value> IngestRow(Rng& rng, size_t arity) {
  std::vector<sql::Value> row;
  row.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    row.push_back(sql::Value::Int(static_cast<int64_t>(rng.NextBounded(100))));
  }
  return row;
}

// Both ingest harnesses advance the stream clock by kTupleGap per published
// tuple (as workload::Experiment does), so ALTT retention — which depends on
// tuples per simulated tick — is identical for the two paths.
constexpr sim::SimTime kTupleGap = 16;

void BM_PublishPerTuple(benchmark::State& state) {
  IngestHarness h(256);
  Rng rng(7);
  for (auto _ : state) {
    auto t = h.engine->PublishTuple(0, "R0", IngestRow(rng, 5));
    benchmark::DoNotOptimize(t);
    h.sim.Run();
    h.sim.RunUntil(h.sim.Now() + kTupleGap);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PublishPerTuple)->Iterations(20000);

void BM_PublishBatch(benchmark::State& state) {
  IngestHarness h(256);
  Rng rng(7);
  const size_t batch_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<std::vector<sql::Value>> rows;
    rows.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      rows.push_back(IngestRow(rng, 5));
    }
    auto out = h.engine->PublishBatch(0, "R0", std::move(rows));
    benchmark::DoNotOptimize(out);
    h.sim.Run();
    h.sim.RunUntil(h.sim.Now() + kTupleGap * batch_size);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_PublishBatch)->Arg(16)->Iterations(1250);
BENCHMARK(BM_PublishBatch)->Arg(256)->Iterations(80);

void BM_ObserveHistoryPerTuple(benchmark::State& state) {
  IngestHarness h(256);
  Rng rng(7);
  for (auto _ : state) {
    auto s = h.engine->ObserveStreamHistory("R0", IngestRow(rng, 5));
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObserveHistoryPerTuple)->Iterations(20000);

void BM_ObserveHistoryBulk(benchmark::State& state) {
  IngestHarness h(256);
  Rng rng(7);
  const size_t batch_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<std::vector<sql::Value>> rows;
    rows.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      rows.push_back(IngestRow(rng, 5));
    }
    auto s = h.engine->ObserveStreamHistoryBulk("R0", rows);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_ObserveHistoryBulk)->Arg(256)->Iterations(80);

}  // namespace

// BENCHMARK_MAIN, plus a default --benchmark_out so the run always leaves a
// machine-readable BENCH_micro_core.json next to the fig benches' files
// (directory overridable with RJOIN_BENCH_OUT).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  std::string out_flag, format_flag;
  if (!has_out) {
    out_flag = "--benchmark_out=" + rjoin::bench::BenchOutDir() +
               "/BENCH_micro_core.json";
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
