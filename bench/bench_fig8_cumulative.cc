// Figure 8 — Cumulative load created with each new tuple, per window size.
//
// Same runs as Figure 7, but reporting the cumulative query-processing and
// storage load as the tuple count grows from 0 to 10^3 (sampled every 100
// tuples), one curve per window size.

#include <iostream>

#include "bench/bench_common.h"
#include "stats/reporter.h"

using namespace rjoin;

int main() {
  std::vector<uint64_t> kWindows;
  for (size_t w : bench::ScaledCounts({50, 100, 200, 400, 1000})) {
    kWindows.push_back(w);
  }
  const size_t kSampleEvery = std::max<size_t>(1, bench::ScaledCount(1000) / 10);

  workload::ExperimentConfig base = bench::PaperBaseConfig(8);
  base.num_tuples = bench::ScaledCount(1000);
  base.sweep_every = 16;
  base.rewrite_levels = core::RewriteIndexLevels::kIncludeAttribute;
  bench::PrintHeader("Figure 8: cumulative load vs tuples per window size",
                     base);
  bench::JsonReporter json(
      "fig8_cumulative", "Figure 8: cumulative load vs tuples per window size",
      base);

  bench::RunRepeated(json, [&] {
    std::vector<stats::Series> qpl_series, sl_series;
    std::vector<double> xs;

    for (uint64_t w : kWindows) {
      workload::ExperimentConfig cfg = base;
      sql::WindowSpec window;
      window.use_windows = true;
      window.unit = sql::WindowSpec::Unit::kTuples;
      window.size = w;
      cfg.window = window;
      workload::Experiment experiment(cfg);
      auto result = experiment.Run();
      json.AddTuplesProcessed(result.num_tuples);

      stats::Series q{"W=" + std::to_string(w), {}};
      stats::Series s{"W=" + std::to_string(w), {}};
      if (xs.empty()) {
        for (size_t i = kSampleEvery; i <= result.per_tuple.size();
             i += kSampleEvery) {
          xs.push_back(static_cast<double>(i));
        }
      }
      for (size_t i = kSampleEvery; i <= result.per_tuple.size();
           i += kSampleEvery) {
        q.values.push_back(
            static_cast<double>(result.per_tuple[i - 1].total_qpl));
        s.values.push_back(
            static_cast<double>(result.per_tuple[i - 1].total_storage));
      }
      qpl_series.push_back(std::move(q));
      sl_series.push_back(std::move(s));
    }

    stats::TableReporter a("Fig 8(a): cumulative query processing load",
                           "# tuples");
    a.set_x(xs);
    for (auto& s : qpl_series) a.AddSeries(s);
    a.Print(std::cout);
    json.AddChart(a);

    stats::TableReporter b("Fig 8(b): cumulative storage load", "# tuples");
    b.set_x(xs);
    for (auto& s : sl_series) b.AddSeries(s);
    b.Print(std::cout);
    json.AddChart(b);
  });
  json.Write();
  return 0;
}
