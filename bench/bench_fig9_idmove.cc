// Figure 9 — Effect of id movement (lower-level load balancing, [19]).
//
// Setup (paper): 10^3 nodes, 2*10^4 4-way join queries, 10^3 tuples. Two
// runs of the same workload: once on a plain consistent-hashing ring, once
// with node positions rebalanced by the Karger-Ruhl-style id movement
// computed from the observed per-key load profile. Series: ranked QPL and
// SL distributions, with and without id movement.

#include <iostream>

#include "bench/bench_common.h"
#include "dht/load_balancer.h"
#include "stats/reporter.h"

using namespace rjoin;

int main() {
  workload::ExperimentConfig cfg = bench::PaperBaseConfig(9);
  cfg.num_tuples = bench::ScaledCount(1000);
  cfg.rewrite_levels = core::RewriteIndexLevels::kIncludeAttribute;
  bench::PrintHeader("Figure 9: effect of id movement", cfg);
  bench::JsonReporter json("fig9_idmove", "Figure 9: effect of id movement",
                           cfg);

  bench::RunRepeated(json, [&] {
    workload::Experiment baseline(cfg);
    auto base_result = baseline.Run();
    json.AddTuplesProcessed(base_result.num_tuples);
    auto profile = baseline.KeyLoadProfile();

    workload::ExperimentConfig balanced_cfg = cfg;
    balanced_cfg.node_positions =
        dht::IdMovementBalancer::ComputeBalancedPositions(profile,
                                                          cfg.num_nodes);
    workload::Experiment balanced(balanced_cfg);
    auto bal_result = balanced.Run();
    json.AddTuplesProcessed(bal_result.num_tuples);

    stats::PrintRankedFigure(
        std::cout, "Fig 9(a): query processing load",
        {"Without", "WithIdMove"},
        {bench::Ranked(base_result.final_snapshot.qpl),
         bench::Ranked(bal_result.final_snapshot.qpl)});
    stats::PrintRankedFigure(
        std::cout, "Fig 9(b): storage load",
        {"Without", "WithIdMove"},
        {bench::Ranked(base_result.final_snapshot.storage),
         bench::Ranked(bal_result.final_snapshot.storage)});

    const auto gb = bench::Ranked(base_result.final_snapshot.storage);
    const auto gw = bench::Ranked(bal_result.final_snapshot.storage);
    std::cout << "storage gini without=" << gb.gini() << " with=" << gw.gini()
              << "\n";
    json.AddRankedChart("Fig 9(a): query processing load",
                        {"Without", "WithIdMove"},
                        {bench::Ranked(base_result.final_snapshot.qpl),
                         bench::Ranked(bal_result.final_snapshot.qpl)});
    json.AddRankedChart("Fig 9(b): storage load", {"Without", "WithIdMove"},
                        {gb, gw});
    json.AddScalar("storage_gini_without", gb.gini());
    json.AddScalar("storage_gini_with", gw.gini());
  });
  json.Write();
  return 0;
}
