// Failures — silent node crashes vs the replication factor
// (docs/failures.md).
//
// Not a paper figure: Section 2 of the paper delegates fault tolerance to
// the DHT's successor-list replication and never measures it. This bench
// quantifies that delegation once crashes are first-class in-band events:
//   (a) steady-state replication overhead vs r — mirror messages/sec,
//       mirrored bytes, and the answer-throughput cost of write-through
//       mirroring (r=1 is the replication-off baseline),
//   (b) answer loss vs r on the reference fault trace — delivered rows
//       against the uncrashed centralized oracle (with r>=2 a single kill
//       must lose nothing; the CI gate pins answer_loss_rate to 0),
//   (c) recovery latency — rendezvous rounds from the crash-detection
//       generation bump to replica-promotion install (p50/p99).

#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sql/evaluator.h"
#include "stats/reporter.h"
#include "workload/churn.h"

using namespace rjoin;

namespace {

double Percentile(std::vector<uint64_t> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return static_cast<double>(v[idx]);
}

}  // namespace

int main() {
  const std::vector<uint32_t> kReplication = {1, 2, 3};

  workload::ExperimentConfig base = bench::PaperBaseConfig(23);
  base.num_tuples = bench::ScaledCount(400);
  bench::PrintHeader("Failures: silent crashes vs replication factor", base);
  bench::JsonReporter json("failures",
                           "Silent-failure recovery vs replication factor",
                           base);

  bench::RunRepeated(json, [&] {
    std::vector<double> xs;
    std::vector<double> mirror_msgs_series, mirror_bytes_series;
    std::vector<double> answers_per_sec_series, msgs_per_node_series;
    std::vector<double> loss_series, promoted_series;
    std::vector<double> recovery_p50_series, recovery_p99_series;

    for (uint32_t r : kReplication) {
      // ---- (a) overhead run: paper-scale stream, a small crash storm ----
      workload::ExperimentConfig cfg = base;
      cfg.replication = r;
      {
        workload::ChurnSpec churn;
        churn.spare_nodes = 4;
        workload::FaultPlan faults;
        faults.crashes = 4;
        churn.faults = faults;
        cfg.churn = churn;
      }
      workload::Experiment experiment(cfg);
      const auto start = std::chrono::steady_clock::now();
      auto result = experiment.Run();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      json.AddTuplesProcessed(result.num_tuples);
      const auto& rs = experiment.engine().replication_stats();

      // ---- (b) loss run: oracle-checked reference fault trace ----------
      // Small enough that the centralized oracle is cheap, same shape as
      // the failure_recovery_test battery: six independent kills spread across the stream.
      workload::ExperimentConfig ref;
      ref.num_nodes = 40;
      ref.num_queries = 100;
      ref.num_tuples = 48;
      ref.way = 3;
      ref.workload.num_relations = 6;
      ref.workload.num_attributes = 4;
      ref.workload.num_values = 25;
      ref.seed = 9;
      ref.keep_history = true;
      ref.replication = r;
      {
        workload::ChurnSpec churn;
        churn.spare_nodes = 6;
        workload::FaultPlan faults;
        faults.crashes = 6;
        churn.faults = faults;
        ref.churn = churn;
      }
      workload::Experiment loss_run(ref);
      auto loss_result = loss_run.Run();
      json.AddTuplesProcessed(loss_result.num_tuples);

      // Delivered rows per query vs the uncrashed oracle over the full
      // published history. Under crashes delivered is a subset of oracle,
      // so the ratio of totals is the loss rate.
      std::map<uint64_t, size_t> delivered;
      for (const core::Answer& a : loss_run.engine().answers()) {
        ++delivered[a.query_id];
      }
      sql::CentralizedEvaluator oracle(&loss_run.catalog());
      uint64_t oracle_rows = 0, got_rows = 0;
      for (uint64_t qid = 1; qid <= ref.num_queries; ++qid) {
        auto iq = loss_run.engine().FindQuery(qid);
        if (iq == nullptr) continue;
        oracle_rows += oracle
                           .Evaluate(iq->spec(), iq->ins_time(),
                                     loss_run.engine().history())
                           .size();
        auto it = delivered.find(qid);
        if (it != delivered.end()) got_rows += it->second;
      }
      const double loss =
          oracle_rows == 0
              ? 0.0
              : 1.0 - static_cast<double>(got_rows) /
                          static_cast<double>(oracle_rows);

      const double lookahead =
          loss_run.runtime() != nullptr
              ? static_cast<double>(loss_run.runtime()->lookahead())
              : 1.0;
      const std::vector<uint64_t> ticks =
          loss_run.engine().promotion_recovery_ticks();
      const double p50 = Percentile(ticks, 0.50) / lookahead;
      const double p99 = Percentile(ticks, 0.99) / lookahead;

      xs.push_back(static_cast<double>(r));
      mirror_msgs_series.push_back(
          secs > 0.0 ? static_cast<double>(rs.replica_updates) / secs : 0.0);
      mirror_bytes_series.push_back(static_cast<double>(rs.replica_bytes));
      answers_per_sec_series.push_back(
          secs > 0.0 ? static_cast<double>(result.answers_delivered) / secs
                     : 0.0);
      msgs_per_node_series.push_back(result.MsgsPerNodePerTuple());
      loss_series.push_back(loss);
      promoted_series.push_back(static_cast<double>(
          loss_run.engine().replication_stats().promoted_records));
      recovery_p50_series.push_back(p50);
      recovery_p99_series.push_back(p99);

      std::cout << "r=" << r << ": mirror_msgs/s=" << mirror_msgs_series.back()
                << " replica_bytes=" << rs.replica_bytes
                << " answers/s=" << answers_per_sec_series.back()
                << " | reference trace: loss=" << loss << " (" << got_rows
                << "/" << oracle_rows << " rows)"
                << " promoted=" << promoted_series.back()
                << " recovery_rounds_p50=" << p50 << " p99=" << p99 << "\n";
    }

    stats::TableReporter a("Failures (a): replication overhead",
                           "replication factor r");
    a.set_x(xs);
    a.AddSeries({"MirrorMsgsPerSec", mirror_msgs_series});
    a.AddSeries({"ReplicaBytes", mirror_bytes_series});
    a.AddSeries({"AnswersPerSec", answers_per_sec_series});
    a.AddSeries({"MsgsPerNodePerTuple", msgs_per_node_series});
    a.Print(std::cout);
    json.AddChart(a);

    stats::TableReporter b("Failures (b): answer loss on reference trace",
                           "replication factor r");
    b.set_x(xs);
    b.AddSeries({"AnswerLossRate", loss_series});
    b.AddSeries({"PromotedRecords", promoted_series});
    b.Print(std::cout);
    json.AddChart(b);

    stats::TableReporter c("Failures (c): crash recovery rounds",
                           "replication factor r");
    c.set_x(xs);
    c.AddSeries({"RecoveryRoundsP50", recovery_p50_series});
    c.AddSeries({"RecoveryRoundsP99", recovery_p99_series});
    c.Print(std::cout);
    json.AddChart(c);

    // Trajectory scalars: the r=2 point is the recommended configuration
    // (first successor mirrors; single kills lose nothing), r=1 the
    // baseline contrast the CI gate checks against.
    json.AddScalar("replication_msgs_per_sec", mirror_msgs_series[1]);
    json.AddScalar("replica_bytes", mirror_bytes_series[1]);
    json.AddScalar("answer_loss_rate", loss_series[1]);
    json.AddScalar("answer_loss_rate_r1", loss_series[0]);
    json.AddScalar("recovery_rounds_p99", recovery_p99_series[1]);
    json.AddScalar("answers_per_sec_replication_off",
                   answers_per_sec_series[0]);
    json.AddScalar("answers_per_sec_r2", answers_per_sec_series[1]);
  });
  json.Write();
  return 0;
}
