// Figure 5 — Varying the skew of the data distribution.
//
// Setup (paper): 10^3 nodes, 2*10^4 queries, 10^3 tuples; Zipf theta in
// {0.3, 0.5, 0.7, 0.9} both for relation choice and attribute values.
// Series: (a) per-tuple traffic (total vs RIC), (b)/(c) ranked QPL and SL
// distributions per theta.

#include <iostream>

#include "bench/bench_common.h"
#include "stats/reporter.h"

using namespace rjoin;

int main() {
  const std::vector<double> kThetas = {0.3, 0.5, 0.7, 0.9};

  workload::ExperimentConfig base = bench::PaperBaseConfig(5);
  base.num_tuples = bench::ScaledCount(1000);
  base.rewrite_levels = core::RewriteIndexLevels::kIncludeAttribute;
  bench::PrintHeader("Figure 5: effect of skewed data", base);
  bench::JsonReporter json("fig5_skew", "Figure 5: effect of skewed data",
                           base);

  bench::RunRepeated(json, [&] {
    std::vector<double> xs, total_series, ric_series;
    std::vector<std::string> labels;
    std::vector<stats::RankedDistribution> qpl_dists, sl_dists;

    for (double theta : kThetas) {
      workload::ExperimentConfig cfg = base;
      cfg.workload.zipf_theta = theta;
      workload::Experiment experiment(cfg);
      auto result = experiment.Run();
      json.AddTuplesProcessed(result.num_tuples);

      xs.push_back(theta);
      total_series.push_back(result.MsgsPerNodePerTuple());
      ric_series.push_back(result.RicMsgsPerNodePerTuple());
      labels.push_back("theta=" + std::to_string(theta).substr(0, 3));
      qpl_dists.push_back(bench::Ranked(result.final_snapshot.qpl));
      sl_dists.push_back(bench::Ranked(result.final_snapshot.storage));
    }

    stats::TableReporter a("Fig 5(a): messages per node per tuple",
                           "zipf theta");
    a.set_x(xs);
    a.AddSeries({"TotalHops", total_series});
    a.AddSeries({"RequestRIC", ric_series});
    a.Print(std::cout);
    json.AddChart(a);

    PrintRankedFigure(std::cout, "Fig 5(b): query processing load", labels,
                      qpl_dists);
    PrintRankedFigure(std::cout, "Fig 5(c): storage load", labels, sl_dists);
    json.AddRankedChart("Fig 5(b): query processing load", labels, qpl_dists);
    json.AddRankedChart("Fig 5(c): storage load", labels, sl_dists);
  });
  json.Write();
  return 0;
}
