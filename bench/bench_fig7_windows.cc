// Figure 7 — Effect of sliding window size (W).
//
// Setup (paper): 10^3 nodes, 2*10^4 4-way join queries, all with the same
// tuple-based sliding window W in {50, 100, 200, 400, 1000}; 10^3 tuples.
// Series: (a) per-tuple traffic (total vs RIC), (b)/(c) ranked QPL and SL
// distributions per window size.

#include <iostream>

#include "bench/bench_common.h"
#include "stats/reporter.h"

using namespace rjoin;

int main() {
  std::vector<uint64_t> kWindows;
  for (size_t w : bench::ScaledCounts({50, 100, 200, 400, 1000})) {
    kWindows.push_back(w);
  }

  workload::ExperimentConfig base = bench::PaperBaseConfig(7);
  base.num_tuples = bench::ScaledCount(1000);
  base.sweep_every = 16;
  base.rewrite_levels = core::RewriteIndexLevels::kIncludeAttribute;
  bench::PrintHeader("Figure 7: effect of sliding window size", base);
  bench::JsonReporter json("fig7_windows",
                           "Figure 7: effect of sliding window size", base);

  bench::RunRepeated(json, [&] {
    std::vector<double> xs, total_series, ric_series;
    std::vector<std::string> labels;
    std::vector<stats::RankedDistribution> qpl_dists, sl_dists;

    for (uint64_t w : kWindows) {
      workload::ExperimentConfig cfg = base;
      sql::WindowSpec window;
      window.use_windows = true;
      window.unit = sql::WindowSpec::Unit::kTuples;
      window.kind = sql::WindowSpec::Kind::kSliding;
      window.size = w;
      cfg.window = window;
      workload::Experiment experiment(cfg);
      auto result = experiment.Run();
      json.AddTuplesProcessed(result.num_tuples);

      xs.push_back(static_cast<double>(w));
      total_series.push_back(result.MsgsPerNodePerTuple());
      ric_series.push_back(result.RicMsgsPerNodePerTuple());
      labels.push_back("W=" + std::to_string(w));
      qpl_dists.push_back(bench::Ranked(result.final_snapshot.qpl));
      sl_dists.push_back(bench::Ranked(result.final_snapshot.storage));
    }

    stats::TableReporter a("Fig 7(a): messages per node per tuple",
                           "window (tuples)");
    a.set_x(xs);
    a.AddSeries({"TotalHops", total_series});
    a.AddSeries({"RequestRIC", ric_series});
    a.Print(std::cout);
    json.AddChart(a);

    PrintRankedFigure(std::cout, "Fig 7(b): query processing load", labels,
                      qpl_dists);
    PrintRankedFigure(std::cout, "Fig 7(c): storage load (current)", labels,
                      sl_dists);
    json.AddRankedChart("Fig 7(b): query processing load", labels, qpl_dists);
    json.AddRankedChart("Fig 7(c): storage load (current)", labels, sl_dists);
  });
  json.Write();
  return 0;
}
