// Figure 6 — Effect of having more complex queries (number of joins).
//
// Setup (paper): 10^3 nodes, 2*10^4 k-way join queries for k in {4, 6, 8},
// then 10^3 tuples. Series: (a) per-tuple traffic (total vs RIC),
// (b)/(c) ranked QPL and SL distributions per arity.

#include <iostream>

#include "bench/bench_common.h"
#include "stats/reporter.h"

using namespace rjoin;

int main() {
  const std::vector<int> kWays = {4, 6, 8};

  workload::ExperimentConfig base = bench::PaperBaseConfig(6);
  base.num_tuples = bench::ScaledCount(1000);
  base.rewrite_levels = core::RewriteIndexLevels::kIncludeAttribute;
  bench::PrintHeader("Figure 6: effect of query complexity", base);
  bench::JsonReporter json("fig6_arity",
                           "Figure 6: effect of query complexity", base);

  bench::RunRepeated(json, [&] {
    std::vector<double> xs, total_series, ric_series;
    std::vector<std::string> labels;
    std::vector<stats::RankedDistribution> qpl_dists, sl_dists;

    for (int way : kWays) {
      workload::ExperimentConfig cfg = base;
      cfg.way = way;
      workload::Experiment experiment(cfg);
      auto result = experiment.Run();
      json.AddTuplesProcessed(result.num_tuples);

      xs.push_back(way);
      total_series.push_back(result.MsgsPerNodePerTuple());
      ric_series.push_back(result.RicMsgsPerNodePerTuple());
      labels.push_back(std::to_string(way) + "-way joins");
      qpl_dists.push_back(bench::Ranked(result.final_snapshot.qpl));
      sl_dists.push_back(bench::Ranked(result.final_snapshot.storage));
    }

    stats::TableReporter a("Fig 6(a): messages per node per tuple",
                           "# of joins in queries");
    a.set_x(xs);
    a.AddSeries({"TotalHops", total_series});
    a.AddSeries({"RequestRIC", ric_series});
    a.Print(std::cout);
    json.AddChart(a);

    PrintRankedFigure(std::cout, "Fig 6(b): query processing load", labels,
                      qpl_dists);
    PrintRankedFigure(std::cout, "Fig 6(c): storage load", labels, sl_dists);
    json.AddRankedChart("Fig 6(b): query processing load", labels, qpl_dists);
    json.AddRankedChart("Fig 6(c): storage load", labels, sl_dists);
  });
  json.Write();
  return 0;
}
