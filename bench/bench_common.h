#ifndef RJOIN_BENCH_BENCH_COMMON_H_
#define RJOIN_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "stats/alloc_tracker.h"
#include "stats/distribution.h"
#include "stats/reporter.h"
#include "stats/trace.h"
#include "workload/experiment.h"

namespace rjoin::bench {

/// The paper's Section 8 base setup (10^3 nodes, 2*10^4 4-way joins,
/// theta = 0.9), scaled by RJOIN_SCALE (default 0.25 so the whole bench
/// suite runs in minutes; RJOIN_SCALE=paper for full size).
workload::ExperimentConfig PaperBaseConfig(uint64_t seed = 1);

/// The scale factor applied, for the printed header.
double AppliedScale();

/// Scales a paper-sized count (tuples, window sizes, checkpoints) by
/// RJOIN_SCALE. Continuous joins without windows accumulate state
/// quadratically in the tuple count, so the tuple axis must shrink together
/// with the query/node axes to keep scaled runs proportionate.
size_t ScaledCount(size_t paper_count);

/// ScaledCount over a whole axis.
std::vector<size_t> ScaledCounts(std::vector<size_t> paper_counts);

/// Prints a standard header naming the figure and the effective setup.
void PrintHeader(const std::string& figure,
                 const workload::ExperimentConfig& cfg);

/// Sum of a per-node load vector.
uint64_t SumLoads(const std::vector<uint64_t>& loads);

/// Average per node.
double PerNode(const std::vector<uint64_t>& loads);

/// Ranked distribution of one snapshot metric.
stats::RankedDistribution Ranked(const std::vector<uint64_t>& loads);

/// Directory BENCH_*.json files are written to: $RJOIN_BENCH_OUT, or the
/// working directory when unset. A missing directory is created (and the
/// bench aborts loudly if that fails) so pointing RJOIN_BENCH_OUT at a
/// fresh path never silently drops the results.
std::string BenchOutDir();

/// Number of times each figure body runs: $RJOIN_BENCH_REPEAT clamped to
/// [1, 32], default 1. Repeats quantify run-to-run noise on a machine —
/// one fast run is a point estimate, the median of N is a measurement.
size_t BenchRepeat();

class JsonReporter;

/// Runs `body` BenchRepeat() times, timing each repeat and snapshotting the
/// reporter's tuple counter around it. With N > 1, records the scalars
/// "bench_repeats", "tuples_per_sec_median", "tuples_per_sec_spread"
/// ((max - min) / median), and "wall_seconds_median" on `json`. Charts and
/// named scalars the body re-adds overwrite their previous repeat's values
/// (see JsonReporter::UpsertChart), so the emitted JSON has one copy of
/// everything regardless of N. Repeats re-run the same seeds: virtual-cost
/// results are identical, only wall-clock timing varies.
void RunRepeated(JsonReporter& json, const std::function<void()>& body);

/// Machine-readable bench output: collects the figure's charts and writes
/// them as `BENCH_<figure>.json` so the perf trajectory across PRs can be
/// diffed and plotted without scraping the printed tables.
///
/// Layout:
///   {"figure": ..., "title": ..., "scale": ...,
///    "config": {nodes/queries/tuples/way/theta/policy/...},
///    "scalars": {...},
///    "charts": [{"title", "x_label", "x": [...],
///                "series": [{"label", "values": [...]}]}]}
class JsonReporter {
 public:
  struct Chart {
    std::string title;
    std::string x_label;
    std::vector<double> xs;
    std::vector<stats::Series> series;
  };

  /// `figure` is the file slug (BENCH_<figure>.json); `title` the printed
  /// figure name; `cfg` the base experiment setup recorded under "config".
  JsonReporter(std::string figure, std::string title,
               const workload::ExperimentConfig& cfg);

  /// One chart: an x axis plus labeled series (same shape TableReporter
  /// prints).
  void AddChart(const std::string& title, const std::string& x_label,
                std::vector<double> xs, std::vector<stats::Series> series);

  /// Mirrors a TableReporter that the bench already prints.
  void AddChart(const stats::TableReporter& table);

  /// Mirrors PrintRankedFigure: series sampled at `sample_points` ranks,
  /// x = rank.
  void AddRankedChart(const std::string& title,
                      const std::vector<std::string>& labels,
                      const std::vector<stats::RankedDistribution>& dists,
                      size_t sample_points = 10);

  /// A single named number under "scalars" (e.g. a Gini coefficient).
  /// Re-adding a name overwrites the previous value, so the emitted JSON
  /// object never carries duplicate keys (duplicate keys made downstream
  /// trajectory parsers drop the whole scalar set).
  void AddScalar(const std::string& name, double value);

  /// Records the canonical "speedup" scalar (plus an explicitly named
  /// alias) from a baseline and a contender throughput — the number the
  /// cross-PR perf trajectory tracks for bench_runtime_scaling.
  void AddSpeedup(const std::string& name, double baseline_per_sec,
                  double contender_per_sec);

  /// Prints stats::PrintMessagePlaneSummary from the same baselines the
  /// JSON scalars use (pool counters and wall clock captured at
  /// construction), so console and BENCH_*.json never diverge.
  void PrintMessagePlane(std::ostream& os) const;

  /// Counts tuples the figure's experiments streamed; Write() turns the
  /// total plus the reporter's wall clock into the "tuples_per_sec"
  /// throughput scalar that tracks speedups across PRs.
  void AddTuplesProcessed(uint64_t tuples) { tuples_processed_ += tuples; }

  /// Restricts the allocs_per_tuple* scalars to a steady-state window:
  /// per-plane counter snapshots taken `window_tuples` apart (e.g. the
  /// last two experiment checkpoints). Without this, the scalars average
  /// the cold ramp — pool/dictionary capacity growth from process start —
  /// into every tuple, which is not what the <= 1 steady-state target
  /// measures. The whole-run average is still emitted as
  /// "allocs_per_tuple_lifetime". Under RJOIN_BENCH_REPEAT the last
  /// repeat's window wins (same rule as UpsertChart).
  void SetSteadyStateAllocs(const stats::AllocCounts& begin,
                            const stats::AllocCounts& end,
                            uint64_t window_tuples);

  /// Same steady-state windowing for the route-cache counters: the
  /// "route_cache_hit_rate" scalar then covers only the window between two
  /// checkpoints, excluding the cold first-sight ramp (every key's first
  /// route is a structural miss; what the cache is *for* is the steady
  /// state). The whole-run rate is still emitted as
  /// "route_cache_hit_rate_lifetime".
  void SetSteadyStateRouteCache(const dht::RouteCache::Stats& begin,
                                const dht::RouteCache::Stats& end);

  /// Running tuple total (RunRepeated snapshots it around each repeat).
  uint64_t tuples_processed() const { return tuples_processed_; }

  /// Writes BENCH_<figure>.json into $RJOIN_BENCH_OUT (default: the working
  /// directory) and returns the path. Logs the path to stdout. Every file
  /// carries "wall_seconds" (construction to Write), "tuples_processed",
  /// "tuples_per_sec", "messages_per_sec" (envelopes dispatched through the
  /// message plane per wall second), "allocs_per_tuple" (data-plane heap
  /// allocations — tuple + residual + message planes — per streamed tuple,
  /// with an allocs_per_tuple_<plane> breakdown plus the envelope-only
  /// "envelope_allocs_per_tuple"; near zero once the pools reach their
  /// steady-state high-water mark), "hardware_threads", and the
  /// observability scalars (answer_latency_p50/p95/p99 in virtual ticks,
  /// routing/rewrite percentiles, the wall-clock stall breakdown) so the
  /// bench trajectory records measured time and allocation behavior, not
  /// just virtual-cost curves. A "provenance" object (git SHA, build type,
  /// effective RJOIN_* knobs) makes every file self-describing — the full
  /// schema is documented in bench/trajectory/README.md. When RJOIN_TRACE
  /// is on, the merged virtual-time timeline is additionally written as
  /// Perfetto-loadable TRACE_<figure>.json next to the bench JSON.
  std::string Write() const;

 private:
  /// Message-plane counters (envelope pools, key interner, cross-shard
  /// mailboxes) measured since construction.
  stats::MessagePlaneSummary PlaneDelta() const;

  /// Appends `chart`, replacing an existing chart with the same title —
  /// RunRepeated re-runs a figure body, and the last repeat wins instead of
  /// duplicating every chart N times.
  void UpsertChart(Chart&& chart);

  std::string figure_;
  std::string title_;
  workload::ExperimentConfig config_;
  std::chrono::steady_clock::time_point start_;
  /// Message-plane counters at construction; Write() reports the delta.
  uint64_t base_envelope_allocs_ = 0;
  uint64_t base_messages_ = 0;
  uint64_t base_interner_hits_ = 0;
  uint64_t base_interner_misses_ = 0;
  uint64_t base_mailbox_batches_ = 0;
  uint64_t base_mailbox_envelopes_ = 0;
  uint64_t base_route_cache_hits_ = 0;
  uint64_t base_route_cache_misses_ = 0;
  uint64_t base_coalesce_groups_ = 0;
  uint64_t base_coalesce_payloads_ = 0;
  uint64_t base_sched_epochs_ = 0;
  uint64_t base_watermark_stalls_ = 0;
  uint64_t base_rendezvous_caps_ = 0;
  uint64_t base_equivalent_rounds_ = 0;
  /// Observability histograms at construction; Write() reports bucket-count
  /// deltas, so percentiles cover only this figure's samples.
  stats::Tracer::HistogramSet base_hist_;
  /// Per-plane heap-allocation counters at construction (alloc_tracker.h);
  /// Write() reports deltas as allocs_per_tuple_<plane> scalars.
  stats::AllocCounts base_allocs_;
  /// Steady-state alloc window (SetSteadyStateAllocs); tuples == 0 means
  /// unset and Write() falls back to the whole-run delta.
  stats::AllocCounts steady_allocs_delta_;
  uint64_t steady_allocs_tuples_ = 0;
  /// Steady-state route-cache window (SetSteadyStateRouteCache); both
  /// counters == 0 means unset and Write() falls back to the whole-run
  /// delta for "route_cache_hit_rate".
  dht::RouteCache::Stats steady_route_cache_delta_;
  uint64_t tuples_processed_ = 0;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<Chart> charts_;
};

}  // namespace rjoin::bench

#endif  // RJOIN_BENCH_BENCH_COMMON_H_
