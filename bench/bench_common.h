#ifndef RJOIN_BENCH_BENCH_COMMON_H_
#define RJOIN_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stats/distribution.h"
#include "workload/experiment.h"

namespace rjoin::bench {

/// The paper's Section 8 base setup (10^3 nodes, 2*10^4 4-way joins,
/// theta = 0.9), scaled by RJOIN_SCALE (default 0.25 so the whole bench
/// suite runs in minutes; RJOIN_SCALE=paper for full size).
workload::ExperimentConfig PaperBaseConfig(uint64_t seed = 1);

/// The scale factor applied, for the printed header.
double AppliedScale();

/// Scales a paper-sized count (tuples, window sizes, checkpoints) by
/// RJOIN_SCALE. Continuous joins without windows accumulate state
/// quadratically in the tuple count, so the tuple axis must shrink together
/// with the query/node axes to keep scaled runs proportionate.
size_t ScaledCount(size_t paper_count);

/// ScaledCount over a whole axis.
std::vector<size_t> ScaledCounts(std::vector<size_t> paper_counts);

/// Prints a standard header naming the figure and the effective setup.
void PrintHeader(const std::string& figure,
                 const workload::ExperimentConfig& cfg);

/// Sum of a per-node load vector.
uint64_t SumLoads(const std::vector<uint64_t>& loads);

/// Average per node.
double PerNode(const std::vector<uint64_t>& loads);

/// Ranked distribution of one snapshot metric.
stats::RankedDistribution Ranked(const std::vector<uint64_t>& loads);

}  // namespace rjoin::bench

#endif  // RJOIN_BENCH_BENCH_COMMON_H_
