#include "bench/bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <numeric>
#include <optional>
#include <sstream>
#include <thread>

#include "core/interner.h"
#include "core/messages.h"
#include "core/planner.h"
#include "dht/route_cache.h"
#include "dht/transport.h"
#include "runtime/sharded_runtime.h"
#include "util/logging.h"

namespace rjoin::bench {

workload::ExperimentConfig PaperBaseConfig(uint64_t seed) {
  workload::ExperimentConfig cfg;
  cfg.num_nodes = 1000;
  cfg.num_queries = 20000;
  cfg.num_tuples = 400;
  cfg.way = 4;
  cfg.workload.num_relations = 10;
  cfg.workload.num_attributes = 10;
  cfg.workload.num_values = 100;
  cfg.workload.zipf_theta = 0.9;
  cfg.policy = core::PlannerPolicy::kRic;
  cfg.seed = seed;
  cfg.ApplyScale(AppliedScale());
  return cfg;
}

double AppliedScale() { return workload::ScaleFromEnv(0.25); }

size_t ScaledCount(size_t paper_count) {
  return std::max<size_t>(
      10, static_cast<size_t>(static_cast<double>(paper_count) *
                              AppliedScale()));
}

std::vector<size_t> ScaledCounts(std::vector<size_t> paper_counts) {
  for (auto& c : paper_counts) c = ScaledCount(c);
  return paper_counts;
}

void PrintHeader(const std::string& figure,
                 const workload::ExperimentConfig& cfg) {
  const uint32_t shards = workload::ResolveShardCount(cfg.shards);
  std::cout << "#### " << figure << " ####\n"
            << "# nodes=" << cfg.num_nodes << " queries=" << cfg.num_queries
            << " tuples=" << cfg.num_tuples << " way=" << cfg.way
            << " theta=" << cfg.workload.zipf_theta
            << " scale=" << AppliedScale() << " shards=";
  if (shards == 0) {
    std::cout << "serial";
  } else {
    std::cout << shards;
  }
  std::cout << " (RJOIN_SCALE=paper for full size)\n";
}

uint64_t SumLoads(const std::vector<uint64_t>& loads) {
  return std::accumulate(loads.begin(), loads.end(), uint64_t{0});
}

double PerNode(const std::vector<uint64_t>& loads) {
  if (loads.empty()) return 0.0;
  return static_cast<double>(SumLoads(loads)) /
         static_cast<double>(loads.size());
}

stats::RankedDistribution Ranked(const std::vector<uint64_t>& loads) {
  return stats::MakeRanked(loads);
}

std::string BenchOutDir() {
  std::string dir = ".";
  if (const char* env = std::getenv("RJOIN_BENCH_OUT");
      env != nullptr && *env != '\0') {
    dir = env;
  }
  // Create the directory if missing; fail loudly rather than let ofstream
  // silently drop every BENCH_*.json of the run.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  RJOIN_CHECK(!ec && std::filesystem::is_directory(dir))
      << "RJOIN_BENCH_OUT=" << dir
      << " does not exist and could not be created: " << ec.message();
  return dir;
}

size_t BenchRepeat() {
  const char* env = std::getenv("RJOIN_BENCH_REPEAT");
  if (env == nullptr || *env == '\0') return 1;
  const long v = std::atol(env);
  if (v <= 1) return 1;
  return static_cast<size_t>(std::min<long>(v, 32));
}

void RunRepeated(JsonReporter& json, const std::function<void()>& body) {
  const size_t repeats = BenchRepeat();
  std::vector<double> secs;
  std::vector<double> tps;
  secs.reserve(repeats);
  tps.reserve(repeats);
  for (size_t i = 0; i < repeats; ++i) {
    const uint64_t tuples_before = json.tuples_processed();
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    const double tuples =
        static_cast<double>(json.tuples_processed() - tuples_before);
    secs.push_back(s);
    tps.push_back(s > 0.0 ? tuples / s : 0.0);
    if (repeats > 1) {
      std::cout << "# repeat " << (i + 1) << "/" << repeats << ": " << s
                << " s, " << tps.back() << " tuples/s\n";
    }
  }
  if (repeats == 1) return;
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  const double tps_median = median(tps);
  const auto [tps_min, tps_max] = std::minmax_element(tps.begin(), tps.end());
  json.AddScalar("bench_repeats", static_cast<double>(repeats));
  json.AddScalar("tuples_per_sec_median", tps_median);
  json.AddScalar("tuples_per_sec_spread",
                 tps_median > 0.0 ? (*tps_max - *tps_min) / tps_median : 0.0);
  json.AddScalar("wall_seconds_median", median(secs));
}

namespace {

void AppendJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void AppendJsonNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no NaN/Inf.
    return;
  }
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << v;
  os << tmp.str();
}

const char* PolicyName(core::PlannerPolicy p) {
  switch (p) {
    case core::PlannerPolicy::kFirstInClause:
      return "first_in_clause";
    case core::PlannerPolicy::kRandom:
      return "random";
    case core::PlannerPolicy::kWorst:
      return "worst";
    case core::PlannerPolicy::kRic:
      return "ric";
  }
  return "unknown";
}

const char* RewriteLevelsName(core::RewriteIndexLevels l) {
  return l == core::RewriteIndexLevels::kValuePreferred ? "value_preferred"
                                                        : "include_attribute";
}

// The commit the bench binary ran against: $RJOIN_GIT_SHA when the caller
// (CI) pins it, else `git rev-parse HEAD` from the working directory,
// "unknown" outside a checkout. Provenance only — never fails the bench.
std::string GitSha() {
  if (const char* env = std::getenv("RJOIN_GIT_SHA");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::string sha;
  if (FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) sha.assign(buf);
    pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  if (sha.size() != 40 ||
      sha.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return "unknown";
  }
  return sha;
}

const char* BuildType() {
#ifdef RJOIN_BUILD_TYPE
  return RJOIN_BUILD_TYPE;
#else
  return "unknown";
#endif
}

}  // namespace

JsonReporter::JsonReporter(std::string figure, std::string title,
                           const workload::ExperimentConfig& cfg)
    : figure_(std::move(figure)),
      title_(std::move(title)),
      config_(cfg),
      start_(std::chrono::steady_clock::now()) {
  const core::MessagePool::GlobalStats pool = core::MessagePool::Aggregate();
  base_envelope_allocs_ = pool.envelopes_allocated;
  base_messages_ = pool.acquired;
  const core::KeyInterner::Stats interner =
      core::KeyInterner::Global().stats();
  base_interner_hits_ = interner.hits;
  base_interner_misses_ = interner.misses;
  const runtime::ShardedRuntime::MailboxStats mailbox =
      runtime::ShardedRuntime::AggregateMailbox();
  base_mailbox_batches_ = mailbox.batches;
  base_mailbox_envelopes_ = mailbox.envelopes;
  const dht::RouteCache::Stats cache = dht::RouteCache::Aggregate();
  base_route_cache_hits_ = cache.hits;
  base_route_cache_misses_ = cache.misses;
  const dht::Transport::CoalesceStats coalesce =
      dht::Transport::AggregateCoalesce();
  base_coalesce_groups_ = coalesce.groups;
  base_coalesce_payloads_ = coalesce.payloads;
  const runtime::ShardedRuntime::SchedulerStats sched =
      runtime::ShardedRuntime::AggregateScheduler();
  base_sched_epochs_ = sched.epochs;
  base_watermark_stalls_ = sched.watermark_stalls;
  base_rendezvous_caps_ = sched.rendezvous_caps;
  base_equivalent_rounds_ = sched.equivalent_rounds;
  base_hist_ = stats::Tracer::Global().AggregateHistograms();
  base_allocs_ = stats::ReadAllocCounts();
}

stats::MessagePlaneSummary JsonReporter::PlaneDelta() const {
  stats::MessagePlaneSummary s;
  const core::MessagePool::GlobalStats pool = core::MessagePool::Aggregate();
  s.messages = pool.acquired - base_messages_;
  s.envelope_allocs = pool.envelopes_allocated - base_envelope_allocs_;
  s.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const core::KeyInterner::Stats interner =
      core::KeyInterner::Global().stats();
  s.interned_keys = interner.entries;  // absolute: the dictionary is global
  s.interner_hits = interner.hits - base_interner_hits_;
  s.interner_misses = interner.misses - base_interner_misses_;
  const runtime::ShardedRuntime::MailboxStats mailbox =
      runtime::ShardedRuntime::AggregateMailbox();
  s.mailbox_batches = mailbox.batches - base_mailbox_batches_;
  s.mailbox_envelopes = mailbox.envelopes - base_mailbox_envelopes_;
  const dht::RouteCache::Stats cache = dht::RouteCache::Aggregate();
  s.route_cache_hits = cache.hits - base_route_cache_hits_;
  s.route_cache_misses = cache.misses - base_route_cache_misses_;
  const dht::Transport::CoalesceStats coalesce =
      dht::Transport::AggregateCoalesce();
  s.coalesce_groups = coalesce.groups - base_coalesce_groups_;
  s.coalesce_payloads = coalesce.payloads - base_coalesce_payloads_;
  const runtime::ShardedRuntime::SchedulerStats sched =
      runtime::ShardedRuntime::AggregateScheduler();
  s.sched_epochs = sched.epochs - base_sched_epochs_;
  s.watermark_stalls = sched.watermark_stalls - base_watermark_stalls_;
  s.rendezvous_caps = sched.rendezvous_caps - base_rendezvous_caps_;
  s.equivalent_rounds = sched.equivalent_rounds - base_equivalent_rounds_;
  const stats::Tracer::HistogramSet hist =
      stats::Tracer::Global().AggregateHistograms();
  const stats::LogHistogram latency =
      hist.answer_latency.DiffFrom(base_hist_.answer_latency);
  s.answers = latency.count();
  s.answer_latency_p50 = latency.Percentile(50);
  s.answer_latency_p95 = latency.Percentile(95);
  s.answer_latency_p99 = latency.Percentile(99);
  const stats::LogHistogram stall =
      hist.stall_ns.DiffFrom(base_hist_.stall_ns);
  s.stall_wall_seconds = static_cast<double>(stall.sum()) / 1e9;
  s.stall_p99_us = stall.Percentile(99) / 1000;
  const stats::LogHistogram depth =
      hist.queue_depth.DiffFrom(base_hist_.queue_depth);
  s.queue_depth_p99 = depth.Percentile(99);
  const stats::AllocCounts allocs = stats::ReadAllocCounts();
  s.alloc_tuple = allocs.tuple() - base_allocs_.tuple();
  s.alloc_residual = allocs.residual() - base_allocs_.residual();
  s.alloc_message = allocs.message() - base_allocs_.message();
  s.alloc_other = allocs.other() - base_allocs_.other();
  s.alloc_pool_capacity =
      allocs.pool_capacity() - base_allocs_.pool_capacity();
  return s;
}

void JsonReporter::UpsertChart(Chart&& chart) {
  for (Chart& existing : charts_) {
    if (existing.title == chart.title) {
      existing = std::move(chart);
      return;
    }
  }
  charts_.push_back(std::move(chart));
}

void JsonReporter::AddChart(const std::string& title,
                            const std::string& x_label,
                            std::vector<double> xs,
                            std::vector<stats::Series> series) {
  UpsertChart(Chart{title, x_label, std::move(xs), std::move(series)});
}

void JsonReporter::AddChart(const stats::TableReporter& table) {
  AddChart(table.title(), table.x_label(), table.xs(), table.series());
}

void JsonReporter::AddRankedChart(
    const std::string& title, const std::vector<std::string>& labels,
    const std::vector<stats::RankedDistribution>& dists,
    size_t sample_points) {
  // Same rank grid PrintRankedFigure uses.
  size_t max_nodes = 0;
  for (const auto& d : dists) {
    max_nodes = std::max(max_nodes, d.sorted_desc.size());
  }
  Chart chart;
  chart.title = title;
  chart.x_label = "rank";
  for (size_t rank : stats::SampleRankGrid(max_nodes, sample_points)) {
    chart.xs.push_back(static_cast<double>(rank));
  }
  for (size_t d = 0; d < dists.size(); ++d) {
    stats::Series s{d < labels.size() ? labels[d] : "series" + std::to_string(d),
                    {}};
    for (double rank : chart.xs) {
      s.values.push_back(static_cast<double>(
          dists[d].at_rank(static_cast<size_t>(rank))));
    }
    chart.series.push_back(std::move(s));
  }
  UpsertChart(std::move(chart));
}

void JsonReporter::AddScalar(const std::string& name, double value) {
  for (auto& [existing, existing_value] : scalars_) {
    if (existing == name) {
      existing_value = value;
      return;
    }
  }
  scalars_.emplace_back(name, value);
}

void JsonReporter::PrintMessagePlane(std::ostream& os) const {
  stats::PrintMessagePlaneSummary(os, PlaneDelta());
}

void JsonReporter::SetSteadyStateAllocs(const stats::AllocCounts& begin,
                                        const stats::AllocCounts& end,
                                        uint64_t window_tuples) {
  if (window_tuples == 0) return;
  for (int i = 0; i < stats::kNumAllocPlanes; ++i) {
    steady_allocs_delta_.counts[i] = end.counts[i] - begin.counts[i];
  }
  steady_allocs_tuples_ = window_tuples;
}

void JsonReporter::SetSteadyStateRouteCache(const dht::RouteCache::Stats& begin,
                                            const dht::RouteCache::Stats& end) {
  steady_route_cache_delta_.hits = end.hits - begin.hits;
  steady_route_cache_delta_.misses = end.misses - begin.misses;
}

void JsonReporter::AddSpeedup(const std::string& name,
                              double baseline_per_sec,
                              double contender_per_sec) {
  const double speedup =
      baseline_per_sec > 0.0 ? contender_per_sec / baseline_per_sec : 0.0;
  AddScalar("speedup", speedup);
  AddScalar(name, speedup);
}

std::string JsonReporter::Write() const {
  const std::string path = BenchOutDir() + "/BENCH_" + figure_ + ".json";

  std::ostringstream os;
  os << "{\n  \"figure\": ";
  AppendJsonString(os, figure_);
  os << ",\n  \"title\": ";
  AppendJsonString(os, title_);
  os << ",\n  \"scale\": ";
  AppendJsonNumber(os, AppliedScale());
  os << ",\n  \"config\": {"
     << "\"num_nodes\": " << config_.num_nodes
     << ", \"num_queries\": " << config_.num_queries
     << ", \"num_tuples\": " << config_.num_tuples
     << ", \"way\": " << config_.way
     << ", \"zipf_theta\": ";
  AppendJsonNumber(os, config_.workload.zipf_theta);
  os << ", \"num_relations\": " << config_.workload.num_relations
     << ", \"num_attributes\": " << config_.workload.num_attributes
     << ", \"num_values\": " << config_.workload.num_values
     << ", \"policy\": ";
  AppendJsonString(os, PolicyName(config_.policy));
  os << ", \"rewrite_levels\": ";
  AppendJsonString(os, RewriteLevelsName(config_.rewrite_levels));
  os << ", \"charge_ric\": " << (config_.charge_ric ? "true" : "false")
     << ", \"reuse_ric_info\": " << (config_.reuse_ric_info ? "true" : "false")
     << ", \"attr_replication\": " << config_.attr_replication
     << ", \"shards\": " << workload::ResolveShardCount(config_.shards)
     << ", \"seed\": " << config_.seed << "}";

  // Provenance: which commit/build/knobs produced the file, so a BENCH_*.json
  // pulled from a CI artifact is self-describing (the trajectory README's
  // caveats stop depending on humans remembering the run setup).
  const std::optional<workload::ChurnSpec> churn =
      workload::ResolveChurnSpec(config_);
  os << ",\n  \"provenance\": {\"git_sha\": ";
  AppendJsonString(os, GitSha());
  os << ", \"build_type\": ";
  AppendJsonString(os, BuildType());
  os << ", \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ", \"rjoin_shards\": " << workload::ResolveShardCount(config_.shards)
     << ", \"rjoin_churn\": ";
  AppendJsonNumber(os, churn ? churn->rate : 0.0);
  os << ", \"rjoin_trace\": "
     << (stats::Tracer::Global().enabled() ? 1 : 0)
     << ", \"rjoin_scale\": ";
  AppendJsonNumber(os, AppliedScale());
  os << "}";

  // Measured runtime of the whole figure (construction to Write): the bench
  // trajectory tracks real speedups, not just virtual message counts.
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  os << ",\n  \"scalars\": {";
  os << "\"wall_seconds\": ";
  AppendJsonNumber(os, wall_seconds);
  os << ", \"tuples_processed\": ";
  AppendJsonNumber(os, static_cast<double>(tuples_processed_));
  os << ", \"tuples_per_sec\": ";
  AppendJsonNumber(os, wall_seconds > 0.0
                           ? static_cast<double>(tuples_processed_) /
                                 wall_seconds
                           : 0.0);
  // Message-plane scalars: every delivered message is one pooled-envelope
  // acquire, and envelope allocations only happen while the in-flight
  // high-water mark still grows. "allocs_per_tuple" is the data-plane heap
  // allocation count (tuple + residual + message planes, alloc_tracker.h)
  // per streamed tuple — the zero-alloc rewrite hot path targets <= 1; the
  // per-plane breakdown makes a regression locatable. Capacity growth of
  // amortized structures (slab doubling, table rehashes) is charged to the
  // pool-capacity plane and reported as its own scalar: it is O(log n) per
  // structure by construction, so folding it into the per-record headline
  // would just measure how many structures doubled inside the window, not
  // whether a record started costing heap again. When the figure
  // marked a steady-state window (SetSteadyStateAllocs), the per-plane
  // scalars cover that window and the whole-run average survives as
  // allocs_per_tuple_lifetime; otherwise they cover the whole run. The old
  // envelope-only metric survives as envelope_allocs_per_tuple. The
  // interner scalars track the key-id plane: hit rate near one means
  // steady-state key construction neither allocates nor hashes beyond the
  // dictionary probe; the mailbox scalars track cross-shard batching
  // (sharded runs).
  const stats::MessagePlaneSummary plane = PlaneDelta();
  const double messages = static_cast<double>(plane.messages);
  const double envelope_allocs = static_cast<double>(plane.envelope_allocs);
  const double tuples = static_cast<double>(tuples_processed_);
  auto per_tuple = [&](uint64_t count) {
    return tuples_processed_ > 0 ? static_cast<double>(count) / tuples : 0.0;
  };
  const bool steady = steady_allocs_tuples_ > 0;
  auto alloc_per_tuple = [&](uint64_t window_count, uint64_t run_count) {
    if (steady) {
      return static_cast<double>(window_count) /
             static_cast<double>(steady_allocs_tuples_);
    }
    return per_tuple(run_count);
  };
  const uint64_t run_data_plane =
      plane.alloc_tuple + plane.alloc_residual + plane.alloc_message;
  os << ", \"messages_per_sec\": ";
  AppendJsonNumber(os, wall_seconds > 0.0 ? messages / wall_seconds : 0.0);
  os << ", \"allocs_per_tuple\": ";
  AppendJsonNumber(os, alloc_per_tuple(steady_allocs_delta_.data_plane(),
                                       run_data_plane));
  os << ", \"allocs_per_tuple_tuple\": ";
  AppendJsonNumber(
      os, alloc_per_tuple(steady_allocs_delta_.tuple(), plane.alloc_tuple));
  os << ", \"allocs_per_tuple_residual\": ";
  AppendJsonNumber(os, alloc_per_tuple(steady_allocs_delta_.residual(),
                                       plane.alloc_residual));
  os << ", \"allocs_per_tuple_message\": ";
  AppendJsonNumber(os, alloc_per_tuple(steady_allocs_delta_.message(),
                                       plane.alloc_message));
  os << ", \"allocs_per_tuple_other\": ";
  AppendJsonNumber(
      os, alloc_per_tuple(steady_allocs_delta_.other(), plane.alloc_other));
  os << ", \"allocs_per_tuple_pool_capacity\": ";
  AppendJsonNumber(os, alloc_per_tuple(steady_allocs_delta_.pool_capacity(),
                                       plane.alloc_pool_capacity));
  os << ", \"allocs_per_tuple_lifetime\": ";
  AppendJsonNumber(os, per_tuple(run_data_plane));
  if (steady) {
    os << ", \"alloc_steady_window_tuples\": ";
    AppendJsonNumber(os, static_cast<double>(steady_allocs_tuples_));
  }
  os << ", \"envelope_allocs_per_tuple\": ";
  AppendJsonNumber(os, tuples_processed_ > 0 ? envelope_allocs / tuples
                                             : 0.0);
  const double interns =
      static_cast<double>(plane.interner_hits + plane.interner_misses);
  os << ", \"interned_keys\": ";
  AppendJsonNumber(os, static_cast<double>(plane.interned_keys));
  os << ", \"interner_hit_rate\": ";
  AppendJsonNumber(
      os, interns > 0.0 ? static_cast<double>(plane.interner_hits) / interns
                        : 0.0);
  // Routing-plane scalars (docs/routing.md): route_cache_hit_rate near one
  // means steady-state sends resolve their Chord path from the per-node
  // cache instead of the O(log N) finger walk; coalesced_fanout_width is
  // the mean payload count per MultiSendKeys wire message (the publication
  // fan-out's 2k index messages collapse toward the distinct-destination
  // count); event_queue_depth_p99 tracks the pending-event backlog the
  // calendar queues absorb at O(1) per push/pop.
  const double resolves = static_cast<double>(plane.route_cache_hits +
                                              plane.route_cache_misses);
  const double lifetime_rate =
      resolves > 0.0 ? static_cast<double>(plane.route_cache_hits) / resolves
                     : 0.0;
  // Like allocs_per_tuple, the headline hit rate prefers the steady-state
  // checkpoint window when the bench marked one: every key's first route is
  // a structural miss, so the lifetime rate under-reports what warm
  // operation actually pays.
  const uint64_t steady_resolves =
      steady_route_cache_delta_.hits + steady_route_cache_delta_.misses;
  os << ", \"route_cache_hit_rate\": ";
  AppendJsonNumber(os, steady_resolves > 0
                           ? steady_route_cache_delta_.hit_rate()
                           : lifetime_rate);
  os << ", \"route_cache_hit_rate_lifetime\": ";
  AppendJsonNumber(os, lifetime_rate);
  os << ", \"route_cache_resolves\": ";
  AppendJsonNumber(os, resolves);
  os << ", \"coalesced_fanout_width\": ";
  AppendJsonNumber(os, plane.coalesce_groups > 0
                           ? static_cast<double>(plane.coalesce_payloads) /
                                 static_cast<double>(plane.coalesce_groups)
                           : 0.0);
  os << ", \"coalesced_groups\": ";
  AppendJsonNumber(os, static_cast<double>(plane.coalesce_groups));
  os << ", \"event_queue_depth_p99\": ";
  AppendJsonNumber(os, static_cast<double>(plane.queue_depth_p99));
  os << ", \"mailbox_batches\": ";
  AppendJsonNumber(os, static_cast<double>(plane.mailbox_batches));
  os << ", \"mailbox_batch_width\": ";
  AppendJsonNumber(os, plane.mailbox_batches > 0
                           ? static_cast<double>(plane.mailbox_envelopes) /
                                 static_cast<double>(plane.mailbox_batches)
                           : 0.0);
  // Watermark-scheduler health: how many global barriers the overlap model
  // eliminated (epochs vs equivalent lockstep rounds), plus the stall and
  // churn-cap counts. Stalls are wall-clock-dependent — a perf signal, not
  // part of the deterministic result surface.
  os << ", \"sched_epochs\": ";
  AppendJsonNumber(os, static_cast<double>(plane.sched_epochs));
  os << ", \"watermark_stalls\": ";
  AppendJsonNumber(os, static_cast<double>(plane.watermark_stalls));
  os << ", \"rendezvous_caps\": ";
  AppendJsonNumber(os, static_cast<double>(plane.rendezvous_caps));
  os << ", \"overlap_ratio\": ";
  AppendJsonNumber(os, plane.equivalent_rounds > 0
                           ? 1.0 - static_cast<double>(plane.sched_epochs) /
                                 static_cast<double>(plane.equivalent_rounds)
                           : 0.0);
  os << ", \"hardware_threads\": ";
  AppendJsonNumber(os,
                   static_cast<double>(std::thread::hardware_concurrency()));
  // Observability scalars (docs/observability.md): end-to-end answer latency
  // and routing/rewrite percentiles in virtual ticks/hops — deterministic
  // across shard counts — plus the wall-clock stall breakdown (perf signal).
  const stats::Tracer::HistogramSet hist =
      stats::Tracer::Global().AggregateHistograms();
  const stats::LogHistogram route =
      hist.route_hops.DiffFrom(base_hist_.route_hops);
  const stats::LogHistogram rewrite =
      hist.rewrite_depth.DiffFrom(base_hist_.rewrite_depth);
  os << ", \"answers\": ";
  AppendJsonNumber(os, static_cast<double>(plane.answers));
  os << ", \"answer_latency_p50\": ";
  AppendJsonNumber(os, static_cast<double>(plane.answer_latency_p50));
  os << ", \"answer_latency_p95\": ";
  AppendJsonNumber(os, static_cast<double>(plane.answer_latency_p95));
  os << ", \"answer_latency_p99\": ";
  AppendJsonNumber(os, static_cast<double>(plane.answer_latency_p99));
  os << ", \"route_hops_p50\": ";
  AppendJsonNumber(os, static_cast<double>(route.Percentile(50)));
  os << ", \"route_hops_p99\": ";
  AppendJsonNumber(os, static_cast<double>(route.Percentile(99)));
  os << ", \"rewrite_depth_p99\": ";
  AppendJsonNumber(os, static_cast<double>(rewrite.Percentile(99)));
  os << ", \"stall_wall_seconds\": ";
  AppendJsonNumber(os, plane.stall_wall_seconds);
  os << ", \"stall_p99_us\": ";
  AppendJsonNumber(os, static_cast<double>(plane.stall_p99_us));
  os << ", \"trace_events\": ";
  AppendJsonNumber(os,
                   stats::Tracer::Global().enabled()
                       ? static_cast<double>(
                             stats::Tracer::Global().MergedEvents().size())
                       : 0.0);
  for (size_t i = 0; i < scalars_.size(); ++i) {
    os << ", ";
    AppendJsonString(os, scalars_[i].first);
    os << ": ";
    AppendJsonNumber(os, scalars_[i].second);
  }
  os << "}";

  os << ",\n  \"charts\": [";
  for (size_t c = 0; c < charts_.size(); ++c) {
    const Chart& chart = charts_[c];
    os << (c > 0 ? ",\n    {" : "\n    {") << "\"title\": ";
    AppendJsonString(os, chart.title);
    os << ", \"x_label\": ";
    AppendJsonString(os, chart.x_label);
    os << ",\n     \"x\": [";
    for (size_t i = 0; i < chart.xs.size(); ++i) {
      if (i > 0) os << ", ";
      AppendJsonNumber(os, chart.xs[i]);
    }
    os << "],\n     \"series\": [";
    for (size_t s = 0; s < chart.series.size(); ++s) {
      if (s > 0) os << ",\n                ";
      os << "{\"label\": ";
      AppendJsonString(os, chart.series[s].label);
      os << ", \"values\": [";
      for (size_t i = 0; i < chart.series[s].values.size(); ++i) {
        if (i > 0) os << ", ";
        AppendJsonNumber(os, chart.series[s].values[i]);
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";

  std::ofstream out(path);
  out << os.str();
  out.close();
  if (!out) {
    std::cerr << "failed to write " << path << "\n";
  } else {
    std::cout << "wrote " << path << "\n";
  }

  // With tracing on, drop the merged virtual-time timeline next to the bench
  // JSON — chrome://tracing and ui.perfetto.dev load it directly.
  if (stats::Tracer::Global().enabled()) {
    const std::string trace_path =
        BenchOutDir() + "/TRACE_" + figure_ + ".json";
    if (stats::Tracer::Global().WriteChromeTraceFile(trace_path)) {
      std::cout << "wrote " << trace_path << "\n";
    } else {
      std::cerr << "failed to write " << trace_path << "\n";
    }
  }
  return path;
}

}  // namespace rjoin::bench
