#include "bench/bench_common.h"

#include <iostream>
#include <numeric>

#include "core/planner.h"

namespace rjoin::bench {

workload::ExperimentConfig PaperBaseConfig(uint64_t seed) {
  workload::ExperimentConfig cfg;
  cfg.num_nodes = 1000;
  cfg.num_queries = 20000;
  cfg.num_tuples = 400;
  cfg.way = 4;
  cfg.workload.num_relations = 10;
  cfg.workload.num_attributes = 10;
  cfg.workload.num_values = 100;
  cfg.workload.zipf_theta = 0.9;
  cfg.policy = core::PlannerPolicy::kRic;
  cfg.seed = seed;
  cfg.ApplyScale(AppliedScale());
  return cfg;
}

double AppliedScale() { return workload::ScaleFromEnv(0.25); }

size_t ScaledCount(size_t paper_count) {
  return std::max<size_t>(
      10, static_cast<size_t>(static_cast<double>(paper_count) *
                              AppliedScale()));
}

std::vector<size_t> ScaledCounts(std::vector<size_t> paper_counts) {
  for (auto& c : paper_counts) c = ScaledCount(c);
  return paper_counts;
}

void PrintHeader(const std::string& figure,
                 const workload::ExperimentConfig& cfg) {
  std::cout << "#### " << figure << " ####\n"
            << "# nodes=" << cfg.num_nodes << " queries=" << cfg.num_queries
            << " tuples=" << cfg.num_tuples << " way=" << cfg.way
            << " theta=" << cfg.workload.zipf_theta
            << " scale=" << AppliedScale()
            << " (RJOIN_SCALE=paper for full size)\n";
}

uint64_t SumLoads(const std::vector<uint64_t>& loads) {
  return std::accumulate(loads.begin(), loads.end(), uint64_t{0});
}

double PerNode(const std::vector<uint64_t>& loads) {
  if (loads.empty()) return 0.0;
  return static_cast<double>(SumLoads(loads)) /
         static_cast<double>(loads.size());
}

stats::RankedDistribution Ranked(const std::vector<uint64_t>& loads) {
  return stats::MakeRanked(loads);
}

}  // namespace rjoin::bench
