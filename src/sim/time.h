#ifndef RJOIN_SIM_TIME_H_
#define RJOIN_SIM_TIME_H_

#include <cstdint>

namespace rjoin::sim {

/// Virtual simulation time in abstract "ticks". The simulator makes no
/// assumption about what a tick is; the experiments treat one tick as roughly
/// one network hop of latency.
using SimTime = uint64_t;

inline constexpr SimTime kTimeZero = 0;

/// "Never": the identity of min-folds over times (watermark frontiers,
/// rendezvous horizons). Arithmetic on it must saturate, not wrap.
inline constexpr SimTime kTimeMax = UINT64_MAX;

/// a + b clamped to kTimeMax (frontier math adds lookaheads to kTimeMax
/// sentinels; an overflowing add would wrap into the past).
inline constexpr SimTime SaturatingAdd(SimTime a, SimTime b) {
  return a > kTimeMax - b ? kTimeMax : a + b;
}

}  // namespace rjoin::sim

#endif  // RJOIN_SIM_TIME_H_
