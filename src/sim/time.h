#ifndef RJOIN_SIM_TIME_H_
#define RJOIN_SIM_TIME_H_

#include <cstdint>

namespace rjoin::sim {

/// Virtual simulation time in abstract "ticks". The simulator makes no
/// assumption about what a tick is; the experiments treat one tick as roughly
/// one network hop of latency.
using SimTime = uint64_t;

inline constexpr SimTime kTimeZero = 0;

}  // namespace rjoin::sim

#endif  // RJOIN_SIM_TIME_H_
