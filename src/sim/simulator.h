#ifndef RJOIN_SIM_SIMULATOR_H_
#define RJOIN_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "core/messages.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace rjoin::sim {

/// Deterministic discrete-event simulator. All network activity (message
/// hops, timers, garbage-collection sweeps) is scheduled here. The paper's
/// evaluation ran "multiple Chord nodes in one machine"; this is the C++
/// equivalent of that harness.
///
/// Events are pooled envelopes (core::Envelope). Typed message envelopes
/// are handed to the attached core::EnvelopeDispatcher (the transport);
/// Control envelopes — timers and test closures scheduled through
/// ScheduleAfter/ScheduleAt — run inline. The simulator owns the serial
/// path's MessagePool, declared before the queue so pending envelopes are
/// released into a still-live pool on destruction.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Pool the serial delivery path draws envelopes from.
  core::MessagePool& pool() { return pool_; }

  /// Receiver of typed (non-Control) envelopes; the transport attaches
  /// itself here. Without a dispatcher, popping a typed envelope aborts.
  void set_dispatcher(core::EnvelopeDispatcher* dispatcher) {
    dispatcher_ = dispatcher;
  }

  /// Schedules `env` (delivery fields already set) at absolute time `when`.
  void Schedule(SimTime when, core::EnvelopeRef env);

  /// Schedules `action` to run `delay` ticks from now (Control envelope).
  void ScheduleAfter(SimTime delay, std::function<void()> action) {
    ScheduleAt(now_ + delay, std::move(action));
  }

  /// Schedules `action` at an absolute time (must be >= Now()).
  void ScheduleAt(SimTime when, std::function<void()> action);

  /// Runs events until the queue drains. Returns the number executed.
  uint64_t Run();

  /// Runs events with time <= `until`. Advances the clock to `until` even if
  /// the queue drains earlier. Returns the number executed.
  uint64_t RunUntil(SimTime until);

  /// Executes at most `max_events` events. Returns the number executed.
  uint64_t RunSteps(uint64_t max_events);

  bool Idle() const { return queue_.empty(); }
  size_t PendingEvents() const { return queue_.size(); }
  uint64_t TotalEventsExecuted() const { return executed_; }

  /// Drops all pending events (clock is unchanged).
  void Reset();

 private:
  void Step();

  core::MessagePool pool_;  // before queue_: members destroy in reverse
  EventQueue queue_;
  core::EnvelopeDispatcher* dispatcher_ = nullptr;
  SimTime now_ = kTimeZero;
  uint64_t executed_ = 0;
};

}  // namespace rjoin::sim

#endif  // RJOIN_SIM_SIMULATOR_H_
