#ifndef RJOIN_SIM_SIMULATOR_H_
#define RJOIN_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace rjoin::sim {

/// Deterministic discrete-event simulator. All network activity (message
/// hops, timers, garbage-collection sweeps) is scheduled here. The paper's
/// evaluation ran "multiple Chord nodes in one machine"; this is the C++
/// equivalent of that harness.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules `action` to run `delay` ticks from now.
  void ScheduleAfter(SimTime delay, std::function<void()> action) {
    queue_.Push(now_ + delay, std::move(action));
  }

  /// Schedules `action` at an absolute time (must be >= Now()).
  void ScheduleAt(SimTime when, std::function<void()> action);

  /// Runs events until the queue drains. Returns the number executed.
  uint64_t Run();

  /// Runs events with time <= `until`. Advances the clock to `until` even if
  /// the queue drains earlier. Returns the number executed.
  uint64_t RunUntil(SimTime until);

  /// Executes at most `max_events` events. Returns the number executed.
  uint64_t RunSteps(uint64_t max_events);

  bool Idle() const { return queue_.empty(); }
  size_t PendingEvents() const { return queue_.size(); }
  uint64_t TotalEventsExecuted() const { return executed_; }

  /// Drops all pending events (clock is unchanged).
  void Reset();

 private:
  void Step();

  EventQueue queue_;
  SimTime now_ = kTimeZero;
  uint64_t executed_ = 0;
};

}  // namespace rjoin::sim

#endif  // RJOIN_SIM_SIMULATOR_H_
