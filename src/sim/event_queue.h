#ifndef RJOIN_SIM_EVENT_QUEUE_H_
#define RJOIN_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "core/messages.h"
#include "sim/calendar_queue.h"
#include "sim/time.h"

namespace rjoin::sim {

/// Pending-event set of the serial simulator, ordered by (time, insertion
/// order). Events with equal timestamps execute in insertion order (FIFO),
/// which keeps runs fully deterministic. Envelopes are pooled
/// (core::MessagePool) and moved in and out of flat vectors, so pushing and
/// popping a message performs no heap allocation in steady state.
///
/// Backed by a two-level calendar queue (sim/calendar_queue.h): O(1) push
/// and pop in the steady state where events land within a 1024-tick window
/// of the cursor, versus the O(log H) sift of the old std::push_heap /
/// pop_heap vector at deep backlogs.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `env` at absolute time `env->time`, stamping `env->order`
  /// with the FIFO tie-break sequence.
  void Push(core::EnvelopeRef env);

  bool empty() const { return calendar_.empty(); }
  size_t size() const { return calendar_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  SimTime PeekTime() const { return calendar_.PeekTime(); }

  /// Removes and returns the earliest pending event. Requires !empty().
  core::EnvelopeRef Pop() { return calendar_.Pop(); }

  /// Discards all pending events (envelopes return to their pools).
  void Clear();

 private:
  struct Later {
    bool operator()(const core::EnvelopeRef& a,
                    const core::EnvelopeRef& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->order > b->order;
    }
  };

  CalendarQueue<Later> calendar_;
  uint64_t next_order_ = 0;
};

}  // namespace rjoin::sim

#endif  // RJOIN_SIM_EVENT_QUEUE_H_
