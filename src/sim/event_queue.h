#ifndef RJOIN_SIM_EVENT_QUEUE_H_
#define RJOIN_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace rjoin::sim {

/// A scheduled callback. Events with equal timestamps execute in insertion
/// order (FIFO), which keeps runs fully deterministic.
struct Event {
  SimTime time = 0;
  uint64_t seq = 0;
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, seq).
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues an event at absolute time `time`.
  void Push(SimTime time, std::function<void()> action);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  SimTime PeekTime() const { return heap_.top().time; }

  /// Removes and returns the earliest pending event. Requires !empty().
  Event Pop();

  /// Discards all pending events.
  void Clear();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace rjoin::sim

#endif  // RJOIN_SIM_EVENT_QUEUE_H_
