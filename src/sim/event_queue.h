#ifndef RJOIN_SIM_EVENT_QUEUE_H_
#define RJOIN_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "core/messages.h"
#include "sim/time.h"

namespace rjoin::sim {

/// Min-heap of scheduled envelopes ordered by (time, insertion order).
/// Events with equal timestamps execute in insertion order (FIFO), which
/// keeps runs fully deterministic. Envelopes are pooled (core::MessagePool)
/// and moved in and out of the heap's flat vector, so pushing and popping a
/// message performs no heap allocation in steady state — the old
/// std::function-of-closure representation cost two to three allocations
/// per message (closure box plus shared payload holder plus the
/// priority_queue's copy-out).
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `env` at absolute time `env->time`, stamping `env->order`
  /// with the FIFO tie-break sequence.
  void Push(core::EnvelopeRef env);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  SimTime PeekTime() const { return heap_.front()->time; }

  /// Removes and returns the earliest pending event. Requires !empty().
  core::EnvelopeRef Pop();

  /// Discards all pending events (envelopes return to their pools).
  void Clear();

 private:
  struct Later {
    bool operator()(const core::EnvelopeRef& a,
                    const core::EnvelopeRef& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->order > b->order;
    }
  };

  std::vector<core::EnvelopeRef> heap_;  // std::push_heap/pop_heap on Later
  uint64_t next_order_ = 0;
};

}  // namespace rjoin::sim

#endif  // RJOIN_SIM_EVENT_QUEUE_H_
