#include "sim/simulator.h"

#include "util/logging.h"

namespace rjoin::sim {

void Simulator::ScheduleAt(SimTime when, std::function<void()> action) {
  RJOIN_CHECK(when >= now_) << "cannot schedule events in the past";
  queue_.Push(when, std::move(action));
}

void Simulator::Step() {
  Event ev = queue_.Pop();
  now_ = ev.time;
  ++executed_;
  ev.action();
}

uint64_t Simulator::Run() {
  const uint64_t before = executed_;
  while (!queue_.empty()) Step();
  return executed_ - before;
}

uint64_t Simulator::RunUntil(SimTime until) {
  const uint64_t before = executed_;
  while (!queue_.empty() && queue_.PeekTime() <= until) Step();
  if (now_ < until) now_ = until;
  return executed_ - before;
}

uint64_t Simulator::RunSteps(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && !queue_.empty()) {
    Step();
    ++n;
  }
  return n;
}

void Simulator::Reset() { queue_.Clear(); }

}  // namespace rjoin::sim
