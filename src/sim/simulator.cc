#include "sim/simulator.h"

#include "stats/trace.h"
#include "util/logging.h"

namespace rjoin::sim {

void Simulator::Schedule(SimTime when, core::EnvelopeRef env) {
  RJOIN_CHECK(when >= now_) << "cannot schedule events in the past";
  env->time = when;
  queue_.Push(std::move(env));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> action) {
  core::EnvelopeRef env = pool_.Acquire();
  env->task = core::MessageTask(core::Control{std::move(action)});
  Schedule(when, std::move(env));
}

void Simulator::Step() {
  core::EnvelopeRef env = queue_.Pop();
  now_ = env->time;
  ++executed_;
  if (stats::Tracer::On()) {
    // Serial path: the queue's insertion order stands in for the emission
    // seq (the serial ordering key, docs/messaging.md).
    stats::Tracer::SetContext(env->time, env->src, env->order);
  }
  if (env->task.kind() == core::MessageKind::kControl) {
    core::RunControl(std::move(env));
    return;
  }
  RJOIN_CHECK(dispatcher_ != nullptr)
      << "typed envelope popped without a dispatcher (no transport attached)";
  dispatcher_->DispatchEnvelope(std::move(env));
}

uint64_t Simulator::Run() {
  const uint64_t before = executed_;
  while (!queue_.empty()) Step();
  return executed_ - before;
}

uint64_t Simulator::RunUntil(SimTime until) {
  const uint64_t before = executed_;
  while (!queue_.empty() && queue_.PeekTime() <= until) Step();
  if (now_ < until) now_ = until;
  return executed_ - before;
}

uint64_t Simulator::RunSteps(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && !queue_.empty()) {
    Step();
    ++n;
  }
  return n;
}

void Simulator::Reset() { queue_.Clear(); }

}  // namespace rjoin::sim
