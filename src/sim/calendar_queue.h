#ifndef RJOIN_SIM_CALENDAR_QUEUE_H_
#define RJOIN_SIM_CALENDAR_QUEUE_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/messages.h"
#include "sim/time.h"
#include "stats/trace.h"
#include "util/logging.h"

namespace rjoin::sim {

/// Two-level calendar queue over pooled envelopes: the event pump both the
/// serial simulator and every runtime shard use instead of a binary heap.
///
/// Level one is a ring of kBuckets one-tick buckets covering the window
/// [wstart_, wstart_ + kBuckets); an event at time t in the window lands in
/// bucket t & (kBuckets - 1) — the mapping is independent of wstart_, so
/// advancing the window (which only ever moves to the minimum pending time)
/// never rehashes anything. Level two is an overflow min-heap for far-future
/// timers; Pop() migrates overflow events into the ring as the window
/// reaches them. Push and Pop are O(1) in the steady state where almost all
/// events are due within the window — the discrete-event profile of this
/// codebase, whose hop latencies are tiny next to kBuckets — versus the
/// O(log H) sift of a binary heap at 10^5+ pending events.
///
/// Ordering: events pop in ascending `Later` order (the same comparator the
/// heaps used — (time, insertion order) serially, (time, src, emit-seq) on
/// shards). Within a bucket all events share one virtual tick; the bucket
/// keeps arrivals in a vector, sorts lazily when the bucket becomes the
/// drain target, and binary-inserts same-tick arrivals that land while the
/// bucket is already draining — those always order after everything already
/// popped (serially, order stamps are monotone; on a shard, a same-tick
/// arrival is a self-send of the executing event, whose emit-seq exceeds
/// every seq already executed). FIFO-within-a-tick is therefore exactly the
/// heap's order, which is what keeps S=1/4/7 runs bit-identical.
///
/// `Later(a, b)` must return true iff a orders strictly after b and must be
/// consistent with Envelope::time as the primary key.
template <class Later>
class CalendarQueue {
 public:
  static constexpr size_t kBuckets = 1024;  // power of two, one tick each
  static constexpr uint64_t kMask = kBuckets - 1;

  CalendarQueue() = default;
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;
  ~CalendarQueue() { Clear(); }

  void Push(core::EnvelopeRef env) {
    const SimTime t = env->time;
    if (total_ == 0) wstart_ = t;  // empty queue: snap the window
    if (t < wstart_) {
      // Event behind the cursor (legal: a bounded run can schedule at or
      // before a clock that already advanced). Rebase the window so the
      // bucket mapping stays alias-free; rare enough to pay the full dump.
      Rebase(t);
    }
    ++total_;
    stats::Tracer::RecordQueueDepth(total_);
    if (t < SaturatingAdd(wstart_, kBuckets)) {
      RingInsert(std::move(env), t);
    } else {
      overflow_.push_back(std::move(env));
      std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    }
  }

  bool empty() const { return total_ == 0; }
  size_t size() const { return total_; }

  /// Time of the earliest pending event. Requires !empty().
  SimTime PeekTime() const {
    const SimTime ring = RingMinTime();
    if (overflow_.empty()) return ring;
    const SimTime over = overflow_.front()->time;
    return ring < over ? ring : over;
  }

  /// Removes and returns the earliest pending event (ties by Later).
  /// Requires !empty().
  core::EnvelopeRef Pop() {
    RJOIN_DCHECK(total_ != 0);
    const SimTime t = PeekTime();
    // Advancing to the minimum pending time keeps every ring event inside
    // the new window (nothing is earlier), and never passes an overflow
    // event (t bounds those too) — so the move is always safe.
    wstart_ = t;
    // Overflow events the window has reached migrate into the ring; their
    // bucket ordering is restored by the same lazy sort as everyone else's.
    while (!overflow_.empty() &&
           overflow_.front()->time < SaturatingAdd(wstart_, kBuckets)) {
      std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
      core::EnvelopeRef env = std::move(overflow_.back());
      overflow_.pop_back();
      const SimTime et = env->time;
      RingInsert(std::move(env), et);
    }
    Bucket& b = buckets_[t & kMask];
    if (b.pos == b.items.size()) {
      // Window-end saturation: an event at kTimeMax sits past every finite
      // window, so it can never migrate — serve it from the overflow heap.
      RJOIN_DCHECK(!overflow_.empty());
      std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
      core::EnvelopeRef out = std::move(overflow_.back());
      overflow_.pop_back();
      --total_;
      return out;
    }
    if (!b.sorted) {
      std::sort(b.items.begin(), b.items.end(),
                [](const core::EnvelopeRef& x, const core::EnvelopeRef& y) {
                  return Later{}(y, x);
                });
      b.sorted = true;
    }
    core::EnvelopeRef out = std::move(b.items[b.pos]);
    ++b.pos;
    if (b.pos == b.items.size()) {
      b.items.clear();  // keeps capacity: steady state reuses the storage
      b.pos = 0;
      b.sorted = true;
      bitmap_[(t & kMask) >> 6] &= ~(uint64_t{1} << (t & 63));
    }
    --total_;
    return out;
  }

  /// Discards all pending events (envelopes return to their pools).
  void Clear() {
    for (Bucket& b : buckets_) {
      b.items.clear();
      b.pos = 0;
      b.sorted = true;
    }
    bitmap_.fill(0);
    overflow_.clear();
    total_ = 0;
    wstart_ = 0;
  }

 private:
  struct Bucket {
    std::vector<core::EnvelopeRef> items;
    uint32_t pos = 0;    ///< drain cursor; items[0, pos) already popped
    bool sorted = true;  ///< items[pos..] in ascending Later order
  };

  static bool Before(const core::EnvelopeRef& a, const core::EnvelopeRef& b) {
    return Later{}(b, a);
  }

  /// Dumps every pending ring event into the overflow heap and restarts the
  /// window at `t` (a push behind the current window start). O(pending),
  /// but such pushes are vanishingly rare: they need an event legally
  /// scheduled at or before a cursor that already advanced past it.
  void Rebase(SimTime t) {
    for (Bucket& b : buckets_) {
      for (size_t j = b.pos; j < b.items.size(); ++j) {
        overflow_.push_back(std::move(b.items[j]));
        std::push_heap(overflow_.begin(), overflow_.end(), Later{});
      }
      b.items.clear();
      b.pos = 0;
      b.sorted = true;
    }
    bitmap_.fill(0);
    wstart_ = t;
  }

  void RingInsert(core::EnvelopeRef env, SimTime t) {
    Bucket& b = buckets_[t & kMask];
    bitmap_[(t & kMask) >> 6] |= uint64_t{1} << (t & 63);
    if (b.items.empty() || !Before(env, b.items.back())) {
      b.items.push_back(std::move(env));  // in-order arrival: stays sorted
      return;
    }
    if (b.pos > 0) {
      // The bucket is actively draining (so already sorted): keep the
      // undrained suffix ordered. The insert position is never before the
      // cursor — a same-tick arrival orders after everything already
      // popped (see the class comment).
      auto it = std::upper_bound(b.items.begin() + b.pos, b.items.end(), env,
                                 Before);
      b.items.insert(it, std::move(env));
      return;
    }
    b.items.push_back(std::move(env));
    b.sorted = false;  // out-of-order arrival: sort lazily at drain time
  }

  /// Earliest time present in the ring (kTimeMax when the ring is empty):
  /// first set bitmap bit at or after wstart_'s bucket, circularly.
  SimTime RingMinTime() const {
    if (total_ == overflow_.size()) return kTimeMax;
    const uint32_t start = static_cast<uint32_t>(wstart_ & kMask);
    uint32_t word = start >> 6;
    // Mask off bits below the start position in the first word.
    uint64_t bits = bitmap_[word] & (~uint64_t{0} << (start & 63));
    for (uint32_t scanned = 0; scanned <= kWords; ++scanned) {
      if (bits != 0) {
        const uint32_t idx =
            (word << 6) + static_cast<uint32_t>(std::countr_zero(bits));
        // Circular distance from the start bucket to idx gives the offset
        // of that bucket's (unique) time from wstart_.
        const uint32_t dist =
            (idx - start + static_cast<uint32_t>(kBuckets)) & kMask;
        return wstart_ + dist;
      }
      word = (word + 1) % kWords;
      bits = bitmap_[word];
    }
    RJOIN_CHECK(false) << "ring accounting out of sync";
    return kTimeMax;
  }

  static constexpr uint32_t kWords = kBuckets / 64;

  std::array<Bucket, kBuckets> buckets_;
  std::array<uint64_t, kWords> bitmap_{};
  std::vector<core::EnvelopeRef> overflow_;  // max-Later heap (min time)
  size_t total_ = 0;
  SimTime wstart_ = 0;  ///< window start: no pending event is earlier
};

}  // namespace rjoin::sim

#endif  // RJOIN_SIM_CALENDAR_QUEUE_H_
