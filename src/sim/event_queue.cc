#include "sim/event_queue.h"

#include <utility>

namespace rjoin::sim {

void EventQueue::Push(SimTime time, std::function<void()> action) {
  heap_.push(Event{time, next_seq_++, std::move(action)});
}

Event EventQueue::Pop() {
  // std::priority_queue::top() is const; the event is copied out. The
  // function object is small (captures are pointers), so this is cheap.
  Event ev = heap_.top();
  heap_.pop();
  return ev;
}

void EventQueue::Clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace rjoin::sim
