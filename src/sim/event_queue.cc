#include "sim/event_queue.h"

#include <utility>

namespace rjoin::sim {

void EventQueue::Push(core::EnvelopeRef env) {
  env->order = next_order_++;
  calendar_.Push(std::move(env));
}

void EventQueue::Clear() {
  calendar_.Clear();
  next_order_ = 0;
}

}  // namespace rjoin::sim
