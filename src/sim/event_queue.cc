#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace rjoin::sim {

void EventQueue::Push(core::EnvelopeRef env) {
  env->order = next_order_++;
  heap_.push_back(std::move(env));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

core::EnvelopeRef EventQueue::Pop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  core::EnvelopeRef env = std::move(heap_.back());
  heap_.pop_back();
  return env;
}

void EventQueue::Clear() {
  heap_.clear();
  next_order_ = 0;
}

}  // namespace rjoin::sim
