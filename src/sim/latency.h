#ifndef RJOIN_SIM_LATENCY_H_
#define RJOIN_SIM_LATENCY_H_

#include <memory>

#include "sim/time.h"
#include "util/random.h"

namespace rjoin::sim {

/// Per-hop message latency model. The paper assumes a relaxed asynchronous
/// system with a universal maximum delay delta; concrete models below all
/// guarantee Delay() <= max_delay().
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Latency of one network hop.
  virtual SimTime Delay(Rng& rng) = 0;

  /// The universal bound delta on a single hop.
  virtual SimTime max_delay() const = 0;

  /// Lower bound on a single hop. The sharded runtime uses this as its
  /// conservative lookahead: a shard may execute ahead of its peers by up
  /// to this many ticks, because no message a peer emits can be due sooner
  /// than its emission time plus this bound. Models whose hops can take 0
  /// ticks must return 0 (the runtime then defers such cross-node
  /// deliveries by one tick, still deterministically).
  virtual SimTime min_delay() const { return 1; }

  /// Per-link lower bound on a hop from `src` to `dst`. The watermark
  /// scheduler folds this into each receiver's frontier — a link with a
  /// larger guaranteed minimum lets the receiving shard run further ahead
  /// of that peer. The default is the uniform bound; heterogeneous models
  /// (e.g. a slow WAN link between two clusters) override it. Must never
  /// exceed any delay the model can actually draw for that link.
  virtual SimTime MinDelayBetween(uint32_t /*src*/, uint32_t /*dst*/) const {
    return min_delay();
  }
};

/// Every hop takes exactly `ticks`.
class FixedLatency : public LatencyModel {
 public:
  explicit FixedLatency(SimTime ticks = 1) : ticks_(ticks) {}
  SimTime Delay(Rng&) override { return ticks_; }
  SimTime max_delay() const override { return ticks_; }
  SimTime min_delay() const override { return ticks_; }

 private:
  SimTime ticks_;
};

/// Uniform in [lo, hi].
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {}
  SimTime Delay(Rng& rng) override {
    return lo_ + rng.NextBounded(hi_ - lo_ + 1);
  }
  SimTime max_delay() const override { return hi_; }
  SimTime min_delay() const override { return lo_; }

 private:
  SimTime lo_;
  SimTime hi_;
};

/// Models "message delays due to heavy network traffic" (Section 4 of the
/// paper): with probability `burst_probability` a hop experiences congestion
/// and takes `burst_delay` ticks instead of `base_delay`.
class BurstyLatency : public LatencyModel {
 public:
  BurstyLatency(SimTime base_delay, SimTime burst_delay,
                double burst_probability)
      : base_(base_delay), burst_(burst_delay), p_(burst_probability) {}

  SimTime Delay(Rng& rng) override {
    return rng.NextBernoulli(p_) ? burst_ : base_;
  }
  SimTime max_delay() const override { return burst_ > base_ ? burst_ : base_; }
  SimTime min_delay() const override { return burst_ < base_ ? burst_ : base_; }

 private:
  SimTime base_;
  SimTime burst_;
  double p_;
};

}  // namespace rjoin::sim

#endif  // RJOIN_SIM_LATENCY_H_
