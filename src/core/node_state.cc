#include "core/node_state.h"

#include "core/replication.h"

namespace rjoin::core {

// Out-of-line where ReplicaStore is complete, so NodeState users never need
// the replication surface just to construct or destroy a node's state.
NodeState::NodeState(uint64_t ric_epoch) : rates(ric_epoch) {}
NodeState::~NodeState() = default;

}  // namespace rjoin::core
