#ifndef RJOIN_CORE_NODE_STATE_H_
#define RJOIN_CORE_NODE_STATE_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/residual.h"
#include "core/ric.h"
#include "sql/tuple.h"

namespace rjoin::core {

/// A query (input or rewritten) stored at a node, bucketed under the index
/// key it was stored with. `seen_projections` implements the DISTINCT rule
/// of Section 4: projections of tuples that already triggered this query.
struct StoredQuery {
  Residual residual;
  std::unique_ptr<std::unordered_set<std::string>> seen_projections;
};

/// Entry of the attribute-level tuple table (ALTT, Section 4): a tuple kept
/// for Delta time units so that an input query delayed in transit still
/// meets it.
struct AlttEntry {
  sql::TuplePtr tuple;
  uint64_t expires = 0;
};

/// All RJoin state of one network node. Buckets are keyed by IndexKey text;
/// a node only ever receives keys it is the successor of.
class NodeState {
 public:
  explicit NodeState(uint64_t ric_epoch) : rates(ric_epoch) {}

  /// Input and rewritten queries stored locally, by index key.
  std::unordered_map<std::string, std::vector<StoredQuery>> queries;

  /// Value-level tuple store (Procedure 2 stores every value-level tuple).
  std::unordered_map<std::string, std::vector<sql::TuplePtr>> tuples;

  /// Attribute-level tuple table with Delta-expiry (entries are appended in
  /// arrival order, so expired entries cluster at the front).
  std::unordered_map<std::string, std::deque<AlttEntry>> altt;

  /// Fingerprints of stored residuals of DISTINCT queries (key + content),
  /// so identical rewritten queries are stored once (set semantics).
  std::unordered_set<std::string> distinct_fingerprints;

  /// Tuple-arrival rates per key (the RIC source, Section 6).
  RateTracker rates;

  /// Cached RIC info (the candidate table, Section 7).
  CandidateTable ct;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_NODE_STATE_H_
