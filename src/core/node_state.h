#ifndef RJOIN_CORE_NODE_STATE_H_
#define RJOIN_CORE_NODE_STATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/key.h"
#include "core/key_map.h"
#include "core/residual.h"
#include "core/ric.h"
#include "core/slab_pool.h"
#include "core/tuple_ref.h"
#include "sql/tuple.h"
#include "stats/alloc_tracker.h"

namespace rjoin::core {

/// Flat open-addressing set of 64-bit fingerprints with erase support
/// (backward-shift deletion, so probing stays tombstone-free). The
/// DISTINCT bookkeeping — stored-residual fingerprints per node, answer
/// rows per query at the owner — keys by u64 hashes on the flat plane
/// instead of the seed's unordered_set<std::string>, and churn handoff
/// needs to *remove* a stored residual's fingerprint, which ProjectionSet
/// (insert-only) cannot.
///
/// Like ProjectionSet, two different payloads can collide in 64 bits
/// (probability ~n^2/2^64) and the later one is suppressed — same
/// documented trade.
class FlatU64Set {
 public:
  FlatU64Set() = default;
  FlatU64Set(FlatU64Set&&) noexcept = default;
  FlatU64Set& operator=(FlatU64Set&&) noexcept = default;

  /// Inserts `v`; returns false if it was already present.
  bool Insert(uint64_t v) {
    v = Alias(v);
    if (cap_ == 0 || (size_ + 1) * 10 >= cap_ * 7) Grow();
    size_t i = Home(v);
    for (; table_[i] != 0; i = Next(i)) {
      if (table_[i] == v) return false;
    }
    table_[i] = v;
    ++size_;
    return true;
  }

  bool Contains(uint64_t v) const {
    if (size_ == 0) return false;
    v = Alias(v);
    for (size_t i = Home(v); table_[i] != 0; i = Next(i)) {
      if (table_[i] == v) return true;
    }
    return false;
  }

  /// Removes `v`; returns false if it was absent. Backward-shift: the
  /// probe chain is compacted in place, no tombstones.
  bool Erase(uint64_t v) {
    if (size_ == 0) return false;
    v = Alias(v);
    size_t i = Home(v);
    for (; table_[i] != v; i = Next(i)) {
      if (table_[i] == 0) return false;
    }
    size_t j = i;
    for (;;) {
      j = Next(j);
      const uint64_t x = table_[j];
      if (x == 0) break;
      const size_t h = Home(x);
      // x may shift back into the hole unless its home lies in (i, j].
      const bool home_between =
          i <= j ? (i < h && h <= j) : (i < h || h <= j);
      if (!home_between) {
        table_[i] = x;
        i = j;
      }
    }
    table_[i] = 0;
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  static constexpr uint64_t kZeroAlias = 0x9e3779b97f4a7c15ull;

  static uint64_t Alias(uint64_t v) { return v == 0 ? kZeroAlias : v; }
  size_t Home(uint64_t v) const { return v & (cap_ - 1); }
  size_t Next(size_t i) const { return (i + 1) & (cap_ - 1); }

  void Grow() {
    stats::AllocScope plane(stats::AllocPlane::kPoolCapacity);
    const size_t cap = cap_ == 0 ? 16 : cap_ * 2;
    auto bigger = std::make_unique<uint64_t[]>(cap);
    for (size_t i = 0; i < cap; ++i) bigger[i] = 0;
    for (size_t i = 0; i < cap_; ++i) {
      const uint64_t v = table_[i];
      if (v == 0) continue;
      size_t j = v & (cap - 1);
      while (bigger[j] != 0) j = (j + 1) & (cap - 1);
      bigger[j] = v;
    }
    table_ = std::move(bigger);
    cap_ = cap;
  }

  std::unique_ptr<uint64_t[]> table_;
  size_t cap_ = 0;
  size_t size_ = 0;
};

/// Set of 64-bit projection fingerprints implementing the DISTINCT rule of
/// Section 4 (a tuple triggers a stored query only if its projection over
/// the referenced attributes is new). Most stored queries see at most a
/// handful of distinct projections, so the first few fingerprints live
/// inline in the StoredQuery record; only busier queries spill to one heap
/// table — versus the seed's unordered_set<std::string> that heap-allocated
/// the set, every bucket, and every projection string.
///
/// Fingerprints are 64-bit hashes of the projection text: two *different*
/// projections can collide (probability ~n^2/2^64), in which case the later
/// one is treated as already-seen and suppressed — a deliberate trade the
/// collision test in tests/interner_test.cc documents.
class ProjectionSet {
 public:
  ProjectionSet() = default;
  ProjectionSet(ProjectionSet&&) noexcept = default;
  ProjectionSet& operator=(ProjectionSet&&) noexcept = default;

  /// Inserts `fp`; returns false if it was already present.
  bool Insert(uint64_t fp) {
    if (fp == 0) fp = kZeroAlias;  // 0 marks empty table slots
    for (uint32_t i = 0; i < inline_count_; ++i) {
      if (inline_[i] == fp) return false;
    }
    if (table_cap_ == 0) {
      if (inline_count_ < kInline) {
        inline_[inline_count_++] = fp;
        ++size_;
        return true;
      }
      GrowTable();
    }
    return TableInsert(fp);
  }

  /// Distinct fingerprints inserted so far.
  uint32_t size() const { return size_; }

 private:
  static constexpr uint32_t kInline = 3;
  static constexpr uint64_t kZeroAlias = 0x9e3779b97f4a7c15ull;

  bool TableInsert(uint64_t fp) {
    if ((size_ + 1) * 10 >= table_cap_ * 7) GrowTable();
    size_t i = fp & (table_cap_ - 1);
    for (; table_[i] != 0; i = (i + 1) & (table_cap_ - 1)) {
      if (table_[i] == fp) return false;
    }
    table_[i] = fp;
    ++size_;
    return true;
  }

  void GrowTable() {
    stats::AllocScope plane(stats::AllocPlane::kPoolCapacity);
    const uint32_t cap = table_cap_ == 0 ? 16 : table_cap_ * 2;
    auto bigger = std::make_unique<uint64_t[]>(cap);
    for (uint32_t i = 0; i < cap; ++i) bigger[i] = 0;
    auto rehash = [&](uint64_t fp) {
      size_t i = fp & (cap - 1);
      while (bigger[i] != 0) i = (i + 1) & (cap - 1);
      bigger[i] = fp;
    };
    for (uint32_t i = 0; i < table_cap_; ++i) {
      if (table_[i] != 0) rehash(table_[i]);
    }
    for (uint32_t i = 0; i < inline_count_; ++i) rehash(inline_[i]);
    inline_count_ = 0;
    table_ = std::move(bigger);
    table_cap_ = cap;
  }

  uint64_t inline_[kInline] = {};
  uint32_t inline_count_ = 0;
  uint32_t size_ = 0;  // total distinct fingerprints (inline + table)
  uint32_t table_cap_ = 0;
  std::unique_ptr<uint64_t[]> table_;
};

/// A query (input or rewritten) stored at a node, bucketed under the
/// interned index key it was stored with.
struct StoredQuery {
  Residual residual;
  ProjectionSet seen_projections;
};

/// Entry of the attribute-level tuple table (ALTT, Section 4): a tuple kept
/// for Delta time units so that an input query delayed in transit still
/// meets it.
struct AlttEntry {
  TupleRef tuple;
  uint64_t expires = 0;
};

/// An intrusive singly-linked FIFO of pooled records: buckets keep
/// head/tail indices into the owning NodeState's SlabPool and records chain
/// through their node's `next`. Append at tail preserves arrival order
/// (what the seed's vector/deque buckets iterated in).
struct BucketList {
  uint32_t head = SlabPool<StoredQuery>::kNil;
  uint32_t tail = SlabPool<StoredQuery>::kNil;
};

/// Appends a fresh pool node to `bucket`'s tail; returns its index. The
/// one definition of the head/tail/next append invariant. `Bucket` is any
/// struct with u32 head/tail (BucketList, TupleBucket).
template <typename T, typename Bucket>
uint32_t BucketAppend(SlabPool<T>& pool, Bucket& bucket) {
  const uint32_t idx = pool.Allocate();
  if (bucket.tail == SlabPool<T>::kNil) {
    bucket.head = idx;
  } else {
    pool.at(bucket.tail).next = idx;
  }
  bucket.tail = idx;
  return idx;
}

/// A chunk of the value-level tuple store: TupleRefs pack kCap to a pooled
/// record, and a bucket is a chain of chunks through the pool's `next`
/// links. Compared to one heap vector per bucket, bucket birth and growth
/// draw from the node's chunk pool (geometric slabs), so the windowless
/// store path — which keeps minting fresh (relation, attribute, value)
/// buckets for the Zipf tail of the stream — stays allocation-free in
/// steady state. Chunks are never empty: append fills the tail before
/// chaining a new chunk, and the sweep rebuilds compactly.
struct TupleChunk {
  static constexpr uint32_t kCap = 8;
  TupleRef refs[kCap];
  uint32_t count = 0;
};

/// A chunked tuple bucket: chunk-chain bounds plus the stored-ref count.
struct TupleBucket {
  uint32_t head = SlabPool<TupleChunk>::kNil;
  uint32_t tail = SlabPool<TupleChunk>::kNil;
  uint32_t size = 0;
};

/// A contiguous run of stored tuple handles — one chunk, or a gathered
/// ALTT chain — that the batched probe kernel evaluates in a tight loop.
struct TupleSpan {
  const TupleRef* data;
  uint32_t count;
};

/// Appends `ref` to `bucket`'s tail chunk, chaining a fresh chunk from
/// `pool` when the tail is full (or the bucket is empty).
inline void TupleBucketAppend(SlabPool<TupleChunk>& pool, TupleBucket& bucket,
                              TupleRef ref) {
  if (bucket.tail == SlabPool<TupleChunk>::kNil ||
      pool.at(bucket.tail).value.count == TupleChunk::kCap) {
    BucketAppend(pool, bucket);
  }
  TupleChunk& chunk = pool.at(bucket.tail).value;
  chunk.refs[chunk.count++] = std::move(ref);
  ++bucket.size;
}

/// Calls `fn(TupleRef&)` for every stored ref in arrival order.
template <typename Fn>
void TupleBucketForEach(SlabPool<TupleChunk>& pool, const TupleBucket& bucket,
                        Fn&& fn) {
  for (uint32_t cur = bucket.head; cur != SlabPool<TupleChunk>::kNil;
       cur = pool.at(cur).next) {
    TupleChunk& chunk = pool.at(cur).value;
    for (uint32_t i = 0; i < chunk.count; ++i) fn(chunk.refs[i]);
  }
}

/// Recycles every chunk (dropping the refs) and resets the bucket.
inline void TupleBucketClear(SlabPool<TupleChunk>& pool, TupleBucket& bucket) {
  uint32_t cur = bucket.head;
  while (cur != SlabPool<TupleChunk>::kNil) {
    const uint32_t next = pool.at(cur).next;
    pool.Free(cur);
    cur = next;
  }
  bucket = TupleBucket{};
}

/// Unlinks node `idx` (whose predecessor is `prev_idx`, kNil when idx is
/// the head) from `bucket` and recycles it. The one definition of the
/// unlink invariant.
template <typename T>
void BucketUnlink(SlabPool<T>& pool, BucketList& bucket, uint32_t prev_idx,
                  uint32_t idx) {
  const uint32_t next = pool.at(idx).next;
  if (prev_idx == SlabPool<T>::kNil) {
    bucket.head = next;
  } else {
    pool.at(prev_idx).next = next;
  }
  if (bucket.tail == idx) bucket.tail = prev_idx;
  pool.Free(idx);
}

struct ReplicaStore;  // core/replication.h

/// All RJoin state of one network node. Buckets are keyed by interned
/// KeyId; a node only ever receives keys it is the successor of. Stored
/// queries, ALTT entries, and value-level tuple chunks all live in
/// per-node slab pools (zero steady-state heap traffic for store/drop
/// cycles; pool capacity itself grows in geometric slabs).
class NodeState {
 public:
  // Out-of-line: `replicas` points at an incomplete type, so anything that
  // may destroy it (the dtor, the ctor's unwind path) needs the definition.
  explicit NodeState(uint64_t ric_epoch);
  ~NodeState();

  /// Input and rewritten queries stored locally, by index key.
  KeyIdMap<BucketList> queries;
  SlabPool<StoredQuery> query_pool;

  /// Value-level tuple store (Procedure 2 stores every value-level tuple):
  /// chunked buckets over the node's pooled chunk arena.
  KeyIdMap<TupleBucket> tuples;
  SlabPool<TupleChunk> tuple_chunks;

  /// Attribute-level tuple table with Delta-expiry (entries append in
  /// arrival order, so expired entries cluster at the head).
  KeyIdMap<BucketList> altt;
  SlabPool<AlttEntry> altt_pool;

  /// Fingerprints of stored residuals of DISTINCT queries (key + content),
  /// so identical rewritten queries are stored once (set semantics).
  /// Erase-capable: churn handoff removes a migrated residual's print.
  FlatU64Set distinct_fingerprints;

  /// Tuple-arrival rates per key (the RIC source, Section 6).
  RateTracker rates;

  /// Cached RIC info (the candidate table, Section 7).
  CandidateTable ct;

  /// Replica slices held for ring predecessors under successor-list
  /// replication, created on the first ReplicaUpdate this node receives.
  /// ReplicaStore stays an incomplete type here (core/replication.h) so the
  /// replication surface is out of every NodeState user; null whenever
  /// replication is off — the feature's whole cost when disabled.
  std::unique_ptr<ReplicaStore> replicas;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_NODE_STATE_H_
