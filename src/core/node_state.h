#ifndef RJOIN_CORE_NODE_STATE_H_
#define RJOIN_CORE_NODE_STATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/key.h"
#include "core/key_map.h"
#include "core/residual.h"
#include "core/ric.h"
#include "core/slab_pool.h"
#include "sql/tuple.h"

namespace rjoin::core {

/// Set of 64-bit projection fingerprints implementing the DISTINCT rule of
/// Section 4 (a tuple triggers a stored query only if its projection over
/// the referenced attributes is new). Most stored queries see at most a
/// handful of distinct projections, so the first few fingerprints live
/// inline in the StoredQuery record; only busier queries spill to one heap
/// table — versus the seed's unordered_set<std::string> that heap-allocated
/// the set, every bucket, and every projection string.
///
/// Fingerprints are 64-bit hashes of the projection text: two *different*
/// projections can collide (probability ~n^2/2^64), in which case the later
/// one is treated as already-seen and suppressed — a deliberate trade the
/// collision test in tests/interner_test.cc documents.
class ProjectionSet {
 public:
  ProjectionSet() = default;
  ProjectionSet(ProjectionSet&&) noexcept = default;
  ProjectionSet& operator=(ProjectionSet&&) noexcept = default;

  /// Inserts `fp`; returns false if it was already present.
  bool Insert(uint64_t fp) {
    if (fp == 0) fp = kZeroAlias;  // 0 marks empty table slots
    for (uint32_t i = 0; i < inline_count_; ++i) {
      if (inline_[i] == fp) return false;
    }
    if (table_cap_ == 0) {
      if (inline_count_ < kInline) {
        inline_[inline_count_++] = fp;
        ++size_;
        return true;
      }
      GrowTable();
    }
    return TableInsert(fp);
  }

  /// Distinct fingerprints inserted so far.
  uint32_t size() const { return size_; }

 private:
  static constexpr uint32_t kInline = 3;
  static constexpr uint64_t kZeroAlias = 0x9e3779b97f4a7c15ull;

  bool TableInsert(uint64_t fp) {
    if ((size_ + 1) * 10 >= table_cap_ * 7) GrowTable();
    size_t i = fp & (table_cap_ - 1);
    for (; table_[i] != 0; i = (i + 1) & (table_cap_ - 1)) {
      if (table_[i] == fp) return false;
    }
    table_[i] = fp;
    ++size_;
    return true;
  }

  void GrowTable() {
    const uint32_t cap = table_cap_ == 0 ? 16 : table_cap_ * 2;
    auto bigger = std::make_unique<uint64_t[]>(cap);
    for (uint32_t i = 0; i < cap; ++i) bigger[i] = 0;
    auto rehash = [&](uint64_t fp) {
      size_t i = fp & (cap - 1);
      while (bigger[i] != 0) i = (i + 1) & (cap - 1);
      bigger[i] = fp;
    };
    for (uint32_t i = 0; i < table_cap_; ++i) {
      if (table_[i] != 0) rehash(table_[i]);
    }
    for (uint32_t i = 0; i < inline_count_; ++i) rehash(inline_[i]);
    inline_count_ = 0;
    table_ = std::move(bigger);
    table_cap_ = cap;
  }

  uint64_t inline_[kInline] = {};
  uint32_t inline_count_ = 0;
  uint32_t size_ = 0;  // total distinct fingerprints (inline + table)
  uint32_t table_cap_ = 0;
  std::unique_ptr<uint64_t[]> table_;
};

/// A query (input or rewritten) stored at a node, bucketed under the
/// interned index key it was stored with.
struct StoredQuery {
  Residual residual;
  ProjectionSet seen_projections;
};

/// Entry of the attribute-level tuple table (ALTT, Section 4): a tuple kept
/// for Delta time units so that an input query delayed in transit still
/// meets it.
struct AlttEntry {
  sql::TuplePtr tuple;
  uint64_t expires = 0;
};

/// An intrusive singly-linked FIFO of pooled records: buckets keep
/// head/tail indices into the owning NodeState's SlabPool and records chain
/// through their node's `next`. Append at tail preserves arrival order
/// (what the seed's vector/deque buckets iterated in).
struct BucketList {
  uint32_t head = SlabPool<StoredQuery>::kNil;
  uint32_t tail = SlabPool<StoredQuery>::kNil;
};

/// Appends a fresh pool node to `bucket`'s tail; returns its index. The
/// one definition of the head/tail/next append invariant.
template <typename T>
uint32_t BucketAppend(SlabPool<T>& pool, BucketList& bucket) {
  const uint32_t idx = pool.Allocate();
  if (bucket.tail == SlabPool<T>::kNil) {
    bucket.head = idx;
  } else {
    pool.at(bucket.tail).next = idx;
  }
  bucket.tail = idx;
  return idx;
}

/// Unlinks node `idx` (whose predecessor is `prev_idx`, kNil when idx is
/// the head) from `bucket` and recycles it. The one definition of the
/// unlink invariant.
template <typename T>
void BucketUnlink(SlabPool<T>& pool, BucketList& bucket, uint32_t prev_idx,
                  uint32_t idx) {
  const uint32_t next = pool.at(idx).next;
  if (prev_idx == SlabPool<T>::kNil) {
    bucket.head = next;
  } else {
    pool.at(prev_idx).next = next;
  }
  if (bucket.tail == idx) bucket.tail = prev_idx;
  pool.Free(idx);
}

/// All RJoin state of one network node. Buckets are keyed by interned
/// KeyId; a node only ever receives keys it is the successor of. Stored
/// queries and ALTT entries live in per-node slab pools (zero steady-state
/// heap traffic for store/drop cycles); value-level tuple buckets stay
/// simple TuplePtr vectors (append-only between sweeps).
class NodeState {
 public:
  explicit NodeState(uint64_t ric_epoch) : rates(ric_epoch) {}

  /// Input and rewritten queries stored locally, by index key.
  KeyIdMap<BucketList> queries;
  SlabPool<StoredQuery> query_pool;

  /// Value-level tuple store (Procedure 2 stores every value-level tuple).
  KeyIdMap<std::vector<sql::TuplePtr>> tuples;

  /// Attribute-level tuple table with Delta-expiry (entries append in
  /// arrival order, so expired entries cluster at the head).
  KeyIdMap<BucketList> altt;
  SlabPool<AlttEntry> altt_pool;

  /// Fingerprints of stored residuals of DISTINCT queries (key + content),
  /// so identical rewritten queries are stored once (set semantics).
  std::unordered_set<std::string> distinct_fingerprints;

  /// Tuple-arrival rates per key (the RIC source, Section 6).
  RateTracker rates;

  /// Cached RIC info (the candidate table, Section 7).
  CandidateTable ct;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_NODE_STATE_H_
