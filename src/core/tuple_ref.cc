#include "core/tuple_ref.h"

#include <utility>

#include "stats/alloc_tracker.h"
#include "util/hash.h"

namespace rjoin::core {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Domain-tagged value hash: int and string values can never collide into
/// the same id because equality is checked against the stored sql::Value,
/// but tagging keeps probe chains short when both domains are in play.
uint64_t HashValue(const sql::Value& v) {
  if (v.is_int()) {
    return SplitMix64(static_cast<uint64_t>(v.AsInt()) ^
                      0x7475706c65696e74ull);
  }
  return rjoin::Fnv1a64(v.AsString()) ^ 0x7475706c65737472ull;
}

}  // namespace

// ---------------------------------------------------------------------------
// ValueInterner

ValueInterner::Table::Table(size_t capacity)
    : mask(capacity - 1),
      slots(std::make_unique<std::atomic<uint64_t>[]>(capacity)) {
  for (size_t i = 0; i < capacity; ++i) {
    slots[i].store(0, std::memory_order_relaxed);
  }
}

ValueInterner::ValueInterner()
    : slabs_(std::make_unique<std::atomic<sql::Value*>[]>(kMaxSlabs)) {
  for (uint32_t i = 0; i < kMaxSlabs; ++i) {
    slabs_[i].store(nullptr, std::memory_order_relaxed);
  }
  auto table = std::make_unique<Table>(1024);
  table_.store(table.get(), std::memory_order_release);
  retired_.push_back(std::move(table));
}

ValueInterner::~ValueInterner() {
  for (uint32_t s = 0; s < kMaxSlabs; ++s) {
    sql::Value* slab = slabs_[s].load(std::memory_order_relaxed);
    if (slab == nullptr) break;
    delete[] slab;
  }
}

ValueInterner& ValueInterner::Global() {
  static ValueInterner* g = new ValueInterner();
  return *g;
}

ValueId ValueInterner::FindIn(const Table& table, const sql::Value& v,
                              uint64_t hash) const {
  const uint64_t tag = hash >> 32;
  size_t i = hash & table.mask;
  for (;;) {
    const uint64_t slot = table.slots[i].load(std::memory_order_acquire);
    if (slot == 0) return kInvalidValueId;
    if ((slot >> 32) == tag) {
      const ValueId id = static_cast<ValueId>(slot & 0xffffffffu) - 1;
      if (value(id) == v) return id;
    }
    i = (i + 1) & table.mask;
  }
}

void ValueInterner::PublishInto(Table& table, uint64_t hash, ValueId id) {
  size_t i = hash & table.mask;
  while (table.slots[i].load(std::memory_order_relaxed) != 0) {
    i = (i + 1) & table.mask;
  }
  table.slots[i].store((hash >> 32 << 32) | (id + 1),
                       std::memory_order_release);
}

ValueId ValueInterner::Find(const sql::Value& v) const {
  const uint64_t hash = HashValue(v);
  const Table* table = table_.load(std::memory_order_acquire);
  return FindIn(*table, v, hash);
}

ValueId ValueInterner::Intern(const sql::Value& v) {
  const uint64_t hash = HashValue(v);
  {
    const Table* table = table_.load(std::memory_order_acquire);
    const ValueId id = FindIn(*table, v, hash);
    if (id != kInvalidValueId) return id;
  }
  rjoin::stats::AllocScope scope(rjoin::stats::AllocPlane::kTuple);
  std::lock_guard<std::mutex> lock(mutex_);
  Table* table = table_.load(std::memory_order_relaxed);
  const ValueId found = FindIn(*table, v, hash);
  if (found != kInvalidValueId) return found;

  const uint32_t id = size_.load(std::memory_order_relaxed);
  RJOIN_CHECK(id < kMaxSlabs * kSlabSize);
  const uint32_t slab = id >> kSlabBits;
  sql::Value* base = slabs_[slab].load(std::memory_order_relaxed);
  if (base == nullptr) {
    base = new sql::Value[kSlabSize];
    slabs_[slab].store(base, std::memory_order_release);
  }
  base[id & (kSlabSize - 1)] = v;

  // Grow at 70% load; readers holding the old table fall back here.
  if ((id + 1) * 10 >= (table->mask + 1) * 7) {
    auto bigger = std::make_unique<Table>((table->mask + 1) * 2);
    for (uint32_t existing = 0; existing < id; ++existing) {
      PublishInto(*bigger, HashValue(value(existing)), existing);
    }
    table_.store(bigger.get(), std::memory_order_release);
    retired_.push_back(std::move(bigger));
    table = table_.load(std::memory_order_relaxed);
  }
  size_.store(id + 1, std::memory_order_release);
  PublishInto(*table, hash, id);
  return id;
}

// ---------------------------------------------------------------------------
// TuplePool

TuplePool::TuplePool()
    : slabs_(std::make_unique<std::atomic<Rec*>[]>(kMaxSlabs)),
      rel_names_(
          std::make_unique<std::atomic<const std::string*>[]>(kMaxRelations)) {
  for (uint32_t i = 0; i < kMaxSlabs; ++i) {
    slabs_[i].store(nullptr, std::memory_order_relaxed);
  }
  for (uint32_t i = 0; i < kMaxRelations; ++i) {
    rel_names_[i].store(nullptr, std::memory_order_relaxed);
  }
}

TuplePool::~TuplePool() {
  for (uint32_t s = 0; s < kMaxSlabs; ++s) {
    Rec* slab = slabs_[s].load(std::memory_order_relaxed);
    if (slab == nullptr) break;
    delete[] slab;
  }
}

TuplePool& TuplePool::Global() {
  static TuplePool* g = new TuplePool();
  return *g;
}

uint32_t TuplePool::InternRelation(std::string_view name) {
  const uint32_t n = rel_count_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < n; ++i) {
    if (*rel_names_[i].load(std::memory_order_acquire) == name) return i;
  }
  rjoin::stats::AllocScope scope(rjoin::stats::AllocPlane::kTuple);
  std::lock_guard<std::mutex> lock(mutex_);
  const uint32_t m = rel_count_.load(std::memory_order_relaxed);
  for (uint32_t i = n; i < m; ++i) {
    if (*rel_names_[i].load(std::memory_order_relaxed) == name) return i;
  }
  RJOIN_CHECK(m < kMaxRelations);
  rel_storage_.push_back(std::make_unique<std::string>(name));
  rel_names_[m].store(rel_storage_.back().get(), std::memory_order_release);
  rel_count_.store(m + 1, std::memory_order_release);
  return m;
}

uint32_t TuplePool::Allocate() {
  acquired_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  // Reclaim worker-released records in bulk (cf. MessagePool remote list).
  uint32_t remote = remote_free_.exchange(kNil, std::memory_order_acquire);
  while (remote != kNil) {
    Rec& r = at(remote);
    const uint32_t next = r.next;
    r.next = free_;
    free_ = remote;
    remote = next;
  }
  if (free_ != kNil) {
    recycled_.fetch_add(1, std::memory_order_relaxed);
    const uint32_t idx = free_;
    Rec& r = at(idx);
    free_ = r.next;
    r.next = kNil;
    r.refs.store(1, std::memory_order_relaxed);
    return idx;
  }
  const uint32_t idx = allocated_++;
  RJOIN_CHECK(idx < kMaxSlabs * kSlabSize);
  if ((idx & (kSlabSize - 1)) == 0) {
    // Slab growth is capacity acquisition, not per-record traffic.
    rjoin::stats::AllocScope scope(rjoin::stats::AllocPlane::kPoolCapacity);
    slabs_[idx >> kSlabBits].store(new Rec[kSlabSize],
                                   std::memory_order_release);
    slabs_allocated_.fetch_add(1, std::memory_order_relaxed);
  }
  Rec& r = at(idx);
  r.refs.store(1, std::memory_order_relaxed);
  return idx;
}

void TuplePool::ReleaseRecord(uint32_t idx) {
  released_.fetch_add(1, std::memory_order_relaxed);
  Rec& r = at(idx);
  uint32_t head = remote_free_.load(std::memory_order_relaxed);
  do {
    r.next = head;
  } while (!remote_free_.compare_exchange_weak(
      head, idx, std::memory_order_release, std::memory_order_relaxed));
}

TupleRef TuplePool::Make(std::string_view relation,
                         const std::vector<sql::Value>& values,
                         uint64_t pub_time, uint64_t seq_no,
                         uint64_t tuple_id) {
  const uint32_t rel = InternRelation(relation);
  const uint32_t idx = Allocate();
  Rec& r = at(idx);
  r.pub_time = pub_time;
  r.seq_no = seq_no;
  r.tuple_id = tuple_id;
  r.relation = rel;
  r.arity = static_cast<uint16_t>(values.size());
  ValueId* out = r.vals;
  if (r.arity > kInlineArity) {
    if (r.overflow_cap < r.arity) {
      rjoin::stats::AllocScope scope(rjoin::stats::AllocPlane::kTuple);
      r.overflow = std::make_unique<ValueId[]>(r.arity);
      r.overflow_cap = r.arity;
    }
    out = r.overflow.get();
  }
  ValueInterner& vi = ValueInterner::Global();
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = vi.Intern(values[i]);
  }
  return TupleRef::AdoptRaw(idx);
}

TuplePool::Stats TuplePool::stats() const {
  Stats s;
  s.slabs_allocated = slabs_allocated_.load(std::memory_order_relaxed);
  s.records_allocated = s.slabs_allocated * kSlabSize;
  s.acquired = acquired_.load(std::memory_order_relaxed);
  s.recycled = recycled_.load(std::memory_order_relaxed);
  s.released = released_.load(std::memory_order_relaxed);
  return s;
}

sql::TuplePtr TupleRef::Materialize() const {
  const TuplePool::Rec& r = rec();
  std::vector<sql::Value> values;
  values.reserve(r.arity);
  const ValueId* cols = r.columns();
  ValueInterner& vi = ValueInterner::Global();
  for (uint16_t i = 0; i < r.arity; ++i) {
    values.push_back(vi.value(cols[i]));
  }
  return sql::MakeTuple(std::string(relation_name()), std::move(values),
                        r.pub_time, r.seq_no, r.tuple_id);
}

}  // namespace rjoin::core
