#include "core/interner.h"

#include "util/hash.h"
#include "util/logging.h"

namespace rjoin::core {

namespace {

/// Index hash of the (text, level) identity. The level is folded in
/// because the same text can legally exist at both levels (a sharded
/// attribute suffix colliding with a string value).
uint64_t HashKey(std::string_view text, Level level) {
  uint64_t h = Fnv1a64(text);
  if (level == Level::kValue) h ^= 0x9e3779b97f4a7c15ull;
  return h;
}

/// Reusable per-thread buffer for building candidate key text before the
/// intern lookup; the hit path allocates nothing beyond the buffer's
/// high-water mark.
std::string& KeyBuffer() {
  static thread_local std::string buf;
  buf.clear();
  return buf;
}

}  // namespace

KeyInterner::Table::Table(size_t capacity)
    : mask(capacity - 1),
      slots(std::make_unique<std::atomic<uint64_t>[]>(capacity)) {
  RJOIN_CHECK((capacity & mask) == 0) << "table capacity must be 2^k";
  for (size_t i = 0; i < capacity; ++i) {
    slots[i].store(0, std::memory_order_relaxed);
  }
}

KeyInterner::KeyInterner()
    : slabs_(std::make_unique<std::atomic<Entry*>[]>(kMaxSlabs)) {
  for (uint32_t i = 0; i < kMaxSlabs; ++i) {
    slabs_[i].store(nullptr, std::memory_order_relaxed);
  }
  auto table = std::make_unique<Table>(1024);
  table_.store(table.get(), std::memory_order_release);
  retired_.push_back(std::move(table));
}

KeyInterner::~KeyInterner() {
  const uint32_t n = size_.load(std::memory_order_acquire);
  const uint32_t slabs = (n + kSlabSize - 1) >> kSlabBits;
  for (uint32_t i = 0; i < slabs; ++i) {
    delete[] slabs_[i].load(std::memory_order_relaxed);
  }
}

KeyInterner& KeyInterner::Global() {
  static KeyInterner* interner = new KeyInterner();  // immortal
  return *interner;
}

const KeyInterner::Entry& KeyInterner::entry(KeyId id) const {
  RJOIN_DCHECK(id < size_.load(std::memory_order_acquire));
  return slabs_[id >> kSlabBits].load(std::memory_order_acquire)
      [id & (kSlabSize - 1)];
}

KeyId KeyInterner::FindIn(const Table& table, std::string_view text,
                          Level level, uint64_t hash) const {
  const uint32_t tag = static_cast<uint32_t>(hash >> 32);
  size_t i = hash & table.mask;
  for (;;) {
    const uint64_t slot = table.slots[i].load(std::memory_order_acquire);
    if (slot == 0) return kInvalidKeyId;
    if (static_cast<uint32_t>(slot >> 32) == tag) {
      const KeyId id = static_cast<KeyId>(slot & 0xffffffffu) - 1;
      const Entry& e = entry(id);
      if (e.level == level && e.text == text) return id;
    }
    i = (i + 1) & table.mask;
  }
}

void KeyInterner::PublishInto(Table& table, uint64_t hash, KeyId id) {
  const uint64_t packed =
      (hash & 0xffffffff00000000ull) | (static_cast<uint64_t>(id) + 1);
  size_t i = hash & table.mask;
  while (table.slots[i].load(std::memory_order_relaxed) != 0) {
    i = (i + 1) & table.mask;
  }
  table.slots[i].store(packed, std::memory_order_release);
}

KeyId KeyInterner::Find(std::string_view text, Level level) const {
  return FindIn(*table_.load(std::memory_order_acquire), text, level,
                HashKey(text, level));
}

KeyId KeyInterner::Find(std::string_view text) const {
  const KeyId attr = Find(text, Level::kAttribute);
  return attr != kInvalidKeyId ? attr : Find(text, Level::kValue);
}

KeyId KeyInterner::Intern(std::string_view text, Level level) {
  const uint64_t hash = HashKey(text, level);
  KeyId id =
      FindIn(*table_.load(std::memory_order_acquire), text, level, hash);
  if (id != kInvalidKeyId) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  Table* table = table_.load(std::memory_order_relaxed);
  id = FindIn(*table, text, level, hash);
  if (id != kInvalidKeyId) {
    // Lost a race with another first-sight intern of the same text.
    hits_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  const uint32_t n = size_.load(std::memory_order_relaxed);
  // Entries are immortal, so unbounded value domains grow the dictionary
  // without bound — aging/compaction is a tracked follow-up (ROADMAP,
  // docs/keys.md); this backstop is ~50x the paper's full-scale key count.
  RJOIN_CHECK(n < kMaxSlabs * kSlabSize)
      << "key interner full (" << n
      << " keys): workload value domain too large for the immortal "
         "dictionary; see ROADMAP key-id plane follow-ups";
  const uint32_t slab = n >> kSlabBits;
  if ((n & (kSlabSize - 1)) == 0) {
    slabs_[slab].store(new Entry[kSlabSize], std::memory_order_release);
  }
  Entry& e = slabs_[slab].load(std::memory_order_relaxed)[n & (kSlabSize - 1)];
  e.text.assign(text);
  e.level = level;
  e.ring_id = dht::NodeId::FromKey(text);
  size_.store(n + 1, std::memory_order_release);

  // Grow the index at 70% load. Readers holding the old table miss the
  // freshly moved entries and retry through this locked path, so old
  // tables only need to stay allocated (retired_), not current.
  if ((static_cast<uint64_t>(n) + 1) * 10 >= (table->mask + 1) * 7) {
    auto bigger = std::make_unique<Table>((table->mask + 1) * 2);
    for (KeyId prev = 0; prev < n; ++prev) {
      const Entry& old = entry(prev);
      PublishInto(*bigger, HashKey(old.text, old.level), prev);
    }
    table = bigger.get();
    table_.store(table, std::memory_order_release);
    retired_.push_back(std::move(bigger));
  }
  PublishInto(*table, hash, n);

  misses_.fetch_add(1, std::memory_order_relaxed);
  text_bytes_.fetch_add(text.size(), std::memory_order_relaxed);
  return n;
}

KeyId KeyInterner::InternAttribute(std::string_view relation,
                                   std::string_view attr) {
  std::string& buf = KeyBuffer();
  buf.append(relation);
  buf += kKeySep;
  buf.append(attr);
  return Intern(buf, Level::kAttribute);
}

KeyId KeyInterner::InternValue(std::string_view relation,
                               std::string_view attr,
                               const sql::Value& value) {
  std::string& buf = KeyBuffer();
  buf.append(relation);
  buf += kKeySep;
  buf.append(attr);
  buf += kKeySep;
  value.AppendKeyString(&buf);
  return Intern(buf, Level::kValue);
}

KeyId KeyInterner::WithShard(KeyId attr_key, uint32_t shard) {
  if (shard == 0) return attr_key;
  const Entry& base = entry(attr_key);
  std::string& buf = KeyBuffer();
  buf.append(base.text);
  buf += kKeySep;
  buf += '#';
  buf += std::to_string(shard);
  return Intern(buf, base.level);
}

KeyInterner::Stats KeyInterner::stats() const {
  Stats s;
  s.entries = size_.load(std::memory_order_acquire);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.text_bytes = text_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rjoin::core
