#ifndef RJOIN_CORE_RESIDUAL_H_
#define RJOIN_CORE_RESIDUAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/key.h"
#include "dht/chord_node.h"
#include "sql/query.h"
#include "sql/schema.h"
#include "sql/tuple.h"
#include "util/status.h"

namespace rjoin::core {

/// A submitted continuous query, compiled once: attribute names are resolved
/// to (relation index, attribute index) pairs so that triggering and
/// rewriting are integer operations. Immutable and shared by every residual
/// derived from it.
class InputQuery {
 public:
  struct ResolvedJoin {
    int left_rel;
    int left_attr;
    int right_rel;
    int right_attr;
  };
  struct ResolvedSelection {
    int rel;
    int attr;
    sql::Value value;
  };
  struct ResolvedSelectItem {
    bool is_const = false;
    int rel = -1;
    int attr = -1;
    sql::Value constant;
  };

  /// Validates and compiles `spec`. Fails on unknown relations/attributes,
  /// duplicate relations in FROM (self-joins are future work, as in the
  /// paper), and multi-relation queries where some relation appears in no
  /// predicate (pure cartesian products are not indexable by RJoin).
  ///
  /// `one_time` marks a snapshot query: it is evaluated over the tuples
  /// already published at submission time (pubT <= insT) and is never
  /// stored for future triggers — Section 4's "Delta can be infinity"
  /// framework for one-time queries.
  static StatusOr<std::shared_ptr<const InputQuery>> Create(
      uint64_t query_id, dht::NodeIndex owner, uint64_t ins_time,
      sql::Query spec, const sql::Catalog* catalog, bool one_time = false);

  uint64_t query_id() const { return query_id_; }
  dht::NodeIndex owner() const { return owner_; }
  uint64_t ins_time() const { return ins_time_; }
  bool one_time() const { return one_time_; }
  const sql::Query& spec() const { return spec_; }

  size_t num_relations() const { return spec_.relations.size(); }
  const std::string& relation_name(int rel) const {
    return spec_.relations[static_cast<size_t>(rel)];
  }
  /// Index of `relation` in the FROM list, or -1.
  int RelIndex(const std::string& relation) const;

  const std::vector<ResolvedJoin>& joins() const { return joins_; }
  const std::vector<ResolvedSelection>& selections() const {
    return selections_;
  }
  const std::vector<ResolvedSelectItem>& select_items() const {
    return select_items_;
  }

  /// Attribute indices of relation `rel` referenced anywhere in the select
  /// list or WHERE clause, sorted; used for the DISTINCT projection rule of
  /// Section 4.
  const std::vector<int>& projection_attrs(int rel) const {
    return proj_attrs_[static_cast<size_t>(rel)];
  }

  /// The attribute names of relation `rel`, via the catalog schema.
  const sql::Schema& schema(int rel) const { return *schemas_[static_cast<size_t>(rel)]; }

 private:
  InputQuery() = default;

  uint64_t query_id_ = 0;
  dht::NodeIndex owner_ = dht::kInvalidNode;
  uint64_t ins_time_ = 0;
  bool one_time_ = false;
  sql::Query spec_;
  std::vector<ResolvedJoin> joins_;
  std::vector<ResolvedSelection> selections_;
  std::vector<ResolvedSelectItem> select_items_;
  std::vector<std::vector<int>> proj_attrs_;
  std::vector<const sql::Schema*> schemas_;
};

using InputQueryPtr = std::shared_ptr<const InputQuery>;

/// A (possibly partially evaluated) query travelling through the network.
/// Instead of materializing rewritten SQL text, a residual references its
/// immutable input query plus the tuples bound so far — semantically
/// identical to the paper's rewritten queries (sql::Rewriter is the
/// reference implementation; property tests check agreement) but a few
/// pointers in size, which matters when millions of rewritten queries are
/// stored across the network.
class Residual {
 public:
  Residual() = default;
  explicit Residual(InputQueryPtr origin) : origin_(std::move(origin)) {}

  const InputQueryPtr& origin() const { return origin_; }
  int num_bound() const { return static_cast<int>(bound_.size()); }
  bool IsInputQuery() const { return bound_.empty(); }
  bool IsComplete() const {
    return bound_.size() == origin_->num_relations();
  }

  /// The tuple bound at FROM-relation index `rel`, or nullptr. Residuals
  /// store only their bound relations (usually 1-2 of many), keeping the
  /// millions of stored rewritten queries of a long run small.
  const sql::TuplePtr* FindBound(int rel) const {
    for (const auto& b : bound_) {
      if (b.rel == rel) return &b.tuple;
    }
    return nullptr;
  }
  bool IsBound(int rel) const { return FindBound(rel) != nullptr; }

  /// Window positions (pub_time or seq_no, per the window unit) of the
  /// earliest and latest bound tuples. Meaningful once num_bound > 0.
  uint64_t window_min() const { return window_min_; }
  uint64_t window_max() const { return window_max_; }

  /// The paper's start(q) parameter (Section 5): set by the first binding,
  /// then propagated per the inheritance rules.
  uint64_t window_start() const { return window_min_; }

  /// True iff tuple `t` (of FROM-relation index `rel`) satisfies every
  /// constraint the residual currently places on that relation: original
  /// selections on the relation, and join predicates whose other side is
  /// already bound. Join predicates between two unbound relations impose
  /// nothing yet. Temporal checks are separate (see WindowAdmits).
  bool Matches(int rel, const sql::Tuple& t) const;

  /// Window validity test of Section 5 for binding `t`: the resulting
  /// combination must fit in one window. Always true without windows.
  bool WindowAdmits(int rel, const sql::Tuple& t) const;

  /// Returns a new residual with `t` bound at `rel`. Caller must have
  /// verified Matches and WindowAdmits. This is the engine's rewrite step.
  Residual Bind(int rel, sql::TuplePtr t) const;

  /// Answer row of a complete residual.
  std::vector<sql::Value> ExtractAnswer() const;

  /// Fingerprint of the residual's *rewritten content*: origin query plus,
  /// for every bound relation, the projection of its tuple over the
  /// attributes the query references. Two residuals with equal fingerprints
  /// are the same rewritten query (used for DISTINCT set semantics).
  std::string ContentFingerprint() const;

  /// Value of attribute (rel, attr) if that relation is bound.
  const sql::Value* BoundValue(int rel, int attr) const;

  /// The equivalent textual rewritten query (reference form, for tracing
  /// and tests against sql::Rewriter).
  sql::Query ToRewrittenQuery() const;

 private:
  struct BoundTuple {
    uint8_t rel = 0;
    sql::TuplePtr tuple;
  };

  InputQueryPtr origin_;
  std::vector<BoundTuple> bound_;  // Sparse: bound relations only.
  uint64_t window_min_ = UINT64_MAX;
  uint64_t window_max_ = 0;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_RESIDUAL_H_
