#ifndef RJOIN_CORE_RESIDUAL_H_
#define RJOIN_CORE_RESIDUAL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/key.h"
#include "core/tuple_ref.h"
#include "dht/chord_node.h"
#include "sql/query.h"
#include "sql/schema.h"
#include "sql/tuple.h"
#include "util/status.h"

namespace rjoin::core {

/// Upper bound on FROM-list width. The flat residual stores one TupleRef
/// slot per FROM relation inline (no heap), so the bound is a hard
/// capacity; Create() rejects wider queries with Unimplemented. The
/// paper's workloads top out at 10-way joins.
inline constexpr int kMaxQueryRels = 10;

/// Upper bound on SELECT-list width, sized for the flat AnswerDeliver
/// payload (the workload generator emits exactly 2 items).
inline constexpr int kMaxSelectItems = 12;

/// A submitted continuous query, compiled once: attribute names are resolved
/// to (relation index, attribute index) pairs — and, for the flat tuple
/// plane, relation names to dense TuplePool ids and predicate constants to
/// interned ValueIds — so that triggering and rewriting are integer
/// operations. Immutable and shared by every residual derived from it.
class InputQuery {
 public:
  struct ResolvedJoin {
    int left_rel;
    int left_attr;
    int right_rel;
    int right_attr;
  };
  struct ResolvedSelection {
    int rel;
    int attr;
    sql::Value value;
    ValueId value_id = kInvalidValueId;  ///< interned `value`
  };
  struct ResolvedSelectItem {
    bool is_const = false;
    int rel = -1;
    int attr = -1;
    sql::Value constant;
    ValueId constant_id = kInvalidValueId;  ///< interned `constant`
  };

  /// Validates and compiles `spec`. Fails on unknown relations/attributes,
  /// duplicate relations in FROM (self-joins are future work, as in the
  /// paper), and multi-relation queries where some relation appears in no
  /// predicate (pure cartesian products are not indexable by RJoin).
  ///
  /// `one_time` marks a snapshot query: it is evaluated over the tuples
  /// already published at submission time (pubT <= insT) and is never
  /// stored for future triggers — Section 4's "Delta can be infinity"
  /// framework for one-time queries.
  static StatusOr<std::shared_ptr<const InputQuery>> Create(
      uint64_t query_id, dht::NodeIndex owner, uint64_t ins_time,
      sql::Query spec, const sql::Catalog* catalog, bool one_time = false);

  uint64_t query_id() const { return query_id_; }
  dht::NodeIndex owner() const { return owner_; }
  uint64_t ins_time() const { return ins_time_; }
  bool one_time() const { return one_time_; }
  const sql::Query& spec() const { return spec_; }

  size_t num_relations() const { return spec_.relations.size(); }
  const std::string& relation_name(int rel) const {
    return spec_.relations[static_cast<size_t>(rel)];
  }
  /// Index of `relation` in the FROM list, or -1.
  int RelIndex(const std::string& relation) const;

  /// Dense TuplePool id of FROM-relation `rel` (resolved at Create).
  uint32_t relation_id(int rel) const {
    return rel_ids_[static_cast<size_t>(rel)];
  }

  /// Index of the FROM relation with dense pool id `rel_id`, or -1. The
  /// trigger hot path resolves an arriving tuple's relation with this
  /// integer scan instead of string comparison.
  int RelIndexOf(uint32_t rel_id) const {
    for (size_t i = 0; i < spec_.relations.size(); ++i) {
      if (rel_ids_[i] == rel_id) return static_cast<int>(i);
    }
    return -1;
  }

  const std::vector<ResolvedJoin>& joins() const { return joins_; }
  const std::vector<ResolvedSelection>& selections() const {
    return selections_;
  }
  const std::vector<ResolvedSelectItem>& select_items() const {
    return select_items_;
  }

  /// Attribute indices of relation `rel` referenced anywhere in the select
  /// list or WHERE clause, sorted; used for the DISTINCT projection rule of
  /// Section 4.
  const std::vector<int>& projection_attrs(int rel) const {
    return proj_attrs_[static_cast<size_t>(rel)];
  }

  /// The attribute names of relation `rel`, via the catalog schema.
  const sql::Schema& schema(int rel) const { return *schemas_[static_cast<size_t>(rel)]; }

 private:
  InputQuery() = default;

  uint64_t query_id_ = 0;
  dht::NodeIndex owner_ = dht::kInvalidNode;
  uint64_t ins_time_ = 0;
  bool one_time_ = false;
  sql::Query spec_;
  std::array<uint32_t, kMaxQueryRels> rel_ids_ = {};
  std::vector<ResolvedJoin> joins_;
  std::vector<ResolvedSelection> selections_;
  std::vector<ResolvedSelectItem> select_items_;
  std::vector<std::vector<int>> proj_attrs_;
  std::vector<const sql::Schema*> schemas_;
};

using InputQueryPtr = std::shared_ptr<const InputQuery>;

/// A (possibly partially evaluated) query travelling through the network.
/// Instead of materializing rewritten SQL text, a residual references its
/// immutable input query plus the tuples bound so far — semantically
/// identical to the paper's rewritten queries (sql::Rewriter is the
/// reference implementation; property tests check agreement).
///
/// Flat representation: bound tuples live in a fixed inline array of
/// TupleRef handles indexed by FROM position, so Bind() is allocation-free
/// and copying a residual (every rewrite hop stores one) is a handful of
/// refcount increments — no heap traffic on the steady-state path.
class Residual {
 public:
  Residual() = default;
  explicit Residual(InputQueryPtr origin) : origin_(std::move(origin)) {}

  const InputQueryPtr& origin() const { return origin_; }
  int num_bound() const { return num_bound_; }
  bool IsInputQuery() const { return num_bound_ == 0; }
  bool IsComplete() const {
    return static_cast<size_t>(num_bound_) == origin_->num_relations();
  }

  /// The tuple bound at FROM-relation index `rel`, or nullptr.
  const TupleRef* FindBound(int rel) const {
    return IsBound(rel) ? &bound_[static_cast<size_t>(rel)] : nullptr;
  }
  bool IsBound(int rel) const {
    return (bound_mask_ >> static_cast<unsigned>(rel)) & 1u;
  }

  /// Window positions (pub_time or seq_no, per the window unit) of the
  /// earliest and latest bound tuples. Meaningful once num_bound > 0.
  uint64_t window_min() const { return window_min_; }
  uint64_t window_max() const { return window_max_; }

  /// The paper's start(q) parameter (Section 5): set by the first binding,
  /// then propagated per the inheritance rules.
  uint64_t window_start() const { return window_min_; }

  /// True iff tuple `t` (of FROM-relation index `rel`) satisfies every
  /// constraint the residual currently places on that relation: original
  /// selections on the relation, and join predicates whose other side is
  /// already bound. Join predicates between two unbound relations impose
  /// nothing yet. Temporal checks are separate (see WindowAdmits).
  ///
  /// The TupleRef form is the hot path: every predicate is one u32
  /// ValueId comparison (interning is injective, so vid equality is value
  /// equality). The sql::Tuple form is the cold/test boundary.
  bool Matches(int rel, const TupleRef& t) const;
  bool Matches(int rel, const sql::Tuple& t) const;

  /// Window validity test of Section 5 for binding `t`: the resulting
  /// combination must fit in one window. Always true without windows.
  bool WindowAdmits(int rel, const TupleRef& t) const;
  bool WindowAdmits(int rel, const sql::Tuple& t) const;

  /// Returns a new residual with `t` bound at `rel`. Caller must have
  /// verified Matches and WindowAdmits. This is the engine's rewrite step —
  /// allocation-free: a fixed-size copy plus refcount increments.
  Residual Bind(int rel, TupleRef t) const;

  /// Cold-boundary form (tests): pools a flat record for `t` first.
  Residual Bind(int rel, const sql::TuplePtr& t) const;

  /// Answer row of a complete residual (materialized; owner-side only).
  std::vector<sql::Value> ExtractAnswer() const;

  /// Flat answer row of a complete residual: writes the interned ValueIds
  /// of the select list into `out` (capacity >= kMaxSelectItems) and
  /// returns the item count. Allocation-free.
  int ExtractAnswerIds(ValueId* out) const;

  /// Fingerprint of the residual's *rewritten content*: origin query plus,
  /// for every bound relation, the projection of its tuple over the
  /// attributes the query references. Two residuals with equal fingerprints
  /// are the same rewritten query (used for DISTINCT set semantics).
  std::string ContentFingerprint() const;

  /// 64-bit fingerprint over interned ValueIds — the hot-path form, no
  /// string rendering. Vids are canonical across shard counts (driver-phase
  /// interning), so this is bit-identical at S=1/4/7.
  uint64_t ContentFingerprint64() const;

  /// Value of attribute (rel, attr) if that relation is bound. The
  /// reference is stable (ValueInterner entries are immortal).
  const sql::Value* BoundValue(int rel, int attr) const;

  /// Interned id of attribute (rel, attr), or kInvalidValueId if unbound.
  ValueId BoundValueId(int rel, int attr) const {
    if (!IsBound(rel)) return kInvalidValueId;
    return bound_[static_cast<size_t>(rel)].value_id(attr);
  }

  /// The equivalent textual rewritten query (reference form, for tracing
  /// and tests against sql::Rewriter).
  sql::Query ToRewrittenQuery() const;

 private:
  InputQueryPtr origin_;
  std::array<TupleRef, kMaxQueryRels> bound_;  ///< dense by FROM index
  uint16_t bound_mask_ = 0;
  uint8_t num_bound_ = 0;
  uint64_t window_min_ = UINT64_MAX;
  uint64_t window_max_ = 0;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_RESIDUAL_H_
