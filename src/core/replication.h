#ifndef RJOIN_CORE_REPLICATION_H_
#define RJOIN_CORE_REPLICATION_H_

#include <cstdint>
#include <vector>

#include "core/key.h"
#include "core/key_map.h"
#include "core/node_state.h"
#include "core/residual.h"
#include "core/tuple_ref.h"

namespace rjoin::core {

// ---------------------------------------------------------------------------
// Successor-list replication (docs/failures.md). Under a replication factor
// r > 1, every state-mutating delivery at a key's owner pushes the key's
// FULL current slice to the next r-1 ring successors as a ReplicaUpdate
// (boxed HandoffBatch). A receiver REPLACES its stored copy — the protocol
// never ships deltas or deletions, so a replica is always a consistent
// point-in-time snapshot of the owner's slice, possibly stale by in-flight
// updates. When the owner crashes silently, the surviving successor
// promotes its slices through the normal handoff install passes.
// ---------------------------------------------------------------------------

/// A replica's copy of one key's NodeState slice. Plain flat copies of the
/// owner's records: Residuals (not StoredQuery — the ProjectionSet is not
/// mirrored; DISTINCT suppression after a promotion is covered by the
/// owner-side answer-row fingerprints and the target-side stored-residual
/// fingerprints), value-tuple handles in arrival order, ALTT entries with
/// their original absolute expiry, and the key's rate bucket.
struct ReplicaKeySlice {
  /// Emission time of the last ReplicaUpdate applied; an older in-flight
  /// update never overwrites a newer slice (sends are FIFO per (src, dst)
  /// in virtual time, but a refresh after churn may overtake a pre-churn
  /// mirror from the previous owner).
  uint64_t version = 0;
  std::vector<Residual> queries;
  std::vector<TupleRef> tuples;
  std::vector<AlttEntry> altt;
  uint64_t rate_epoch = 0;
  uint64_t rate_current = 0;
  uint64_t rate_previous = 0;

  void Clear() {
    queries.clear();
    tuples.clear();
    altt.clear();
    rate_epoch = rate_current = rate_previous = 0;
  }
};

/// Everything one node holds on behalf of its ring predecessors. Created
/// lazily (NodeState::replica_store()): with replication off, no node ever
/// pays the map's footprint — the single `replication > 1` branch is the
/// whole cost of the feature when disabled.
struct ReplicaStore {
  KeyIdMap<ReplicaKeySlice> slices;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_REPLICATION_H_
