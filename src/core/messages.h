#ifndef RJOIN_CORE_MESSAGES_H_
#define RJOIN_CORE_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "core/key.h"
#include "core/residual.h"
#include "core/ric.h"
#include "dht/transport.h"
#include "sql/tuple.h"
#include "sql/value.h"

namespace rjoin::core {

/// Procedure 1's newTuple(t, Key, IP(x), Level): a tuple indexed under one
/// of its 2k keys (k attribute-level + k value-level).
struct NewTupleMsg : public dht::Message {
  sql::TuplePtr tuple;
  IndexKey key;
  dht::NodeIndex publisher = dht::kInvalidNode;
};

/// Procedures 2/3's Eval(q', Key, Owner(q)): an input or rewritten query
/// being (re)indexed at the node responsible for `key`. Carries piggy-backed
/// RIC info (Section 7) so the receiver can index further rewrites cheaply.
struct EvalMsg : public dht::Message {
  Residual residual;
  IndexKey key;
  std::vector<RicEntry> piggyback;
};

/// An answer tuple sent back to the node that submitted the input query
/// (sendDirect to Owner(q)).
struct AnswerMsg : public dht::Message {
  uint64_t query_id = 0;
  std::vector<sql::Value> row;
  uint64_t completed_at = 0;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_MESSAGES_H_
