#ifndef RJOIN_CORE_MESSAGES_H_
#define RJOIN_CORE_MESSAGES_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/key.h"
#include "core/residual.h"
#include "core/ric.h"
#include "core/tuple_ref.h"
#include "dht/chord_node.h"
#include "dht/id.h"
#include "sim/time.h"
#include "sql/tuple.h"
#include "sql/value.h"

namespace rjoin::core {

// ---------------------------------------------------------------------------
// The typed message plane. Every payload that crosses the (simulated)
// network is one of the alternatives below, defined once and dispatched by
// a switch in the engine — no virtual message hierarchy, no dynamic_cast,
// and no type-erased closure per delivery. Payloads travel inside pooled
// Envelopes (see MessagePool), so the steady-state delivery path performs
// zero heap allocations per message.
// ---------------------------------------------------------------------------

/// Discriminator of MessageTask. Values mirror the variant's alternative
/// indices (static_asserted below), so kind() is a free read.
enum class MessageKind : uint8_t {
  kNone = 0,       ///< empty task (pooled envelope at rest)
  kTuplePublish,   ///< Procedure 1: a tuple indexed under one of its 2k keys
  kQueryIndex,     ///< Procedure 2: an *input* query being indexed
  kRewrite,        ///< Procedure 3: a rewritten residual being (re)indexed
  kRicRequest,     ///< Section 7: direct rate lookup at a responsible node
  kRicReply,       ///< Section 7: the rate answer, merged into the CT
  kAnswerDeliver,  ///< a completed join row returning to Owner(q)
  kControl,        ///< runtime plumbing: timers, deferred driver work, tests
  kNodeJoin,       ///< churn: a node joining the ring at a given position
  kNodeLeave,      ///< churn: a voluntary, graceful departure
  kStateHandoff,   ///< churn: NodeState slices moving to a new owner
  kReplicaUpdate,  ///< replication: a refreshed per-key slice for a successor
  kNodeCrash,      ///< failure injection: a silent kill — no handoff
};

const char* MessageKindName(MessageKind kind);

/// Procedure 1's newTuple(t, Key, IP(x), Level): a tuple indexed under one
/// of its 2k keys (k attribute-level + k value-level). The key is an
/// interned id — the canonical text and level were interned once at
/// publication; receivers resolve level/text through the KeyInterner
/// without hashing anything. The tuple travels as a pooled-record handle
/// (core::TupleRef): the 2k copies of a publish share one flat record and
/// each message holds a 4-byte reference, not a shared_ptr control block.
struct TuplePublish {
  TupleRef tuple;
  KeyId key = kInvalidKeyId;
  dht::NodeIndex publisher = dht::kInvalidNode;
};

/// Procedure 2's Eval(q, Key, Owner(q)): an input query being indexed at
/// the node responsible for `key`. Carries piggy-backed RIC info
/// (Section 7) so the receiver can index further rewrites cheaply.
struct QueryIndex {
  Residual residual;
  KeyId key = kInvalidKeyId;
  RicVec piggyback;
};

/// Procedure 3's Eval(q', Key, Owner(q)): a rewritten residual being
/// re-indexed after a binding. Same wire shape as QueryIndex; the distinct
/// kind keeps tuple-triggered traffic separable from query-submission
/// traffic at every dispatch point.
struct Rewrite {
  Residual residual;
  KeyId key = kInvalidKeyId;
  RicVec piggyback;
};

/// Section 7's direct RIC exchange, request half: "what is the rate of
/// `key` at your node?" — sent to the responsible node, answered with
/// a RicReply to `requester`. Two machine words on the wire.
struct RicRequest {
  KeyId key = kInvalidKeyId;
  dht::NodeIndex requester = dht::kInvalidNode;
};

/// Section 7's direct RIC exchange, reply half: the rate observation,
/// merged into the requester's candidate table.
struct RicReply {
  RicEntry entry;
};

/// An answer tuple sent back to the node that submitted the input query
/// (sendDirect to Owner(q)). The row is a flat array of interned ValueIds
/// (select lists are bounded by kMaxSelectItems): the message is POD and
/// the owner materializes sql::Values only at the user-facing sink.
struct AnswerDeliver {
  uint64_t query_id = 0;
  uint64_t completed_at = 0;
  /// Publication time of the tuple whose arrival completed the residual —
  /// the start of the end-to-end answer-latency measurement
  /// (docs/observability.md).
  uint64_t pub_time = 0;
  uint16_t row_len = 0;
  ValueId row[kMaxSelectItems] = {};
};

/// Non-protocol work riding the event plane: simulator timers, deferred
/// driver-phase dispatches in tests, GC sweeps. Not a network message; the
/// closure may allocate, which is fine off the steady-state delivery path.
struct Control {
  std::function<void()> run;
};

/// Live churn, join half: a node announcing it wants to join the ring at
/// `id`, delivered to a bootstrap node. The engine stages the request and
/// applies it at the next round barrier (ring mutations are serial-phase
/// work; see docs/churn.md for the determinism argument).
struct NodeJoin {
  dht::NodeId id;
  dht::NodeIndex bootstrap = dht::kInvalidNode;
};

/// Live churn, leave half: node `node` departs gracefully. Staged and
/// applied like NodeJoin; the departing node's responsibility range is
/// handed to its successor as a StateHandoff.
struct NodeLeave {
  dht::NodeIndex node = dht::kInvalidNode;
};

/// Live churn, transfer half: the NodeState slices of a moved key range,
/// boxed so the rare churn path does not grow every pooled Envelope. The
/// batch definition lives in core/handoff.h; the out-of-line special
/// members keep HandoffBatch an incomplete type here.
struct HandoffBatch;
struct StateHandoff {
  StateHandoff();
  explicit StateHandoff(std::unique_ptr<HandoffBatch> b);
  StateHandoff(StateHandoff&&) noexcept;
  StateHandoff& operator=(StateHandoff&&) noexcept;
  StateHandoff(const StateHandoff&) = delete;
  StateHandoff& operator=(const StateHandoff&) = delete;
  ~StateHandoff();

  std::unique_ptr<HandoffBatch> batch;
};

/// Successor-list replication: the full current slice of every key listed
/// in the batch's `replica_keys`, pushed by the owner to one of its next
/// r-1 successors after a state-mutating delivery. Reuses the boxed
/// HandoffBatch wire shape (docs/failures.md), so the pooled Envelope does
/// not grow for the replication path either. A receiver REPLACES its
/// replica slice for each listed key — deltas and deletions never travel.
struct ReplicaUpdate {
  ReplicaUpdate();
  explicit ReplicaUpdate(std::unique_ptr<HandoffBatch> b);
  ReplicaUpdate(ReplicaUpdate&&) noexcept;
  ReplicaUpdate& operator=(ReplicaUpdate&&) noexcept;
  ReplicaUpdate(const ReplicaUpdate&) = delete;
  ReplicaUpdate& operator=(const ReplicaUpdate&) = delete;
  ~ReplicaUpdate();

  std::unique_ptr<HandoffBatch> batch;
};

/// Failure injection: node `node` is killed silently — no goodbye, no
/// handoff; its state survives only as replica slices at its successors.
/// Staged and applied at a rendezvous like NodeJoin/NodeLeave.
/// `take_successors` > 0 additionally kills that many adjacent ring
/// successors in the same barrier (the correlated-kill worst case that
/// defeats a replication factor of take_successors + 1).
struct NodeCrash {
  dht::NodeIndex node = dht::kInvalidNode;
  uint32_t take_successors = 0;
};

/// Move-only tagged union of every payload kind. The alternative order
/// must match MessageKind (see the static_asserts below).
class MessageTask {
 public:
  MessageTask() = default;
  MessageTask(TuplePublish&& p) : v_(std::move(p)) {}
  MessageTask(QueryIndex&& p) : v_(std::move(p)) {}
  MessageTask(Rewrite&& p) : v_(std::move(p)) {}
  MessageTask(RicRequest&& p) : v_(std::move(p)) {}
  MessageTask(RicReply&& p) : v_(std::move(p)) {}
  MessageTask(AnswerDeliver&& p) : v_(std::move(p)) {}
  MessageTask(Control&& p) : v_(std::move(p)) {}
  MessageTask(NodeJoin&& p) : v_(std::move(p)) {}
  MessageTask(NodeLeave&& p) : v_(std::move(p)) {}
  MessageTask(StateHandoff&& p) : v_(std::move(p)) {}
  MessageTask(ReplicaUpdate&& p) : v_(std::move(p)) {}
  MessageTask(NodeCrash&& p) : v_(std::move(p)) {}

  MessageTask(MessageTask&&) noexcept = default;
  MessageTask& operator=(MessageTask&&) noexcept = default;
  MessageTask(const MessageTask&) = delete;
  MessageTask& operator=(const MessageTask&) = delete;

  MessageKind kind() const { return static_cast<MessageKind>(v_.index()); }
  bool empty() const { return kind() == MessageKind::kNone; }

  TuplePublish& tuple_publish() { return std::get<TuplePublish>(v_); }
  QueryIndex& query_index() { return std::get<QueryIndex>(v_); }
  Rewrite& rewrite() { return std::get<Rewrite>(v_); }
  RicRequest& ric_request() { return std::get<RicRequest>(v_); }
  RicReply& ric_reply() { return std::get<RicReply>(v_); }
  AnswerDeliver& answer() { return std::get<AnswerDeliver>(v_); }
  Control& control() { return std::get<Control>(v_); }
  NodeJoin& node_join() { return std::get<NodeJoin>(v_); }
  NodeLeave& node_leave() { return std::get<NodeLeave>(v_); }
  StateHandoff& state_handoff() { return std::get<StateHandoff>(v_); }
  ReplicaUpdate& replica_update() { return std::get<ReplicaUpdate>(v_); }
  NodeCrash& node_crash() { return std::get<NodeCrash>(v_); }

  /// Drops the payload (back to kNone), releasing whatever it owned.
  void Reset() { v_.emplace<std::monostate>(); }

 private:
  using Variant =
      std::variant<std::monostate, TuplePublish, QueryIndex, Rewrite,
                   RicRequest, RicReply, AnswerDeliver, Control, NodeJoin,
                   NodeLeave, StateHandoff, ReplicaUpdate, NodeCrash>;

  template <MessageKind K, typename T>
  static constexpr bool kMatches =
      std::is_same_v<std::variant_alternative_t<static_cast<size_t>(K),
                                                Variant>,
                     T>;
  static_assert(kMatches<MessageKind::kNone, std::monostate>);
  static_assert(kMatches<MessageKind::kTuplePublish, TuplePublish>);
  static_assert(kMatches<MessageKind::kQueryIndex, QueryIndex>);
  static_assert(kMatches<MessageKind::kRewrite, Rewrite>);
  static_assert(kMatches<MessageKind::kRicRequest, RicRequest>);
  static_assert(kMatches<MessageKind::kRicReply, RicReply>);
  static_assert(kMatches<MessageKind::kAnswerDeliver, AnswerDeliver>);
  static_assert(kMatches<MessageKind::kControl, Control>);
  static_assert(kMatches<MessageKind::kNodeJoin, NodeJoin>);
  static_assert(kMatches<MessageKind::kNodeLeave, NodeLeave>);
  static_assert(kMatches<MessageKind::kStateHandoff, StateHandoff>);
  static_assert(kMatches<MessageKind::kReplicaUpdate, ReplicaUpdate>);
  static_assert(kMatches<MessageKind::kNodeCrash, NodeCrash>);

  Variant v_;
};

// ---------------------------------------------------------------------------
// Envelope: the one in-flight message representation, shared by the serial
// sim::EventQueue, the dht::Transport, and the runtime::ShardedRuntime
// shard heaps/mailboxes. Envelopes are slab-allocated by a MessagePool and
// recycled through a freelist, so a message in steady state costs zero heap
// allocations end to end.
// ---------------------------------------------------------------------------

class MessagePool;

/// Routing state of an in-flight envelope. Deferred driver-phase sends are
/// scheduled on the emitting node's shard still in the kRoute/kDirect
/// stage; the worker performs the routing work (or the one-hop charge) and
/// reschedules the same envelope in the kDeliver stage — no intermediate
/// allocation.
enum class EnvelopeStage : uint8_t {
  kDeliver = 0,  ///< dst/time final; dispatch hands the task to the engine
  kRoute,        ///< still needs the O(log N) route toward `route_key`
  kDirect,       ///< still needs the one-hop direct-send charge + latency
  /// Head (or member) of a deferred MultiSendKeys batch: the whole link
  /// chain is routed *together* by the transport's destination-coalescing
  /// pass instead of one envelope at a time.
  kRouteGroup,
};

struct Envelope {
  // --- scheduling identity -------------------------------------------------
  sim::SimTime time = 0;             ///< virtual delivery time
  dht::NodeIndex src = dht::kInvalidNode;  ///< emitting node
  uint64_t seq = 0;     ///< per-src emission seq (the runtime ordering key)
  uint64_t order = 0;   ///< serial EventQueue insertion seq (FIFO on ties)
  dht::NodeIndex dst = dht::kInvalidNode;  ///< receiving node
  /// Virtual time the send was emitted (stamped by ShardRouter / the
  /// runtime's cross-shard push). Receivers fold `emit_time + min hop
  /// latency` into their watermark frontier: a shard's emissions are
  /// nondecreasing in time, so the last drained send-time from a peer
  /// bounds everything that peer will still send.
  sim::SimTime emit_time = 0;

  // --- payload -------------------------------------------------------------
  MessageTask task;

  // --- routing stage (see EnvelopeStage) -----------------------------------
  dht::NodeId route_key;  ///< target identifier while stage != kDeliver
  /// Interned id of route_key when the sender knew it (kInvalidKeyId
  /// otherwise). Carries the route-cache key across a driver-phase defer so
  /// the worker-side routing stage can hit the per-node route cache.
  KeyId route_key_id = kInvalidKeyId;
  EnvelopeStage stage = EnvelopeStage::kDeliver;
  bool ric = false;  ///< charge traffic as RIC overhead

  // --- plumbing ------------------------------------------------------------
  Envelope* link = nullptr;   ///< MultiSend batch chain / pool freelist
  /// Head of a destination-coalesced delivery group: extra payloads that
  /// ride this envelope to the same dst (chained through their own `link`).
  /// Only kDeliver envelopes carry one; the group shares this envelope's
  /// (src, seq, time) identity and was charged as one wire message.
  Envelope* group = nullptr;
  MessagePool* origin = nullptr;  ///< pool the storage belongs to
};

/// Move-only owner of a pooled Envelope; releasing returns the envelope
/// (payload dropped) to its pool's freelist.
class EnvelopeRef {
 public:
  EnvelopeRef() = default;
  explicit EnvelopeRef(Envelope* env) : env_(env) {}
  EnvelopeRef(EnvelopeRef&& other) noexcept : env_(other.env_) {
    other.env_ = nullptr;
  }
  EnvelopeRef& operator=(EnvelopeRef&& other) noexcept {
    if (this != &other) {
      Reset();
      env_ = other.env_;
      other.env_ = nullptr;
    }
    return *this;
  }
  EnvelopeRef(const EnvelopeRef&) = delete;
  EnvelopeRef& operator=(const EnvelopeRef&) = delete;
  ~EnvelopeRef() { Reset(); }

  /// Returns the envelope to its pool (no-op when empty).
  void Reset();

  Envelope* get() const { return env_; }
  Envelope* release() {
    Envelope* e = env_;
    env_ = nullptr;
    return e;
  }
  Envelope* operator->() const { return env_; }
  Envelope& operator*() const { return *env_; }
  explicit operator bool() const { return env_ != nullptr; }

 private:
  Envelope* env_ = nullptr;
};

/// Slab/freelist allocator for Envelopes. One pool per event-executing
/// context: the serial simulator owns one, and every shard of the parallel
/// runtime owns one. Acquire() is owner-thread-only (or any thread while
/// the owner is parked at a barrier — the runtime's driver phase); Release
/// from the owner thread pushes the local freelist, Release from any other
/// thread pushes a lock-free remote list that the owner reclaims in bulk.
/// Slabs are never freed until the pool dies, so pointers stay valid for
/// the pool's whole lifetime.
class MessagePool {
 public:
  static constexpr size_t kDefaultSlabEnvelopes = 256;

  explicit MessagePool(size_t slab_envelopes = kDefaultSlabEnvelopes);
  ~MessagePool();
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  /// Hands out a clean envelope (freelist hit in steady state; slab growth
  /// only while the in-flight high-water mark is still rising).
  EnvelopeRef Acquire();

  /// Returns `env` to its origin pool. Callable from any thread; drops the
  /// payload first. Used by EnvelopeRef — call that instead where possible.
  static void Release(Envelope* env);

  /// Re-binds the owner thread (the thread whose Release calls may touch
  /// the non-atomic freelist). Runtime workers call this once on startup.
  void BindOwnerThread() { owner_ = std::this_thread::get_id(); }

  /// Allocation counters of this pool. `envelopes_allocated` only grows
  /// while the high-water mark of in-flight messages grows; in steady state
  /// every Acquire is a `recycled` freelist hit — the zero-allocation
  /// property the messaging tests assert.
  struct Stats {
    uint64_t slabs_allocated = 0;
    uint64_t envelopes_allocated = 0;
    uint64_t acquired = 0;
    uint64_t recycled = 0;
    uint64_t released = 0;  ///< envelopes returned (freelist or remote list)

    /// Envelopes handed out and not yet returned. Zero after a full drain —
    /// the no-envelope-lost/duplicated balance the churn tests assert.
    uint64_t outstanding() const { return acquired - released; }
  };
  Stats stats() const;

  /// Process-wide totals across all pools, live and destroyed. The bench
  /// reporter diffs these around a figure to derive `allocs_per_tuple` and
  /// `messages_per_sec`.
  struct GlobalStats {
    uint64_t envelopes_allocated = 0;
    uint64_t acquired = 0;
    uint64_t released = 0;

    /// Envelopes in flight across every pool. Zero once all runtimes have
    /// drained and shut down — the balance the pool-balance suite asserts.
    uint64_t outstanding() const { return acquired - released; }
  };
  static GlobalStats Aggregate();

 private:
  friend class EnvelopeRef;

  Envelope* NewEnvelope();

  /// Each slab doubles the previous one up to this cap, so a pool whose
  /// in-flight high-water mark keeps rising costs O(log) slab allocations
  /// instead of high_water / slab_size (same policy as core::SlabPool).
  static constexpr size_t kMaxSlabEnvelopes = 16384;

  const size_t base_slab_size_;
  std::vector<std::unique_ptr<Envelope[]>> slabs_;
  size_t last_slab_size_ = 0;
  size_t last_slab_used_ = 0;
  Envelope* free_ = nullptr;                    // owner-thread freelist
  std::atomic<Envelope*> remote_free_{nullptr};  // cross-thread returns
  std::thread::id owner_;

  // Relaxed atomics: written by the owner thread (released_ by any
  // releasing thread), read by Aggregate()/stats().
  std::atomic<uint64_t> slabs_allocated_{0};
  std::atomic<uint64_t> envelopes_allocated_{0};
  std::atomic<uint64_t> acquired_{0};
  std::atomic<uint64_t> recycled_{0};
  std::atomic<uint64_t> released_{0};
};

/// Executes due envelopes. dht::Transport is the one implementation: it
/// finishes kRoute/kDirect stages (rescheduling the same envelope) and
/// hands kDeliver payloads to the engine's dispatch switch. Both the serial
/// simulator and the sharded runtime call this for every non-Control
/// envelope they pop.
class EnvelopeDispatcher {
 public:
  virtual ~EnvelopeDispatcher() = default;
  virtual void DispatchEnvelope(EnvelopeRef env) = 0;
};

/// Executes a Control envelope: the closure moves out and the envelope
/// recycles *before* the closure runs, so anything it schedules reuses the
/// freed envelope first. Every event pump shares this one definition of
/// the recycle-before-run contract.
inline void RunControl(EnvelopeRef env) {
  std::function<void()> run = std::move(env->task.control().run);
  env.Reset();
  run();
}

}  // namespace rjoin::core

#endif  // RJOIN_CORE_MESSAGES_H_
