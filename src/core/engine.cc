#include "core/engine.h"

#include "sql/evaluator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>
#include <map>

#include "core/replication.h"
#include "stats/alloc_tracker.h"
#include "stats/trace.h"
#include "util/hash.h"
#include "util/logging.h"

namespace rjoin::core {

namespace {

constexpr uint32_t kNil = SlabPool<StoredQuery>::kNil;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/// DISTINCT projection fingerprint of Section 4, over interned value ids:
/// vid equality is value equality (injective interner) and vids are
/// canonical across shard counts, so the fingerprint is deterministic and
/// needs no string rendering. Shared by the single-tuple trigger and the
/// batched probe kernel — both sides of the rule must hash identically.
uint64_t ProjectionFingerprint(const InputQuery& q, int rel,
                               const TupleRef& t) {
  uint64_t h = kFnvOffset;
  const ValueId* cols = t.rec().columns();
  for (int attr : q.projection_attrs(rel)) {
    h ^= static_cast<uint64_t>(cols[attr]) + 1;
    h *= kFnvPrime;
  }
  return h;
}

/// Owner-side DISTINCT row fingerprint: FNV over the flat answer row's
/// value ids (replaces the seed's per-row key string).
uint64_t AnswerRowFingerprint(const AnswerDeliver& msg) {
  uint64_t h = kFnvOffset;
  for (uint16_t i = 0; i < msg.row_len; ++i) {
    h ^= static_cast<uint64_t>(msg.row[i]) + 1;
    h *= kFnvPrime;
  }
  return h;
}

/// Materializes the flat answer row at the user-facing sink — the one
/// deliberate allocation left on the answer path, tagged kOther (answers
/// are output, not rewrite-plane work; see docs/perf.md).
std::vector<sql::Value> MaterializeRow(const AnswerDeliver& msg) {
  stats::AllocScope plane(stats::AllocPlane::kOther);
  std::vector<sql::Value> row;
  row.reserve(msg.row_len);
  ValueInterner& vi = ValueInterner::Global();
  for (uint16_t i = 0; i < msg.row_len; ++i) {
    row.push_back(vi.value(msg.row[i]));
  }
  return row;
}

/// Reusable per-thread match buffer of the batched probe kernel (phase 1
/// collects pointers to matched refs here; phase 2 consumes them). The
/// pointers address chunk/span storage that phase 2 never mutates.
std::vector<const TupleRef*>& MatchBuffer() {
  static thread_local std::vector<const TupleRef*> buf;
  buf.clear();
  return buf;
}

/// Reusable per-thread span list: the value-bucket probe describes its
/// chunk chain as (data, count) runs so the kernel reads chunk storage in
/// place — no gather, no refcount traffic.
std::vector<TupleSpan>& SpanListBuffer() {
  static thread_local std::vector<TupleSpan> buf;
  buf.clear();
  return buf;
}

/// Reusable per-thread span buffer: the ALTT probe gathers its non-expired
/// chain entries into contiguous storage for the batched kernel. Cleared
/// after use so the handles do not pin records between probes.
std::vector<TupleRef>& AlttSpanBuffer() {
  static thread_local std::vector<TupleRef> buf;
  buf.clear();
  return buf;
}

/// Reusable per-thread candidate buffer for IndexResidual (one rewrite hop
/// enumerates its indexing candidates allocation-free once warm).
std::vector<KeyId>& CandidateBuffer() {
  static thread_local std::vector<KeyId> buf;
  return buf;
}

/// Reusable per-thread RIC gather scratch (rates / responsible nodes).
std::vector<uint64_t>& RicRateBuffer() {
  static thread_local std::vector<uint64_t> buf;
  return buf;
}
std::vector<dht::NodeIndex>& RicNodeBuffer() {
  static thread_local std::vector<dht::NodeIndex> buf;
  return buf;
}

/// Reusable per-thread replica target set (the mirror fan-out of
/// docs/failures.md resolves its successor list allocation-free once warm).
std::vector<dht::NodeIndex>& ReplicaTargetBuffer() {
  static thread_local std::vector<dht::NodeIndex> buf;
  return buf;
}

/// Reusable per-thread key set of the per-install mirror pass in
/// OnStateHandoff (installed keys, deduplicated in ring order).
std::vector<KeyId>& InstalledKeyBuffer() {
  static thread_local std::vector<KeyId> buf;
  buf.clear();
  return buf;
}

}  // namespace

RJoinEngine::RJoinEngine(EngineConfig config, const sql::Catalog* catalog,
                         dht::ChordNetwork* network, dht::Transport* transport,
                         sim::Simulator* simulator,
                         stats::MetricsRegistry* metrics)
    : config_(config),
      catalog_(catalog),
      network_(network),
      transport_(transport),
      simulator_(simulator),
      metrics_(metrics),
      rng_(config.seed) {
  metrics_->Resize(network_->num_total());
  states_.reserve(network_->num_total());
  for (size_t i = 0; i < network_->num_total(); ++i) {
    states_.push_back(std::make_unique<NodeState>(config_.ric_epoch));
  }
  crashed_.assign(network_->num_total(), 0);
  transport_->set_handler(this);

  if (config_.altt_delta != 0) {
    altt_delta_ = config_.altt_delta;
  } else {
    // Section 4: overestimate the time for any message to cross the network
    // — O(log N) hops, each bounded by delta — from a locally estimated
    // network size. Factor 4 is the safety margin ("overestimate").
    const double est = network_->EstimateSize(network_->AliveNodes().front());
    const double hops = std::max(1.0, std::log2(std::max(2.0, est)));
    // The latency bound per hop is not visible here; transports in this
    // repo use single-digit tick hops, so bound a hop by 16 ticks.
    altt_delta_ = static_cast<uint64_t>(4.0 * hops * 16.0);
  }
}

void RJoinEngine::AttachRuntime(runtime::ShardedRuntime* rt) {
  RJOIN_CHECK(runtime_ == nullptr) << "runtime already attached";
  RJOIN_CHECK(rt->num_nodes() == states_.size())
      << "runtime sized for a different network";
  runtime_ = rt;
  sinks_ = std::vector<ShardSink>(rt->shards());
  frozen_rates_.assign(states_.size(), {});
  planner_seq_.assign(states_.size(), 0);
  rt->AddBarrierHook(this);
}

void RJoinEngine::OnBarrier(sim::SimTime round_start) {
  // Publish answers staged by the previous round. Each shard stages in
  // EventKey order already; a merge-sort across shards reconstructs the
  // global, shard-count-invariant delivery order.
  size_t staged = 0;
  for (const ShardSink& sink : sinks_) staged += sink.answers.size();
  if (staged > 0) {
    std::vector<std::pair<runtime::EventKey, Answer>> merged;
    merged.reserve(staged);
    for (ShardSink& sink : sinks_) {
      merged.insert(merged.end(),
                    std::make_move_iterator(sink.answers.begin()),
                    std::make_move_iterator(sink.answers.end()));
      sink.answers.clear();
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [key, answer] : merged) answers_.push_back(std::move(answer));
  }
  for (ShardSink& sink : sinks_) {
    distinct_suppressed_ += sink.distinct_suppressed;
    sink.distinct_suppressed = 0;
    sink.key_load.ForEach(
        [this](KeyId key, uint64_t count) { key_load_[key] += count; });
    sink.key_load.clear();
  }

  // Churn: fold worker-side counters, then apply the ring mutations staged
  // by the previous round in global EventKey order. Workers are parked, so
  // this is the one place the topology, the node tables, and the handoff
  // envelopes may change (see docs/churn.md).
  bool churn_applied = false;
  {
    std::vector<std::pair<runtime::EventKey, ChurnOp>> ops;
    std::vector<std::pair<runtime::EventKey, uint64_t>> ticks;
    for (ShardSink& sink : sinks_) {
      churn_.handoffs_installed += sink.churn.installed;
      churn_.handoffs_reforwarded += sink.churn.reforwarded;
      churn_.handoff_recovery_ticks += sink.churn.recovery_ticks;
      churn_.forwarded_messages += sink.churn.forwarded;
      sink.churn = ChurnSinkCounters{};
      replication_.replica_updates += sink.replica.updates;
      replication_.replica_keys += sink.replica.keys;
      replication_.replica_bytes += sink.replica.bytes;
      replication_.promotions_installed += sink.replica.promotions_installed;
      replication_.promoted_records += sink.replica.promoted_records;
      replication_.answers_lost += sink.replica.answers_lost;
      sink.replica = ReplicaSinkCounters{};
      ticks.insert(ticks.end(), sink.promotion_ticks.begin(),
                   sink.promotion_ticks.end());
      sink.promotion_ticks.clear();
      ops.insert(ops.end(), std::make_move_iterator(sink.churn_ops.begin()),
                 std::make_move_iterator(sink.churn_ops.end()));
      sink.churn_ops.clear();
    }
    if (!ticks.empty()) {
      // Recovery samples merge in global EventKey order, so the series is
      // identical for any shard count.
      std::sort(ticks.begin(), ticks.end(), [](const auto& a, const auto& b) {
        return a.first < b.first;
      });
      for (const auto& [key, t] : ticks) promotion_recovery_ticks_.push_back(t);
    }
    if (!ops.empty()) {
      std::sort(ops.begin(), ops.end(), [](const auto& a, const auto& b) {
        return a.first < b.first;
      });
      for (const auto& [key, op] : ops) ApplyChurn(op);
      churn_applied = true;
    }
  }
  // A responsibility change invalidates the frozen per-epoch rate
  // snapshots (rates moved between nodes, and new nodes have none), so
  // force a rebuild below — at a barrier, hence shard-count-invariant.
  if (churn_applied) frozen_valid_ = false;

  // Refresh the frozen rate snapshots when entering a new RIC epoch: for
  // the rest of the epoch, worker-side RIC lookups see the rates as of this
  // barrier — a deterministic function of the round schedule, which is
  // itself independent of the shard count.
  const uint64_t epoch =
      config_.ric_epoch == 0 ? 0 : round_start / config_.ric_epoch;
  if (!frozen_valid_ || epoch != frozen_epoch_) {
    for (size_t n = 0; n < states_.size(); ++n) {
      frozen_rates_[n].clear();
      states_[n]->rates.SnapshotInto(round_start, &frozen_rates_[n]);
    }
    frozen_epoch_ = epoch;
    frozen_valid_ = true;
  }
}

sim::SimTime RJoinEngine::NextRendezvous(sim::SimTime after) {
  // Frozen rate snapshots hold for one RIC epoch; overlap may not cross a
  // boundary or workers would read rates one epoch stale. Everything else
  // OnBarrier does (answer publication, counter folds) is order-preserving
  // at any rendezvous spacing.
  if (config_.ric_epoch == 0) return runtime::kNoRendezvous;
  return ((after / config_.ric_epoch) + 1) * config_.ric_epoch;
}

uint64_t RJoinEngine::ReadRate(dht::NodeIndex cand, KeyId key,
                               uint64_t now) {
  if (runtime_ != nullptr && runtime::ShardedRuntime::CurrentShard() >= 0) {
    const uint64_t* rate = frozen_rates_[cand].Find(key);
    return rate == nullptr ? 0 : *rate;
  }
  return state(cand).rates.Rate(key, now);
}

StatusOr<uint64_t> RJoinEngine::SubmitQuery(dht::NodeIndex owner,
                                            sql::Query spec) {
  auto compiled = InputQuery::Create(next_query_id_, owner, Now(),
                                     std::move(spec), catalog_);
  if (!compiled.ok()) return compiled.status();
  const uint64_t id = next_query_id_++;
  queries_.emplace(id, *compiled);

  const sql::WindowSpec& w = (*compiled)->spec().window;
  if (w.use_windows) {
    ++num_windowed_queries_;
    max_window_span_ = std::max(max_window_span_, w.size);
  } else {
    ++num_unwindowed_queries_;
  }

  IndexResidual(owner, Residual(*compiled));
  return id;
}

StatusOr<uint64_t> RJoinEngine::SubmitOneTimeQuery(dht::NodeIndex owner,
                                                   sql::Query spec) {
  if (spec.window.use_windows) {
    return Status::InvalidArgument(
        "one-time queries take a snapshot; window clauses do not apply");
  }
  auto compiled = InputQuery::Create(next_query_id_, owner, Now(),
                                     std::move(spec), catalog_,
                                     /*one_time=*/true);
  if (!compiled.ok()) return compiled.status();
  const uint64_t id = next_query_id_++;
  queries_.emplace(id, *compiled);
  IndexResidual(owner, Residual(*compiled));
  return id;
}

StatusOr<uint64_t> RJoinEngine::SubmitQuerySql(dht::NodeIndex owner,
                                               std::string_view sql_text) {
  auto parsed = sql::Parser::Parse(sql_text);
  if (!parsed.ok()) return parsed.status();
  return SubmitQuery(owner, std::move(*parsed));
}

StatusOr<TupleRef> RJoinEngine::PublishTuple(
    dht::NodeIndex publisher, const std::string& relation,
    const std::vector<sql::Value>& values) {
  const sql::Schema* schema = catalog_->Find(relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation " + relation);
  }
  if (schema->arity() != values.size()) {
    return Status::InvalidArgument("tuple arity mismatch for " + relation);
  }
  // One flat pooled record per published tuple; the 2k indexed copies below
  // share it through 4-byte handles.
  TupleRef t = TuplePool::Global().Make(relation, values, Now(),
                                        ++global_seq_, next_tuple_id_++);
  if (config_.keep_history) history_.push_back(t.Materialize());

  // Procedure 1: index the tuple under 2k keys — one attribute-level and
  // one value-level key per attribute — with one multiSend. Keys are
  // interned once here; every later layer carries the u32 id and routes on
  // the entry's cached ring identifier. MultiSendKeys coalesces the fan-out
  // by responsible node (one wire message per destination) and resolves
  // destinations through the publisher's route cache. The emission buffer
  // is a reused member: the transport drains it in place, keeping its
  // capacity.
  std::vector<std::pair<KeyId, MessageTask>>& batch = publish_batch_;
  batch.reserve(2 * schema->arity());
  // Under attribute-level replication ([18]), each tuple's attribute-level
  // copy goes to exactly one shard of the replica set.
  const uint32_t shard =
      config_.attr_replication > 1
          ? static_cast<uint32_t>(t->seq_no % config_.attr_replication)
          : 0;
  for (size_t i = 0; i < schema->arity(); ++i) {
    TuplePublish attr_msg;
    attr_msg.tuple = t;
    attr_msg.key = interner_->WithShard(
        interner_->InternAttribute(relation, schema->attributes()[i]), shard);
    attr_msg.publisher = publisher;
    const KeyId attr_key = attr_msg.key;
    batch.emplace_back(attr_key, MessageTask(std::move(attr_msg)));

    TuplePublish value_msg;
    value_msg.tuple = t;
    value_msg.key = interner_->InternValue(relation, schema->attributes()[i],
                                           values[i]);
    value_msg.publisher = publisher;
    const KeyId value_key = value_msg.key;
    batch.emplace_back(value_key, MessageTask(std::move(value_msg)));
  }
  transport_->MultiSendKeys(publisher, &batch);
  return t;
}

StatusOr<std::vector<TupleRef>> RJoinEngine::PublishBatch(
    dht::NodeIndex publisher, const std::string& relation,
    const std::vector<std::vector<sql::Value>>& rows) {
  const sql::Schema* schema = catalog_->Find(relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation " + relation);
  }
  // Validate up front: a bad row must not leave part of the batch published.
  for (const auto& row : rows) {
    if (schema->arity() != row.size()) {
      return Status::InvalidArgument("tuple arity mismatch for " + relation);
    }
  }

  const size_t k = schema->arity();
  const uint64_t now = Now();
  const uint32_t replication = std::max<uint32_t>(1, config_.attr_replication);

  // Attribute-level keys do not depend on the row, only on its shard, so
  // intern each (attribute, shard) pair once per batch instead of once per
  // tuple. Shards cycle with seq_no, exactly as sequential PublishTuple
  // calls would assign them.
  std::vector<std::vector<KeyId>> attr_targets(replication);
  auto shard_targets = [&](uint32_t shard) -> const std::vector<KeyId>& {
    auto& targets = attr_targets[shard];
    if (targets.empty()) {
      targets.reserve(k);
      for (size_t i = 0; i < k; ++i) {
        KeyId key = interner_->InternAttribute(relation,
                                               schema->attributes()[i]);
        if (replication > 1) key = interner_->WithShard(key, shard);
        targets.push_back(key);
      }
    }
    return targets;
  };

  std::vector<TupleRef> published;
  published.reserve(rows.size());
  std::vector<std::pair<KeyId, MessageTask>>& batch = publish_batch_;
  batch.reserve(2 * k);

  for (const auto& row : rows) {
    TupleRef t = TuplePool::Global().Make(relation, row, now, ++global_seq_,
                                          next_tuple_id_++);
    if (config_.keep_history) history_.push_back(t.Materialize());
    const uint32_t shard =
        replication > 1 ? static_cast<uint32_t>(t->seq_no % replication) : 0;
    const std::vector<KeyId>& targets = shard_targets(shard);
    for (size_t i = 0; i < k; ++i) {
      TuplePublish attr_msg;
      attr_msg.tuple = t;
      attr_msg.key = targets[i];
      attr_msg.publisher = publisher;
      batch.emplace_back(targets[i], MessageTask(std::move(attr_msg)));

      TuplePublish value_msg;
      value_msg.tuple = t;
      value_msg.key = interner_->InternValue(relation, schema->attributes()[i],
                                             row[i]);
      value_msg.publisher = publisher;
      const KeyId value_key = value_msg.key;
      batch.emplace_back(value_key, MessageTask(std::move(value_msg)));
    }
    // One MultiSendKeys per tuple: coalescing groups the 2k index messages
    // of a *single* publication, so a batch publish stays message-for-
    // message identical to the same rows published one PublishTuple at a
    // time (the equivalence engine_batch_test asserts).
    transport_->MultiSendKeys(publisher, &batch);
    published.push_back(std::move(t));
  }
  return published;
}

Status RJoinEngine::ObserveStreamHistoryBulk(
    const std::string& relation,
    const std::vector<std::vector<sql::Value>>& rows) {
  const sql::Schema* schema = catalog_->Find(relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation " + relation);
  }
  for (const auto& row : rows) {
    if (schema->arity() != row.size()) {
      return Status::InvalidArgument("tuple arity mismatch for " + relation);
    }
  }
  const uint64_t now = Now();
  // Attribute-level observations are row-independent: resolve the
  // responsible node once per attribute and record one arrival per row.
  for (size_t i = 0; i < schema->arity(); ++i) {
    const KeyId ak = interner_->InternAttribute(relation,
                                                schema->attributes()[i]);
    const dht::NodeIndex owner = network_->SuccessorOf(interner_->ring_id(ak));
    NodeState& st = state(owner);
    for (size_t r = 0; r < rows.size(); ++r) st.rates.Record(ak, now);
    if (config_.replication > 1) WriteThroughRateReplica(owner, ak, now);
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < schema->arity(); ++i) {
      const KeyId vk =
          interner_->InternValue(relation, schema->attributes()[i], row[i]);
      const dht::NodeIndex owner =
          network_->SuccessorOf(interner_->ring_id(vk));
      state(owner).rates.Record(vk, now);
      if (config_.replication > 1) WriteThroughRateReplica(owner, vk, now);
    }
  }
  return Status::Ok();
}

Status RJoinEngine::ObserveStreamHistory(
    const std::string& relation, const std::vector<sql::Value>& values) {
  const sql::Schema* schema = catalog_->Find(relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation " + relation);
  }
  if (schema->arity() != values.size()) {
    return Status::InvalidArgument("tuple arity mismatch for " + relation);
  }
  const uint64_t now = Now();
  for (size_t i = 0; i < schema->arity(); ++i) {
    const KeyId ak = interner_->InternAttribute(relation,
                                                schema->attributes()[i]);
    const dht::NodeIndex ao = network_->SuccessorOf(interner_->ring_id(ak));
    state(ao).rates.Record(ak, now);
    const KeyId vk =
        interner_->InternValue(relation, schema->attributes()[i], values[i]);
    const dht::NodeIndex vo = network_->SuccessorOf(interner_->ring_id(vk));
    state(vo).rates.Record(vk, now);
    if (config_.replication > 1) {
      WriteThroughRateReplica(ao, ak, now);
      WriteThroughRateReplica(vo, vk, now);
    }
  }
  return Status::Ok();
}

void RJoinEngine::HandleMessage(dht::NodeIndex self, MessageTask&& task) {
  switch (task.kind()) {
    case MessageKind::kTuplePublish:
      if (forwarding_armed_ &&
          MaybeForward(self, task.tuple_publish().key, &task)) {
        return;
      }
      OnNewTuple(self, task.tuple_publish());
      return;
    case MessageKind::kQueryIndex: {
      if (forwarding_armed_ &&
          MaybeForward(self, task.query_index().key, &task)) {
        return;
      }
      QueryIndex& m = task.query_index();
      OnEval(self, m.key, std::move(m.residual), m.piggyback);
      return;
    }
    case MessageKind::kRewrite: {
      if (forwarding_armed_ && MaybeForward(self, task.rewrite().key, &task)) {
        return;
      }
      Rewrite& m = task.rewrite();
      OnEval(self, m.key, std::move(m.residual), m.piggyback);
      return;
    }
    case MessageKind::kRicRequest:
      if (forwarding_armed_ &&
          MaybeForward(self, task.ric_request().key, &task)) {
        return;
      }
      OnRicRequest(self, task.ric_request());
      return;
    case MessageKind::kRicReply:
      OnRicReply(self, task.ric_reply());
      return;
    case MessageKind::kAnswerDeliver:
      OnAnswer(self, task.answer());
      return;
    case MessageKind::kControl:
      task.control().run();
      return;
    case MessageKind::kNodeJoin: {
      const NodeJoin& m = task.node_join();
      StageOrApplyChurn(ChurnOp{.kind = ChurnOp::Kind::kJoin,
                                .id = m.id,
                                .bootstrap = m.bootstrap});
      return;
    }
    case MessageKind::kNodeLeave:
      StageOrApplyChurn(ChurnOp{.kind = ChurnOp::Kind::kLeave,
                                .node = task.node_leave().node});
      return;
    case MessageKind::kNodeCrash: {
      const NodeCrash& m = task.node_crash();
      StageOrApplyChurn(ChurnOp{.kind = ChurnOp::Kind::kCrash,
                                .node = m.node,
                                .take_successors = m.take_successors});
      return;
    }
    case MessageKind::kStateHandoff:
      OnStateHandoff(self, task.state_handoff());
      return;
    case MessageKind::kReplicaUpdate:
      OnReplicaUpdate(self, task.replica_update());
      return;
    case MessageKind::kNone:
      break;
  }
  RJOIN_CHECK(false) << "undispatchable message kind "
                     << MessageKindName(task.kind());
}

bool RJoinEngine::MaybeForward(dht::NodeIndex self, KeyId key,
                               MessageTask* task) {
  const dht::NodeIndex owner =
      network_->SuccessorOf(interner_->ring_id(key));
  if (owner == self) return false;
  // Responsibility for `key` moved while this message was in flight (or the
  // sender used a stale cached address). The old owner knows the current
  // one — its successor chain is exact after the churn splice — so one
  // direct hop completes the delivery. Departed nodes drain their mail the
  // same way.
  const bool ric = task->kind() == MessageKind::kRicRequest;
  transport_->SendDirect(self, owner, std::move(*task), ric);
  AddChurnCounters(ChurnSinkCounters{.forwarded = 1});
  return true;
}

void RJoinEngine::PrefetchRic(dht::NodeIndex src, const IndexKey& key) {
  const KeyId id = interner_->Intern(key);
  transport_->SendKey(src, id, MessageTask(RicRequest{id, src}),
                      /*ric=*/true);
}

void RJoinEngine::OnRicRequest(dht::NodeIndex self, const RicRequest& msg) {
  if (stats::Tracer::On()) {
    stats::Tracer::Record(stats::TraceCategory::kRicRequest, 0, self,
                          msg.requester, msg.key, Now());
  }
  RicReply reply;
  const uint64_t now = Now();
  reply.entry = RicEntry{.key = msg.key,
                         .node = self,
                         .rate = ReadRate(self, msg.key, now),
                         .timestamp = now};
  transport_->SendDirect(self, msg.requester, MessageTask(std::move(reply)),
                         /*ric=*/true);
}

void RJoinEngine::OnRicReply(dht::NodeIndex self, const RicReply& msg) {
  if (stats::Tracer::On()) {
    stats::Tracer::Record(stats::TraceCategory::kRicReply, 0, self,
                          msg.entry.node, msg.entry.rate, Now());
  }
  state(self).ct.Merge(msg.entry);
}

// ------------------------------------------------------------- churn ----

Status RJoinEngine::ScheduleJoin(sim::SimTime when, const dht::NodeId& id,
                                 dht::NodeIndex bootstrap) {
  if (bootstrap >= states_.size()) {
    return Status::InvalidArgument("bootstrap node does not exist");
  }
  return ScheduleChurnEvent(when, bootstrap,
                            MessageTask(NodeJoin{id, bootstrap}));
}

Status RJoinEngine::ScheduleLeave(sim::SimTime when, dht::NodeIndex node) {
  // The leave announcement is staged wherever it lands; deliver it to the
  // departing node when it already exists, else to node 0 (a leave may be
  // scheduled ahead of the join that creates its target — validity is
  // checked at application time).
  const dht::NodeIndex dst = node < states_.size() ? node : 0;
  return ScheduleChurnEvent(when, dst, MessageTask(NodeLeave{node}));
}

Status RJoinEngine::ScheduleCrash(sim::SimTime when, dht::NodeIndex node,
                                  uint32_t take_successors) {
  // Same addressing rule as a leave: the kill notice travels in-band to the
  // victim when it exists (node 0 otherwise) and is validated when applied.
  const dht::NodeIndex dst = node < states_.size() ? node : 0;
  return ScheduleChurnEvent(when, dst,
                            MessageTask(NodeCrash{node, take_successors}));
}

Status RJoinEngine::ScheduleChurnEvent(sim::SimTime when, dht::NodeIndex dst,
                                       MessageTask task) {
  if (runtime_ != nullptr) {
    RJOIN_CHECK(runtime::ShardedRuntime::CurrentShard() < 0)
        << "churn is scheduled from the driver";
    EnvelopeRef env = runtime_->AcquireFor(dst);
    env->time = std::max<sim::SimTime>(when, runtime_->Now());
    env->src = dst;
    env->seq = runtime_->NextEmitSeq(dst);
    env->dst = dst;
    env->task = std::move(task);
    runtime_->ScheduleEnvelope(std::move(env));
    return Status::Ok();
  }
  EnvelopeRef env = simulator_->pool().Acquire();
  env->dst = dst;
  env->task = std::move(task);
  simulator_->Schedule(std::max<sim::SimTime>(when, simulator_->Now()),
                       std::move(env));
  return Status::Ok();
}

void RJoinEngine::StageOrApplyChurn(ChurnOp op) {
  const int shard =
      runtime_ != nullptr ? runtime::ShardedRuntime::CurrentShard() : -1;
  if (shard >= 0) {
    // Worker context: ring mutations are serial-phase work. Stage the
    // request keyed by this event's (time, src, seq); the driver applies
    // all staged ops at the next rendezvous in global EventKey order,
    // which is the same for any shard count.
    const runtime::EventKey key = runtime_->CurrentEventKey();
    sinks_[shard].churn_ops.emplace_back(key, std::move(op));
    // Cap the epoch: no shard may outrun the staged mutation. At this
    // instant no watermark can have passed key.time + lookahead (the
    // staging shard's published floor is still <= key.time), so the cap
    // holds for every shard — and the resulting rendezvous schedule is a
    // pure function of the event population, hence shard-count-invariant.
    runtime_->RequestRendezvousBy(
        sim::SaturatingAdd(key.time, runtime_->lookahead()));
    return;
  }
  // Serial simulator (or driver phase): nothing else is running, apply now.
  ApplyChurn(op);
}

void RJoinEngine::ApplyChurn(const ChurnOp& op) {
  switch (op.kind) {
    case ChurnOp::Kind::kJoin:
      ApplyJoin(op.id, op.bootstrap);
      return;
    case ChurnOp::Kind::kLeave:
      ApplyLeave(op.node);
      return;
    case ChurnOp::Kind::kCrash:
      ApplyCrash(op.node, op.take_successors);
      return;
  }
}

void RJoinEngine::ApplyJoin(const dht::NodeId& id, dht::NodeIndex bootstrap) {
  if (bootstrap >= network_->num_total() ||
      !network_->node(bootstrap).alive()) {
    ++churn_.ops_rejected;
    return;
  }
  auto joined = network_->JoinAndSplice(id, bootstrap);
  if (!joined.ok()) {
    ++churn_.ops_rejected;
    return;
  }
  GrowForNode(*joined);
  ++churn_.joins_applied;
  forwarding_armed_ = true;
  if (stats::Tracer::On()) {
    stats::Tracer::Record(stats::TraceCategory::kChurn, /*kind=*/1, *joined,
                          bootstrap, 0, Now());
  }
  // The joiner takes (pred, id] from its successor, the old owner.
  const dht::NodeIndex pred = network_->node(*joined).predecessor();
  const dht::NodeIndex old_owner = network_->node(*joined).successor();
  if (old_owner != *joined) {
    EmitHandoff(old_owner, *joined,
                dht::KeyRange{network_->node(pred).id(), id});
  }
  // The joiner displaced a slot in its predecessors' successor sets: their
  // mirrors must reach the new replica targets.
  if (config_.replication > 1) RefreshReplicasAround(id);
}

void RJoinEngine::ApplyLeave(dht::NodeIndex node) {
  if (node >= network_->num_total() || !network_->node(node).alive()) {
    ++churn_.ops_rejected;
    return;
  }
  auto range = network_->LeaveNode(node);
  if (!range.ok()) {
    ++churn_.ops_rejected;
    return;
  }
  ++churn_.leaves_applied;
  forwarding_armed_ = true;
  if (stats::Tracer::On()) {
    stats::Tracer::Record(stats::TraceCategory::kChurn, /*kind=*/0, node,
                          network_->SuccessorOf(range->high), 0, Now());
  }
  // The departed node's range belongs to its successor now (the first
  // alive node past the range's high end).
  const dht::NodeIndex new_owner = network_->SuccessorOf(range->high);
  EmitHandoff(node, new_owner, *range);
  // The leaver's predecessors lost a replica target; re-aim their mirrors.
  if (config_.replication > 1) RefreshReplicasAround(range->high);
}

void RJoinEngine::ApplyCrash(dht::NodeIndex node, uint32_t take_successors) {
  if (node >= network_->num_total() || !network_->node(node).alive()) {
    ++churn_.ops_rejected;
    return;
  }
  // Victim set: the node plus its next take_successors alive successors —
  // resolved before anything dies, so "correlated" means ring-adjacent at
  // crash time.
  std::vector<dht::NodeIndex> victims{node};
  if (take_successors > 0) {
    std::vector<dht::NodeIndex> adjacent;
    network_->SuccessorsOf(node, take_successors, &adjacent);
    victims.insert(victims.end(), adjacent.begin(), adjacent.end());
  }

  // Phase 1: every victim dies before any recovery starts. A correlated
  // kill of a key's whole replica set must genuinely lose the data — a
  // victim never gets to promote slices of a fellow victim.
  std::vector<dht::KeyRange> orphaned;
  for (dht::NodeIndex v : victims) {
    auto range = network_->CrashNode(v);
    if (!range.ok()) {
      ++churn_.ops_rejected;  // e.g. the last alive node refuses to crash
      continue;
    }
    DropAllState(v);
    crashed_[v] = 1;
    ++churn_.crashes_applied;
    forwarding_armed_ = true;
    if (stats::Tracer::On()) {
      stats::Tracer::Record(stats::TraceCategory::kChurn, /*kind=*/2, v,
                            network_->SuccessorOf(range->high), 0, Now());
    }
    orphaned.push_back(*range);
  }

  // Phase 2: per orphaned range, the surviving successor promotes whatever
  // replica slices it holds. Stamped with the crash time, so the recovery
  // metric spans detection (the generation bump at this barrier) through
  // install.
  const uint64_t crash_time = Now();
  for (const dht::KeyRange& range : orphaned) {
    PromoteReplicas(network_->SuccessorOf(range.high), range, crash_time);
  }
  if (config_.replication > 1) {
    for (const dht::KeyRange& range : orphaned) {
      RefreshReplicasAround(range.high);
    }
  }
}

void RJoinEngine::DropAllState(dht::NodeIndex node) {
  NodeState& st = state(node);
  st.queries.ForEach([&](KeyId key, BucketList& bucket) {
    while (bucket.head != kNil) {
      StoredQuery& sq = st.query_pool.at(bucket.head).value;
      if (sq.residual.origin()->spec().distinct) {
        st.distinct_fingerprints.Erase(StoredFingerprint(key, sq.residual));
      }
      Metrics().RemoveStore(node);
      BucketUnlink(st.query_pool, bucket, kNil, bucket.head);
    }
  });
  st.tuples.ForEach([&](KeyId, TupleBucket& bucket) {
    for (uint32_t i = 0; i < bucket.size; ++i) Metrics().RemoveStore(node);
    TupleBucketClear(st.tuple_chunks, bucket);
  });
  st.altt.ForEach([&](KeyId, BucketList& dq) {
    while (dq.head != kNil) BucketUnlink(st.altt_pool, dq, kNil, dq.head);
  });
  st.replicas.reset();
}

void RJoinEngine::PromoteReplicas(dht::NodeIndex owner,
                                  const dht::KeyRange& range,
                                  uint64_t crash_time) {
  if (config_.replication <= 1) return;
  NodeState& st = state(owner);
  if (st.replicas == nullptr) return;  // Never mirrored to: nothing survives.
  const std::vector<KeyId> keys = KeysInRangeSorted(
      st.replicas->slices, *interner_, range.low, range.high);
  if (keys.empty()) return;

  auto batch = std::make_unique<HandoffBatch>();
  batch->from = owner;
  batch->range_low = range.low;
  batch->range_high = range.high;
  batch->emitted_at = crash_time;
  batch->promoted = true;
  for (KeyId key : keys) {
    ReplicaKeySlice* slice = st.replicas->slices.Find(key);
    for (Residual& r : slice->queries) {
      batch->queries.push_back(HandoffQuery{key, StoredQuery{std::move(r), {}}});
    }
    for (TupleRef& t : slice->tuples) {
      batch->tuples.push_back(HandoffTuple{key, std::move(t)});
    }
    for (AlttEntry& e : slice->altt) {
      batch->altt.push_back(HandoffAltt{key, std::move(e)});
    }
    if (slice->rate_current > 0 || slice->rate_previous > 0) {
      batch->rates.push_back(RateSlice{key, slice->rate_epoch,
                                       slice->rate_current,
                                       slice->rate_previous});
    }
    // Extract, don't copy: a second orphaned range overlapping this key
    // (correlated kills) must not promote the slice twice, and an older
    // in-flight mirror from the dead owner must not resurrect it.
    slice->Clear();
    slice->version = crash_time;
  }
  if (batch->empty()) return;
  ++replication_.promotions_emitted;
  // The new owner IS the survivor: the promotion is a self-addressed
  // handoff, so the install passes (probe pre-existing state, re-arm ALTT
  // expiries, merge rates, re-forward keys that moved again) are exactly
  // the graceful-leave code path.
  transport_->SendDirect(owner, owner,
                         MessageTask(StateHandoff{std::move(batch)}));
}

void RJoinEngine::RefreshReplicasAround(const dht::NodeId& position) {
  // Nodes whose successor window shifted: the owner at `position` and its
  // replication-1 alive ring predecessors. (The owner's own keys may also
  // have changed hands — its mirrors refresh as installs arrive; this
  // barrier-time pass re-aims the stale topology.)
  dht::NodeIndex at = network_->SuccessorOf(position);
  const size_t hops =
      std::min<size_t>(config_.replication - 1, network_->num_alive() - 1);
  MirrorAllKeys(at);
  for (size_t i = 0; i < hops; ++i) {
    at = network_->node(at).predecessor();
    MirrorAllKeys(at);
  }
}

void RJoinEngine::MirrorAllKeys(dht::NodeIndex node) {
  NodeState& st = state(node);
  stats::AllocScope plane(stats::AllocPlane::kOther);
  std::vector<KeyId> keys;
  st.queries.ForEach([&](KeyId key, const BucketList&) { keys.push_back(key); });
  st.tuples.ForEach([&](KeyId key, const TupleBucket&) { keys.push_back(key); });
  st.altt.ForEach([&](KeyId key, const BucketList&) { keys.push_back(key); });
  st.rates.AppendTrackedKeys(&keys);
  std::erase_if(keys, [&](KeyId k) {
    return network_->SuccessorOf(interner_->ring_id(k)) != node;
  });
  SortKeysByRingId(&keys, *interner_);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  if (keys.empty()) return;
  for (KeyId key : keys) MirrorKey(node, key);
}

void RJoinEngine::GrowForNode(dht::NodeIndex index) {
  RJOIN_CHECK(index == states_.size())
      << "joins must append node indices sequentially";
  states_.push_back(std::make_unique<NodeState>(config_.ric_epoch));
  crashed_.push_back(0);
  metrics_->Resize(states_.size());
  if (runtime_ != nullptr) {
    runtime_->GrowNodes(states_.size());
    frozen_rates_.emplace_back();
    planner_seq_.push_back(0);
  }
}

void RJoinEngine::EmitHandoff(dht::NodeIndex from, dht::NodeIndex to,
                              const dht::KeyRange& range) {
  NodeState& st = state(from);
  auto batch = std::make_unique<HandoffBatch>();
  batch->from = from;
  batch->range_low = range.low;
  batch->range_high = range.high;
  batch->emitted_at = Now();

  // Every structure emits its keys in ring order (KeysInRangeSorted), not
  // KeyIdMap iteration order — the batch layout is a pure function of the
  // key set, so runs with different intern histories still hand off
  // identically.
  for (KeyId key :
       KeysInRangeSorted(st.queries, *interner_, range.low, range.high)) {
    BucketList* bucket = st.queries.Find(key);
    while (bucket->head != kNil) {
      StoredQuery& sq = st.query_pool.at(bucket->head).value;
      if (sq.residual.origin()->spec().distinct) {
        st.distinct_fingerprints.Erase(StoredFingerprint(key, sq.residual));
      }
      Metrics().RemoveStore(from);
      batch->queries.push_back(HandoffQuery{key, std::move(sq)});
      BucketUnlink(st.query_pool, *bucket, kNil, bucket->head);
    }
  }

  for (KeyId key :
       KeysInRangeSorted(st.tuples, *interner_, range.low, range.high)) {
    TupleBucket* bucket = st.tuples.Find(key);
    TupleBucketForEach(st.tuple_chunks, *bucket, [&](TupleRef& t) {
      Metrics().RemoveStore(from);
      batch->tuples.push_back(HandoffTuple{key, std::move(t)});
    });
    TupleBucketClear(st.tuple_chunks, *bucket);
  }

  const uint64_t now = Now();
  for (KeyId key :
       KeysInRangeSorted(st.altt, *interner_, range.low, range.high)) {
    BucketList* dq = st.altt.Find(key);
    while (dq->head != kNil) {
      AlttEntry& e = st.altt_pool.at(dq->head).value;
      // Already-expired entries are dropped here instead of moved — the
      // old owner's amortized expiry would have discarded them anyway.
      if (e.expires >= now) {
        batch->altt.push_back(HandoffAltt{key, std::move(e)});
      }
      BucketUnlink(st.altt_pool, *dq, kNil, dq->head);
    }
  }

  if (config_.migrate_ric_on_churn) {
    std::vector<KeyId> rate_keys;
    st.rates.AppendTrackedKeys(&rate_keys);
    std::erase_if(rate_keys, [&](KeyId k) {
      return !range.Contains(interner_->ring_id(k));
    });
    SortKeysByRingId(&rate_keys, *interner_);
    for (KeyId key : rate_keys) {
      RateSlice s{key, 0, 0, 0};
      if (st.rates.ExtractKey(key, &s.epoch, &s.current, &s.previous)) {
        batch->rates.push_back(s);
      }
    }
  }

  if (batch->empty()) return;  // Nothing to move: no message.
  churn_.handoff_messages += 1;
  churn_.handoff_queries += batch->queries.size();
  churn_.handoff_tuples += batch->tuples.size();
  churn_.handoff_altt += batch->altt.size();
  churn_.handoff_rates += batch->rates.size();
  churn_.handoff_bytes += batch->ApproxBytes();
  transport_->SendDirect(from, to, MessageTask(StateHandoff{std::move(batch)}));
}

void RJoinEngine::InstallQuery(dht::NodeIndex self, KeyId key,
                               StoredQuery&& sq) {
  NodeState& st = state(self);
  Metrics().AddQpl(self);
  const bool distinct = sq.residual.origin()->spec().distinct;
  uint64_t fp = 0;
  if (distinct) {
    fp = StoredFingerprint(key, sq.residual);
    // An identical rewritten query was already indexed at the new owner
    // after the responsibility change: set semantics keep one copy.
    if (st.distinct_fingerprints.Contains(fp)) return;
  }

  // Probe the destination's pre-handoff state, exactly as OnEval probes on
  // arrival: tuples that landed here after the ring change but before this
  // batch are precisely the ones the moved query has never seen. (Moved
  // tuples of the same batch install after the queries, so they are not
  // visible here — those pairs were already evaluated at the old owner.)
  ProbeStoredState(self, key, sq);

  if (IsExpired(sq.residual)) return;  // Window closed while in flight.
  if (distinct) st.distinct_fingerprints.Insert(fp);
  AppendStoredQuery(st, st.queries[key], std::move(sq));
  Metrics().AddStore(self);
}

void RJoinEngine::OnStateHandoff(dht::NodeIndex self, StateHandoff& msg) {
  RJOIN_CHECK(msg.batch != nullptr);
  HandoffBatch& b = *msg.batch;
  NodeState& st = state(self);
  const uint64_t now = Now();

  // Chained churn: responsibility for part of the batch may have moved
  // again while it was in flight. Split those slices toward their current
  // owners (std::map: deterministic emission order) and install the rest.
  std::map<dht::NodeIndex, std::unique_ptr<HandoffBatch>> reforward;
  auto owner_of = [&](KeyId key) {
    return network_->SuccessorOf(interner_->ring_id(key));
  };
  auto slice_for = [&](dht::NodeIndex owner) -> HandoffBatch& {
    std::unique_ptr<HandoffBatch>& slot = reforward[owner];
    if (slot == nullptr) {
      slot = std::make_unique<HandoffBatch>();
      slot->from = self;
      slot->range_low = b.range_low;
      slot->range_high = b.range_high;
      slot->emitted_at = b.emitted_at;  // recovery measures the full trip
      slot->promoted = b.promoted;  // a split promotion is still a promotion
    }
    return *slot;
  };

  // Keys whose slice at `self` this batch changes (installed records or
  // merged rates): each is re-mirrored below, so replicas catch up with the
  // post-handoff owner — and a promoted slice that was itself stale gets
  // overwritten at the next mutation of the key.
  std::vector<KeyId>& touched = InstalledKeyBuffer();
  uint64_t installed_records = 0;

  // Snapshot pre-handoff stored-query counts for every key that receives
  // tuples or ALTT entries: the moved-tuple trigger walk below must visit
  // pre-existing queries only (moved queries append behind them in pass A,
  // and every moved-vs-moved pair was already evaluated at the old owner).
  // Counts are offset by one so 0 still means "key not snapshotted".
  KeyIdMap<uint32_t> pre_counts;
  auto pre_count_of = [&](KeyId key) -> uint32_t* {
    uint32_t* n = pre_counts.Find(key);
    return n != nullptr && *n > 0 ? n : nullptr;
  };
  auto snapshot_key = [&](KeyId key) {
    uint32_t& slot = pre_counts[key];
    if (slot > 0) return;
    uint32_t n = 0;
    if (const BucketList* bucket = st.queries.Find(key)) {
      for (uint32_t cur = bucket->head; cur != kNil;
           cur = st.query_pool.at(cur).next) {
        ++n;
      }
    }
    slot = n + 1;
  };
  for (const HandoffTuple& ht : b.tuples) {
    if (owner_of(ht.key) == self) snapshot_key(ht.key);
  }
  for (const HandoffAltt& ha : b.altt) {
    if (owner_of(ha.key) == self) snapshot_key(ha.key);
  }

  // The limited trigger walk shared by moved tuples and moved ALTT
  // entries: visit at most *budget pre-existing stored queries; drops
  // shrink the budget so later moved tuples stay inside the pre-existing
  // prefix.
  auto trigger_preexisting = [&](KeyId key, const TupleRef& tuple) {
    uint32_t* budget = pre_count_of(key);
    BucketList* bucket = st.queries.Find(key);
    if (budget == nullptr || bucket == nullptr) return;
    uint32_t remaining = *budget - 1;  // counts are stored offset by one
    uint32_t prev = kNil;
    uint32_t cur = bucket->head;
    while (cur != kNil && remaining > 0) {
      --remaining;
      StoredQuery& sq = st.query_pool.at(cur).value;
      const uint32_t next = st.query_pool.at(cur).next;
      if (WindowClosedByTuple(sq.residual, tuple)) {
        // A dropped pre-existing entry shrinks the prefix later moved
        // tuples may visit (the offset keeps the slot >= 1).
        DropStoredQuery(self, key, *bucket, prev, cur);
        --(*budget);
        cur = next;
        continue;
      }
      TryTrigger(self, sq, key, tuple);
      prev = cur;
      cur = next;
    }
  };

  // Pass A: stored queries (probe pre-handoff tuples/ALTT, then store).
  for (HandoffQuery& hq : b.queries) {
    const dht::NodeIndex owner = owner_of(hq.key);
    if (owner != self) {
      slice_for(owner).queries.push_back(std::move(hq));
      continue;
    }
    touched.push_back(hq.key);
    ++installed_records;
    InstallQuery(self, hq.key, std::move(hq.sq));
  }

  // Pass B: value-level tuples (trigger pre-existing queries, then store).
  for (HandoffTuple& ht : b.tuples) {
    const dht::NodeIndex owner = owner_of(ht.key);
    if (owner != self) {
      slice_for(owner).tuples.push_back(std::move(ht));
      continue;
    }
    Metrics().AddQpl(self);
    touched.push_back(ht.key);
    ++installed_records;
    trigger_preexisting(ht.key, ht.tuple);
    {
      stats::AllocScope plane(stats::AllocPlane::kTuple);
      TupleBucketAppend(st.tuple_chunks, st.tuples[ht.key],
                        std::move(ht.tuple));
    }
    Metrics().AddStore(self);
  }

  // Pass C: ALTT entries — same walk, then append with the ORIGINAL
  // absolute expiry, so the Section 4 Delta bound spans the handoff.
  for (HandoffAltt& ha : b.altt) {
    const dht::NodeIndex owner = owner_of(ha.key);
    if (owner != self) {
      slice_for(owner).altt.push_back(std::move(ha));
      continue;
    }
    if (ha.entry.expires < now) continue;  // Delta elapsed in flight.
    Metrics().AddQpl(self);
    touched.push_back(ha.key);
    ++installed_records;
    trigger_preexisting(ha.key, ha.entry.tuple);
    stats::AllocScope plane(stats::AllocPlane::kTuple);
    BucketList& dq = st.altt[ha.key];
    const uint32_t idx = BucketAppend(st.altt_pool, dq);
    st.altt_pool.at(idx).value = std::move(ha.entry);
  }

  // Rates merge (the migrate half of the RIC policy; see docs/churn.md).
  for (const RateSlice& rs : b.rates) {
    const dht::NodeIndex owner = owner_of(rs.key);
    if (owner != self) {
      slice_for(owner).rates.push_back(rs);
      continue;
    }
    touched.push_back(rs.key);
    if (b.promoted) ++installed_records;
    st.rates.MergeSlice(rs.key, rs.epoch, rs.current, rs.previous);
  }

  ChurnSinkCounters counters;
  const uint64_t trip_ticks = now >= b.emitted_at ? now - b.emitted_at : 0;
  if (b.promoted) {
    // Promotions ride the handoff plane but count on their own ledger:
    // their latency is the crash-recovery metric, not handoff recovery.
    ReplicaSinkCounters promo;
    promo.promotions_installed = 1;
    promo.promoted_records = installed_records;
    AddReplicaCounters(promo);
    RecordPromotionTicks(trip_ticks);
  } else {
    counters.installed = 1;
    counters.recovery_ticks = trip_ticks;
  }
  for (auto& [owner, slice] : reforward) {
    ++counters.reforwarded;
    transport_->SendDirect(self, owner,
                           MessageTask(StateHandoff{std::move(slice)}));
  }
  AddChurnCounters(counters);

  // Replication: the moved (or promoted) slices now live here — overwrite
  // the stale copies at this node's successors so a later crash promotes
  // current data, not the pre-churn snapshot.
  if (config_.replication > 1 && !touched.empty()) {
    SortKeysByRingId(&touched, *interner_);
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    for (KeyId key : touched) MirrorKey(self, key);
    touched.clear();
  }
}

void RJoinEngine::AddChurnCounters(const ChurnSinkCounters& delta) {
  const int shard =
      runtime_ != nullptr ? runtime::ShardedRuntime::CurrentShard() : -1;
  if (shard >= 0) {
    ChurnSinkCounters& c = sinks_[shard].churn;
    c.installed += delta.installed;
    c.reforwarded += delta.reforwarded;
    c.recovery_ticks += delta.recovery_ticks;
    c.forwarded += delta.forwarded;
    return;
  }
  churn_.handoffs_installed += delta.installed;
  churn_.handoffs_reforwarded += delta.reforwarded;
  churn_.handoff_recovery_ticks += delta.recovery_ticks;
  churn_.forwarded_messages += delta.forwarded;
}

void RJoinEngine::AddReplicaCounters(const ReplicaSinkCounters& delta) {
  const int shard =
      runtime_ != nullptr ? runtime::ShardedRuntime::CurrentShard() : -1;
  if (shard >= 0) {
    ReplicaSinkCounters& c = sinks_[shard].replica;
    c.updates += delta.updates;
    c.keys += delta.keys;
    c.bytes += delta.bytes;
    c.promotions_installed += delta.promotions_installed;
    c.promoted_records += delta.promoted_records;
    c.answers_lost += delta.answers_lost;
    return;
  }
  replication_.replica_updates += delta.updates;
  replication_.replica_keys += delta.keys;
  replication_.replica_bytes += delta.bytes;
  replication_.promotions_installed += delta.promotions_installed;
  replication_.promoted_records += delta.promoted_records;
  replication_.answers_lost += delta.answers_lost;
}

void RJoinEngine::RecordPromotionTicks(uint64_t ticks) {
  const int shard =
      runtime_ != nullptr ? runtime::ShardedRuntime::CurrentShard() : -1;
  if (shard >= 0) {
    sinks_[shard].promotion_ticks.emplace_back(runtime_->CurrentEventKey(),
                                               ticks);
    return;
  }
  promotion_recovery_ticks_.push_back(ticks);
}

void RJoinEngine::MirrorKey(dht::NodeIndex self, KeyId key) {
  std::vector<dht::NodeIndex>& succs = ReplicaTargetBuffer();
  network_->SuccessorsOf(self, config_.replication - 1, &succs);
  if (succs.empty()) return;

  // Mirror traffic lives on its own allocation plane: the zero-alloc
  // budget of the publish/rewrite hot paths is accounted with replication
  // off, where this function is never reached.
  stats::AllocScope plane(stats::AllocPlane::kOther);
  NodeState& st = state(self);
  const uint64_t now = Now();
  ReplicaSinkCounters counters;
  for (dht::NodeIndex dst : succs) {
    // One REPLACE snapshot per successor. Batches are move-only (pooled
    // records inside), so each target gets its own copy of the slice.
    auto batch = std::make_unique<HandoffBatch>();
    batch->from = self;
    batch->emitted_at = now;
    batch->replica_keys.push_back(key);
    if (const BucketList* bucket = st.queries.Find(key)) {
      for (uint32_t cur = bucket->head; cur != kNil;
           cur = st.query_pool.at(cur).next) {
        const StoredQuery& sq = st.query_pool.at(cur).value;
        // Bare residual copies: the ProjectionSet is not mirrored (see
        // core/replication.h for why promotion stays answer-correct).
        batch->queries.push_back(
            HandoffQuery{key, StoredQuery{sq.residual, {}}});
      }
    }
    if (TupleBucket* bucket = st.tuples.Find(key)) {
      TupleBucketForEach(st.tuple_chunks, *bucket, [&](TupleRef& t) {
        batch->tuples.push_back(HandoffTuple{key, t});
      });
    }
    if (const BucketList* dq = st.altt.Find(key)) {
      for (uint32_t cur = dq->head; cur != kNil;
           cur = st.altt_pool.at(cur).next) {
        const AlttEntry& e = st.altt_pool.at(cur).value;
        if (e.expires < now) continue;  // Owner would expire it anyway.
        batch->altt.push_back(HandoffAltt{key, AlttEntry{e.tuple, e.expires}});
      }
    }
    RateSlice rs{key, 0, 0, 0};
    if (st.rates.PeekKey(key, &rs.epoch, &rs.current, &rs.previous)) {
      batch->rates.push_back(rs);
    }
    ++counters.updates;
    ++counters.keys;
    counters.bytes += batch->ApproxBytes();
    transport_->SendDirect(self, dst,
                           MessageTask(ReplicaUpdate{std::move(batch)}));
  }
  AddReplicaCounters(counters);
}

void RJoinEngine::OnReplicaUpdate(dht::NodeIndex self, ReplicaUpdate& msg) {
  RJOIN_CHECK(msg.batch != nullptr);
  if (!crashed_.empty() && crashed_[self]) return;  // Mail to the dead.
  HandoffBatch& b = *msg.batch;
  stats::AllocScope plane(stats::AllocPlane::kOther);
  NodeState& st = state(self);
  if (st.replicas == nullptr) st.replicas = std::make_unique<ReplicaStore>();

  // REPLACE the listed slices, version-guarded: a refresh emitted after a
  // churn barrier must not be overwritten by a slower pre-churn mirror.
  // A mirror for a key this node *owns* is stale by construction (mirrors
  // target the owner's successors, never the owner): ownership moved here
  // after the mirror was emitted — e.g. a crashed owner's last update
  // landing after the promotion — and installing it would resurrect
  // records the promotion already extracted.
  for (KeyId key : b.replica_keys) {
    if (network_->SuccessorOf(interner_->ring_id(key)) == self) continue;
    ReplicaKeySlice& slice = st.replicas->slices[key];
    if (slice.version > b.emitted_at) continue;
    slice.Clear();
    slice.version = b.emitted_at;
  }
  auto slice_of = [&](KeyId key) -> ReplicaKeySlice* {
    if (network_->SuccessorOf(interner_->ring_id(key)) == self) return nullptr;
    ReplicaKeySlice* s = st.replicas->slices.Find(key);
    return s != nullptr && s->version == b.emitted_at ? s : nullptr;
  };
  for (HandoffQuery& hq : b.queries) {
    if (ReplicaKeySlice* s = slice_of(hq.key)) {
      s->queries.push_back(std::move(hq.sq.residual));
    }
  }
  for (HandoffTuple& ht : b.tuples) {
    if (ReplicaKeySlice* s = slice_of(ht.key)) {
      s->tuples.push_back(std::move(ht.tuple));
    }
  }
  for (HandoffAltt& ha : b.altt) {
    if (ReplicaKeySlice* s = slice_of(ha.key)) {
      s->altt.push_back(std::move(ha.entry));
    }
  }
  for (const RateSlice& rs : b.rates) {
    if (ReplicaKeySlice* s = slice_of(rs.key)) {
      s->rate_epoch = rs.epoch;
      s->rate_current = rs.current;
      s->rate_previous = rs.previous;
    }
  }
}

void RJoinEngine::WriteThroughRateReplica(dht::NodeIndex owner, KeyId key,
                                          uint64_t now) {
  RateSlice rs{key, 0, 0, 0};
  if (!state(owner).rates.PeekKey(key, &rs.epoch, &rs.current, &rs.previous)) {
    return;
  }
  std::vector<dht::NodeIndex>& succs = ReplicaTargetBuffer();
  network_->SuccessorsOf(owner, config_.replication - 1, &succs);
  for (dht::NodeIndex dst : succs) {
    NodeState& st = state(dst);
    if (st.replicas == nullptr) st.replicas = std::make_unique<ReplicaStore>();
    ReplicaKeySlice& slice = st.replicas->slices[key];
    slice.rate_epoch = rs.epoch;
    slice.rate_current = rs.current;
    slice.rate_previous = rs.previous;
    slice.version = std::max(slice.version, now);
  }
}

bool RJoinEngine::IsExpired(const Residual& r) const {
  if (r.IsInputQuery()) return false;  // Continuous queries never expire.
  const sql::WindowSpec& w = r.origin()->spec().window;
  if (!w.use_windows || w.size == 0) return false;
  const uint64_t next_pos = w.unit == sql::WindowSpec::Unit::kTime
                                ? Now()
                                : global_seq_ + 1;
  if (w.kind == sql::WindowSpec::Kind::kSliding) {
    return next_pos > r.window_min() &&
           next_pos - r.window_min() + 1 > w.size;
  }
  return next_pos / w.size > r.window_min() / w.size;  // Tumbling epoch.
}

bool RJoinEngine::WindowClosedByTuple(const Residual& r,
                                      const TupleRef& t) const {
  if (r.IsInputQuery()) return false;
  const sql::WindowSpec& w = r.origin()->spec().window;
  if (!w.use_windows || w.size == 0) return false;
  const uint64_t pos =
      w.unit == sql::WindowSpec::Unit::kTime ? t->pub_time : t->seq_no;
  if (pos <= r.window_min()) return false;  // Older tuple: window still open.
  if (w.kind == sql::WindowSpec::Kind::kSliding) {
    return pos - r.window_min() + 1 > w.size;
  }
  return pos / w.size > r.window_min() / w.size;
}

uint64_t RJoinEngine::StoredFingerprint(KeyId key, const Residual& r) {
  uint64_t h = r.ContentFingerprint64();
  h ^= static_cast<uint64_t>(key) + 1;
  h *= kFnvPrime;
  return h;
}

void RJoinEngine::DropStoredQuery(dht::NodeIndex self, KeyId key,
                                  BucketList& bucket, uint32_t prev_idx,
                                  uint32_t idx) {
  NodeState& st = state(self);
  StoredQuery& sq = st.query_pool.at(idx).value;
  if (sq.residual.origin()->spec().distinct) {
    st.distinct_fingerprints.Erase(StoredFingerprint(key, sq.residual));
  }
  Metrics().RemoveStore(self);
  BucketUnlink(st.query_pool, bucket, prev_idx, idx);
}

StoredQuery& RJoinEngine::AppendStoredQuery(NodeState& st, BucketList& bucket,
                                            StoredQuery&& sq) {
  stats::AllocScope plane(stats::AllocPlane::kResidual);
  const uint32_t idx = BucketAppend(st.query_pool, bucket);
  auto& node = st.query_pool.at(idx);
  node.value = std::move(sq);
  return node.value;
}

void RJoinEngine::ProbeStoredState(dht::NodeIndex self, KeyId key,
                                   StoredQuery& sq) {
  NodeState& st = state(self);
  if (interner_->level(key) == Level::kValue) {
    if (const TupleBucket* bucket = st.tuples.Find(key)) {
      // Probing only emits async messages; the chunk chain is stable, so
      // the kernel reads it in place, one span per chunk.
      std::vector<TupleSpan>& spans = SpanListBuffer();
      for (uint32_t cur = bucket->head; cur != kNil;
           cur = st.tuple_chunks.at(cur).next) {
        const TupleChunk& chunk = st.tuple_chunks.at(cur).value;
        spans.push_back(TupleSpan{chunk.refs, chunk.count});
      }
      ProbeTupleSpans(self, key, sq, spans.data(),
                      static_cast<uint32_t>(spans.size()));
      spans.clear();
    }
  } else if (config_.enable_altt) {
    if (const BucketList* dq = st.altt.Find(key)) {
      // Gather the non-expired chain into a reusable contiguous span, then
      // run the same batched kernel the value bucket uses.
      std::vector<TupleRef>& span = AlttSpanBuffer();
      const uint64_t now = Now();
      for (uint32_t cur = dq->head; cur != kNil;
           cur = st.altt_pool.at(cur).next) {
        const AlttEntry& e = st.altt_pool.at(cur).value;
        if (e.expires < now) continue;
        span.push_back(e.tuple);
      }
      const TupleSpan whole{span.data(), static_cast<uint32_t>(span.size())};
      ProbeTupleSpans(self, key, sq, &whole, 1);
      span.clear();  // Drop the refs: the span must not pin records.
    }
  }
}

void RJoinEngine::ProbeTupleSpans(dht::NodeIndex self, KeyId key,
                                  StoredQuery& sq, const TupleSpan* spans,
                                  uint32_t num_spans) {
  while (num_spans > 0 && spans[0].count == 0) {
    ++spans;
    --num_spans;
  }
  if (num_spans == 0) return;
  Residual& r = sq.residual;
  const InputQuery& q = *r.origin();
  // Every tuple under one index key belongs to one relation, so the FROM
  // position and the temporal bounds are loop invariants of the spans.
  const int rel = q.RelIndexOf(spans[0].data[0]->relation);
  if (rel < 0 || r.IsBound(rel)) return;
  const bool one_time = q.one_time();
  const uint64_t ins_time = q.ins_time();

  // Hoist the predicate program: original selections on `rel` plus join
  // predicates whose other side is bound, each reduced to one (column,
  // value-id) equality. Phase 1 below is then a tight u32-compare loop.
  struct Pred {
    int attr;
    ValueId vid;
  };
  static thread_local std::vector<Pred> preds;
  preds.clear();
  for (const auto& sel : q.selections()) {
    if (sel.rel == rel) preds.push_back(Pred{sel.attr, sel.value_id});
  }
  for (const auto& j : q.joins()) {
    if (j.left_rel == rel && r.IsBound(j.right_rel)) {
      preds.push_back(Pred{j.left_attr,
                           r.BoundValueId(j.right_rel, j.right_attr)});
    } else if (j.right_rel == rel && r.IsBound(j.left_rel)) {
      preds.push_back(Pred{j.right_attr,
                           r.BoundValueId(j.left_rel, j.left_attr)});
    }
  }

  // Phase 1: pure evaluation over the spans — temporal check, window
  // admission, predicate program — collecting matched refs. No sends, no
  // mutation, no allocation (the match buffer is reused).
  std::vector<const TupleRef*>& matches = MatchBuffer();
  for (uint32_t s = 0; s < num_spans; ++s) {
    const TupleRef* tuples = spans[s].data;
    const uint32_t count = spans[s].count;
    for (uint32_t i = 0; i < count; ++i) {
      const TuplePool::Rec& rec = tuples[i].rec();
      if (one_time) {
        // One-time semantics: a snapshot over what existed at submission.
        if (rec.pub_time > ins_time) continue;
      } else {
        // Temporal condition of Definition 1 / Procedure 2.
        if (rec.pub_time < ins_time) continue;
      }
      if (!r.WindowAdmits(rel, tuples[i])) continue;
      const ValueId* cols = rec.columns();
      bool ok = true;
      for (const Pred& p : preds) {
        if (cols[p.attr] != p.vid) {
          ok = false;
          break;
        }
      }
      if (ok) matches.push_back(&tuples[i]);
    }
  }

  // Phase 2: DISTINCT rule + bind + forward for the matches. Sends are
  // async (never re-entering this node's state), so the spans stay stable.
  const bool check_distinct =
      q.spec().distinct && interner_->level(key) == Level::kValue;
  for (const TupleRef* match : matches) {
    const TupleRef& t = *match;
    if (check_distinct &&
        !sq.seen_projections.Insert(ProjectionFingerprint(q, rel, t))) {
      continue;
    }
    CompleteOrForward(self, r.Bind(rel, t), t->pub_time);
  }
}

void RJoinEngine::TryTrigger(dht::NodeIndex self, StoredQuery& sq,
                             KeyId key, const TupleRef& t) {
  Residual& r = sq.residual;
  const int rel = r.origin()->RelIndexOf(t->relation);
  if (rel < 0 || r.IsBound(rel)) return;
  if (r.origin()->one_time()) {
    // One-time semantics: a snapshot over what existed at submission.
    if (t->pub_time > r.origin()->ins_time()) return;
  } else {
    // Temporal condition of Definition 1 / Procedure 2: pubT(t) >= insT(q).
    if (t->pub_time < r.origin()->ins_time()) return;
  }
  if (!r.WindowAdmits(rel, t)) return;
  if (!r.Matches(rel, t)) return;

  // DISTINCT rule of Section 4: a new tuple triggers this stored query only
  // if its projection over the referenced attributes is new. Projections
  // are 64-bit fingerprints over interned value ids (see ProjectionSet) —
  // no rendering, no allocation per trigger.
  if (r.origin()->spec().distinct &&
      interner_->level(key) == Level::kValue) {
    if (!sq.seen_projections.Insert(
            ProjectionFingerprint(*r.origin(), rel, t))) {
      return;
    }
  }

  CompleteOrForward(self, r.Bind(rel, t), t->pub_time);
}

void RJoinEngine::CompleteOrForward(dht::NodeIndex self, Residual next,
                                    uint64_t pub_time) {
  if (next.IsComplete()) {
    // The answer row ships as a flat array of interned value ids — the
    // message is POD; the owner materializes values at the sink.
    AnswerDeliver msg;
    msg.query_id = next.origin()->query_id();
    msg.completed_at = Now();
    msg.pub_time = pub_time;
    msg.row_len = static_cast<uint16_t>(next.ExtractAnswerIds(msg.row));
    transport_->SendDirect(self, next.origin()->owner(),
                           MessageTask(std::move(msg)));
    return;
  }
  IndexResidual(self, std::move(next));
}

void RJoinEngine::OnNewTuple(dht::NodeIndex self, TuplePublish& msg) {
  Metrics().AddQpl(self);
  NodeState& st = state(self);
  st.rates.Record(msg.key, Now());

  if (BucketList* bucket = st.queries.Find(msg.key)) {
    // Walk the intrusive list in arrival order; drops unlink in place.
    uint32_t prev = kNil;
    uint32_t cur = bucket->head;
    while (cur != kNil) {
      StoredQuery& sq = st.query_pool.at(cur).value;
      // Section 5: a triggering tuple that falls beyond the residual's
      // window proves the window closed — the residual is deleted.
      if (WindowClosedByTuple(sq.residual, msg.tuple)) {
        const uint32_t next = st.query_pool.at(cur).next;
        DropStoredQuery(self, msg.key, *bucket, prev, cur);
        cur = next;
        continue;
      }
      TryTrigger(self, sq, msg.key, msg.tuple);
      prev = cur;
      cur = st.query_pool.at(cur).next;
    }
  }

  if (interner_->level(msg.key) == Level::kValue) {
    // Procedure 2: value-level tuples are stored for future rewritten
    // queries. Storing a TupleRef is one u32 handle copy plus a refcount;
    // only bucket growth allocates (charged to the tuple plane).
    {
      stats::AllocScope plane(stats::AllocPlane::kTuple);
      TupleBucketAppend(st.tuple_chunks, st.tuples[msg.key], msg.tuple);
    }
    Metrics().AddStore(self);
    RecordKeyLoad(msg.key);
  } else if (config_.enable_altt) {
    // Section 4 fix: keep attribute-level tuples for Delta so that delayed
    // input queries are not starved (Example 1).
    stats::AllocScope plane(stats::AllocPlane::kTuple);
    BucketList& dq = st.altt[msg.key];
    const uint64_t now = Now();
    const uint64_t expires = altt_delta_ > UINT64_MAX - now
                                 ? UINT64_MAX
                                 : now + altt_delta_;  // Saturating.
    const uint32_t idx = BucketAppend(st.altt_pool, dq);
    st.altt_pool.at(idx).value = AlttEntry{msg.tuple, expires};
    Metrics().AddAlttStore(self);
    // Amortized expiry: entries append in arrival order, so stale ones
    // cluster at the head.
    while (dq.head != kNil &&
           st.altt_pool.at(dq.head).value.expires < now) {
      BucketUnlink(st.altt_pool, dq, kNil, dq.head);
    }
  }

  // Replication: every tuple delivery mutates the key's slice (at least
  // the rate bucket) — push the refreshed snapshot to the successors.
  if (config_.replication > 1) MirrorKey(self, msg.key);
}

void RJoinEngine::OnEval(dht::NodeIndex self, KeyId key, Residual&& residual,
                         const RicVec& piggyback) {
  Metrics().AddQpl(self);
  NodeState& st = state(self);
  for (const RicEntry& e : piggyback) st.ct.Merge(e);

  // DISTINCT set semantics: identical rewritten queries are handled once.
  const bool distinct = residual.origin()->spec().distinct;
  uint64_t fp = 0;
  if (distinct) {
    fp = StoredFingerprint(key, residual);
    if (st.distinct_fingerprints.Contains(fp)) return;
  }

  // Procedure 3: probe already-present tuples first — stored tuples can be
  // older than the residual, so this must happen even if the residual's
  // window admits no *future* tuples anymore.
  StoredQuery sq{std::move(residual), {}};
  ProbeStoredState(self, key, sq);

  // One-time queries never wait for future tuples: probe-and-forget.
  if (sq.residual.origin()->one_time()) return;

  // Store for future tuples unless the window has already closed
  // (Section 5's status reduction).
  if (IsExpired(sq.residual)) return;
  if (distinct) {
    stats::AllocScope plane(stats::AllocPlane::kResidual);
    st.distinct_fingerprints.Insert(fp);
  }
  AppendStoredQuery(st, st.queries[key], std::move(sq));
  Metrics().AddStore(self);
  RecordKeyLoad(key);

  // Replication: the slice gained a stored residual. (Probe-and-forget
  // paths above change nothing durable, so they skip the mirror.)
  if (config_.replication > 1) MirrorKey(self, key);
}

void RJoinEngine::OnAnswer(dht::NodeIndex self, AnswerDeliver& msg) {
  if (!crashed_.empty() && crashed_[self]) {
    // The query's owner crashed: nobody is listening. This is the answer
    // loss the replication bench measures — graceful leavers, by contrast,
    // keep collecting their answers (they left the overlay, not the app).
    ReplicaSinkCounters lost;
    lost.answers_lost = 1;
    AddReplicaCounters(lost);
    return;
  }
  // End-to-end answer latency in virtual time: publication of the tuple
  // that completed the residual -> delivery of the answer at Owner(q).
  const uint64_t latency = Now() >= msg.pub_time ? Now() - msg.pub_time : 0;
  stats::Tracer::RecordAnswerLatency(latency);
  if (stats::Tracer::On()) {
    stats::Tracer::Record(stats::TraceCategory::kAnswer, 0, self,
                          static_cast<uint32_t>(msg.query_id), latency, Now());
  }
  const bool distinct = [&] {
    auto it = queries_.find(msg.query_id);
    return it != queries_.end() && it->second->spec().distinct;
  }();
  const int shard =
      runtime_ != nullptr ? runtime::ShardedRuntime::CurrentShard() : -1;
  if (shard >= 0) {
    // Worker path: stage into this shard's sink. A query's answers always
    // arrive at its owner, so all DISTINCT state of one query lives on one
    // shard and dedup is exact.
    ShardSink& sink = sinks_[shard];
    if (distinct) {
      if (!sink.distinct_rows[msg.query_id].Insert(AnswerRowFingerprint(msg))) {
        ++sink.distinct_suppressed;
        return;
      }
    }
    sink.answers.emplace_back(
        runtime_->CurrentEventKey(),
        Answer{msg.query_id, MaterializeRow(msg), Now()});
    Metrics().AddAnswer();
    return;
  }
  if (distinct) {
    // Owner-side final duplicate suppression for DISTINCT queries: a local
    // computation at the querying node, no network cost. Rows dedup on a
    // 64-bit fingerprint over interned value ids — no rendering.
    if (!distinct_rows_[msg.query_id].Insert(AnswerRowFingerprint(msg))) {
      ++distinct_suppressed_;
      return;
    }
  }
  answers_.push_back(Answer{msg.query_id, MaterializeRow(msg), Now()});
  Metrics().AddAnswer();
}

void RJoinEngine::GatherRic(dht::NodeIndex src,
                            const std::vector<KeyId>& candidates,
                            std::vector<uint64_t>* rates,
                            std::vector<dht::NodeIndex>* nodes) {
  const uint64_t now = Now();
  NodeState& st = state(src);
  rates->resize(candidates.size());
  nodes->resize(candidates.size());

  std::vector<size_t> unknown;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const KeyId key = candidates[i];
    const RicEntry* cached =
        config_.reuse_ric_info ? st.ct.Find(key) : nullptr;
    if (cached != nullptr && now - cached->timestamp <= config_.ct_validity) {
      // Fresh cache hit (Section 7): no messages at all.
      (*rates)[i] = cached->rate;
      (*nodes)[i] = cached->node;
    } else if (cached != nullptr) {
      // Stale but the responsible node's address is known: refresh with a
      // 2-message direct exchange instead of an O(log N) route.
      const dht::NodeIndex cand =
          network_->SuccessorOf(interner_->ring_id(key));
      if (config_.charge_ric_messages) {
        transport_->ChargeTraffic(src, 1, /*ric=*/true);
        transport_->ChargeTraffic(cand, 1, /*ric=*/true);
      }
      const uint64_t rate = ReadRate(cand, key, now);
      (*rates)[i] = rate;
      (*nodes)[i] = cand;
      st.ct.Merge(
          RicEntry{.key = key, .node = cand, .rate = rate, .timestamp = now});
    } else {
      unknown.push_back(i);
    }
  }

  if (unknown.empty()) return;

  // Section 6's chained request: the message hops through the unknown
  // candidates (each leg an O(log N) route, piggy-backing answers), and the
  // last candidate returns everything to src directly — k*O(log N) + 1
  // messages; the later index message is the "+1" more.
  dht::NodeIndex prev = src;
  for (size_t i : unknown) {
    const dht::NodeId& ring = interner_->ring_id(candidates[i]);
    const dht::NodeIndex cand = network_->SuccessorOf(ring);
    if (config_.charge_ric_messages) {
      transport_->ChargeRoute(prev, ring, /*ric=*/true);
    }
    const uint64_t rate = ReadRate(cand, candidates[i], now);
    (*rates)[i] = rate;
    (*nodes)[i] = cand;
    st.ct.Merge(RicEntry{
        .key = candidates[i], .node = cand, .rate = rate, .timestamp = now});
    prev = cand;
  }
  if (config_.charge_ric_messages) {
    transport_->ChargeTraffic(prev, 1, /*ric=*/true);  // Direct reply to src.
  }
}

void RJoinEngine::IndexResidual(dht::NodeIndex src, Residual residual) {
  // Candidate enumeration fills a reusable thread-local buffer — the
  // per-rewrite hot path does not allocate here once warm.
  std::vector<KeyId>& candidates = CandidateBuffer();
  IndexingCandidates(residual, config_.rewrite_levels, *interner_,
                     &candidates);
  RJOIN_CHECK(!candidates.empty())
      << "residual of query " << residual.origin()->query_id()
      << " has no indexing candidates";

  size_t chosen = 0;
  bool address_known = false;
  dht::NodeIndex chosen_node = dht::kInvalidNode;

  switch (config_.policy) {
    case PlannerPolicy::kFirstInClause:
      chosen = 0;
      break;
    case PlannerPolicy::kRandom:
      if (runtime_ != nullptr) {
        // Derived per-decision RNG: a pure function of (seed, deciding
        // node, decision index), so draws are identical for any shard
        // count and any thread interleaving.
        chosen = static_cast<size_t>(
            Rng(MixSeed(config_.seed, src, ++planner_seq_[src]))
                .NextBounded(candidates.size()));
      } else {
        chosen = static_cast<size_t>(rng_.NextBounded(candidates.size()));
      }
      break;
    case PlannerPolicy::kWorst: {
      // Adversarial oracle: reads true rates without RIC traffic.
      uint64_t worst_rate = 0;
      const uint64_t now = Now();
      for (size_t i = 0; i < candidates.size(); ++i) {
        const dht::NodeIndex cand =
            network_->SuccessorOf(interner_->ring_id(candidates[i]));
        const uint64_t rate = ReadRate(cand, candidates[i], now);
        if (rate > worst_rate) {
          worst_rate = rate;
          chosen = i;
        }
      }
      // Prefer attribute-level keys on ties: they see every tuple of the
      // relation-attribute pair, the worst possible placement.
      if (worst_rate == 0) {
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (interner_->level(candidates[i]) == Level::kAttribute) {
            chosen = i;
            break;
          }
        }
      }
      break;
    }
    case PlannerPolicy::kRic: {
      std::vector<uint64_t>& rates = RicRateBuffer();
      std::vector<dht::NodeIndex>& nodes = RicNodeBuffer();
      GatherRic(src, candidates, &rates, &nodes);
      uint64_t best = UINT64_MAX;
      for (size_t i = 0; i < candidates.size(); ++i) {
        // Strictly lower rate wins; on ties prefer value-level keys (finer
        // grain, better load distribution), then clause order.
        const bool better =
            rates[i] < best ||
            (rates[i] == best &&
             interner_->level(candidates[chosen]) == Level::kAttribute &&
             interner_->level(candidates[i]) == Level::kValue);
        if (better) {
          best = rates[i];
          chosen = i;
        }
      }
      chosen_node = nodes[chosen];
      address_known = chosen_node != dht::kInvalidNode;
      break;
    }
  }

  const KeyId key = candidates[chosen];

  // Section 7: pack the RIC info we hold for this residual's candidate keys
  // so the next node can avoid re-asking (typically only the one new
  // implied triple needs a lookup there).
  NodeState& st = state(src);
  RicVec piggyback;
  if (config_.reuse_ric_info) {
    for (KeyId c : candidates) {
      if (const RicEntry* e = st.ct.Find(c)) {
        if (!piggyback.TryPush(*e)) break;  // Inline cap: first kCap win.
      }
    }
  }

  // Attribute-level placements are replicated across the shard positions of
  // [18]; each tuple reaches exactly one shard, so replicas split the load
  // without duplicating answers. Value-level placements are single-copy.
  // Input queries ship as kQueryIndex (Procedure 2), rewritten residuals as
  // kRewrite (Procedure 3) — same wire shape, separable traffic.
  const bool is_input = residual.IsInputQuery();
  if (!is_input) {
    // Rewrite-chain depth: how many relations the shipped residual has
    // bound so far (hop i of the k-1 hop chain of Procedure 3).
    stats::Tracer::RecordRewriteDepth(residual.num_bound());
    if (stats::Tracer::On()) {
      stats::Tracer::Record(stats::TraceCategory::kRewrite, 0, src, key,
                            residual.num_bound(), Now());
    }
  }
  const uint32_t copies = (interner_->level(key) == Level::kAttribute)
                              ? config_.attr_replication
                              : 1;
  for (uint32_t s = 0; s < copies; ++s) {
    const KeyId copy_key = copies > 1 ? interner_->WithShard(key, s) : key;
    Residual copy_residual =
        (s + 1 == copies) ? std::move(residual) : residual;
    MessageTask task =
        is_input ? MessageTask(QueryIndex{std::move(copy_residual), copy_key,
                                          piggyback})
                 : MessageTask(
                       Rewrite{std::move(copy_residual), copy_key, piggyback});
    if (address_known && copies == 1) {
      // The RIC exchange told us the responsible node's address: one hop.
      transport_->SendDirect(src, chosen_node, std::move(task));
    } else {
      transport_->SendKey(src, copy_key, std::move(task));
    }
  }
}

void RJoinEngine::SweepWindows() {
  const bool drop_tuples = config_.gc_stored_tuples &&
                           num_unwindowed_queries_ == 0 &&
                           num_windowed_queries_ > 0 && max_window_span_ > 0;
  for (dht::NodeIndex n = 0; n < states_.size(); ++n) {
    NodeState& st = *states_[n];
    st.queries.ForEach([&](KeyId key, BucketList& bucket) {
      uint32_t prev = kNil;
      uint32_t cur = bucket.head;
      while (cur != kNil) {
        const uint32_t next = st.query_pool.at(cur).next;
        if (IsExpired(st.query_pool.at(cur).value.residual)) {
          DropStoredQuery(n, key, bucket, prev, cur);
        } else {
          prev = cur;
        }
        cur = next;
      }
    });
    if (!drop_tuples) continue;
    // A stored tuple older than the largest window can never combine with
    // future tuples for any live (all-windowed) query.
    st.tuples.ForEach([&](KeyId, TupleBucket& bucket) {
      auto expired = [&](const TupleRef& t) {
        // Conservative: use both clocks; drop only if out of range for the
        // larger of the two interpretations.
        const uint64_t now_time = Now();
        const uint64_t now_seq = global_seq_ + 1;
        const bool time_out = now_time > t->pub_time &&
                              now_time - t->pub_time + 1 > max_window_span_;
        const bool seq_out =
            now_seq > t->seq_no && now_seq - t->seq_no + 1 > max_window_span_;
        return time_out && seq_out;
      };
      // Rebuild compactly through a reusable scratch: survivors move out
      // (no refcount traffic), the chunks recycle through the pool's
      // freelist, and the survivors move back in — so every chunk stays
      // full except the tail, the invariant the probe's span walk assumes.
      static thread_local std::vector<TupleRef> survivors;
      survivors.clear();
      TupleBucketForEach(st.tuple_chunks, bucket, [&](TupleRef& t) {
        if (expired(t)) {
          Metrics().RemoveStore(n);
        } else {
          survivors.push_back(std::move(t));
        }
      });
      if (survivors.size() == bucket.size) {
        // Nothing expired: put the moved refs back in place instead of
        // reshuffling chunks.
        size_t i = 0;
        TupleBucketForEach(st.tuple_chunks, bucket,
                           [&](TupleRef& t) { t = std::move(survivors[i++]); });
      } else {
        TupleBucketClear(st.tuple_chunks, bucket);
        for (TupleRef& t : survivors) {
          TupleBucketAppend(st.tuple_chunks, bucket, std::move(t));
        }
      }
      survivors.clear();
    });
  }
  if (config_.replication <= 1) return;
  // Replica slices age by the same rules, locally (no messages): a mirror
  // is a point-in-time snapshot, and without this pass a promotion after a
  // sweep would resurrect records the owner already dropped. (Queries are
  // additionally re-filtered at install, so this is hygiene + memory.)
  const uint64_t now = Now();
  for (auto& stp : states_) {
    NodeState& st = *stp;
    if (st.replicas == nullptr) continue;
    st.replicas->slices.ForEach([&](KeyId, ReplicaKeySlice& slice) {
      std::erase_if(slice.queries,
                    [&](const Residual& r) { return IsExpired(r); });
      if (drop_tuples) {
        std::erase_if(slice.tuples, [&](const TupleRef& t) {
          const uint64_t now_seq = global_seq_ + 1;
          const bool time_out = now > t->pub_time &&
                                now - t->pub_time + 1 > max_window_span_;
          const bool seq_out = now_seq > t->seq_no &&
                               now_seq - t->seq_no + 1 > max_window_span_;
          return time_out && seq_out;
        });
      }
      std::erase_if(slice.altt,
                    [&](const AlttEntry& e) { return e.expires < now; });
    });
  }
}

std::vector<Answer> RJoinEngine::AnswersFor(uint64_t query_id) const {
  std::vector<Answer> out;
  for (const Answer& a : answers_) {
    if (a.query_id == query_id) out.push_back(a);
  }
  return out;
}

size_t RJoinEngine::CountStoredQueries() const {
  size_t n = 0;
  for (const auto& st : states_) {
    n += st->query_pool.live();
  }
  return n;
}

size_t RJoinEngine::CountStoredTuples() const {
  size_t n = 0;
  for (const auto& st : states_) {
    st->tuples.ForEach(
        [&](KeyId, const TupleBucket& bucket) { n += bucket.size; });
  }
  return n;
}

std::vector<dht::KeyLoad> RJoinEngine::KeyLoadProfile() const {
  std::vector<dht::KeyLoad> out;
  out.reserve(key_load_.size());
  key_load_.ForEach([&](KeyId key, const uint64_t& weight) {
    out.push_back({interner_->ring_id(key), weight});
  });
  return out;
}

InputQueryPtr RJoinEngine::FindQuery(uint64_t query_id) const {
  auto it = queries_.find(query_id);
  return it == queries_.end() ? nullptr : it->second;
}

void RJoinEngine::RecordKeyLoad(KeyId key) {
  const int shard =
      runtime_ != nullptr ? runtime::ShardedRuntime::CurrentShard() : -1;
  if (shard >= 0) {
    ++sinks_[shard].key_load[key];
    return;
  }
  ++key_load_[key];
}

}  // namespace rjoin::core
