#ifndef RJOIN_CORE_ENGINE_H_
#define RJOIN_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/handoff.h"
#include "core/interner.h"
#include "core/key.h"
#include "core/key_map.h"
#include "core/messages.h"
#include "core/node_state.h"
#include "core/planner.h"
#include "core/residual.h"
#include "dht/chord_network.h"
#include "dht/load_balancer.h"
#include "dht/transport.h"
#include "runtime/sharded_runtime.h"
#include "sim/simulator.h"
#include "sql/parser.h"
#include "sql/schema.h"
#include "stats/metrics.h"
#include "util/random.h"
#include "util/status.h"

namespace rjoin::core {

/// Tunables of the RJoin engine. Defaults follow the paper's algorithm
/// (RIC-driven planning, ALTT enabled).
struct EngineConfig {
  /// Where-to-index strategy (Section 6 / Fig. 2 baselines).
  PlannerPolicy policy = PlannerPolicy::kRic;

  /// Indexing levels available to rewritten queries. kValuePreferred
  /// (Section 3's default) preserves completeness with a finite ALTT Delta;
  /// kIncludeAttribute (the Section 6 generalization) requires
  /// altt_delta = kInfiniteDelta for completeness.
  RewriteIndexLevels rewrite_levels = RewriteIndexLevels::kValuePreferred;

  /// Charge the network messages of RIC requests (Sections 6-7). Disable to
  /// model an oracle with free statistics (used in ablation benches).
  bool charge_ric_messages = true;

  /// Section 7's traffic minimization: cache RIC info in candidate tables
  /// and piggy-back it on rewritten queries. Disabling this pays the full
  /// k*O(log N) chain for every indexing decision (ablation baseline).
  bool reuse_ric_info = true;

  /// Keep attribute-level tuples for Delta ticks so delayed input queries
  /// still meet them (the eventual-completeness fix of Section 4).
  bool enable_altt = true;

  /// Delta for the ALTT; 0 derives it from the estimated network size and
  /// the latency bound (Section 4's overestimate); kInfiniteDelta keeps
  /// attribute-level tuples forever (the paper's "extreme solution", also
  /// usable for one-time queries).
  uint64_t altt_delta = 0;

  static constexpr uint64_t kInfiniteDelta = UINT64_MAX;

  /// Observation-epoch length for tuple-rate tracking (RIC, Section 6).
  uint64_t ric_epoch = 256;

  /// How long a cached candidate-table entry counts as fresh (Section 7);
  /// stale entries are refreshed with a 2-message direct exchange.
  uint64_t ct_validity = 4096;

  /// Record every published tuple (for oracle-based tests).
  bool keep_history = false;

  /// During SweepWindows(), also drop stored value-level tuples that can no
  /// longer fall into any window (only when every live query is windowed).
  bool gc_stored_tuples = true;

  /// Replication factor for attribute-level indexing, the load-spreading
  /// scheme of [18] referenced in Section 3: queries indexed at attribute
  /// level are stored at `attr_replication` shard positions and each
  /// tuple's attribute-level copy is delivered to exactly one shard, so hot
  /// attribute-level nodes split their processing load r ways without
  /// duplicating answers. 1 disables replication.
  uint32_t attr_replication = 1;

  /// Successor-list replication factor r (docs/failures.md): every
  /// state-mutating delivery at a key's owner mirrors the key's full slice
  /// to the next r-1 ring successors as a ReplicaUpdate, and a silent crash
  /// promotes the surviving slices at the successor. 1 disables the whole
  /// subsystem (no replica stores, no mirror traffic — the single
  /// `replication > 1` branch is the entire cost when off).
  uint32_t replication = 1;

  /// RIC migration policy on churn (docs/churn.md): true moves the old
  /// owner's RateTracker buckets along with the key range (observations
  /// keep aging as if they had never moved); false resets them — the new
  /// owner starts counting from zero and RIC decisions degrade for up to
  /// two epochs. Candidate-table entries never migrate under either
  /// policy: they are cached hints that expire and self-heal through the
  /// post-churn forwarding rule.
  bool migrate_ric_on_churn = true;

  /// Seed for the engine's internal randomness (kRandom policy).
  uint64_t seed = 42;
};

/// An answer delivered to the owner of a continuous query.
struct Answer {
  uint64_t query_id = 0;
  std::vector<sql::Value> row;
  uint64_t delivered_at = 0;
};

/// The RJoin engine: implements the recursive-join algorithm of the paper on
/// top of a Chord overlay. One engine instance hosts the application-layer
/// state of *all* simulated nodes and implements the message handlers of
/// Procedures 1-3.
///
/// Typical use:
///   auto net = dht::ChordNetwork::Create(1000);
///   ... build Transport, Simulator, MetricsRegistry ...
///   RJoinEngine engine(cfg, &catalog, net.get(), &transport, &sim, &metrics);
///   engine.SubmitQuerySql(owner, "SELECT R.B, S.B FROM R,S,P WHERE ...");
///   engine.PublishTuple(publisher, "R", {Value::Int(3), Value::Int(5)});
///   sim.Run();
///   for (const Answer& a : engine.answers()) ...
class RJoinEngine : public dht::MessageHandler, public runtime::BarrierHook {
 public:
  RJoinEngine(EngineConfig config, const sql::Catalog* catalog,
              dht::ChordNetwork* network, dht::Transport* transport,
              sim::Simulator* simulator, stats::MetricsRegistry* metrics);

  RJoinEngine(const RJoinEngine&) = delete;
  RJoinEngine& operator=(const RJoinEngine&) = delete;

  /// Switches the engine onto the sharded parallel runtime (the transport
  /// must have the matching ShardRouter attached). Per-shard answer/key-load
  /// staging replaces the serial globals, and worker threads answer remote
  /// RIC rate lookups from frozen per-epoch snapshots instead of live
  /// cross-shard state (driver-phase lookups stay live). Registers this
  /// engine as a barrier hook on `rt`. Call once, before any traffic.
  void AttachRuntime(runtime::ShardedRuntime* rt);

  /// runtime::BarrierHook: serial rendezvous work — publish answers staged
  /// by the previous epoch (in deterministic EventKey order), fold
  /// per-shard key-load deltas, apply staged churn, and refresh the frozen
  /// rate snapshots when the rendezvous cursor crosses into a new RIC
  /// epoch.
  void OnBarrier(sim::SimTime round_start) override;

  /// runtime::BarrierHook: frozen rate snapshots go stale at RIC-epoch
  /// boundaries, so the watermark scheduler must rendezvous no later than
  /// the next one. Churn staged mid-epoch caps the horizon separately
  /// (RequestRendezvousBy in StageOrApplyChurn).
  sim::SimTime NextRendezvous(sim::SimTime after) override;

  /// Submits a continuous query from `owner`. The query is validated,
  /// compiled, and indexed in the network (attribute level). Returns the
  /// query id used to collect answers.
  StatusOr<uint64_t> SubmitQuery(dht::NodeIndex owner, sql::Query spec);

  /// Convenience: parse then submit.
  StatusOr<uint64_t> SubmitQuerySql(dht::NodeIndex owner,
                                    std::string_view sql_text);

  /// Submits a one-time (snapshot) query: evaluated over the tuples already
  /// published at submission time, never stored for future triggers.
  /// Completeness requires the ALTT to retain history — Section 4's "Delta
  /// can be infinity" mode (EngineConfig::kInfiniteDelta); with a finite
  /// Delta only the last Delta's worth of attribute-level history is seen.
  StatusOr<uint64_t> SubmitOneTimeQuery(dht::NodeIndex owner,
                                        sql::Query spec);

  /// Publishes a tuple from `publisher` (Procedure 1: 2k messages). Returns
  /// the published tuple (with pub_time/seq_no assigned) as a pooled-record
  /// handle; all 2k indexed copies share that one flat record. `values` is
  /// borrowed (interned into the flat plane), so callers can reuse one row
  /// buffer across publishes.
  StatusOr<TupleRef> PublishTuple(dht::NodeIndex publisher,
                                  const std::string& relation,
                                  const std::vector<sql::Value>& values);

  /// Batched Procedure 1: publishes every row of `rows` as one tuple of
  /// `relation`, in order, producing exactly the messages, routing, and
  /// metrics of the equivalent PublishTuple sequence while amortizing the
  /// schema lookup, the attribute-level key construction + hashing (those
  /// keys repeat across rows of one relation; only the value-level keys are
  /// per-row), and the MultiSend dispatch across the batch. The whole batch
  /// is validated before anything is sent, so a bad row means no tuple of
  /// the batch is published. `rows` is borrowed, never consumed — callers
  /// (the workload generator) reuse one row-buffer across batches.
  StatusOr<std::vector<TupleRef>> PublishBatch(
      dht::NodeIndex publisher, const std::string& relation,
      const std::vector<std::vector<sql::Value>>& rows);

  /// Records the rate observations a tuple would generate, without
  /// publishing it: each responsible node counts one arrival under the
  /// tuple's 2k keys. Models the stream history a long-running network has
  /// already seen — Section 6's RIC decisions "observe what has happened
  /// during the last time window", which requires a last window to exist.
  Status ObserveStreamHistory(const std::string& relation,
                              const std::vector<sql::Value>& values);

  /// Bulk ObserveStreamHistory over rows of one relation: the relation's
  /// attribute-level keys and their responsible nodes are resolved once for
  /// the whole batch instead of once per row. Validates every row first;
  /// a bad row records nothing.
  Status ObserveStreamHistoryBulk(
      const std::string& relation,
      const std::vector<std::vector<sql::Value>>& rows);

  /// dht::MessageHandler: the dispatch switch of the typed message plane —
  /// TuplePublish / QueryIndex / Rewrite / RicRequest / RicReply /
  /// AnswerDeliver / Control, one handler per MessageKind.
  void HandleMessage(dht::NodeIndex self, core::MessageTask&& task) override;

  /// Asynchronously warms `src`'s candidate table for `key`: a RicRequest
  /// routes to the responsible node, whose RicReply (one direct hop back)
  /// merges the observed rate into src's CT — Section 7's direct exchange
  /// as explicit wire messages. A later IndexResidual whose candidate set
  /// contains `key` then hits the cache instead of paying the chained
  /// O(log N) RIC route. Both messages are charged as RIC traffic.
  void PrefetchRic(dht::NodeIndex src, const IndexKey& key);

  /// True when `node`'s candidate table holds an entry for `key_text` at
  /// either level (tests of the RicRequest/RicReply plumbing; the same
  /// text can be interned at both levels — see KeyInterner::Intern).
  bool HasCachedRic(dht::NodeIndex node, const std::string& key_text) const {
    for (Level level : {Level::kAttribute, Level::kValue}) {
      const KeyId key = interner_->Find(key_text, level);
      if (key != kInvalidKeyId && states_[node]->ct.Find(key) != nullptr) {
        return true;
      }
    }
    return false;
  }

  /// Garbage collection: drops expired window residuals everywhere, and —
  /// when every live query is windowed and gc_stored_tuples is set — stored
  /// tuples that cannot participate in any future window (Section 5's
  /// status-reduction mechanism).
  void SweepWindows();

  // ------------------------------------------------------ live churn ----

  /// Schedules an in-band ring join at virtual time `when` (clamped to
  /// now): a NodeJoin message is delivered to `bootstrap`, staged by the
  /// executing shard, and applied at the next round barrier (immediately
  /// on the serial path). The join splices the ring, grows the node space,
  /// and hands the moved key range (pred, id] from the joiner's successor
  /// to the joiner as a StateHandoff. Driver-phase only.
  Status ScheduleJoin(sim::SimTime when, const dht::NodeId& id,
                      dht::NodeIndex bootstrap);

  /// Schedules an in-band graceful leave of `node` at virtual time `when`.
  /// The orphaned range (pred, node] is handed to the successor; messages
  /// still in flight toward the departed node are drained by one-hop
  /// forwarding to the current owner. Driver-phase only.
  Status ScheduleLeave(sim::SimTime when, dht::NodeIndex node);

  /// Schedules a silent failure of `node` at virtual time `when`: no
  /// goodbye, no handoff — the node's state dies with it, and the successor
  /// promotes whatever replica slices it holds (docs/failures.md).
  /// `take_successors` additionally crashes that many adjacent ring
  /// successors in the same instant (correlated failure: with
  /// take_successors >= replication - 1 every replica of some keys is gone
  /// and answer loss is expected). Driver-phase only.
  Status ScheduleCrash(sim::SimTime when, dht::NodeIndex node,
                       uint32_t take_successors = 0);

  /// Counters of the churn subsystem. Emission-side counters advance at
  /// barriers (driver), install/forward counters merge from the shard
  /// sinks at barriers — all shard-count-invariant.
  struct ChurnStats {
    uint64_t joins_applied = 0;
    uint64_t leaves_applied = 0;
    uint64_t crashes_applied = 0;  ///< silent failures (no handoff emitted)
    uint64_t ops_rejected = 0;  ///< join/leave/crash requests that were invalid
    uint64_t handoff_messages = 0;  ///< StateHandoff envelopes emitted
    uint64_t handoff_queries = 0;
    uint64_t handoff_tuples = 0;
    uint64_t handoff_altt = 0;
    uint64_t handoff_rates = 0;
    uint64_t handoff_bytes = 0;  ///< approximate payload bytes moved
    uint64_t handoffs_installed = 0;
    uint64_t handoffs_reforwarded = 0;  ///< batches split toward newer owners
    uint64_t handoff_recovery_ticks = 0;  ///< sum(install time - emit time)
    uint64_t forwarded_messages = 0;  ///< mis-addressed payloads re-sent
  };
  const ChurnStats& churn_stats() const { return churn_; }

  /// Counters of the successor-list replication subsystem
  /// (docs/failures.md). Mirror-side counters advance on workers and merge
  /// from the shard sinks at barriers; crash/promotion counters advance at
  /// barriers (driver) — all shard-count-invariant.
  struct ReplicationStats {
    uint64_t replica_updates = 0;  ///< ReplicaUpdate envelopes sent
    uint64_t replica_keys = 0;     ///< key slices shipped across all updates
    uint64_t replica_bytes = 0;    ///< approximate mirrored payload bytes
    uint64_t promotions_emitted = 0;    ///< promoted batches sent at crashes
    uint64_t promotions_installed = 0;  ///< promoted batches installed
    uint64_t promoted_records = 0;      ///< records recovered from replicas
    uint64_t answers_lost = 0;  ///< answers addressed to crashed owners
  };
  const ReplicationStats& replication_stats() const { return replication_; }

  /// Per-promotion recovery times (install time - crash time, virtual
  /// ticks), in deterministic EventKey order — the input of the bench's
  /// recovery_rounds_p99 scalar.
  const std::vector<uint64_t>& promotion_recovery_ticks() const {
    return promotion_recovery_ticks_;
  }

  /// Nodes the engine hosts state for (grows with joins; includes departed
  /// nodes, which keep their index forever).
  size_t num_nodes() const { return states_.size(); }

  /// All answers delivered so far (across queries), in delivery order.
  const std::vector<Answer>& answers() const { return answers_; }

  /// Answers of one query.
  std::vector<Answer> AnswersFor(uint64_t query_id) const;

  /// Published-tuple history (only if keep_history).
  const std::vector<sql::TuplePtr>& history() const { return history_; }

  /// The resolved ALTT Delta actually in use.
  uint64_t altt_delta() const { return altt_delta_; }

  /// Total live stored residuals / value-level tuples (walks all nodes;
  /// prefer MetricsRegistry counters in hot loops).
  size_t CountStoredQueries() const;
  size_t CountStoredTuples() const;

  /// Per-key cumulative storage responsibility, as ring positions with
  /// weights — the input of the id-movement balancer (Fig. 9).
  std::vector<dht::KeyLoad> KeyLoadProfile() const;

  /// Duplicate answer rows suppressed at owners of DISTINCT queries.
  uint64_t distinct_suppressed() const { return distinct_suppressed_; }

  /// The input query object (for tests).
  InputQueryPtr FindQuery(uint64_t query_id) const;

  /// Read-only node-state access (pool-balance assertions, handoff
  /// inspection in tests); node-local mutation stays engine-internal.
  const NodeState& state_of(dht::NodeIndex n) const { return *states_[n]; }

  const EngineConfig& config() const { return config_; }

 private:
  NodeState& state(dht::NodeIndex n) { return *states_[n]; }

  /// Virtual time for stamps and window math: the sharded runtime's clock
  /// when attached (event time on workers, round cursor on the driver),
  /// else the serial simulator's.
  uint64_t Now() const {
    return runtime_ != nullptr ? runtime_->Now() : simulator_->Now();
  }

  /// Registry the calling thread may write (shard delta on a worker).
  stats::MetricsRegistry& Metrics() {
    return runtime_ != nullptr ? *runtime_->ActiveMetrics() : *metrics_;
  }

  /// Rate of `key` at its responsible node `cand` — the one synchronous
  /// cross-node read of the engine (RIC, Section 6). Worker threads read
  /// the frozen per-epoch snapshot (S-invariant and race-free); the driver
  /// and the serial path read the live tracker.
  uint64_t ReadRate(dht::NodeIndex cand, KeyId key, uint64_t now);

  /// Decides where to index `residual` (planner policies of Section 6,
  /// RIC gathering and candidate-table reuse of Section 7) and ships it.
  void IndexResidual(dht::NodeIndex src, Residual residual);

  /// RIC acquisition for a candidate set; fills predicted rates and
  /// responsible nodes, charging messages per Sections 6-7 when enabled.
  void GatherRic(dht::NodeIndex src, const std::vector<KeyId>& candidates,
                 std::vector<uint64_t>* rates,
                 std::vector<dht::NodeIndex>* nodes);

  void OnNewTuple(dht::NodeIndex self, TuplePublish& msg);
  /// Shared body of kQueryIndex and kRewrite (Procedures 2 and 3 store and
  /// probe identically; only the message kind differs on the wire).
  void OnEval(dht::NodeIndex self, KeyId key, Residual&& residual,
              const RicVec& piggyback);
  void OnAnswer(dht::NodeIndex self, AnswerDeliver& msg);
  void OnRicRequest(dht::NodeIndex self, const RicRequest& msg);
  void OnRicReply(dht::NodeIndex self, const RicReply& msg);

  // ---- churn plumbing (docs/churn.md) ----

  /// One staged topology mutation, applied at a round barrier in EventKey
  /// order (immediately on the serial path).
  struct ChurnOp {
    enum class Kind { kJoin, kLeave, kCrash };
    Kind kind = Kind::kLeave;
    dht::NodeId id;                                 ///< join ring position
    dht::NodeIndex bootstrap = dht::kInvalidNode;   ///< join entry point
    dht::NodeIndex node = dht::kInvalidNode;        ///< leaving/crashing node
    uint32_t take_successors = 0;  ///< crash: adjacent successors to kill too
  };

  /// Worker-side churn counters, merged into churn_ at barriers.
  struct ChurnSinkCounters {
    uint64_t installed = 0;
    uint64_t reforwarded = 0;
    uint64_t recovery_ticks = 0;
    uint64_t forwarded = 0;
  };

  /// Worker-side replication counters, merged into replication_ at
  /// barriers.
  struct ReplicaSinkCounters {
    uint64_t updates = 0;
    uint64_t keys = 0;
    uint64_t bytes = 0;
    uint64_t promotions_installed = 0;
    uint64_t promoted_records = 0;
    uint64_t answers_lost = 0;
  };

  /// Wraps a churn task into an envelope delivered to `dst` at `when`.
  Status ScheduleChurnEvent(sim::SimTime when, dht::NodeIndex dst,
                            MessageTask task);
  /// kNodeJoin/kNodeLeave handler body: stage on a worker, apply otherwise.
  void StageOrApplyChurn(ChurnOp op);
  void ApplyChurn(const ChurnOp& op);
  void ApplyJoin(const dht::NodeId& id, dht::NodeIndex bootstrap);
  void ApplyLeave(dht::NodeIndex node);
  /// Silent failure (docs/failures.md): crashes `node` plus the next
  /// `take_successors` alive ring successors — all removed before any
  /// recovery starts, so a correlated kill of a whole replica set really
  /// loses the data — then, per orphaned range, promotes the surviving
  /// replica slices at the new owner. Barrier/serial-path only.
  void ApplyCrash(dht::NodeIndex node, uint32_t take_successors);
  /// Destroys a crashed node's entire NodeState payload (stored queries,
  /// tuples, ALTT entries, replica store) with metric and pool-balance
  /// bookkeeping — nothing is emitted; the data is simply gone.
  void DropAllState(dht::NodeIndex node);
  /// Extracts the replica slices `owner` holds for keys in `range` into one
  /// promoted HandoffBatch stamped with the crash time and self-delivers it
  /// as a StateHandoff (the install passes of a graceful handoff double as
  /// the promotion path). Extracted slices are cleared, so overlapping
  /// correlated ranges never promote a slice twice.
  void PromoteReplicas(dht::NodeIndex owner, const dht::KeyRange& range,
                       uint64_t crash_time);
  /// Re-mirrors the full owned key set of every node whose replica target
  /// set changed around ring `position` (the node owning the position plus
  /// its replication-1 alive predecessors) — called at the barrier that
  /// applies a churn op, so replica placement tracks the new topology.
  void RefreshReplicasAround(const dht::NodeId& position);
  /// Ships `node`'s full owned key set to its current successor set as one
  /// multi-key ReplicaUpdate per successor.
  void MirrorAllKeys(dht::NodeIndex node);
  /// Mirrors `key`'s full current slice at `self` (stored queries as bare
  /// residuals, value tuples, live ALTT entries, the rate bucket) to the
  /// next replication-1 successors — one single-key ReplicaUpdate each.
  /// Callers gate on config_.replication > 1.
  void MirrorKey(dht::NodeIndex self, KeyId key);
  /// kReplicaUpdate handler: REPLACES the listed key slices in `self`'s
  /// replica store, version-guarded by the batch's emission time.
  void OnReplicaUpdate(dht::NodeIndex self, ReplicaUpdate& msg);
  /// Warmup write-through: copies `owner`'s rate bucket for `key` straight
  /// into its successors' replica slices (no messages — stream history
  /// models traffic that already happened). Driver-phase only.
  void WriteThroughRateReplica(dht::NodeIndex owner, KeyId key, uint64_t now);
  /// Grows every per-node table for a freshly joined node `index`.
  void GrowForNode(dht::NodeIndex index);
  /// Extracts `range` from `from`'s NodeState (ring-id order) and ships it
  /// to `to` as one StateHandoff. Serial-phase / serial-path only.
  void EmitHandoff(dht::NodeIndex from, dht::NodeIndex to,
                   const dht::KeyRange& range);
  /// kStateHandoff handler: installs the slices `self` is responsible for
  /// (probing against pre-handoff local state only — moved-vs-moved pairs
  /// were already evaluated at the old owner) and re-forwards slices whose
  /// responsibility moved again while the batch was in flight.
  void OnStateHandoff(dht::NodeIndex self, StateHandoff& msg);
  /// OnEval's storage logic for a migrated stored query: keeps the moved
  /// ProjectionSet, probes only pre-handoff tuples/ALTT entries.
  void InstallQuery(dht::NodeIndex self, KeyId key, StoredQuery&& sq);
  /// Post-churn responsibility check: true when `self` no longer owns
  /// `key` and the payload was re-sent (one direct hop) to the owner.
  bool MaybeForward(dht::NodeIndex self, KeyId key, MessageTask* task);
  /// Adds worker-side churn counters: into the shard sink on a worker
  /// (merged into churn_ at the barrier), straight into churn_ otherwise.
  void AddChurnCounters(const ChurnSinkCounters& delta);
  /// Same discipline for replication counters.
  void AddReplicaCounters(const ReplicaSinkCounters& delta);
  /// Records one promotion install's recovery time: staged with the
  /// current EventKey on a worker (merged in order at the barrier),
  /// appended directly otherwise.
  void RecordPromotionTicks(uint64_t ticks);

  /// Shared trigger step: try to bind `t` into the stored query `sq`
  /// (temporal check, predicate match, window admission, DISTINCT rule —
  /// all over interned value ids, allocation-free).
  /// On success forwards or completes the new residual.
  void TryTrigger(dht::NodeIndex self, StoredQuery& sq, KeyId key,
                  const TupleRef& t);

  /// Probes `sq` against everything already stored at `self` under `key`:
  /// the value-level tuple bucket, or the non-expired ALTT entries for an
  /// attribute-level key. The one definition of the arrival probe, shared
  /// by OnEval (Procedure 3) and InstallQuery (a migrated query must see
  /// exactly what a fresh arrival would).
  void ProbeStoredState(dht::NodeIndex self, KeyId key, StoredQuery& sq);

  /// Batched probe kernel over contiguous spans of stored tuples, all of
  /// the same relation (one index key maps to one relation): phase 1
  /// evaluates the temporal check, window admission, and join predicates
  /// over value-id columns in a tight loop, collecting matched refs into a
  /// reusable thread-local buffer; phase 2 runs the DISTINCT rule and binds
  /// the matches (which may emit async messages — never touching the
  /// spans). Callers pass one span per tuple-bucket chunk (probing the
  /// chunk storage in place) or a single gathered span (ALTT).
  void ProbeTupleSpans(dht::NodeIndex self, KeyId key, StoredQuery& sq,
                       const TupleSpan* spans, uint32_t num_spans);

  void CompleteOrForward(dht::NodeIndex self, Residual next,
                         uint64_t pub_time);

  /// Window-expiry check for a stored residual against the next possible
  /// tuple position (garbage-collection view; used by sweeps and when a
  /// residual arrives for storage).
  bool IsExpired(const Residual& r) const;

  /// Section 5's per-trigger validity rule: the incoming tuple `t` proves
  /// the residual's window has closed (t is newer than the window allows).
  bool WindowClosedByTuple(const Residual& r, const TupleRef& t) const;

  /// Fingerprint for DISTINCT set semantics of a stored residual: the
  /// interned key id folded into the residual's 64-bit content fingerprint
  /// (bound value ids, which are a per-process bijection with values).
  /// Two different residuals can collide in 64 bits (probability
  /// ~n^2/2^64) — the ProjectionSet trade, applied here too.
  static uint64_t StoredFingerprint(KeyId key, const Residual& r);

  /// Unlinks the pool node `idx` (whose predecessor in the bucket list is
  /// `prev_idx`, or kNil when idx is the head) and frees it, with metric +
  /// fingerprint bookkeeping.
  void DropStoredQuery(dht::NodeIndex self, KeyId key, BucketList& bucket,
                       uint32_t prev_idx, uint32_t idx);

  /// Appends a pooled StoredQuery node to `bucket`; returns the node.
  StoredQuery& AppendStoredQuery(NodeState& st, BucketList& bucket,
                                 StoredQuery&& sq);

  void RecordKeyLoad(KeyId key);

  EngineConfig config_;
  const sql::Catalog* catalog_;
  dht::ChordNetwork* network_;
  dht::Transport* transport_;
  sim::Simulator* simulator_;
  stats::MetricsRegistry* metrics_;
  KeyInterner* interner_ = &KeyInterner::Global();
  Rng rng_;

  // ---- sharded-runtime state (unused on the serial path) ----

  /// Per-shard staging: everything a worker would otherwise write to a
  /// global. Answer order is reconstructed at barriers from EventKeys, so
  /// answers_ ends up in the same order for any shard count. DISTINCT
  /// owner-side state lives here too — a query's answers always arrive at
  /// its owner, i.e. on one fixed shard.
  struct alignas(64) ShardSink {
    std::vector<std::pair<runtime::EventKey, Answer>> answers;
    /// Per-DISTINCT-query delivered rows, as 64-bit fingerprints over the
    /// row's value ids (flat plane: no per-row key string).
    std::unordered_map<uint64_t, FlatU64Set> distinct_rows;
    uint64_t distinct_suppressed = 0;
    KeyIdMap<uint64_t> key_load;
    /// Join/leave requests staged by this shard's events, applied by the
    /// driver at the next barrier in global EventKey order.
    std::vector<std::pair<runtime::EventKey, ChurnOp>> churn_ops;
    ChurnSinkCounters churn;
    ReplicaSinkCounters replica;
    /// Per-promotion recovery times staged by this shard, merged into
    /// promotion_recovery_ticks_ at barriers in global EventKey order.
    std::vector<std::pair<runtime::EventKey, uint64_t>> promotion_ticks;
  };

  runtime::ShardedRuntime* runtime_ = nullptr;
  std::vector<ShardSink> sinks_;
  /// Frozen Rate() snapshots per node, rebuilt at epoch barriers; read-only
  /// while workers run.
  std::vector<KeyIdMap<uint64_t>> frozen_rates_;
  uint64_t frozen_epoch_ = 0;
  bool frozen_valid_ = false;
  /// Per-node draw counter for the kRandom policy under the runtime
  /// (replaces the shared rng_, whose draw order would depend on thread
  /// interleaving).
  std::vector<uint64_t> planner_seq_;

  std::vector<std::unique_ptr<NodeState>> states_;
  std::unordered_map<uint64_t, InputQueryPtr> queries_;
  std::vector<Answer> answers_;
  /// Per-DISTINCT-query delivered row fingerprints (owner-side, serial
  /// path) — value-id FNV, same scheme as ShardSink::distinct_rows.
  std::unordered_map<uint64_t, FlatU64Set> distinct_rows_;
  uint64_t distinct_suppressed_ = 0;

  std::vector<sql::TuplePtr> history_;
  KeyIdMap<uint64_t> key_load_;

  /// Reusable Procedure-1 emission buffer: PublishTuple/PublishBatch fill
  /// it and MultiSendKeys drains it in place, so a steady-state publish
  /// performs no vector allocation. Driver-phase only (like publishing).
  std::vector<std::pair<KeyId, MessageTask>> publish_batch_;

  // ---- churn state ----

  ChurnStats churn_;
  ReplicationStats replication_;
  std::vector<uint64_t> promotion_recovery_ticks_;
  /// Crashed-node flags (indexed like states_; nodes that joined later are
  /// appended false). A crashed node is gone for good: answers addressed to
  /// it count as lost instead of delivering, and late ReplicaUpdates to it
  /// drop. Graceful leavers are NOT marked — a leaver departs the overlay
  /// but still collects its answers (the pre-existing churn semantics).
  /// Written at barriers (workers parked), read by workers afterward.
  std::vector<uint8_t> crashed_;
  /// Arms the per-message responsibility check (MaybeForward) the first
  /// time any churn is applied; before that, the hot path is untouched.
  /// Never disarmed: candidate tables keep stale responsible-node
  /// addresses long after all in-flight mail has drained, and a fresh CT
  /// hit SendDirects to that cached address — so mis-addressed deliveries
  /// remain possible for the rest of the run, not just until the heaps
  /// empty. Written at barriers (workers parked), read by workers after
  /// the start gate.
  bool forwarding_armed_ = false;

  uint64_t next_query_id_ = 1;
  uint64_t next_tuple_id_ = 1;
  uint64_t global_seq_ = 0;  // publication sequence (tuple-window clock)
  uint64_t altt_delta_ = 0;
  uint64_t num_windowed_queries_ = 0;
  uint64_t num_unwindowed_queries_ = 0;
  uint64_t max_window_span_ = 0;  // largest window size over live queries
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_ENGINE_H_
