#ifndef RJOIN_CORE_KEY_H_
#define RJOIN_CORE_KEY_H_

#include <cstdint>
#include <string>

#include "dht/id.h"
#include "sql/value.h"

namespace rjoin::core {

/// Indexing granularity (Section 3). Items indexed under the concatenation
/// of relation and attribute name are at the *attribute level*; items
/// indexed under relation + attribute + value are at the *value level*.
enum class Level : uint8_t {
  kAttribute,
  kValue,
};

const char* LevelName(Level level);

/// Dense interned identifier of an index key (see core::KeyInterner). The
/// whole hot path — message payloads, node-state buckets, rate tracking,
/// candidate tables, shard routing — carries this u32 instead of the
/// canonical key text; the text and its SHA-1 ring id are interned once.
using KeyId = uint32_t;

inline constexpr KeyId kInvalidKeyId = static_cast<KeyId>(-1);

/// Unit separator between the concatenated components of a key's canonical
/// text: cannot appear in identifiers or integer values, keeping keys
/// collision-free (e.g. rel "RA" + attr "B" vs "R" + "AB").
inline constexpr char kKeySep = '\x1f';

/// A DHT index key in its canonical textual form. `text` is the
/// concatenation that gets hashed (the paper's Rel + Attr [+ Value], with
/// an unambiguous separator). Only the cold boundary (key construction,
/// tests, tracing) handles IndexKeys; everything in flight carries the
/// interned KeyId.
struct IndexKey {
  std::string text;
  Level level = Level::kAttribute;

  friend bool operator==(const IndexKey& a, const IndexKey& b) {
    return a.text == b.text && a.level == b.level;
  }
};

/// Attribute-level key: Hash(R + A).
IndexKey AttributeKey(const std::string& relation, const std::string& attr);

/// Sharded attribute-level key: Hash(R + A + shard). Used by the
/// query-replication scheme of [18] (referenced in Section 3): input
/// queries are replicated across `r` shard positions and each tuple's
/// attribute-level copy goes to exactly one shard, spreading the load of
/// hot attribute-level nodes without duplicating answers.
IndexKey ShardedAttributeKey(const std::string& relation,
                             const std::string& attr, uint32_t shard);

/// Value-level key: Hash(R + A + v).
IndexKey ValueKey(const std::string& relation, const std::string& attr,
                  const sql::Value& value);

/// Re-shards an existing attribute-level key (shard 0 == the plain key).
IndexKey WithShard(const IndexKey& attr_key, uint32_t shard);

/// The ring identifier of a key: SHA-1 of its canonical text. Interned
/// entries cache this; the boundary form exists for tests and one-off
/// constructions.
dht::NodeId KeyRingId(const IndexKey& key);

}  // namespace rjoin::core

#endif  // RJOIN_CORE_KEY_H_
