#ifndef RJOIN_CORE_KEY_H_
#define RJOIN_CORE_KEY_H_

#include <string>

#include "dht/id.h"
#include "sql/value.h"

namespace rjoin::core {

/// Indexing granularity (Section 3). Items indexed under the concatenation
/// of relation and attribute name are at the *attribute level*; items
/// indexed under relation + attribute + value are at the *value level*.
enum class Level : uint8_t {
  kAttribute,
  kValue,
};

const char* LevelName(Level level);

/// A DHT index key. `text` is the canonical concatenation that gets hashed
/// (the paper's Rel + Attr [+ Value], with an unambiguous separator).
struct IndexKey {
  std::string text;
  Level level = Level::kAttribute;

  friend bool operator==(const IndexKey& a, const IndexKey& b) {
    return a.text == b.text && a.level == b.level;
  }
};

/// Attribute-level key: Hash(R + A).
IndexKey AttributeKey(const std::string& relation, const std::string& attr);

/// Sharded attribute-level key: Hash(R + A + shard). Used by the
/// query-replication scheme of [18] (referenced in Section 3): input
/// queries are replicated across `r` shard positions and each tuple's
/// attribute-level copy goes to exactly one shard, spreading the load of
/// hot attribute-level nodes without duplicating answers.
IndexKey ShardedAttributeKey(const std::string& relation,
                             const std::string& attr, uint32_t shard);

/// Value-level key: Hash(R + A + v).
IndexKey ValueKey(const std::string& relation, const std::string& attr,
                  const sql::Value& value);

/// Re-shards an existing attribute-level key (shard 0 == the plain key).
IndexKey WithShard(const IndexKey& attr_key, uint32_t shard);

/// The ring identifier of a key.
dht::NodeId KeyId(const IndexKey& key);

}  // namespace rjoin::core

#endif  // RJOIN_CORE_KEY_H_
