#ifndef RJOIN_CORE_TUPLE_REF_H_
#define RJOIN_CORE_TUPLE_REF_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sql/tuple.h"
#include "sql/value.h"
#include "util/logging.h"

namespace rjoin::core {

/// Dense interned identifier of an attribute value (see ValueInterner).
/// The flat tuple plane stores tuples as arrays of these; predicate
/// evaluation (join equality, selection equality) is u32 comparison.
using ValueId = uint32_t;

inline constexpr ValueId kInvalidValueId = static_cast<ValueId>(-1);

/// Append-only dictionary sql::Value -> dense u32 ValueId, the value-plane
/// sibling of KeyInterner. Interning is injective (distinct values get
/// distinct ids; int and string domains never collide), so vid equality
/// *is* value equality — the whole point: the rewrite hot path compares
/// u32s instead of std::variant<int64_t, std::string>.
///
/// Concurrency contract (same shape as KeyInterner):
///  * value(), size(), Find() are lock-free, safe concurrently with
///    inserts; returned references are stable forever (slabs immortal).
///  * Intern() takes a mutex only on first sight. All inserts happen in
///    the driver phase (tuple publication, query Create), which is
///    sequential — so ids are canonical across shard counts and vid-based
///    fingerprints are bit-identical at S=1/4/7 (docs/keys.md argument).
class ValueInterner {
 public:
  ValueInterner();
  ~ValueInterner();
  ValueInterner(const ValueInterner&) = delete;
  ValueInterner& operator=(const ValueInterner&) = delete;

  /// Process-wide interner the engine uses by default.
  static ValueInterner& Global();

  /// Id of `v`, interning on first sight (driver phase only).
  ValueId Intern(const sql::Value& v);

  /// Id of `v` if already interned, else kInvalidValueId. Lock-free.
  ValueId Find(const sql::Value& v) const;

  /// The interned value. Reference stable for the interner's lifetime.
  const sql::Value& value(ValueId id) const {
    RJOIN_DCHECK(id < size());
    return slabs_[id >> kSlabBits].load(std::memory_order_acquire)
        [id & (kSlabSize - 1)];
  }

  uint32_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  struct Table {
    explicit Table(size_t capacity);
    const size_t mask;
    std::unique_ptr<std::atomic<uint64_t>[]> slots;
  };

  static constexpr uint32_t kSlabBits = 10;  // 1024 values per slab
  static constexpr uint32_t kSlabSize = 1u << kSlabBits;
  static constexpr uint32_t kMaxSlabs = 1u << 12;  // 4M values hard cap

  ValueId FindIn(const Table& table, const sql::Value& v,
                 uint64_t hash) const;
  void PublishInto(Table& table, uint64_t hash, ValueId id);

  std::unique_ptr<std::atomic<sql::Value*>[]> slabs_;
  std::atomic<uint32_t> size_{0};
  std::atomic<Table*> table_;
  std::vector<std::unique_ptr<Table>> retired_;
  std::mutex mutex_;
};

class TupleRef;

/// Pool of flat, intrusively-refcounted tuple records — the replacement
/// for `std::shared_ptr<const sql::Tuple>` on the steady-state path.
/// A record is a fixed-size slab slot: header + inline ValueId columns
/// (arity <= kInlineArity, which covers the paper's 10-attribute
/// relations), with a per-slot reusable overflow array for wider tuples.
/// Publish, ALTT append, handoff, and GC move 4-byte handles (TupleRef);
/// copying a handle is one atomic increment, no control blocks.
///
/// Concurrency contract:
///  * Allocate() is driver-phase only (tuple publication is sequential),
///    under a mutex that also drains the lock-free remote-free list.
///  * Release (refcount -> 0) may happen on any worker (windowed GC,
///    Δ-expiry, handoff): the record is pushed onto a Treiber stack of
///    u32 indices; the next Allocate() reclaims in bulk. Same discipline
///    as MessagePool's remote-return path.
///  * Dereference is lock-free: slabs live on an atomic spine and are
///    never freed while the pool lives, so TupleRef handles stay valid
///    for the pool's whole lifetime.
class TuplePool {
 public:
  /// Covers the paper's workload (10 attributes per relation) with slack.
  static constexpr uint16_t kInlineArity = 12;
  static constexpr uint32_t kNil = UINT32_MAX;

  /// The flat record. Field names match sql::Tuple so call sites written
  /// against `t->seq_no` / `t->pub_time` compile against either plane.
  struct Rec {
    uint64_t pub_time = 0;
    uint64_t seq_no = 0;
    uint64_t tuple_id = 0;
    uint32_t relation = 0;  ///< dense relation id (TuplePool dictionary)
    uint16_t arity = 0;
    std::atomic<uint32_t> refs{0};
    uint32_t next = kNil;  ///< freelist / remote-stack link (refs == 0)
    ValueId vals[kInlineArity] = {};
    /// Wide-tuple fallback: allocated once per slot, then reused across
    /// recycles, so steady state stays allocation-free even past
    /// kInlineArity.
    std::unique_ptr<ValueId[]> overflow;
    uint16_t overflow_cap = 0;

    const ValueId* columns() const {
      return arity <= kInlineArity ? vals : overflow.get();
    }
  };

  TuplePool();
  ~TuplePool();
  TuplePool(const TuplePool&) = delete;
  TuplePool& operator=(const TuplePool&) = delete;

  /// Process-wide pool the engine uses by default.
  static TuplePool& Global();

  /// Builds a record from materialized values (driver phase). Interns the
  /// relation name and every value, returns a handle holding one ref.
  TupleRef Make(std::string_view relation, const std::vector<sql::Value>& values,
                uint64_t pub_time, uint64_t seq_no, uint64_t tuple_id);

  /// Dense id of a relation name, interning on first sight (driver phase).
  uint32_t InternRelation(std::string_view name);

  /// Name of an interned relation id. Lock-free; reference stable.
  const std::string& relation_name(uint32_t rel_id) const {
    RJOIN_DCHECK(rel_id < rel_count_.load(std::memory_order_acquire));
    return *rel_names_[rel_id].load(std::memory_order_acquire);
  }

  const Rec& at(uint32_t idx) const {
    return slabs_[idx >> kSlabBits].load(std::memory_order_acquire)
        [idx & (kSlabSize - 1)];
  }
  Rec& at(uint32_t idx) {
    return slabs_[idx >> kSlabBits].load(std::memory_order_acquire)
        [idx & (kSlabSize - 1)];
  }

  /// Pool-balance accounting (mirrors MessagePool::Stats).
  struct Stats {
    uint64_t slabs_allocated = 0;
    uint64_t records_allocated = 0;  ///< slab growth (high-water mark)
    uint64_t acquired = 0;           ///< records handed out
    uint64_t recycled = 0;           ///< acquisitions served by freelists
    uint64_t released = 0;           ///< refcounts that reached zero
    uint64_t outstanding() const { return acquired - released; }
  };
  Stats stats() const;

 private:
  friend class TupleRef;

  static constexpr uint32_t kSlabBits = 12;  // 4096 records per slab
  static constexpr uint32_t kSlabSize = 1u << kSlabBits;
  static constexpr uint32_t kMaxSlabs = 1u << 12;  // 16M records hard cap

  /// Pops a clean record (refs == 1) off the freelist or grows a slab.
  uint32_t Allocate();

  void IncRef(uint32_t idx) {
    at(idx).refs.fetch_add(1, std::memory_order_relaxed);
  }
  void DecRef(uint32_t idx) {
    if (at(idx).refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ReleaseRecord(idx);
    }
  }

  /// refs hit zero: push onto the any-thread remote stack.
  void ReleaseRecord(uint32_t idx);

  std::unique_ptr<std::atomic<Rec*>[]> slabs_;
  std::mutex mutex_;                  // guards allocation + dictionaries
  uint32_t allocated_ = 0;            // slab high-water mark
  uint32_t free_ = kNil;              // owner freelist (under mutex_)
  std::atomic<uint32_t> remote_free_{kNil};

  // Relation dictionary: names are appended driver-phase under mutex_ and
  // published through an atomic spine so workers can materialize answers
  // lock-free.
  static constexpr uint32_t kMaxRelations = 4096;
  std::unique_ptr<std::atomic<const std::string*>[]> rel_names_;
  std::vector<std::unique_ptr<std::string>> rel_storage_;
  std::atomic<uint32_t> rel_count_{0};

  std::atomic<uint64_t> slabs_allocated_{0};
  std::atomic<uint64_t> acquired_{0};
  std::atomic<uint64_t> recycled_{0};
  std::atomic<uint64_t> released_{0};
};

/// RAII handle to a pooled tuple record: 4 bytes, copy = one atomic
/// increment, destroy = one atomic decrement. This is what messages,
/// node-state buckets, residual bindings, and handoff batches move around
/// instead of shared_ptr<const Tuple>.
class TupleRef {
 public:
  TupleRef() = default;
  TupleRef(const TupleRef& o) : idx_(o.idx_) {
    if (idx_ != TuplePool::kNil) TuplePool::Global().IncRef(idx_);
  }
  TupleRef(TupleRef&& o) noexcept : idx_(o.idx_) {
    o.idx_ = TuplePool::kNil;
  }
  TupleRef& operator=(const TupleRef& o) {
    if (this != &o) {
      TupleRef tmp(o);
      std::swap(idx_, tmp.idx_);
    }
    return *this;
  }
  TupleRef& operator=(TupleRef&& o) noexcept {
    if (this != &o) {
      reset();
      idx_ = o.idx_;
      o.idx_ = TuplePool::kNil;
    }
    return *this;
  }
  ~TupleRef() { reset(); }

  void reset() {
    if (idx_ != TuplePool::kNil) {
      TuplePool::Global().DecRef(idx_);
      idx_ = TuplePool::kNil;
    }
  }

  explicit operator bool() const { return idx_ != TuplePool::kNil; }
  bool operator==(const TupleRef& o) const { return idx_ == o.idx_; }
  bool operator!=(const TupleRef& o) const { return idx_ != o.idx_; }

  /// Header access: t->pub_time, t->seq_no, t->tuple_id, t->relation
  /// (dense id), t->arity.
  const TuplePool::Rec* operator->() const {
    return &TuplePool::Global().at(idx_);
  }
  const TuplePool::Rec& rec() const { return TuplePool::Global().at(idx_); }

  uint32_t index() const { return idx_; }

  /// Interned value id of column `i`.
  ValueId value_id(int i) const { return rec().columns()[i]; }

  /// Materialized value of column `i` (lock-free dictionary read).
  const sql::Value& value(int i) const {
    return ValueInterner::Global().value(value_id(i));
  }

  std::string_view relation_name() const {
    return TuplePool::Global().relation_name(rec().relation);
  }

  /// Cold-boundary copy back into the shared_ptr plane (history, oracle
  /// comparison, display). Allocates; never on the steady-state path.
  sql::TuplePtr Materialize() const;

  /// Adopts a raw index that already holds one reference (pool internal /
  /// deserialization boundary).
  static TupleRef AdoptRaw(uint32_t idx) {
    TupleRef t;
    t.idx_ = idx;
    return t;
  }

 private:
  uint32_t idx_ = TuplePool::kNil;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_TUPLE_REF_H_
