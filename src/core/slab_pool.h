#ifndef RJOIN_CORE_SLAB_POOL_H_
#define RJOIN_CORE_SLAB_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/logging.h"

namespace rjoin::core {

/// Index-linked slab allocator for node-state records (StoredQuery, ALTT
/// entries): the same slab/freelist discipline core::MessagePool applies
/// to envelopes, applied to the next allocation hot spot after delivery.
/// Nodes live in fixed-size slabs (stable addresses — the engine holds
/// references across TryTrigger calls), are chained through u32 `next`
/// indices instead of pointers, and recycle through a freelist, so
/// steady-state store/drop cycles perform zero heap allocations.
///
/// Single-threaded by design: each NodeState owns its pools, and a node's
/// events execute on exactly one shard.
template <typename T>
class SlabPool {
 public:
  static constexpr uint32_t kNil = UINT32_MAX;

  struct Node {
    T value{};
    uint32_t next = kNil;
  };

  explicit SlabPool(uint32_t slab_nodes = 64) : slab_size_(slab_nodes) {}
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Hands out a clean node (freelist hit in steady state) with
  /// next == kNil; returns its index.
  uint32_t Allocate() {
    ++live_;
    if (free_ != kNil) {
      const uint32_t idx = free_;
      Node& n = at(idx);
      free_ = n.next;
      n.next = kNil;
      return idx;
    }
    const uint32_t idx = allocated_++;
    if (idx % slab_size_ == 0) {
      slabs_.push_back(std::make_unique<Node[]>(slab_size_));
    }
    return idx;
  }

  /// Returns `idx` to the freelist, dropping whatever its value owned.
  void Free(uint32_t idx) {
    Node& n = at(idx);
    n.value = T{};  // release owned resources (residuals, tuple refs)
    n.next = free_;
    free_ = idx;
    RJOIN_DCHECK(live_ > 0);
    --live_;
  }

  Node& at(uint32_t idx) {
    RJOIN_DCHECK(idx < allocated_);
    return slabs_[idx / slab_size_][idx % slab_size_];
  }
  const Node& at(uint32_t idx) const {
    RJOIN_DCHECK(idx < allocated_);
    return slabs_[idx / slab_size_][idx % slab_size_];
  }

  /// Nodes ever created (the high-water mark) / currently in use.
  uint32_t allocated() const { return allocated_; }
  uint32_t live() const { return live_; }

 private:
  const uint32_t slab_size_;
  std::vector<std::unique_ptr<Node[]>> slabs_;
  uint32_t allocated_ = 0;
  uint32_t live_ = 0;
  uint32_t free_ = kNil;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_SLAB_POOL_H_
