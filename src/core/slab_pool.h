#ifndef RJOIN_CORE_SLAB_POOL_H_
#define RJOIN_CORE_SLAB_POOL_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "stats/alloc_tracker.h"
#include "util/logging.h"

namespace rjoin::core {

/// Index-linked slab allocator for node-state records (StoredQuery, ALTT
/// entries): the same slab/freelist discipline core::MessagePool applies
/// to envelopes, applied to the next allocation hot spot after delivery.
/// Nodes live in slabs (stable addresses — the engine holds references
/// across TryTrigger calls), are chained through u32 `next` indices
/// instead of pointers, and recycle through a freelist, so steady-state
/// store/drop cycles perform zero heap allocations.
///
/// Slabs grow geometrically: each new slab doubles the previous capacity
/// (base .. base << kMaxDoublings, then fixed at the cap). A pool holding
/// n nodes therefore cost O(log n) heap allocations, not n / slab_size —
/// with hundreds of per-node pools all growing monotonically (no-window
/// workloads accumulate stored rewrites forever), fixed-size slabs were
/// the dominant steady-state allocation source. The doubling caps at
/// base << kMaxDoublings nodes per slab so a huge pool never over-commits
/// more than one capped slab of slack.
///
/// Single-threaded by design: each NodeState owns its pools, and a node's
/// events execute on exactly one shard.
template <typename T>
class SlabPool {
 public:
  static constexpr uint32_t kNil = UINT32_MAX;

  struct Node {
    T value{};
    uint32_t next = kNil;
  };

  /// `slab_nodes` (the first slab's capacity) must be a power of two.
  explicit SlabPool(uint32_t slab_nodes = 64)
      : base_shift_(static_cast<uint32_t>(std::countr_zero(slab_nodes))) {
    RJOIN_DCHECK(std::has_single_bit(slab_nodes));
  }
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Hands out a clean node (freelist hit in steady state) with
  /// next == kNil; returns its index.
  uint32_t Allocate() {
    ++live_;
    ++acquired_;
    if (free_ != kNil) {
      ++recycled_;
      const uint32_t idx = free_;
      Node& n = at(idx);
      free_ = n.next;
      n.next = kNil;
      return idx;
    }
    const uint32_t idx = allocated_++;
    if (idx == capacity_) {
      stats::AllocScope plane(stats::AllocPlane::kPoolCapacity);
      const uint32_t cap = SlabCapacity(static_cast<uint32_t>(slabs_.size()));
      slabs_.push_back(std::make_unique<Node[]>(cap));
      capacity_ += cap;
    }
    return idx;
  }

  /// Returns `idx` to the freelist, dropping whatever its value owned.
  void Free(uint32_t idx) {
    Node& n = at(idx);
    n.value = T{};  // release owned resources (residuals, tuple refs)
    n.next = free_;
    free_ = idx;
    RJOIN_DCHECK(live_ > 0);
    --live_;
    ++released_;
  }

  Node& at(uint32_t idx) {
    RJOIN_DCHECK(idx < allocated_);
    const Location loc = Locate(idx);
    return slabs_[loc.slab][loc.offset];
  }
  const Node& at(uint32_t idx) const {
    RJOIN_DCHECK(idx < allocated_);
    const Location loc = Locate(idx);
    return slabs_[loc.slab][loc.offset];
  }

  /// Nodes ever created (the high-water mark) / currently in use.
  uint32_t allocated() const { return allocated_; }
  uint32_t live() const { return live_; }

  /// Pool-balance counters (mirror MessagePool::Stats): every Allocate is
  /// one `acquired`, every Free one `released`, freelist hits `recycled`.
  /// A drained pool must satisfy acquired == released (the balance the
  /// pool-balance suite asserts).
  uint64_t acquired() const { return acquired_; }
  uint64_t released() const { return released_; }
  uint64_t recycled() const { return recycled_; }

 private:
  /// Slab k holds base << min(k, kMaxDoublings) nodes.
  static constexpr uint32_t kMaxDoublings = 10;

  uint32_t SlabCapacity(uint32_t slab) const {
    return 1u << (base_shift_ + std::min(slab, kMaxDoublings));
  }

  struct Location {
    uint32_t slab;
    uint32_t offset;
  };

  /// O(1) index -> (slab, offset). In base-sized units u = idx >> shift,
  /// the doubling slabs 0..kMaxDoublings-1 cover u in [0, 2^D - 1) (slab k
  /// starts at 2^k - 1), then capped slabs of 2^D units each follow.
  Location Locate(uint32_t idx) const {
    const uint32_t u = idx >> base_shift_;
    constexpr uint32_t kGeomUnits = (1u << kMaxDoublings) - 1;
    if (u < kGeomUnits) {
      const uint32_t slab =
          static_cast<uint32_t>(std::bit_width(u + 1)) - 1;
      return {slab, idx - (((1u << slab) - 1) << base_shift_)};
    }
    const uint32_t v = u - kGeomUnits;
    const uint32_t low_mask = (1u << base_shift_) - 1;
    return {kMaxDoublings + (v >> kMaxDoublings),
            ((v & (kGeomUnits)) << base_shift_) | (idx & low_mask)};
  }

  const uint32_t base_shift_;
  std::vector<std::unique_ptr<Node[]>> slabs_;
  uint32_t capacity_ = 0;
  uint32_t allocated_ = 0;
  uint32_t live_ = 0;
  uint64_t acquired_ = 0;
  uint64_t released_ = 0;
  uint64_t recycled_ = 0;
  uint32_t free_ = kNil;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_SLAB_POOL_H_
