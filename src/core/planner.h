#ifndef RJOIN_CORE_PLANNER_H_
#define RJOIN_CORE_PLANNER_H_

#include <string>
#include <vector>

#include "core/interner.h"
#include "core/key.h"
#include "core/residual.h"

namespace rjoin::core {

/// Strategy for choosing where to index a query (Section 6, and the
/// comparison baselines of the Fig. 2 experiment).
enum class PlannerPolicy {
  /// Index under the first candidate in WHERE-clause order — the
  /// "simplified" behaviour described in Section 3.
  kFirstInClause,
  /// Uniformly random candidate (the "Random" baseline of Fig. 2).
  kRandom,
  /// Adversarial oracle: the candidate with the *highest* tuple rate (the
  /// "Worst" baseline of Fig. 2). No RIC traffic is charged: this simulates
  /// always making the worst choice.
  kWorst,
  /// RJoin proper: request RIC information and pick the candidate with the
  /// *lowest* predicted rate (minimum intermediate results / traffic).
  kRic,
};

const char* PlannerPolicyName(PlannerPolicy policy);

/// Which indexing levels rewritten queries may use.
enum class RewriteIndexLevels {
  /// Section 3's default: a rewritten query is indexed with a
  /// relation-attribute-value triple; attribute-level pairs are offered
  /// only when no value-level candidate exists (e.g. a residual whose
  /// remaining predicates are all open joins). Value-level nodes keep their
  /// tuple stores indefinitely, so this mode preserves eventual
  /// completeness with a finite ALTT Delta.
  kValuePreferred,
  /// Section 6's generalization: attribute-level pairs of open join
  /// conditions are always candidates too. Note (and the tests
  /// demonstrate) that completeness then requires an infinite ALTT Delta —
  /// an attribute-level node only remembers tuples for Delta, so a
  /// rewritten query arriving later than Delta after a matching tuple
  /// would miss it. The paper's "Delta can be infinity" remark covers this.
  kIncludeAttribute,
};

/// The indexing possibilities of Section 6 for a residual:
///  (a) relation-attribute pairs appearing in a (still open) join condition;
///  (b) relation-attribute-value triples appearing as explicit selection
///      conditions on unbound relations;
///  (c) relation-attribute-value triples implied by the WHERE clause — a
///      join predicate one side of which is already bound.
///
/// Input queries (nothing bound) are indexed at attribute level only, as in
/// Section 3. For rewritten queries, value-level candidates are listed
/// first (they give better load distribution and are the paper's default),
/// in WHERE-clause order, followed by attribute-level pairs per `levels`.
///
/// Candidates come back as interned KeyIds: key text is built once into a
/// reusable buffer and interned (a lock-free hit in steady state), and the
/// planner/engine compare, route, and store by u32 id from here on.
///
/// The out-parameter form clears and fills a caller-owned buffer — the
/// engine passes a reusable thread-local vector, so the per-rewrite
/// candidate enumeration is allocation-free once warm.
void IndexingCandidates(const Residual& residual, RewriteIndexLevels levels,
                        KeyInterner& interner, std::vector<KeyId>* out);

std::vector<KeyId> IndexingCandidates(
    const Residual& residual,
    RewriteIndexLevels levels = RewriteIndexLevels::kValuePreferred,
    KeyInterner& interner = KeyInterner::Global());

}  // namespace rjoin::core

#endif  // RJOIN_CORE_PLANNER_H_
