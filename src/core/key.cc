#include "core/key.h"

namespace rjoin::core {

const char* LevelName(Level level) {
  return level == Level::kAttribute ? "attribute" : "value";
}

IndexKey AttributeKey(const std::string& relation, const std::string& attr) {
  IndexKey k;
  k.level = Level::kAttribute;
  k.text.reserve(relation.size() + attr.size() + 1);
  k.text = relation;
  k.text += kKeySep;
  k.text += attr;
  return k;
}

IndexKey ShardedAttributeKey(const std::string& relation,
                             const std::string& attr, uint32_t shard) {
  IndexKey k = AttributeKey(relation, attr);
  if (shard > 0) {
    k.text += kKeySep;
    k.text += '#';
    k.text += std::to_string(shard);
  }
  return k;
}

IndexKey ValueKey(const std::string& relation, const std::string& attr,
                  const sql::Value& value) {
  IndexKey k;
  k.level = Level::kValue;
  k.text.reserve(relation.size() + attr.size() + 2);
  k.text = relation;
  k.text += kKeySep;
  k.text += attr;
  k.text += kKeySep;
  value.AppendKeyString(&k.text);
  return k;
}

IndexKey WithShard(const IndexKey& attr_key, uint32_t shard) {
  IndexKey k = attr_key;
  if (shard > 0) {
    k.text += kKeySep;
    k.text += '#';
    k.text += std::to_string(shard);
  }
  return k;
}

dht::NodeId KeyRingId(const IndexKey& key) {
  return dht::NodeId::FromKey(key.text);
}

}  // namespace rjoin::core
