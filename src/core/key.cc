#include "core/key.h"

namespace rjoin::core {

namespace {
// Unit separator: cannot appear in identifiers or integer values, keeping
// concatenated keys collision-free (e.g. rel "RA" + attr "B" vs "R" + "AB").
constexpr char kSep = '\x1f';
}  // namespace

const char* LevelName(Level level) {
  return level == Level::kAttribute ? "attribute" : "value";
}

IndexKey AttributeKey(const std::string& relation, const std::string& attr) {
  IndexKey k;
  k.level = Level::kAttribute;
  k.text.reserve(relation.size() + attr.size() + 1);
  k.text = relation;
  k.text += kSep;
  k.text += attr;
  return k;
}

IndexKey ShardedAttributeKey(const std::string& relation,
                             const std::string& attr, uint32_t shard) {
  IndexKey k = AttributeKey(relation, attr);
  if (shard > 0) {
    k.text += kSep;
    k.text += '#';
    k.text += std::to_string(shard);
  }
  return k;
}

IndexKey ValueKey(const std::string& relation, const std::string& attr,
                  const sql::Value& value) {
  IndexKey k;
  k.level = Level::kValue;
  const std::string v = value.ToKeyString();
  k.text.reserve(relation.size() + attr.size() + v.size() + 2);
  k.text = relation;
  k.text += kSep;
  k.text += attr;
  k.text += kSep;
  k.text += v;
  return k;
}

IndexKey WithShard(const IndexKey& attr_key, uint32_t shard) {
  IndexKey k = attr_key;
  if (shard > 0) {
    k.text += kSep;
    k.text += '#';
    k.text += std::to_string(shard);
  }
  return k;
}

dht::NodeId KeyId(const IndexKey& key) {
  return dht::NodeId::FromKey(key.text);
}

}  // namespace rjoin::core
