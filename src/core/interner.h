#ifndef RJOIN_CORE_INTERNER_H_
#define RJOIN_CORE_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/key.h"
#include "dht/id.h"
#include "sql/value.h"

namespace rjoin::core {

/// Append-only dictionary of index keys: each distinct canonical
/// (text, level) pair is stored once and named by a dense u32 KeyId. An entry caches the
/// key's indexing level and its SHA-1 ring identifier, so everything past
/// the construction boundary — message payloads, routing, node-state
/// buckets, rate tracking, candidate tables — works on a u32 and never
/// re-hashes key text.
///
/// Concurrency contract (the shape the sharded runtime needs):
///  * Reads — Find(), text(), level(), ring_id() — are lock-free and safe
///    from any thread, concurrently with inserts.
///  * Inserts take a mutex, but only for keys seen for the first time; a
///    repeated Intern() is a lock-free hit. Steady state interns nothing.
///  * Entries are immortal: slabs and retired index tables are never freed
///    while the interner lives, so ids and `const std::string&` references
///    stay valid forever.
///
/// Determinism: ids are assigned in first-intern order. Driver-phase
/// interning (query submission, tuple publication) is sequential and thus
/// canonical; worker-phase interning (rewrite candidates) may race, so id
/// *values* can differ between runs — which is why no ordering the engine
/// emits ever depends on id values (event keys are (time, src, seq); see
/// docs/keys.md for the full argument). Within one process, text -> id is
/// a fixed bijection (keyed by (text, level)), so an S=1 run and an S=4
/// run of the same workload resolve identical keys to identical ids.
class KeyInterner {
 public:
  KeyInterner();
  ~KeyInterner();
  KeyInterner(const KeyInterner&) = delete;
  KeyInterner& operator=(const KeyInterner&) = delete;

  /// Process-wide interner the engine/transport stack uses by default.
  static KeyInterner& Global();

  /// Id of the (text, level) key, interning it on first sight. Identity is
  /// the *pair*: the same text interned at both levels yields two ids with
  /// the same ring position — e.g. the sharded attribute key
  /// `R·A·#3` and a value key for the string value "#3" share their text,
  /// and the seed kept them level-distinct, so the interner must too.
  KeyId Intern(std::string_view text, Level level);

  /// Interns a boundary-form key.
  KeyId Intern(const IndexKey& key) { return Intern(key.text, key.level); }

  /// Attribute-level key Hash(R + A), built into a reusable thread-local
  /// buffer (no allocation on the hit path).
  KeyId InternAttribute(std::string_view relation, std::string_view attr);

  /// Value-level key Hash(R + A + v).
  KeyId InternValue(std::string_view relation, std::string_view attr,
                    const sql::Value& value);

  /// Re-shards an attribute-level key ([18]'s replication scheme); shard 0
  /// is the plain key.
  KeyId WithShard(KeyId attr_key, uint32_t shard);

  /// Id of (text, level) if already interned, else kInvalidKeyId.
  /// Lock-free.
  KeyId Find(std::string_view text, Level level) const;

  /// Level-agnostic lookup (tests, cold boundaries like HasCachedRic):
  /// the attribute-level entry if one exists, else the value-level one.
  KeyId Find(std::string_view text) const;

  /// Canonical text of an interned key. The reference is stable for the
  /// interner's lifetime.
  const std::string& text(KeyId id) const { return entry(id).text; }

  /// Indexing level the key was interned with.
  Level level(KeyId id) const { return entry(id).level; }

  /// Cached ring identifier (SHA-1 of the text, computed once at intern).
  const dht::NodeId& ring_id(KeyId id) const { return entry(id).ring_id; }

  /// Number of interned keys.
  uint32_t size() const { return size_.load(std::memory_order_acquire); }

  /// Intern-traffic counters. hits = Intern() calls resolved without
  /// inserting (the steady state); misses = first-sight inserts (== the
  /// entry count, barring racing duplicates that lost the lock).
  struct Stats {
    uint64_t entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t text_bytes = 0;  ///< total canonical text interned
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string text;
    dht::NodeId ring_id;
    Level level = Level::kAttribute;
  };

  /// Open-addressing index over interned ids: slot = (hash32 << 32) |
  /// (id + 1), 0 = empty. Published entries only; readers that hold a
  /// pre-resize table see a subset and fall back to the locked path.
  struct Table {
    explicit Table(size_t capacity);
    const size_t mask;
    std::unique_ptr<std::atomic<uint64_t>[]> slots;
  };

  static constexpr uint32_t kSlabBits = 10;  // 1024 entries per slab
  static constexpr uint32_t kSlabSize = 1u << kSlabBits;
  static constexpr uint32_t kMaxSlabs = 1u << 12;  // 4M keys hard cap

  const Entry& entry(KeyId id) const;
  KeyId FindIn(const Table& table, std::string_view text, Level level,
               uint64_t hash) const;
  void PublishInto(Table& table, uint64_t hash, KeyId id);

  /// Slab spine: fixed-size array of atomics so readers never race a
  /// growing vector. Slabs are allocated under the mutex and published
  /// with release stores.
  std::unique_ptr<std::atomic<Entry*>[]> slabs_;
  std::atomic<uint32_t> size_{0};

  std::atomic<Table*> table_;
  std::vector<std::unique_ptr<Table>> retired_;  // old tables, kept alive
  std::mutex mutex_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> text_bytes_{0};
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_INTERNER_H_
