#include "core/ric.h"

#include <algorithm>

namespace rjoin::core {

void RateTracker::Roll(Bucket& b, uint64_t epoch) const {
  if (b.epoch == epoch) return;
  if (epoch == b.epoch + 1) {
    b.previous = b.current;
  } else {
    b.previous = 0;
  }
  b.current = 0;
  b.epoch = epoch;
}

void RateTracker::Record(KeyId key, uint64_t now) {
  Bucket& b = counts_[key];
  Roll(b, EpochOf(now));
  ++b.current;
}

uint64_t RateTracker::Rate(KeyId key, uint64_t now) const {
  const Bucket* found = counts_.Find(key);
  if (found == nullptr) return 0;
  Bucket b = *found;  // Roll a copy; lookups are logically const.
  Roll(b, EpochOf(now));
  return b.current + b.previous;
}

void RateTracker::SnapshotInto(uint64_t now, KeyIdMap<uint64_t>* out) const {
  const uint64_t epoch = EpochOf(now);
  counts_.ForEach([&](KeyId key, const Bucket& bucket) {
    Bucket b = bucket;  // Roll a copy; lookups are logically const.
    Roll(b, epoch);
    const uint64_t rate = b.current + b.previous;
    if (rate > 0) (*out)[key] = rate;
  });
}

void RateTracker::AppendTrackedKeys(std::vector<KeyId>* out) const {
  counts_.ForEach([&](KeyId key, const Bucket& bucket) {
    if (bucket.current > 0 || bucket.previous > 0) out->push_back(key);
  });
}

bool RateTracker::ExtractKey(KeyId key, uint64_t* epoch, uint64_t* current,
                             uint64_t* previous) {
  Bucket* b = counts_.Find(key);
  if (b == nullptr || (b->current == 0 && b->previous == 0)) return false;
  *epoch = b->epoch;
  *current = b->current;
  *previous = b->previous;
  // KeyIdMap never erases; an empty bucket is equivalent (Rate reads 0 and
  // SnapshotInto skips zero rates).
  *b = Bucket{};
  return true;
}

bool RateTracker::PeekKey(KeyId key, uint64_t* epoch, uint64_t* current,
                          uint64_t* previous) const {
  const Bucket* b = counts_.Find(key);
  if (b == nullptr || (b->current == 0 && b->previous == 0)) return false;
  *epoch = b->epoch;
  *current = b->current;
  *previous = b->previous;
  return true;
}

void RateTracker::MergeSlice(KeyId key, uint64_t epoch, uint64_t current,
                             uint64_t previous) {
  Bucket incoming{epoch, current, previous};
  Bucket& b = counts_[key];
  const uint64_t target = std::max(b.epoch, incoming.epoch);
  Roll(b, target);
  Roll(incoming, target);
  b.current += incoming.current;
  b.previous += incoming.previous;
}

void CandidateTable::Merge(const RicEntry& entry) {
  RicEntry& slot = entries_[entry.key];
  if (slot.key == kInvalidKeyId || entry.timestamp >= slot.timestamp) {
    slot = entry;
  }
}

const RicEntry* CandidateTable::Find(KeyId key) const {
  return entries_.Find(key);
}

bool CandidateTable::IsFresh(KeyId key, uint64_t now,
                             uint64_t validity) const {
  const RicEntry* e = Find(key);
  return e != nullptr && now - e->timestamp <= validity;
}

}  // namespace rjoin::core
