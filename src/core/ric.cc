#include "core/ric.h"

namespace rjoin::core {

void RateTracker::Roll(Bucket& b, uint64_t epoch) const {
  if (b.epoch == epoch) return;
  if (epoch == b.epoch + 1) {
    b.previous = b.current;
  } else {
    b.previous = 0;
  }
  b.current = 0;
  b.epoch = epoch;
}

void RateTracker::Record(const std::string& key, uint64_t now) {
  Bucket& b = counts_[key];
  Roll(b, EpochOf(now));
  ++b.current;
}

uint64_t RateTracker::Rate(const std::string& key, uint64_t now) const {
  auto it = counts_.find(key);
  if (it == counts_.end()) return 0;
  Bucket b = it->second;  // Roll a copy; lookups are logically const.
  Roll(b, EpochOf(now));
  return b.current + b.previous;
}

void RateTracker::SnapshotInto(
    uint64_t now, std::unordered_map<std::string, uint64_t>* out) const {
  const uint64_t epoch = EpochOf(now);
  for (const auto& [key, bucket] : counts_) {
    Bucket b = bucket;  // Roll a copy; lookups are logically const.
    Roll(b, epoch);
    const uint64_t rate = b.current + b.previous;
    if (rate > 0) (*out)[key] = rate;
  }
}

void CandidateTable::Merge(const RicEntry& entry) {
  auto [it, inserted] = entries_.emplace(entry.key_text, entry);
  if (!inserted && entry.timestamp >= it->second.timestamp) {
    it->second = entry;
  }
}

const RicEntry* CandidateTable::Find(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

bool CandidateTable::IsFresh(const std::string& key, uint64_t now,
                             uint64_t validity) const {
  const RicEntry* e = Find(key);
  return e != nullptr && now - e->timestamp <= validity;
}

}  // namespace rjoin::core
