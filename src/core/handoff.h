#ifndef RJOIN_CORE_HANDOFF_H_
#define RJOIN_CORE_HANDOFF_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/interner.h"
#include "core/key.h"
#include "core/key_map.h"
#include "core/node_state.h"
#include "dht/id.h"
#include "sql/tuple.h"

namespace rjoin::core {

// ---------------------------------------------------------------------------
// State handoff on topology churn. When ring responsibility for a key range
// moves (a node joins in front of its successor, or a node leaves toward its
// successor), the old owner extracts every piece of per-key NodeState in the
// range — stored queries, value-level tuples, ALTT entries, and rate-tracker
// counters — into one HandoffBatch that travels as a StateHandoff message
// through the normal message plane (and therefore through the sharded
// runtime's per-(src, dst, round) mailbox chains). See docs/churn.md.
// ---------------------------------------------------------------------------

/// A stored (input or rewritten) query changing owners. The ProjectionSet
/// inside StoredQuery moves along, so the DISTINCT projection rule keeps its
/// memory across the handoff.
struct HandoffQuery {
  KeyId key = kInvalidKeyId;
  StoredQuery sq;
};

/// A value-level stored tuple changing owners (arrival order per key is
/// preserved by the batch's emission order). Moves a 4-byte pooled-record
/// handle, not a shared_ptr graph.
struct HandoffTuple {
  KeyId key = kInvalidKeyId;
  TupleRef tuple;
};

/// An ALTT entry changing owners. `expires` is the entry's original absolute
/// expiry, so the Section 4 Delta bound is honored across the handoff: the
/// new owner keeps the tuple exactly as long as the old owner would have.
struct HandoffAltt {
  KeyId key = kInvalidKeyId;
  AlttEntry entry;
};

/// One key's RateTracker bucket changing owners (the RIC migration policy:
/// rate observations migrate and merge; candidate-table entries do not —
/// they age out and self-heal through forwarding; see docs/churn.md).
struct RateSlice {
  KeyId key = kInvalidKeyId;
  uint64_t epoch = 0;
  uint64_t current = 0;
  uint64_t previous = 0;
};

/// Everything one responsibility transfer moves, in ring-id order.
struct HandoffBatch {
  dht::NodeIndex from = dht::kInvalidNode;  ///< the old owner
  dht::NodeId range_low;   ///< moved responsibility: ring interval
  dht::NodeId range_high;  ///< (range_low, range_high]
  uint64_t emitted_at = 0;  ///< virtual emission time (recovery metric)
  std::vector<HandoffQuery> queries;
  std::vector<HandoffTuple> tuples;
  std::vector<HandoffAltt> altt;
  std::vector<RateSlice> rates;

  /// ReplicaUpdate reuse (docs/failures.md): the keys whose replica slices
  /// this batch REPLACES at the receiver. Listed explicitly — not derived
  /// from the records — so a slice that became empty at the owner still
  /// clears the stale copy at the replica. Empty on real handoffs.
  std::vector<KeyId> replica_keys;
  /// True when this handoff is a replica promotion after a crash: the
  /// receiver installs its own surviving replica slices as the new owner
  /// (same install passes as a graceful handoff) and samples recovery
  /// rounds separately.
  bool promoted = false;

  bool empty() const {
    return queries.empty() && tuples.empty() && altt.empty() && rates.empty();
  }
  uint64_t records() const {
    return queries.size() + tuples.size() + altt.size() + rates.size();
  }

  /// Approximate wire size of the batch, for the bench's handoff-bytes
  /// series: fixed per-record overheads plus 8 bytes per tuple value.
  uint64_t ApproxBytes() const {
    uint64_t bytes = 64;  // header: from + range + emission time
    bytes += queries.size() * 64;
    for (const HandoffTuple& t : tuples) {
      bytes += 32 + 8 * (t.tuple ? t.tuple->arity : 0);
    }
    for (const HandoffAltt& a : altt) {
      bytes += 40 + 8 * (a.entry.tuple ? a.entry.tuple->arity : 0);
    }
    bytes += rates.size() * 32;
    bytes += replica_keys.size() * 4;  // interned u32 key ids
    return bytes;
  }
};

/// Sorts interned keys into ring order: (ring id, level, id). Two distinct
/// keys share a ring id only when the same text is interned at both levels
/// (level breaks the tie) or on a SHA-1 collision (id breaks it); id values
/// never decide between keys of different text in practice, so the order is
/// reproducible across processes.
inline void SortKeysByRingId(std::vector<KeyId>* keys,
                             const KeyInterner& interner) {
  std::sort(keys->begin(), keys->end(), [&](KeyId a, KeyId b) {
    const dht::NodeId& ra = interner.ring_id(a);
    const dht::NodeId& rb = interner.ring_id(b);
    if (ra != rb) return ra < rb;
    if (interner.level(a) != interner.level(b)) {
      return interner.level(a) < interner.level(b);
    }
    return a < b;
  });
}

/// Keys of `map` whose interned ring identifier falls inside the ring
/// interval (low, high], sorted by (ring id, level, id) — i.e. ring order,
/// NOT KeyIdMap iteration order, which is unspecified (see docs/keys.md).
/// This is the one definition of handoff emission order: every structure a
/// handoff extracts walks its keys through this helper, so the batch layout
/// is a pure function of the key set regardless of insertion history.
template <typename V>
std::vector<KeyId> KeysInRangeSorted(const KeyIdMap<V>& map,
                                     const KeyInterner& interner,
                                     const dht::NodeId& low,
                                     const dht::NodeId& high) {
  std::vector<KeyId> keys;
  map.ForEach([&](KeyId key, const V&) {
    if (dht::InIntervalOpenClosed(interner.ring_id(key), low, high)) {
      keys.push_back(key);
    }
  });
  SortKeysByRingId(&keys, interner);
  return keys;
}

}  // namespace rjoin::core

#endif  // RJOIN_CORE_HANDOFF_H_
