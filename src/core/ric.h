#ifndef RJOIN_CORE_RIC_H_
#define RJOIN_CORE_RIC_H_

#include <cstdint>
#include <vector>

#include "core/key.h"
#include "core/key_map.h"
#include "dht/chord_node.h"

namespace rjoin::core {

/// Rate-of-Incoming-tuples-Counting (RIC) information for one index key
/// (Section 6): how many tuples reached the responsible node under that key
/// during the last observation window, plus where that node is (its "IP").
/// Keys are interned ids, so an entry is 24 bytes and piggy-backing a
/// candidate table excerpt on a rewrite copies no strings.
struct RicEntry {
  KeyId key = kInvalidKeyId;
  dht::NodeIndex node = dht::kInvalidNode;  ///< responsible node's address
  uint64_t rate = 0;
  uint64_t timestamp = 0;  ///< when the rate was learned (T_r)
};

/// Fixed-capacity RIC piggyback (Section 7): the candidate-table excerpt a
/// QueryIndex/Rewrite message carries. Inline — a rewrite message with
/// piggyback is a flat POD, no heap vector per hop. Capacity covers one
/// entry per indexing candidate of the widest supported query
/// (kMaxQueryRels, plus slack); overflow drops deterministically
/// (TryPush keeps the first kCap in construction order, which is identical
/// across shard counts), costing at most a cache-warming hint.
struct RicVec {
  static constexpr int kCap = 12;

  uint16_t count = 0;
  RicEntry entries[kCap];

  bool TryPush(const RicEntry& e) {
    if (count >= kCap) return false;
    entries[count++] = e;
    return true;
  }
  const RicEntry* begin() const { return entries; }
  const RicEntry* end() const { return entries + count; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
};

/// Per-node tuple-arrival counter. Tracks, for every index key the node is
/// responsible for, the number of tuples received in the current and the
/// previous observation epoch; the predicted rate is their sum — i.e. "we
/// observe what has happened during the last time window and assume a
/// similar behavior for the future" (Section 6).
class RateTracker {
 public:
  explicit RateTracker(uint64_t epoch_length) : epoch_len_(epoch_length) {}

  /// Records one tuple arrival under `key` at time `now`.
  void Record(KeyId key, uint64_t now);

  /// Predicted arrivals over one observation window.
  uint64_t Rate(KeyId key, uint64_t now) const;

  /// Writes Rate(key, now) for every tracked key with a non-zero rate into
  /// `out` (missing keys read as 0). The sharded runtime freezes these
  /// snapshots at epoch barriers so worker threads can answer remote RIC
  /// lookups without reading live cross-shard state.
  void SnapshotInto(uint64_t now, KeyIdMap<uint64_t>* out) const;

  // ---- churn migration (docs/churn.md: rates migrate and merge) --------

  /// Appends every key with a live (non-zero) bucket to `out`, in the
  /// tracker's unspecified iteration order — callers sort (the handoff
  /// path sorts by ring id).
  void AppendTrackedKeys(std::vector<KeyId>* out) const;

  /// Moves `key`'s bucket out (zeroing it here). Returns false when the
  /// key is untracked or empty. The extracted epoch/current/previous
  /// triple feeds MergeSlice at the new owner.
  bool ExtractKey(KeyId key, uint64_t* epoch, uint64_t* current,
                  uint64_t* previous);

  /// Folds a migrated bucket into this tracker: both sides roll forward to
  /// the newer epoch (observations age across the handoff exactly as they
  /// would have in place), then counts add.
  void MergeSlice(KeyId key, uint64_t epoch, uint64_t current,
                  uint64_t previous);

  /// Read-only copy of `key`'s raw bucket (no roll, no zeroing). Returns
  /// false when the key is untracked or empty. The replication mirror path
  /// peeks the owner's bucket without disturbing it; the promoted owner
  /// MergeSlices the copy later.
  bool PeekKey(KeyId key, uint64_t* epoch, uint64_t* current,
               uint64_t* previous) const;

  size_t tracked_keys() const { return counts_.size(); }

 private:
  struct Bucket {
    uint64_t epoch = 0;
    uint64_t current = 0;
    uint64_t previous = 0;
  };

  void Roll(Bucket& b, uint64_t epoch) const;
  uint64_t EpochOf(uint64_t now) const {
    return epoch_len_ == 0 ? 0 : now / epoch_len_;
  }

  uint64_t epoch_len_;
  KeyIdMap<Bucket> counts_;
};

/// The candidate table (CT) of Section 7: RIC info cached per key so that
/// future indexing decisions can skip the O(log N) candidate lookup. Keeps
/// the most recent entry per key.
class CandidateTable {
 public:
  /// Inserts or refreshes; keeps the entry with the newer timestamp.
  void Merge(const RicEntry& entry);

  /// Entry for `key`, or nullptr.
  const RicEntry* Find(KeyId key) const;

  /// True if an entry exists and was learned within `validity` of `now`.
  bool IsFresh(KeyId key, uint64_t now, uint64_t validity) const;

  size_t size() const { return entries_.size(); }

 private:
  KeyIdMap<RicEntry> entries_;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_RIC_H_
