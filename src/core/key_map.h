#ifndef RJOIN_CORE_KEY_MAP_H_
#define RJOIN_CORE_KEY_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/key.h"
#include "stats/alloc_tracker.h"
#include "util/logging.h"

namespace rjoin::core {

/// Flat open-addressing map keyed by interned KeyIds. The node-state
/// buckets, rate trackers, candidate tables, and frozen RIC snapshots all
/// key by KeyId, and none of them ever erases an individual key — so the
/// map supports insert/lookup/iterate/clear only, which keeps probing
/// tombstone-free and lookups one multiply + a short linear scan (vs. the
/// string hash + chased bucket of the unordered_map<string, ...> it
/// replaces).
template <typename V>
class KeyIdMap {
 public:
  KeyIdMap() = default;

  /// Value stored under `key`, or nullptr.
  V* Find(KeyId key) {
    if (size_ == 0) return nullptr;
    size_t i = Probe(key);
    for (; slots_[i].key != kInvalidKeyId; i = Next(i)) {
      if (slots_[i].key == key) return &slots_[i].value;
    }
    return nullptr;
  }
  const V* Find(KeyId key) const {
    return const_cast<KeyIdMap*>(this)->Find(key);
  }

  /// Value under `key`, default-constructing it on first sight.
  V& operator[](KeyId key) {
    RJOIN_DCHECK(key != kInvalidKeyId);
    if (slots_.empty() || (size_ + 1) * 10 >= slots_.size() * 7) Grow();
    size_t i = Probe(key);
    for (; slots_[i].key != kInvalidKeyId; i = Next(i)) {
      if (slots_[i].key == key) return slots_[i].value;
    }
    slots_[i].key = key;
    ++size_;
    return slots_[i].value;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Drops every entry but keeps the table storage (the frozen RIC
  /// snapshots clear and refill once per epoch).
  void clear() {
    for (Slot& s : slots_) {
      if (s.key != kInvalidKeyId) {
        s.key = kInvalidKeyId;
        s.value = V{};
      }
    }
    size_ = 0;
  }

  /// Applies f(KeyId, V&) to every entry, in unspecified order. Callers
  /// must not insert or erase during the walk (mutating V is fine).
  template <typename F>
  void ForEach(F&& f) {
    for (Slot& s : slots_) {
      if (s.key != kInvalidKeyId) f(s.key, s.value);
    }
  }
  template <typename F>
  void ForEach(F&& f) const {
    for (const Slot& s : slots_) {
      if (s.key != kInvalidKeyId) f(s.key, s.value);
    }
  }

 private:
  struct Slot {
    KeyId key = kInvalidKeyId;
    V value{};
  };

  size_t Probe(KeyId key) const {
    // Fibonacci scramble: interned ids are dense small integers.
    return (static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ull) &
           (slots_.size() - 1);
  }
  size_t Next(size_t i) const { return (i + 1) & (slots_.size() - 1); }

  void Grow() {
    stats::AllocScope plane(stats::AllocPlane::kPoolCapacity);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    size_ = 0;
    for (Slot& s : old) {
      if (s.key != kInvalidKeyId) (*this)[s.key] = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace rjoin::core

#endif  // RJOIN_CORE_KEY_MAP_H_
