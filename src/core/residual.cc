#include "core/residual.h"

#include <algorithm>
#include <set>

#include "util/hash.h"
#include "util/logging.h"

namespace rjoin::core {

StatusOr<InputQueryPtr> InputQuery::Create(uint64_t query_id,
                                           dht::NodeIndex owner,
                                           uint64_t ins_time, sql::Query spec,
                                           const sql::Catalog* catalog,
                                           bool one_time) {
  auto q = std::shared_ptr<InputQuery>(new InputQuery());
  q->query_id_ = query_id;
  q->owner_ = owner;
  q->ins_time_ = ins_time;
  q->one_time_ = one_time;
  q->spec_ = std::move(spec);
  const sql::Query& s = q->spec_;

  if (s.relations.empty()) {
    return Status::InvalidArgument("query has no FROM relations");
  }
  if (s.relations.size() > static_cast<size_t>(kMaxQueryRels)) {
    return Status::Unimplemented(
        "FROM list wider than the flat residual capacity (kMaxQueryRels)");
  }
  if (s.select_list.size() > static_cast<size_t>(kMaxSelectItems)) {
    return Status::Unimplemented(
        "select list wider than the flat answer capacity (kMaxSelectItems)");
  }
  // Resolve relations: schema plus the dense TuplePool id the flat tuple
  // plane tags records with (driver-phase intern, canonical across runs).
  for (size_t i = 0; i < s.relations.size(); ++i) {
    for (size_t j = i + 1; j < s.relations.size(); ++j) {
      if (s.relations[i] == s.relations[j]) {
        return Status::Unimplemented(
            "self-joins (duplicate FROM relation) are not supported");
      }
    }
    const sql::Schema* schema = catalog->Find(s.relations[i]);
    if (schema == nullptr) {
      return Status::NotFound("unknown relation " + s.relations[i]);
    }
    q->schemas_.push_back(schema);
    q->rel_ids_[i] = TuplePool::Global().InternRelation(s.relations[i]);
  }

  auto resolve = [&](const sql::AttrRef& a, int& rel,
                     int& attr) -> Status {
    rel = q->RelIndex(a.relation);
    if (rel < 0) {
      return Status::InvalidArgument("attribute " + a.ToString() +
                                     " references relation not in FROM");
    }
    attr = q->schemas_[static_cast<size_t>(rel)]->AttrIndex(a.attribute);
    if (attr < 0) {
      return Status::InvalidArgument("unknown attribute " + a.ToString());
    }
    return Status::Ok();
  };

  for (const auto& j : s.joins) {
    ResolvedJoin rj{};
    if (auto st = resolve(j.left, rj.left_rel, rj.left_attr); !st.ok()) {
      return st;
    }
    if (auto st = resolve(j.right, rj.right_rel, rj.right_attr); !st.ok()) {
      return st;
    }
    if (rj.left_rel == rj.right_rel) {
      return Status::Unimplemented(
          "join predicate within a single relation is not supported");
    }
    q->joins_.push_back(rj);
  }
  for (const auto& sel : s.selections) {
    ResolvedSelection rs{};
    if (auto st = resolve(sel.attr, rs.rel, rs.attr); !st.ok()) return st;
    rs.value = sel.value;
    rs.value_id = ValueInterner::Global().Intern(rs.value);
    q->selections_.push_back(rs);
  }
  for (const auto& item : s.select_list) {
    ResolvedSelectItem ri;
    if (item.is_constant()) {
      ri.is_const = true;
      ri.constant = *item.constant;
      ri.constant_id = ValueInterner::Global().Intern(ri.constant);
    } else {
      if (auto st = resolve(item.attr, ri.rel, ri.attr); !st.ok()) return st;
    }
    q->select_items_.push_back(std::move(ri));
  }

  // Every relation of a multi-way query must occur in at least one
  // predicate, otherwise some residual would have no index key (pure
  // cartesian products are not expressible in RJoin's indexing scheme).
  if (s.relations.size() > 1) {
    std::vector<bool> covered(s.relations.size(), false);
    for (const auto& j : q->joins_) {
      covered[static_cast<size_t>(j.left_rel)] = true;
      covered[static_cast<size_t>(j.right_rel)] = true;
    }
    for (const auto& sel : q->selections_) {
      covered[static_cast<size_t>(sel.rel)] = true;
    }
    for (size_t i = 0; i < covered.size(); ++i) {
      if (!covered[i]) {
        return Status::InvalidArgument(
            "relation " + s.relations[i] +
            " appears in no predicate (cartesian product not supported)");
      }
    }
  }

  // Projection attribute sets for the DISTINCT rule.
  q->proj_attrs_.resize(s.relations.size());
  for (size_t rel = 0; rel < s.relations.size(); ++rel) {
    std::set<int> attrs;
    for (const auto& j : q->joins_) {
      if (j.left_rel == static_cast<int>(rel)) attrs.insert(j.left_attr);
      if (j.right_rel == static_cast<int>(rel)) attrs.insert(j.right_attr);
    }
    for (const auto& sel : q->selections_) {
      if (sel.rel == static_cast<int>(rel)) attrs.insert(sel.attr);
    }
    for (const auto& item : q->select_items_) {
      if (!item.is_const && item.rel == static_cast<int>(rel)) {
        attrs.insert(item.attr);
      }
    }
    q->proj_attrs_[rel].assign(attrs.begin(), attrs.end());
  }

  return InputQueryPtr(q);
}

int InputQuery::RelIndex(const std::string& relation) const {
  for (size_t i = 0; i < spec_.relations.size(); ++i) {
    if (spec_.relations[i] == relation) return static_cast<int>(i);
  }
  return -1;
}

const sql::Value* Residual::BoundValue(int rel, int attr) const {
  const ValueId id = BoundValueId(rel, attr);
  if (id == kInvalidValueId) return nullptr;
  return &ValueInterner::Global().value(id);
}

bool Residual::Matches(int rel, const TupleRef& t) const {
  const ValueId* cols = t.rec().columns();
  // Original selection predicates on this relation: one u32 compare each.
  for (const auto& sel : origin_->selections()) {
    if (sel.rel != rel) continue;
    if (cols[sel.attr] != sel.value_id) return false;
  }
  // Join predicates whose other side is already bound act as implied
  // selections (the rewriting of Section 3).
  for (const auto& j : origin_->joins()) {
    int my_attr, other_rel, other_attr;
    if (j.left_rel == rel) {
      my_attr = j.left_attr;
      other_rel = j.right_rel;
      other_attr = j.right_attr;
    } else if (j.right_rel == rel) {
      my_attr = j.right_attr;
      other_rel = j.left_rel;
      other_attr = j.left_attr;
    } else {
      continue;
    }
    const ValueId other = BoundValueId(other_rel, other_attr);
    if (other == kInvalidValueId) continue;  // Both sides still unbound.
    if (cols[my_attr] != other) return false;
  }
  return true;
}

bool Residual::Matches(int rel, const sql::Tuple& t) const {
  for (const auto& sel : origin_->selections()) {
    if (sel.rel != rel) continue;
    if (t.values[static_cast<size_t>(sel.attr)] != sel.value) return false;
  }
  for (const auto& j : origin_->joins()) {
    int my_attr, other_rel, other_attr;
    if (j.left_rel == rel) {
      my_attr = j.left_attr;
      other_rel = j.right_rel;
      other_attr = j.right_attr;
    } else if (j.right_rel == rel) {
      my_attr = j.right_attr;
      other_rel = j.left_rel;
      other_attr = j.left_attr;
    } else {
      continue;
    }
    const sql::Value* other = BoundValue(other_rel, other_attr);
    if (other == nullptr) continue;  // Both sides still unbound.
    if (t.values[static_cast<size_t>(my_attr)] != *other) return false;
  }
  return true;
}

namespace {
uint64_t WindowPositionOf(const sql::WindowSpec& w, const sql::Tuple& t) {
  return w.unit == sql::WindowSpec::Unit::kTime ? t.pub_time : t.seq_no;
}
uint64_t WindowPositionOf(const sql::WindowSpec& w, const TupleRef& t) {
  return w.unit == sql::WindowSpec::Unit::kTime ? t->pub_time : t->seq_no;
}

bool WindowAdmitsAt(const sql::WindowSpec& w, int num_bound,
                    uint64_t window_min, uint64_t window_max, uint64_t p) {
  if (!w.use_windows) return true;
  if (num_bound == 0) return true;  // First binding opens the window.
  const uint64_t lo = std::min(window_min, p);
  const uint64_t hi = std::max(window_max, p);
  if (w.kind == sql::WindowSpec::Kind::kSliding) {
    // The paper's rule: |start(q) - pubT(t)| + 1 <= window. We track the
    // true extremes of the partial combination, which makes the test exact
    // for out-of-order arrivals as well.
    return hi - lo + 1 <= w.size;
  }
  if (w.size == 0) return false;
  return lo / w.size == hi / w.size;  // Tumbling: same epoch.
}
}  // namespace

bool Residual::WindowAdmits(int rel, const TupleRef& t) const {
  (void)rel;
  const sql::WindowSpec& w = origin_->spec().window;
  if (!w.use_windows) return true;
  return WindowAdmitsAt(w, num_bound_, window_min_, window_max_,
                        WindowPositionOf(w, t));
}

bool Residual::WindowAdmits(int rel, const sql::Tuple& t) const {
  (void)rel;
  const sql::WindowSpec& w = origin_->spec().window;
  if (!w.use_windows) return true;
  return WindowAdmitsAt(w, num_bound_, window_min_, window_max_,
                        WindowPositionOf(w, t));
}

Residual Residual::Bind(int rel, TupleRef t) const {
  RJOIN_CHECK(!IsBound(rel)) << "relation already bound";
  Residual out = *this;
  const sql::WindowSpec& w = origin_->spec().window;
  const uint64_t p = WindowPositionOf(w, t);
  out.window_min_ = std::min(out.window_min_, p);
  out.window_max_ = std::max(out.window_max_, p);
  out.bound_[static_cast<size_t>(rel)] = std::move(t);
  out.bound_mask_ |= static_cast<uint16_t>(1u << static_cast<unsigned>(rel));
  ++out.num_bound_;
  return out;
}

Residual Residual::Bind(int rel, const sql::TuplePtr& t) const {
  return Bind(rel, TuplePool::Global().Make(t->relation, t->values,
                                            t->pub_time, t->seq_no,
                                            t->tuple_id));
}

std::vector<sql::Value> Residual::ExtractAnswer() const {
  RJOIN_CHECK(IsComplete());
  std::vector<sql::Value> row;
  row.reserve(origin_->select_items().size());
  for (const auto& item : origin_->select_items()) {
    if (item.is_const) {
      row.push_back(item.constant);
    } else {
      const sql::Value* v = BoundValue(item.rel, item.attr);
      RJOIN_CHECK(v != nullptr) << "answer from incomplete residual";
      row.push_back(*v);
    }
  }
  return row;
}

int Residual::ExtractAnswerIds(ValueId* out) const {
  RJOIN_CHECK(IsComplete());
  int n = 0;
  for (const auto& item : origin_->select_items()) {
    if (item.is_const) {
      out[n++] = item.constant_id;
    } else {
      const ValueId v = BoundValueId(item.rel, item.attr);
      RJOIN_CHECK(v != kInvalidValueId) << "answer from incomplete residual";
      out[n++] = v;
    }
  }
  return n;
}

std::string Residual::ContentFingerprint() const {
  std::string fp = std::to_string(origin_->query_id());
  for (size_t rel = 0; rel < origin_->num_relations(); ++rel) {
    fp += '#';
    const TupleRef* t = FindBound(static_cast<int>(rel));
    if (t == nullptr) continue;
    for (int attr : origin_->projection_attrs(static_cast<int>(rel))) {
      fp += t->value(attr).ToKeyString();
      fp += '|';
    }
  }
  return fp;
}

uint64_t Residual::ContentFingerprint64() const {
  // FNV-style chain over the query id and the bound projections' interned
  // value ids — the same identity ContentFingerprint() renders as text
  // (vids are injective), without touching a string.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(origin_->query_id());
  for (size_t rel = 0; rel < origin_->num_relations(); ++rel) {
    mix(0x2323232323232323ull);  // per-relation separator ('#')
    if (!IsBound(static_cast<int>(rel))) continue;
    const TupleRef& t = bound_[rel];
    for (int attr : origin_->projection_attrs(static_cast<int>(rel))) {
      mix(t.value_id(attr) + 1ull);
    }
  }
  return h;
}

sql::Query Residual::ToRewrittenQuery() const {
  // Fold the bound tuples into the original spec with the reference
  // rewriting rules (mirrors sql::Rewriter; kept independent so tests can
  // compare the two).
  sql::Query out;
  const sql::Query& spec = origin_->spec();
  out.distinct = spec.distinct;
  out.window = spec.window;
  for (size_t i = 0; i < origin_->select_items().size(); ++i) {
    const auto& item = origin_->select_items()[i];
    if (item.is_const) {
      out.select_list.push_back(sql::SelectItem::Const(item.constant));
    } else if (const sql::Value* v = BoundValue(item.rel, item.attr)) {
      out.select_list.push_back(sql::SelectItem::Const(*v));
    } else {
      out.select_list.push_back(spec.select_list[i]);
    }
  }
  for (size_t rel = 0; rel < origin_->num_relations(); ++rel) {
    if (!IsBound(static_cast<int>(rel))) {
      out.relations.push_back(spec.relations[rel]);
    }
  }
  for (const auto& j : origin_->joins()) {
    const sql::Value* l = BoundValue(j.left_rel, j.left_attr);
    const sql::Value* r = BoundValue(j.right_rel, j.right_attr);
    if (l != nullptr && r != nullptr) continue;  // Fully satisfied.
    const sql::JoinPredicate& orig =
        spec.joins[static_cast<size_t>(&j - origin_->joins().data())];
    if (l == nullptr && r == nullptr) {
      out.joins.push_back(orig);
    } else if (l != nullptr) {
      out.selections.push_back({orig.right, *l});
    } else {
      out.selections.push_back({orig.left, *r});
    }
  }
  for (size_t i = 0; i < origin_->selections().size(); ++i) {
    const auto& sel = origin_->selections()[i];
    if (IsBound(sel.rel)) continue;  // Verified at bind time.
    out.selections.push_back(spec.selections[i]);
  }
  return out;
}

}  // namespace rjoin::core
