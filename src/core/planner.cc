#include "core/planner.h"

#include <algorithm>

#include "util/logging.h"

namespace rjoin::core {

const char* PlannerPolicyName(PlannerPolicy policy) {
  switch (policy) {
    case PlannerPolicy::kFirstInClause:
      return "FirstInClause";
    case PlannerPolicy::kRandom:
      return "Random";
    case PlannerPolicy::kWorst:
      return "Worst";
    case PlannerPolicy::kRic:
      return "RJoin(RIC)";
  }
  return "Unknown";
}

namespace {
void PushUnique(std::vector<KeyId>& out, KeyId key) {
  if (std::find(out.begin(), out.end(), key) == out.end()) {
    out.push_back(key);
  }
}
}  // namespace

std::vector<KeyId> IndexingCandidates(const Residual& residual,
                                      RewriteIndexLevels levels,
                                      KeyInterner& interner) {
  std::vector<KeyId> out;
  IndexingCandidates(residual, levels, interner, &out);
  return out;
}

void IndexingCandidates(const Residual& residual, RewriteIndexLevels levels,
                        KeyInterner& interner, std::vector<KeyId>* out_ptr) {
  const InputQuery& q = *residual.origin();
  const sql::Query& spec = q.spec();
  std::vector<KeyId>& out = *out_ptr;
  out.clear();

  if (residual.IsInputQuery()) {
    // Input queries: attribute-level keys from WHERE-clause expressions, in
    // clause order (join sides first, then selections).
    for (const auto& j : spec.joins) {
      PushUnique(out,
                 interner.InternAttribute(j.left.relation, j.left.attribute));
      PushUnique(
          out, interner.InternAttribute(j.right.relation, j.right.attribute));
    }
    for (const auto& s : spec.selections) {
      PushUnique(out,
                 interner.InternAttribute(s.attr.relation, s.attr.attribute));
    }
    if (out.empty() && q.num_relations() == 1) {
      // Single-relation query with no predicates: fall back to the first
      // attribute of the relation so every tuple of it reaches the query.
      const sql::Schema& schema = q.schema(0);
      RJOIN_CHECK(schema.arity() > 0);
      out.push_back(interner.InternAttribute(q.relation_name(0),
                                             schema.attributes()[0]));
    }
    return;
  }

  // Rewritten queries — value-level candidates first.
  // (c) implied triples: join predicates with exactly one side bound.
  for (size_t i = 0; i < q.joins().size(); ++i) {
    const auto& rj = q.joins()[i];
    const sql::JoinPredicate& orig = spec.joins[i];
    const sql::Value* l = residual.BoundValue(rj.left_rel, rj.left_attr);
    const sql::Value* r = residual.BoundValue(rj.right_rel, rj.right_attr);
    if (l != nullptr && r == nullptr) {
      PushUnique(out, interner.InternValue(orig.right.relation,
                                           orig.right.attribute, *l));
    } else if (l == nullptr && r != nullptr) {
      PushUnique(out, interner.InternValue(orig.left.relation,
                                           orig.left.attribute, *r));
    }
  }
  // (b) explicit selection triples on unbound relations.
  for (size_t i = 0; i < q.selections().size(); ++i) {
    const auto& rs = q.selections()[i];
    if (residual.IsBound(rs.rel)) continue;
    const sql::SelectionPredicate& orig = spec.selections[i];
    PushUnique(out, interner.InternValue(orig.attr.relation,
                                         orig.attr.attribute, orig.value));
  }
  // (a) attribute-level pairs from join conditions still fully open. Under
  // kValuePreferred these are a fallback for residuals with no value-level
  // option (see RewriteIndexLevels for the completeness rationale).
  if (levels == RewriteIndexLevels::kValuePreferred && !out.empty()) {
    return;
  }
  for (size_t i = 0; i < q.joins().size(); ++i) {
    const auto& rj = q.joins()[i];
    if (residual.IsBound(rj.left_rel) || residual.IsBound(rj.right_rel)) {
      continue;
    }
    const sql::JoinPredicate& orig = spec.joins[i];
    PushUnique(out,
               interner.InternAttribute(orig.left.relation,
                                        orig.left.attribute));
    PushUnique(out, interner.InternAttribute(orig.right.relation,
                                             orig.right.attribute));
  }
}

}  // namespace rjoin::core
