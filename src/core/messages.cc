#include "core/messages.h"

#include <algorithm>
#include <mutex>

#include "core/handoff.h"
#include "stats/alloc_tracker.h"
#include "util/logging.h"

namespace rjoin::core {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kNone:
      return "none";
    case MessageKind::kTuplePublish:
      return "tuple_publish";
    case MessageKind::kQueryIndex:
      return "query_index";
    case MessageKind::kRewrite:
      return "rewrite";
    case MessageKind::kRicRequest:
      return "ric_request";
    case MessageKind::kRicReply:
      return "ric_reply";
    case MessageKind::kAnswerDeliver:
      return "answer_deliver";
    case MessageKind::kControl:
      return "control";
    case MessageKind::kNodeJoin:
      return "node_join";
    case MessageKind::kNodeLeave:
      return "node_leave";
    case MessageKind::kStateHandoff:
      return "state_handoff";
    case MessageKind::kReplicaUpdate:
      return "replica_update";
    case MessageKind::kNodeCrash:
      return "node_crash";
  }
  return "unknown";
}

// StateHandoff's special members live here so HandoffBatch can stay an
// incomplete type in messages.h (every Envelope user would otherwise pull
// in the whole node-state surface).
StateHandoff::StateHandoff() = default;
StateHandoff::StateHandoff(std::unique_ptr<HandoffBatch> b)
    : batch(std::move(b)) {}
StateHandoff::StateHandoff(StateHandoff&&) noexcept = default;
StateHandoff& StateHandoff::operator=(StateHandoff&&) noexcept = default;
StateHandoff::~StateHandoff() = default;

// ReplicaUpdate boxes the same batch type for the same reason.
ReplicaUpdate::ReplicaUpdate() = default;
ReplicaUpdate::ReplicaUpdate(std::unique_ptr<HandoffBatch> b)
    : batch(std::move(b)) {}
ReplicaUpdate::ReplicaUpdate(ReplicaUpdate&&) noexcept = default;
ReplicaUpdate& ReplicaUpdate::operator=(ReplicaUpdate&&) noexcept = default;
ReplicaUpdate::~ReplicaUpdate() = default;

namespace {

// Totals of pools that have been destroyed, plus a registry of live pools
// so Aggregate() can fold in their current counters. The mutex guards only
// registration and aggregation — never the per-message hot path.
std::mutex g_pools_mutex;
std::vector<const MessagePool*>& LivePools() {
  static std::vector<const MessagePool*> pools;
  return pools;
}
std::atomic<uint64_t> g_retired_envelopes_allocated{0};
std::atomic<uint64_t> g_retired_acquired{0};
std::atomic<uint64_t> g_retired_released{0};

}  // namespace

void EnvelopeRef::Reset() {
  if (env_ != nullptr) {
    MessagePool::Release(env_);
    env_ = nullptr;
  }
}

MessagePool::MessagePool(size_t slab_envelopes)
    : base_slab_size_(slab_envelopes > 0 ? slab_envelopes : 1),
      owner_(std::this_thread::get_id()) {
  std::lock_guard<std::mutex> lock(g_pools_mutex);
  LivePools().push_back(this);
}

MessagePool::~MessagePool() {
  // Deregister and fold the counters into the retired totals under one
  // lock, so a concurrent Aggregate() sees the pool either live or
  // retired — never both (which would double-count it).
  std::lock_guard<std::mutex> lock(g_pools_mutex);
  auto& pools = LivePools();
  for (size_t i = 0; i < pools.size(); ++i) {
    if (pools[i] == this) {
      pools[i] = pools.back();
      pools.pop_back();
      break;
    }
  }
  g_retired_envelopes_allocated.fetch_add(
      envelopes_allocated_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  g_retired_acquired.fetch_add(acquired_.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  g_retired_released.fetch_add(released_.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
}

Envelope* MessagePool::NewEnvelope() {
  // Slab growth is capacity acquisition (only while the in-flight
  // high-water mark rises), not per-envelope traffic — charge it to the
  // capacity plane so the per-record message plane stays a clean ratchet.
  stats::AllocScope plane(stats::AllocPlane::kPoolCapacity);
  if (slabs_.empty() || last_slab_used_ == last_slab_size_) {
    // Doubling growth (capped): a still-rising in-flight high-water mark
    // costs O(log) slabs, not linear in envelopes.
    last_slab_size_ = slabs_.empty()
                          ? base_slab_size_
                          : std::min(last_slab_size_ * 2, kMaxSlabEnvelopes);
    slabs_.push_back(std::make_unique<Envelope[]>(last_slab_size_));
    last_slab_used_ = 0;
    slabs_allocated_.fetch_add(1, std::memory_order_relaxed);
  }
  Envelope* env = &slabs_.back()[last_slab_used_++];
  env->origin = this;
  envelopes_allocated_.fetch_add(1, std::memory_order_relaxed);
  return env;
}

EnvelopeRef MessagePool::Acquire() {
  acquired_.fetch_add(1, std::memory_order_relaxed);
  Envelope* env = free_;
  if (env == nullptr) {
    // Reclaim everything other threads returned since the last miss.
    env = remote_free_.exchange(nullptr, std::memory_order_acquire);
  }
  if (env != nullptr) {
    free_ = env->link;
    env->link = nullptr;
    recycled_.fetch_add(1, std::memory_order_relaxed);
  } else {
    env = NewEnvelope();
  }
  // Hand out a clean envelope; Release() already dropped the payload.
  env->time = 0;
  env->src = dht::kInvalidNode;
  env->seq = 0;
  env->order = 0;
  env->dst = dht::kInvalidNode;
  env->emit_time = 0;
  env->route_key_id = kInvalidKeyId;
  env->stage = EnvelopeStage::kDeliver;
  env->ric = false;
  env->group = nullptr;
  return EnvelopeRef(env);
}

void MessagePool::Release(Envelope* env) {
  // An envelope may still carry a MultiSend chain behind it (teardown of a
  // never-dispatched batch); `link` doubles as the freelist pointer, so
  // walk the chain before repurposing it.
  while (env != nullptr) {
    Envelope* next = env->link;
    if (env->group != nullptr) {
      // Coalesced delivery group still attached (teardown of an undelivered
      // group head): splice the members — themselves link-chained — into the
      // pending walk so each returns to its own origin pool exactly once.
      Envelope* tail = env->group;
      while (tail->link != nullptr) tail = tail->link;
      tail->link = next;
      next = env->group;
      env->group = nullptr;
    }
    RJOIN_DCHECK(env->origin != nullptr);
    env->task.Reset();  // free payload internals on the releasing thread
    MessagePool* pool = env->origin;
    pool->released_.fetch_add(1, std::memory_order_relaxed);
    if (std::this_thread::get_id() == pool->owner_) {
      env->link = pool->free_;
      pool->free_ = env;
    } else {
      Envelope* head = pool->remote_free_.load(std::memory_order_relaxed);
      do {
        env->link = head;
      } while (!pool->remote_free_.compare_exchange_weak(
          head, env, std::memory_order_release, std::memory_order_relaxed));
    }
    env = next;
  }
}

MessagePool::Stats MessagePool::stats() const {
  Stats s;
  s.slabs_allocated = slabs_allocated_.load(std::memory_order_relaxed);
  s.envelopes_allocated =
      envelopes_allocated_.load(std::memory_order_relaxed);
  s.acquired = acquired_.load(std::memory_order_relaxed);
  s.recycled = recycled_.load(std::memory_order_relaxed);
  s.released = released_.load(std::memory_order_relaxed);
  return s;
}

MessagePool::GlobalStats MessagePool::Aggregate() {
  GlobalStats g;
  // Retired totals and the live list are read under the same lock the
  // destructor folds them under, so every pool counts exactly once.
  std::lock_guard<std::mutex> lock(g_pools_mutex);
  g.envelopes_allocated =
      g_retired_envelopes_allocated.load(std::memory_order_relaxed);
  g.acquired = g_retired_acquired.load(std::memory_order_relaxed);
  g.released = g_retired_released.load(std::memory_order_relaxed);
  for (const MessagePool* pool : LivePools()) {
    g.envelopes_allocated +=
        pool->envelopes_allocated_.load(std::memory_order_relaxed);
    g.acquired += pool->acquired_.load(std::memory_order_relaxed);
    g.released += pool->released_.load(std::memory_order_relaxed);
  }
  return g;
}

}  // namespace rjoin::core
