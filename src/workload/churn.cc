#include "workload/churn.h"

#include <algorithm>
#include <string>

#include "util/random.h"

namespace rjoin::workload {

std::vector<ChurnEvent> GenerateChurnTrace(const ChurnSpec& spec,
                                           size_t num_tuples,
                                           sim::SimTime start,
                                           sim::SimTime span, uint64_t seed,
                                           size_t* resolved_joins,
                                           size_t* resolved_leaves,
                                           size_t* resolved_crashes) {
  size_t joins = spec.joins;
  size_t leaves = spec.leaves;
  if (joins == 0 && leaves == 0 && spec.rate > 0.0) {
    const size_t total = std::max<size_t>(
        1, static_cast<size_t>(spec.rate * static_cast<double>(num_tuples)));
    joins = (total + 1) / 2;
    leaves = total / 2;
  }
  // A removal needs a victim: spares exist from the start, joined nodes
  // only after their join. Leaves claim the supply first, crashes take the
  // remainder. Rejoin joins are excluded from the supply — a node that
  // joins to replace a crash victim is not itself re-killed.
  leaves = std::min(leaves, spec.spare_nodes + joins);
  size_t crashes =
      spec.faults.has_value()
          ? std::min(spec.faults->crashes, spec.spare_nodes + joins - leaves)
          : 0;
  if (resolved_joins != nullptr) *resolved_joins = joins;
  if (resolved_leaves != nullptr) *resolved_leaves = leaves;
  if (resolved_crashes != nullptr) *resolved_crashes = crashes;

  const uint32_t correlated =
      spec.faults.has_value() ? spec.faults->correlated : 0;
  const bool crash_during_handoff =
      spec.faults.has_value() && spec.faults->crash_during_handoff;
  const bool crash_then_rejoin =
      spec.faults.has_value() && spec.faults->crash_then_rejoin;

  std::vector<ChurnEvent> events;
  const size_t removals = leaves + crashes;
  const size_t total_ops = joins + removals;
  if (total_ops == 0 || span == 0) return events;

  // Mixing the fault seed leaves fault-free traces bit-identical to the
  // pre-FaultPlan generator.
  uint64_t trace_seed = seed;
  if (spec.faults.has_value() && spec.faults->seed != 0) {
    trace_seed ^= spec.faults->seed * 0x9e3779b97f4a7c15ull;
  }
  Rng rng(trace_seed * 0x9e3779b9u + 0xc424c1);
  const sim::SimTime slot = std::max<sim::SimTime>(1, span / (total_ops + 1));

  // Interleave joins and removals across the evenly spaced slots. Removals
  // consume the victim sequence in order: spares first (removable from the
  // start), then joined nodes — pushed past join_time + settle_ticks.
  std::vector<sim::SimTime> join_times;
  join_times.reserve(joins);
  size_t joins_emitted = 0;
  size_t leaves_emitted = 0;
  size_t crashes_emitted = 0;
  size_t next_victim = 0;
  sim::SimTime last_handoff_t = 0;  // time of the latest join/leave emitted
  sim::SimTime max_t = 0;
  std::vector<sim::SimTime> rejoin_times;  // crash times, for rejoin joins
  for (size_t op = 0; op < total_ops; ++op) {
    // Slot base time with a little seeded jitter (never before `start`).
    sim::SimTime t = start + (op + 1) * slot;
    t += rng.NextBounded(std::max<sim::SimTime>(1, slot / 2));

    // Alternate join/removal while both remain; spill the leftovers.
    const size_t removals_emitted = leaves_emitted + crashes_emitted;
    const bool pick_join =
        joins_emitted < joins &&
        (removals_emitted >= removals || op % 2 == 0 ||
         // Removals beyond the spare supply need an already-scheduled join.
         (next_victim >= spec.spare_nodes &&
          next_victim - spec.spare_nodes >= joins_emitted));

    ChurnEvent e;
    e.time = t;
    if (pick_join) {
      e.kind = ChurnOpKind::kJoin;
      e.join_id = dht::NodeId::FromKey("churn-join:" +
                                       std::to_string(trace_seed) + ":" +
                                       std::to_string(joins_emitted));
      join_times.push_back(t);
      ++joins_emitted;
      last_handoff_t = e.time;
    } else {
      // Within removals, leaves and crashes alternate (leave first).
      const bool pick_crash =
          crashes_emitted < crashes &&
          (leaves_emitted >= leaves || removals_emitted % 2 == 1);
      e.kind = pick_crash ? ChurnOpKind::kCrash : ChurnOpKind::kLeave;
      e.victim_slot = next_victim;
      if (next_victim >= spec.spare_nodes) {
        // Victim is the (next_victim - spares)-th joined node: it must
        // exist, and a graceful leave additionally waits out the settle
        // gap. A handoff-racing crash strikes right after the join
        // instead, while that join's state transfer may be in flight.
        const sim::SimTime join_t =
            join_times[next_victim - spec.spare_nodes];
        const uint64_t gap =
            pick_crash && crash_during_handoff ? 1 : spec.settle_ticks;
        e.time = std::max<sim::SimTime>(e.time, join_t + gap);
      }
      if (pick_crash) {
        e.crash_successors = correlated;
        if (crash_during_handoff && last_handoff_t != 0) {
          // Race the previous operation's handoff: strike one tick after
          // it was scheduled, while its StateHandoff is still in flight.
          e.time = std::max<sim::SimTime>(last_handoff_t + 1,
                                          next_victim >= spec.spare_nodes
                                              ? join_times[next_victim -
                                                           spec.spare_nodes] +
                                                    1
                                              : start + 1);
        }
        if (crash_then_rejoin) rejoin_times.push_back(e.time);
        ++crashes_emitted;
      } else {
        ++leaves_emitted;
        last_handoff_t = e.time;
      }
      ++next_victim;
    }
    max_t = std::max(max_t, e.time);
    events.push_back(e);
  }

  // Rejoin joins land after every slotted operation, keeping join order
  // aligned with time order (victim-slot resolution depends on it). Each
  // replaces a crash victim's share of the ring once the dust settles.
  sim::SimTime rejoin_t = max_t;
  for (sim::SimTime crash_t : rejoin_times) {
    rejoin_t = std::max(rejoin_t + 1, crash_t + spec.settle_ticks);
    ChurnEvent e;
    e.time = rejoin_t;
    e.kind = ChurnOpKind::kJoin;
    e.join_id = dht::NodeId::FromKey("churn-join:" +
                                     std::to_string(trace_seed) + ":" +
                                     std::to_string(joins_emitted));
    ++joins_emitted;
    events.push_back(e);
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

}  // namespace rjoin::workload
