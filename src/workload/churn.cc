#include "workload/churn.h"

#include <algorithm>
#include <string>

#include "util/random.h"

namespace rjoin::workload {

std::vector<ChurnEvent> GenerateChurnTrace(const ChurnSpec& spec,
                                           size_t num_tuples,
                                           sim::SimTime start,
                                           sim::SimTime span, uint64_t seed,
                                           size_t* resolved_joins,
                                           size_t* resolved_leaves) {
  size_t joins = spec.joins;
  size_t leaves = spec.leaves;
  if (joins == 0 && leaves == 0 && spec.rate > 0.0) {
    const size_t total = std::max<size_t>(
        1, static_cast<size_t>(spec.rate * static_cast<double>(num_tuples)));
    joins = (total + 1) / 2;
    leaves = total / 2;
  }
  // A leave needs a victim: spares exist from the start, joined nodes only
  // after their join. Clamp to the supply.
  leaves = std::min(leaves, spec.spare_nodes + joins);
  if (resolved_joins != nullptr) *resolved_joins = joins;
  if (resolved_leaves != nullptr) *resolved_leaves = leaves;

  std::vector<ChurnEvent> events;
  const size_t total_ops = joins + leaves;
  if (total_ops == 0 || span == 0) return events;

  Rng rng(seed * 0x9e3779b9u + 0xc424c1);
  const sim::SimTime slot = std::max<sim::SimTime>(1, span / (total_ops + 1));

  // Interleave joins and leaves across the evenly spaced slots. Leaves
  // consume the victim sequence in order: spares first (leavable from the
  // start), then joined nodes — pushed past join_time + settle_ticks.
  std::vector<sim::SimTime> join_times;
  join_times.reserve(joins);
  size_t joins_emitted = 0;
  size_t leaves_emitted = 0;
  size_t next_victim = 0;
  for (size_t op = 0; op < total_ops; ++op) {
    // Slot base time with a little seeded jitter (never before `start`).
    sim::SimTime t = start + (op + 1) * slot;
    t += rng.NextBounded(std::max<sim::SimTime>(1, slot / 2));

    // Alternate join/leave while both remain; spill the leftovers.
    const bool pick_join =
        joins_emitted < joins &&
        (leaves_emitted >= leaves || op % 2 == 0 ||
         // Leaves beyond the spare supply need an already-scheduled join.
         (next_victim >= spec.spare_nodes &&
          next_victim - spec.spare_nodes >= joins_emitted));

    ChurnEvent e;
    e.time = t;
    if (pick_join) {
      e.is_join = true;
      e.join_id = dht::NodeId::FromKey("churn-join:" + std::to_string(seed) +
                                       ":" + std::to_string(joins_emitted));
      join_times.push_back(t);
      ++joins_emitted;
    } else {
      e.is_join = false;
      e.victim_slot = next_victim;
      if (next_victim >= spec.spare_nodes) {
        // Victim is the (next_victim - spares)-th joined node: keep the
        // leave at least settle_ticks after that join.
        const sim::SimTime join_t =
            join_times[next_victim - spec.spare_nodes];
        e.time = std::max<sim::SimTime>(e.time, join_t + spec.settle_ticks);
      }
      ++next_victim;
      ++leaves_emitted;
    }
    events.push_back(e);
  }

  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return a.time < b.time;
            });
  return events;
}

}  // namespace rjoin::workload
