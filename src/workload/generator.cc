#include "workload/generator.h"

#include <algorithm>

#include "util/logging.h"

namespace rjoin::workload {

std::unique_ptr<sql::Catalog> BuildCatalog(const WorkloadParams& params) {
  auto catalog = std::make_unique<sql::Catalog>();
  for (size_t r = 0; r < params.num_relations; ++r) {
    std::vector<std::string> attrs;
    attrs.reserve(params.num_attributes);
    for (size_t a = 0; a < params.num_attributes; ++a) {
      attrs.push_back("A" + std::to_string(a));
    }
    auto status = catalog->AddRelation(
        sql::Schema("R" + std::to_string(r), std::move(attrs)));
    RJOIN_CHECK(status.ok());
  }
  return catalog;
}

TupleGenerator::TupleGenerator(const WorkloadParams& params,
                               const sql::Catalog* catalog, uint64_t seed)
    : params_(params),
      catalog_(catalog),
      rng_(seed),
      relation_dist_(params.num_relations, params.zipf_theta),
      value_dist_(static_cast<uint64_t>(params.num_values),
                  params.zipf_theta) {}

TupleGenerator::Draw TupleGenerator::Next() {
  Draw d;
  const uint64_t rel_rank = relation_dist_.Sample(rng_);
  d.relation = catalog_->relation_names()[rel_rank];
  const sql::Schema* schema = catalog_->Find(d.relation);
  d.values.reserve(schema->arity());
  for (size_t i = 0; i < schema->arity(); ++i) {
    d.values.push_back(
        sql::Value::Int(static_cast<int64_t>(value_dist_.Sample(rng_))));
  }
  return d;
}

std::vector<TupleGenerator::Batch> TupleGenerator::NextBatch(size_t n) {
  std::vector<Batch> batches;
  for (size_t i = 0; i < n; ++i) {
    Draw d = Next();
    auto it = std::find_if(batches.begin(), batches.end(), [&](const Batch& b) {
      return b.relation == d.relation;
    });
    if (it == batches.end()) {
      batches.push_back(Batch{std::move(d.relation), {}});
      it = std::prev(batches.end());
    }
    it->rows.push_back(std::move(d.values));
  }
  return batches;
}

QueryGenerator::QueryGenerator(const WorkloadParams& params,
                               const sql::Catalog* catalog, uint64_t seed)
    : params_(params), catalog_(catalog), rng_(seed) {}

sql::Query QueryGenerator::Next(int way, const sql::WindowSpec& window) {
  RJOIN_CHECK(way >= 2) << "chain joins need at least two relations";
  RJOIN_CHECK(static_cast<size_t>(way) <= params_.num_relations)
      << "way exceeds number of distinct relations";

  // Random distinct relations (partial Fisher-Yates over relation ranks).
  std::vector<size_t> ranks(params_.num_relations);
  for (size_t i = 0; i < ranks.size(); ++i) ranks[i] = i;
  for (int i = 0; i < way; ++i) {
    const size_t j =
        static_cast<size_t>(i) +
        rng_.NextBounded(ranks.size() - static_cast<size_t>(i));
    std::swap(ranks[static_cast<size_t>(i)], ranks[j]);
  }

  sql::Query q;
  q.window = window;
  for (int i = 0; i < way; ++i) {
    q.relations.push_back(catalog_->relation_names()[ranks[static_cast<size_t>(i)]]);
  }

  auto random_attr = [&](const std::string& rel) -> std::string {
    const sql::Schema* schema = catalog_->Find(rel);
    return schema->attributes()[rng_.NextBounded(schema->arity())];
  };

  // Chain: adjacent predicates share a relation.
  for (int i = 0; i + 1 < way; ++i) {
    sql::JoinPredicate j;
    j.left = {q.relations[static_cast<size_t>(i)],
              random_attr(q.relations[static_cast<size_t>(i)])};
    j.right = {q.relations[static_cast<size_t>(i + 1)],
               random_attr(q.relations[static_cast<size_t>(i + 1)])};
    q.joins.push_back(std::move(j));
  }

  // Select list: one attribute from each end of the chain.
  q.select_list.push_back(sql::SelectItem::Attr(
      {q.relations.front(), random_attr(q.relations.front())}));
  q.select_list.push_back(sql::SelectItem::Attr(
      {q.relations.back(), random_attr(q.relations.back())}));
  return q;
}

}  // namespace rjoin::workload
