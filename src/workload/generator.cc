#include "workload/generator.h"

#include <algorithm>

#include "util/logging.h"

namespace rjoin::workload {

std::unique_ptr<sql::Catalog> BuildCatalog(const WorkloadParams& params) {
  auto catalog = std::make_unique<sql::Catalog>();
  for (size_t r = 0; r < params.num_relations; ++r) {
    std::vector<std::string> attrs;
    attrs.reserve(params.num_attributes);
    for (size_t a = 0; a < params.num_attributes; ++a) {
      attrs.push_back("A" + std::to_string(a));
    }
    auto status = catalog->AddRelation(
        sql::Schema("R" + std::to_string(r), std::move(attrs)));
    RJOIN_CHECK(status.ok());
  }
  return catalog;
}

TupleGenerator::TupleGenerator(const WorkloadParams& params,
                               const sql::Catalog* catalog, uint64_t seed)
    : params_(params),
      catalog_(catalog),
      rng_(seed),
      relation_dist_(params.num_relations, params.zipf_theta),
      value_dist_(static_cast<uint64_t>(params.num_values),
                  params.zipf_theta) {}

TupleGenerator::Draw TupleGenerator::Next() {
  Draw d;
  Next(&d);
  return d;
}

void TupleGenerator::Next(Draw* out) {
  const uint64_t rel_rank = relation_dist_.Sample(rng_);
  out->relation = catalog_->relation_names()[rel_rank];
  const sql::Schema* schema = catalog_->Find(out->relation);
  out->values.clear();
  out->values.reserve(schema->arity());
  for (size_t i = 0; i < schema->arity(); ++i) {
    out->values.push_back(
        sql::Value::Int(static_cast<int64_t>(value_dist_.Sample(rng_))));
  }
}

std::vector<TupleGenerator::Batch> TupleGenerator::NextBatch(size_t n) {
  std::vector<Batch> batches;
  NextBatch(n, &batches);
  return batches;
}

void TupleGenerator::NextBatch(size_t n, std::vector<Batch>* out) {
  std::vector<Batch>& batches = *out;
  used_.assign(batches.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t rel_rank = relation_dist_.Sample(rng_);
    const std::string& relation = catalog_->relation_names()[rel_rank];
    size_t b = 0;
    while (b < batches.size() && batches[b].relation != relation) ++b;
    if (b == batches.size()) {
      batches.push_back(Batch{relation, {}});
      used_.push_back(0);
    }
    Batch& batch = batches[b];
    // Refill an existing row slot when one is free; its value vector keeps
    // its capacity, so a warm buffer draws without reallocating.
    if (used_[b] == batch.rows.size()) batch.rows.emplace_back();
    std::vector<sql::Value>& row = batch.rows[used_[b]++];
    row.clear();
    const sql::Schema* schema = catalog_->Find(relation);
    row.reserve(schema->arity());
    for (size_t a = 0; a < schema->arity(); ++a) {
      row.push_back(
          sql::Value::Int(static_cast<int64_t>(value_dist_.Sample(rng_))));
    }
  }
  // Consumers see exactly the rows drawn this round: trim unused trailing
  // slots and drop batches whose relation drew nothing.
  for (size_t b = 0; b < batches.size(); ++b) {
    batches[b].rows.resize(used_[b]);
  }
  batches.erase(std::remove_if(batches.begin(), batches.end(),
                               [](const Batch& b) { return b.rows.empty(); }),
                batches.end());
}

QueryGenerator::QueryGenerator(const WorkloadParams& params,
                               const sql::Catalog* catalog, uint64_t seed)
    : params_(params), catalog_(catalog), rng_(seed) {}

sql::Query QueryGenerator::Next(int way, const sql::WindowSpec& window) {
  RJOIN_CHECK(way >= 2) << "chain joins need at least two relations";
  RJOIN_CHECK(static_cast<size_t>(way) <= params_.num_relations)
      << "way exceeds number of distinct relations";

  // Random distinct relations (partial Fisher-Yates over relation ranks).
  std::vector<size_t> ranks(params_.num_relations);
  for (size_t i = 0; i < ranks.size(); ++i) ranks[i] = i;
  for (int i = 0; i < way; ++i) {
    const size_t j =
        static_cast<size_t>(i) +
        rng_.NextBounded(ranks.size() - static_cast<size_t>(i));
    std::swap(ranks[static_cast<size_t>(i)], ranks[j]);
  }

  sql::Query q;
  q.window = window;
  for (int i = 0; i < way; ++i) {
    q.relations.push_back(catalog_->relation_names()[ranks[static_cast<size_t>(i)]]);
  }

  auto random_attr = [&](const std::string& rel) -> std::string {
    const sql::Schema* schema = catalog_->Find(rel);
    return schema->attributes()[rng_.NextBounded(schema->arity())];
  };

  // Chain: adjacent predicates share a relation.
  for (int i = 0; i + 1 < way; ++i) {
    sql::JoinPredicate j;
    j.left = {q.relations[static_cast<size_t>(i)],
              random_attr(q.relations[static_cast<size_t>(i)])};
    j.right = {q.relations[static_cast<size_t>(i + 1)],
               random_attr(q.relations[static_cast<size_t>(i + 1)])};
    q.joins.push_back(std::move(j));
  }

  // Select list: one attribute from each end of the chain.
  q.select_list.push_back(sql::SelectItem::Attr(
      {q.relations.front(), random_attr(q.relations.front())}));
  q.select_list.push_back(sql::SelectItem::Attr(
      {q.relations.back(), random_attr(q.relations.back())}));
  return q;
}

}  // namespace rjoin::workload
