#ifndef RJOIN_WORKLOAD_GENERATOR_H_
#define RJOIN_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sql/query.h"
#include "sql/schema.h"
#include "sql/value.h"
#include "util/random.h"
#include "util/zipf.h"

namespace rjoin::workload {

/// Parameters of the paper's synthetic workload (Section 8): a schema of 10
/// relations with 10 attributes each, every attribute over a domain of 100
/// values; tuples drawn with Zipf(theta = 0.9) both for the relation and for
/// each attribute value.
struct WorkloadParams {
  size_t num_relations = 10;
  size_t num_attributes = 10;
  int64_t num_values = 100;
  double zipf_theta = 0.9;
};

/// Builds the catalog: relations "R0".."R<n-1>", attributes "A0".."A<k-1>".
std::unique_ptr<sql::Catalog> BuildCatalog(const WorkloadParams& params);

/// Draws tuples per the paper: the relation by Zipf over relation ranks,
/// then each attribute value by Zipf over the value domain.
class TupleGenerator {
 public:
  TupleGenerator(const WorkloadParams& params, const sql::Catalog* catalog,
                 uint64_t seed);

  /// One tuple draw: relation name + values (arity of that relation).
  struct Draw {
    std::string relation;
    std::vector<sql::Value> values;
  };
  Draw Next();

  /// Draw into a caller-owned buffer: the relation string and value vector
  /// keep their capacity, so a streaming loop reusing one Draw never
  /// allocates per tuple.
  void Next(Draw* out);

  /// `n` draws grouped by relation (draw order preserved within each
  /// group) — the shape RJoinEngine::PublishBatch and
  /// ObserveStreamHistoryBulk consume. Groups appear in first-draw order.
  struct Batch {
    std::string relation;
    std::vector<std::vector<sql::Value>> rows;
  };
  std::vector<Batch> NextBatch(size_t n);

  /// NextBatch into a caller-owned buffer: batch entries and their row
  /// vectors are refilled slot by slot, so a warm buffer regenerates a
  /// batch without reallocating row vectors. Starting from an empty buffer
  /// produces exactly the returning form's output (first-draw order).
  void NextBatch(size_t n, std::vector<Batch>* out);

 private:
  const WorkloadParams params_;
  const sql::Catalog* catalog_;
  Rng rng_;
  ZipfDistribution relation_dist_;
  ZipfDistribution value_dist_;
  std::vector<size_t> used_;  ///< per-batch fill cursor (NextBatch scratch)
};

/// Generates k-way chain joins in the paper's shape:
///   R.A = S.B and S.C = J.F and J.C = K.D
/// — adjacent join predicates share a relation; relations and attributes are
/// chosen randomly; the select list picks one attribute from the first and
/// one from the last relation.
class QueryGenerator {
 public:
  QueryGenerator(const WorkloadParams& params, const sql::Catalog* catalog,
                 uint64_t seed);

  /// A `way`-way join (way >= 2 relations, way-1 predicates). Optionally
  /// attaches the same window spec to every query (the Fig. 7/8 setup).
  sql::Query Next(int way, const sql::WindowSpec& window = {});

 private:
  const WorkloadParams params_;
  const sql::Catalog* catalog_;
  Rng rng_;
};

}  // namespace rjoin::workload

#endif  // RJOIN_WORKLOAD_GENERATOR_H_
