#ifndef RJOIN_WORKLOAD_CHURN_H_
#define RJOIN_WORKLOAD_CHURN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "dht/id.h"
#include "sim/time.h"

namespace rjoin::workload {

/// Fault-injection parameters layered on top of a churn trace: silent
/// crashes (no goodbye, no handoff — docs/failures.md) woven between the
/// graceful joins and leaves. A crash consumes a victim slot exactly like a
/// leave, so crashes never strand a query owner or publisher by themselves;
/// `correlated` additionally takes down ring-adjacent successors, which may
/// hit participants — that is the worst case the replication factor is
/// sized against.
struct FaultPlan {
  /// Number of silent-crash events in the trace.
  size_t crashes = 0;

  /// Extra adjacent successors killed together with each crash victim
  /// (correlated failure). With replication factor r, `correlated >= r - 1`
  /// can destroy every replica of a key range.
  uint32_t correlated = 0;

  /// Pin each crash 1 tick after the previous join/leave, so the crash
  /// races that operation's in-flight state handoff.
  bool crash_during_handoff = false;

  /// Follow every crash with a fresh join, exercising handoff of promoted
  /// state to a node that lands inside the recovered region.
  bool crash_then_rejoin = false;

  /// Extra seed mixed into the trace rng; 0 keeps the plain churn seed.
  uint64_t seed = 0;
};

/// Churn parameters of an experiment: how many nodes join and leave while
/// the tuple stream is running. The trace is generated up front (a pure
/// function of these parameters), then scheduled as in-band NodeJoin /
/// NodeLeave messages, so every run — serial or sharded, any shard count —
/// sees the same topology mutations at the same virtual instants.
struct ChurnSpec {
  /// Churn operations per published tuple (joins + leaves combined). Used
  /// only when `joins`/`leaves` are both 0; RJOIN_CHURN sets this knob
  /// from the environment when the config leaves churn unset.
  double rate = 0.0;

  /// Explicit operation counts (override `rate` when non-zero).
  size_t joins = 0;
  size_t leaves = 0;

  /// Extra nodes created at startup purely as leave victims. They are
  /// excluded from query-owner/publisher placement, so a departing spare
  /// never strands an answer destination. Leaves target spares first, then
  /// previously joined nodes (join-then-leave churn).
  size_t spare_nodes = 0;

  /// Minimum virtual-time gap between a node's join and its own leave
  /// (lets the join's handoff land before the state moves again in the
  /// common case; chained handoffs are still handled).
  uint64_t settle_ticks = 64;

  /// Trace seed; 0 derives one from the experiment seed.
  uint64_t seed = 0;

  /// Silent-failure injection (crashes interleaved with the churn ops);
  /// absent means a purely graceful trace — the historical behavior,
  /// bit-identical to traces generated before faults existed.
  std::optional<FaultPlan> faults;
};

/// What one scheduled churn operation does to the ring.
enum class ChurnOpKind : uint8_t {
  kJoin,   ///< a new node joins (graceful, with handoff)
  kLeave,  ///< a node departs gracefully (goodbye + handoff)
  kCrash,  ///< a node fails silently (no goodbye, no handoff)
};

/// One scheduled churn operation. Leaves and crashes reference a *victim
/// slot* rather than a node index: slot k is the k-th entry of the victim
/// sequence (all spares in creation order, then joined nodes in join
/// order), which the experiment resolves to concrete indices — spares
/// exist up front and joined nodes get sequential indices in application
/// order.
struct ChurnEvent {
  sim::SimTime time = 0;
  ChurnOpKind kind = ChurnOpKind::kLeave;
  dht::NodeId join_id;          ///< ring position (join only)
  size_t victim_slot = 0;       ///< victim-sequence slot (leave/crash only)
  uint32_t crash_successors = 0;  ///< extra adjacent kills (crash only)
};

/// Builds a deterministic churn trace across the virtual interval
/// [start, start + span): operations are evenly spaced with seeded jitter,
/// joins and removals (leaves, then any FaultPlan crashes) interleave, and
/// a removal of a joined node is pushed to at least that join's time +
/// settle_ticks (crashes with `crash_during_handoff` instead race the
/// previous operation's handoff). Returns events in non-decreasing time
/// order. `resolved_joins`/`resolved_leaves`/`resolved_crashes` receive
/// the actual counts after clamping (removals never exceed the available
/// victim supply: spares + joins).
std::vector<ChurnEvent> GenerateChurnTrace(const ChurnSpec& spec,
                                           size_t num_tuples,
                                           sim::SimTime start,
                                           sim::SimTime span, uint64_t seed,
                                           size_t* resolved_joins,
                                           size_t* resolved_leaves,
                                           size_t* resolved_crashes = nullptr);

}  // namespace rjoin::workload

#endif  // RJOIN_WORKLOAD_CHURN_H_
