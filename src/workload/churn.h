#ifndef RJOIN_WORKLOAD_CHURN_H_
#define RJOIN_WORKLOAD_CHURN_H_

#include <cstdint>
#include <vector>

#include "dht/id.h"
#include "sim/time.h"

namespace rjoin::workload {

/// Churn parameters of an experiment: how many nodes join and leave while
/// the tuple stream is running. The trace is generated up front (a pure
/// function of these parameters), then scheduled as in-band NodeJoin /
/// NodeLeave messages, so every run — serial or sharded, any shard count —
/// sees the same topology mutations at the same virtual instants.
struct ChurnSpec {
  /// Churn operations per published tuple (joins + leaves combined). Used
  /// only when `joins`/`leaves` are both 0; RJOIN_CHURN sets this knob
  /// from the environment when the config leaves churn unset.
  double rate = 0.0;

  /// Explicit operation counts (override `rate` when non-zero).
  size_t joins = 0;
  size_t leaves = 0;

  /// Extra nodes created at startup purely as leave victims. They are
  /// excluded from query-owner/publisher placement, so a departing spare
  /// never strands an answer destination. Leaves target spares first, then
  /// previously joined nodes (join-then-leave churn).
  size_t spare_nodes = 0;

  /// Minimum virtual-time gap between a node's join and its own leave
  /// (lets the join's handoff land before the state moves again in the
  /// common case; chained handoffs are still handled).
  uint64_t settle_ticks = 64;

  /// Trace seed; 0 derives one from the experiment seed.
  uint64_t seed = 0;
};

/// One scheduled churn operation. Leaves reference a *victim slot* rather
/// than a node index: slot k is the k-th entry of the victim sequence
/// (all spares in creation order, then joined nodes in join order), which
/// the experiment resolves to concrete indices — spares exist up front and
/// joined nodes get sequential indices in application order.
struct ChurnEvent {
  sim::SimTime time = 0;
  bool is_join = false;
  dht::NodeId join_id;      ///< ring position (join only)
  size_t victim_slot = 0;   ///< victim-sequence slot (leave only)
};

/// Builds a deterministic churn trace across the virtual interval
/// [start, start + span): operations are evenly spaced with seeded jitter,
/// joins and leaves interleave, and a leave of a joined node is pushed to
/// at least that join's time + settle_ticks. Returns events in
/// non-decreasing time order. `resolved_joins`/`resolved_leaves` receive
/// the actual counts after clamping (leaves never exceed the available
/// victim supply: spares + joins).
std::vector<ChurnEvent> GenerateChurnTrace(const ChurnSpec& spec,
                                           size_t num_tuples,
                                           sim::SimTime start,
                                           sim::SimTime span, uint64_t seed,
                                           size_t* resolved_joins,
                                           size_t* resolved_leaves);

}  // namespace rjoin::workload

#endif  // RJOIN_WORKLOAD_CHURN_H_
