#include "workload/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/logging.h"

namespace rjoin::workload {

void ExperimentConfig::ApplyScale(double factor) {
  if (factor == 1.0) return;
  num_nodes = std::max<size_t>(16, static_cast<size_t>(num_nodes * factor));
  num_queries =
      std::max<size_t>(16, static_cast<size_t>(num_queries * factor));
}

double ScaleFromEnv(double default_factor) {
  const char* env = std::getenv("RJOIN_SCALE");
  if (env == nullptr || *env == '\0') return default_factor;
  const std::string s(env);
  if (s == "paper" || s == "PAPER" || s == "full") return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : default_factor;
}

uint32_t ResolveShardCount(uint32_t requested) {
  if (requested == ExperimentConfig::kForceSerial) return 0;
  if (requested >= 1) return std::min<uint32_t>(requested, 64);
  const char* env = std::getenv("RJOIN_SHARDS");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::atol(env);
  if (v <= 0) return 0;
  return static_cast<uint32_t>(std::min<long>(v, 64));
}

std::optional<ChurnSpec> ResolveChurnSpec(const ExperimentConfig& config) {
  if (config.churn.has_value()) return config.churn;
  const char* env = std::getenv("RJOIN_CHURN");
  if (env == nullptr || *env == '\0') return std::nullopt;
  const double rate = std::atof(env);
  if (rate <= 0.0) return std::nullopt;
  ChurnSpec spec;
  spec.rate = rate;
  return spec;
}

uint32_t ResolveReplication(uint32_t requested) {
  // Clamp to the successor-list length: a mirror cannot reach farther than
  // the ground-truth successor list the recovery path walks.
  if (requested >= 1) return std::min<uint32_t>(requested, 8);
  const char* env = std::getenv("RJOIN_REPLICATION");
  if (env == nullptr || *env == '\0') return 1;
  const long v = std::atol(env);
  if (v <= 1) return 1;
  return static_cast<uint32_t>(std::min<long>(v, 8));
}

double ExperimentResult::MsgsPerNodePerTuple() const {
  if (per_tuple.empty() || num_nodes == 0) return 0.0;
  const uint64_t tuple_msgs =
      per_tuple.back().total_messages - traffic_after_queries;
  return static_cast<double>(tuple_msgs) /
         (static_cast<double>(num_nodes) *
          static_cast<double>(per_tuple.size()));
}

double ExperimentResult::RicMsgsPerNodePerTuple() const {
  if (per_tuple.empty() || num_nodes == 0) return 0.0;
  const uint64_t ric = per_tuple.back().ric_messages - ric_after_queries;
  return static_cast<double>(ric) / (static_cast<double>(num_nodes) *
                                     static_cast<double>(per_tuple.size()));
}

double ExperimentResult::TotalMsgsPerNode() const {
  if (per_tuple.empty() || num_nodes == 0) return 0.0;
  return static_cast<double>(per_tuple.back().total_messages) /
         static_cast<double>(num_nodes);
}

double ExperimentResult::RicMsgsPerNode() const {
  if (per_tuple.empty() || num_nodes == 0) return 0.0;
  return static_cast<double>(per_tuple.back().ric_messages) /
         static_cast<double>(num_nodes);
}

double ExperimentResult::QplPerNode() const {
  if (per_tuple.empty() || num_nodes == 0) return 0.0;
  return static_cast<double>(per_tuple.back().total_qpl) /
         static_cast<double>(num_nodes);
}

double ExperimentResult::StoragePerNode() const {
  if (per_tuple.empty() || num_nodes == 0) return 0.0;
  return static_cast<double>(per_tuple.back().total_storage) /
         static_cast<double>(num_nodes);
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)),
      resolved_churn_(ResolveChurnSpec(config_)),
      catalog_(BuildCatalog(config_.workload)),
      latency_(1) {
  if (config_.node_positions.has_value()) {
    network_ = dht::ChordNetwork::CreateWithPositions(*config_.node_positions);
  } else {
    // Churn runs reserve `spare_nodes` extra leave victims past the
    // participant indices [0, num_nodes).
    const size_t spares =
        resolved_churn_.has_value() ? resolved_churn_->spare_nodes : 0;
    network_ =
        dht::ChordNetwork::Create(config_.num_nodes + spares, config_.seed);
  }
  metrics_.Resize(network_->num_total());
  transport_ = std::make_unique<dht::Transport>(network_.get(), &sim_,
                                                &latency_, &metrics_,
                                                Rng(config_.seed ^ 0xabcdef));
  core::EngineConfig ecfg;
  ecfg.policy = config_.policy;
  ecfg.rewrite_levels = config_.rewrite_levels;
  ecfg.charge_ric_messages = config_.charge_ric;
  ecfg.reuse_ric_info = config_.reuse_ric_info;
  ecfg.attr_replication = config_.attr_replication;
  ecfg.replication = ResolveReplication(config_.replication);
  ecfg.keep_history = config_.keep_history;
  ecfg.seed = config_.seed ^ 0x5eed;
  // Observation epoch: roughly 16 tuple publications.
  ecfg.ric_epoch = std::max<uint64_t>(1, 16 * config_.tuple_gap);
  ecfg.ct_validity = 4 * ecfg.ric_epoch;
  engine_ = std::make_unique<core::RJoinEngine>(ecfg, catalog_.get(),
                                                network_.get(),
                                                transport_.get(), &sim_,
                                                &metrics_);

  resolved_shards_ = ResolveShardCount(config_.shards);
  if (resolved_shards_ >= 1) {
    runtime::ShardedRuntime::Options opt;
    opt.shards = resolved_shards_;
    // Lookahead comes from the latency model alone — it is a timing
    // guarantee, not a tuning knob. The legacy round_width knob survives
    // as an overlap cap: 0 (default) lets epochs span whole RIC epochs.
    opt.lookahead = runtime::AutoRoundWidth(latency_);
    opt.overlap_cap = config_.round_width;
    runtime_ = std::make_unique<runtime::ShardedRuntime>(
        opt, network_->num_total(), &metrics_);
    router_ = std::make_unique<runtime::ShardRouter>(runtime_.get(),
                                                     config_.seed ^ 0xabcdef);
    transport_->set_router(router_.get());
    engine_->AttachRuntime(runtime_.get());
  }
}

Experiment::~Experiment() = default;

void Experiment::RunToQuiescence() {
  if (runtime_ != nullptr) {
    runtime_->Run();
  } else {
    sim_.Run();
  }
}

void Experiment::RunUntilTime(sim::SimTime until) {
  if (runtime_ != nullptr) {
    runtime_->RunUntil(until);
  } else {
    sim_.RunUntil(until);
  }
}

sim::SimTime Experiment::NowTime() const {
  return runtime_ != nullptr ? runtime_->Now() : sim_.Now();
}

LoadSnapshot Experiment::Snapshot(size_t after_tuples) const {
  LoadSnapshot snap;
  snap.after_tuples = after_tuples;
  const auto& nodes = metrics_.all_nodes();
  snap.messages.reserve(nodes.size());
  for (const auto& m : nodes) {
    snap.messages.push_back(m.messages_sent);
    snap.ric_messages.push_back(m.ric_messages_sent);
    snap.qpl.push_back(m.qpl);
    snap.storage.push_back(
        m.storage_current > 0 ? static_cast<uint64_t>(m.storage_current) : 0);
  }
  snap.allocs = stats::ReadAllocCounts();
  snap.route_cache = dht::RouteCache::Aggregate();
  return snap;
}

ExperimentResult Experiment::Run() {
  ExperimentResult result;
  // Per-node averages divide by the fixed participant count, so a churn
  // sweep (whose spare/joiner population scales with the rate) keeps a
  // comparable denominator across rates. Without churn this equals
  // num_alive() exactly.
  result.num_nodes = std::min<size_t>(network_->num_alive(),
                                      config_.num_nodes);
  result.num_tuples = config_.num_tuples;

  // Query owners and tuple publishers come from the participant prefix
  // only: churn spares and joined nodes may depart mid-stream, and an
  // answer addressed to a departed owner would be lost.
  std::vector<dht::NodeIndex> alive;
  for (dht::NodeIndex n : network_->AliveNodes()) {
    if (n < config_.num_nodes) alive.push_back(n);
  }
  Rng placement_rng(config_.seed ^ 0x9a9a9a);

  // Phase 0: prime the tuple-rate trackers with stream history (same
  // distribution as the live stream) so indexing decisions can use RIC.
  // All observations carry the same (pre-stream) timestamp, so grouping the
  // draws by relation and recording them through the bulk path produces the
  // same rates while resolving each relation's attribute-level nodes once.
  {
    TupleGenerator warm(config_.workload, catalog_.get(),
                        config_.seed * 29 + 11);
    std::vector<TupleGenerator::Batch> batches;
    warm.NextBatch(config_.warmup_observations, &batches);
    for (const TupleGenerator::Batch& batch : batches) {
      RJOIN_CHECK(
          engine_->ObserveStreamHistoryBulk(batch.relation, batch.rows).ok());
    }
  }

  // Phase 1: submit continuous queries from random owner nodes.
  QueryGenerator qgen(config_.workload, catalog_.get(), config_.seed * 7 + 1);
  sql::WindowSpec window;
  if (config_.window.has_value()) window = *config_.window;
  for (size_t i = 0; i < config_.num_queries; ++i) {
    const dht::NodeIndex owner =
        alive[placement_rng.NextBounded(alive.size())];
    auto id = engine_->SubmitQuery(owner, qgen.Next(config_.way, window));
    RJOIN_CHECK(id.ok()) << id.status().ToString();
  }
  RunToQuiescence();
  result.traffic_after_queries = metrics_.total_messages();
  result.ric_after_queries = metrics_.total_ric_messages();

  // Phase 1.5: lay out the churn trace across the coming stream span; its
  // events are released into the event plane as the stream clock reaches
  // them (in-band NodeJoin/NodeLeave messages the engine stages and
  // applies at round barriers).
  if (resolved_churn_.has_value()) BuildChurnTrace(NowTime());

  // Phase 2: stream tuples. Each tuple is processed to quiescence so the
  // per-tuple load attribution matches the paper's measurement method.
  TupleGenerator tgen(config_.workload, catalog_.get(), config_.seed * 13 + 5);
  size_t next_checkpoint = 0;
  result.per_tuple.reserve(config_.num_tuples);
  // One reused draw buffer: the streaming loop publishes from it by const
  // reference, so the driver side of the stream allocates nothing per tuple.
  TupleGenerator::Draw d;
  for (size_t i = 0; i < config_.num_tuples; ++i) {
    // Churn ops due within this publication slot enter the event plane
    // now, so topology mutations interleave with the stream instead of
    // being drained all at once by the first RunToQuiescence.
    if (resolved_churn_.has_value()) {
      ReleaseChurnUpTo(NowTime() + config_.tuple_gap);
    }
    const dht::NodeIndex publisher =
        alive[placement_rng.NextBounded(alive.size())];
    tgen.Next(&d);
    auto t = engine_->PublishTuple(publisher, d.relation, d.values);
    RJOIN_CHECK(t.ok()) << t.status().ToString();
    if (config_.pipeline_stream) {
      // Streaming mode: advance one inter-arrival slot and keep cascades
      // from multiple tuples in flight (the parallel runtime's bread and
      // butter). The final drain happens after the loop.
      RunUntilTime(NowTime() + config_.tuple_gap);
    } else {
      RunToQuiescence();
    }

    PerTupleSample sample;
    sample.total_messages = metrics_.total_messages();
    sample.ric_messages = metrics_.total_ric_messages();
    sample.total_qpl = metrics_.total_qpl();
    sample.total_storage = metrics_.total_storage();
    result.per_tuple.push_back(sample);

    if ((i + 1) % config_.sweep_every == 0) engine_->SweepWindows();

    while (next_checkpoint < config_.checkpoints.size() &&
           config_.checkpoints[next_checkpoint] == i + 1) {
      result.snapshots.push_back(Snapshot(i + 1));
      ++next_checkpoint;
    }

    // Advance the stream clock to the next inter-arrival slot (pipelined
    // mode already did, right after the publication).
    if (!config_.pipeline_stream) {
      RunUntilTime(NowTime() + config_.tuple_gap);
    }
  }
  // Any trace remainder (leaves pushed past the stream end by their settle
  // gap) still runs before the final drain, so every handoff lands.
  if (resolved_churn_.has_value()) {
    ReleaseChurnUpTo(UINT64_MAX);
    RunToQuiescence();
  }
  if (config_.pipeline_stream) RunToQuiescence();
  engine_->SweepWindows();

  result.final_snapshot = Snapshot(config_.num_tuples);
  result.answers_delivered = metrics_.answers_delivered();
  return result;
}

void Experiment::BuildChurnTrace(sim::SimTime stream_start) {
  const ChurnSpec& spec = *resolved_churn_;
  const sim::SimTime span =
      std::max<sim::SimTime>(1, config_.num_tuples * config_.tuple_gap);
  const uint64_t seed = spec.seed != 0 ? spec.seed : config_.seed * 77 + 3;
  size_t joins = 0;
  size_t leaves = 0;
  size_t crashes = 0;
  churn_trace_ = GenerateChurnTrace(spec, config_.num_tuples, stream_start,
                                    span, seed, &joins, &leaves, &crashes);
  churn_cursor_ = 0;
}

void Experiment::ReleaseChurnUpTo(sim::SimTime until) {
  const ChurnSpec& spec = *resolved_churn_;
  // Victim slots resolve to node indices: spares were created right after
  // the participants, and the j-th join lands on the next sequential index
  // in application (= trace) order.
  const dht::NodeIndex spare_base =
      static_cast<dht::NodeIndex>(config_.num_nodes);
  const dht::NodeIndex join_base =
      static_cast<dht::NodeIndex>(config_.num_nodes + spec.spare_nodes);
  for (; churn_cursor_ < churn_trace_.size() &&
         churn_trace_[churn_cursor_].time <= until;
       ++churn_cursor_) {
    const ChurnEvent& e = churn_trace_[churn_cursor_];
    if (e.kind == ChurnOpKind::kJoin) {
      // Bootstrap at node 0: a participant, alive for the whole run.
      RJOIN_CHECK(engine_->ScheduleJoin(e.time, e.join_id, 0).ok());
    } else {
      const dht::NodeIndex victim =
          e.victim_slot < spec.spare_nodes
              ? spare_base + static_cast<dht::NodeIndex>(e.victim_slot)
              : join_base +
                    static_cast<dht::NodeIndex>(e.victim_slot -
                                                spec.spare_nodes);
      if (e.kind == ChurnOpKind::kCrash) {
        RJOIN_CHECK(
            engine_->ScheduleCrash(e.time, victim, e.crash_successors).ok());
      } else {
        RJOIN_CHECK(engine_->ScheduleLeave(e.time, victim).ok());
      }
    }
  }
}

std::vector<dht::KeyLoad> Experiment::KeyLoadProfile() const {
  return engine_->KeyLoadProfile();
}

}  // namespace rjoin::workload
