#ifndef RJOIN_WORKLOAD_EXPERIMENT_H_
#define RJOIN_WORKLOAD_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/engine.h"
#include "dht/chord_network.h"
#include "dht/route_cache.h"
#include "dht/transport.h"
#include "runtime/shard_router.h"
#include "runtime/sharded_runtime.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/schema.h"
#include "stats/alloc_tracker.h"
#include "stats/distribution.h"
#include "stats/metrics.h"
#include "workload/churn.h"
#include "workload/generator.h"

namespace rjoin::workload {

/// One experiment of the paper's Section 8: build a Chord network, submit Q
/// continuous k-way joins, stream T tuples, measure traffic / query
/// processing load / storage load.
struct ExperimentConfig {
  size_t num_nodes = 1000;
  size_t num_queries = 20000;
  size_t num_tuples = 400;
  int way = 4;  ///< relations per join query (4/6/8 in Fig. 6)

  WorkloadParams workload;  ///< schema + Zipf parameters

  core::PlannerPolicy policy = core::PlannerPolicy::kRic;
  bool charge_ric = true;

  /// Candidate levels for rewritten queries. The benches use
  /// kIncludeAttribute (the full Section 6 candidate set) so the Worst
  /// baseline can actually make the worst choice; kValuePreferred keeps
  /// strict eventual completeness with finite Delta (see planner.h).
  core::RewriteIndexLevels rewrite_levels =
      core::RewriteIndexLevels::kValuePreferred;

  /// Section 7's candidate-table + piggy-backing reuse (ablation knob).
  bool reuse_ric_info = true;

  /// Attribute-level query replication factor ([18]; ablation knob).
  uint32_t attr_replication = 1;

  /// Successor-list state replication factor r (docs/failures.md): every
  /// state-mutating delivery mirrors its per-key slice to the next r-1
  /// successors, and a silent crash promotes the replica at the new owner.
  /// 0 (default) resolves from the RJOIN_REPLICATION environment variable;
  /// when that is unset too, r = 1 (replication off, zero overhead).
  uint32_t replication = 0;

  /// Same window for all queries (Fig. 7/8); nullopt = no windows.
  std::optional<sql::WindowSpec> window;

  /// Run window GC every this many tuples.
  size_t sweep_every = 32;

  /// Ticks between consecutive tuple publications (the stream's
  /// inter-arrival gap; also the clock for time-based windows).
  uint64_t tuple_gap = 16;

  /// Explicit ring positions (id-movement experiment, Fig. 9).
  std::optional<std::vector<dht::NodeId>> node_positions;

  bool keep_history = false;  ///< record tuples for oracle checks

  /// Worker shards of the parallel runtime. 0 (default) resolves from the
  /// RJOIN_SHARDS environment variable; when that is unset/0 too, the
  /// experiment runs on the serial sim::Simulator exactly as before. Any
  /// value >= 1 (explicit or via env) runs on the ShardedRuntime — S=1
  /// executes the identical round schedule serially, so S=1 vs S=4 runs
  /// are bit-identical (see docs/runtime.md). kForceSerial pins the legacy
  /// serial path even when RJOIN_SHARDS is set (baseline rows of the
  /// scaling bench).
  uint32_t shards = 0;

  static constexpr uint32_t kForceSerial = UINT32_MAX;

  /// Compatibility knob from the retired lockstep scheduler, now the
  /// watermark runtime's overlap cap: a positive value bounds how far
  /// execution may overlap between two rendezvous (epochs span at most
  /// this many ticks — the old scheduler barriered at exactly this
  /// spacing). 0 (default) leaves the overlap window unbounded; epochs
  /// then stretch to the next RIC-epoch boundary or staged churn op.
  /// Message *timing* is unaffected either way: the delivery lookahead is
  /// always runtime::AutoRoundWidth(latency) — a property of the latency
  /// model, not a tunable.
  sim::SimTime round_width = 0;

  /// Stream tuples back-to-back (one publication per tuple_gap of virtual
  /// time, with cascades from many tuples in flight at once) instead of
  /// draining each tuple to quiescence before the next. This is the
  /// steady-state streaming mode the scaling bench measures; per-tuple
  /// samples then reflect what had completed by each publication slot
  /// rather than each tuple's full cost.
  bool pipeline_stream = false;

  uint64_t seed = 1;

  /// Live topology churn while the tuple stream runs: joins, graceful
  /// leaves, and (via ChurnSpec::faults) silent crashes scheduled as
  /// in-band events (see docs/churn.md, docs/failures.md). Unset, the
  /// RJOIN_CHURN environment variable (a rate in churn ops per tuple) can
  /// switch churn on; both unset = static topology, zero overhead. Spare
  /// nodes and joined nodes are excluded from query-owner/publisher
  /// placement, so answers are never addressed to a departed node.
  std::optional<ChurnSpec> churn;

  /// Stream-history draws observed (rates only, no publication) before any
  /// query is submitted, so RIC has a "last window" to consult. Models the
  /// long-running stream of the paper's setting.
  size_t warmup_observations = 64;

  /// Capture per-node load snapshots after these many tuples.
  std::vector<size_t> checkpoints;

  /// Scales num_nodes/num_queries (x-axis parameters like tuple counts are
  /// left untouched). Benches default to 0.25 of paper scale; set
  /// RJOIN_SCALE=paper for full size.
  void ApplyScale(double factor);
};

/// Reads the RJOIN_SCALE environment variable: "paper" => 1.0, a number =>
/// that factor, unset => `default_factor`.
double ScaleFromEnv(double default_factor = 0.25);

/// Resolves the shard count an experiment will actually use: `requested`
/// when >= 1, else the RJOIN_SHARDS environment variable (clamped to
/// [1, 64]), else 0 = the serial simulator path.
/// ExperimentConfig::kForceSerial always resolves to 0.
uint32_t ResolveShardCount(uint32_t requested);

/// Resolves the churn spec an experiment will use: the config's spec when
/// set, else one built from the RJOIN_CHURN environment variable (churn
/// operations per published tuple; unset/0 = no churn).
std::optional<ChurnSpec> ResolveChurnSpec(const ExperimentConfig& config);

/// Resolves the replication factor an experiment will use: `requested` when
/// >= 1 (clamped to [1, 8], the successor-list length), else the
/// RJOIN_REPLICATION environment variable, else 1 (replication off).
uint32_t ResolveReplication(uint32_t requested);

/// Per-node load vectors captured at a checkpoint.
struct LoadSnapshot {
  size_t after_tuples = 0;
  std::vector<uint64_t> messages;      ///< cumulative traffic per node
  std::vector<uint64_t> ric_messages;  ///< cumulative RIC traffic per node
  std::vector<uint64_t> qpl;           ///< cumulative QPL per node
  std::vector<uint64_t> storage;       ///< current stored items per node
  /// Cumulative per-plane heap-allocation counters at the checkpoint, so a
  /// bench can report steady-state allocs_per_tuple over a tail window
  /// (between two checkpoints) instead of averaging in the cold ramp.
  stats::AllocCounts allocs;
  /// Cumulative route-cache counters at the checkpoint (process-wide, same
  /// windowing idea: steady-state route_cache_hit_rate is the delta between
  /// two checkpoints, excluding the cold first-sight ramp).
  dht::RouteCache::Stats route_cache;
};

/// Cumulative totals sampled after each published tuple (Fig. 8).
struct PerTupleSample {
  uint64_t total_messages = 0;
  uint64_t ric_messages = 0;
  uint64_t total_qpl = 0;
  uint64_t total_storage = 0;  ///< cumulative stores (not reduced by GC)
};

struct ExperimentResult {
  uint64_t traffic_after_queries = 0;  ///< messages spent indexing queries
  uint64_t ric_after_queries = 0;
  std::vector<PerTupleSample> per_tuple;  ///< cumulative series, one per tuple
  std::vector<LoadSnapshot> snapshots;    ///< at requested checkpoints
  LoadSnapshot final_snapshot;
  uint64_t answers_delivered = 0;
  size_t num_nodes = 0;
  size_t num_tuples = 0;

  /// Average messages per node per tuple over the tuple phase
  /// (the y-axis of Figs. 3a-7a).
  double MsgsPerNodePerTuple() const;
  double RicMsgsPerNodePerTuple() const;
  /// Average total messages per node including query indexing (Fig. 2a).
  double TotalMsgsPerNode() const;
  double RicMsgsPerNode() const;
  double QplPerNode() const;
  double StoragePerNode() const;
};

/// Drives one experiment end to end. Also exposes the pieces so benches and
/// examples can interleave custom steps (e.g. the two-phase id-movement run).
class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  /// Submits queries, streams tuples, returns measurements.
  ExperimentResult Run();

  /// The engine's observed per-key storage responsibility (input to the
  /// id-movement balancer).
  std::vector<dht::KeyLoad> KeyLoadProfile() const;

  core::RJoinEngine& engine() { return *engine_; }
  const stats::MetricsRegistry& metrics() const { return metrics_; }
  const sql::Catalog& catalog() const { return *catalog_; }
  sim::Simulator& simulator() { return sim_; }
  dht::ChordNetwork& network() { return *network_; }
  const ExperimentConfig& config() const { return config_; }

  /// Shard count actually in use; 0 = serial simulator path.
  uint32_t shard_count() const { return resolved_shards_; }

  /// Churn spec actually in use (config or RJOIN_CHURN), if any.
  const std::optional<ChurnSpec>& churn_spec() const {
    return resolved_churn_;
  }

  /// The parallel runtime, or nullptr on the serial path.
  runtime::ShardedRuntime* runtime() { return runtime_.get(); }

  /// Event-pump seams (serial simulator or sharded runtime).
  void RunToQuiescence();
  void RunUntilTime(sim::SimTime until);
  sim::SimTime NowTime() const;

 private:
  LoadSnapshot Snapshot(size_t after_tuples) const;

  /// Generates the churn trace across the stream span (events held back
  /// until the stream clock reaches them — RunToQuiescence drains every
  /// scheduled event regardless of its time, so scheduling the whole trace
  /// up front would apply it during the first tuple's cascade).
  void BuildChurnTrace(sim::SimTime stream_start);

  /// Schedules every pending trace event with time <= `until` as an
  /// in-band NodeJoin/NodeLeave/NodeCrash message.
  void ReleaseChurnUpTo(sim::SimTime until);

  ExperimentConfig config_;
  std::optional<ChurnSpec> resolved_churn_;
  std::vector<ChurnEvent> churn_trace_;
  size_t churn_cursor_ = 0;
  std::unique_ptr<sql::Catalog> catalog_;
  std::unique_ptr<dht::ChordNetwork> network_;
  sim::Simulator sim_;
  sim::FixedLatency latency_;
  stats::MetricsRegistry metrics_;
  std::unique_ptr<dht::Transport> transport_;
  std::unique_ptr<core::RJoinEngine> engine_;
  // Declared after engine_/transport_ so workers are joined (runtime_
  // destroyed) first on teardown.
  uint32_t resolved_shards_ = 0;
  std::unique_ptr<runtime::ShardedRuntime> runtime_;
  std::unique_ptr<runtime::ShardRouter> router_;
};

}  // namespace rjoin::workload

#endif  // RJOIN_WORKLOAD_EXPERIMENT_H_
