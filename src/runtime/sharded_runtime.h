#ifndef RJOIN_RUNTIME_SHARDED_RUNTIME_H_
#define RJOIN_RUNTIME_SHARDED_RUNTIME_H_

#include <atomic>
#include <compare>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/time.h"
#include "stats/metrics.h"

namespace rjoin::runtime {

using NodeIndex = stats::NodeIndex;

/// Globally unique, shard-count-invariant identity of a scheduled event:
/// its virtual delivery time, the node that emitted it, and that node's
/// emission sequence number. Each shard executes its events in EventKey
/// order, so the per-node execution order — and therefore every per-node
/// emission order — is the same for any number of shards. This is the
/// induction that makes parallel runs bit-identical to the 1-shard run.
struct EventKey {
  sim::SimTime time = 0;
  NodeIndex src = 0;
  uint64_t seq = 0;

  auto operator<=>(const EventKey&) const = default;
};

/// Serial per-round callback, invoked on the driver thread at every round
/// barrier (workers parked) and once more after the final round. The RJoin
/// engine uses it to publish staged answers and to refresh the frozen
/// rate snapshots that worker threads read in place of live cross-shard
/// state.
class BarrierHook {
 public:
  virtual ~BarrierHook() = default;
  virtual void OnBarrier(sim::SimTime round_start) = 0;
};

/// A discrete-event runtime that partitions the NodeIndex space into S
/// shards, each owned by a worker thread with its own event heap, metrics
/// delta registry, and derived RNG streams. Virtual time advances in
/// lockstep rounds of `round_width` ticks (the latency lookahead): within a
/// round every shard executes its events independently; messages crossing
/// shards are mailbox pushes drained at the barrier. Because the round
/// width never exceeds the minimum hop latency, no message emitted inside a
/// round can be due before the round ends, so the round schedule — and the
/// full execution — is identical for any S (see docs/runtime.md for the
/// equivalence argument).
///
/// The network topology (ChordNetwork) must not change while events are in
/// flight: churn is a driver-phase operation.
class ShardedRuntime {
 public:
  struct Options {
    uint32_t shards = 1;
    /// Lookahead: rounds span [T, T + round_width). Must not exceed the
    /// latency model's min_delay(); deliveries that would violate the bound
    /// are deferred to the next round boundary (deterministically).
    sim::SimTime round_width = 1;
  };

  /// `main_metrics` is the registry experiments read; shard deltas are
  /// drained into it at every barrier.
  ShardedRuntime(const Options& options, size_t num_nodes,
                 stats::MetricsRegistry* main_metrics);
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  uint32_t shards() const { return num_shards_; }
  size_t num_nodes() const { return num_nodes_; }
  sim::SimTime round_width() const { return round_width_; }

  /// Shard owning `node`: contiguous blocks of the NodeIndex space.
  uint32_t ShardOf(NodeIndex node) const {
    const uint32_t s = node / chunk_;
    return s < num_shards_ ? s : num_shards_ - 1;
  }

  /// Shard the calling thread works for, or -1 on the driver thread.
  static int CurrentShard();

  /// Virtual time: the executing event's time on a worker, the round cursor
  /// on the driver.
  sim::SimTime Now() const;

  /// End of the current round on a worker; Now() on the driver (where the
  /// next round has not started, so no deferral is needed).
  sim::SimTime CurrentRoundEnd() const;

  /// Key of the event being executed (workers, during an event, only).
  EventKey CurrentEventKey() const;

  /// Next emission sequence number of `src`. Must be called either from the
  /// worker owning `src`'s shard or from the driver between rounds.
  uint64_t NextEmitSeq(NodeIndex src) { return ++emit_seq_[src]; }

  /// Schedules `action` to run at `key.time` on `dst`'s shard. Callable
  /// from the driver between rounds (pushes straight into the shard heap)
  /// or from a worker (own shard: direct push; foreign shard: mailbox,
  /// drained at the next barrier). Worker-emitted cross-node events must
  /// not be due before the current round ends — ShardRouter's Deliver()
  /// enforces that bound.
  void ScheduleEvent(const EventKey& key, NodeIndex dst,
                     std::function<void()> action);

  /// Runs rounds until every shard heap and mailbox drains. Returns the
  /// number of events executed. Leaves Now() at the last executed event's
  /// time (mirrors sim::Simulator::Run).
  uint64_t Run();

  /// Runs events with time <= `until`; advances the clock to `until` even
  /// if everything drains earlier (mirrors sim::Simulator::RunUntil).
  uint64_t RunUntil(sim::SimTime until);

  bool Idle() const;
  size_t PendingEvents() const;
  uint64_t TotalEventsExecuted() const { return total_executed_; }
  uint64_t TotalRounds() const { return total_rounds_; }

  /// Registers a serial barrier callback (driver thread, workers parked).
  void AddBarrierHook(BarrierHook* hook) { hooks_.push_back(hook); }

  /// Registry the calling thread must write: its shard's delta registry on
  /// a worker, the main registry on the driver.
  stats::MetricsRegistry* ActiveMetrics();

  stats::MetricsRegistry* shard_metrics(uint32_t shard) {
    return shard_state_[shard]->metrics.get();
  }

 private:
  struct Envelope {
    EventKey key;
    NodeIndex dst = 0;
    std::function<void()> action;
  };

  struct EnvelopeLater {
    bool operator()(const Envelope& a, const Envelope& b) const {
      return b.key < a.key;  // min-heap on EventKey
    }
  };

  /// Reusable generation barrier for num_shards_ workers + the driver.
  /// Spins briefly (cheap when rounds are dense), then sleeps on a condvar.
  class Gate {
   public:
    void Init(uint32_t parties, bool spin) {
      parties_ = parties;
      spin_ = spin;
    }
    void Arrive();

   private:
    uint32_t parties_ = 0;
    bool spin_ = true;
    std::atomic<uint64_t> gen_{0};
    std::atomic<uint32_t> waiting_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
  };

  struct alignas(64) ShardState {
    std::vector<Envelope> heap;  // std::push_heap/pop_heap on EnvelopeLater
    sim::SimTime now = 0;
    sim::SimTime last_executed = 0;
    bool executed_any = false;
    uint64_t executed = 0;
    EventKey current_key;
    std::unique_ptr<stats::MetricsRegistry> metrics;
    /// outbox[d]: events emitted this round for shard d (d != own shard);
    /// written only by the owning worker, drained only at the barrier.
    std::vector<std::vector<Envelope>> outbox;
  };

  void WorkerMain(uint32_t shard);
  void RunShardRound(ShardState& shard);
  void PushLocal(ShardState& shard, Envelope ev);

  /// Barrier work (driver): drain mailboxes, merge metrics deltas, fire
  /// hooks. Runs with all workers parked.
  void SerialPhase();
  bool AllHeapsEmpty() const;
  sim::SimTime MinHeapTime() const;
  uint64_t RunLoop(bool bounded, sim::SimTime until);

  const uint32_t num_shards_;
  const size_t num_nodes_;
  const sim::SimTime round_width_;
  const uint32_t chunk_;

  std::vector<std::unique_ptr<ShardState>> shard_state_;
  std::vector<uint64_t> emit_seq_;  // per node; owner-shard written
  stats::MetricsRegistry* main_metrics_;
  std::vector<BarrierHook*> hooks_;

  sim::SimTime now_ = sim::kTimeZero;
  sim::SimTime round_end_ = 0;  // stable while workers run
  uint64_t total_executed_ = 0;
  uint64_t total_rounds_ = 0;

  std::vector<std::thread> workers_;
  Gate start_gate_;
  Gate end_gate_;
  bool stop_ = false;  // read by workers after start_gate_ only
};

}  // namespace rjoin::runtime

#endif  // RJOIN_RUNTIME_SHARDED_RUNTIME_H_
