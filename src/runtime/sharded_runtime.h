#ifndef RJOIN_RUNTIME_SHARDED_RUNTIME_H_
#define RJOIN_RUNTIME_SHARDED_RUNTIME_H_

#include <atomic>
#include <compare>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/messages.h"
#include "sim/latency.h"
#include "sim/time.h"
#include "stats/metrics.h"

namespace rjoin::runtime {

using NodeIndex = stats::NodeIndex;

/// Globally unique, shard-count-invariant identity of a scheduled event:
/// its virtual delivery time, the node that emitted it, and that node's
/// emission sequence number. Each shard executes its events in EventKey
/// order, so the per-node execution order — and therefore every per-node
/// emission order — is the same for any number of shards. This is the
/// induction that makes parallel runs bit-identical to the 1-shard run.
struct EventKey {
  sim::SimTime time = 0;
  NodeIndex src = 0;
  uint64_t seq = 0;

  auto operator<=>(const EventKey&) const = default;
};

/// The largest round width that preserves exact per-hop delivery timing
/// under `latency`: its minimum hop delay (the lookahead — no message
/// emitted inside a round of this width can be due before the round ends).
/// Zero-latency-capable models fall back to width 1, where every delivery
/// defers to the next round boundary, still deterministically. Experiments
/// use this when ExperimentConfig::round_width is left unset; wider rounds
/// (coarser virtual latency, fewer barriers) remain an explicit opt-in.
sim::SimTime AutoRoundWidth(const sim::LatencyModel& latency);

/// Serial per-round callback, invoked on the driver thread at every round
/// barrier (workers parked) and once more after the final round. The RJoin
/// engine uses it to publish staged answers and to refresh the frozen
/// rate snapshots that worker threads read in place of live cross-shard
/// state.
class BarrierHook {
 public:
  virtual ~BarrierHook() = default;
  virtual void OnBarrier(sim::SimTime round_start) = 0;
};

/// A discrete-event runtime that partitions the NodeIndex space into S
/// shards, each owned by a worker thread with its own event heap, message
/// pool, metrics delta registry, and derived RNG streams. Virtual time
/// advances in lockstep rounds of `round_width` ticks (the latency
/// lookahead): within a round every shard executes its events
/// independently; messages crossing shards are mailbox pushes drained at
/// the barrier. Because the round width never exceeds the minimum hop
/// latency, no message emitted inside a round can be due before the round
/// ends, so the round schedule — and the full execution — is identical for
/// any S (see docs/runtime.md for the equivalence argument).
///
/// Events are pooled core::Envelopes, identical to the serial simulator's:
/// heaps and mailboxes move EnvelopeRefs, typed envelopes go to the
/// attached core::EnvelopeDispatcher (the transport), Control envelopes
/// run inline. Each shard's pool recycles envelopes through freelists
/// (cross-shard returns ride a lock-free remote list), so the steady-state
/// delivery path performs zero heap allocations per message.
///
/// Topology churn: the network (ChordNetwork) and the engine's per-node
/// state may change *at round barriers only* — workers are parked there, so
/// the serial phase (BarrierHook::OnBarrier) may mutate the ring, grow the
/// node space (GrowNodes), and emit handoff envelopes. Because the barrier
/// schedule is a pure function of the event population (itself independent
/// of the shard count), every run applies the same churn at the same
/// virtual instants for any S. See docs/churn.md.
class ShardedRuntime {
 public:
  struct Options {
    uint32_t shards = 1;
    /// Lookahead: rounds span [T, T + round_width). Must not exceed the
    /// latency model's min_delay(); deliveries that would violate the bound
    /// are deferred to the next round boundary (deterministically).
    /// AutoRoundWidth() derives the exact-timing value from a latency
    /// model.
    sim::SimTime round_width = 1;
  };

  /// `main_metrics` is the registry experiments read; shard deltas are
  /// drained into it at every barrier.
  ShardedRuntime(const Options& options, size_t num_nodes,
                 stats::MetricsRegistry* main_metrics);
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  uint32_t shards() const { return num_shards_; }
  size_t num_nodes() const { return num_nodes_; }
  sim::SimTime round_width() const { return round_width_; }

  /// Shard owning `node`: contiguous blocks of the NodeIndex space.
  uint32_t ShardOf(NodeIndex node) const {
    const uint32_t s = node / chunk_;
    return s < num_shards_ ? s : num_shards_ - 1;
  }

  /// Shard the calling thread works for, or -1 on the driver thread.
  static int CurrentShard();

  /// Virtual time: the executing event's time on a worker, the round cursor
  /// on the driver.
  sim::SimTime Now() const;

  /// End of the current round on a worker; Now() on the driver (where the
  /// next round has not started, so no deferral is needed).
  sim::SimTime CurrentRoundEnd() const;

  /// Key of the event being executed (workers, during an event, only).
  EventKey CurrentEventKey() const;

  /// Next emission sequence number of `src`. Must be called either from the
  /// worker owning `src`'s shard or from the driver between rounds.
  uint64_t NextEmitSeq(NodeIndex src) { return ++emit_seq_[src]; }

  /// Grows the node space to `num_nodes` (nodes joining at a barrier).
  /// Driver-only, workers parked: emission counters and every metrics
  /// registry resize here, before any worker can address the new nodes.
  /// The shard partition (chunk_) is fixed at construction, so joined
  /// nodes all land on the last shard — a deterministic (if unbalanced)
  /// placement that keeps ShardOf stable for every pre-existing node.
  void GrowNodes(size_t num_nodes);

  /// Envelope pool of one shard. Acquire only on the owning worker thread,
  /// or on the driver while workers are parked.
  core::MessagePool* shard_pool(uint32_t shard) {
    return shard_state_[shard]->pool.get();
  }

  /// Envelope for an event that `executor`'s shard will run: drawn from the
  /// calling worker's own pool (the freelist is owner-thread-only), or from
  /// the executing shard's pool on the driver (workers parked). The single
  /// definition of the pool-borrowing rule.
  core::EnvelopeRef AcquireFor(NodeIndex executor) {
    const int cur = CurrentShard();
    const uint32_t shard =
        cur >= 0 ? static_cast<uint32_t>(cur) : ShardOf(executor);
    return shard_state_[shard]->pool->Acquire();
  }

  /// Receiver of typed envelopes (the transport); Control envelopes run
  /// without it.
  void set_dispatcher(core::EnvelopeDispatcher* dispatcher) {
    dispatcher_ = dispatcher;
  }

  /// Schedules `env` to run at `env->time` on `env->dst`'s shard, ordered
  /// by its (time, src, seq) key. Callable from the driver between rounds
  /// (pushes straight into the shard heap) or from a worker (own shard:
  /// direct push; foreign shard: mailbox, drained at the next barrier).
  /// Worker-emitted cross-node events must not be due before the current
  /// round ends — ShardRouter's Deliver() enforces that bound.
  void ScheduleEnvelope(core::EnvelopeRef env);

  /// Closure convenience over ScheduleEnvelope (tests, driver-phase
  /// plumbing): wraps `action` in a Control envelope from the appropriate
  /// shard pool.
  void ScheduleEvent(const EventKey& key, NodeIndex dst,
                     std::function<void()> action);

  /// Runs rounds until every shard heap and mailbox drains. Returns the
  /// number of events executed. Leaves Now() at the last executed event's
  /// time (mirrors sim::Simulator::Run).
  uint64_t Run();

  /// Runs events with time <= `until`; advances the clock to `until` even
  /// if everything drains earlier (mirrors sim::Simulator::RunUntil).
  uint64_t RunUntil(sim::SimTime until);

  bool Idle() const;
  size_t PendingEvents() const;
  uint64_t TotalEventsExecuted() const { return total_executed_; }
  uint64_t TotalRounds() const { return total_rounds_; }

  /// Registers a serial barrier callback (driver thread, workers parked).
  void AddBarrierHook(BarrierHook* hook) { hooks_.push_back(hook); }

  /// Cross-shard mailbox accounting: one batch is one non-empty
  /// per-(src-shard, dst-shard, round) envelope chain drained at a
  /// barrier. envelopes / batches is the mean batch width the message
  /// plane reports.
  struct MailboxStats {
    uint64_t batches = 0;
    uint64_t envelopes = 0;
  };
  MailboxStats mailbox_stats() const { return mailbox_; }

  /// Process-wide mailbox totals across all runtimes, live and destroyed
  /// (the bench reporter diffs these, mirroring MessagePool::Aggregate).
  static MailboxStats AggregateMailbox();

  /// Registry the calling thread must write: its shard's delta registry on
  /// a worker, the main registry on the driver.
  stats::MetricsRegistry* ActiveMetrics();

  stats::MetricsRegistry* shard_metrics(uint32_t shard) {
    return shard_state_[shard]->metrics.get();
  }

 private:
  struct EnvelopeLater {
    bool operator()(const core::EnvelopeRef& a,
                    const core::EnvelopeRef& b) const {
      // min-heap on the EventKey ordering — the single definition of the
      // deterministic execution order.
      return EventKey{b->time, b->src, b->seq} <
             EventKey{a->time, a->src, a->seq};
    }
  };

  /// Reusable generation barrier for num_shards_ workers + the driver.
  /// Spins briefly (cheap when rounds are dense), then sleeps on a condvar.
  class Gate {
   public:
    void Init(uint32_t parties, bool spin) {
      parties_ = parties;
      spin_ = spin;
    }
    void Arrive();

   private:
    uint32_t parties_ = 0;
    bool spin_ = true;
    std::atomic<uint64_t> gen_{0};
    std::atomic<uint32_t> waiting_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
  };

  /// One per-(src-shard, dst-shard, round) mailbox batch: an intrusive
  /// chain of envelopes linked through Envelope::link. A worker pushing a
  /// cross-shard send costs two pointer writes — no vector growth, no
  /// per-envelope container churn — and the barrier drain hands the driver
  /// one chain per (src, dst) pair instead of per-envelope traffic.
  struct OutChain {
    core::Envelope* head = nullptr;
    uint32_t count = 0;
  };

  struct alignas(64) ShardState {
    std::vector<core::EnvelopeRef> heap;  // push_heap/pop_heap, EnvelopeLater
    sim::SimTime now = 0;
    sim::SimTime last_executed = 0;
    bool executed_any = false;
    uint64_t executed = 0;
    EventKey current_key;
    std::unique_ptr<core::MessagePool> pool;
    std::unique_ptr<stats::MetricsRegistry> metrics;
    /// outbox[d]: chain of envelopes emitted this round for shard d
    /// (d != own shard); written only by the owning worker, drained only
    /// at the barrier.
    std::vector<OutChain> outbox;
  };

  void WorkerMain(uint32_t shard);
  void RunShardRound(ShardState& shard);
  void PushLocal(ShardState& shard, core::EnvelopeRef env);

  /// Barrier work (driver): drain mailboxes, merge metrics deltas, fire
  /// hooks. Runs with all workers parked.
  void SerialPhase();
  bool AllHeapsEmpty() const;
  sim::SimTime MinHeapTime() const;
  uint64_t RunLoop(bool bounded, sim::SimTime until);

  const uint32_t num_shards_;
  size_t num_nodes_;  // grows on join churn (GrowNodes, driver-only)
  const sim::SimTime round_width_;
  const uint32_t chunk_;

  std::vector<std::unique_ptr<ShardState>> shard_state_;
  std::vector<uint64_t> emit_seq_;  // per node; owner-shard written
  stats::MetricsRegistry* main_metrics_;
  core::EnvelopeDispatcher* dispatcher_ = nullptr;
  std::vector<BarrierHook*> hooks_;

  sim::SimTime now_ = sim::kTimeZero;
  sim::SimTime round_end_ = 0;  // stable while workers run
  uint64_t total_executed_ = 0;
  uint64_t total_rounds_ = 0;
  MailboxStats mailbox_;  // driver-written (SerialPhase)

  std::vector<std::thread> workers_;
  Gate start_gate_;
  Gate end_gate_;
  bool stop_ = false;  // read by workers after start_gate_ only
};

}  // namespace rjoin::runtime

#endif  // RJOIN_RUNTIME_SHARDED_RUNTIME_H_
