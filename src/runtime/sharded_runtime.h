#ifndef RJOIN_RUNTIME_SHARDED_RUNTIME_H_
#define RJOIN_RUNTIME_SHARDED_RUNTIME_H_

#include <atomic>
#include <compare>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/messages.h"
#include "sim/calendar_queue.h"
#include "sim/latency.h"
#include "sim/time.h"
#include "stats/metrics.h"

namespace rjoin::runtime {

using NodeIndex = stats::NodeIndex;

/// Globally unique, shard-count-invariant identity of a scheduled event:
/// its virtual delivery time, the node that emitted it, and that node's
/// emission sequence number. Each shard executes its events in EventKey
/// order, so the per-node execution order — and therefore every per-node
/// emission order — is the same for any number of shards. This is the
/// induction that makes parallel runs bit-identical to the 1-shard run.
struct EventKey {
  sim::SimTime time = 0;
  NodeIndex src = 0;
  uint64_t seq = 0;

  auto operator<=>(const EventKey&) const = default;
};

/// The scheduler lookahead `latency` guarantees: its minimum hop delay
/// (clamped to 1 for zero-latency-capable models, whose cross-node
/// deliveries the router defers by one tick, still deterministically).
/// A shard may run this many ticks past the least conservative bound it
/// holds on its peers without risking a late message. Experiments use this
/// when ExperimentConfig::round_width is left unset; the name is kept from
/// the retired lockstep scheduler, where the same quantity was the largest
/// exact-timing round width.
sim::SimTime AutoRoundWidth(const sim::LatencyModel& latency);

/// Sentinel for BarrierHook::NextRendezvous: no serial phase requested.
inline constexpr sim::SimTime kNoRendezvous = sim::kTimeMax;

/// Serial callback run on the driver thread at every rendezvous (workers
/// parked) and once more after the final drain. The RJoin engine uses it to
/// publish staged answers, apply staged churn, and refresh the frozen rate
/// snapshots that worker threads read in place of live cross-shard state.
class BarrierHook {
 public:
  virtual ~BarrierHook() = default;
  virtual void OnBarrier(sim::SimTime rendezvous_time) = 0;

  /// Latest virtual time the hook can tolerate execution running to without
  /// a serial phase: the next epoch spans [after, min over hooks of this).
  /// Return kNoRendezvous for "no constraint". The engine returns the next
  /// RIC-epoch boundary so frozen rate snapshots refresh on schedule.
  virtual sim::SimTime NextRendezvous(sim::SimTime /*after*/) {
    return kNoRendezvous;
  }
};

/// A discrete-event runtime that partitions the NodeIndex space into S
/// shards, each owned by a worker thread with its own event heap, message
/// pool, metrics delta registry, and derived RNG streams.
///
/// Execution is conservative-watermark parallel discrete-event simulation:
/// each shard s continuously publishes a monotone "safe send floor" — a
/// lower bound on the emission time of anything it may still send — and
/// advances its own frontier
///
///   watermark(s) = min over peers p of
///       max(floor(p), last drained send-time from p) + min hop latency,
///
/// executing local events strictly below that frontier, in EventKey order,
/// with no global barrier. Cross-shard sends are lock-free per-(src, dst)
/// mailbox chains the receiver drains continuously. Global synchronization
/// degenerates into a *rendezvous*: the driver only parks workers at a
/// horizon — the next time a BarrierHook needs a serial phase (RIC epoch
/// boundary), a staged churn/handoff op caps it (RequestRendezvousBy), or
/// the overlap cap / RunUntil bound is hit. Between rendezvous, shards
/// overlap freely across what the lockstep scheduler ran as many rounds.
///
/// Determinism is unchanged: per-shard execution order stays (time, src,
/// emit-seq), and a shard never consumes a cross-shard message before its
/// watermark proves no earlier one can arrive — so the execution, and every
/// result derived from it, is identical for any S (see docs/runtime.md for
/// the equivalence argument).
///
/// Events are pooled core::Envelopes, identical to the serial simulator's:
/// heaps and mailboxes move EnvelopeRefs, typed envelopes go to the
/// attached core::EnvelopeDispatcher (the transport), Control envelopes
/// run inline. Each shard's pool recycles envelopes through freelists
/// (cross-shard returns ride a lock-free remote list), so the steady-state
/// delivery path performs zero heap allocations per message.
///
/// Topology churn: the network (ChordNetwork) and the engine's per-node
/// state may change *at rendezvous only* — workers are parked there, so
/// the serial phase (BarrierHook::OnBarrier) may mutate the ring, grow the
/// node space (GrowNodes), and emit handoff envelopes. A worker staging a
/// churn op at event time t calls RequestRendezvousBy(t + lookahead) so the
/// op applies before any shard can outrun it; the resulting rendezvous
/// schedule is a pure function of the (shard-count-invariant) event
/// population, so every run applies the same churn at the same virtual
/// instants for any S. See docs/churn.md.
class ShardedRuntime {
 public:
  struct Options {
    uint32_t shards = 1;
    /// Conservative lookahead: the uniform minimum cross-shard hop latency
    /// the message plane guarantees (AutoRoundWidth() derives it from a
    /// latency model; ShardRouter::Deliver enforces it). A receiver may
    /// execute up to its least peer bound plus this many ticks.
    /// SetLinkLookahead() widens individual links above this base.
    sim::SimTime lookahead = 1;
    /// Caps how far execution may overlap between two rendezvous: epochs
    /// span at most this many ticks. 0 = unbounded (hooks and churn alone
    /// schedule rendezvous). ExperimentConfig::round_width maps here as a
    /// compatibility knob — the retired lockstep scheduler barriered every
    /// `round_width` ticks; this bounds the same interval from below.
    sim::SimTime overlap_cap = 0;
  };

  /// `main_metrics` is the registry experiments read; shard deltas are
  /// drained into it at every rendezvous.
  ShardedRuntime(const Options& options, size_t num_nodes,
                 stats::MetricsRegistry* main_metrics);
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  uint32_t shards() const { return num_shards_; }
  size_t num_nodes() const { return num_nodes_; }
  sim::SimTime lookahead() const { return lookahead_; }
  sim::SimTime overlap_cap() const { return overlap_cap_; }

  /// Per-link lookahead override: messages from `src_shard` to `dst_shard`
  /// are guaranteed to take at least `bound` ticks, letting dst_shard run
  /// that far ahead of src_shard. Must be >= the base lookahead and must
  /// match what the caller's delivery rule actually enforces. Driver-only,
  /// before any traffic (tests; experiments keep the uniform bound from
  /// sim::LatencyModel::MinDelayBetween via AutoRoundWidth).
  void SetLinkLookahead(uint32_t src_shard, uint32_t dst_shard,
                        sim::SimTime bound);

  /// Shard owning `node`: contiguous blocks of the initial NodeIndex space;
  /// churn-joined nodes (indices past the initial size) round-robin across
  /// shards so join-heavy runs stay balanced.
  uint32_t ShardOf(NodeIndex node) const {
    if (node < initial_nodes_) {
      const uint32_t s = node / chunk_;
      return s < num_shards_ ? s : num_shards_ - 1;
    }
    return static_cast<uint32_t>((node - initial_nodes_) % num_shards_);
  }

  /// Shard the calling thread works for, or -1 on the driver thread.
  static int CurrentShard();

  /// Virtual time: the executing event's time on a worker, the rendezvous
  /// cursor on the driver.
  sim::SimTime Now() const;

  /// Earliest time a cross-node message emitted now may be delivered:
  /// Now() + lookahead on a worker; Now() on the driver (workers parked, so
  /// no in-flight execution constrains the send). The name survives from
  /// the lockstep scheduler, where the same bound was the round edge.
  sim::SimTime CurrentRoundEnd() const;

  /// Key of the event being executed (workers, during an event, only).
  EventKey CurrentEventKey() const;

  /// Next emission sequence number of `src`. Must be called either from the
  /// worker owning `src`'s shard or from the driver between epochs.
  uint64_t NextEmitSeq(NodeIndex src) { return ++emit_seq_[src]; }

  /// Grows the node space to `num_nodes` (nodes joining at a rendezvous).
  /// Driver-only, workers parked: emission counters and every metrics
  /// registry resize here, before any worker can address the new nodes.
  /// Joined nodes are assigned round-robin (see ShardOf) — a deterministic,
  /// balanced placement that keeps the shard of every existing node stable.
  void GrowNodes(size_t num_nodes);

  /// Envelope pool of one shard. Acquire only on the owning worker thread,
  /// or on the driver while workers are parked.
  core::MessagePool* shard_pool(uint32_t shard) {
    return shard_state_[shard]->pool.get();
  }

  /// Envelope for an event that `executor`'s shard will run: drawn from the
  /// calling worker's own pool (the freelist is owner-thread-only), or from
  /// the executing shard's pool on the driver (workers parked). The single
  /// definition of the pool-borrowing rule.
  core::EnvelopeRef AcquireFor(NodeIndex executor) {
    const int cur = CurrentShard();
    const uint32_t shard =
        cur >= 0 ? static_cast<uint32_t>(cur) : ShardOf(executor);
    return shard_state_[shard]->pool->Acquire();
  }

  /// Receiver of typed envelopes (the transport); Control envelopes run
  /// without it.
  void set_dispatcher(core::EnvelopeDispatcher* dispatcher) {
    dispatcher_ = dispatcher;
  }

  /// Schedules `env` to run at `env->time` on `env->dst`'s shard, ordered
  /// by its (time, src, seq) key. Callable from the driver between epochs
  /// (pushes straight into the shard heap) or from a worker (own shard:
  /// direct heap push; foreign shard: lock-free mailbox push, stamped with
  /// the emitting event's time so the receiver can advance its frontier).
  /// Worker-emitted cross-node events must not be due before Now() +
  /// lookahead — ShardRouter's Deliver() enforces that bound.
  void ScheduleEnvelope(core::EnvelopeRef env);

  /// Closure convenience over ScheduleEnvelope (tests, driver-phase
  /// plumbing): wraps `action` in a Control envelope from the appropriate
  /// shard pool.
  void ScheduleEvent(const EventKey& key, NodeIndex dst,
                     std::function<void()> action);

  /// Caps the running epoch's horizon: guarantees a rendezvous (serial
  /// phase) no later than `when`, pulling every shard's watermark down to
  /// it. Worker-callable mid-epoch — the engine uses it when a churn op is
  /// staged at event time t, with when = t + lookahead: at that instant no
  /// shard can have executed past t + lookahead (the staging shard's
  /// published floor was still <= t), so the cap never rewinds anyone.
  /// No-op if the horizon is already earlier.
  void RequestRendezvousBy(sim::SimTime when);

  /// Runs epochs until every shard heap and mailbox drains. Returns the
  /// number of events executed. Leaves Now() at the last executed event's
  /// time (mirrors sim::Simulator::Run).
  uint64_t Run();

  /// Runs events with time <= `until`; advances the clock to `until` even
  /// if everything drains earlier (mirrors sim::Simulator::RunUntil).
  uint64_t RunUntil(sim::SimTime until);

  bool Idle() const;
  size_t PendingEvents() const;
  uint64_t TotalEventsExecuted() const { return total_executed_; }
  uint64_t TotalEpochs() const { return sched_.epochs; }

  /// Registers a serial rendezvous callback (driver thread, workers
  /// parked).
  void AddBarrierHook(BarrierHook* hook) { hooks_.push_back(hook); }

  /// Cross-shard mailbox accounting: one batch is one non-empty
  /// per-(src-shard, dst-shard) envelope chain taken over by its receiver
  /// (or swept by the driver at a rendezvous). envelopes / batches is the
  /// mean batch width the message plane reports.
  struct MailboxStats {
    uint64_t batches = 0;
    uint64_t envelopes = 0;
  };
  MailboxStats mailbox_stats() const { return mailbox_; }

  /// Process-wide mailbox totals across all runtimes, live and destroyed
  /// (the bench reporter diffs these, mirroring MessagePool::Aggregate).
  static MailboxStats AggregateMailbox();

  /// Watermark-scheduler health counters, merged at rendezvous.
  struct SchedulerStats {
    /// Rendezvous epochs the driver ran (each one gate cycle — the only
    /// global synchronization left).
    uint64_t epochs = 0;
    /// Park episodes: a worker found nothing executable below its
    /// watermark, spun out, and slept until a peer signalled progress.
    /// Wall-clock-dependent (not deterministic); a perf health signal only.
    uint64_t watermark_stalls = 0;
    /// Epochs whose horizon was capped early by RequestRendezvousBy
    /// (staged churn/handoff ops).
    uint64_t rendezvous_caps = 0;
    /// Lockstep rounds the retired scheduler would have run over the same
    /// executed span: sum over epochs of ceil(executed span / lookahead),
    /// idle gaps not subtracted (epochs jump them just as rounds did).
    uint64_t equivalent_rounds = 0;

    /// Fraction of the old barrier schedule eliminated by overlap:
    /// 1 - epochs / equivalent_rounds (0 when every epoch spans a single
    /// round's worth of virtual time).
    double overlap_ratio() const {
      return equivalent_rounds == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(epochs) /
                             static_cast<double>(equivalent_rounds);
    }
  };
  SchedulerStats scheduler_stats() const { return sched_; }

  /// Process-wide scheduler totals across all runtimes, live and destroyed
  /// (bench reporter diffs, mirroring AggregateMailbox).
  static SchedulerStats AggregateScheduler();

  /// Registry the calling thread must write: its shard's delta registry on
  /// a worker, the main registry on the driver.
  stats::MetricsRegistry* ActiveMetrics();

  stats::MetricsRegistry* shard_metrics(uint32_t shard) {
    return shard_state_[shard]->metrics.get();
  }

 private:
  struct EnvelopeLater {
    bool operator()(const core::EnvelopeRef& a,
                    const core::EnvelopeRef& b) const {
      // min-heap on the EventKey ordering — the single definition of the
      // deterministic execution order.
      return EventKey{b->time, b->src, b->seq} <
             EventKey{a->time, a->src, a->seq};
    }
  };

  /// Reusable generation barrier for num_shards_ workers + the driver.
  /// Spins briefly (cheap when epochs are dense), then sleeps on a condvar.
  class Gate {
   public:
    void Init(uint32_t parties, bool spin) {
      parties_ = parties;
      spin_ = spin;
    }
    void Arrive();

   private:
    uint32_t parties_ = 0;
    bool spin_ = true;
    std::atomic<uint64_t> gen_{0};
    std::atomic<uint32_t> waiting_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
  };

  /// One per-(src-shard, dst-shard) mailbox: an intrusive LIFO chain of
  /// envelopes linked through Envelope::link, pushed lock-free by the one
  /// producing worker and taken over whole by the one consuming worker
  /// (heap insertion re-sorts, so stack order is irrelevant). A cross-shard
  /// send costs one CAS — no vector growth, no per-envelope container
  /// churn.
  struct alignas(64) Mailbox {
    std::atomic<core::Envelope*> head{nullptr};
  };

  /// Published safe send floor of one shard (padded: written by its owner
  /// between batches, read by every peer's frontier scan).
  struct alignas(64) Floor {
    std::atomic<sim::SimTime> value{0};
  };

  struct alignas(64) ShardState {
    sim::CalendarQueue<EnvelopeLater> heap;  // pending events, EventKey order
    sim::SimTime now = 0;
    sim::SimTime last_executed = 0;
    bool executed_any = false;
    uint64_t executed = 0;
    sim::SimTime epoch_max_time = 0;  // largest executed time this epoch
    EventKey current_key;
    std::unique_ptr<core::MessagePool> pool;
    std::unique_ptr<stats::MetricsRegistry> metrics;
    /// last_drained_emit[p]: largest Envelope::emit_time drained from peer
    /// p so far; emissions are nondecreasing per shard, so this bounds
    /// everything p will still send (the "last drained send-time" frontier
    /// term).
    std::vector<sim::SimTime> last_drained_emit;
    MailboxStats mailbox;      // worker-drained batches, merged at rendezvous
    uint64_t stalls = 0;       // park episodes, merged at rendezvous
  };

  void WorkerMain(uint32_t shard);
  /// One epoch on one worker: scan peer floors + drain mailboxes, execute
  /// below the watermark, publish the own floor, repeat; park on a stall.
  void RunShardEpoch(uint32_t self, ShardState& shard);
  /// Frontier scan: refreshes the bound this shard holds on its peers and
  /// drains their mailboxes (floors are read *before* the drain — anything
  /// below a read floor is then guaranteed to be in the heap).
  sim::SimTime ScanFrontier(uint32_t self, ShardState& shard);
  void DrainMailbox(uint32_t from, uint32_t self, ShardState& shard);
  void ExecuteEnvelope(ShardState& shard, core::EnvelopeRef env);
  void PushLocal(ShardState& shard, core::EnvelopeRef env);
  void MaybeWakeParked();
  void Park(ShardState& shard);

  /// Rendezvous work (driver, workers parked): sweep leftover mailbox
  /// chains into heaps, merge metrics deltas and scheduler counters.
  void RendezvousDrain();
  /// Floors for the next epoch: floor(s) = min(own next event, earliest
  /// peer event + its last-hop lookahead) — the exact serial fixpoint,
  /// cheap to compute with every heap visible.
  void InitFloors();
  sim::SimTime ComputeHorizon(sim::SimTime base, bool bounded,
                              sim::SimTime until);
  bool AllHeapsEmpty() const;
  sim::SimTime MinHeapTime() const;
  uint64_t RunLoop(bool bounded, sim::SimTime until);

  sim::SimTime LinkLookahead(uint32_t src_shard, uint32_t dst_shard) const {
    return link_lookahead_[src_shard * num_shards_ + dst_shard];
  }

  const uint32_t num_shards_;
  size_t num_nodes_;  // grows on join churn (GrowNodes, driver-only)
  const size_t initial_nodes_;  // block-partitioned prefix of the id space
  const sim::SimTime lookahead_;
  const sim::SimTime overlap_cap_;
  const uint32_t chunk_;

  std::vector<std::unique_ptr<ShardState>> shard_state_;
  std::vector<uint64_t> emit_seq_;  // per node; owner-shard written
  stats::MetricsRegistry* main_metrics_;
  core::EnvelopeDispatcher* dispatcher_ = nullptr;
  std::vector<BarrierHook*> hooks_;

  std::vector<Mailbox> mailboxes_;          // [src * S + dst]
  std::vector<Floor> floors_;               // [shard]
  std::vector<sim::SimTime> link_lookahead_;  // [src * S + dst]

  /// End of the running epoch. Monotone within an epoch except for
  /// RequestRendezvousBy, which only lowers it — and proves no shard has
  /// executed past the new value (see the method comment).
  std::atomic<sim::SimTime> horizon_{0};
  /// Envelopes in the plane (heaps + mailboxes + the one being executed).
  /// Incremented before a push is visible, decremented after execution
  /// finished emitting — zero is stable and means fully drained, which is
  /// what lets workers terminate an unbounded epoch without a barrier.
  std::atomic<int64_t> pending_{0};

  std::atomic<uint32_t> parked_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  /// Horizon caps applied this epoch (workers increment, driver merges).
  std::atomic<uint64_t> caps_{0};
  /// Whether stalled workers spin before parking (only worthwhile when the
  /// hardware can actually run the peers concurrently).
  bool spin_ = true;

  sim::SimTime now_ = sim::kTimeZero;
  sim::SimTime epoch_base_ = 0;  // stable while workers run
  uint64_t total_executed_ = 0;
  MailboxStats mailbox_;   // driver-merged (rendezvous)
  SchedulerStats sched_;   // driver-merged (rendezvous)

  std::vector<std::thread> workers_;
  Gate start_gate_;
  Gate end_gate_;
  bool stop_ = false;  // read by workers after start_gate_ only
};

}  // namespace rjoin::runtime

#endif  // RJOIN_RUNTIME_SHARDED_RUNTIME_H_
