#include "runtime/sharded_runtime.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "stats/trace.h"
#include "util/logging.h"

namespace rjoin::runtime {

namespace {
/// Shard index the current thread works for; -1 on the driver (and on any
/// thread that is not a runtime worker).
thread_local int tls_current_shard = -1;

constexpr int kGateSpinIterations = 2048;

// Process-wide totals (worker/driver writes, any-thread reads) across all
// runtimes, live and destroyed — the bench reporter diffs these.
std::atomic<uint64_t> g_mailbox_batches{0};
std::atomic<uint64_t> g_mailbox_envelopes{0};
std::atomic<uint64_t> g_epochs{0};
std::atomic<uint64_t> g_stalls{0};
std::atomic<uint64_t> g_caps{0};
std::atomic<uint64_t> g_equiv_rounds{0};

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}
}  // namespace

sim::SimTime AutoRoundWidth(const sim::LatencyModel& latency) {
  return std::max<sim::SimTime>(1, latency.min_delay());
}

// ----------------------------------------------------------------- Gate

void ShardedRuntime::Gate::Arrive() {
  const uint64_t gen = gen_.load(std::memory_order_acquire);
  if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Last arriver opens the gate. All other parties are inside Arrive()
    // for this generation, so resetting the counter first is safe.
    waiting_.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      gen_.store(gen + 1, std::memory_order_release);
    }
    cv_.notify_all();
    return;
  }
  if (spin_) {
    for (int i = 0; i < kGateSpinIterations; ++i) {
      if (gen_.load(std::memory_order_acquire) != gen) return;
      CpuRelax();
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock,
           [&] { return gen_.load(std::memory_order_acquire) != gen; });
}

// -------------------------------------------------------- construction

namespace {
uint32_t BlockChunk(size_t num_nodes, uint32_t shards) {
  const size_t chunk = (num_nodes + shards - 1) / shards;
  return static_cast<uint32_t>(chunk > 0 ? chunk : 1);
}
}  // namespace

ShardedRuntime::ShardedRuntime(const Options& options, size_t num_nodes,
                               stats::MetricsRegistry* main_metrics)
    : num_shards_(std::max<uint32_t>(1, options.shards)),
      num_nodes_(num_nodes),
      initial_nodes_(num_nodes),
      lookahead_(std::max<sim::SimTime>(1, options.lookahead)),
      overlap_cap_(options.overlap_cap),
      chunk_(BlockChunk(num_nodes, std::max<uint32_t>(1, options.shards))),
      emit_seq_(num_nodes, 0),
      main_metrics_(main_metrics),
      mailboxes_(static_cast<size_t>(num_shards_) * num_shards_),
      floors_(num_shards_),
      link_lookahead_(static_cast<size_t>(num_shards_) * num_shards_,
                      std::max<sim::SimTime>(1, options.lookahead)) {
  RJOIN_CHECK(main_metrics_ != nullptr);
  main_metrics_->Resize(num_nodes_);
  shard_state_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    auto state = std::make_unique<ShardState>();
    state->pool = std::make_unique<core::MessagePool>();
    state->metrics = std::make_unique<stats::MetricsRegistry>(num_nodes_);
    state->metrics->EnableDeltaTracking();
    state->last_drained_emit.assign(num_shards_, 0);
    shard_state_.push_back(std::move(state));
  }
  // Spinning is counterproductive when the hardware cannot actually run the
  // workers in parallel.
  spin_ = std::thread::hardware_concurrency() > num_shards_;
  start_gate_.Init(num_shards_ + 1, spin_);
  end_gate_.Init(num_shards_ + 1, spin_);
  workers_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    workers_.emplace_back([this, s] { WorkerMain(s); });
  }
}

ShardedRuntime::~ShardedRuntime() {
  stop_ = true;
  start_gate_.Arrive();  // releases workers; they observe stop_ and exit
  for (auto& w : workers_) w.join();
  // Drain heaps and mailboxes while every shard's pool is still alive:
  // releasing an EnvelopeRef returns the envelope to its origin pool, which
  // may belong to a different shard than the heap holding it. Releasing a
  // chain head walks the whole link chain back into its pools.
  for (Mailbox& box : mailboxes_) {
    core::Envelope* e = box.head.exchange(nullptr, std::memory_order_relaxed);
    if (e != nullptr) core::MessagePool::Release(e);
  }
  for (auto& shard : shard_state_) shard->heap.Clear();
}

void ShardedRuntime::SetLinkLookahead(uint32_t src_shard, uint32_t dst_shard,
                                      sim::SimTime bound) {
  RJOIN_CHECK(tls_current_shard < 0)
      << "SetLinkLookahead must run on the driver (workers parked)";
  RJOIN_CHECK(bound >= lookahead_)
      << "per-link lookahead below the base lookahead";
  link_lookahead_[static_cast<size_t>(src_shard) * num_shards_ + dst_shard] =
      bound;
}

void ShardedRuntime::GrowNodes(size_t num_nodes) {
  RJOIN_CHECK(tls_current_shard < 0)
      << "GrowNodes must run on the driver (workers parked)";
  if (num_nodes <= num_nodes_) return;
  num_nodes_ = num_nodes;
  emit_seq_.resize(num_nodes, 0);
  main_metrics_->Resize(num_nodes);
  for (auto& shard : shard_state_) shard->metrics->Resize(num_nodes);
}

ShardedRuntime::MailboxStats ShardedRuntime::AggregateMailbox() {
  MailboxStats s;
  s.batches = g_mailbox_batches.load(std::memory_order_relaxed);
  s.envelopes = g_mailbox_envelopes.load(std::memory_order_relaxed);
  return s;
}

ShardedRuntime::SchedulerStats ShardedRuntime::AggregateScheduler() {
  SchedulerStats s;
  s.epochs = g_epochs.load(std::memory_order_relaxed);
  s.watermark_stalls = g_stalls.load(std::memory_order_relaxed);
  s.rendezvous_caps = g_caps.load(std::memory_order_relaxed);
  s.equivalent_rounds = g_equiv_rounds.load(std::memory_order_relaxed);
  return s;
}

// --------------------------------------------------------- thread roles

int ShardedRuntime::CurrentShard() { return tls_current_shard; }

void ShardedRuntime::WorkerMain(uint32_t shard) {
  tls_current_shard = static_cast<int>(shard);
  shard_state_[shard]->metrics->BindOwnerThread();
  shard_state_[shard]->pool->BindOwnerThread();
  stats::Tracer::BindTrack(shard);
  for (;;) {
    start_gate_.Arrive();
    if (stop_) return;
    RunShardEpoch(shard, *shard_state_[shard]);
    end_gate_.Arrive();
  }
}

sim::SimTime ShardedRuntime::Now() const {
  const int s = tls_current_shard;
  return s >= 0 ? shard_state_[s]->now : now_;
}

sim::SimTime ShardedRuntime::CurrentRoundEnd() const {
  const int s = tls_current_shard;
  return s >= 0 ? sim::SaturatingAdd(shard_state_[s]->now, lookahead_) : now_;
}

EventKey ShardedRuntime::CurrentEventKey() const {
  const int s = tls_current_shard;
  RJOIN_CHECK(s >= 0) << "CurrentEventKey outside a worker event";
  return shard_state_[s]->current_key;
}

stats::MetricsRegistry* ShardedRuntime::ActiveMetrics() {
  const int s = tls_current_shard;
  return s >= 0 ? shard_state_[s]->metrics.get() : main_metrics_;
}

// ---------------------------------------------------------- scheduling

void ShardedRuntime::PushLocal(ShardState& shard, core::EnvelopeRef env) {
  shard.heap.Push(std::move(env));
}

void ShardedRuntime::ScheduleEnvelope(core::EnvelopeRef env) {
  // Routing stages (kRoute/kDirect) execute on the *emitting* node's shard
  // — that is where the O(log N) work and the emission-seq draw belong;
  // only finished deliveries place by destination.
  const NodeIndex place =
      env->stage == core::EnvelopeStage::kDeliver ? env->dst : env->src;
  RJOIN_CHECK(place < num_nodes_) << "event for unknown node " << place;
  const uint32_t dst_shard = ShardOf(place);
  const int cur = tls_current_shard;
  // Count the envelope into the plane before it becomes visible: zero
  // pending is the workers' distributed-termination signal, so it may never
  // be observed while a scheduled envelope is in flight.
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (cur < 0) {
    // Driver phase: workers are parked, every heap is safely writable.
    PushLocal(*shard_state_[dst_shard], std::move(env));
    return;
  }
  ShardState& self = *shard_state_[cur];
  if (static_cast<uint32_t>(cur) == dst_shard) {
    PushLocal(self, std::move(env));
    return;
  }
  // Cross-shard send: stamp the emission time (the receiver's frontier
  // term) and CAS the envelope onto the (src, dst) mailbox chain. Single
  // envelopes only reach here (MultiSend chains defer driver-side onto
  // their own shard), so `link` is free to carry the chain.
  core::Envelope* e = env.release();
  RJOIN_DCHECK(e->link == nullptr);
  e->emit_time = self.now;
  // Cross-shard sends may not be due before emission + link lookahead.
  RJOIN_DCHECK(e->time >=
               sim::SaturatingAdd(e->emit_time,
                                  LinkLookahead(static_cast<uint32_t>(cur),
                                                dst_shard)));
  Mailbox& box =
      mailboxes_[static_cast<size_t>(cur) * num_shards_ + dst_shard];
  core::Envelope* head = box.head.load(std::memory_order_relaxed);
  do {
    e->link = head;
  } while (!box.head.compare_exchange_weak(
      head, e, std::memory_order_release, std::memory_order_relaxed));
  MaybeWakeParked();
}

void ShardedRuntime::ScheduleEvent(const EventKey& key, NodeIndex dst,
                                   std::function<void()> action) {
  core::EnvelopeRef env = AcquireFor(dst);
  env->time = key.time;
  env->src = key.src;
  env->seq = key.seq;
  env->dst = dst;
  env->task = core::MessageTask(core::Control{std::move(action)});
  ScheduleEnvelope(std::move(env));
}

void ShardedRuntime::RequestRendezvousBy(sim::SimTime when) {
  RJOIN_DCHECK(when > epoch_base_);  // cap must leave the epoch non-empty
  sim::SimTime cur = horizon_.load(std::memory_order_relaxed);
  while (when < cur) {
    if (horizon_.compare_exchange_weak(cur, when, std::memory_order_release,
                                       std::memory_order_relaxed)) {
      caps_.fetch_add(1, std::memory_order_relaxed);
      MaybeWakeParked();
      return;
    }
  }
}

// ------------------------------------------------------- watermark loop

void ShardedRuntime::DrainMailbox(uint32_t from, uint32_t self,
                                  ShardState& shard) {
  Mailbox& box = mailboxes_[static_cast<size_t>(from) * num_shards_ + self];
  if (box.head.load(std::memory_order_relaxed) == nullptr) return;
  core::Envelope* e = box.head.exchange(nullptr, std::memory_order_acquire);
  if (e == nullptr) return;
  uint64_t n = 0;
  sim::SimTime newest = shard.last_drained_emit[from];
  while (e != nullptr) {
    core::Envelope* next = e->link;
    e->link = nullptr;
    newest = std::max(newest, e->emit_time);
    // A drained delivery due before emission + link lookahead would mean
    // the sender broke the bound this shard's watermark is built on.
    RJOIN_DCHECK(e->time >=
                 sim::SaturatingAdd(e->emit_time, LinkLookahead(from, self)));
    PushLocal(shard, core::EnvelopeRef(e));
    e = next;
    ++n;
  }
  shard.last_drained_emit[from] = newest;
  shard.mailbox.batches += 1;
  shard.mailbox.envelopes += n;
}

sim::SimTime ShardedRuntime::ScanFrontier(uint32_t self, ShardState& shard) {
  sim::SimTime in_bound = sim::kTimeMax;
  for (uint32_t p = 0; p < num_shards_; ++p) {
    if (p == self) continue;
    // Read the peer's floor *before* draining its mailbox: anything the
    // peer emitted before publishing that floor is then guaranteed to be
    // in our heap, and anything later is due at or after floor + link
    // lookahead. The drained chain's own send-times tighten the bound
    // further (a shard's emissions are nondecreasing in time).
    const sim::SimTime floor =
        floors_[p].value.load(std::memory_order_acquire);
    DrainMailbox(p, self, shard);
    const sim::SimTime known = std::max(floor, shard.last_drained_emit[p]);
    in_bound = std::min(in_bound,
                        sim::SaturatingAdd(known, LinkLookahead(p, self)));
  }
  return in_bound;
}

void ShardedRuntime::ExecuteEnvelope(ShardState& shard,
                                     core::EnvelopeRef env) {
  shard.now = env->time;
  shard.current_key = EventKey{env->time, env->src, env->seq};
  if (stats::Tracer::On()) {
    stats::Tracer::SetContext(env->time, env->src, env->seq);
  }
  if (env->stage == core::EnvelopeStage::kDeliver &&
      env->task.kind() == core::MessageKind::kControl) {
    core::RunControl(std::move(env));
  } else {
    RJOIN_CHECK(dispatcher_ != nullptr)
        << "typed envelope popped without a dispatcher";
    dispatcher_->DispatchEnvelope(std::move(env));
  }
  ++shard.executed;
  shard.last_executed = shard.current_key.time;
  shard.epoch_max_time = shard.current_key.time;
  shard.executed_any = true;
}

void ShardedRuntime::MaybeWakeParked() {
  if (parked_.load(std::memory_order_seq_cst) == 0) return;
  // Taking the mutex (briefly, empty critical section) closes the race
  // with a worker that passed its last re-check but has not slept yet; the
  // timed wait in Park() backstops the remaining notify-before-increment
  // window.
  { std::lock_guard<std::mutex> lock(park_mutex_); }
  park_cv_.notify_all();
}

void ShardedRuntime::Park(ShardState& shard) {
  ++shard.stalls;
  parked_.fetch_add(1, std::memory_order_seq_cst);
  const auto parked_at = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(park_mutex_);
    park_cv_.wait_for(lock, std::chrono::microseconds(200));
  }
  parked_.fetch_sub(1, std::memory_order_seq_cst);
  const uint64_t stall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - parked_at)
          .count());
  stats::Tracer::RecordStallNanos(stall_ns);
  if (stats::Tracer::On()) {
    stats::Tracer::Record(stats::TraceCategory::kStall, 0,
                          static_cast<uint32_t>(tls_current_shard), 0,
                          stall_ns, shard.now);
  }
}

void ShardedRuntime::RunShardEpoch(uint32_t self, ShardState& shard) {
  auto& heap = shard.heap;
  const int spin_scans = spin_ ? 128 : 2;
  int idle_scans = 0;
  for (;;) {
    const sim::SimTime in_bound = ScanFrontier(self, shard);
    // Execute strictly below the watermark, in EventKey order. The horizon
    // is re-read per event: a peer staging churn caps it mid-epoch, and the
    // frontier math guarantees the cap arrives before any shard could have
    // executed past it (see RequestRendezvousBy).
    uint64_t ran = 0;
    while (!heap.empty() && heap.PeekTime() < in_bound &&
           heap.PeekTime() < horizon_.load(std::memory_order_acquire)) {
      core::EnvelopeRef env = heap.Pop();
      ExecuteEnvelope(shard, std::move(env));
      // Decrement only after the event finished emitting: its sends were
      // counted in first, so pending can never dip to a false zero.
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      ++ran;
    }
    // Publish the safe send floor: nothing this shard emits from here on
    // can be due before min(next local event, earliest possible arrival).
    // Monotone by construction; the release store orders it after every
    // mailbox push of the batch above.
    const sim::SimTime heap_min =
        heap.empty() ? sim::kTimeMax : heap.PeekTime();
    const sim::SimTime floor = std::min(heap_min, in_bound);
    if (floor > floors_[self].value.load(std::memory_order_relaxed)) {
      floors_[self].value.store(floor, std::memory_order_release);
      MaybeWakeParked();
    }
    // Epoch exit: the plane fully drained (stable — pending is incremented
    // before any push is visible), or this shard proved it can neither
    // execute nor receive anything below the horizon.
    if (pending_.load(std::memory_order_acquire) == 0) return;
    const sim::SimTime horizon = horizon_.load(std::memory_order_acquire);
    if (in_bound >= horizon && heap_min >= horizon) return;
    if (ran != 0) {
      idle_scans = 0;
      continue;
    }
    // Watermark stall: nothing executable until a peer advances. Spin a
    // few scans (progress is usually one floor-publish away), then park.
    if (++idle_scans < spin_scans) {
      if (spin_) {
        CpuRelax();
      } else {
        std::this_thread::yield();
      }
      continue;
    }
    Park(shard);
    idle_scans = 0;
  }
}

// ------------------------------------------------------------ driver loop

void ShardedRuntime::RendezvousDrain() {
  // Sweep mailbox chains workers left behind (a receiver exits its epoch as
  // soon as its watermark passes the horizon; peers may push later — such
  // mail is provably due at or after the horizon). Fixed scan order keeps
  // the walk deterministic and cache-friendly.
  for (uint32_t src = 0; src < num_shards_; ++src) {
    for (uint32_t dst = 0; dst < num_shards_; ++dst) {
      Mailbox& box =
          mailboxes_[static_cast<size_t>(src) * num_shards_ + dst];
      core::Envelope* e =
          box.head.exchange(nullptr, std::memory_order_acquire);
      if (e == nullptr) continue;
      ShardState& to = *shard_state_[dst];
      ++to.mailbox.batches;
      while (e != nullptr) {
        core::Envelope* next = e->link;
        e->link = nullptr;
        RJOIN_CHECK(e->time >= now_)
            << "cross-shard event scheduled into the past (missing "
               "lookahead deferral?)";
        PushLocal(to, core::EnvelopeRef(e));
        ++to.mailbox.envelopes;
        e = next;
      }
    }
  }
  // Merge per-shard counters and metrics deltas; sums commute, so the
  // totals match the serial run.
  for (auto& shard : shard_state_) {
    mailbox_.batches += shard->mailbox.batches;
    mailbox_.envelopes += shard->mailbox.envelopes;
    g_mailbox_batches.fetch_add(shard->mailbox.batches,
                                std::memory_order_relaxed);
    g_mailbox_envelopes.fetch_add(shard->mailbox.envelopes,
                                  std::memory_order_relaxed);
    shard->mailbox = MailboxStats{};
    sched_.watermark_stalls += shard->stalls;
    g_stalls.fetch_add(shard->stalls, std::memory_order_relaxed);
    shard->stalls = 0;
    main_metrics_->MergeFrom(shard->metrics.get());
  }
  const uint64_t caps = caps_.exchange(0, std::memory_order_relaxed);
  sched_.rendezvous_caps += caps;
  g_caps.fetch_add(caps, std::memory_order_relaxed);
}

void ShardedRuntime::InitFloors() {
  // Exact serial fixpoint of the frontier equations, cheap with every heap
  // visible: a shard's earliest future emission is its own next event, or
  // any other pending event relayed over at least one hop into it.
  sim::SimTime min_all = sim::kTimeMax;
  sim::SimTime second = sim::kTimeMax;
  uint32_t min_shard = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const auto& heap = shard_state_[s]->heap;
    const sim::SimTime top =
        heap.empty() ? sim::kTimeMax : heap.PeekTime();
    if (top < min_all) {
      second = min_all;
      min_all = top;
      min_shard = s;
    } else {
      second = std::min(second, top);
    }
  }
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const auto& heap = shard_state_[s]->heap;
    const sim::SimTime own =
        heap.empty() ? sim::kTimeMax : heap.PeekTime();
    sim::SimTime min_in = sim::kTimeMax;
    for (uint32_t q = 0; q < num_shards_; ++q) {
      if (q != s) min_in = std::min(min_in, LinkLookahead(q, s));
    }
    const sim::SimTime others = s == min_shard ? second : min_all;
    const sim::SimTime floor =
        std::min(own, sim::SaturatingAdd(others, min_in));
    floors_[s].value.store(floor, std::memory_order_relaxed);
  }
}

sim::SimTime ShardedRuntime::ComputeHorizon(sim::SimTime base, bool bounded,
                                            sim::SimTime until) {
  sim::SimTime horizon = sim::kTimeMax;
  for (BarrierHook* hook : hooks_) {
    horizon = std::min(horizon, hook->NextRendezvous(base));
  }
  if (overlap_cap_ > 0) {
    horizon = std::min(horizon, sim::SaturatingAdd(base, overlap_cap_));
  }
  if (bounded) horizon = std::min(horizon, until + 1);  // until is inclusive
  // A bounded run whose clock already sits past `until` (events scheduled
  // behind the cursor) still needs one degenerate epoch to execute them.
  if (horizon <= base) horizon = sim::SaturatingAdd(base, 1);
  return horizon;
}

bool ShardedRuntime::AllHeapsEmpty() const {
  for (const auto& shard : shard_state_) {
    if (!shard->heap.empty()) return false;
  }
  return true;
}

sim::SimTime ShardedRuntime::MinHeapTime() const {
  sim::SimTime min_time = sim::kTimeMax;
  for (const auto& shard : shard_state_) {
    if (!shard->heap.empty()) {
      min_time = std::min(min_time, shard->heap.PeekTime());
    }
  }
  return min_time;
}

uint64_t ShardedRuntime::RunLoop(bool bounded, sim::SimTime until) {
  RJOIN_CHECK(tls_current_shard < 0)
      << "Run()/RunUntil() must be called from the driver thread";
  const uint64_t executed_before = total_executed_;
  for (auto& shard : shard_state_) shard->executed_any = false;

  for (;;) {
    RendezvousDrain();
    if (AllHeapsEmpty() || (bounded && MinHeapTime() > until)) {
      // Final rendezvous: lets hooks publish what the last epoch staged. A
      // hook may also *create* work — churn staged in the last epoch is
      // applied here and emits handoff envelopes — so re-check: only break
      // when the hooks left the heaps drained (or beyond the bound).
      if (stats::Tracer::On()) stats::Tracer::SetContext(now_, 0, 0);
      for (BarrierHook* hook : hooks_) hook->OnBarrier(now_);
      if (AllHeapsEmpty() || (bounded && MinHeapTime() > until)) break;
      continue;
    }

    now_ = std::max(now_, MinHeapTime());  // jump idle gaps in one step
    // Driver-phase records (churn application inside OnBarrier, the
    // rendezvous marker below) carry the EventKey (now, 0, 0); real events
    // never use seq 0, so the driver cannot collide with a worker key.
    if (stats::Tracer::On()) stats::Tracer::SetContext(now_, 0, 0);
    for (BarrierHook* hook : hooks_) hook->OnBarrier(now_);
    const sim::SimTime base = now_;
    const sim::SimTime horizon = ComputeHorizon(base, bounded, until);
    epoch_base_ = base;
    horizon_.store(horizon, std::memory_order_relaxed);
    InitFloors();
    for (auto& shard : shard_state_) {
      shard->now = base;
      shard->epoch_max_time = base;
      // Drained send-times only bound a peer's *future* emissions within
      // one epoch (per-shard emission times are monotone there); across
      // epochs the floors are re-derived exactly, so start the per-peer
      // terms from scratch.
      std::fill(shard->last_drained_emit.begin(),
                shard->last_drained_emit.end(), sim::kTimeZero);
    }

    start_gate_.Arrive();
    end_gate_.Arrive();

    uint64_t epoch_executed = 0;
    sim::SimTime max_exec = base;
    for (auto& shard : shard_state_) {
      epoch_executed += shard->executed;
      shard->executed = 0;
      max_exec = std::max(max_exec, shard->epoch_max_time);
    }
    total_executed_ += epoch_executed;
    ++sched_.epochs;
    g_epochs.fetch_add(1, std::memory_order_relaxed);
    if (stats::Tracer::On()) {
      stats::Tracer::Record(stats::TraceCategory::kRendezvous, 0, 0,
                            num_shards_, horizon, base);
    }
    const uint64_t equiv = (max_exec - base) / lookahead_ + 1;
    sched_.equivalent_rounds += equiv;
    g_equiv_rounds.fetch_add(equiv, std::memory_order_relaxed);
    // The epoch may have been capped below the horizon we launched with.
    const sim::SimTime reached = horizon_.load(std::memory_order_relaxed);
    now_ = reached == sim::kTimeMax ? max_exec : reached - 1;
  }

  // Mirror sim::Simulator clock semantics.
  if (bounded) {
    now_ = std::max(now_, until);
  } else {
    sim::SimTime last = sim::kTimeZero;
    bool any = false;
    for (const auto& shard : shard_state_) {
      if (shard->executed_any) {
        last = std::max(last, shard->last_executed);
        any = true;
      }
    }
    if (any) now_ = last;
  }
  return total_executed_ - executed_before;
}

uint64_t ShardedRuntime::Run() {
  return RunLoop(/*bounded=*/false, /*until=*/0);
}

uint64_t ShardedRuntime::RunUntil(sim::SimTime until) {
  return RunLoop(/*bounded=*/true, until);
}

bool ShardedRuntime::Idle() const { return PendingEvents() == 0; }

size_t ShardedRuntime::PendingEvents() const {
  const int64_t pending = pending_.load(std::memory_order_acquire);
  return pending > 0 ? static_cast<size_t>(pending) : 0;
}

}  // namespace rjoin::runtime
