#include "runtime/sharded_runtime.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace rjoin::runtime {

namespace {
/// Shard index the current thread works for; -1 on the driver (and on any
/// thread that is not a runtime worker).
thread_local int tls_current_shard = -1;

constexpr int kSpinIterations = 2048;

// Process-wide mailbox totals (driver-thread writes, any-thread reads).
std::atomic<uint64_t> g_mailbox_batches{0};
std::atomic<uint64_t> g_mailbox_envelopes{0};
}  // namespace

sim::SimTime AutoRoundWidth(const sim::LatencyModel& latency) {
  return std::max<sim::SimTime>(1, latency.min_delay());
}

// ----------------------------------------------------------------- Gate

void ShardedRuntime::Gate::Arrive() {
  const uint64_t gen = gen_.load(std::memory_order_acquire);
  if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Last arriver opens the gate. All other parties are inside Arrive()
    // for this generation, so resetting the counter first is safe.
    waiting_.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      gen_.store(gen + 1, std::memory_order_release);
    }
    cv_.notify_all();
    return;
  }
  if (spin_) {
    for (int i = 0; i < kSpinIterations; ++i) {
      if (gen_.load(std::memory_order_acquire) != gen) return;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock,
           [&] { return gen_.load(std::memory_order_acquire) != gen; });
}

// -------------------------------------------------------- construction

namespace {
uint32_t BlockChunk(size_t num_nodes, uint32_t shards) {
  const size_t chunk = (num_nodes + shards - 1) / shards;
  return static_cast<uint32_t>(chunk > 0 ? chunk : 1);
}
}  // namespace

ShardedRuntime::ShardedRuntime(const Options& options, size_t num_nodes,
                               stats::MetricsRegistry* main_metrics)
    : num_shards_(std::max<uint32_t>(1, options.shards)),
      num_nodes_(num_nodes),
      round_width_(std::max<sim::SimTime>(1, options.round_width)),
      chunk_(BlockChunk(num_nodes, std::max<uint32_t>(1, options.shards))),
      emit_seq_(num_nodes, 0),
      main_metrics_(main_metrics) {
  RJOIN_CHECK(main_metrics_ != nullptr);
  main_metrics_->Resize(num_nodes_);
  shard_state_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    auto state = std::make_unique<ShardState>();
    state->pool = std::make_unique<core::MessagePool>();
    state->metrics = std::make_unique<stats::MetricsRegistry>(num_nodes_);
    state->metrics->EnableDeltaTracking();
    state->outbox.resize(num_shards_);
    shard_state_.push_back(std::move(state));
  }
  // Spinning is counterproductive when the hardware cannot actually run the
  // workers in parallel.
  const bool spin = std::thread::hardware_concurrency() > num_shards_;
  start_gate_.Init(num_shards_ + 1, spin);
  end_gate_.Init(num_shards_ + 1, spin);
  workers_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    workers_.emplace_back([this, s] { WorkerMain(s); });
  }
}

ShardedRuntime::~ShardedRuntime() {
  stop_ = true;
  start_gate_.Arrive();  // releases workers; they observe stop_ and exit
  for (auto& w : workers_) w.join();
  // Drain heaps and mailboxes while every shard's pool is still alive:
  // releasing an EnvelopeRef returns the envelope to its origin pool, which
  // may belong to a different shard than the heap holding it. Releasing a
  // chain head walks the whole link chain back into its pools.
  for (auto& shard : shard_state_) {
    shard->heap.clear();
    for (OutChain& box : shard->outbox) {
      if (box.head != nullptr) core::MessagePool::Release(box.head);
      box = OutChain{};
    }
  }
}

void ShardedRuntime::GrowNodes(size_t num_nodes) {
  RJOIN_CHECK(tls_current_shard < 0)
      << "GrowNodes must run on the driver (workers parked)";
  if (num_nodes <= num_nodes_) return;
  num_nodes_ = num_nodes;
  emit_seq_.resize(num_nodes, 0);
  main_metrics_->Resize(num_nodes);
  for (auto& shard : shard_state_) shard->metrics->Resize(num_nodes);
}

ShardedRuntime::MailboxStats ShardedRuntime::AggregateMailbox() {
  MailboxStats s;
  s.batches = g_mailbox_batches.load(std::memory_order_relaxed);
  s.envelopes = g_mailbox_envelopes.load(std::memory_order_relaxed);
  return s;
}

// --------------------------------------------------------- thread roles

int ShardedRuntime::CurrentShard() { return tls_current_shard; }

void ShardedRuntime::WorkerMain(uint32_t shard) {
  tls_current_shard = static_cast<int>(shard);
  shard_state_[shard]->metrics->BindOwnerThread();
  shard_state_[shard]->pool->BindOwnerThread();
  for (;;) {
    start_gate_.Arrive();
    if (stop_) return;
    RunShardRound(*shard_state_[shard]);
    end_gate_.Arrive();
  }
}

sim::SimTime ShardedRuntime::Now() const {
  const int s = tls_current_shard;
  return s >= 0 ? shard_state_[s]->now : now_;
}

sim::SimTime ShardedRuntime::CurrentRoundEnd() const {
  return tls_current_shard >= 0 ? round_end_ : now_;
}

EventKey ShardedRuntime::CurrentEventKey() const {
  const int s = tls_current_shard;
  RJOIN_CHECK(s >= 0) << "CurrentEventKey outside a worker event";
  return shard_state_[s]->current_key;
}

stats::MetricsRegistry* ShardedRuntime::ActiveMetrics() {
  const int s = tls_current_shard;
  return s >= 0 ? shard_state_[s]->metrics.get() : main_metrics_;
}

// ---------------------------------------------------------- scheduling

void ShardedRuntime::PushLocal(ShardState& shard, core::EnvelopeRef env) {
  shard.heap.push_back(std::move(env));
  std::push_heap(shard.heap.begin(), shard.heap.end(), EnvelopeLater{});
}

void ShardedRuntime::ScheduleEnvelope(core::EnvelopeRef env) {
  // Routing stages (kRoute/kDirect) execute on the *emitting* node's shard
  // — that is where the O(log N) work and the emission-seq draw belong;
  // only finished deliveries place by destination.
  const NodeIndex place =
      env->stage == core::EnvelopeStage::kDeliver ? env->dst : env->src;
  RJOIN_CHECK(place < num_nodes_) << "event for unknown node " << place;
  const uint32_t dst_shard = ShardOf(place);
  const int cur = tls_current_shard;
  if (cur < 0) {
    // Driver phase: workers are parked, every heap is safely writable.
    PushLocal(*shard_state_[dst_shard], std::move(env));
    return;
  }
  if (static_cast<uint32_t>(cur) == dst_shard) {
    PushLocal(*shard_state_[cur], std::move(env));
  } else {
    // Cross-shard send: link into this round's (src, dst) batch chain.
    // Single envelopes only reach here (MultiSend chains defer driver-side
    // onto their own shard), so `link` is free to carry the batch.
    OutChain& box = shard_state_[cur]->outbox[dst_shard];
    core::Envelope* e = env.release();
    RJOIN_DCHECK(e->link == nullptr);
    e->link = box.head;
    box.head = e;
    ++box.count;
  }
}

void ShardedRuntime::ScheduleEvent(const EventKey& key, NodeIndex dst,
                                   std::function<void()> action) {
  core::EnvelopeRef env = AcquireFor(dst);
  env->time = key.time;
  env->src = key.src;
  env->seq = key.seq;
  env->dst = dst;
  env->task = core::MessageTask(core::Control{std::move(action)});
  ScheduleEnvelope(std::move(env));
}

// ------------------------------------------------------------ round loop

void ShardedRuntime::RunShardRound(ShardState& shard) {
  auto& heap = shard.heap;
  while (!heap.empty() && heap.front()->time < round_end_) {
    std::pop_heap(heap.begin(), heap.end(), EnvelopeLater{});
    core::EnvelopeRef env = std::move(heap.back());
    heap.pop_back();
    shard.now = env->time;
    shard.current_key = EventKey{env->time, env->src, env->seq};
    if (env->stage == core::EnvelopeStage::kDeliver &&
        env->task.kind() == core::MessageKind::kControl) {
      core::RunControl(std::move(env));
    } else {
      RJOIN_CHECK(dispatcher_ != nullptr)
          << "typed envelope popped without a dispatcher";
      dispatcher_->DispatchEnvelope(std::move(env));
    }
    ++shard.executed;
    shard.last_executed = shard.current_key.time;
    shard.executed_any = true;
  }
}

void ShardedRuntime::SerialPhase() {
  // Drain mailbox chains in fixed shard order (order is irrelevant for the
  // heap — events re-sort by EventKey — but fixed order keeps the walk
  // deterministic and cache-friendly). Each non-empty chain is one batch:
  // the whole round's (src, dst) traffic moved as a single linked list.
  for (auto& src : shard_state_) {
    for (uint32_t d = 0; d < num_shards_; ++d) {
      OutChain& box = src->outbox[d];
      if (box.head == nullptr) continue;
      ++mailbox_.batches;
      mailbox_.envelopes += box.count;
      g_mailbox_batches.fetch_add(1, std::memory_order_relaxed);
      g_mailbox_envelopes.fetch_add(box.count, std::memory_order_relaxed);
      core::Envelope* e = box.head;
      box = OutChain{};
      while (e != nullptr) {
        core::Envelope* next = e->link;
        e->link = nullptr;
        RJOIN_CHECK(e->time >= now_)
            << "cross-shard event scheduled into the past (missing round "
               "deferral?)";
        PushLocal(*shard_state_[d], core::EnvelopeRef(e));
        e = next;
      }
    }
  }
  // Merge metrics deltas; sums commute, so the totals match the serial run.
  for (auto& shard : shard_state_) {
    main_metrics_->MergeFrom(shard->metrics.get());
  }
}

bool ShardedRuntime::AllHeapsEmpty() const {
  for (const auto& shard : shard_state_) {
    if (!shard->heap.empty()) return false;
  }
  return true;
}

sim::SimTime ShardedRuntime::MinHeapTime() const {
  sim::SimTime min_time = std::numeric_limits<sim::SimTime>::max();
  for (const auto& shard : shard_state_) {
    if (!shard->heap.empty()) {
      min_time = std::min(min_time, shard->heap.front()->time);
    }
  }
  return min_time;
}

uint64_t ShardedRuntime::RunLoop(bool bounded, sim::SimTime until) {
  RJOIN_CHECK(tls_current_shard < 0)
      << "Run()/RunUntil() must be called from the driver thread";
  const uint64_t executed_before = total_executed_;
  for (auto& shard : shard_state_) shard->executed_any = false;

  for (;;) {
    SerialPhase();
    if (AllHeapsEmpty() || (bounded && MinHeapTime() > until)) {
      // Final barrier: lets hooks publish what the last round staged. A
      // hook may also *create* work — churn staged in the last round is
      // applied here and emits handoff envelopes — so re-check: only break
      // when the hooks left the heaps drained (or beyond the bound).
      for (BarrierHook* hook : hooks_) hook->OnBarrier(now_);
      if (AllHeapsEmpty() || (bounded && MinHeapTime() > until)) break;
      continue;
    }

    now_ = std::max(now_, MinHeapTime());  // jump idle gaps in one step
    sim::SimTime end = now_ + round_width_;
    if (bounded && end > until) end = until + 1;  // until is inclusive
    round_end_ = end;
    for (BarrierHook* hook : hooks_) hook->OnBarrier(now_);
    for (auto& shard : shard_state_) shard->now = now_;

    start_gate_.Arrive();
    end_gate_.Arrive();

    uint64_t round_executed = 0;
    for (auto& shard : shard_state_) {
      round_executed += shard->executed;
      shard->executed = 0;
    }
    total_executed_ += round_executed;
    ++total_rounds_;
    now_ = round_end_ - 1;  // events up to here have executed
  }

  // Mirror sim::Simulator clock semantics.
  if (bounded) {
    now_ = std::max(now_, until);
  } else {
    sim::SimTime last = sim::kTimeZero;
    bool any = false;
    for (const auto& shard : shard_state_) {
      if (shard->executed_any) {
        last = std::max(last, shard->last_executed);
        any = true;
      }
    }
    if (any) now_ = last;
  }
  return total_executed_ - executed_before;
}

uint64_t ShardedRuntime::Run() {
  return RunLoop(/*bounded=*/false, /*until=*/0);
}

uint64_t ShardedRuntime::RunUntil(sim::SimTime until) {
  return RunLoop(/*bounded=*/true, until);
}

bool ShardedRuntime::Idle() const { return PendingEvents() == 0; }

size_t ShardedRuntime::PendingEvents() const {
  size_t pending = 0;
  for (const auto& shard : shard_state_) {
    pending += shard->heap.size();
    for (const OutChain& box : shard->outbox) pending += box.count;
  }
  return pending;
}

}  // namespace rjoin::runtime
