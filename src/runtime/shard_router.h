#ifndef RJOIN_RUNTIME_SHARD_ROUTER_H_
#define RJOIN_RUNTIME_SHARD_ROUTER_H_

#include <algorithm>
#include <cstdint>
#include <utility>

#include "core/messages.h"
#include "dht/transport.h"
#include "runtime/sharded_runtime.h"
#include "util/random.h"

namespace rjoin::runtime {

/// The dht::DeliveryRouter implementation backed by a ShardedRuntime:
/// transport sends become pooled shard envelopes keyed by (delivery time,
/// source node, per-source emission seq), with latency RNG derived from the
/// same identity. This is the seam through which every message of the
/// engine reaches the parallel runtime — no closure, no per-message heap
/// allocation, just the envelope moving between shard heaps and mailboxes.
class ShardRouter : public dht::DeliveryRouter {
 public:
  /// `seed` feeds the per-message latency RNG derivation (pass the same
  /// seed the serial transport's Rng was built from to keep configs
  /// comparable).
  ShardRouter(ShardedRuntime* runtime, uint64_t seed)
      : runtime_(runtime), seed_(seed) {}

  sim::SimTime Now() const override { return runtime_->Now(); }

  bool InWorker() const override {
    return ShardedRuntime::CurrentShard() >= 0;
  }

  stats::MetricsRegistry* ActiveMetrics() override {
    return runtime_->ActiveMetrics();
  }

  uint64_t NextEmitSeq(dht::NodeIndex src) override {
    return runtime_->NextEmitSeq(src);
  }

  Rng MessageRng(dht::NodeIndex src, uint64_t seq) override {
    return Rng(MixSeed(seed_, src, seq));
  }

  core::EnvelopeRef AcquireEnvelope(dht::NodeIndex src) override {
    // The deferred stage executes on src's shard (the driver borrows that
    // pool while workers are parked; a worker uses its own).
    return runtime_->AcquireFor(src);
  }

  void Defer(dht::NodeIndex src, core::EnvelopeRef env) override {
    // The deferred stage runs on src's own shard at the current time; as a
    // self-event it is exempt from the lookahead bound. env->dst is left
    // alone — a kDirect envelope already carries its true destination —
    // because ScheduleEnvelope places pre-delivery stages on src's shard
    // anyway.
    env->time = runtime_->Now();
    env->src = src;
    env->seq = runtime_->NextEmitSeq(src);
    runtime_->ScheduleEnvelope(std::move(env));
  }

  void Deliver(dht::NodeIndex src, uint64_t seq, sim::SimTime delay,
               core::EnvelopeRef env) override {
    sim::SimTime when = runtime_->Now() + delay;
    if (src != env->dst) {
      // Lookahead invariant: a message to another node may not be due
      // before emission time + the runtime's lookahead — whether or not
      // the destination happens to share the shard — otherwise results
      // would depend on the partitioning. With lookahead = the latency
      // model's minimum hop delay (AutoRoundWidth) this never changes a
      // delivery time; it only defers zero-delay cross-node hops of
      // zero-latency-capable models by one tick, deterministically.
      // Self-sends always stay on their own shard for any S, so zero-delay
      // self-delivery (src == Successor(key)) keeps its serial-simulator
      // timing.
      when = std::max(when, runtime_->CurrentRoundEnd());
    }
    env->time = when;
    env->src = src;
    env->seq = seq;
    runtime_->ScheduleEnvelope(std::move(env));
  }

  void BindDispatcher(core::EnvelopeDispatcher* dispatcher) override {
    runtime_->set_dispatcher(dispatcher);
  }

 private:
  ShardedRuntime* runtime_;
  uint64_t seed_;
};

}  // namespace rjoin::runtime

#endif  // RJOIN_RUNTIME_SHARD_ROUTER_H_
