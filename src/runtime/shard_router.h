#ifndef RJOIN_RUNTIME_SHARD_ROUTER_H_
#define RJOIN_RUNTIME_SHARD_ROUTER_H_

#include <cstdint>
#include <functional>

#include "dht/transport.h"
#include "runtime/sharded_runtime.h"
#include "util/random.h"

namespace rjoin::runtime {

/// The dht::DeliveryRouter implementation backed by a ShardedRuntime:
/// transport sends become shard events keyed by (delivery time, source
/// node, per-source emission seq), with latency RNG derived from the same
/// identity. This is the seam through which every message of the engine
/// reaches the parallel runtime.
class ShardRouter : public dht::DeliveryRouter {
 public:
  /// `seed` feeds the per-message latency RNG derivation (pass the same
  /// seed the serial transport's Rng was built from to keep configs
  /// comparable).
  ShardRouter(ShardedRuntime* runtime, uint64_t seed)
      : runtime_(runtime), seed_(seed) {}

  sim::SimTime Now() const override { return runtime_->Now(); }

  bool InWorker() const override {
    return ShardedRuntime::CurrentShard() >= 0;
  }

  stats::MetricsRegistry* ActiveMetrics() override {
    return runtime_->ActiveMetrics();
  }

  uint64_t NextEmitSeq(dht::NodeIndex src) override {
    return runtime_->NextEmitSeq(src);
  }

  Rng MessageRng(dht::NodeIndex src, uint64_t seq) override {
    return Rng(MixSeed(seed_, src, seq));
  }

  void Defer(dht::NodeIndex src, std::function<void()> dispatch) override {
    // The dispatch event runs on src's own shard at the current time; as a
    // self-event it is exempt from round deferral.
    runtime_->ScheduleEvent({runtime_->Now(), src, runtime_->NextEmitSeq(src)},
                            src, std::move(dispatch));
  }

  void Deliver(dht::NodeIndex src, uint64_t seq, dht::NodeIndex dst,
               sim::SimTime delay, std::function<void()> deliver) override {
    sim::SimTime when = runtime_->Now() + delay;
    if (src != dst) {
      // Round-lookahead invariant: a message to another node may not land
      // inside the round that emitted it — whether or not the destination
      // happens to share the shard — otherwise results would depend on the
      // partitioning. Self-sends always stay on their own shard for any S,
      // so zero-delay self-delivery (src == Successor(key)) keeps its
      // serial-simulator timing.
      when = std::max(when, runtime_->CurrentRoundEnd());
    }
    runtime_->ScheduleEvent({when, src, seq}, dst, std::move(deliver));
  }

 private:
  ShardedRuntime* runtime_;
  uint64_t seed_;
};

}  // namespace rjoin::runtime

#endif  // RJOIN_RUNTIME_SHARD_ROUTER_H_
