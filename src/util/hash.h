#ifndef RJOIN_UTIL_HASH_H_
#define RJOIN_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace rjoin {

/// 64-bit FNV-1a. Process-internal hashing only (interner index slots,
/// projection fingerprints) — never persisted or sent anywhere, so the
/// concrete function is free to change as long as every user changes with
/// it (which is why there is exactly one definition).
inline uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace rjoin

#endif  // RJOIN_UTIL_HASH_H_
