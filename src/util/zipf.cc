#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rjoin {

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  RJOIN_CHECK(n >= 1) << "Zipf domain must be non-empty";
  RJOIN_CHECK(theta >= 0.0) << "Zipf theta must be non-negative";
  cdf_.resize(n_);
  double acc = 0.0;
  for (uint64_t r = 0; r < n_; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta_);
    cdf_[r] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint64_t r) const {
  if (r >= n_) return 0.0;
  const double lo = (r == 0) ? 0.0 : cdf_[r - 1];
  return cdf_[r] - lo;
}

}  // namespace rjoin
