#ifndef RJOIN_UTIL_LOGGING_H_
#define RJOIN_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace rjoin {

/// Log severity. Messages below the global threshold are discarded.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the process-wide minimum severity that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Turns an ostream expression into void so it can sit in a ternary whose
/// other branch is (void)0. operator& binds more loosely than operator<<.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace rjoin

#define RJOIN_LOG(level)                                                  \
  (static_cast<int>(::rjoin::LogLevel::k##level) <                        \
   static_cast<int>(::rjoin::GetLogLevel()))                              \
      ? (void)0                                                           \
      : ::rjoin::internal_logging::Voidify() &                            \
            ::rjoin::internal_logging::LogMessage(                        \
                ::rjoin::LogLevel::k##level, __FILE__, __LINE__)          \
                .stream()

#define RJOIN_CHECK(cond)                                                 \
  (cond) ? (void)0                                                        \
         : ::rjoin::internal_logging::Voidify() &                         \
               ::rjoin::internal_logging::LogMessage(                     \
                   ::rjoin::LogLevel::kFatal, __FILE__, __LINE__)         \
                   .stream()                                              \
                   << "Check failed: " #cond " "

/// Debug-build-only check for per-message hot paths (message-pool
/// invariants, dispatch preconditions) where a release-build branch per
/// delivery would be measurable.
#ifdef NDEBUG
#define RJOIN_DCHECK(cond) ((void)sizeof(cond))  // syntax-checked, not run
#else
#define RJOIN_DCHECK(cond) RJOIN_CHECK(cond)
#endif

#endif  // RJOIN_UTIL_LOGGING_H_
