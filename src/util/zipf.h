#ifndef RJOIN_UTIL_ZIPF_H_
#define RJOIN_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace rjoin {

/// Zipf(theta) sampler over the domain {0, 1, ..., n-1}: rank r is drawn with
/// probability proportional to 1 / (r+1)^theta. theta = 0 is uniform; the
/// paper's default workload uses theta = 0.9 ("highly skewed").
///
/// Sampling uses the precomputed CDF with binary search, O(log n) per draw.
class ZipfDistribution {
 public:
  /// n must be >= 1, theta must be >= 0.
  ZipfDistribution(uint64_t n, double theta);

  /// Draws one rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  /// Probability mass of rank r (for tests and analysis).
  double Pmf(uint64_t r) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace rjoin

#endif  // RJOIN_UTIL_ZIPF_H_
