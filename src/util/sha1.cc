#include "util/sha1.h"

#include <cstring>

namespace rjoin {
namespace {

uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

void ProcessBlock(const uint8_t* block, uint32_t h[5]) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    const uint32_t tmp = Rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
}

}  // namespace

Sha1Digest Sha1(std::string_view data) {
  uint32_t h[5] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476,
                   0xc3d2e1f0};
  const uint64_t total_bits = static_cast<uint64_t>(data.size()) * 8;

  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t remaining = data.size();
  while (remaining >= 64) {
    ProcessBlock(p, h);
    p += 64;
    remaining -= 64;
  }

  uint8_t block[128] = {0};
  std::memcpy(block, p, remaining);
  block[remaining] = 0x80;
  const size_t final_len = (remaining + 9 <= 64) ? 64 : 128;
  for (int i = 0; i < 8; ++i) {
    block[final_len - 1 - i] =
        static_cast<uint8_t>((total_bits >> (8 * i)) & 0xff);
  }
  ProcessBlock(block, h);
  if (final_len == 128) ProcessBlock(block + 64, h);

  return {h[0], h[1], h[2], h[3], h[4]};
}

std::string Sha1ToHex(const Sha1Digest& digest) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (uint32_t word : digest) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kHex[(word >> shift) & 0xf]);
    }
  }
  return out;
}

}  // namespace rjoin
