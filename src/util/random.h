#ifndef RJOIN_UTIL_RANDOM_H_
#define RJOIN_UTIL_RANDOM_H_

#include <cstdint>

namespace rjoin {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// splitmix64. All randomness in the simulator flows through instances of
/// this class so that experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound) using Lemire's unbiased method. bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Forks an independent generator; deterministic given this one's state.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Mixes three 64-bit values into one seed (splitmix64 absorption). The
/// sharded runtime derives one Rng per (source node, emission sequence) from
/// this, so random draws are a pure function of message identity rather than
/// of thread interleaving — the property that makes parallel runs replayable
/// and shard-count-invariant.
uint64_t MixSeed(uint64_t a, uint64_t b, uint64_t c);

}  // namespace rjoin

#endif  // RJOIN_UTIL_RANDOM_H_
