#ifndef RJOIN_UTIL_SHA1_H_
#define RJOIN_UTIL_SHA1_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace rjoin {

/// A 160-bit SHA-1 digest. Chord assigns node and item identifiers by hashing
/// keys with a cryptographic hash; the paper names SHA-1/MD5 and we implement
/// SHA-1 from scratch (no external dependencies).
using Sha1Digest = std::array<uint32_t, 5>;

/// Computes SHA-1 of the given bytes.
Sha1Digest Sha1(std::string_view data);

/// Hex string (40 lowercase hex chars) of a digest.
std::string Sha1ToHex(const Sha1Digest& digest);

}  // namespace rjoin

#endif  // RJOIN_UTIL_SHA1_H_
