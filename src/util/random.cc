#include "util/random.h"

namespace rjoin {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased and fast.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

uint64_t MixSeed(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t state = a;
  uint64_t out = SplitMix64(state);
  state ^= b + 0x9e3779b97f4a7c15ULL;
  out ^= SplitMix64(state);
  state ^= c + 0xbf58476d1ce4e5b9ULL;
  out ^= SplitMix64(state);
  return out;
}

}  // namespace rjoin
