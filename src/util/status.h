#ifndef RJOIN_UTIL_STATUS_H_
#define RJOIN_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rjoin {

/// Error categories used across the library. The library does not throw
/// exceptions; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing value() on an
/// error result is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design, mirrors absl
      : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value");
  }
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rjoin

#endif  // RJOIN_UTIL_STATUS_H_
