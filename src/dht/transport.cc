#include "dht/transport.h"

#include "util/logging.h"

namespace rjoin::dht {

size_t Transport::Send(NodeIndex src, const NodeId& key, MessagePtr msg,
                       bool ric) {
  const std::vector<NodeIndex> path = network_->Route(src, key);
  sim::SimTime delay = 0;
  // Each element of the path except the last transmits the message once.
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    metrics_->AddTraffic(path[i], 1, ric);
    delay += latency_->Delay(rng_);
  }
  Deliver(path.back(), std::move(msg), delay);
  return path.size() - 1;
}

size_t Transport::MultiSend(NodeIndex src,
                            std::vector<std::pair<NodeId, MessagePtr>> messages,
                            bool ric) {
  size_t hops = 0;
  for (auto& [key, msg] : messages) {
    hops += Send(src, key, std::move(msg), ric);
  }
  return hops;
}

void Transport::SendDirect(NodeIndex src, NodeIndex dst, MessagePtr msg,
                           bool ric) {
  metrics_->AddTraffic(src, 1, ric);
  Deliver(dst, std::move(msg), latency_->Delay(rng_));
}

void Transport::ChargeTraffic(NodeIndex node, uint64_t count, bool ric) {
  metrics_->AddTraffic(node, count, ric);
}

size_t Transport::ChargeRoute(NodeIndex src, const NodeId& key, bool ric) {
  const std::vector<NodeIndex> path = network_->Route(src, key);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    metrics_->AddTraffic(path[i], 1, ric);
  }
  return path.size() - 1;
}

void Transport::Deliver(NodeIndex dst, MessagePtr msg, sim::SimTime delay) {
  RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
  // std::function requires copyable callables; wrap the move-only payload
  // in a shared holder and move it out at delivery time.
  auto holder = std::make_shared<MessagePtr>(std::move(msg));
  MessageHandler* handler = handler_;
  simulator_->ScheduleAfter(delay, [handler, dst, holder]() {
    handler->HandleMessage(dst, std::move(*holder));
  });
}

}  // namespace rjoin::dht
