#include "dht/transport.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "stats/trace.h"
#include "util/logging.h"

namespace rjoin::dht {

namespace {

// Typed-event shorthand: every emission/delivery is stamped with the
// executing event's virtual time (the tracer context).
void TraceMessage(stats::TraceCategory cat, core::MessageKind kind,
                  NodeIndex node, NodeIndex peer, uint64_t arg) {
  stats::Tracer::RecordAtContext(cat, static_cast<uint8_t>(kind), node, peer,
                                 arg);
}

// Process-wide destination-coalescing totals (same aggregation shape as the
// route-cache and pool counters).
std::atomic<uint64_t> g_coalesce_groups{0};
std::atomic<uint64_t> g_coalesce_payloads{0};

bool RouteCacheEnabledFromEnv() {
  const char* v = std::getenv("RJOIN_ROUTE_CACHE");
  return v == nullptr || std::strcmp(v, "0") != 0;
}

}  // namespace

Transport::Transport(ChordNetwork* network, sim::Simulator* simulator,
                     sim::LatencyModel* latency,
                     stats::MetricsRegistry* metrics, Rng rng)
    : network_(network),
      simulator_(simulator),
      latency_(latency),
      metrics_(metrics),
      rng_(rng),
      route_cache_enabled_(RouteCacheEnabledFromEnv()) {
  simulator_->set_dispatcher(this);
}

Transport::CoalesceStats Transport::AggregateCoalesce() {
  CoalesceStats s;
  s.groups = g_coalesce_groups.load(std::memory_order_relaxed);
  s.payloads = g_coalesce_payloads.load(std::memory_order_relaxed);
  return s;
}

std::vector<NodeIndex>& Transport::RouteScratch() {
  static thread_local std::vector<NodeIndex> path;
  return path;
}

core::EnvelopeRef Transport::MakeRouted(NodeIndex src, const NodeId& key,
                                        core::MessageTask task, bool ric,
                                        core::EnvelopeStage stage) {
  core::EnvelopeRef env = router_->AcquireEnvelope(src);
  env->src = src;
  env->route_key = key;
  env->stage = stage;
  env->ric = ric;
  env->task = std::move(task);
  return env;
}

size_t Transport::Send(NodeIndex src, const NodeId& key,
                       core::MessageTask task, bool ric) {
  if (router_ != nullptr) {
    core::EnvelopeRef env =
        MakeRouted(src, key, std::move(task), ric, core::EnvelopeStage::kRoute);
    if (!router_->InWorker()) {
      // Driver-phase send: run the routing work as an event on src's shard.
      router_->Defer(src, std::move(env));
      return 0;
    }
    return FinishRoute(std::move(env));
  }
  return SerialSend(src, key, std::move(task), ric);
}

size_t Transport::SendKey(NodeIndex src, core::KeyId key,
                          core::MessageTask task, bool ric) {
  const NodeId& ring_id = interner_->ring_id(key);
  if (router_ != nullptr) {
    core::EnvelopeRef env = MakeRouted(src, ring_id, std::move(task), ric,
                                       core::EnvelopeStage::kRoute);
    env->route_key_id = key;  // lets the deferred stage hit the route cache
    if (!router_->InWorker()) {
      router_->Defer(src, std::move(env));
      return 0;
    }
    return FinishRoute(std::move(env));
  }
  return SerialSend(src, ring_id, std::move(task), ric, key);
}

Transport::RouteView Transport::ResolveRoute(NodeIndex src, core::KeyId key_id,
                                             const NodeId& ring_id) {
  if (route_cache_enabled_ && key_id != core::kInvalidKeyId) {
    RouteCache& cache = network_->route_cache(src);
    const uint64_t gen = network_->topology_generation();
    if (const RouteCache::Entry* e = cache.Lookup(key_id, gen)) {
      return RouteView{e->hop, e->hops};
    }
    std::vector<NodeIndex>& path = RouteScratch();
    network_->RoutePath(src, ring_id, &path);
    cache.Insert(key_id, gen, path);
    return RouteView{path.data() + 1, static_cast<uint32_t>(path.size() - 1)};
  }
  std::vector<NodeIndex>& path = RouteScratch();
  network_->RoutePath(src, ring_id, &path);
  return RouteView{path.data() + 1, static_cast<uint32_t>(path.size() - 1)};
}

NodeIndex Transport::CachedSuccessorOf(core::KeyId key_id,
                                       const NodeId& ring_id) {
  if (!route_cache_enabled_ || key_id == core::kInvalidKeyId) {
    return network_->SuccessorOf(ring_id);
  }
  SuccessorCache& cache = SuccessorCache::Tls();
  const uint64_t gen = network_->topology_generation();
  if (cache.swept_generation() != gen) {
    // First route under this topology on this thread: prewarm the whole
    // interned key set (successor knowledge is exactly the state a DHT
    // node maintains proactively). One O(K log N) sweep per generation per
    // thread; afterwards only keys interned mid-stream can miss.
    const uint32_t keys = interner_->size();
    for (uint32_t k = 0; k < keys; ++k) {
      cache.Insert(k, gen, network_->SuccessorOf(interner_->ring_id(k)));
    }
    cache.set_swept_generation(gen);
  }
  NodeIndex responsible = cache.Lookup(key_id, gen);
  if (responsible == kInvalidNode) {
    responsible = network_->SuccessorOf(ring_id);
    cache.Insert(key_id, gen, responsible);
  }
  return responsible;
}

size_t Transport::SerialSend(NodeIndex src, const NodeId& key,
                             core::MessageTask task, bool ric,
                             core::KeyId key_id) {
  if (!network_->node(src).alive()) {
    // A departed node draining in-flight work: it cannot greedy-route (it
    // is off the ring) but still knows the responsible node — one direct
    // hop, like the forwarding rule of docs/churn.md.
    Metrics().AddTraffic(src, 1, ric);
    const NodeIndex dst = CachedSuccessorOf(key_id, key);
    stats::Tracer::RecordRouteHops(1);
    if (stats::Tracer::On())
      TraceMessage(stats::TraceCategory::kSend, task.kind(), src, dst, 1);
    SerialDeliver(dst, std::move(task), latency_->Delay(rng_));
    return 1;
  }
  const RouteView view = ResolveRoute(src, key_id, key);
  stats::MetricsRegistry& metrics = Metrics();
  sim::SimTime delay = 0;
  // Each node of the path except the last transmits the message once: the
  // source, then every forwarding hop before the responsible node.
  if (view.count > 0) {
    metrics.AddTraffic(src, 1, ric);
    delay += latency_->Delay(rng_);
    for (uint32_t i = 0; i + 1 < view.count; ++i) {
      metrics.AddTraffic(view.hops[i], 1, ric);
      delay += latency_->Delay(rng_);
    }
  }
  const NodeIndex dst = view.dst_or(src);
  stats::Tracer::RecordRouteHops(view.count);
  if (stats::Tracer::On()) {
    TraceMessage(stats::TraceCategory::kRoute, task.kind(), src, dst,
                 view.count);
  }
  SerialDeliver(dst, std::move(task), delay);
  return view.count;
}

size_t Transport::FinishRoute(core::EnvelopeRef env) {
  if (!network_->node(env->src).alive()) {
    // Deferred route whose source left at a barrier in between: finish as
    // a one-hop direct send to the responsible node (the departed node
    // drains its outbox before disappearing).
    env->dst = CachedSuccessorOf(env->route_key_id, env->route_key);
    FinishDirect(std::move(env));
    return 1;
  }
  const RouteView view =
      ResolveRoute(env->src, env->route_key_id, env->route_key);
  stats::MetricsRegistry& metrics = Metrics();
  const uint64_t seq = router_->NextEmitSeq(env->src);
  Rng msg_rng = router_->MessageRng(env->src, seq);
  sim::SimTime delay = 0;
  if (view.count > 0) {
    metrics.AddTraffic(env->src, 1, env->ric);
    delay += latency_->Delay(msg_rng);
    for (uint32_t i = 0; i + 1 < view.count; ++i) {
      metrics.AddTraffic(view.hops[i], 1, env->ric);
      delay += latency_->Delay(msg_rng);
    }
  }
  RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
  env->dst = view.dst_or(env->src);
  env->stage = core::EnvelopeStage::kDeliver;
  const NodeIndex src = env->src;
  const uint32_t hops = view.count;
  stats::Tracer::RecordRouteHops(hops);
  if (stats::Tracer::On()) {
    TraceMessage(stats::TraceCategory::kRoute, env->task.kind(), src, env->dst,
                 hops);
  }
  router_->Deliver(src, seq, delay, std::move(env));
  return hops;
}

void Transport::FinishDirect(core::EnvelopeRef env) {
  Metrics().AddTraffic(env->src, 1, env->ric);
  const uint64_t seq = router_->NextEmitSeq(env->src);
  Rng msg_rng = router_->MessageRng(env->src, seq);
  const sim::SimTime delay = latency_->Delay(msg_rng);
  RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
  env->stage = core::EnvelopeStage::kDeliver;
  const NodeIndex src = env->src;
  stats::Tracer::RecordRouteHops(1);
  if (stats::Tracer::On()) {
    TraceMessage(stats::TraceCategory::kSend, env->task.kind(), src, env->dst,
                 1);
  }
  router_->Deliver(src, seq, delay, std::move(env));
}

size_t Transport::MultiSend(
    NodeIndex src, std::vector<std::pair<NodeId, core::MessageTask>>* messages,
    bool ric) {
  if (router_ != nullptr && !router_->InWorker()) {
    // One defer event carries the whole batch to src's shard as an intrusive
    // envelope chain; emission sequence numbers are drawn there, in batch
    // order, exactly as a serial sequence of Send calls would draw them.
    core::EnvelopeRef head;
    core::Envelope* tail = nullptr;
    for (auto& [key, task] : *messages) {
      core::EnvelopeRef env = MakeRouted(src, key, std::move(task), ric,
                                         core::EnvelopeStage::kRoute);
      if (tail == nullptr) {
        head = std::move(env);
        tail = head.get();
      } else {
        tail->link = env.release();
        tail = tail->link;
      }
    }
    messages->clear();
    if (head) router_->Defer(src, std::move(head));
    return 0;
  }
  size_t hops = 0;
  for (auto& [key, task] : *messages) {
    hops += Send(src, key, std::move(task), ric);
  }
  messages->clear();
  return hops;
}

size_t Transport::MultiSendKeys(
    NodeIndex src,
    std::vector<std::pair<core::KeyId, core::MessageTask>>* messages,
    bool ric) {
  // Materialize the batch as one kRouteGroup chain up front — the same
  // shape on every path, so the coalescing pass (and therefore grouping,
  // charging, and emission order) is identical for serial, worker-phase,
  // and deferred execution.
  core::EnvelopeRef head;
  core::Envelope* tail = nullptr;
  for (auto& [key, task] : *messages) {
    core::EnvelopeRef env = router_ != nullptr ? router_->AcquireEnvelope(src)
                                               : simulator_->pool().Acquire();
    env->src = src;
    env->route_key = interner_->ring_id(key);
    env->route_key_id = key;
    env->stage = core::EnvelopeStage::kRouteGroup;
    env->ric = ric;
    env->task = std::move(task);
    if (tail == nullptr) {
      head = std::move(env);
      tail = head.get();
    } else {
      tail->link = env.release();
      tail = tail->link;
    }
  }
  messages->clear();
  if (!head) return 0;
  if (router_ != nullptr && !router_->InWorker()) {
    router_->Defer(src, std::move(head));
    return 0;
  }
  return CoalesceAndSend(std::move(head));
}

namespace {

/// Per-thread grouping scratch for CoalesceAndSend: a dense dst -> group
/// slot map stamped per batch (no clearing between batches) plus the group
/// list itself. Workers coalesce concurrently, so this is thread-local like
/// RouteScratch.
struct CoalesceScratch {
  struct Group {
    NodeIndex dst = kInvalidNode;
    core::Envelope* head = nullptr;
    core::Envelope* member_tail = nullptr;  // last of head->group chain
    uint32_t payloads = 0;
  };
  std::vector<Group> groups;
  std::vector<uint32_t> slot_of_dst;  // group index, valid iff stamped
  std::vector<uint64_t> stamp;
  uint64_t batch = 0;

  static CoalesceScratch& Get() {
    static thread_local CoalesceScratch s;
    return s;
  }
};

}  // namespace

size_t Transport::CoalesceAndSend(core::EnvelopeRef chain) {
  const NodeIndex src = chain->src;
  const bool dead_src = !network_->node(src).alive();
  CoalesceScratch& scratch = CoalesceScratch::Get();
  if (scratch.slot_of_dst.size() < network_->num_total()) {
    scratch.slot_of_dst.resize(network_->num_total(), 0);
    scratch.stamp.resize(network_->num_total(), 0);
  }
  scratch.groups.clear();
  ++scratch.batch;

  // Pass 1: resolve each payload's responsible node through the thread's
  // SuccessorCache — responsibility is sender-independent, so this is the
  // resolution with actual reuse (a random publisher rarely repeats a
  // (src, key) pair, but the key's responsible node is hot) — and bucket
  // payloads by destination, in batch order. The first payload for a
  // destination becomes the group head; the rest chain off its `group`.
  // The same rule covers a departed sender: its one-hop forwarding target
  // IS the responsible node.
  uint64_t payloads = 0;
  core::Envelope* cur = chain.release();
  while (cur != nullptr) {
    core::Envelope* next = cur->link;
    cur->link = nullptr;
    ++payloads;
    const NodeIndex dst =
        CachedSuccessorOf(cur->route_key_id, cur->route_key);
    if (scratch.stamp[dst] == scratch.batch) {
      CoalesceScratch::Group& g = scratch.groups[scratch.slot_of_dst[dst]];
      if (g.member_tail == nullptr) {
        g.head->group = cur;
      } else {
        g.member_tail->link = cur;
      }
      g.member_tail = cur;
      ++g.payloads;
    } else {
      scratch.stamp[dst] = scratch.batch;
      scratch.slot_of_dst[dst] =
          static_cast<uint32_t>(scratch.groups.size());
      scratch.groups.push_back(
          CoalesceScratch::Group{dst, cur, nullptr, 1});
    }
    cur = next;
  }

  // Pass 2: emit one wire message per destination group, in first-seen
  // order — one emission seq, one route's charges and latency draws, one
  // delivery event carrying every payload of the group.
  RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
  size_t total_hops = 0;
  stats::MetricsRegistry& metrics = Metrics();
  for (CoalesceScratch::Group& g : scratch.groups) {
    core::EnvelopeRef env(g.head);
    env->stage = core::EnvelopeStage::kDeliver;
    env->dst = g.dst;
    uint64_t seq = 0;
    Rng msg_rng = rng_;  // serial path draws from the transport stream
    if (router_ != nullptr) {
      seq = router_->NextEmitSeq(src);
      msg_rng = router_->MessageRng(src, seq);
    }
    sim::SimTime delay = 0;
    size_t hops = 0;
    if (dead_src) {
      metrics.AddTraffic(src, 1, env->ric);
      delay = latency_->Delay(router_ != nullptr ? msg_rng : rng_);
      hops = 1;
    } else {
      // One wire-route walk per group. The per-node tail cache is NOT
      // consulted here: a random publisher's (src, key) pair has no reuse
      // by construction, so caching these walks would only pollute the
      // table (and the hit-rate signal) — the walk itself is already
      // amortized over every payload of the group.
      std::vector<NodeIndex>& path = RouteScratch();
      network_->RoutePath(src, env->route_key, &path);
      RJOIN_DCHECK(path.back() == g.dst);
      hops = path.size() - 1;
      if (hops > 0) {
        metrics.AddTraffic(src, 1, env->ric);
        delay += latency_->Delay(router_ != nullptr ? msg_rng : rng_);
        for (size_t i = 1; i + 1 < path.size(); ++i) {
          metrics.AddTraffic(path[i], 1, env->ric);
          delay += latency_->Delay(router_ != nullptr ? msg_rng : rng_);
        }
      }
    }
    total_hops += hops;
    stats::Tracer::RecordRouteHops(hops);
    if (stats::Tracer::On()) {
      TraceMessage(dead_src ? stats::TraceCategory::kSend
                            : stats::TraceCategory::kRoute,
                   env->task.kind(), src, g.dst, hops);
    }
    if (router_ != nullptr) {
      router_->Deliver(src, seq, delay, std::move(env));
    } else {
      simulator_->Schedule(simulator_->Now() + delay, std::move(env));
    }
  }
  g_coalesce_groups.fetch_add(scratch.groups.size(),
                              std::memory_order_relaxed);
  g_coalesce_payloads.fetch_add(payloads, std::memory_order_relaxed);
  return total_hops;
}

void Transport::SendDirect(NodeIndex src, NodeIndex dst,
                           core::MessageTask task, bool ric) {
  if (router_ != nullptr) {
    core::EnvelopeRef env = MakeRouted(src, NodeId(), std::move(task), ric,
                                       core::EnvelopeStage::kDirect);
    env->dst = dst;
    if (!router_->InWorker()) {
      router_->Defer(src, std::move(env));
      return;
    }
    FinishDirect(std::move(env));
    return;
  }
  Metrics().AddTraffic(src, 1, ric);
  stats::Tracer::RecordRouteHops(1);
  if (stats::Tracer::On())
    TraceMessage(stats::TraceCategory::kSend, task.kind(), src, dst, 1);
  SerialDeliver(dst, std::move(task), latency_->Delay(rng_));
}

void Transport::DispatchEnvelope(core::EnvelopeRef env) {
  if (env->stage == core::EnvelopeStage::kRouteGroup) {
    // A deferred MultiSendKeys batch: the whole chain coalesces by
    // destination instead of dispatching one envelope at a time.
    CoalesceAndSend(std::move(env));
    return;
  }
  core::EnvelopeRef cur = std::move(env);
  while (cur) {
    core::EnvelopeRef next(cur->link);
    cur->link = nullptr;
    DispatchOne(std::move(cur));
    cur = std::move(next);
  }
}

void Transport::DispatchOne(core::EnvelopeRef env) {
  switch (env->stage) {
    case core::EnvelopeStage::kRoute:
      FinishRoute(std::move(env));
      return;
    case core::EnvelopeStage::kDirect:
      FinishDirect(std::move(env));
      return;
    case core::EnvelopeStage::kRouteGroup:
      // A group chain is intercepted whole in DispatchEnvelope; a lone
      // member degenerates to the same coalescing pass over one payload.
      CoalesceAndSend(std::move(env));
      return;
    case core::EnvelopeStage::kDeliver:
      break;
  }
  if (env->task.kind() == core::MessageKind::kControl) {
    core::RunControl(std::move(env));
    return;
  }
  RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
  const NodeIndex dst = env->dst;
  core::Envelope* members = env->group;  // coalesced co-payloads, if any
  env->group = nullptr;
  if (stats::Tracer::On()) {
    TraceMessage(stats::TraceCategory::kDeliver, env->task.kind(), dst,
                 env->src, 0);
  }
  core::MessageTask task = std::move(env->task);
  // Recycle before handling: anything the handler emits reuses this
  // envelope first, keeping the pool's high-water mark at the true number
  // of concurrently in-flight messages.
  env.Reset();
  handler_->HandleMessage(dst, std::move(task));
  // Remaining payloads of a destination-coalesced group, in batch order —
  // each recycled before its handler runs, exactly like the head.
  while (members != nullptr) {
    core::EnvelopeRef m(members);
    members = m->link;
    m->link = nullptr;
    if (stats::Tracer::On()) {
      TraceMessage(stats::TraceCategory::kDeliver, m->task.kind(), dst,
                   m->src, 0);
    }
    core::MessageTask member_task = std::move(m->task);
    m.Reset();
    handler_->HandleMessage(dst, std::move(member_task));
  }
}

void Transport::ChargeTraffic(NodeIndex node, uint64_t count, bool ric) {
  Metrics().AddTraffic(node, count, ric);
}

size_t Transport::ChargeRoute(NodeIndex src, const NodeId& key, bool ric) {
  if (!network_->node(src).alive()) {
    Metrics().AddTraffic(src, 1, ric);  // departed source: one direct hop
    return 1;
  }
  std::vector<NodeIndex>& path = RouteScratch();
  network_->RoutePath(src, key, &path);
  stats::MetricsRegistry& metrics = Metrics();
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    metrics.AddTraffic(path[i], 1, ric);
  }
  return path.size() - 1;
}

void Transport::SerialDeliver(NodeIndex dst, core::MessageTask task,
                              sim::SimTime delay) {
  RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
  core::EnvelopeRef env = simulator_->pool().Acquire();
  env->dst = dst;
  env->task = std::move(task);
  simulator_->Schedule(simulator_->Now() + delay, std::move(env));
}

}  // namespace rjoin::dht
