#include "dht/transport.h"

#include "util/logging.h"

namespace rjoin::dht {

size_t Transport::Send(NodeIndex src, const NodeId& key, MessagePtr msg,
                       bool ric) {
  if (router_ != nullptr && !router_->InWorker()) {
    // Driver-phase send: run the routing work as an event on src's shard.
    auto holder = std::make_shared<MessagePtr>(std::move(msg));
    router_->Defer(src, [this, src, key, holder, ric]() {
      SendNow(src, key, std::move(*holder), ric);
    });
    return 0;
  }
  return SendNow(src, key, std::move(msg), ric);
}

size_t Transport::SendNow(NodeIndex src, const NodeId& key, MessagePtr msg,
                          bool ric) {
  const std::vector<NodeIndex> path = network_->Route(src, key);
  stats::MetricsRegistry& metrics = Metrics();
  sim::SimTime delay = 0;
  if (router_ != nullptr) {
    const uint64_t seq = router_->NextEmitSeq(src);
    Rng msg_rng = router_->MessageRng(src, seq);
    // Each element of the path except the last transmits the message once.
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      metrics.AddTraffic(path[i], 1, ric);
      delay += latency_->Delay(msg_rng);
    }
    RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
    auto holder = std::make_shared<MessagePtr>(std::move(msg));
    MessageHandler* handler = handler_;
    const NodeIndex dst = path.back();
    router_->Deliver(src, seq, dst, delay, [handler, dst, holder]() {
      handler->HandleMessage(dst, std::move(*holder));
    });
    return path.size() - 1;
  }
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    metrics.AddTraffic(path[i], 1, ric);
    delay += latency_->Delay(rng_);
  }
  Deliver(path.back(), std::move(msg), delay);
  return path.size() - 1;
}

size_t Transport::MultiSend(NodeIndex src,
                            std::vector<std::pair<NodeId, MessagePtr>> messages,
                            bool ric) {
  if (router_ != nullptr && !router_->InWorker()) {
    // One dispatch event carries the whole batch to src's shard; emission
    // sequence numbers are drawn there, in batch order, exactly as a serial
    // sequence of Send calls would draw them.
    auto batch = std::make_shared<std::vector<std::pair<NodeId, MessagePtr>>>(
        std::move(messages));
    router_->Defer(src, [this, src, batch, ric]() {
      for (auto& [key, msg] : *batch) {
        SendNow(src, key, std::move(msg), ric);
      }
    });
    return 0;
  }
  size_t hops = 0;
  for (auto& [key, msg] : messages) {
    hops += SendNow(src, key, std::move(msg), ric);
  }
  return hops;
}

void Transport::SendDirect(NodeIndex src, NodeIndex dst, MessagePtr msg,
                           bool ric) {
  if (router_ != nullptr && !router_->InWorker()) {
    auto holder = std::make_shared<MessagePtr>(std::move(msg));
    router_->Defer(src, [this, src, dst, holder, ric]() {
      SendDirectNow(src, dst, std::move(*holder), ric);
    });
    return;
  }
  SendDirectNow(src, dst, std::move(msg), ric);
}

void Transport::SendDirectNow(NodeIndex src, NodeIndex dst, MessagePtr msg,
                              bool ric) {
  Metrics().AddTraffic(src, 1, ric);
  if (router_ != nullptr) {
    const uint64_t seq = router_->NextEmitSeq(src);
    Rng msg_rng = router_->MessageRng(src, seq);
    const sim::SimTime delay = latency_->Delay(msg_rng);
    RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
    auto holder = std::make_shared<MessagePtr>(std::move(msg));
    MessageHandler* handler = handler_;
    router_->Deliver(src, seq, dst, delay, [handler, dst, holder]() {
      handler->HandleMessage(dst, std::move(*holder));
    });
    return;
  }
  Deliver(dst, std::move(msg), latency_->Delay(rng_));
}

void Transport::ChargeTraffic(NodeIndex node, uint64_t count, bool ric) {
  Metrics().AddTraffic(node, count, ric);
}

size_t Transport::ChargeRoute(NodeIndex src, const NodeId& key, bool ric) {
  const std::vector<NodeIndex> path = network_->Route(src, key);
  stats::MetricsRegistry& metrics = Metrics();
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    metrics.AddTraffic(path[i], 1, ric);
  }
  return path.size() - 1;
}

void Transport::Deliver(NodeIndex dst, MessagePtr msg, sim::SimTime delay) {
  RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
  // std::function requires copyable callables; wrap the move-only payload
  // in a shared holder and move it out at delivery time.
  auto holder = std::make_shared<MessagePtr>(std::move(msg));
  MessageHandler* handler = handler_;
  simulator_->ScheduleAfter(delay, [handler, dst, holder]() {
    handler->HandleMessage(dst, std::move(*holder));
  });
}

}  // namespace rjoin::dht
