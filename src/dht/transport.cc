#include "dht/transport.h"

#include "stats/trace.h"
#include "util/logging.h"

namespace rjoin::dht {

namespace {

// Typed-event shorthand: every emission/delivery is stamped with the
// executing event's virtual time (the tracer context).
void TraceMessage(stats::TraceCategory cat, core::MessageKind kind,
                  NodeIndex node, NodeIndex peer, uint64_t arg) {
  stats::Tracer::RecordAtContext(cat, static_cast<uint8_t>(kind), node, peer,
                                 arg);
}

}  // namespace

std::vector<NodeIndex>& Transport::RouteScratch() {
  static thread_local std::vector<NodeIndex> path;
  return path;
}

core::EnvelopeRef Transport::MakeRouted(NodeIndex src, const NodeId& key,
                                        core::MessageTask task, bool ric,
                                        core::EnvelopeStage stage) {
  core::EnvelopeRef env = router_->AcquireEnvelope(src);
  env->src = src;
  env->route_key = key;
  env->stage = stage;
  env->ric = ric;
  env->task = std::move(task);
  return env;
}

size_t Transport::Send(NodeIndex src, const NodeId& key,
                       core::MessageTask task, bool ric) {
  if (router_ != nullptr) {
    core::EnvelopeRef env =
        MakeRouted(src, key, std::move(task), ric, core::EnvelopeStage::kRoute);
    if (!router_->InWorker()) {
      // Driver-phase send: run the routing work as an event on src's shard.
      router_->Defer(src, std::move(env));
      return 0;
    }
    return FinishRoute(std::move(env));
  }
  return SerialSend(src, key, std::move(task), ric);
}

size_t Transport::SerialSend(NodeIndex src, const NodeId& key,
                             core::MessageTask task, bool ric) {
  if (!network_->node(src).alive()) {
    // A departed node draining in-flight work: it cannot greedy-route (it
    // is off the ring) but still knows the responsible node — one direct
    // hop, like the forwarding rule of docs/churn.md.
    Metrics().AddTraffic(src, 1, ric);
    const NodeIndex dst = network_->SuccessorOf(key);
    stats::Tracer::RecordRouteHops(1);
    if (stats::Tracer::On())
      TraceMessage(stats::TraceCategory::kSend, task.kind(), src, dst, 1);
    SerialDeliver(dst, std::move(task), latency_->Delay(rng_));
    return 1;
  }
  std::vector<NodeIndex>& path = RouteScratch();
  network_->RoutePath(src, key, &path);
  stats::MetricsRegistry& metrics = Metrics();
  sim::SimTime delay = 0;
  // Each element of the path except the last transmits the message once.
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    metrics.AddTraffic(path[i], 1, ric);
    delay += latency_->Delay(rng_);
  }
  stats::Tracer::RecordRouteHops(path.size() - 1);
  if (stats::Tracer::On()) {
    TraceMessage(stats::TraceCategory::kRoute, task.kind(), src, path.back(),
                 path.size() - 1);
  }
  SerialDeliver(path.back(), std::move(task), delay);
  return path.size() - 1;
}

size_t Transport::FinishRoute(core::EnvelopeRef env) {
  if (!network_->node(env->src).alive()) {
    // Deferred route whose source left at a barrier in between: finish as
    // a one-hop direct send to the responsible node (the departed node
    // drains its outbox before disappearing).
    env->dst = network_->SuccessorOf(env->route_key);
    FinishDirect(std::move(env));
    return 1;
  }
  std::vector<NodeIndex>& path = RouteScratch();
  network_->RoutePath(env->src, env->route_key, &path);
  stats::MetricsRegistry& metrics = Metrics();
  const uint64_t seq = router_->NextEmitSeq(env->src);
  Rng msg_rng = router_->MessageRng(env->src, seq);
  sim::SimTime delay = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    metrics.AddTraffic(path[i], 1, env->ric);
    delay += latency_->Delay(msg_rng);
  }
  RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
  env->dst = path.back();
  env->stage = core::EnvelopeStage::kDeliver;
  const NodeIndex src = env->src;
  stats::Tracer::RecordRouteHops(path.size() - 1);
  if (stats::Tracer::On()) {
    TraceMessage(stats::TraceCategory::kRoute, env->task.kind(), src,
                 path.back(), path.size() - 1);
  }
  router_->Deliver(src, seq, delay, std::move(env));
  return path.size() - 1;
}

void Transport::FinishDirect(core::EnvelopeRef env) {
  Metrics().AddTraffic(env->src, 1, env->ric);
  const uint64_t seq = router_->NextEmitSeq(env->src);
  Rng msg_rng = router_->MessageRng(env->src, seq);
  const sim::SimTime delay = latency_->Delay(msg_rng);
  RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
  env->stage = core::EnvelopeStage::kDeliver;
  const NodeIndex src = env->src;
  stats::Tracer::RecordRouteHops(1);
  if (stats::Tracer::On()) {
    TraceMessage(stats::TraceCategory::kSend, env->task.kind(), src, env->dst,
                 1);
  }
  router_->Deliver(src, seq, delay, std::move(env));
}

size_t Transport::MultiSend(
    NodeIndex src, std::vector<std::pair<NodeId, core::MessageTask>>* messages,
    bool ric) {
  if (router_ != nullptr && !router_->InWorker()) {
    // One defer event carries the whole batch to src's shard as an intrusive
    // envelope chain; emission sequence numbers are drawn there, in batch
    // order, exactly as a serial sequence of Send calls would draw them.
    core::EnvelopeRef head;
    core::Envelope* tail = nullptr;
    for (auto& [key, task] : *messages) {
      core::EnvelopeRef env = MakeRouted(src, key, std::move(task), ric,
                                         core::EnvelopeStage::kRoute);
      if (tail == nullptr) {
        head = std::move(env);
        tail = head.get();
      } else {
        tail->link = env.release();
        tail = tail->link;
      }
    }
    messages->clear();
    if (head) router_->Defer(src, std::move(head));
    return 0;
  }
  size_t hops = 0;
  for (auto& [key, task] : *messages) {
    hops += Send(src, key, std::move(task), ric);
  }
  messages->clear();
  return hops;
}

void Transport::SendDirect(NodeIndex src, NodeIndex dst,
                           core::MessageTask task, bool ric) {
  if (router_ != nullptr) {
    core::EnvelopeRef env = MakeRouted(src, NodeId(), std::move(task), ric,
                                       core::EnvelopeStage::kDirect);
    env->dst = dst;
    if (!router_->InWorker()) {
      router_->Defer(src, std::move(env));
      return;
    }
    FinishDirect(std::move(env));
    return;
  }
  Metrics().AddTraffic(src, 1, ric);
  stats::Tracer::RecordRouteHops(1);
  if (stats::Tracer::On())
    TraceMessage(stats::TraceCategory::kSend, task.kind(), src, dst, 1);
  SerialDeliver(dst, std::move(task), latency_->Delay(rng_));
}

void Transport::DispatchEnvelope(core::EnvelopeRef env) {
  core::EnvelopeRef cur = std::move(env);
  while (cur) {
    core::EnvelopeRef next(cur->link);
    cur->link = nullptr;
    DispatchOne(std::move(cur));
    cur = std::move(next);
  }
}

void Transport::DispatchOne(core::EnvelopeRef env) {
  switch (env->stage) {
    case core::EnvelopeStage::kRoute:
      FinishRoute(std::move(env));
      return;
    case core::EnvelopeStage::kDirect:
      FinishDirect(std::move(env));
      return;
    case core::EnvelopeStage::kDeliver:
      break;
  }
  if (env->task.kind() == core::MessageKind::kControl) {
    core::RunControl(std::move(env));
    return;
  }
  RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
  const NodeIndex dst = env->dst;
  if (stats::Tracer::On()) {
    TraceMessage(stats::TraceCategory::kDeliver, env->task.kind(), dst,
                 env->src, 0);
  }
  core::MessageTask task = std::move(env->task);
  // Recycle before handling: anything the handler emits reuses this
  // envelope first, keeping the pool's high-water mark at the true number
  // of concurrently in-flight messages.
  env.Reset();
  handler_->HandleMessage(dst, std::move(task));
}

void Transport::ChargeTraffic(NodeIndex node, uint64_t count, bool ric) {
  Metrics().AddTraffic(node, count, ric);
}

size_t Transport::ChargeRoute(NodeIndex src, const NodeId& key, bool ric) {
  if (!network_->node(src).alive()) {
    Metrics().AddTraffic(src, 1, ric);  // departed source: one direct hop
    return 1;
  }
  std::vector<NodeIndex>& path = RouteScratch();
  network_->RoutePath(src, key, &path);
  stats::MetricsRegistry& metrics = Metrics();
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    metrics.AddTraffic(path[i], 1, ric);
  }
  return path.size() - 1;
}

void Transport::SerialDeliver(NodeIndex dst, core::MessageTask task,
                              sim::SimTime delay) {
  RJOIN_CHECK(handler_ != nullptr) << "no message handler registered";
  core::EnvelopeRef env = simulator_->pool().Acquire();
  env->dst = dst;
  env->task = std::move(task);
  simulator_->Schedule(simulator_->Now() + delay, std::move(env));
}

}  // namespace rjoin::dht
