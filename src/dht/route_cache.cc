#include "dht/route_cache.h"

#include <atomic>

#include "util/logging.h"

namespace rjoin::dht {

namespace {

// Process-wide effectiveness counters, written relaxed from whichever
// thread owns the sending node (same aggregation shape as the pool and
// mailbox counters): cheap on the hot path, exact in aggregate.
std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_misses{0};

}  // namespace

const RouteCache::Entry* RouteCache::Lookup(core::KeyId key,
                                            uint64_t generation) {
  if (generation != generation_) {
    // Topology changed since the last touch: every memoized path is suspect.
    // Drop the whole table — one churn event costs one re-walk per key,
    // which is exactly what an uncached transport pays on every send.
    if (size_ != 0) {
      for (Entry& e : slots_) e.key = core::kInvalidKeyId;
      size_ = 0;
    }
    generation_ = generation;
  }
  if (size_ != 0) {
    const uint32_t mask = static_cast<uint32_t>(slots_.size() - 1);
    for (uint32_t i = Slot(key, mask); slots_[i].key != core::kInvalidKeyId;
         i = (i + 1) & mask) {
      if (slots_[i].key == key) {
        g_hits.fetch_add(1, std::memory_order_relaxed);
        return &slots_[i];
      }
    }
  }
  g_misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void RouteCache::Insert(core::KeyId key, uint64_t generation,
                        const std::vector<NodeIndex>& path) {
  RJOIN_DCHECK(key != core::kInvalidKeyId);
  if (generation != generation_) {
    // Same staleness rule as Lookup: a table stamped with another topology
    // is dead weight — start empty under the new generation.
    if (size_ != 0) {
      for (Entry& e : slots_) e.key = core::kInvalidKeyId;
      size_ = 0;
    }
    generation_ = generation;
  }
  const size_t hops = path.size() - 1;
  if (hops == 0 || hops > kMaxCachedHops) return;
  if (size_ >= kMaxEntries) return;
  if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) Grow();
  const uint32_t mask = static_cast<uint32_t>(slots_.size() - 1);
  uint32_t i = Slot(key, mask);
  while (slots_[i].key != core::kInvalidKeyId) {
    if (slots_[i].key == key) return;  // Already memoized this generation.
    i = (i + 1) & mask;
  }
  Entry& e = slots_[i];
  e.key = key;
  e.hops = static_cast<uint32_t>(hops);
  for (size_t h = 0; h < hops; ++h) e.hop[h] = path[h + 1];
  ++size_;
}

void RouteCache::Grow() {
  const size_t next_cap = slots_.empty() ? 64 : slots_.size() * 2;
  std::vector<Entry> old = std::move(slots_);
  slots_.assign(next_cap, Entry{});
  const uint32_t mask = static_cast<uint32_t>(next_cap - 1);
  for (const Entry& e : old) {
    if (e.key == core::kInvalidKeyId) continue;
    uint32_t i = Slot(e.key, mask);
    while (slots_[i].key != core::kInvalidKeyId) i = (i + 1) & mask;
    slots_[i] = e;
  }
}

NodeIndex SuccessorCache::Lookup(core::KeyId key, uint64_t generation) {
  if (key < slots_.size() && slots_[key].generation == generation) {
    g_hits.fetch_add(1, std::memory_order_relaxed);
    return slots_[key].node;
  }
  g_misses.fetch_add(1, std::memory_order_relaxed);
  return kInvalidNode;
}

void SuccessorCache::Insert(core::KeyId key, uint64_t generation,
                            NodeIndex responsible) {
  RJOIN_DCHECK(key != core::kInvalidKeyId);
  RJOIN_DCHECK(generation != 0);
  if (key >= slots_.size()) {
    // Key ids are dense interner handles; sizing to the next power of two
    // past the largest id seen keeps growth amortized-constant.
    size_t cap = slots_.empty() ? 1024 : slots_.size();
    while (cap <= key) cap *= 2;
    slots_.resize(cap);
  }
  slots_[key] = Slot{generation, responsible};
}

SuccessorCache& SuccessorCache::Tls() {
  static thread_local SuccessorCache cache;
  return cache;
}

RouteCache::Stats RouteCache::Aggregate() {
  Stats s;
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.misses = g_misses.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rjoin::dht
