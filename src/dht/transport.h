#ifndef RJOIN_DHT_TRANSPORT_H_
#define RJOIN_DHT_TRANSPORT_H_

#include <memory>
#include <utility>
#include <vector>

#include "dht/chord_network.h"
#include "dht/id.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "stats/metrics.h"
#include "util/random.h"

namespace rjoin::dht {

/// Opaque payload routed through the overlay. The application layer (RJoin)
/// defines concrete message types.
class Message {
 public:
  virtual ~Message() = default;
};

using MessagePtr = std::unique_ptr<Message>;

/// Receiver interface: the RJoin engine implements this to get messages
/// delivered to individual nodes.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void HandleMessage(NodeIndex self, MessagePtr msg) = 0;
};

/// The messaging API of Section 2 (originally from [18]):
///   Send(msg, id)        — deliver msg to Successor(id) in O(log N) hops;
///   MultiSend(M, I)      — deliver message M_j to Successor(I_j) for all j;
///   SendDirect(msg, addr)— deliver msg to a known address in one hop.
///
/// Every message transmission (creation and every DHT-routing forward) is
/// charged one unit of traffic to the transmitting node, matching the
/// traffic definition of Section 8. Delivery is asynchronous through the
/// discrete-event simulator, with per-hop latency drawn from the latency
/// model (bounded by delta).
class Transport {
 public:
  Transport(ChordNetwork* network, sim::Simulator* simulator,
            sim::LatencyModel* latency, stats::MetricsRegistry* metrics,
            Rng rng)
      : network_(network),
        simulator_(simulator),
        latency_(latency),
        metrics_(metrics),
        rng_(rng) {}

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  void set_handler(MessageHandler* handler) { handler_ = handler; }

  /// Routes `msg` from `src` to Successor(key). Returns the number of hops.
  /// `ric` tags the traffic as RIC-request overhead (separate series in the
  /// paper's figures).
  size_t Send(NodeIndex src, const NodeId& key, MessagePtr msg,
              bool ric = false);

  /// The paper's multiSend(M, I): one message per identifier. Returns total
  /// hops across all messages.
  size_t MultiSend(NodeIndex src,
                   std::vector<std::pair<NodeId, MessagePtr>> messages,
                   bool ric = false);

  /// One-hop delivery to a node whose address is already known.
  void SendDirect(NodeIndex src, NodeIndex dst, MessagePtr msg,
                  bool ric = false);

  ChordNetwork* network() { return network_; }
  sim::Simulator* simulator() { return simulator_; }
  stats::MetricsRegistry* metrics() { return metrics_; }

  /// Charges `count` messages of pure routing traffic to `node` without a
  /// payload (used by the RIC chain accounting in Section 6/7).
  void ChargeTraffic(NodeIndex node, uint64_t count, bool ric);

  /// Charges traffic for an O(log N) route from src towards `key`,
  /// hop-by-hop at each forwarding node, without delivering a payload.
  /// Returns the hop count.
  size_t ChargeRoute(NodeIndex src, const NodeId& key, bool ric);

 private:
  void Deliver(NodeIndex dst, MessagePtr msg, sim::SimTime delay);

  ChordNetwork* network_;
  sim::Simulator* simulator_;
  sim::LatencyModel* latency_;
  stats::MetricsRegistry* metrics_;
  MessageHandler* handler_ = nullptr;
  Rng rng_;
};

}  // namespace rjoin::dht

#endif  // RJOIN_DHT_TRANSPORT_H_
