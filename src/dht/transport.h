#ifndef RJOIN_DHT_TRANSPORT_H_
#define RJOIN_DHT_TRANSPORT_H_

#include <utility>
#include <vector>

#include "core/interner.h"
#include "core/messages.h"
#include "dht/chord_network.h"
#include "dht/id.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "stats/metrics.h"
#include "util/random.h"

namespace rjoin::dht {

/// Receiver interface: the RJoin engine implements this to get typed
/// message tasks delivered to individual nodes (a switch over
/// core::MessageKind replaces the old dynamic_cast chain).
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void HandleMessage(NodeIndex self, core::MessageTask&& task) = 0;
};

/// Scheduling backend the sharded runtime plugs into the transport
/// (implemented by runtime::ShardRouter). When a router is attached, the
/// transport stops scheduling deliveries on the serial simulator and
/// instead:
///  * tags every message with (src, per-src emission seq) — the
///    deterministic identity its delivery order and latency draws hang off;
///  * draws per-hop latency from an Rng derived from that identity, so
///    delays do not depend on thread interleaving or shard count;
///  * hands the pooled envelope to the router, which places it in the
///    destination shard's event heap or mailbox.
/// Driver-phase sends (tuple publications, query submissions) defer the
/// envelope — still in its kRoute/kDirect stage — onto the source node's
/// shard, which moves the O(log N) routing work onto the worker threads
/// without any closure allocation.
class DeliveryRouter {
 public:
  virtual ~DeliveryRouter() = default;

  /// Virtual time at the caller (event time on a worker, round cursor on
  /// the driver).
  virtual sim::SimTime Now() const = 0;

  /// True when the calling thread is a shard worker executing events.
  virtual bool InWorker() const = 0;

  /// Registry the calling thread may write (its shard's delta registry on
  /// a worker, the main registry on the driver).
  virtual stats::MetricsRegistry* ActiveMetrics() = 0;

  /// Next emission sequence number of `src`.
  virtual uint64_t NextEmitSeq(NodeIndex src) = 0;

  /// Deterministic per-message RNG derived from (src, seq).
  virtual Rng MessageRng(NodeIndex src, uint64_t seq) = 0;

  /// Envelope from the pool of the shard that will execute the next stage:
  /// the calling worker's own pool, or `src`'s shard pool on the driver.
  virtual core::EnvelopeRef AcquireEnvelope(NodeIndex src) = 0;

  /// Runs `env` (and its `link` chain) as one event on `src`'s shard at
  /// the current time (driver-phase send deferral).
  virtual void Defer(NodeIndex src, core::EnvelopeRef env) = 0;

  /// Delivers `env` at Now() + delay on `env->dst`'s shard. Cross-node
  /// deliveries are deferred to at least the end of the current round
  /// (deterministically), preserving the round-lookahead invariant.
  virtual void Deliver(NodeIndex src, uint64_t seq, sim::SimTime delay,
                       core::EnvelopeRef env) = 0;

  /// Attaches the dispatcher the runtime must hand typed envelopes to
  /// (called by Transport::set_router).
  virtual void BindDispatcher(core::EnvelopeDispatcher* dispatcher) = 0;
};

/// The messaging API of Section 2 (originally from [18]):
///   Send(msg, id)        — deliver msg to Successor(id) in O(log N) hops;
///   MultiSend(M, I)      — deliver message M_j to Successor(I_j) for all j;
///   SendDirect(msg, addr)— deliver msg to a known address in one hop.
///
/// Every message transmission (creation and every DHT-routing forward) is
/// charged one unit of traffic to the transmitting node, matching the
/// traffic definition of Section 8. Delivery is asynchronous through the
/// discrete-event simulator — or, when a DeliveryRouter is attached, through
/// the sharded parallel runtime — with per-hop latency drawn from the
/// latency model (bounded by delta).
///
/// Messages are typed core::MessageTask payloads carried in pooled
/// core::Envelopes: the transport is the core::EnvelopeDispatcher both
/// event pumps call, finishing deferred routing stages and handing
/// delivered payloads to the MessageHandler. The steady-state path —
/// acquire envelope, route, schedule, pop, dispatch, recycle — performs
/// zero heap allocations per message.
class Transport : public core::EnvelopeDispatcher {
 public:
  Transport(ChordNetwork* network, sim::Simulator* simulator,
            sim::LatencyModel* latency, stats::MetricsRegistry* metrics,
            Rng rng);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  void set_handler(MessageHandler* handler) { handler_ = handler; }

  /// Attaches the sharded runtime's router. nullptr restores the serial
  /// simulator path.
  void set_router(DeliveryRouter* router) {
    router_ = router;
    if (router_ != nullptr) router_->BindDispatcher(this);
  }

  /// Routes `task` from `src` to Successor(key). Returns the number of hops
  /// (0 when the send was deferred onto a worker shard by the router).
  /// `ric` tags the traffic as RIC-request overhead (separate series in the
  /// paper's figures).
  size_t Send(NodeIndex src, const NodeId& key, core::MessageTask task,
              bool ric = false);

  /// Send() keyed by an interned key id: routes on the interner's cached
  /// ring identifier — no SHA-1, no key text, anywhere on the path — and
  /// memoizes the route in the sender's RouteCache, so a warm send resolves
  /// its path in O(1) instead of an O(log N) finger walk.
  size_t SendKey(NodeIndex src, core::KeyId key, core::MessageTask task,
                 bool ric = false);

  /// The paper's multiSend(M, I): one message per identifier. Returns total
  /// hops across all messages (0 when deferred). Under the router the whole
  /// batch defers as one envelope chain — a single event on src's shard
  /// that draws emission seqs in batch order, exactly as sequential Send
  /// calls would. Drains `*messages` in place and clears it, keeping its
  /// capacity — the publish path reuses one batch buffer forever.
  size_t MultiSend(NodeIndex src,
                   std::vector<std::pair<NodeId, core::MessageTask>>* messages,
                   bool ric = false);

  /// MultiSend keyed by interned key ids, with destination coalescing: the
  /// batch is grouped by responsible node (resolved through the per-node
  /// route cache) and each group travels as ONE wire message — one emission
  /// seq, one route's worth of traffic charges and latency draws, one
  /// delivery event — whose envelope carries the remaining payloads as a
  /// `group` chain. Grouping is a pure function of the batch and the
  /// topology, so serial and sharded runs coalesce identically. This is the
  /// publication fan-out path (2k index messages per tuple).
  size_t MultiSendKeys(
      NodeIndex src,
      std::vector<std::pair<core::KeyId, core::MessageTask>>* messages,
      bool ric = false);

  /// Convenience overload consuming the batch by value.
  size_t MultiSend(NodeIndex src,
                   std::vector<std::pair<NodeId, core::MessageTask>> messages,
                   bool ric = false) {
    return MultiSend(src, &messages, ric);
  }

  /// One-hop delivery to a node whose address is already known.
  void SendDirect(NodeIndex src, NodeIndex dst, core::MessageTask task,
                  bool ric = false);

  /// core::EnvelopeDispatcher: executes a due envelope (and any MultiSend
  /// chain linked behind it) — kRoute/kDirect stages finish their routing
  /// work and reschedule the same envelope; kDeliver recycles the envelope
  /// and hands the payload to the handler; kControl closures run inline.
  void DispatchEnvelope(core::EnvelopeRef env) override;

  ChordNetwork* network() { return network_; }
  sim::Simulator* simulator() { return simulator_; }
  stats::MetricsRegistry* metrics() { return metrics_; }

  /// Charges `count` messages of pure routing traffic to `node` without a
  /// payload (used by the RIC chain accounting in Section 6/7).
  void ChargeTraffic(NodeIndex node, uint64_t count, bool ric);

  /// Charges traffic for an O(log N) route from src towards `key`,
  /// hop-by-hop at each forwarding node, without delivering a payload.
  /// Returns the hop count. Always recomputes: the charged source may live
  /// on a foreign shard, whose route cache this thread must not touch.
  size_t ChargeRoute(NodeIndex src, const NodeId& key, bool ric);

  /// Route-cache kill switch (RJOIN_ROUTE_CACHE=0 disables; default on).
  /// With the cache off every send recomputes its path — the oracle the
  /// cache must match bit-for-bit.
  bool route_cache_enabled() const { return route_cache_enabled_; }
  void set_route_cache_enabled(bool on) { route_cache_enabled_ = on; }

  /// Process-wide destination-coalescing counters (all transports):
  /// `groups` wire messages carried `payloads` application payloads.
  struct CoalesceStats {
    uint64_t groups = 0;
    uint64_t payloads = 0;
    double mean_width() const {
      return groups == 0 ? 0.0
                         : static_cast<double>(payloads) /
                               static_cast<double>(groups);
    }
  };
  static CoalesceStats AggregateCoalesce();

 private:
  /// Registry for the calling thread (shard delta under the router).
  stats::MetricsRegistry& Metrics() {
    return router_ != nullptr ? *router_->ActiveMetrics() : *metrics_;
  }

  /// Scratch path buffer for the calling thread (workers dispatch
  /// concurrently, so the buffer cannot live on the transport).
  static std::vector<NodeIndex>& RouteScratch();

  /// Fills a fresh route-stage envelope (router path).
  core::EnvelopeRef MakeRouted(NodeIndex src, const NodeId& key,
                               core::MessageTask task, bool ric,
                               core::EnvelopeStage stage);

  /// Executes one envelope stage (no chain walking).
  void DispatchOne(core::EnvelopeRef env);

  /// Finishes the O(log N) routing of a kRoute envelope and reschedules it
  /// as kDeliver (router path). Returns the hop count.
  size_t FinishRoute(core::EnvelopeRef env);

  /// Finishes a kDirect envelope: one traffic unit, derived latency,
  /// reschedule as kDeliver (router path).
  void FinishDirect(core::EnvelopeRef env);

  /// Serial-path send bodies (route/charge/schedule on the simulator).
  size_t SerialSend(NodeIndex src, const NodeId& key, core::MessageTask task,
                    bool ric, core::KeyId key_id = core::kInvalidKeyId);
  void SerialDeliver(NodeIndex dst, core::MessageTask task,
                     sim::SimTime delay);

  /// A resolved forwarding tail: hops[0..count-1] are the nodes after the
  /// source on the greedy route, hops[count-1] the responsible node; count
  /// may be 0 when the source itself is responsible. Points into either the
  /// sender's RouteCache entry or the thread's RouteScratch — consume
  /// before the next resolve.
  struct RouteView {
    const NodeIndex* hops = nullptr;
    uint32_t count = 0;
    NodeIndex dst_or(NodeIndex src) const {
      return count == 0 ? src : hops[count - 1];
    }
  };

  /// Resolves the route src -> Successor(ring_id): cache hit when `key_id`
  /// is interned, the cache is enabled, and the topology generation still
  /// matches; otherwise one RoutePath walk, memoized for next time.
  RouteView ResolveRoute(NodeIndex src, core::KeyId key_id,
                         const NodeId& ring_id);

  /// Resolves Successor(ring_id) through the thread's SuccessorCache
  /// (destination resolution is sender-independent, so the fan-out's
  /// grouping pass shares one memo across every node this thread runs).
  /// Falls back to the ring search when the cache is disabled or the key
  /// is not interned.
  NodeIndex CachedSuccessorOf(core::KeyId key_id, const NodeId& ring_id);

  /// Destination-coalesced emission of a kRouteGroup chain (serial inline,
  /// router worker-phase, or dispatched deferred chain). Returns total wire
  /// hops.
  size_t CoalesceAndSend(core::EnvelopeRef chain);

  ChordNetwork* network_;
  sim::Simulator* simulator_;
  sim::LatencyModel* latency_;
  stats::MetricsRegistry* metrics_;
  MessageHandler* handler_ = nullptr;
  DeliveryRouter* router_ = nullptr;
  core::KeyInterner* interner_ = &core::KeyInterner::Global();
  Rng rng_;
  bool route_cache_enabled_;
};

}  // namespace rjoin::dht

#endif  // RJOIN_DHT_TRANSPORT_H_
