#ifndef RJOIN_DHT_CHORD_NETWORK_H_
#define RJOIN_DHT_CHORD_NETWORK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dht/chord_node.h"
#include "dht/id.h"
#include "dht/route_cache.h"
#include "util/status.h"

namespace rjoin::dht {

/// A half-open interval (low, high] on the identifier ring: the key range a
/// churn event moves between nodes. When low == high the range spans the
/// whole ring (the Chord single-node convention).
struct KeyRange {
  NodeId low;
  NodeId high;

  bool Contains(const NodeId& id) const {
    return InIntervalOpenClosed(id, low, high);
  }
};

/// A simulated Chord overlay. All nodes live in-process (the evaluation
/// methodology of the paper). The network provides:
///   * ring membership: join, voluntary leave, failure, stabilization;
///   * ground-truth successor resolution (for correctness checks);
///   * hop-by-hop greedy finger routing (for traffic accounting);
///   * the network-size estimate used to derive the ALTT bound.
class ChordNetwork {
 public:
  ChordNetwork() = default;
  ChordNetwork(const ChordNetwork&) = delete;
  ChordNetwork& operator=(const ChordNetwork&) = delete;

  /// Builds a stabilized network of n nodes whose ids are SHA-1 hashes of
  /// "node:<i>:<seed>" — i.e. consistent hashing of synthetic node keys.
  static std::unique_ptr<ChordNetwork> Create(size_t n, uint64_t seed = 0);

  /// Builds a stabilized network with explicit ring positions (used by the
  /// id-movement load balancer of the Fig. 9 experiment).
  static std::unique_ptr<ChordNetwork> CreateWithPositions(
      const std::vector<NodeId>& positions);

  /// Adds a node with the given id; returns its index. The ring is updated
  /// immediately but finger tables are stale until Stabilize().
  StatusOr<NodeIndex> AddNode(NodeId id);

  /// Marks a node dead (silent failure) and removes it from the ring.
  /// State stored under the node's keys is simply lost, as in a real crash.
  Status FailNode(NodeIndex node);

  /// Voluntary, *graceful* leave: removes the node from the ring, splices
  /// its neighbors' successor/predecessor pointers exactly, and returns the
  /// orphaned key range (pred, node] the departing node was responsible
  /// for. The caller owns that range's state now — it must either hand it
  /// off to the new successor (RJoinEngine emits a StateHandoff) or drop it
  /// deliberately; discarding the returned range silently is the bug the
  /// [[nodiscard]] guards against. Refuses to remove the last alive node
  /// (its range would have no owner).
  [[nodiscard]] StatusOr<KeyRange> LeaveNode(NodeIndex node);

  /// Silent failure with ring repair: removes the node like a crash — no
  /// goodbye, nothing handed off — and returns the orphaned key range
  /// (pred, node] so the layer above can promote whatever replicas of it
  /// survive. The splice itself is identical to LeaveNode's: it stands in
  /// for the stabilization rounds a real ring would run after detecting the
  /// failure, compressed into the rendezvous that applies the crash (the
  /// successor "detects" the crash through the topology-generation bump —
  /// see docs/failures.md). Unlike FailNode, the ring stays exact, so
  /// routing and the forwarding rule keep working without protocol rounds.
  /// Refuses to crash the last alive node.
  [[nodiscard]] StatusOr<KeyRange> CrashNode(NodeIndex node);

  /// In-band protocol join: resolves the successor from `bootstrap` with
  /// node-local routing (like JoinViaBootstrap), then immediately splices
  /// the new node into the ring — neighbors' successor/predecessor
  /// pointers, successor lists of the spliced nodes, and one full
  /// fix_fingers() sweep for the joiner — so greedy routing converges
  /// without driver-side RunProtocolRounds. Returns the new node's index;
  /// the joiner's responsibility (its orphan of the successor's old range)
  /// is (predecessor(new), new].
  StatusOr<NodeIndex> JoinAndSplice(NodeId id, NodeIndex bootstrap);

  /// Recomputes successors, predecessors, finger tables and successor lists
  /// for every alive node. Models a fully stabilized Chord network, which
  /// Section 4 assumes for the eventual-completeness theorem.
  void Stabilize();

  // --- Incremental Chord protocol (the real stabilization machinery) ----
  //
  // Stabilize() above is the oracle shortcut used by experiments; the
  // operations below are the per-node protocol steps of the Chord paper:
  // a node joins by asking any live bootstrap node to look up its
  // successor, and the ring heals through repeated stabilize()/notify()/
  // fix_fingers() rounds. Tests drive these to verify that lookups converge
  // to ground truth after joins, voluntary leaves, and silent failures.

  /// Protocol join: resolves the new node's successor by routing from
  /// `bootstrap` with node-local state only. The new node starts with a
  /// coarse finger table (everything pointing at its successor) that
  /// FixFingersOnce repairs over time.
  StatusOr<NodeIndex> JoinViaBootstrap(NodeId id, NodeIndex bootstrap);

  /// One round of Chord's stabilize()+notify() for node `n`: skip dead
  /// successors (via the successor list), adopt a closer successor if the
  /// current successor's predecessor sits between, and update the
  /// successor's predecessor pointer. Also refreshes n's successor list.
  void StabilizeOnce(NodeIndex n);

  /// One round of fix_fingers() for node `n`: re-resolves finger
  /// `finger_index` with a node-local lookup.
  void FixFingersOnce(NodeIndex n, int finger_index);

  /// Runs `rounds` full protocol rounds (every alive node stabilizes and
  /// fixes all fingers). A convenience for tests; O(rounds * N * 160).
  void RunProtocolRounds(int rounds);

  /// Node-local successor resolution: greedy routing using only successor
  /// pointers and finger tables (no oracle), skipping dead nodes. This is
  /// what JoinViaBootstrap and FixFingersOnce use.
  NodeIndex FindSuccessorFrom(NodeIndex src, const NodeId& key) const;

  /// True iff following successor pointers from any alive node visits every
  /// alive node exactly once, in ring order, and predecessor pointers agree.
  bool RingConsistent() const;

  size_t num_alive() const { return ring_.size(); }
  size_t num_total() const { return nodes_.size(); }

  const ChordNode& node(NodeIndex i) const { return *nodes_[i]; }
  ChordNode& mutable_node(NodeIndex i) { return *nodes_[i]; }

  /// Ground truth: the node responsible for `key` (its successor on the
  /// ring). Requires a non-empty network.
  NodeIndex SuccessorOf(const NodeId& key) const;

  /// Simulates greedy finger routing from `src` toward the node responsible
  /// for `key`. Returns the sequence of nodes traversed, starting with src
  /// and ending with the responsible node. The number of message
  /// transmissions is path.size() - 1; O(log N) with high probability.
  std::vector<NodeIndex> Route(NodeIndex src, const NodeId& key) const;

  /// Route() into a caller-owned buffer (cleared first). The transport's
  /// per-message hot path reuses one thread-local buffer so routing does
  /// not heap-allocate a fresh path vector per message.
  void RoutePath(NodeIndex src, const NodeId& key,
                 std::vector<NodeIndex>* path) const;

  /// Number of hops of Route() without materializing the path.
  size_t RouteHops(NodeIndex src, const NodeId& key) const;

  /// Estimates the network size from node `n`'s successor-list density
  /// (the local-information technique of [14] cited in Section 4).
  double EstimateSize(NodeIndex n) const;

  /// All alive node indices, in ring order.
  std::vector<NodeIndex> AliveNodes() const;

  /// Ground truth: the next `count` alive successors of `node` in ring
  /// order, excluding `node` itself (fewer when the ring is smaller).
  /// Appends to a cleared `*out`. This is the replica target set of the
  /// successor-list replication protocol (docs/failures.md).
  void SuccessorsOf(NodeIndex node, size_t count,
                    std::vector<NodeIndex>* out) const;

  /// True iff every alive node's successor list equals its next
  /// min(kSuccessorListLen, n-1) ring successors, in order — the invariant
  /// the oracle Stabilize() establishes and every splice operation
  /// (JoinAndSplice / LeaveNode / CrashNode) must now preserve. Raw
  /// protocol joins (JoinViaBootstrap without splicing) intentionally
  /// violate it until stabilization rounds run.
  bool ValidSuccessorLists() const;

  /// Length of the successor list each node maintains.
  static constexpr size_t kSuccessorListLen = 8;

  /// Monotone counter bumped by every mutation that can change routing
  /// state (membership, successor/predecessor pointers, fingers). Route
  /// caches stamp their entries with this; a mismatch invalidates them.
  /// Generations are drawn from one process-global counter starting at 1,
  /// so every topology state of every ChordNetwork in the process has a
  /// unique stamp — a cache shared across networks (the thread-local
  /// SuccessorCache) can never mistake one network's entry for another's,
  /// and stamp 0 always means "never filled".
  uint64_t topology_generation() const { return generation_; }

  /// Node `i`'s route memo (created on first use). Only the thread that
  /// owns node `i`'s sends may touch it — see RouteCache's threading note.
  RouteCache& route_cache(NodeIndex i) {
    if (route_caches_[i] == nullptr) {
      route_caches_[i] = std::make_unique<RouteCache>();
    }
    return *route_caches_[i];
  }

 private:
  NodeIndex ClosestPrecedingFinger(NodeIndex from, const NodeId& key) const;

  void BumpGeneration();

  /// Shared splice body of LeaveNode/CrashNode: removes `node` from the
  /// ring, repairs neighbor pointers and *every* successor list that held
  /// it, returns the orphaned range.
  StatusOr<KeyRange> RemoveAndSplice(NodeIndex node);

  /// Rebuilds the successor lists of the up-to-kSuccessorListLen alive
  /// ring-predecessors of `around` (the nodes whose lists reference the
  /// ring segment that just changed) by running StabilizeOnce on each.
  void RepairSuccessorListsAround(NodeIndex around);

  std::vector<std::unique_ptr<ChordNode>> nodes_;
  std::map<NodeId, NodeIndex> ring_;  // alive nodes only
  // Parallel to nodes_; lazily populated. unique_ptr keeps growth cheap and
  // slot addresses stable across the vector's own reallocation.
  std::vector<std::unique_ptr<RouteCache>> route_caches_;
  uint64_t generation_ = 0;
};

}  // namespace rjoin::dht

#endif  // RJOIN_DHT_CHORD_NETWORK_H_
