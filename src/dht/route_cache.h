#ifndef RJOIN_DHT_ROUTE_CACHE_H_
#define RJOIN_DHT_ROUTE_CACHE_H_

#include <cstdint>
#include <vector>

#include "core/key.h"
#include "dht/chord_node.h"

namespace rjoin::dht {

/// Per-node memo of greedy Chord routes, keyed by interned core::KeyId
/// (PR 4's interner already caches one ring id per key, so the key id is a
/// complete proxy for the routing target). Each entry stores the *full*
/// forwarding tail of RoutePath(src, key) — every hop after the source, the
/// last being the responsible node — so a hit replays exactly the traffic
/// charges, hop count, and latency-draw count of an uncached route. That is
/// what keeps cached runs bit-identical to uncached ones: the cache changes
/// who computes the path, never what the path is.
///
/// Invalidation is by topology generation: ChordNetwork bumps a counter on
/// every mutation that can change routing state (join, leave, failure,
/// stabilization). A cache whose stamped generation is stale lazily drops
/// its whole table on the next lookup — routes recompute once and re-memoize
/// under the new generation. There is no per-entry invalidation to get
/// wrong; churn simply starts an empty table.
///
/// Thread-safety: none required. A node's sends execute only on its owner
/// shard's worker (or on the driver while workers are parked), so each
/// RouteCache is touched by one thread at a time. Global hit/miss counters
/// are relaxed atomics aggregated like core::MessagePool's.
class RouteCache {
 public:
  /// Longest forwarding tail an entry can hold. Greedy Chord paths are
  /// O(log N) w.h.p. (~10 hops at the paper's 10^3 nodes); longer paths —
  /// pathological stale-finger walks — stay uncached and simply recompute.
  static constexpr uint32_t kMaxCachedHops = 16;

  /// Hard cap on live entries, bounding worst-case memory to ~5 MB per node
  /// even if a node sends to every key in an open-ended domain. At the cap
  /// new routes stop memoizing (counted as misses); correctness is
  /// unaffected.
  static constexpr size_t kMaxEntries = size_t{1} << 16;

  struct Entry {
    core::KeyId key = core::kInvalidKeyId;
    uint32_t hops = 0;                 ///< forwarding tail length, >= 1
    NodeIndex hop[kMaxCachedHops] = {};  ///< path[1..]; hop[hops-1] = dst
  };

  /// The cached forwarding tail for `key` under topology `generation`, or
  /// nullptr on miss. A generation change clears the table first.
  const Entry* Lookup(core::KeyId key, uint64_t generation);

  /// Memoizes `path` (a full RoutePath result: path[0] == src, back() ==
  /// responsible) under `generation`. Paths longer than kMaxCachedHops and
  /// inserts past kMaxEntries are dropped.
  void Insert(core::KeyId key, uint64_t generation,
              const std::vector<NodeIndex>& path);

  size_t size() const { return size_; }

  /// Global cache effectiveness counters (all nodes, all time).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  static Stats Aggregate();

 private:
  static uint32_t Slot(core::KeyId key, uint32_t mask) {
    // Fibonacci hash of the dense key id; table sizes are powers of two.
    uint32_t h = key * 2654435769u;
    h ^= h >> 16;
    return h & mask;
  }

  void Grow();

  std::vector<Entry> slots_;
  size_t size_ = 0;
  uint64_t generation_ = 0;
};

/// Destination-resolution memo: interned KeyId -> responsible NodeIndex,
/// each entry stamped with the topology generation it was computed under.
/// Responsibility — unlike a forwarding path — does not depend on the
/// sender, so this cache is shared by every node the calling thread
/// executes (one instance per thread, `SuccessorCache::Tls()`). It serves
/// the publication fan-out's grouping pass in Transport::MultiSendKeys,
/// where the (publisher, key) pair is cold by construction (publishers are
/// drawn at random) but the key's responsible node is hot.
///
/// Entries are validated per lookup against the caller's current
/// generation; ChordNetwork generations are process-globally unique, so a
/// thread that touches several networks (tests, bench repeats) can never
/// read one network's entry as another's. Hits and misses land in the same
/// process-wide counters as RouteCache's — both levels are the one cached
/// routing plane that `route_cache_hit_rate` reports on.
class SuccessorCache {
 public:
  /// The responsible node memoized for `key` under `generation`, or
  /// kInvalidNode on miss. Counts one hit or miss.
  NodeIndex Lookup(core::KeyId key, uint64_t generation);

  /// Memoizes `responsible` for `key` under `generation`.
  void Insert(core::KeyId key, uint64_t generation, NodeIndex responsible);

  /// Bulk-warm bookkeeping: the transport sweeps every interned key into
  /// the cache the first time a thread routes under a new topology
  /// generation (a DHT node's successor knowledge IS prewarmed state —
  /// only keys interned after the sweep can miss). The sweep's inserts are
  /// not counted as lookups.
  uint64_t swept_generation() const { return swept_generation_; }
  void set_swept_generation(uint64_t generation) {
    swept_generation_ = generation;
  }

  /// The calling thread's instance.
  static SuccessorCache& Tls();

 private:
  struct Slot {
    uint64_t generation = 0;  // 0 = never filled (real stamps start at 1)
    NodeIndex node = kInvalidNode;
  };
  /// Indexed directly by the dense interned KeyId; grows on demand.
  std::vector<Slot> slots_;
  uint64_t swept_generation_ = 0;
};

}  // namespace rjoin::dht

#endif  // RJOIN_DHT_ROUTE_CACHE_H_
