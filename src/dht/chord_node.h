#ifndef RJOIN_DHT_CHORD_NODE_H_
#define RJOIN_DHT_CHORD_NODE_H_

#include <cstdint>
#include <vector>

#include "dht/id.h"
#include "stats/metrics.h"

namespace rjoin::dht {

using NodeIndex = stats::NodeIndex;
inline constexpr NodeIndex kInvalidNode = static_cast<NodeIndex>(-1);

/// State of one Chord peer: its ring position, successor/predecessor
/// pointers, finger table, and successor list. Routing logic lives in
/// ChordNetwork, which owns all nodes of the simulated overlay.
class ChordNode {
 public:
  ChordNode(NodeIndex index, NodeId id) : index_(index), id_(id) {}

  NodeIndex index() const { return index_; }
  const NodeId& id() const { return id_; }

  bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  NodeIndex successor() const { return successor_; }
  void set_successor(NodeIndex s) { successor_ = s; }

  NodeIndex predecessor() const { return predecessor_; }
  void set_predecessor(NodeIndex p) { predecessor_ = p; }

  /// finger[i] = Successor(id + 2^i), i in [0, 160).
  const std::vector<NodeIndex>& fingers() const { return fingers_; }
  std::vector<NodeIndex>& mutable_fingers() { return fingers_; }

  /// The r nearest successors, used for robustness and for the
  /// network-size estimate of Section 4.
  const std::vector<NodeIndex>& successor_list() const {
    return successor_list_;
  }
  std::vector<NodeIndex>& mutable_successor_list() { return successor_list_; }

 private:
  NodeIndex index_;
  NodeId id_;
  bool alive_ = true;
  NodeIndex successor_ = kInvalidNode;
  NodeIndex predecessor_ = kInvalidNode;
  std::vector<NodeIndex> fingers_;
  std::vector<NodeIndex> successor_list_;
};

}  // namespace rjoin::dht

#endif  // RJOIN_DHT_CHORD_NODE_H_
