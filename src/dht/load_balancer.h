#ifndef RJOIN_DHT_LOAD_BALANCER_H_
#define RJOIN_DHT_LOAD_BALANCER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "dht/id.h"

namespace rjoin::dht {

/// A key observed on the ring together with the load it generated
/// (tuples stored + rewritten queries handled under that key).
struct KeyLoad {
  NodeId id;
  uint64_t weight = 0;
};

/// Id-movement load balancing in the style of Karger–Ruhl [19], cited and
/// evaluated in the paper's "Using lower level interfaces" experiment
/// (Fig. 9). A node may change its position on the identifier circle and
/// thereby choose which identifiers it is responsible for.
///
/// Given the per-key load profile of a workload, ComputeBalancedPositions
/// places the n node ids so that each node's arc carries approximately
/// total_load / n weight: it walks the circle in id order and drops a node
/// boundary every time the accumulated weight crosses a 1/n-th share. This
/// reproduces the steady state the iterative Karger–Ruhl protocol converges
/// to, which is what the end-of-run load distributions of Fig. 9 measure.
class IdMovementBalancer {
 public:
  /// Returns `num_nodes` ring positions balancing `items`. Items need not be
  /// sorted. If there are fewer distinct item ids than nodes, the remaining
  /// nodes are spread uniformly over the ring.
  static std::vector<NodeId> ComputeBalancedPositions(
      std::vector<KeyLoad> items, size_t num_nodes);
};

}  // namespace rjoin::dht

#endif  // RJOIN_DHT_LOAD_BALANCER_H_
