#ifndef RJOIN_DHT_ID_H_
#define RJOIN_DHT_ID_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace rjoin::dht {

/// A 160-bit identifier on the Chord ring. Identifiers are produced by
/// hashing keys with SHA-1 (consistent hashing), exactly as in the Chord
/// paper the system model of Section 2 builds on. Represented as five
/// 32-bit words, most significant first, so lexicographic comparison of the
/// words equals numeric comparison of the identifier.
class NodeId {
 public:
  static constexpr int kBits = 160;
  static constexpr int kWords = 5;

  /// Zero identifier.
  constexpr NodeId() : words_{} {}

  /// Identifier of a key: SHA-1(key). This is the paper's Hash(k).
  static NodeId FromKey(std::string_view key);

  /// Identifier whose low 64 bits are `value` (testing helper).
  static NodeId FromUint64(uint64_t value);

  /// Parses a 40-char lowercase hex string; asserts on malformed input.
  static NodeId FromHex(std::string_view hex);

  /// The largest identifier (2^160 - 1).
  static NodeId Max();

  /// Returns this + 2^power (mod 2^160); power in [0, 160). Used for
  /// Chord finger-table starts: finger[i] starts at n + 2^i.
  NodeId AddPowerOfTwo(int power) const;

  /// Returns this + other (mod 2^160).
  NodeId Add(const NodeId& other) const;

  /// Returns this - other (mod 2^160): the clockwise distance from
  /// `other` to this.
  NodeId Subtract(const NodeId& other) const;

  /// Approximates the identifier as a double in [0, 2^160). Used only for
  /// network-size estimation, where relative error is acceptable.
  double ToDouble() const;

  std::string ToHex() const;
  /// Short prefix of the hex form, for logs.
  std::string ToShortString() const;

  friend auto operator<=>(const NodeId&, const NodeId&) = default;

  const std::array<uint32_t, kWords>& words() const { return words_; }

  struct Hasher {
    size_t operator()(const NodeId& id) const {
      // Words are already uniformly distributed (SHA-1 output).
      return (static_cast<size_t>(id.words_[0]) << 32) ^ id.words_[1] ^
             (static_cast<size_t>(id.words_[2]) << 16);
    }
  };

 private:
  std::array<uint32_t, kWords> words_;
};

/// True iff x is in the half-open ring interval (a, b]. When a == b the
/// interval spans the whole ring (single-node convention in Chord).
bool InIntervalOpenClosed(const NodeId& x, const NodeId& a, const NodeId& b);

/// True iff x is in the open ring interval (a, b). When a == b the interval
/// is the whole ring except a.
bool InIntervalOpenOpen(const NodeId& x, const NodeId& a, const NodeId& b);

}  // namespace rjoin::dht

#endif  // RJOIN_DHT_ID_H_
