#include "dht/id.h"

#include <cmath>

#include "util/logging.h"
#include "util/sha1.h"

namespace rjoin::dht {

NodeId NodeId::FromKey(std::string_view key) {
  NodeId id;
  id.words_ = Sha1(key);
  return id;
}

NodeId NodeId::FromUint64(uint64_t value) {
  NodeId id;
  id.words_[3] = static_cast<uint32_t>(value >> 32);
  id.words_[4] = static_cast<uint32_t>(value & 0xffffffffULL);
  return id;
}

NodeId NodeId::FromHex(std::string_view hex) {
  RJOIN_CHECK(hex.size() == 40) << "NodeId hex must be 40 chars";
  NodeId id;
  for (int w = 0; w < kWords; ++w) {
    uint32_t word = 0;
    for (int c = 0; c < 8; ++c) {
      const char ch = hex[w * 8 + c];
      uint32_t digit;
      if (ch >= '0' && ch <= '9') {
        digit = static_cast<uint32_t>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        digit = static_cast<uint32_t>(ch - 'a' + 10);
      } else {
        RJOIN_CHECK(false) << "bad hex char in NodeId";
        digit = 0;
      }
      word = (word << 4) | digit;
    }
    id.words_[w] = word;
  }
  return id;
}

NodeId NodeId::Max() {
  NodeId id;
  id.words_.fill(0xffffffffu);
  return id;
}

NodeId NodeId::AddPowerOfTwo(int power) const {
  RJOIN_CHECK(power >= 0 && power < kBits);
  NodeId p;
  const int word = kWords - 1 - power / 32;  // words are big-endian
  p.words_[word] = 1u << (power % 32);
  return Add(p);
}

NodeId NodeId::Add(const NodeId& other) const {
  NodeId out;
  uint64_t carry = 0;
  for (int w = kWords - 1; w >= 0; --w) {
    const uint64_t sum = static_cast<uint64_t>(words_[w]) +
                         static_cast<uint64_t>(other.words_[w]) + carry;
    out.words_[w] = static_cast<uint32_t>(sum & 0xffffffffULL);
    carry = sum >> 32;
  }
  return out;  // Overflow wraps (mod 2^160), as ring arithmetic requires.
}

NodeId NodeId::Subtract(const NodeId& other) const {
  NodeId out;
  int64_t borrow = 0;
  for (int w = kWords - 1; w >= 0; --w) {
    int64_t diff = static_cast<int64_t>(words_[w]) -
                   static_cast<int64_t>(other.words_[w]) - borrow;
    if (diff < 0) {
      diff += 0x100000000LL;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.words_[w] = static_cast<uint32_t>(diff);
  }
  return out;  // Underflow wraps (mod 2^160).
}

double NodeId::ToDouble() const {
  double v = 0.0;
  for (int w = 0; w < kWords; ++w) {
    v = v * 4294967296.0 + static_cast<double>(words_[w]);
  }
  return v;
}

std::string NodeId::ToHex() const { return Sha1ToHex(words_); }

std::string NodeId::ToShortString() const { return ToHex().substr(0, 8); }

bool InIntervalOpenClosed(const NodeId& x, const NodeId& a, const NodeId& b) {
  if (a == b) return true;  // Whole ring.
  if (a < b) return a < x && x <= b;
  return x > a || x <= b;  // Interval wraps past zero.
}

bool InIntervalOpenOpen(const NodeId& x, const NodeId& a, const NodeId& b) {
  if (a == b) return x != a;  // Whole ring minus the endpoint.
  if (a < b) return a < x && x < b;
  return x > a || x < b;
}

}  // namespace rjoin::dht
