#include "dht/chord_network.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>

#include "util/logging.h"

namespace rjoin::dht {

void ChordNetwork::BumpGeneration() {
  // One process-global counter (starting at 1) keeps generation stamps
  // unique across every network in the process — required by the
  // thread-local SuccessorCache, which outlives individual networks.
  static std::atomic<uint64_t> g_generation{0};
  generation_ = g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::unique_ptr<ChordNetwork> ChordNetwork::Create(size_t n, uint64_t seed) {
  auto net = std::make_unique<ChordNetwork>();
  size_t added = 0;
  uint64_t salt = 0;
  while (added < n) {
    const std::string key = "node:" + std::to_string(added) + ":" +
                            std::to_string(seed) + ":" + std::to_string(salt);
    auto result = net->AddNode(NodeId::FromKey(key));
    if (result.ok()) {
      ++added;
      salt = 0;
    } else {
      ++salt;  // Astronomically unlikely SHA-1 collision; re-salt.
    }
  }
  net->Stabilize();
  return net;
}

std::unique_ptr<ChordNetwork> ChordNetwork::CreateWithPositions(
    const std::vector<NodeId>& positions) {
  auto net = std::make_unique<ChordNetwork>();
  for (const NodeId& id : positions) {
    auto result = net->AddNode(id);
    RJOIN_CHECK(result.ok()) << "duplicate ring position";
  }
  net->Stabilize();
  return net;
}

StatusOr<NodeIndex> ChordNetwork::AddNode(NodeId id) {
  if (ring_.contains(id)) {
    return Status::AlreadyExists("ring position already occupied");
  }
  const NodeIndex index = static_cast<NodeIndex>(nodes_.size());
  nodes_.push_back(std::make_unique<ChordNode>(index, id));
  route_caches_.emplace_back();
  ring_.emplace(id, index);
  BumpGeneration();
  return index;
}

Status ChordNetwork::FailNode(NodeIndex node) {
  if (node >= nodes_.size() || !nodes_[node]->alive()) {
    return Status::NotFound("no such alive node");
  }
  nodes_[node]->set_alive(false);
  ring_.erase(nodes_[node]->id());
  BumpGeneration();
  return Status::Ok();
}

StatusOr<KeyRange> ChordNetwork::RemoveAndSplice(NodeIndex node) {
  if (node >= nodes_.size() || !nodes_[node]->alive()) {
    return Status::NotFound("no such alive node");
  }
  if (ring_.size() <= 1) {
    return Status::FailedPrecondition(
        "the last alive node cannot depart: its key range has no owner");
  }
  // Ring-order neighbors from the membership index (exact even when the
  // node-local pointers are stale).
  auto it = ring_.find(nodes_[node]->id());
  RJOIN_CHECK(it != ring_.end());
  auto prev_it = it == ring_.begin() ? std::prev(ring_.end()) : std::prev(it);
  auto next_it = std::next(it) == ring_.end() ? ring_.begin() : std::next(it);
  const NodeIndex pred = prev_it->second;
  const NodeIndex succ = next_it->second;

  const KeyRange orphaned{nodes_[pred]->id(), nodes_[node]->id()};

  nodes_[node]->set_alive(false);
  ring_.erase(it);
  BumpGeneration();

  // Splice the neighbor pointers exactly, then rebuild the successor list
  // of the departed node's successor *and* of every ring-predecessor whose
  // list referenced the departed node — up to kSuccessorListLen of them.
  // Repairing only pred/succ (the pre-PR-10 behavior) left further
  // predecessors with stale lists, which consumers tolerated via alive
  // checks but which broke the ValidSuccessorLists invariant the
  // replication protocol's target set depends on.
  nodes_[pred]->set_successor(pred == succ ? pred : succ);
  nodes_[succ]->set_predecessor(pred == succ ? succ : pred);
  StabilizeOnce(succ);
  RepairSuccessorListsAround(succ);
  RJOIN_DCHECK(RingConsistent());  // the splice must keep the ring exact
  return orphaned;
}

StatusOr<KeyRange> ChordNetwork::LeaveNode(NodeIndex node) {
  // Graceful splice: the neighbors learn about the departure immediately
  // (the leaving node tells them); the caller hands the orphaned range's
  // state to the new owner.
  return RemoveAndSplice(node);
}

StatusOr<KeyRange> ChordNetwork::CrashNode(NodeIndex node) {
  // Silent failure: same exact splice (a compressed stand-in for the
  // stabilization rounds that would heal the ring), but the caller gets no
  // handoff — only replicas of the orphaned range survive.
  return RemoveAndSplice(node);
}

void ChordNetwork::RepairSuccessorListsAround(NodeIndex around) {
  if (ring_.empty()) return;
  RJOIN_CHECK(around < nodes_.size() && nodes_[around]->alive());
  auto it = ring_.find(nodes_[around]->id());
  RJOIN_CHECK(it != ring_.end());
  const size_t reach = std::min(kSuccessorListLen, ring_.size() - 1);
  for (size_t k = 0; k < reach; ++k) {
    it = it == ring_.begin() ? std::prev(ring_.end()) : std::prev(it);
    StabilizeOnce(it->second);
  }
}

StatusOr<NodeIndex> ChordNetwork::JoinAndSplice(NodeId id,
                                                NodeIndex bootstrap) {
  auto joined = JoinViaBootstrap(id, bootstrap);
  if (!joined.ok()) return joined.status();
  const NodeIndex index = *joined;
  ChordNode& nd = *nodes_[index];
  const NodeIndex succ = nd.successor();

  // The joiner's predecessor is its successor's old predecessor (exact in a
  // consistent ring; JoinViaBootstrap resolved succ against the pre-join
  // membership, so succ's predecessor has not been touched yet).
  NodeIndex pred = nodes_[succ]->predecessor();
  if (pred == kInvalidNode || pred >= nodes_.size() ||
      !nodes_[pred]->alive() || pred == index) {
    pred = succ;  // Two-node ring: the bootstrap wraps to itself.
  }
  nd.set_predecessor(pred);
  nodes_[pred]->set_successor(index);
  nodes_[succ]->set_predecessor(index);

  // Refresh the joiner's successor list, plus the lists of every
  // ring-predecessor that must now include it, and give the joiner real
  // fingers in-band (one full fix_fingers sweep); everyone else's fingers
  // repair lazily — stale-but-alive fingers still make monotone routing
  // progress, and dead ones are skipped.
  StabilizeOnce(index);
  RepairSuccessorListsAround(index);
  for (int b = 0; b < NodeId::kBits; ++b) FixFingersOnce(index, b);
  RJOIN_DCHECK(RingConsistent());  // join splice must keep the ring exact
  return index;
}

void ChordNetwork::Stabilize() {
  if (ring_.empty()) return;
  BumpGeneration();
  // Walk the ring in id order to set successor/predecessor/successor-list.
  std::vector<NodeIndex> order;
  order.reserve(ring_.size());
  for (const auto& [id, idx] : ring_) order.push_back(idx);

  const size_t n = order.size();
  for (size_t i = 0; i < n; ++i) {
    ChordNode& nd = *nodes_[order[i]];
    nd.set_successor(order[(i + 1) % n]);
    nd.set_predecessor(order[(i + n - 1) % n]);
    auto& slist = nd.mutable_successor_list();
    slist.clear();
    const size_t len = std::min(kSuccessorListLen, n - 1);
    for (size_t k = 1; k <= len; ++k) slist.push_back(order[(i + k) % n]);
  }
  // Finger tables: finger[i] = Successor(id + 2^i).
  for (size_t i = 0; i < n; ++i) {
    ChordNode& nd = *nodes_[order[i]];
    auto& fingers = nd.mutable_fingers();
    fingers.assign(NodeId::kBits, kInvalidNode);
    for (int b = 0; b < NodeId::kBits; ++b) {
      fingers[b] = SuccessorOf(nd.id().AddPowerOfTwo(b));
    }
  }
}

StatusOr<NodeIndex> ChordNetwork::JoinViaBootstrap(NodeId id,
                                                   NodeIndex bootstrap) {
  if (bootstrap >= nodes_.size() || !nodes_[bootstrap]->alive()) {
    return Status::NotFound("bootstrap node is not alive");
  }
  if (ring_.contains(id)) {
    return Status::AlreadyExists("ring position already occupied");
  }
  // Resolve the successor before inserting into the membership index so
  // the lookup reflects the pre-join ring.
  const NodeIndex succ = FindSuccessorFrom(bootstrap, id);

  const NodeIndex index = static_cast<NodeIndex>(nodes_.size());
  nodes_.push_back(std::make_unique<ChordNode>(index, id));
  route_caches_.emplace_back();
  ring_.emplace(id, index);
  BumpGeneration();

  ChordNode& nd = *nodes_[index];
  nd.set_successor(succ);
  nd.set_predecessor(kInvalidNode);  // Learned through notify().
  nd.mutable_fingers().assign(NodeId::kBits, succ);  // Coarse start.
  nd.mutable_successor_list().assign(1, succ);
  return index;
}

void ChordNetwork::StabilizeOnce(NodeIndex n) {
  ChordNode& nd = *nodes_[n];
  if (!nd.alive()) return;
  BumpGeneration();

  // Skip dead successors using the successor list (Chord's robustness
  // mechanism); fall back to self if everything known is dead.
  NodeIndex succ = nd.successor();
  if (succ == kInvalidNode || !nodes_[succ]->alive() || succ == n) {
    succ = n;
    for (NodeIndex cand : nd.successor_list()) {
      if (cand != n && cand < nodes_.size() && nodes_[cand]->alive()) {
        succ = cand;
        break;
      }
    }
  }
  // stabilize(): if successor's predecessor sits between us, adopt it.
  if (succ != n) {
    const NodeIndex x = nodes_[succ]->predecessor();
    if (x != kInvalidNode && x < nodes_.size() && nodes_[x]->alive() &&
        InIntervalOpenOpen(nodes_[x]->id(), nd.id(), nodes_[succ]->id())) {
      succ = x;
    }
  }
  nd.set_successor(succ == n ? n : succ);

  // notify(): tell the successor about us.
  if (succ != n) {
    ChordNode& s = *nodes_[succ];
    const NodeIndex p = s.predecessor();
    if (p == kInvalidNode || p >= nodes_.size() || !nodes_[p]->alive() ||
        InIntervalOpenOpen(nd.id(), nodes_[p]->id(), s.id())) {
      s.set_predecessor(n);
    }
  }

  // Refresh the successor list by walking successor pointers.
  auto& slist = nd.mutable_successor_list();
  slist.clear();
  NodeIndex cur = nd.successor();
  for (size_t k = 0; k < kSuccessorListLen; ++k) {
    if (cur == kInvalidNode || cur == n || !nodes_[cur]->alive()) break;
    slist.push_back(cur);
    cur = nodes_[cur]->successor();
  }
}

void ChordNetwork::FixFingersOnce(NodeIndex n, int finger_index) {
  ChordNode& nd = *nodes_[n];
  if (!nd.alive()) return;
  BumpGeneration();
  auto& fingers = nd.mutable_fingers();
  if (fingers.empty()) fingers.assign(NodeId::kBits, nd.successor());
  fingers[static_cast<size_t>(finger_index)] =
      FindSuccessorFrom(n, nd.id().AddPowerOfTwo(finger_index));
}

void ChordNetwork::RunProtocolRounds(int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (const auto& nd : nodes_) {
      if (!nd->alive()) continue;
      StabilizeOnce(nd->index());
      for (int b = 0; b < NodeId::kBits; ++b) FixFingersOnce(nd->index(), b);
    }
  }
}

NodeIndex ChordNetwork::FindSuccessorFrom(NodeIndex src,
                                          const NodeId& key) const {
  RJOIN_CHECK(src < nodes_.size() && nodes_[src]->alive());
  NodeIndex cur = src;
  const size_t kMaxSteps = 2 * nodes_.size() + NodeId::kBits;
  for (size_t step = 0; step < kMaxSteps; ++step) {
    const ChordNode& nd = *nodes_[cur];
    // Current successor, skipping dead nodes via the successor list.
    NodeIndex succ = nd.successor();
    if (succ == kInvalidNode || succ >= nodes_.size() ||
        !nodes_[succ]->alive()) {
      succ = cur;
      for (NodeIndex cand : nd.successor_list()) {
        if (cand < nodes_.size() && nodes_[cand]->alive()) {
          succ = cand;
          break;
        }
      }
      if (succ == cur) return cur;  // Isolated: best effort.
    }
    if (succ == cur || InIntervalOpenClosed(key, nd.id(), nodes_[succ]->id())) {
      return succ == cur ? cur : succ;
    }
    // Closest preceding *alive* finger; else step to the successor.
    NodeIndex next = succ;
    const auto& fingers = nd.fingers();
    for (int b = static_cast<int>(fingers.size()) - 1; b >= 0; --b) {
      const NodeIndex f = fingers[static_cast<size_t>(b)];
      if (f == kInvalidNode || f >= nodes_.size() || !nodes_[f]->alive()) {
        continue;
      }
      if (InIntervalOpenOpen(nodes_[f]->id(), nd.id(), key)) {
        next = f;
        break;
      }
    }
    if (next == cur) next = succ;
    cur = next;
  }
  return cur;  // Bounded walk: return the best node reached.
}

bool ChordNetwork::RingConsistent() const {
  if (ring_.empty()) return true;
  const std::vector<NodeIndex> order = AliveNodes();
  const size_t n = order.size();
  for (size_t i = 0; i < n; ++i) {
    const ChordNode& nd = *nodes_[order[i]];
    const NodeIndex expect_succ = order[(i + 1) % n];
    const NodeIndex expect_pred = order[(i + n - 1) % n];
    if (n == 1) {
      if (nd.successor() != order[0] && nd.successor() != kInvalidNode) {
        return false;
      }
      continue;
    }
    if (nd.successor() != expect_succ) return false;
    if (nd.predecessor() != expect_pred) return false;
  }
  return true;
}

NodeIndex ChordNetwork::SuccessorOf(const NodeId& key) const {
  RJOIN_CHECK(!ring_.empty()) << "empty network";
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();  // Wrap around the ring.
  return it->second;
}

NodeIndex ChordNetwork::ClosestPrecedingFinger(NodeIndex from,
                                               const NodeId& key) const {
  const ChordNode& nd = *nodes_[from];
  const auto& fingers = nd.fingers();
  for (int b = NodeId::kBits - 1; b >= 0; --b) {
    const NodeIndex f = fingers[b];
    if (f == kInvalidNode || !nodes_[f]->alive()) continue;
    if (InIntervalOpenOpen(nodes_[f]->id(), nd.id(), key)) return f;
  }
  return nd.successor();
}

std::vector<NodeIndex> ChordNetwork::Route(NodeIndex src,
                                           const NodeId& key) const {
  std::vector<NodeIndex> path;
  RoutePath(src, key, &path);
  return path;
}

void ChordNetwork::RoutePath(NodeIndex src, const NodeId& key,
                             std::vector<NodeIndex>* path) const {
  RJOIN_CHECK(src < nodes_.size() && nodes_[src]->alive());
  const NodeIndex responsible = SuccessorOf(key);
  path->clear();
  path->push_back(src);
  NodeIndex cur = src;
  // Greedy Chord routing; the loop bound guards against a broken overlay.
  const size_t kMaxHops = 2 * ring_.size() + NodeId::kBits;
  while (cur != responsible && path->size() <= kMaxHops) {
    const ChordNode& nd = *nodes_[cur];
    const NodeIndex succ = nd.successor();
    NodeIndex next;
    if (InIntervalOpenClosed(key, nd.id(), nodes_[succ]->id())) {
      next = succ;
    } else {
      next = ClosestPrecedingFinger(cur, key);
      if (next == cur) next = succ;
    }
    path->push_back(next);
    cur = next;
  }
  RJOIN_CHECK(cur == responsible) << "routing failed to converge";
}

size_t ChordNetwork::RouteHops(NodeIndex src, const NodeId& key) const {
  return Route(src, key).size() - 1;
}

double ChordNetwork::EstimateSize(NodeIndex n) const {
  const ChordNode& nd = *nodes_[n];
  const auto& slist = nd.successor_list();
  if (slist.empty()) return 1.0;
  const NodeId& last = nodes_[slist.back()]->id();
  const double dist = last.Subtract(nd.id()).ToDouble();
  if (dist <= 0.0) return 1.0;
  const double ring_size = std::pow(2.0, NodeId::kBits);
  return static_cast<double>(slist.size()) * ring_size / dist;
}

std::vector<NodeIndex> ChordNetwork::AliveNodes() const {
  std::vector<NodeIndex> out;
  out.reserve(ring_.size());
  for (const auto& [id, idx] : ring_) out.push_back(idx);
  return out;
}

void ChordNetwork::SuccessorsOf(NodeIndex node, size_t count,
                                std::vector<NodeIndex>* out) const {
  out->clear();
  if (node >= nodes_.size() || !nodes_[node]->alive()) return;
  auto it = ring_.find(nodes_[node]->id());
  RJOIN_CHECK(it != ring_.end());
  const size_t reach = std::min(count, ring_.size() - 1);
  for (size_t k = 0; k < reach; ++k) {
    it = std::next(it) == ring_.end() ? ring_.begin() : std::next(it);
    out->push_back(it->second);
  }
}

bool ChordNetwork::ValidSuccessorLists() const {
  const std::vector<NodeIndex> order = AliveNodes();
  const size_t n = order.size();
  if (n == 0) return true;
  const size_t len = std::min(kSuccessorListLen, n - 1);
  for (size_t i = 0; i < n; ++i) {
    const auto& slist = nodes_[order[i]]->successor_list();
    if (slist.size() != len) return false;
    for (size_t k = 0; k < len; ++k) {
      if (slist[k] != order[(i + k + 1) % n]) return false;
    }
  }
  return true;
}

}  // namespace rjoin::dht
