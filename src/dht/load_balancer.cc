#include "dht/load_balancer.h"

#include <algorithm>

#include "util/logging.h"

namespace rjoin::dht {

std::vector<NodeId> IdMovementBalancer::ComputeBalancedPositions(
    std::vector<KeyLoad> items, size_t num_nodes) {
  RJOIN_CHECK(num_nodes > 0);
  std::vector<NodeId> positions;
  positions.reserve(num_nodes);

  std::sort(items.begin(), items.end(),
            [](const KeyLoad& a, const KeyLoad& b) { return a.id < b.id; });
  // Merge duplicate key ids.
  std::vector<KeyLoad> merged;
  for (const KeyLoad& kl : items) {
    if (kl.weight == 0) continue;
    if (!merged.empty() && merged.back().id == kl.id) {
      merged.back().weight += kl.weight;
    } else {
      merged.push_back(kl);
    }
  }

  uint64_t total = 0;
  for (const KeyLoad& kl : merged) total += kl.weight;

  if (total == 0 || merged.size() < num_nodes) {
    // Not enough signal to balance: spread nodes uniformly. Positions are
    // multiples of 2^160 / num_nodes, built via repeated addition.
    // step = floor(2^160 / num_nodes): long division over 32-bit words.
    std::string hex;
    {
      static const char kHex[] = "0123456789abcdef";
      uint64_t rem = 1;  // Numerator is 2^160 = 1 followed by 160 zero bits.
      for (int w = 0; w < NodeId::kWords; ++w) {
        const uint64_t cur = (rem << 32);
        const uint32_t word = static_cast<uint32_t>(cur / num_nodes);
        rem = cur % num_nodes;
        for (int shift = 28; shift >= 0; shift -= 4) {
          hex.push_back(kHex[(word >> shift) & 0xf]);
        }
      }
    }
    const NodeId step = NodeId::FromHex(hex);
    NodeId pos;
    for (size_t i = 0; i < num_nodes; ++i) {
      pos = pos.Add(step);
      positions.push_back(pos);
    }
    return positions;
  }

  // Walk the circle accumulating weight; place a node boundary at the item
  // where the running sum crosses the next 1/n share. A node placed at an
  // item's id takes responsibility for everything since the previous
  // boundary, inclusive of that item.
  const double share = static_cast<double>(total) / static_cast<double>(num_nodes);
  double next_cut = share;
  double acc = 0.0;
  for (const KeyLoad& kl : merged) {
    acc += static_cast<double>(kl.weight);
    while (acc >= next_cut && positions.size() < num_nodes) {
      positions.push_back(kl.id);
      next_cut += share;
    }
  }
  // Floating-point shortfall can leave trailing slots; assign them the last
  // item (distinct positions are required, so nudge by +1 each).
  while (positions.size() < num_nodes) {
    NodeId last = positions.empty() ? merged.back().id : positions.back();
    positions.push_back(last.AddPowerOfTwo(0));
  }
  // Ring positions must be unique; de-duplicate by nudging.
  std::sort(positions.begin(), positions.end());
  for (size_t i = 1; i < positions.size(); ++i) {
    while (positions[i] <= positions[i - 1]) {
      positions[i] = positions[i].AddPowerOfTwo(0);
    }
  }
  return positions;
}

}  // namespace rjoin::dht
