#include "sql/tuple.h"

namespace rjoin::sql {

std::string Tuple::ToString() const {
  std::string out = relation + "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToDisplayString();
  }
  out += ")";
  return out;
}

TuplePtr MakeTuple(std::string relation, std::vector<Value> values,
                   uint64_t pub_time, uint64_t seq_no, uint64_t tuple_id) {
  auto t = std::make_shared<Tuple>();
  t->relation = std::move(relation);
  t->values = std::move(values);
  t->pub_time = pub_time;
  t->seq_no = seq_no;
  t->tuple_id = tuple_id;
  return t;
}

}  // namespace rjoin::sql
