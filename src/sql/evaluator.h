#ifndef RJOIN_SQL_EVALUATOR_H_
#define RJOIN_SQL_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "sql/query.h"
#include "sql/schema.h"
#include "sql/tuple.h"

namespace rjoin::sql {

/// Brute-force centralized evaluator implementing Definition 1 of the paper.
/// Used as the *oracle* in property tests: the distributed RJoin engine must
/// deliver exactly the rows this evaluator derives (bag semantics; set
/// semantics under DISTINCT).
///
/// Semantics reproduced:
///  * only tuples with pubT(t) >= insT(q) participate;
///  * an answer combination is produced once, at the arrival of its latest
///    tuple (the "new answers" of Definition 2);
///  * sliding/tumbling windows restrict which combinations are valid, using
///    the incremental start-propagation rules of Section 5.
class CentralizedEvaluator {
 public:
  CentralizedEvaluator(const Catalog* catalog) : catalog_(catalog) {}

  /// Evaluates query q (inserted at `ins_time`) over the full publication
  /// history `tuples` (any order; sorted internally by pub_time, ties by
  /// tuple_id). Returns all answer rows, in no particular order.
  std::vector<std::vector<Value>> Evaluate(
      const Query& q, uint64_t ins_time,
      const std::vector<TuplePtr>& tuples) const;

 private:
  bool CombinationValid(const Query& q,
                        const std::vector<TuplePtr>& combo) const;

  const Catalog* catalog_;
};

/// Canonical single-string form of an answer row, for multiset comparison
/// in tests.
std::string AnswerRowKey(const std::vector<Value>& row);

}  // namespace rjoin::sql

#endif  // RJOIN_SQL_EVALUATOR_H_
