#include "sql/schema.h"

namespace rjoin::sql {

int Schema::AttrIndex(const std::string& attribute) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == attribute) return static_cast<int>(i);
  }
  return -1;
}

Status Catalog::AddRelation(Schema schema) {
  const std::string name = schema.name();
  if (relations_.contains(name)) {
    return Status::AlreadyExists("relation " + name + " already registered");
  }
  relations_.emplace(name, std::move(schema));
  names_.push_back(name);
  return Status::Ok();
}

const Schema* Catalog::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

}  // namespace rjoin::sql
