#ifndef RJOIN_SQL_QUERY_H_
#define RJOIN_SQL_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sql/predicate.h"
#include "sql/schema.h"
#include "sql/tuple.h"
#include "sql/value.h"

namespace rjoin::sql {

/// One item of a select list: either an attribute reference or (after
/// rewriting) a constant, e.g. "select 5, S.B ..." in the paper's example.
struct SelectItem {
  static SelectItem Attr(AttrRef a) {
    SelectItem s;
    s.attr = std::move(a);
    return s;
  }
  static SelectItem Const(Value v) {
    SelectItem s;
    s.constant = std::move(v);
    return s;
  }

  bool is_constant() const { return constant.has_value(); }
  std::string ToString() const {
    return is_constant() ? constant->ToDisplayString() : attr.ToString();
  }

  AttrRef attr;
  std::optional<Value> constant;
};

/// Sliding/tumbling window specification (Section 5). `size` is measured in
/// ticks (time-based) or in arriving tuples of the triggering relation
/// (tuple-based), following the CQL definitions [1] the paper references.
struct WindowSpec {
  enum class Unit { kTime, kTuples };
  enum class Kind { kSliding, kTumbling };

  bool use_windows = false;
  Unit unit = Unit::kTime;
  Kind kind = Kind::kSliding;
  uint64_t size = 0;

  std::string ToString() const;

  friend bool operator==(const WindowSpec&, const WindowSpec&) = default;
};

/// A continuous multi-way equi-join query:
///   SELECT [DISTINCT] items FROM R1, ..., Rm WHERE conj. of predicates
///   [WINDOW n TUPLES|TIME [TUMBLING]]
///
/// `selections` may contain constants introduced by the user or by
/// rewriting. A query whose `relations` list is empty has a WHERE clause
/// equivalent to "true": all predicates have been satisfied and the select
/// list is all-constant — it denotes an answer.
struct Query {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<std::string> relations;
  std::vector<JoinPredicate> joins;
  std::vector<SelectionPredicate> selections;
  WindowSpec window;

  /// True iff the where clause is equivalent to "true" (no relations left).
  bool IsComplete() const { return relations.empty(); }

  /// True if `relation` appears in the FROM list.
  bool References(const std::string& relation) const;

  /// All RelName.AttName expressions appearing in the WHERE clause for a
  /// given relation (join sides plus selection attributes), deduplicated.
  std::vector<AttrRef> WhereAttrsOf(const std::string& relation) const;

  /// All RelName.AttName expressions in the WHERE clause, deduplicated, in
  /// order of first appearance (the paper indexes input queries by one of
  /// these).
  std::vector<AttrRef> AllWhereAttrs() const;

  /// SQL text form (parseable back by Parser).
  std::string ToString() const;
};

}  // namespace rjoin::sql

#endif  // RJOIN_SQL_QUERY_H_
