#ifndef RJOIN_SQL_REWRITER_H_
#define RJOIN_SQL_REWRITER_H_

#include "sql/query.h"
#include "sql/schema.h"
#include "sql/tuple.h"
#include "util/status.h"

namespace rjoin::sql {

/// The paper's query rewriting step (Section 3): given a query q and a tuple
/// t of a relation R referenced by q, produce the query q' in which R's
/// attributes are replaced by t's values and the WHERE clause is simplified.
///
/// This is the *reference* implementation operating on full Query objects —
/// it produces the textual rewrites of the paper's running example
/// (q -> q1 -> q2 -> ...). The engine in src/core uses an equivalent compact
/// binding representation for performance; property tests check the two
/// agree.
class Rewriter {
 public:
  explicit Rewriter(const Catalog* catalog) : catalog_(catalog) {}

  /// True iff t "triggers" q: q references t's relation and t satisfies
  /// every selection predicate q places on that relation. (Temporal
  /// conditions — pubT >= insT and window validity — are enforced by the
  /// engine, not here.)
  bool Triggers(const Query& q, const Tuple& t) const;

  /// Rewrites q with t. Fails if t does not trigger q or t's relation is
  /// unknown / of wrong arity. The result may be complete
  /// (IsComplete() == true), meaning an answer can be extracted.
  StatusOr<Query> Rewrite(const Query& q, const Tuple& t) const;

  /// Extracts the answer row of a complete rewritten query (all select
  /// items constant).
  static std::vector<Value> ExtractAnswer(const Query& q);

 private:
  /// Value of attribute `attr` of t, or nullptr if absent.
  const Value* AttrValue(const Tuple& t, const std::string& attr) const;

  const Catalog* catalog_;
};

}  // namespace rjoin::sql

#endif  // RJOIN_SQL_REWRITER_H_
