#ifndef RJOIN_SQL_SCHEMA_H_
#define RJOIN_SQL_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace rjoin::sql {

/// A qualified attribute reference "Relation.Attribute".
struct AttrRef {
  std::string relation;
  std::string attribute;

  std::string ToString() const { return relation + "." + attribute; }

  friend bool operator==(const AttrRef& a, const AttrRef& b) {
    return a.relation == b.relation && a.attribute == b.attribute;
  }
  friend bool operator<(const AttrRef& a, const AttrRef& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.attribute < b.attribute;
  }
};

/// Schema of one relation: its name and ordered attribute names. Relations
/// are append-only (Section 2; as in Tapestry/continuous-query systems).
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::vector<std::string> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  /// Index of `attribute`, or -1 if absent.
  int AttrIndex(const std::string& attribute) const;

 private:
  std::string name_;
  std::vector<std::string> attributes_;
};

/// The set of relation schemas known to the network. Different schemas can
/// co-exist (Section 2); schema mappings are out of scope, as in the paper.
class Catalog {
 public:
  /// Registers a relation; fails if the name is taken.
  Status AddRelation(Schema schema);

  /// Looks up a relation schema by name.
  const Schema* Find(const std::string& name) const;

  size_t size() const { return relations_.size(); }

  /// Names of all relations, in insertion order.
  const std::vector<std::string>& relation_names() const { return names_; }

 private:
  std::map<std::string, Schema> relations_;
  std::vector<std::string> names_;
};

}  // namespace rjoin::sql

#endif  // RJOIN_SQL_SCHEMA_H_
