#ifndef RJOIN_SQL_TUPLE_H_
#define RJOIN_SQL_TUPLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sql/value.h"

namespace rjoin::sql {

/// A published tuple. Besides its relation name and values it carries:
///  * pub_time  — the publication time pubT(t) of Section 2;
///  * seq_no    — position in its relation's stream (1-based), the "clock"
///                for tuple-based sliding windows (Section 5);
///  * tuple_id  — globally unique id, for tracing and oracle comparison.
///
/// Tuples are immutable after publication (append-only relations) and are
/// shared by pointer throughout the engine: a tuple may be stored at many
/// nodes and referenced by many rewritten queries.
struct Tuple {
  std::string relation;
  std::vector<Value> values;
  uint64_t pub_time = 0;
  uint64_t seq_no = 0;
  uint64_t tuple_id = 0;

  /// Display form "R(1, 'x', 3)".
  std::string ToString() const;
};

using TuplePtr = std::shared_ptr<const Tuple>;

/// Convenience constructor for shared immutable tuples.
TuplePtr MakeTuple(std::string relation, std::vector<Value> values,
                   uint64_t pub_time = 0, uint64_t seq_no = 0,
                   uint64_t tuple_id = 0);

}  // namespace rjoin::sql

#endif  // RJOIN_SQL_TUPLE_H_
