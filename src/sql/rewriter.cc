#include "sql/rewriter.h"

#include <algorithm>

#include "util/logging.h"

namespace rjoin::sql {

const Value* Rewriter::AttrValue(const Tuple& t,
                                 const std::string& attr) const {
  const Schema* schema = catalog_->Find(t.relation);
  if (schema == nullptr) return nullptr;
  const int idx = schema->AttrIndex(attr);
  if (idx < 0 || static_cast<size_t>(idx) >= t.values.size()) return nullptr;
  return &t.values[static_cast<size_t>(idx)];
}

bool Rewriter::Triggers(const Query& q, const Tuple& t) const {
  if (!q.References(t.relation)) return false;
  for (const auto& sel : q.selections) {
    if (sel.attr.relation != t.relation) continue;
    const Value* v = AttrValue(t, sel.attr.attribute);
    if (v == nullptr || *v != sel.value) return false;
  }
  return true;
}

StatusOr<Query> Rewriter::Rewrite(const Query& q, const Tuple& t) const {
  const Schema* schema = catalog_->Find(t.relation);
  if (schema == nullptr) {
    return Status::NotFound("unknown relation " + t.relation);
  }
  if (schema->arity() != t.values.size()) {
    return Status::InvalidArgument("tuple arity mismatch for " + t.relation);
  }
  if (!Triggers(q, t)) {
    return Status::FailedPrecondition("tuple does not trigger query");
  }

  Query out;
  out.distinct = q.distinct;
  out.window = q.window;

  // Select list: references to t's relation become constants.
  for (const auto& item : q.select_list) {
    if (!item.is_constant() && item.attr.relation == t.relation) {
      const Value* v = AttrValue(t, item.attr.attribute);
      if (v == nullptr) {
        return Status::InvalidArgument("unknown attribute " +
                                       item.attr.ToString());
      }
      out.select_list.push_back(SelectItem::Const(*v));
    } else {
      out.select_list.push_back(item);
    }
  }

  // FROM list: drop t's relation.
  for (const auto& rel : q.relations) {
    if (rel != t.relation) out.relations.push_back(rel);
  }

  // Join predicates touching t's relation become selection predicates on
  // the other side (e.g. R.A = S.A with t=(3,..) of R becomes 3 = S.A).
  for (const auto& join : q.joins) {
    if (!join.Mentions(t.relation)) {
      out.joins.push_back(join);
      continue;
    }
    const AttrRef& mine = join.SideOf(t.relation);
    const AttrRef& other = join.OtherSide(t.relation);
    const Value* v = AttrValue(t, mine.attribute);
    if (v == nullptr) {
      return Status::InvalidArgument("unknown attribute " + mine.ToString());
    }
    out.selections.push_back({other, *v});
  }

  // Selections on t's relation were verified by Triggers() and disappear;
  // others carry over.
  for (const auto& sel : q.selections) {
    if (sel.attr.relation != t.relation) out.selections.push_back(sel);
  }

  return out;
}

std::vector<Value> Rewriter::ExtractAnswer(const Query& q) {
  RJOIN_CHECK(q.IsComplete()) << "answer requested from incomplete query";
  std::vector<Value> row;
  row.reserve(q.select_list.size());
  for (const auto& item : q.select_list) {
    RJOIN_CHECK(item.is_constant());
    row.push_back(*item.constant);
  }
  return row;
}

}  // namespace rjoin::sql
