#include "sql/query.h"

#include <algorithm>

namespace rjoin::sql {

std::string WindowSpec::ToString() const {
  if (!use_windows) return "";
  std::string out = "WINDOW " + std::to_string(size) + " ";
  out += unit == Unit::kTuples ? "TUPLES" : "TIME";
  if (kind == Kind::kTumbling) out += " TUMBLING";
  return out;
}

bool Query::References(const std::string& relation) const {
  return std::find(relations.begin(), relations.end(), relation) !=
         relations.end();
}

namespace {
void PushUnique(std::vector<AttrRef>& out, const AttrRef& a) {
  if (std::find(out.begin(), out.end(), a) == out.end()) out.push_back(a);
}
}  // namespace

std::vector<AttrRef> Query::WhereAttrsOf(const std::string& relation) const {
  std::vector<AttrRef> out;
  for (const auto& j : joins) {
    if (j.left.relation == relation) PushUnique(out, j.left);
    if (j.right.relation == relation) PushUnique(out, j.right);
  }
  for (const auto& s : selections) {
    if (s.attr.relation == relation) PushUnique(out, s.attr);
  }
  return out;
}

std::vector<AttrRef> Query::AllWhereAttrs() const {
  std::vector<AttrRef> out;
  for (const auto& j : joins) {
    PushUnique(out, j.left);
    PushUnique(out, j.right);
  }
  for (const auto& s : selections) PushUnique(out, s.attr);
  return out;
}

std::string Query::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) out += ", ";
    out += select_list[i].ToString();
  }
  out += " FROM ";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i > 0) out += ", ";
    out += relations[i];
  }
  const bool has_where = !joins.empty() || !selections.empty();
  if (has_where) {
    out += " WHERE ";
    bool first = true;
    for (const auto& j : joins) {
      if (!first) out += " AND ";
      out += j.ToString();
      first = false;
    }
    for (const auto& s : selections) {
      if (!first) out += " AND ";
      out += s.ToString();
      first = false;
    }
  }
  if (window.use_windows) {
    out += " " + window.ToString();
  }
  return out;
}

}  // namespace rjoin::sql
