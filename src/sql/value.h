#ifndef RJOIN_SQL_VALUE_H_
#define RJOIN_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace rjoin::sql {

/// A relational attribute value: 64-bit integer or string. The paper's
/// workload uses small integer domains (100 values per attribute) but the
/// protocol only needs values to be hashable and comparable, so strings are
/// supported as well.
class Value {
 public:
  /// Default: integer 0.
  Value() : rep_(int64_t{0}) {}

  static Value Int(int64_t v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Canonical text used when the value participates in a DHT key
  /// (value-level indexing: Hash(Rel + Attr + Value)).
  std::string ToKeyString() const;

  /// Appends ToKeyString() to `out` without materializing a temporary — the
  /// key-construction boundary builds candidate key text into reusable
  /// buffers before interning (core::KeyInterner), so value rendering must
  /// not allocate per candidate.
  void AppendKeyString(std::string* out) const;

  /// Display form: integers plain, strings single-quoted.
  std::string ToDisplayString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.rep_ < b.rep_;
  }

  struct Hasher {
    size_t operator()(const Value& v) const;
  };

 private:
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}

  std::variant<int64_t, std::string> rep_;
};

}  // namespace rjoin::sql

#endif  // RJOIN_SQL_VALUE_H_
