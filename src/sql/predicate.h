#ifndef RJOIN_SQL_PREDICATE_H_
#define RJOIN_SQL_PREDICATE_H_

#include <string>

#include "sql/schema.h"
#include "sql/value.h"

namespace rjoin::sql {

/// Equi-join predicate R.A = S.B. The paper studies equi-joins only
/// ("the term join refers to equi-join").
struct JoinPredicate {
  AttrRef left;
  AttrRef right;

  std::string ToString() const {
    return left.ToString() + "=" + right.ToString();
  }

  /// True if the predicate mentions `relation` on either side.
  bool Mentions(const std::string& relation) const {
    return left.relation == relation || right.relation == relation;
  }

  /// Given that one side references `relation`, returns that side's
  /// reference. Requires Mentions(relation).
  const AttrRef& SideOf(const std::string& relation) const {
    return left.relation == relation ? left : right;
  }
  /// The opposite side's reference. Requires Mentions(relation).
  const AttrRef& OtherSide(const std::string& relation) const {
    return left.relation == relation ? right : left;
  }

  friend bool operator==(const JoinPredicate& a, const JoinPredicate& b) {
    return a.left == b.left && a.right == b.right;
  }
};

/// Selection predicate R.A = v. Produced either by the user's query or by
/// rewriting a join predicate once one side's tuple has arrived.
struct SelectionPredicate {
  AttrRef attr;
  Value value;

  std::string ToString() const {
    return attr.ToString() + "=" + value.ToDisplayString();
  }

  friend bool operator==(const SelectionPredicate& a,
                         const SelectionPredicate& b) {
    return a.attr == b.attr && a.value == b.value;
  }
};

}  // namespace rjoin::sql

#endif  // RJOIN_SQL_PREDICATE_H_
