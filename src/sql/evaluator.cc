#include "sql/evaluator.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "util/logging.h"

namespace rjoin::sql {
namespace {

const Value* AttrValueOf(const Catalog& catalog, const Tuple& t,
                         const std::string& attr) {
  const Schema* schema = catalog.Find(t.relation);
  if (schema == nullptr) return nullptr;
  const int idx = schema->AttrIndex(attr);
  if (idx < 0 || static_cast<size_t>(idx) >= t.values.size()) return nullptr;
  return &t.values[static_cast<size_t>(idx)];
}

uint64_t WindowPosition(const WindowSpec& w, const Tuple& t) {
  return w.unit == WindowSpec::Unit::kTime ? t.pub_time : t.seq_no;
}

}  // namespace

bool CentralizedEvaluator::CombinationValid(
    const Query& q, const std::vector<TuplePtr>& combo) const {
  // Join predicates.
  auto lookup = [&](const AttrRef& a) -> const Value* {
    for (const auto& t : combo) {
      if (t->relation == a.relation) {
        return AttrValueOf(*catalog_, *t, a.attribute);
      }
    }
    return nullptr;
  };
  for (const auto& j : q.joins) {
    const Value* l = lookup(j.left);
    const Value* r = lookup(j.right);
    if (l == nullptr || r == nullptr || !(*l == *r)) return false;
  }
  for (const auto& s : q.selections) {
    const Value* v = lookup(s.attr);
    if (v == nullptr || !(*v == s.value)) return false;
  }
  // Window restriction: all participating tuples must fall in one window.
  if (q.window.use_windows) {
    uint64_t lo = UINT64_MAX, hi = 0;
    for (const auto& t : combo) {
      const uint64_t p = WindowPosition(q.window, *t);
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
    if (q.window.kind == WindowSpec::Kind::kSliding) {
      // The paper's validity test: |start - pubT| + 1 <= window.
      if (hi - lo + 1 > q.window.size) return false;
    } else {
      // Tumbling: all tuples in the same window epoch.
      if (q.window.size == 0) return false;
      if (lo / q.window.size != hi / q.window.size) return false;
    }
  }
  return true;
}

std::vector<std::vector<Value>> CentralizedEvaluator::Evaluate(
    const Query& q, uint64_t ins_time,
    const std::vector<TuplePtr>& tuples) const {
  // Partition eligible tuples by relation.
  std::map<std::string, std::vector<TuplePtr>> by_rel;
  for (const auto& t : tuples) {
    if (t->pub_time < ins_time) continue;  // pubT(t) >= insT(q) required
    if (q.References(t->relation)) by_rel[t->relation].push_back(t);
  }
  std::vector<std::vector<Value>> rows;
  // Every relation must have at least one eligible tuple.
  for (const auto& rel : q.relations) {
    if (by_rel[rel].empty()) return rows;
  }

  // Nested-loop enumeration of all combinations (oracle: clarity over
  // speed; test workloads are small).
  std::vector<TuplePtr> combo(q.relations.size());
  std::set<std::string> distinct_seen;

  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (depth == q.relations.size()) {
      if (!CombinationValid(q, combo)) return;
      std::vector<Value> row;
      row.reserve(q.select_list.size());
      for (const auto& item : q.select_list) {
        if (item.is_constant()) {
          row.push_back(*item.constant);
        } else {
          const Value* v = nullptr;
          for (const auto& t : combo) {
            if (t->relation == item.attr.relation) {
              v = AttrValueOf(*catalog_, *t, item.attr.attribute);
              break;
            }
          }
          RJOIN_CHECK(v != nullptr)
              << "select item " << item.attr.ToString() << " unresolved";
          row.push_back(*v);
        }
      }
      if (q.distinct) {
        const std::string key = AnswerRowKey(row);
        if (!distinct_seen.insert(key).second) return;
      }
      rows.push_back(std::move(row));
      return;
    }
    for (const auto& t : by_rel[q.relations[depth]]) {
      combo[depth] = t;
      recurse(depth + 1);
    }
  };
  recurse(0);
  return rows;
}

std::string AnswerRowKey(const std::vector<Value>& row) {
  std::string key;
  for (const auto& v : row) {
    key += v.ToDisplayString();
    key += '|';
  }
  return key;
}

}  // namespace rjoin::sql
