#include "sql/value.h"

#include <charconv>
#include <functional>

namespace rjoin::sql {

std::string Value::ToKeyString() const {
  if (is_int()) return std::to_string(AsInt());
  return AsString();
}

void Value::AppendKeyString(std::string* out) const {
  if (is_int()) {
    char buf[24];  // fits any int64 plus sign
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), AsInt());
    out->append(buf, end);
    return;
  }
  out->append(AsString());
}

std::string Value::ToDisplayString() const {
  if (is_int()) return std::to_string(AsInt());
  return "'" + AsString() + "'";
}

size_t Value::Hasher::operator()(const Value& v) const {
  if (v.is_int()) {
    // splitmix-style avalanche of the integer payload.
    uint64_t z = static_cast<uint64_t>(v.AsInt()) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
  return std::hash<std::string>{}(v.AsString());
}

}  // namespace rjoin::sql
