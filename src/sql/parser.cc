#include "sql/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace rjoin::sql {
namespace {

enum class TokKind {
  kIdent,
  kInt,
  kString,
  kComma,
  kDot,
  kEquals,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;  // identifier, digits, or string contents
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size()) {
        out.push_back({TokKind::kEnd, "", pos_});
        return out;
      }
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        auto tok = LexInt();
        if (!tok.ok()) return tok.status();
        out.push_back(*tok);
      } else if (c == '\'') {
        auto tok = LexString();
        if (!tok.ok()) return tok.status();
        out.push_back(*tok);
      } else if (c == ',') {
        out.push_back({TokKind::kComma, ",", pos_++});
      } else if (c == '.') {
        out.push_back({TokKind::kDot, ".", pos_++});
      } else if (c == '=') {
        out.push_back({TokKind::kEquals, "=", pos_++});
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at position " +
                                       std::to_string(pos_));
      }
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Token LexIdent() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return {TokKind::kIdent, std::string(text_.substr(start, pos_ - start)),
            start};
  }

  StatusOr<Token> LexInt() {
    const size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      return Status::InvalidArgument("malformed integer at position " +
                                     std::to_string(start));
    }
    return Token{TokKind::kInt,
                 std::string(text_.substr(start, pos_ - start)), start};
  }

  StatusOr<Token> LexString() {
    const size_t start = pos_++;  // skip opening quote
    std::string contents;
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      contents.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated string at position " +
                                     std::to_string(start));
    }
    ++pos_;  // closing quote
    return Token{TokKind::kString, contents, start};
  }

  std::string_view text_;
  size_t pos_ = 0;
};

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  StatusOr<Query> ParseQuery() {
    Query q;
    if (auto s = ExpectKeyword("SELECT"); !s.ok()) return s;
    if (PeekKeyword("DISTINCT")) {
      Advance();
      q.distinct = true;
    }
    // Select list.
    while (true) {
      auto item = ParseSelectItem();
      if (!item.ok()) return item.status();
      q.select_list.push_back(std::move(*item));
      if (Peek().kind == TokKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (auto s = ExpectKeyword("FROM"); !s.ok()) return s;
    while (true) {
      if (Peek().kind != TokKind::kIdent) {
        return Err("expected relation name");
      }
      q.relations.push_back(Advance().text);
      if (Peek().kind == TokKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      while (true) {
        if (auto s = ParsePredicate(q); !s.ok()) return s;
        if (PeekKeyword("AND")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (PeekKeyword("WINDOW")) {
      Advance();
      if (auto s = ParseWindow(q.window); !s.ok()) return s;
    }
    if (Peek().kind != TokKind::kEnd) {
      return Err("trailing input after query");
    }
    return q;
  }

 private:
  const Token& Peek() const { return toks_[idx_]; }
  Token Advance() { return toks_[idx_++]; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent && Upper(Peek().text) == kw;
  }

  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return Status::InvalidArgument(std::string("expected keyword ") + kw +
                                     " near position " +
                                     std::to_string(Peek().pos));
    }
    Advance();
    return Status::Ok();
  }

  Status Err(const std::string& what) const {
    return Status::InvalidArgument(what + " near position " +
                                   std::to_string(Peek().pos));
  }

  /// attr | int | string; attrs require the Rel.Attr form.
  StatusOr<SelectItem> ParseSelectItem() {
    if (Peek().kind == TokKind::kInt) {
      return SelectItem::Const(Value::Int(std::stoll(Advance().text)));
    }
    if (Peek().kind == TokKind::kString) {
      return SelectItem::Const(Value::Str(Advance().text));
    }
    auto attr = ParseAttrRef();
    if (!attr.ok()) return attr.status();
    return SelectItem::Attr(std::move(*attr));
  }

  StatusOr<AttrRef> ParseAttrRef() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected attribute near position " +
                                     std::to_string(Peek().pos));
    }
    AttrRef a;
    a.relation = Advance().text;
    if (Peek().kind != TokKind::kDot) {
      return Status::InvalidArgument(
          "expected '.' in attribute reference near position " +
          std::to_string(Peek().pos));
    }
    Advance();
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected attribute name near position " +
                                     std::to_string(Peek().pos));
    }
    a.attribute = Advance().text;
    return a;
  }

  /// operand '=' operand; classifies into join or selection predicate.
  /// The rewritten form "5 = S.A" (constant on the left) is accepted, as in
  /// the paper's examples.
  Status ParsePredicate(Query& q) {
    auto left = ParseOperand();
    if (!left.ok()) return left.status();
    if (Peek().kind != TokKind::kEquals) return Err("expected '='");
    Advance();
    auto right = ParseOperand();
    if (!right.ok()) return right.status();

    const bool lattr = !left->is_constant;
    const bool rattr = !right->is_constant;
    if (lattr && rattr) {
      q.joins.push_back({left->attr, right->attr});
    } else if (lattr && !rattr) {
      q.selections.push_back({left->attr, right->value});
    } else if (!lattr && rattr) {
      q.selections.push_back({right->attr, left->value});
    } else {
      return Err("predicate must reference at least one attribute");
    }
    return Status::Ok();
  }

  struct Operand {
    bool is_constant = false;
    AttrRef attr;
    Value value;
  };

  StatusOr<Operand> ParseOperand() {
    Operand op;
    if (Peek().kind == TokKind::kInt) {
      op.is_constant = true;
      op.value = Value::Int(std::stoll(Advance().text));
      return op;
    }
    if (Peek().kind == TokKind::kString) {
      op.is_constant = true;
      op.value = Value::Str(Advance().text);
      return op;
    }
    auto attr = ParseAttrRef();
    if (!attr.ok()) return attr.status();
    op.attr = std::move(*attr);
    return op;
  }

  Status ParseWindow(WindowSpec& w) {
    if (Peek().kind != TokKind::kInt) {
      return Err("expected window size");
    }
    w.use_windows = true;
    w.size = static_cast<uint64_t>(std::stoull(Advance().text));
    if (PeekKeyword("TUPLES")) {
      Advance();
      w.unit = WindowSpec::Unit::kTuples;
    } else if (PeekKeyword("TIME")) {
      Advance();
      w.unit = WindowSpec::Unit::kTime;
    } else {
      return Err("expected TUPLES or TIME");
    }
    if (PeekKeyword("TUMBLING")) {
      Advance();
      w.kind = WindowSpec::Kind::kTumbling;
    }
    return Status::Ok();
  }

  std::vector<Token> toks_;
  size_t idx_ = 0;
};

}  // namespace

StatusOr<Query> Parser::Parse(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  ParserImpl impl(std::move(*tokens));
  return impl.ParseQuery();
}

}  // namespace rjoin::sql
