#ifndef RJOIN_SQL_PARSER_H_
#define RJOIN_SQL_PARSER_H_

#include <string_view>

#include "sql/query.h"
#include "util/status.h"

namespace rjoin::sql {

/// Recursive-descent parser for the paper's SQL subset:
///
///   query     := SELECT [DISTINCT] items FROM rels [WHERE conj] [window]
///   items     := item (',' item)*
///   item      := ident '.' ident | literal
///   rels      := ident (',' ident)*
///   conj      := pred (AND pred)*
///   pred      := operand '=' operand       -- at least one side an attr
///   operand   := ident '.' ident | literal
///   literal   := integer | '\'' chars '\''
///   window    := WINDOW integer (TUPLES | TIME) [TUMBLING]
///
/// Keywords are case-insensitive; identifiers are case-sensitive.
class Parser {
 public:
  /// Parses `text` into a Query. Returns InvalidArgument with a position-
  /// annotated message on malformed input.
  static StatusOr<Query> Parse(std::string_view text);
};

}  // namespace rjoin::sql

#endif  // RJOIN_SQL_PARSER_H_
