#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "stats/histogram.h"

namespace rjoin::stats {

// Event taxonomy for the virtual-time trace (docs/observability.md).
enum class TraceCategory : uint8_t {
  kSend,        // message emitted (direct / one-hop)
  kRoute,       // message emitted via Chord routing; arg = hop count
  kDeliver,     // typed payload handed to the engine
  kRewrite,     // residual shipped onward after a rewrite; arg = bound count
  kAnswer,      // completed answer row delivered to the query owner
  kRicRequest,  // RIC direct-exchange request delivered
  kRicReply,    // RIC direct-exchange reply delivered
  kChurn,       // topology churn op applied; kind 1 = join, 0 = leave
  kStall,       // worker parked waiting on a watermark; arg = wall ns
  kRendezvous,  // driver rendezvous completed; arg = epoch horizon
};
inline constexpr size_t kTraceCategoryCount = 10;
const char* TraceCategoryName(TraceCategory cat);

// One trace record. Dual-stamped: `vtime` is the virtual time of the
// traced action, `wall_ns` the steady-clock offset from tracer start.
// (key_time, key_src, key_seq) identify the executing event (the
// runtime's EventKey) so merged traces have a schedule-independent total
// order; driver-phase records use (driver clock, 0, 0).
struct TraceEvent {
  uint64_t vtime = 0;
  uint64_t wall_ns = 0;
  uint64_t key_time = 0;
  uint64_t key_seq = 0;
  uint64_t arg = 0;
  uint32_t key_src = 0;
  uint32_t node = 0;
  uint32_t peer = 0;
  uint32_t track = 0;
  TraceCategory cat = TraceCategory::kSend;
  uint8_t kind = 0;
};

// Process-wide tracer: one slab-backed ring of TraceEvents plus one set of
// log-bucketed histograms per recording thread, registered lazily and
// reused across thread lifetimes. Histograms are always on (a few counter
// bumps per sample, no allocation past the first per-thread touch); the
// typed event ring records only when RJOIN_TRACE is set (or set_enabled()
// was called), so the disabled hot path is one relaxed atomic load.
//
// Merge/read APIs (MergedEvents, AggregateHistograms, WriteChromeTrace,
// Reset) must run while recording threads are quiesced — parked at a
// rendezvous or joined — exactly like MessagePool::Aggregate().
class Tracer {
 public:
  static constexpr uint32_t kDriverTrack = 0xFFFFFFFFu;
  struct Shard;  // per-thread recording state; defined in trace.cc

  static Tracer& Global();

  // One relaxed load; callers gate event recording on this.
  static bool On() { return Global().enabled_.load(std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  // Test/bench override of the RJOIN_TRACE env default.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Bind the calling thread's records to a display track (shard id);
  // unbound threads (driver, serial simulator) record on kDriverTrack.
  static void BindTrack(uint32_t track);
  // Stamp the EventKey of the event the calling thread is executing; all
  // records until the next call carry it.
  static void SetContext(uint64_t time, uint32_t src, uint64_t seq);
  // Append a typed event (no-op when disabled).
  static void Record(TraceCategory cat, uint8_t kind, uint32_t node,
                     uint32_t peer, uint64_t arg, uint64_t vtime);
  // Same, stamped with the context event's time — for callers (transport)
  // that act inside an executing event without holding a clock.
  static void RecordAtContext(TraceCategory cat, uint8_t kind, uint32_t node,
                              uint32_t peer, uint64_t arg);

  // Always-on histogram feeds.
  static void RecordAnswerLatency(uint64_t vticks);
  static void RecordRewriteDepth(uint64_t bound);
  static void RecordRouteHops(uint64_t hops);
  static void RecordStallNanos(uint64_t ns);
  static void RecordQueueDepth(uint64_t pending);

  struct HistogramSet {
    LogHistogram answer_latency;  // pubT of completing tuple -> AnswerDeliver
    LogHistogram rewrite_depth;   // bound tuples at each rewrite ship
    LogHistogram route_hops;      // per-message routing path length
    LogHistogram stall_ns;        // wall-clock park durations
    LogHistogram queue_depth;     // pending events at each event-pump Push
    void MergeFrom(const HistogramSet& other);
  };
  HistogramSet AggregateHistograms() const;

  // All retained events in deterministic (key_time, key_src, key_seq,
  // per-thread record order) order.
  std::vector<TraceEvent> MergedEvents() const;
  uint64_t DroppedEvents() const;

  // Chrome trace-event JSON (loads in Perfetto / chrome://tracing): pid 0
  // holds one track per shard plus the driver track; pid 1 duplicates
  // events onto one track per node listed in RJOIN_TRACE_NODES.
  void WriteChromeTrace(std::ostream& out) const;
  bool WriteChromeTraceFile(const std::string& path) const;

  // Clears every ring and histogram (capacity and thread bindings stay).
  void Reset();

 private:
  friend struct TlsTraceHandle;

  Tracer();
  Shard* LocalShard();
  void ReleaseShard(Shard* shard);

  std::atomic<bool> enabled_{false};
  size_t capacity_;                       // ring events per thread
  std::vector<uint32_t> track_nodes_;     // RJOIN_TRACE_NODES
  uint64_t wall_start_ns_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rjoin::stats
