#ifndef RJOIN_STATS_METRICS_H_
#define RJOIN_STATS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace rjoin::stats {

/// Index of a node in the simulated network.
using NodeIndex = uint32_t;

/// Per-node counters matching the paper's Section 8 definitions:
///  - traffic: messages the node sends, including DHT-routing forwards;
///  - query processing load (QPL): rewritten queries received in order to
///    search locally stored tuples + tuples received in order to search
///    locally stored queries;
///  - storage load (SL): rewritten queries + tuples stored locally.
struct NodeMetrics {
  uint64_t messages_sent = 0;      ///< total traffic (weight 1 per message)
  uint64_t ric_messages_sent = 0;  ///< subset of traffic due to RIC requests
  uint64_t qpl = 0;                ///< cumulative query-processing load
  uint64_t storage_total = 0;      ///< cumulative items ever stored
  int64_t storage_current = 0;     ///< items stored right now (windows GC
                                   ///< decrements this)
  uint64_t altt_stored = 0;        ///< attribute-level tuple-table inserts
                                   ///< (reported separately; Section 4 fix)
};

/// Registry of per-node counters plus network-wide totals. All RJoin and DHT
/// components report through this single object so experiments can snapshot
/// and diff.
///
/// Sharded mode: the parallel runtime gives every worker thread its own
/// full-size registry (a *delta* registry, see EnableDeltaTracking), so a
/// worker charging traffic to any node — including routing hops through
/// nodes owned by other shards — only ever writes memory it owns. At every
/// round barrier the runtime drains the deltas into the main registry with
/// MergeFrom(); counters are sums, so the merged totals are bit-identical
/// for any shard count. BindOwnerThread() arms a debug-build assertion that
/// catches writes from any thread other than the owning worker.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(size_t num_nodes = 0)
      : nodes_(num_nodes), touched_(num_nodes, 0) {}

  /// Grows the registry (new nodes joining).
  void Resize(size_t num_nodes) {
    if (num_nodes > nodes_.size()) {
      nodes_.resize(num_nodes);
      touched_.resize(num_nodes, 0);
    }
  }
  size_t num_nodes() const { return nodes_.size(); }

  /// Records `count` messages sent by `node`. `ric` marks RIC-request
  /// traffic, reported as a separate series in the paper's figures.
  void AddTraffic(NodeIndex node, uint64_t count = 1, bool ric = false) {
    AssertOwner();
    Touch(node);
    nodes_[node].messages_sent += count;
    total_messages_ += count;
    if (ric) {
      nodes_[node].ric_messages_sent += count;
      total_ric_messages_ += count;
    }
  }

  void AddQpl(NodeIndex node, uint64_t count = 1) {
    AssertOwner();
    Touch(node);
    nodes_[node].qpl += count;
    total_qpl_ += count;
  }

  void AddStore(NodeIndex node, uint64_t count = 1) {
    AssertOwner();
    Touch(node);
    nodes_[node].storage_total += count;
    nodes_[node].storage_current += static_cast<int64_t>(count);
    total_storage_ += count;
  }

  void RemoveStore(NodeIndex node, uint64_t count = 1) {
    AssertOwner();
    Touch(node);
    nodes_[node].storage_current -= static_cast<int64_t>(count);
  }

  void AddAlttStore(NodeIndex node, uint64_t count = 1) {
    AssertOwner();
    Touch(node);
    nodes_[node].altt_stored += count;
  }

  const NodeMetrics& node(NodeIndex i) const { return nodes_[i]; }
  const std::vector<NodeMetrics>& all_nodes() const { return nodes_; }

  uint64_t total_messages() const { return total_messages_; }
  uint64_t total_ric_messages() const { return total_ric_messages_; }
  uint64_t total_qpl() const { return total_qpl_; }
  uint64_t total_storage() const { return total_storage_; }

  /// Number of delivered answers (maintained by the RJoin engine).
  uint64_t answers_delivered() const { return answers_delivered_; }
  void AddAnswer() {
    AssertOwner();
    ++answers_delivered_;
  }

  /// Zeroes every counter (e.g. to exclude bootstrap traffic).
  void ResetAll();

  // ------------------------------------------------------ sharded support

  /// Marks this registry as a per-shard delta: mutators keep a dirty-node
  /// list so MergeFrom() only walks nodes actually written since the last
  /// merge (a round typically touches a small fraction of the network).
  void EnableDeltaTracking() { track_dirty_ = true; }

  /// Binds the registry to the calling thread; from then on (debug builds)
  /// every mutator asserts it runs on that thread. This is the assertion
  /// mode that catches cross-shard writes: a worker writing through another
  /// shard's registry trips it immediately. MergeFrom() on the *source* is
  /// exempt — draining is the round barrier's (single-threaded) job.
  void BindOwnerThread() {
    owner_ = std::this_thread::get_id();
    owner_bound_ = true;
  }

  /// Drains `shard`'s counters into this registry and zeroes them, using the
  /// shard's dirty list when delta tracking is enabled. Addition is
  /// commutative, so merging shards in any fixed order reproduces the serial
  /// totals exactly.
  void MergeFrom(MetricsRegistry* shard);

 private:
  void Touch(NodeIndex node) {
    if (track_dirty_ && !touched_[node]) {
      touched_[node] = 1;
      dirty_.push_back(node);
    }
  }

  void AssertOwner() const {
#ifndef NDEBUG
    RJOIN_CHECK(!owner_bound_ || owner_ == std::this_thread::get_id())
        << "MetricsRegistry written from a thread that does not own it "
           "(cross-shard metrics write)";
#endif
  }

  std::vector<NodeMetrics> nodes_;
  uint64_t total_messages_ = 0;
  uint64_t total_ric_messages_ = 0;
  uint64_t total_qpl_ = 0;
  uint64_t total_storage_ = 0;
  uint64_t answers_delivered_ = 0;

  bool track_dirty_ = false;
  std::vector<uint8_t> touched_;
  std::vector<NodeIndex> dirty_;
  bool owner_bound_ = false;
  std::thread::id owner_;
};

}  // namespace rjoin::stats

#endif  // RJOIN_STATS_METRICS_H_
