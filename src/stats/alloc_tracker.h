#ifndef RJOIN_STATS_ALLOC_TRACKER_H_
#define RJOIN_STATS_ALLOC_TRACKER_H_

#include <cstdint>

namespace rjoin::stats {

/// Which data plane a heap allocation belongs to. The process-wide
/// operator new override (alloc_tracker.cc) charges every allocation to
/// the calling thread's current plane, so a bench can report
/// `allocs_per_tuple_<plane>` and a regression is locatable, not just
/// detectable (ISSUE 8, satellite 2).
enum class AllocPlane : uint8_t {
  kOther = 0,    ///< untagged: setup, workload generation, reporting
  kTuple = 1,    ///< tuple dictionaries, per-record tuple-plane traffic
  kResidual = 2, ///< stored-query / residual per-record traffic
  kMessage = 3,  ///< per-envelope message-plane traffic
  /// Capacity acquisition of amortized structures: pool slab growth
  /// (SlabPool, TuplePool, MessagePool), hash-table doubling (KeyIdMap,
  /// FlatU64Set, ProjectionSet). These are O(log n) per structure by
  /// construction — the thing arenas amortize — and are tracked apart from
  /// the per-record planes, whose steady-state target is <= 1 alloc per
  /// tuple: a record-plane regression means a record started costing heap
  /// again, not that a pool grew a slab.
  kPoolCapacity = 4,
};

inline constexpr int kNumAllocPlanes = 5;

/// Cumulative allocation counts per plane since process start.
struct AllocCounts {
  uint64_t counts[kNumAllocPlanes] = {0, 0, 0, 0, 0};

  uint64_t other() const { return counts[0]; }
  uint64_t tuple() const { return counts[1]; }
  uint64_t residual() const { return counts[2]; }
  uint64_t message() const { return counts[3]; }
  uint64_t pool_capacity() const { return counts[4]; }
  /// Per-record data-plane total: tuple + residual + message (capacity
  /// growth and untagged allocations excluded).
  uint64_t data_plane() const {
    return counts[1] + counts[2] + counts[3];
  }
};

/// Snapshot of the global counters (relaxed reads; exact once threads are
/// quiescent, which is when benches sample them).
AllocCounts ReadAllocCounts();

/// RAII tag: allocations on this thread are charged to `plane` until the
/// scope ends (nests; restores the previous plane). Cheap enough for hot
/// paths — one thread_local store each way.
class AllocScope {
 public:
  explicit AllocScope(AllocPlane plane);
  ~AllocScope();
  AllocScope(const AllocScope&) = delete;
  AllocScope& operator=(const AllocScope&) = delete;

 private:
  AllocPlane prev_;
};

}  // namespace rjoin::stats

#endif  // RJOIN_STATS_ALLOC_TRACKER_H_
