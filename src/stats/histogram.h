#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace rjoin::stats {

// Log-bucketed (HDR-style) histogram of non-negative integer values.
//
// Bucketing: values below 2^kSubBits map to their own bucket; above that,
// each power-of-two major bucket is split into 2^kSubBits linear
// sub-buckets, so relative bucket error is bounded by 1/2^kSubBits
// (~6% at kSubBits = 4) across the full uint64_t range.
//
// All state is a fixed array of uint64_t counters plus min/max/sum, so
// Record() never allocates and MergeFrom() is an elementwise add —
// commutative and associative, which is what makes percentiles computed
// from merged per-shard histograms independent of shard count and merge
// order. Percentile() reports the *lower bound* of the bucket holding the
// requested rank; because bucket bounds are integers derived only from the
// (deterministic) counts, the reported value is bit-identical for any
// sharding of the same sample population.
class LogHistogram {
 public:
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kSubBuckets = 1u << kSubBits;
  // One linear region of kSubBuckets, then (64 - kSubBits) shifted majors.
  static constexpr uint32_t kBuckets = (64 - kSubBits + 1) * kSubBuckets;

  void Record(uint64_t value) {
    ++counts_[BucketIndex(value)];
    ++count_;
    sum_ += value;
    min_ = count_ == 1 ? value : std::min(min_, value);
    max_ = std::max(max_, value);
  }

  void MergeFrom(const LogHistogram& other) {
    if (other.count_ == 0) return;
    for (uint32_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ += other.count_;
  }

  // Histogram of the samples recorded since `earlier` was snapshotted from
  // this same (monotonically growing) histogram. min/max cover the whole
  // lifetime, not just the delta window.
  LogHistogram DiffFrom(const LogHistogram& earlier) const {
    LogHistogram d;
    for (uint32_t i = 0; i < kBuckets; ++i)
      d.counts_[i] = counts_[i] - earlier.counts_[i];
    d.count_ = count_ - earlier.count_;
    d.sum_ = sum_ - earlier.sum_;
    d.min_ = min_;
    d.max_ = max_;
    return d;
  }

  // Lower bound of the bucket containing the ceil(p% * count)-th smallest
  // sample (1-indexed); 0 when empty. p in [0, 100].
  uint64_t Percentile(double p) const {
    if (count_ == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * count_));
    rank = std::clamp<uint64_t>(rank, 1, count_);
    uint64_t cum = 0;
    for (uint32_t i = 0; i < kBuckets; ++i) {
      cum += counts_[i];
      if (cum >= rank) return BucketLowerBound(i);
    }
    return BucketLowerBound(kBuckets - 1);
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  bool CountsEqual(const LogHistogram& other) const {
    return count_ == other.count_ && counts_ == other.counts_;
  }

  void Reset() { *this = LogHistogram(); }

  static uint32_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) return static_cast<uint32_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - static_cast<int>(kSubBits);
    const uint64_t sub = (value >> shift) - kSubBuckets;
    return static_cast<uint32_t>((shift + 1) * kSubBuckets + sub);
  }

  static uint64_t BucketLowerBound(uint32_t index) {
    if (index < kSubBuckets) return index;
    const uint32_t shift = index / kSubBuckets - 1;
    const uint64_t sub = index % kSubBuckets;
    return (static_cast<uint64_t>(kSubBuckets) + sub) << shift;
  }

 private:
  std::array<uint64_t, kBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace rjoin::stats
