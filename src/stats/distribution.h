#ifndef RJOIN_STATS_DISTRIBUTION_H_
#define RJOIN_STATS_DISTRIBUTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rjoin::stats {

/// Summary of a per-node load distribution, used for the paper's
/// "ranked nodes" plots (Figures 3-7 and 9): node loads sorted descending.
struct RankedDistribution {
  std::vector<uint64_t> sorted_desc;  ///< loads, highest first

  uint64_t max() const { return sorted_desc.empty() ? 0 : sorted_desc.front(); }
  uint64_t total() const;
  double mean() const;
  /// Number of nodes with non-zero load ("participating nodes").
  size_t participants() const;
  /// Value at rank r (0-based); 0 beyond the end.
  uint64_t at_rank(size_t r) const {
    return r < sorted_desc.size() ? sorted_desc[r] : 0;
  }
  /// Gini coefficient in [0,1]; 0 = perfectly balanced load.
  double gini() const;
};

/// Builds a ranked distribution from raw per-node loads.
RankedDistribution MakeRanked(const std::vector<uint64_t>& loads);

/// Samples a ranked distribution at `points` evenly spaced ranks
/// (for printing compact figure series).
std::vector<uint64_t> SampleRanks(const RankedDistribution& dist,
                                  size_t points);

}  // namespace rjoin::stats

#endif  // RJOIN_STATS_DISTRIBUTION_H_
