#include "stats/reporter.h"

#include <algorithm>
#include <iomanip>

#include "util/logging.h"

namespace rjoin::stats {

void TableReporter::Print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  os << std::left << std::setw(18) << x_label_;
  for (const auto& s : series_) os << std::right << std::setw(18) << s.label;
  os << "\n";
  for (size_t row = 0; row < xs_.size(); ++row) {
    os << std::left << std::setw(18) << xs_[row];
    for (const auto& s : series_) {
      os << std::right << std::setw(18) << std::fixed << std::setprecision(3)
         << (row < s.values.size() ? s.values[row] : 0.0);
    }
    os << "\n";
  }
  os << "\n";
}

std::vector<size_t> SampleRankGrid(size_t max_nodes, size_t points) {
  std::vector<size_t> ranks;
  if (max_nodes == 0 || points == 0) return ranks;
  // Clamping the grid to the population size keeps the ranks distinct:
  // with n <= max_nodes sample points the stride (max_nodes-1)/(n-1) is
  // >= 1, so the floored positions are strictly increasing.
  const size_t n = std::min(points, max_nodes);
  ranks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ranks.push_back(n > 1 ? (max_nodes - 1) * i / (n - 1) : 0);
  }
  return ranks;
}

void PrintRankedFigure(std::ostream& os, const std::string& title,
                       const std::vector<std::string>& labels,
                       const std::vector<RankedDistribution>& dists,
                       size_t sample_points) {
  RJOIN_CHECK(labels.size() == dists.size());
  os << "== " << title << " (ranked nodes, highest load first) ==\n";
  os << std::left << std::setw(12) << "rank";
  for (const auto& l : labels) os << std::right << std::setw(16) << l;
  os << "\n";
  size_t max_nodes = 0;
  for (const auto& d : dists) max_nodes = std::max(max_nodes, d.sorted_desc.size());
  for (size_t rank : SampleRankGrid(max_nodes, sample_points)) {
    os << std::left << std::setw(12) << rank;
    for (const auto& d : dists) {
      os << std::right << std::setw(16) << d.at_rank(rank);
    }
    os << "\n";
  }
  os << std::left << std::setw(12) << "max";
  for (const auto& d : dists) os << std::right << std::setw(16) << d.max();
  os << "\n";
  os << std::left << std::setw(12) << "participants";
  for (const auto& d : dists) {
    os << std::right << std::setw(16) << d.participants();
  }
  os << "\n\n";
}

void PrintMessagePlaneSummary(std::ostream& os,
                              const MessagePlaneSummary& s) {
  os << "== message plane ==\n";
  os << "messages dispatched:     " << s.messages << "\n";
  os << "messages/sec (wall):     "
     << (s.wall_seconds > 0.0
             ? static_cast<uint64_t>(static_cast<double>(s.messages) /
                                     s.wall_seconds)
             : 0)
     << "\n";
  os << "envelope heap allocs:    " << s.envelope_allocs << "\n";
  os << "allocs per message:      "
     << (s.messages > 0 ? static_cast<double>(s.envelope_allocs) /
                              static_cast<double>(s.messages)
                        : 0.0)
     << "\n";
  os << "data-plane heap allocs:  "
     << (s.alloc_tuple + s.alloc_residual + s.alloc_message) << " (tuple "
     << s.alloc_tuple << ", residual " << s.alloc_residual << ", message "
     << s.alloc_message << "; pool capacity " << s.alloc_pool_capacity
     << ", other " << s.alloc_other << ")\n";
  const uint64_t interns = s.interner_hits + s.interner_misses;
  os << "interned keys:           " << s.interned_keys << "\n";
  os << "interner hit rate:       "
     << (interns > 0
             ? static_cast<double>(s.interner_hits) /
                   static_cast<double>(interns)
             : 0.0)
     << " (" << interns << " interns)\n";
  const uint64_t resolves = s.route_cache_hits + s.route_cache_misses;
  os << "route cache hit rate:    "
     << (resolves > 0
             ? static_cast<double>(s.route_cache_hits) /
                   static_cast<double>(resolves)
             : 0.0)
     << " (" << resolves << " resolves)\n";
  os << "coalesced fanout width:  "
     << (s.coalesce_groups > 0
             ? static_cast<double>(s.coalesce_payloads) /
                   static_cast<double>(s.coalesce_groups)
             : 0.0)
     << " (" << s.coalesce_groups << " wire messages, "
     << s.coalesce_payloads << " payloads)\n";
  os << "event queue depth p99:   " << s.queue_depth_p99 << "\n";
  os << "mailbox batches:         " << s.mailbox_batches << "\n";
  os << "mailbox batch width:     "
     << (s.mailbox_batches > 0
             ? static_cast<double>(s.mailbox_envelopes) /
                   static_cast<double>(s.mailbox_batches)
             : 0.0)
     << " (" << s.mailbox_envelopes << " envelopes)\n";
  os << "scheduler epochs:        " << s.sched_epochs << " (vs "
     << s.equivalent_rounds << " lockstep rounds)\n";
  os << "overlap ratio:           "
     << (s.equivalent_rounds > 0
             ? 1.0 - static_cast<double>(s.sched_epochs) /
                         static_cast<double>(s.equivalent_rounds)
             : 0.0)
     << "\n";
  os << "watermark stalls:        " << s.watermark_stalls << "\n";
  os << "rendezvous caps (churn): " << s.rendezvous_caps << "\n";
  os << "answer latency (vticks): p50 " << s.answer_latency_p50 << "  p95 "
     << s.answer_latency_p95 << "  p99 " << s.answer_latency_p99 << " ("
     << s.answers << " answers)\n";
  os << "stall wall time:         " << std::fixed << std::setprecision(6)
     << s.stall_wall_seconds << " s (p99 park " << s.stall_p99_us
     << " us)\n\n";
}

}  // namespace rjoin::stats
