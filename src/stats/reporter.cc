#include "stats/reporter.h"

#include <algorithm>
#include <iomanip>

#include "util/logging.h"

namespace rjoin::stats {

void TableReporter::Print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  os << std::left << std::setw(18) << x_label_;
  for (const auto& s : series_) os << std::right << std::setw(18) << s.label;
  os << "\n";
  for (size_t row = 0; row < xs_.size(); ++row) {
    os << std::left << std::setw(18) << xs_[row];
    for (const auto& s : series_) {
      os << std::right << std::setw(18) << std::fixed << std::setprecision(3)
         << (row < s.values.size() ? s.values[row] : 0.0);
    }
    os << "\n";
  }
  os << "\n";
}

std::vector<size_t> SampleRankGrid(size_t max_nodes, size_t points) {
  std::vector<size_t> ranks;
  ranks.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    ranks.push_back(max_nodes > 0 && points > 1
                        ? (max_nodes - 1) * i / (points - 1)
                        : 0);
  }
  return ranks;
}

void PrintRankedFigure(std::ostream& os, const std::string& title,
                       const std::vector<std::string>& labels,
                       const std::vector<RankedDistribution>& dists,
                       size_t sample_points) {
  RJOIN_CHECK(labels.size() == dists.size());
  os << "== " << title << " (ranked nodes, highest load first) ==\n";
  os << std::left << std::setw(12) << "rank";
  for (const auto& l : labels) os << std::right << std::setw(16) << l;
  os << "\n";
  size_t max_nodes = 0;
  for (const auto& d : dists) max_nodes = std::max(max_nodes, d.sorted_desc.size());
  for (size_t rank : SampleRankGrid(max_nodes, sample_points)) {
    os << std::left << std::setw(12) << rank;
    for (const auto& d : dists) {
      os << std::right << std::setw(16) << d.at_rank(rank);
    }
    os << "\n";
  }
  os << std::left << std::setw(12) << "max";
  for (const auto& d : dists) os << std::right << std::setw(16) << d.max();
  os << "\n";
  os << std::left << std::setw(12) << "participants";
  for (const auto& d : dists) {
    os << std::right << std::setw(16) << d.participants();
  }
  os << "\n\n";
}

void PrintMessagePlaneSummary(std::ostream& os,
                              const MessagePlaneSummary& s) {
  os << "== message plane ==\n";
  os << "messages dispatched:     " << s.messages << "\n";
  os << "messages/sec (wall):     "
     << (s.wall_seconds > 0.0
             ? static_cast<uint64_t>(static_cast<double>(s.messages) /
                                     s.wall_seconds)
             : 0)
     << "\n";
  os << "envelope heap allocs:    " << s.envelope_allocs << "\n";
  os << "allocs per message:      "
     << (s.messages > 0 ? static_cast<double>(s.envelope_allocs) /
                              static_cast<double>(s.messages)
                        : 0.0)
     << "\n";
  const uint64_t interns = s.interner_hits + s.interner_misses;
  os << "interned keys:           " << s.interned_keys << "\n";
  os << "interner hit rate:       "
     << (interns > 0
             ? static_cast<double>(s.interner_hits) /
                   static_cast<double>(interns)
             : 0.0)
     << " (" << interns << " interns)\n";
  os << "mailbox batches:         " << s.mailbox_batches << "\n";
  os << "mailbox batch width:     "
     << (s.mailbox_batches > 0
             ? static_cast<double>(s.mailbox_envelopes) /
                   static_cast<double>(s.mailbox_batches)
             : 0.0)
     << " (" << s.mailbox_envelopes << " envelopes)\n";
  os << "scheduler epochs:        " << s.sched_epochs << " (vs "
     << s.equivalent_rounds << " lockstep rounds)\n";
  os << "overlap ratio:           "
     << (s.equivalent_rounds > 0
             ? 1.0 - static_cast<double>(s.sched_epochs) /
                         static_cast<double>(s.equivalent_rounds)
             : 0.0)
     << "\n";
  os << "watermark stalls:        " << s.watermark_stalls << "\n";
  os << "rendezvous caps (churn): " << s.rendezvous_caps << "\n\n";
}

}  // namespace rjoin::stats
