#ifndef RJOIN_STATS_REPORTER_H_
#define RJOIN_STATS_REPORTER_H_

#include <ostream>
#include <string>
#include <vector>

#include "stats/distribution.h"

namespace rjoin::stats {

/// A labeled numeric series (one curve of a figure).
struct Series {
  std::string label;
  std::vector<double> values;
};

/// Renders the tables that the benches print for each figure: a header
/// column (x axis) plus one column per series, aligned, with a title line.
/// Matches the "rows/series the paper reports" requirement.
class TableReporter {
 public:
  TableReporter(std::string title, std::string x_label)
      : title_(std::move(title)), x_label_(std::move(x_label)) {}

  void set_x(std::vector<double> xs) { xs_ = std::move(xs); }
  void AddSeries(Series s) { series_.push_back(std::move(s)); }

  /// Writes the table to `os`.
  void Print(std::ostream& os) const;

  const std::string& title() const { return title_; }
  const std::string& x_label() const { return x_label_; }
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<Series>& series() const { return series_; }

 private:
  std::string title_;
  std::string x_label_;
  std::vector<double> xs_;
  std::vector<Series> series_;
};

/// The rank positions a ranked figure samples: at most `points` evenly
/// spaced distinct ranks over [0, max_nodes - 1] (fewer when max_nodes <
/// points — the grid never repeats a rank). Shared by PrintRankedFigure
/// and the benches' JSON output so the two never diverge.
std::vector<size_t> SampleRankGrid(size_t max_nodes, size_t points);

/// Prints a ranked-distribution figure: one row per sampled rank, one column
/// per labeled distribution (e.g. "2560 tuples", "1280 tuples", ...).
void PrintRankedFigure(std::ostream& os, const std::string& title,
                       const std::vector<std::string>& labels,
                       const std::vector<RankedDistribution>& dists,
                       size_t sample_points = 10);

/// Message-plane counters for one measured interval. Plain numbers so the
/// stats layer stays independent of core/runtime: benches fill them from
/// core::MessagePool::Aggregate(), core::KeyInterner::Global().stats(),
/// and runtime::ShardedRuntime::AggregateMailbox() deltas.
struct MessagePlaneSummary {
  uint64_t messages = 0;         ///< pooled-envelope acquires
  uint64_t envelope_allocs = 0;  ///< envelope heap allocations
  double wall_seconds = 0.0;
  uint64_t interned_keys = 0;    ///< distinct keys in the interner
  uint64_t interner_hits = 0;    ///< Intern() calls resolved lock-free
  uint64_t interner_misses = 0;  ///< first-sight inserts
  uint64_t mailbox_batches = 0;  ///< cross-shard (src, dst) chain takeovers
  uint64_t mailbox_envelopes = 0;  ///< envelopes those chains carried
  // Routing plane (docs/routing.md): per-node route-cache effectiveness and
  // destination coalescing of the publication fan-out.
  uint64_t route_cache_hits = 0;    ///< sends resolved from a cached path
  uint64_t route_cache_misses = 0;  ///< sends that walked RoutePath
  uint64_t coalesce_groups = 0;     ///< wire messages MultiSendKeys emitted
  uint64_t coalesce_payloads = 0;   ///< payloads those wire messages carried
  uint64_t queue_depth_p99 = 0;     ///< p99 pending events at event-pump push
  uint64_t sched_epochs = 0;       ///< watermark rendezvous epochs run
  uint64_t watermark_stalls = 0;   ///< worker park episodes (perf signal)
  uint64_t rendezvous_caps = 0;    ///< epochs cut short by staged churn
  uint64_t equivalent_rounds = 0;  ///< lockstep rounds the same span implies
  // Observability layer (docs/observability.md): end-to-end answer latency
  // in virtual ticks (deterministic) and the wall-clock stall breakdown
  // (a perf signal, like watermark_stalls).
  uint64_t answers = 0;                 ///< answer-latency samples
  uint64_t answer_latency_p50 = 0;
  uint64_t answer_latency_p95 = 0;
  uint64_t answer_latency_p99 = 0;
  double stall_wall_seconds = 0.0;      ///< total time workers spent parked
  uint64_t stall_p99_us = 0;            ///< p99 single park, wall microsecs
  // Per-subsystem heap-allocation counts (alloc_tracker.h planes), so an
  // allocation regression is locatable: which plane started allocating.
  uint64_t alloc_tuple = 0;     ///< tuple dictionaries, tuple records
  uint64_t alloc_residual = 0;  ///< stored-query / residual records
  uint64_t alloc_message = 0;   ///< per-envelope traffic
  uint64_t alloc_other = 0;     ///< untagged (setup, reporting, answers)
  uint64_t alloc_pool_capacity = 0;  ///< slab growth, table doubling
};

/// Prints the message-plane summary: messages dispatched, envelope heap
/// allocations and the allocs-per-message ratio (near zero once the pools
/// reach their steady-state high-water mark), the key-interner size and
/// hit rate (near one once the key dictionary is warm), the mean
/// cross-shard mailbox batch width, and the watermark-scheduler health
/// block — epochs vs the equivalent lockstep rounds (their ratio's
/// complement is the overlap ratio: the fraction of global barriers the
/// watermark model eliminated) and stall/cap counts (sharded runs only).
void PrintMessagePlaneSummary(std::ostream& os,
                              const MessagePlaneSummary& s);

}  // namespace rjoin::stats

#endif  // RJOIN_STATS_REPORTER_H_
