#include "stats/alloc_tracker.h"

#include <atomic>
#include <cstdlib>
#include <new>

// Per-plane allocation counters, fed by a process-wide operator new
// override. The counters and the thread_local tag are constant-initialized
// so the override is safe during static initialization, before any rjoin
// code runs. TSan/ASan still intercept the underlying malloc, so sanitizer
// jobs keep full coverage.

namespace rjoin::stats {
namespace {

std::atomic<uint64_t> g_alloc_counts[kNumAllocPlanes] = {};
thread_local AllocPlane t_plane = AllocPlane::kOther;

inline void CountAlloc() {
  g_alloc_counts[static_cast<int>(t_plane)].fetch_add(
      1, std::memory_order_relaxed);
}

}  // namespace

AllocCounts ReadAllocCounts() {
  AllocCounts c;
  for (int i = 0; i < kNumAllocPlanes; ++i) {
    c.counts[i] = g_alloc_counts[i].load(std::memory_order_relaxed);
  }
  return c;
}

AllocScope::AllocScope(AllocPlane plane) : prev_(t_plane) {
  t_plane = plane;
}

AllocScope::~AllocScope() { t_plane = prev_; }

}  // namespace rjoin::stats

namespace {

void* TrackedAlloc(std::size_t size) {
  rjoin::stats::CountAlloc();
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* TrackedAlignedAlloc(std::size_t size, std::size_t align) {
  rjoin::stats::CountAlloc();
  if (size == 0) size = 1;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = TrackedAlloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = TrackedAlloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = TrackedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = TrackedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return TrackedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return TrackedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
