#include "stats/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/messages.h"

namespace rjoin::stats {
namespace {

uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool EnvTraceOn() {
  const char* v = std::getenv("RJOIN_TRACE");
  return v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
}

size_t EnvTraceCap() {
  constexpr size_t kDefault = 1u << 16;  // events per recording thread
  const char* v = std::getenv("RJOIN_TRACE_CAP");
  if (v == nullptr || *v == '\0') return kDefault;
  const long long n = std::atoll(v);
  return n < 16 ? 16 : static_cast<size_t>(n);
}

std::vector<uint32_t> EnvTraceNodes() {
  std::vector<uint32_t> nodes;
  const char* v = std::getenv("RJOIN_TRACE_NODES");
  if (v == nullptr) return nodes;
  std::stringstream ss{std::string(v)};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    nodes.push_back(static_cast<uint32_t>(std::atoll(item.c_str())));
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

// The event name shown in Perfetto: category, plus the message kind where
// one applies (e.g. "route:Rewrite").
std::string EventName(const TraceEvent& e) {
  switch (e.cat) {
    case TraceCategory::kSend:
    case TraceCategory::kRoute:
    case TraceCategory::kDeliver:
      return std::string(TraceCategoryName(e.cat)) + ":" +
             core::MessageKindName(static_cast<core::MessageKind>(e.kind));
    case TraceCategory::kChurn:
      return e.kind != 0 ? "churn:join" : "churn:leave";
    default:
      return TraceCategoryName(e.cat);
  }
}

}  // namespace

const char* TraceCategoryName(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kSend: return "send";
    case TraceCategory::kRoute: return "route";
    case TraceCategory::kDeliver: return "deliver";
    case TraceCategory::kRewrite: return "rewrite";
    case TraceCategory::kAnswer: return "answer";
    case TraceCategory::kRicRequest: return "ric_request";
    case TraceCategory::kRicReply: return "ric_reply";
    case TraceCategory::kChurn: return "churn";
    case TraceCategory::kStall: return "stall";
    case TraceCategory::kRendezvous: return "rendezvous";
  }
  return "?";
}

// Per-thread recording state. Owned by the Tracer registry for the whole
// process lifetime (so merge readers never chase a freed pointer) and
// handed back for reuse when the recording thread exits.
struct Tracer::Shard {
  std::unique_ptr<TraceEvent[]> ring;
  size_t capacity = 0;
  uint64_t recorded = 0;  // lifetime appends; ring keeps the last
                          // min(recorded, capacity) of them
  uint32_t track = Tracer::kDriverTrack;
  bool in_use = true;
  uint64_t ctx_time = 0;
  uint64_t ctx_seq = 0;
  uint32_t ctx_src = 0;
  HistogramSet hist;

  size_t size() const { return std::min<uint64_t>(recorded, capacity); }

  void Append(const TraceEvent& e) {
    ring[recorded % capacity] = e;
    ++recorded;
  }
};

namespace {

// Thread-exit hook: returns the shard to the registry free pool so long
// benches (many sequential runtimes) reuse slabs instead of growing one
// per worker thread ever started.
struct TlsTraceHandleImpl {
  Tracer::Shard* shard = nullptr;
  ~TlsTraceHandleImpl();
};
thread_local TlsTraceHandleImpl tls_trace;

}  // namespace

struct TlsTraceHandle {
  static Tracer::Shard* Get() {
    if (tls_trace.shard == nullptr)
      tls_trace.shard = Tracer::Global().LocalShard();
    return tls_trace.shard;
  }
  static void Release(Tracer::Shard* shard) {
    Tracer::Global().ReleaseShard(shard);
  }
};

namespace {
TlsTraceHandleImpl::~TlsTraceHandleImpl() {
  if (shard != nullptr) TlsTraceHandle::Release(shard);
}
}  // namespace

Tracer::Tracer()
    : capacity_(EnvTraceCap()),
      track_nodes_(EnvTraceNodes()),
      wall_start_ns_(WallNowNs()) {
  enabled_.store(EnvTraceOn(), std::memory_order_relaxed);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // intentionally leaked
  return *tracer;
}

Tracer::Shard* Tracer::LocalShard() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : shards_) {
    if (!s->in_use) {
      s->in_use = true;
      s->track = kDriverTrack;
      s->ctx_time = s->ctx_seq = 0;
      s->ctx_src = 0;
      return s.get();
    }
  }
  shards_.push_back(std::make_unique<Shard>());
  return shards_.back().get();
}

void Tracer::ReleaseShard(Shard* shard) {
  std::lock_guard<std::mutex> lock(mu_);
  shard->in_use = false;
}

void Tracer::BindTrack(uint32_t track) { TlsTraceHandle::Get()->track = track; }

void Tracer::SetContext(uint64_t time, uint32_t src, uint64_t seq) {
  Shard* s = TlsTraceHandle::Get();
  s->ctx_time = time;
  s->ctx_src = src;
  s->ctx_seq = seq;
}

void Tracer::RecordAtContext(TraceCategory cat, uint8_t kind, uint32_t node,
                             uint32_t peer, uint64_t arg) {
  if (!On()) return;
  Record(cat, kind, node, peer, arg, TlsTraceHandle::Get()->ctx_time);
}

void Tracer::Record(TraceCategory cat, uint8_t kind, uint32_t node,
                    uint32_t peer, uint64_t arg, uint64_t vtime) {
  Tracer& t = Global();
  if (!t.enabled()) return;
  Shard* s = TlsTraceHandle::Get();
  if (!s->ring) {
    s->capacity = t.capacity_;
    s->ring = std::make_unique<TraceEvent[]>(s->capacity);
  }
  TraceEvent e;
  e.vtime = vtime;
  e.wall_ns = WallNowNs() - t.wall_start_ns_;
  e.key_time = s->ctx_time;
  e.key_src = s->ctx_src;
  e.key_seq = s->ctx_seq;
  e.arg = arg;
  e.node = node;
  e.peer = peer;
  e.track = s->track;
  e.cat = cat;
  e.kind = kind;
  s->Append(e);
}

void Tracer::RecordAnswerLatency(uint64_t vticks) {
  TlsTraceHandle::Get()->hist.answer_latency.Record(vticks);
}
void Tracer::RecordRewriteDepth(uint64_t bound) {
  TlsTraceHandle::Get()->hist.rewrite_depth.Record(bound);
}
void Tracer::RecordRouteHops(uint64_t hops) {
  TlsTraceHandle::Get()->hist.route_hops.Record(hops);
}
void Tracer::RecordStallNanos(uint64_t ns) {
  TlsTraceHandle::Get()->hist.stall_ns.Record(ns);
}
void Tracer::RecordQueueDepth(uint64_t pending) {
  TlsTraceHandle::Get()->hist.queue_depth.Record(pending);
}

void Tracer::HistogramSet::MergeFrom(const HistogramSet& other) {
  answer_latency.MergeFrom(other.answer_latency);
  rewrite_depth.MergeFrom(other.rewrite_depth);
  route_hops.MergeFrom(other.route_hops);
  stall_ns.MergeFrom(other.stall_ns);
  queue_depth.MergeFrom(other.queue_depth);
}

Tracer::HistogramSet Tracer::AggregateHistograms() const {
  HistogramSet out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : shards_) out.MergeFrom(s->hist);
  return out;
}

std::vector<TraceEvent> Tracer::MergedEvents() const {
  // A given EventKey executes wholly on one thread, so sorting by key and
  // breaking ties by per-thread record index is a total order that does
  // not depend on thread registration order or shard count.
  struct Tagged {
    TraceEvent e;
    uint64_t local_index;
  };
  std::vector<Tagged> tagged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& s : shards_) {
      if (!s->ring) continue;
      const uint64_t first = s->recorded - s->size();
      for (uint64_t i = first; i < s->recorded; ++i)
        tagged.push_back({s->ring[i % s->capacity], i});
    }
  }
  std::sort(tagged.begin(), tagged.end(), [](const Tagged& a, const Tagged& b) {
    if (a.e.key_time != b.e.key_time) return a.e.key_time < b.e.key_time;
    if (a.e.key_src != b.e.key_src) return a.e.key_src < b.e.key_src;
    if (a.e.key_seq != b.e.key_seq) return a.e.key_seq < b.e.key_seq;
    if (a.e.track != b.e.track) return a.e.track < b.e.track;
    return a.local_index < b.local_index;
  });
  std::vector<TraceEvent> out;
  out.reserve(tagged.size());
  for (const auto& t : tagged) out.push_back(t.e);
  return out;
}

uint64_t Tracer::DroppedEvents() const {
  uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : shards_) dropped += s->recorded - s->size();
  return dropped;
}

namespace {

void WriteEventJson(std::ostream& out, const TraceEvent& e, int pid,
                    int64_t tid) {
  out << "{\"name\":\"" << EventName(e) << "\",\"cat\":\""
      << TraceCategoryName(e.cat) << "\",\"ph\":\""
      << (e.cat == TraceCategory::kStall ? 'X' : 'i') << "\",\"ts\":"
      << e.vtime << ",\"pid\":" << pid << ",\"tid\":" << tid;
  if (e.cat == TraceCategory::kStall) {
    // Instant events live on the virtual timeline; the stall's duration is
    // the one wall-clock quantity, exported in wall microseconds.
    out << ",\"dur\":" << (e.arg / 1000);
  } else {
    out << ",\"s\":\"t\"";
  }
  out << ",\"args\":{\"node\":" << e.node << ",\"peer\":" << e.peer
      << ",\"arg\":" << e.arg << ",\"src\":" << e.key_src << ",\"seq\":"
      << e.key_seq << ",\"wall_ns\":" << e.wall_ns << "}}";
}

}  // namespace

void Tracer::WriteChromeTrace(std::ostream& out) const {
  const std::vector<TraceEvent> events = MergedEvents();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  sep();
  out << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"rjoin shards\"}}";
  sep();
  out << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
         "\"args\":{\"name\":\"driver\"}}";
  if (!track_nodes_.empty()) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
           "\"args\":{\"name\":\"rjoin nodes\"}}";
    for (uint32_t node : track_nodes_) {
      sep();
      out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << node
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"node "
          << node << "\"}}";
    }
  }
  std::vector<uint32_t> shard_tracks;
  for (const TraceEvent& e : events) {
    if (e.track != kDriverTrack) shard_tracks.push_back(e.track);
  }
  std::sort(shard_tracks.begin(), shard_tracks.end());
  shard_tracks.erase(std::unique(shard_tracks.begin(), shard_tracks.end()),
                     shard_tracks.end());
  for (uint32_t track : shard_tracks) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << (track + 1)
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"shard " << track
        << "\"}}";
  }
  for (const TraceEvent& e : events) {
    sep();
    const int64_t tid = e.track == kDriverTrack ? 0 : e.track + 1;
    WriteEventJson(out, e, /*pid=*/0, tid);
    for (uint32_t node : track_nodes_) {
      if (e.node == node || e.peer == node) {
        sep();
        WriteEventJson(out, e, /*pid=*/1, node);
      }
    }
  }
  out << "]}\n";
}

bool Tracer::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteChromeTrace(out);
  return out.good();
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : shards_) {
    s->recorded = 0;
    s->ctx_time = s->ctx_seq = 0;
    s->ctx_src = 0;
    s->hist = HistogramSet{};
  }
}

}  // namespace rjoin::stats
