#include "stats/metrics.h"

namespace rjoin::stats {

void MetricsRegistry::ResetAll() {
  for (auto& n : nodes_) n = NodeMetrics{};
  total_messages_ = 0;
  total_ric_messages_ = 0;
  total_qpl_ = 0;
  total_storage_ = 0;
  answers_delivered_ = 0;
  for (auto& t : touched_) t = 0;
  dirty_.clear();
}

void MetricsRegistry::MergeFrom(MetricsRegistry* shard) {
  RJOIN_CHECK(shard->nodes_.size() <= nodes_.size())
      << "shard registry larger than the main registry";
  auto merge_node = [&](NodeIndex n) {
    NodeMetrics& from = shard->nodes_[n];
    NodeMetrics& to = nodes_[n];
    to.messages_sent += from.messages_sent;
    to.ric_messages_sent += from.ric_messages_sent;
    to.qpl += from.qpl;
    to.storage_total += from.storage_total;
    to.storage_current += from.storage_current;
    to.altt_stored += from.altt_stored;
    from = NodeMetrics{};
  };
  if (shard->track_dirty_) {
    for (NodeIndex n : shard->dirty_) {
      merge_node(n);
      shard->touched_[n] = 0;
    }
    shard->dirty_.clear();
  } else {
    for (NodeIndex n = 0; n < shard->nodes_.size(); ++n) merge_node(n);
  }
  total_messages_ += shard->total_messages_;
  total_ric_messages_ += shard->total_ric_messages_;
  total_qpl_ += shard->total_qpl_;
  total_storage_ += shard->total_storage_;
  answers_delivered_ += shard->answers_delivered_;
  shard->total_messages_ = 0;
  shard->total_ric_messages_ = 0;
  shard->total_qpl_ = 0;
  shard->total_storage_ = 0;
  shard->answers_delivered_ = 0;
}

}  // namespace rjoin::stats
