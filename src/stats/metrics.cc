#include "stats/metrics.h"

namespace rjoin::stats {

void MetricsRegistry::ResetAll() {
  for (auto& n : nodes_) n = NodeMetrics{};
  total_messages_ = 0;
  total_ric_messages_ = 0;
  total_qpl_ = 0;
  total_storage_ = 0;
  answers_delivered_ = 0;
}

}  // namespace rjoin::stats
