#include "stats/distribution.h"

#include <algorithm>
#include <numeric>

namespace rjoin::stats {

uint64_t RankedDistribution::total() const {
  return std::accumulate(sorted_desc.begin(), sorted_desc.end(), uint64_t{0});
}

double RankedDistribution::mean() const {
  if (sorted_desc.empty()) return 0.0;
  return static_cast<double>(total()) / static_cast<double>(sorted_desc.size());
}

size_t RankedDistribution::participants() const {
  size_t n = 0;
  for (uint64_t v : sorted_desc) {
    if (v > 0) ++n;
  }
  return n;
}

double RankedDistribution::gini() const {
  const size_t n = sorted_desc.size();
  const uint64_t tot = total();
  if (n == 0 || tot == 0) return 0.0;
  // G = (2 * sum_i(rank_i * x_i)) / (n * total) - (n + 1) / n with x sorted
  // ascending and ranks 1..n. Element i of the descending array has
  // ascending rank (n - i).
  double weighted = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weighted +=
        static_cast<double>(n - i) * static_cast<double>(sorted_desc[i]);
  }
  const double nd = static_cast<double>(n);
  return (2.0 * weighted) / (nd * static_cast<double>(tot)) - (nd + 1.0) / nd;
}

RankedDistribution MakeRanked(const std::vector<uint64_t>& loads) {
  RankedDistribution d;
  d.sorted_desc = loads;
  std::sort(d.sorted_desc.begin(), d.sorted_desc.end(),
            std::greater<uint64_t>());
  return d;
}

std::vector<uint64_t> SampleRanks(const RankedDistribution& dist,
                                  size_t points) {
  std::vector<uint64_t> out;
  if (points == 0 || dist.sorted_desc.empty()) return out;
  const size_t n = dist.sorted_desc.size();
  // Same dedupe rule as SampleRankGrid: never sample a rank twice when the
  // population is smaller than the requested grid.
  const size_t m = std::min(points, n);
  out.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const size_t rank = m > 1 ? (n - 1) * i / (m - 1) : 0;
    out.push_back(dist.sorted_desc[rank]);
  }
  return out;
}

}  // namespace rjoin::stats
