#!/usr/bin/env python3
"""CI perf-regression gate for the figure-3 throughput and failures benches.

Usage: check_bench.py FRESH_BENCH_JSON TRAJECTORY_DIR [--max-regression R]

Compares a freshly produced BENCH_fig3_tuples.json against the most recent
committed point in bench/trajectory/ whose provenance matches the fresh
run's machine and knobs (hardware_threads, build_type, rjoin_scale,
rjoin_shards) — cross-machine wall-clock numbers are not comparable, so
only provenance-matched baselines gate.

Fails (exit 1) when:
  - tuples_per_sec regressed by more than --max-regression (default 10%);
  - messages_per_sec regressed by more than --max-regression — the routing
    plane's own throughput, gated separately so a delivery-path regression
    can't hide behind a tuple-plane win;
  - allocs_per_tuple increased at all (the zero-alloc hot path is a
    ratchet: once the rewrite plane stops allocating, it must not start
    again);
  - route_cache_hit_rate dropped below --min-hit-rate (default 0.95) when
    the fresh run reports the scalar. Baselines predating the route cache
    lack it; those simply don't gate the hit rate.

Given a BENCH_failures.json instead, the gate switches to the replication
correctness schema:
  - the scalar set must carry replication_msgs_per_sec, replica_bytes,
    answer_loss_rate, and recovery_rounds_p99 (the trajectory schema of
    bench/trajectory/README.md);
  - answer_loss_rate (measured at replication factor 2 on the reference
    fault trace) must be exactly 0 — one successor replica is the
    configuration the recovery design guarantees single-kill completeness
    for, so any loss is a correctness bug, not a perf regression;
  - recovery_rounds_p99 must be positive (crashes promoted) and at most
    --max-recovery-rounds (default 8) rendezvous rounds.
These are absolute gates: no provenance-matched baseline is required.

When no committed point matches the fresh provenance (first run on a new
machine, or older points predate provenance), the gate passes with a
notice — it cannot distinguish a regression from a hardware change.
"""

import argparse
import glob
import json
import os
import sys

# Provenance keys that must agree for wall-clock numbers to be comparable.
MATCH_KEYS = ["hardware_threads", "build_type", "rjoin_scale",
              "rjoin_shards"]

ALLOCS_EPSILON = 1e-9
LOSS_EPSILON = 1e-12

# Required scalar schema per bench JSON (basename); anything else gets the
# fig3 defaults for backward compatibility.
REQUIRED_SCALARS = {
    "BENCH_fig3_tuples.json": ["tuples_per_sec", "allocs_per_tuple"],
    "BENCH_failures.json": ["replication_msgs_per_sec", "replica_bytes",
                            "answer_loss_rate", "recovery_rounds_p99"],
}
DEFAULT_REQUIRED = ["tuples_per_sec", "allocs_per_tuple"]


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def notice(msg):
    print(f"check_bench: NOTICE: {msg}")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    scalars = doc.get("scalars")
    if not isinstance(scalars, dict):
        fail(f"{path}: no scalars object")
    required = REQUIRED_SCALARS.get(os.path.basename(path), DEFAULT_REQUIRED)
    for key in required:
        if key not in scalars:
            fail(f"{path}: missing scalar '{key}'")
    return doc


def gate_failures(fresh, path, max_recovery_rounds):
    """Absolute correctness gate for BENCH_failures.json."""
    fs = fresh["scalars"]
    loss = fs["answer_loss_rate"]
    p99 = fs["recovery_rounds_p99"]
    print(f"check_bench: {os.path.basename(path)}: "
          f"answer_loss_rate={loss:.6f} recovery_rounds_p99={p99:.2f} "
          f"replication_msgs_per_sec={fs['replication_msgs_per_sec']:.2f} "
          f"replica_bytes={fs['replica_bytes']:.0f}")
    if loss > LOSS_EPSILON:
        fail(f"answer_loss_rate {loss:.6f} != 0 with replication_factor=2 "
             f"on the reference fault trace; single-kill completeness is "
             f"a correctness guarantee, not a budgeted metric")
    if p99 <= 0:
        fail("recovery_rounds_p99 is 0: the reference trace applied no "
             "replica promotions, so the gate measured nothing")
    if p99 > max_recovery_rounds:
        fail(f"recovery_rounds_p99 {p99:.2f} exceeds the "
             f"{max_recovery_rounds} rendezvous-round bound")
    print("check_bench: OK")


def provenance_matches(fresh, baseline):
    fp, bp = fresh.get("provenance"), baseline.get("provenance")
    if not isinstance(fp, dict) or not isinstance(bp, dict):
        return False
    return all(fp.get(k) == bp.get(k) for k in MATCH_KEYS)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh_json", help="freshly produced BENCH_fig3_tuples.json")
    ap.add_argument("trajectory_dir", help="bench/trajectory/ checkout")
    ap.add_argument("--max-regression", type=float, default=0.10,
                    help="tolerated fractional tuples_per_sec / "
                         "messages_per_sec drop")
    ap.add_argument("--min-hit-rate", type=float, default=0.95,
                    help="required route_cache_hit_rate when reported")
    ap.add_argument("--max-recovery-rounds", type=float, default=8.0,
                    help="bound on recovery_rounds_p99 for the failures "
                         "bench")
    args = ap.parse_args()

    fresh = load(args.fresh_json)
    name = os.path.basename(args.fresh_json)

    if name == "BENCH_failures.json":
        gate_failures(fresh, args.fresh_json, args.max_recovery_rounds)
        return

    # Trajectory points live in date-named subdirectories; lexicographic
    # order is chronological (YYYY-MM-DD[-suffix]).
    candidates = sorted(glob.glob(
        os.path.join(args.trajectory_dir, "*", name)))
    baseline = None
    baseline_path = None
    for path in reversed(candidates):
        doc = load(path)
        if provenance_matches(fresh, doc):
            baseline, baseline_path = doc, path
            break

    if baseline is None:
        notice(f"no provenance-matched baseline for {name} among "
               f"{len(candidates)} trajectory points "
               f"(keys compared: {MATCH_KEYS}); passing without a gate")
        sys.exit(0)

    fs, bs = fresh["scalars"], baseline["scalars"]
    f_tps, b_tps = fs["tuples_per_sec"], bs["tuples_per_sec"]
    f_apt, b_apt = fs["allocs_per_tuple"], bs["allocs_per_tuple"]
    rel = os.path.relpath(baseline_path, args.trajectory_dir)
    print(f"check_bench: baseline {rel}: "
          f"tuples_per_sec {b_tps:.2f} -> {f_tps:.2f}, "
          f"allocs_per_tuple {b_apt:.4f} -> {f_apt:.4f}")

    if b_tps > 0 and f_tps < b_tps * (1.0 - args.max_regression):
        fail(f"tuples_per_sec regressed {100 * (1 - f_tps / b_tps):.1f}% "
             f"({b_tps:.2f} -> {f_tps:.2f}), more than the "
             f"{100 * args.max_regression:.0f}% budget")
    # messages_per_sec gates with the same budget, but only when both sides
    # report it (the scalar arrived after the earliest trajectory points).
    f_mps, b_mps = fs.get("messages_per_sec"), bs.get("messages_per_sec")
    if f_mps is not None and b_mps is not None:
        print(f"check_bench: messages_per_sec {b_mps:.2f} -> {f_mps:.2f}")
        if b_mps > 0 and f_mps < b_mps * (1.0 - args.max_regression):
            fail(f"messages_per_sec regressed "
                 f"{100 * (1 - f_mps / b_mps):.1f}% "
                 f"({b_mps:.2f} -> {f_mps:.2f}), more than the "
                 f"{100 * args.max_regression:.0f}% budget")
    if f_apt > b_apt + ALLOCS_EPSILON:
        fail(f"allocs_per_tuple increased ({b_apt:.6f} -> {f_apt:.6f}); "
             f"the zero-alloc hot path is a ratchet")
    # The route cache must stay effective on the steady-state figure; the
    # threshold is absolute (not baseline-relative) so the first run that
    # reports the scalar already gates.
    f_hit = fs.get("route_cache_hit_rate")
    if f_hit is not None:
        print(f"check_bench: route_cache_hit_rate {f_hit:.4f} "
              f"(floor {args.min_hit_rate:.2f})")
        if f_hit < args.min_hit_rate:
            fail(f"route_cache_hit_rate {f_hit:.4f} below the "
                 f"{args.min_hit_rate:.2f} floor")

    print("check_bench: OK")


if __name__ == "__main__":
    main()
