#!/usr/bin/env python3
"""CI perf-regression gate for the figure-3 throughput bench.

Usage: check_bench.py FRESH_BENCH_JSON TRAJECTORY_DIR [--max-regression R]

Compares a freshly produced BENCH_fig3_tuples.json against the most recent
committed point in bench/trajectory/ whose provenance matches the fresh
run's machine and knobs (hardware_threads, build_type, rjoin_scale,
rjoin_shards) — cross-machine wall-clock numbers are not comparable, so
only provenance-matched baselines gate.

Fails (exit 1) when:
  - tuples_per_sec regressed by more than --max-regression (default 10%);
  - messages_per_sec regressed by more than --max-regression — the routing
    plane's own throughput, gated separately so a delivery-path regression
    can't hide behind a tuple-plane win;
  - allocs_per_tuple increased at all (the zero-alloc hot path is a
    ratchet: once the rewrite plane stops allocating, it must not start
    again);
  - route_cache_hit_rate dropped below --min-hit-rate (default 0.95) when
    the fresh run reports the scalar. Baselines predating the route cache
    lack it; those simply don't gate the hit rate.

When no committed point matches the fresh provenance (first run on a new
machine, or older points predate provenance), the gate passes with a
notice — it cannot distinguish a regression from a hardware change.
"""

import argparse
import glob
import json
import os
import sys

# Provenance keys that must agree for wall-clock numbers to be comparable.
MATCH_KEYS = ["hardware_threads", "build_type", "rjoin_scale",
              "rjoin_shards"]

ALLOCS_EPSILON = 1e-9


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def notice(msg):
    print(f"check_bench: NOTICE: {msg}")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    scalars = doc.get("scalars")
    if not isinstance(scalars, dict):
        fail(f"{path}: no scalars object")
    for key in ("tuples_per_sec", "allocs_per_tuple"):
        if key not in scalars:
            fail(f"{path}: missing scalar '{key}'")
    return doc


def provenance_matches(fresh, baseline):
    fp, bp = fresh.get("provenance"), baseline.get("provenance")
    if not isinstance(fp, dict) or not isinstance(bp, dict):
        return False
    return all(fp.get(k) == bp.get(k) for k in MATCH_KEYS)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh_json", help="freshly produced BENCH_fig3_tuples.json")
    ap.add_argument("trajectory_dir", help="bench/trajectory/ checkout")
    ap.add_argument("--max-regression", type=float, default=0.10,
                    help="tolerated fractional tuples_per_sec / "
                         "messages_per_sec drop")
    ap.add_argument("--min-hit-rate", type=float, default=0.95,
                    help="required route_cache_hit_rate when reported")
    args = ap.parse_args()

    fresh = load(args.fresh_json)
    name = os.path.basename(args.fresh_json)

    # Trajectory points live in date-named subdirectories; lexicographic
    # order is chronological (YYYY-MM-DD[-suffix]).
    candidates = sorted(glob.glob(
        os.path.join(args.trajectory_dir, "*", name)))
    baseline = None
    baseline_path = None
    for path in reversed(candidates):
        doc = load(path)
        if provenance_matches(fresh, doc):
            baseline, baseline_path = doc, path
            break

    if baseline is None:
        notice(f"no provenance-matched baseline for {name} among "
               f"{len(candidates)} trajectory points "
               f"(keys compared: {MATCH_KEYS}); passing without a gate")
        sys.exit(0)

    fs, bs = fresh["scalars"], baseline["scalars"]
    f_tps, b_tps = fs["tuples_per_sec"], bs["tuples_per_sec"]
    f_apt, b_apt = fs["allocs_per_tuple"], bs["allocs_per_tuple"]
    rel = os.path.relpath(baseline_path, args.trajectory_dir)
    print(f"check_bench: baseline {rel}: "
          f"tuples_per_sec {b_tps:.2f} -> {f_tps:.2f}, "
          f"allocs_per_tuple {b_apt:.4f} -> {f_apt:.4f}")

    if b_tps > 0 and f_tps < b_tps * (1.0 - args.max_regression):
        fail(f"tuples_per_sec regressed {100 * (1 - f_tps / b_tps):.1f}% "
             f"({b_tps:.2f} -> {f_tps:.2f}), more than the "
             f"{100 * args.max_regression:.0f}% budget")
    # messages_per_sec gates with the same budget, but only when both sides
    # report it (the scalar arrived after the earliest trajectory points).
    f_mps, b_mps = fs.get("messages_per_sec"), bs.get("messages_per_sec")
    if f_mps is not None and b_mps is not None:
        print(f"check_bench: messages_per_sec {b_mps:.2f} -> {f_mps:.2f}")
        if b_mps > 0 and f_mps < b_mps * (1.0 - args.max_regression):
            fail(f"messages_per_sec regressed "
                 f"{100 * (1 - f_mps / b_mps):.1f}% "
                 f"({b_mps:.2f} -> {f_mps:.2f}), more than the "
                 f"{100 * args.max_regression:.0f}% budget")
    if f_apt > b_apt + ALLOCS_EPSILON:
        fail(f"allocs_per_tuple increased ({b_apt:.6f} -> {f_apt:.6f}); "
             f"the zero-alloc hot path is a ratchet")
    # The route cache must stay effective on the steady-state figure; the
    # threshold is absolute (not baseline-relative) so the first run that
    # reports the scalar already gates.
    f_hit = fs.get("route_cache_hit_rate")
    if f_hit is not None:
        print(f"check_bench: route_cache_hit_rate {f_hit:.4f} "
              f"(floor {args.min_hit_rate:.2f})")
        if f_hit < args.min_hit_rate:
            fail(f"route_cache_hit_rate {f_hit:.4f} below the "
                 f"{args.min_hit_rate:.2f} floor")

    print("check_bench: OK")


if __name__ == "__main__":
    main()
