#!/usr/bin/env python3
"""CI validator for the observability outputs of a bench run.

Usage: check_trace.py BENCH_DIR [--shards N]

Checks, for every BENCH_*.json in BENCH_DIR:
  - the file parses and carries the full scalar schema (throughput,
    message-plane, scheduler, and observability scalars) plus the
    provenance object (see bench/trajectory/README.md);
and for every TRACE_*.json:
  - the file parses as Chrome trace-event JSON ("traceEvents" array);
  - the union of event categories across all traces covers every category
    the run must produce: send, route, deliver, rewrite, answer — plus
    rendezvous when the run was sharded (--shards > 0).

Exits non-zero with a description of the first failure.
"""

import argparse
import glob
import json
import os
import sys

REQUIRED_SCALARS = [
    "wall_seconds",
    "tuples_processed",
    "tuples_per_sec",
    "messages_per_sec",
    "allocs_per_tuple",
    "interned_keys",
    "interner_hit_rate",
    "route_cache_hit_rate",
    "route_cache_hit_rate_lifetime",
    "route_cache_resolves",
    "coalesced_fanout_width",
    "coalesced_groups",
    "event_queue_depth_p99",
    "mailbox_batches",
    "mailbox_batch_width",
    "sched_epochs",
    "watermark_stalls",
    "rendezvous_caps",
    "overlap_ratio",
    "hardware_threads",
    "answers",
    "answer_latency_p50",
    "answer_latency_p95",
    "answer_latency_p99",
    "route_hops_p50",
    "route_hops_p99",
    "rewrite_depth_p99",
    "stall_wall_seconds",
    "stall_p99_us",
    "trace_events",
]

REQUIRED_PROVENANCE = [
    "git_sha",
    "build_type",
    "hardware_threads",
    "rjoin_shards",
    "rjoin_churn",
    "rjoin_trace",
    "rjoin_scale",
]

# Categories every traced bench run emits. RIC wire categories
# (ric_request/ric_reply) are not required: the benches reuse piggy-backed
# RIC info, so direct-exchange round trips only occur in dedicated runs.
REQUIRED_CATEGORIES = {"send", "route", "deliver", "rewrite", "answer"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_bench_json(path):
    with open(path) as f:
        doc = json.load(f)
    scalars = doc.get("scalars")
    if not isinstance(scalars, dict):
        fail(f"{path}: no scalars object")
    missing = [k for k in REQUIRED_SCALARS if k not in scalars]
    if missing:
        fail(f"{path}: missing scalars: {missing}")
    prov = doc.get("provenance")
    if not isinstance(prov, dict):
        fail(f"{path}: no provenance object")
    missing = [k for k in REQUIRED_PROVENANCE if k not in prov]
    if missing:
        fail(f"{path}: missing provenance keys: {missing}")
    print(f"check_trace: {os.path.basename(path)}: "
          f"{len(scalars)} scalars, provenance ok "
          f"(sha={prov['git_sha'][:12]}, shards={prov['rjoin_shards']}, "
          f"trace={prov['rjoin_trace']})")
    return doc


def check_trace_json(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents array")
    cats = set()
    for e in events:
        if not isinstance(e, dict):
            fail(f"{path}: non-object trace event")
        if e.get("ph") == "M":
            continue  # metadata
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event missing '{key}': {e}")
        cats.add(e["cat"])
    print(f"check_trace: {os.path.basename(path)}: "
          f"{len(events)} events, categories: {sorted(cats)}")
    return cats


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_dir")
    ap.add_argument("--shards", type=int, default=0,
                    help="shard count the run used (0 = serial)")
    args = ap.parse_args()

    bench_files = sorted(glob.glob(os.path.join(args.bench_dir,
                                                "BENCH_*.json")))
    trace_files = sorted(glob.glob(os.path.join(args.bench_dir,
                                                "TRACE_*.json")))
    if not bench_files:
        fail(f"no BENCH_*.json in {args.bench_dir}")
    if not trace_files:
        fail(f"no TRACE_*.json in {args.bench_dir} (was RJOIN_TRACE set?)")

    for path in bench_files:
        doc = check_bench_json(path)
        if doc["scalars"]["answers"] > 0 and \
                doc["scalars"]["answer_latency_p99"] <= 0:
            fail(f"{path}: answers delivered but answer_latency_p99 == 0")

    cats = set()
    for path in trace_files:
        cats |= check_trace_json(path)

    required = set(REQUIRED_CATEGORIES)
    if args.shards > 0:
        required.add("rendezvous")
    missing = required - cats
    if missing:
        fail(f"traces missing categories: {sorted(missing)} "
             f"(have {sorted(cats)})")

    print(f"check_trace: OK ({len(bench_files)} bench files, "
          f"{len(trace_files)} traces)")


if __name__ == "__main__":
    main()
