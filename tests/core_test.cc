#include <gtest/gtest.h>

#include "core/interner.h"
#include "core/key.h"
#include "core/planner.h"
#include "core/residual.h"
#include "core/ric.h"
#include "sql/parser.h"
#include "sql/rewriter.h"

namespace rjoin::core {
namespace {

// ------------------------------------------------------------------ Keys --

TEST(KeyTest, AttributeAndValueLevels) {
  const IndexKey a = AttributeKey("R", "A");
  EXPECT_EQ(a.level, Level::kAttribute);
  const IndexKey v = ValueKey("R", "A", sql::Value::Int(5));
  EXPECT_EQ(v.level, Level::kValue);
  EXPECT_NE(a.text, v.text);
}

TEST(KeyTest, SeparatorPreventsConcatenationCollisions) {
  // "RA"+"B" must differ from "R"+"AB".
  EXPECT_NE(AttributeKey("RA", "B").text, AttributeKey("R", "AB").text);
  EXPECT_NE(ValueKey("R", "A", sql::Value::Int(12)).text,
            ValueKey("R", "A1", sql::Value::Int(2)).text);
}

TEST(KeyTest, KeyRingIdIsDeterministic) {
  EXPECT_EQ(KeyRingId(AttributeKey("R", "A")),
            KeyRingId(AttributeKey("R", "A")));
  EXPECT_NE(KeyRingId(AttributeKey("R", "A")),
            KeyRingId(AttributeKey("R", "B")));
}

TEST(KeyTest, StringValuesSupported) {
  const IndexKey k = ValueKey("R", "A", sql::Value::Str("hello"));
  EXPECT_EQ(k.level, Level::kValue);
  EXPECT_NE(KeyRingId(k),
            KeyRingId(ValueKey("R", "A", sql::Value::Str("world"))));
}

// ----------------------------------------------------------- RateTracker --
// Keys are interned ids; the tracker never sees text, so tests use small
// literal ids.

constexpr KeyId kKey = 1;
constexpr KeyId kOtherKey = 2;

TEST(RateTrackerTest, CountsWithinEpoch) {
  RateTracker rt(100);
  rt.Record(kKey, 10);
  rt.Record(kKey, 20);
  rt.Record(kKey, 99);
  EXPECT_EQ(rt.Rate(kKey, 99), 3u);
  EXPECT_EQ(rt.Rate(kOtherKey, 99), 0u);
}

TEST(RateTrackerTest, PreviousEpochCarriesOver) {
  RateTracker rt(100);
  rt.Record(kKey, 50);
  rt.Record(kKey, 60);
  rt.Record(kKey, 150);  // Next epoch.
  EXPECT_EQ(rt.Rate(kKey, 150), 3u);  // current(1) + previous(2)
}

TEST(RateTrackerTest, OldEpochsForgotten) {
  RateTracker rt(100);
  rt.Record(kKey, 50);
  EXPECT_EQ(rt.Rate(kKey, 350), 0u);  // Two epochs later: stale.
}

TEST(RateTrackerTest, RateIsConstQuery) {
  RateTracker rt(100);
  rt.Record(kKey, 10);
  const RateTracker& c = rt;
  EXPECT_EQ(c.Rate(kKey, 10), 1u);
  EXPECT_EQ(c.Rate(kKey, 10), 1u);  // Idempotent.
}

// -------------------------------------------------------- CandidateTable --

TEST(CandidateTableTest, MergeKeepsNewest) {
  CandidateTable ct;
  ct.Merge({.key = kKey, .node = 1, .rate = 5, .timestamp = 100});
  ct.Merge({.key = kKey, .node = 2, .rate = 9, .timestamp = 50});  // Older.
  ASSERT_NE(ct.Find(kKey), nullptr);
  EXPECT_EQ(ct.Find(kKey)->rate, 5u);
  // Newer: replaces.
  ct.Merge({.key = kKey, .node = 3, .rate = 7, .timestamp = 200});
  EXPECT_EQ(ct.Find(kKey)->rate, 7u);
  EXPECT_EQ(ct.Find(kKey)->node, 3u);
}

TEST(CandidateTableTest, Freshness) {
  CandidateTable ct;
  ct.Merge({.key = kKey, .node = 1, .rate = 5, .timestamp = 100});
  EXPECT_TRUE(ct.IsFresh(kKey, 150, 60));
  EXPECT_FALSE(ct.IsFresh(kKey, 200, 60));
  EXPECT_FALSE(ct.IsFresh(kOtherKey, 100, 60));
}

// ------------------------------------------------- InputQuery / Residual --

class ResidualTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation(sql::Schema("R", {"A", "B"})).ok());
    ASSERT_TRUE(catalog_.AddRelation(sql::Schema("S", {"A", "B"})).ok());
    ASSERT_TRUE(catalog_.AddRelation(sql::Schema("P", {"B", "C"})).ok());
  }

  InputQueryPtr Compile(const std::string& text, uint64_t ins_time = 0) {
    auto spec = sql::Parser::Parse(text);
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto q = InputQuery::Create(1, 0, ins_time, *spec, &catalog_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  sql::Catalog catalog_;
};

TEST_F(ResidualTest, CreateRejectsUnknownRelation) {
  auto spec = sql::Parser::Parse("select X.A from X,R where X.A=R.A");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(InputQuery::Create(1, 0, 0, *spec, &catalog_).ok());
}

TEST_F(ResidualTest, CreateRejectsSelfJoin) {
  auto spec = sql::Parser::Parse("select R.A from R,R where R.A=R.B");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(InputQuery::Create(1, 0, 0, *spec, &catalog_).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(ResidualTest, CreateRejectsCartesianProduct) {
  auto spec = sql::Parser::Parse("select R.A, S.A from R,S");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(InputQuery::Create(1, 0, 0, *spec, &catalog_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ResidualTest, CreateRejectsUncoveredRelation) {
  auto spec = sql::Parser::Parse("select R.A from R,S,P where R.A=S.A");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(InputQuery::Create(1, 0, 0, *spec, &catalog_).ok());
}

TEST_F(ResidualTest, BindChainCompletes) {
  auto q = Compile("select R.B, S.B from R,S,P where R.A=S.A and S.B=P.B");
  Residual r0(q);
  EXPECT_TRUE(r0.IsInputQuery());
  EXPECT_FALSE(r0.IsComplete());

  auto tr = sql::MakeTuple("R", {sql::Value::Int(3), sql::Value::Int(5)}, 1,
                           1, 1);
  ASSERT_TRUE(r0.Matches(0, *tr));
  Residual r1 = r0.Bind(0, tr);
  EXPECT_EQ(r1.num_bound(), 1);

  // S tuple must now satisfy S.A = 3 (implied selection from R).
  auto bad_s = sql::MakeTuple("S", {sql::Value::Int(4), sql::Value::Int(7)},
                              2, 2, 2);
  EXPECT_FALSE(r1.Matches(1, *bad_s));
  auto ts = sql::MakeTuple("S", {sql::Value::Int(3), sql::Value::Int(7)}, 2,
                           2, 2);
  ASSERT_TRUE(r1.Matches(1, *ts));
  Residual r2 = r1.Bind(1, ts);

  auto tp = sql::MakeTuple("P", {sql::Value::Int(7), sql::Value::Int(9)}, 3,
                           3, 3);
  ASSERT_TRUE(r2.Matches(2, *tp));
  Residual r3 = r2.Bind(2, tp);
  ASSERT_TRUE(r3.IsComplete());
  auto row = r3.ExtractAnswer();
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], sql::Value::Int(5));
  EXPECT_EQ(row[1], sql::Value::Int(7));
}

TEST_F(ResidualTest, ToRewrittenQueryAgreesWithReferenceRewriter) {
  auto q = Compile("select R.B, S.B from R,S,P where R.A=S.A and S.B=P.B");
  sql::Rewriter reference(&catalog_);

  auto tr = sql::MakeTuple("R", {sql::Value::Int(3), sql::Value::Int(5)}, 1,
                           1, 1);
  Residual r1 = Residual(q).Bind(0, tr);
  auto ref1 = reference.Rewrite(q->spec(), *tr);
  ASSERT_TRUE(ref1.ok());
  // Same relations, same select constants, same implied selections.
  EXPECT_EQ(r1.ToRewrittenQuery().relations, ref1->relations);
  EXPECT_EQ(r1.ToRewrittenQuery().joins.size(), ref1->joins.size());
  EXPECT_EQ(r1.ToRewrittenQuery().selections.size(),
            ref1->selections.size());

  auto ts = sql::MakeTuple("S", {sql::Value::Int(3), sql::Value::Int(7)}, 2,
                           2, 2);
  Residual r2 = r1.Bind(1, ts);
  auto ref2 = reference.Rewrite(*ref1, *ts);
  ASSERT_TRUE(ref2.ok());
  EXPECT_EQ(r2.ToRewrittenQuery().relations, ref2->relations);
  EXPECT_EQ(r2.ToRewrittenQuery().selections.size(),
            ref2->selections.size());
}

TEST_F(ResidualTest, WindowAdmitsSliding) {
  auto q = Compile(
      "select R.B from R,S where R.A=S.A WINDOW 10 TIME");
  Residual r0(q);
  auto t1 = sql::MakeTuple("R", {sql::Value::Int(1), sql::Value::Int(2)},
                           /*pub=*/100, 1, 1);
  ASSERT_TRUE(r0.WindowAdmits(0, *t1));  // First binding always admitted.
  Residual r1 = r0.Bind(0, t1);
  auto in_window = sql::MakeTuple(
      "S", {sql::Value::Int(1), sql::Value::Int(3)}, /*pub=*/109, 2, 2);
  auto out_of_window = sql::MakeTuple(
      "S", {sql::Value::Int(1), sql::Value::Int(3)}, /*pub=*/110, 3, 3);
  EXPECT_TRUE(r1.WindowAdmits(1, *in_window));    // 109-100+1 = 10 <= 10
  EXPECT_FALSE(r1.WindowAdmits(1, *out_of_window));  // 110-100+1 = 11 > 10
}

TEST_F(ResidualTest, WindowAdmitsOutOfOrderArrival) {
  auto q = Compile("select R.B from R,S where R.A=S.A WINDOW 10 TIME");
  auto late = sql::MakeTuple("R", {sql::Value::Int(1), sql::Value::Int(2)},
                             /*pub=*/100, 1, 1);
  Residual r1 = Residual(q).Bind(0, late);
  // An older stored tuple: window is measured between the extremes.
  auto older = sql::MakeTuple("S", {sql::Value::Int(1), sql::Value::Int(3)},
                              /*pub=*/95, 2, 2);
  EXPECT_TRUE(r1.WindowAdmits(1, *older));
  auto too_old = sql::MakeTuple("S", {sql::Value::Int(1), sql::Value::Int(3)},
                                /*pub=*/89, 3, 3);
  EXPECT_FALSE(r1.WindowAdmits(1, *too_old));
}

TEST_F(ResidualTest, ContentFingerprintIdentifiesEquivalentRewrites) {
  auto q = Compile("select R.B from R,S where R.A=S.A");
  // Two R tuples that agree on every referenced attribute (A and B).
  auto t1 = sql::MakeTuple("R", {sql::Value::Int(1), sql::Value::Int(2)}, 1,
                           1, 1);
  auto t2 = sql::MakeTuple("R", {sql::Value::Int(1), sql::Value::Int(2)}, 5,
                           5, 2);
  EXPECT_EQ(Residual(q).Bind(0, t1).ContentFingerprint(),
            Residual(q).Bind(0, t2).ContentFingerprint());
  auto t3 = sql::MakeTuple("R", {sql::Value::Int(1), sql::Value::Int(9)}, 1,
                           1, 3);
  EXPECT_NE(Residual(q).Bind(0, t1).ContentFingerprint(),
            Residual(q).Bind(0, t3).ContentFingerprint());
}

// --------------------------------------------------------------- Planner --
// Candidates come back as interned ids; level/text resolve through the
// interner the candidates were interned into.

class PlannerTest : public ResidualTest {
 protected:
  KeyInterner& in_ = KeyInterner::Global();
};

TEST_F(PlannerTest, InputQueryCandidatesAreAttributeLevel) {
  auto q = Compile("select R.B from R,S,P where R.A=S.A and S.B=P.B");
  auto cands = IndexingCandidates(Residual(q));
  ASSERT_EQ(cands.size(), 4u);  // R.A, S.A, S.B, P.B
  for (KeyId c : cands) EXPECT_EQ(in_.level(c), Level::kAttribute);
  EXPECT_EQ(in_.text(cands[0]), AttributeKey("R", "A").text);
  EXPECT_EQ(in_.text(cands[1]), AttributeKey("S", "A").text);
}

TEST_F(PlannerTest, RewrittenCandidatesValuePreferredByDefault) {
  auto q = Compile("select R.B from R,S,P where R.A=S.A and S.B=P.B");
  auto tr = sql::MakeTuple("R", {sql::Value::Int(3), sql::Value::Int(5)}, 1,
                           1, 1);
  auto cands = IndexingCandidates(Residual(q).Bind(0, tr));
  // Section 3 default: only the implied value triple S.A=3 — attribute
  // pairs stay out when a value-level option exists.
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(in_.level(cands[0]), Level::kValue);
  EXPECT_EQ(in_.text(cands[0]), ValueKey("S", "A", sql::Value::Int(3)).text);
}

TEST_F(PlannerTest, RewrittenCandidatesSection6IncludesAttributePairs) {
  auto q = Compile("select R.B from R,S,P where R.A=S.A and S.B=P.B");
  auto tr = sql::MakeTuple("R", {sql::Value::Int(3), sql::Value::Int(5)}, 1,
                           1, 1);
  auto cands = IndexingCandidates(Residual(q).Bind(0, tr),
                                  RewriteIndexLevels::kIncludeAttribute);
  // Implied triple S.A=3 first, then open-join attribute pairs S.B / P.B.
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_EQ(in_.level(cands[0]), Level::kValue);
  EXPECT_EQ(in_.text(cands[0]), ValueKey("S", "A", sql::Value::Int(3)).text);
  EXPECT_EQ(in_.level(cands[1]), Level::kAttribute);
  EXPECT_EQ(in_.level(cands[2]), Level::kAttribute);
}

TEST_F(PlannerTest, AttributeFallbackWhenNoValueCandidate) {
  // Binding P leaves join R.A=S.A fully open: no value triples exist, so
  // attribute pairs must be offered even under kValuePreferred.
  auto q = Compile("select R.B from R,S,P where R.A=S.A and S.B=P.B");
  auto tp = sql::MakeTuple("P", {sql::Value::Int(6), sql::Value::Int(9)}, 1,
                           1, 1);
  auto cands = IndexingCandidates(Residual(q).Bind(2, tp));
  // Implied triple S.B=6 (from S.B=P.B) plus... S has a value candidate,
  // so value-preferred stops there.
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(in_.text(cands[0]), ValueKey("S", "B", sql::Value::Int(6)).text);

  // A residual where the only unbound relations are joined to each other:
  // R,S unbound with R.A=S.A and no implied selections. Construct via a
  // query whose third relation connects by selection only.
  auto q2 = Compile("select R.B from R,S,P where R.A=S.A and P.B=7");
  auto tp2 = sql::MakeTuple("P", {sql::Value::Int(1), sql::Value::Int(7)}, 1,
                            1, 1);
  Residual r2 = Residual(q2).Bind(2, tp2);
  auto cands2 = IndexingCandidates(r2);
  ASSERT_EQ(cands2.size(), 2u);  // Attribute pairs R.A and S.A.
  EXPECT_EQ(in_.level(cands2[0]), Level::kAttribute);
  EXPECT_EQ(in_.level(cands2[1]), Level::kAttribute);
}

TEST_F(PlannerTest, ExplicitSelectionBecomesValueCandidate) {
  auto q = Compile("select R.B from R,S where R.A=S.A and S.B=42");
  auto tr = sql::MakeTuple("R", {sql::Value::Int(3), sql::Value::Int(5)}, 1,
                           1, 1);
  auto cands = IndexingCandidates(Residual(q).Bind(0, tr));
  // Both the implied S.A=3 and the explicit S.B=42 triples.
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(in_.text(cands[0]), ValueKey("S", "A", sql::Value::Int(3)).text);
  EXPECT_EQ(in_.text(cands[1]), ValueKey("S", "B", sql::Value::Int(42)).text);
}

TEST_F(PlannerTest, SingleRelationNoPredicatesFallsBack) {
  auto q = Compile("select R.A from R");
  auto cands = IndexingCandidates(Residual(q));
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(in_.text(cands[0]), AttributeKey("R", "A").text);
}

TEST_F(PlannerTest, PolicyNamesAreDistinct) {
  EXPECT_STRNE(PlannerPolicyName(PlannerPolicy::kRic),
               PlannerPolicyName(PlannerPolicy::kWorst));
  EXPECT_STRNE(PlannerPolicyName(PlannerPolicy::kRandom),
               PlannerPolicyName(PlannerPolicy::kFirstInClause));
}

}  // namespace
}  // namespace rjoin::core
