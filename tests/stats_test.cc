#include <gtest/gtest.h>

#include <sstream>

#include "stats/distribution.h"
#include "stats/metrics.h"
#include "stats/reporter.h"

namespace rjoin::stats {
namespace {

TEST(MetricsTest, TrafficAccumulates) {
  MetricsRegistry m(4);
  m.AddTraffic(0);
  m.AddTraffic(0, 2, /*ric=*/true);
  m.AddTraffic(3);
  EXPECT_EQ(m.total_messages(), 4u);
  EXPECT_EQ(m.total_ric_messages(), 2u);
  EXPECT_EQ(m.node(0).messages_sent, 3u);
  EXPECT_EQ(m.node(0).ric_messages_sent, 2u);
  EXPECT_EQ(m.node(3).messages_sent, 1u);
}

TEST(MetricsTest, StorageCurrentTracksRemovals) {
  MetricsRegistry m(2);
  m.AddStore(1);
  m.AddStore(1);
  m.RemoveStore(1);
  EXPECT_EQ(m.node(1).storage_total, 2u);
  EXPECT_EQ(m.node(1).storage_current, 1);
  EXPECT_EQ(m.total_storage(), 2u);
}

TEST(MetricsTest, ResizeKeepsCounts) {
  MetricsRegistry m(1);
  m.AddQpl(0, 5);
  m.Resize(3);
  EXPECT_EQ(m.node(0).qpl, 5u);
  EXPECT_EQ(m.num_nodes(), 3u);
}

TEST(MetricsTest, ResetZeroesEverything) {
  MetricsRegistry m(2);
  m.AddTraffic(0);
  m.AddQpl(1);
  m.AddStore(1);
  m.AddAnswer();
  m.ResetAll();
  EXPECT_EQ(m.total_messages(), 0u);
  EXPECT_EQ(m.total_qpl(), 0u);
  EXPECT_EQ(m.total_storage(), 0u);
  EXPECT_EQ(m.answers_delivered(), 0u);
  EXPECT_EQ(m.node(1).qpl, 0u);
}

TEST(DistributionTest, RankedSortsDescending) {
  auto d = MakeRanked({3, 9, 1, 7});
  EXPECT_EQ(d.sorted_desc, (std::vector<uint64_t>{9, 7, 3, 1}));
  EXPECT_EQ(d.max(), 9u);
  EXPECT_EQ(d.total(), 20u);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(DistributionTest, ParticipantsCountsNonZero) {
  auto d = MakeRanked({5, 0, 0, 2, 0});
  EXPECT_EQ(d.participants(), 2u);
}

TEST(DistributionTest, GiniZeroWhenBalanced) {
  auto d = MakeRanked({4, 4, 4, 4});
  EXPECT_NEAR(d.gini(), 0.0, 1e-9);
}

TEST(DistributionTest, GiniEmptyDistributionIsZero) {
  auto d = MakeRanked({});
  EXPECT_DOUBLE_EQ(d.gini(), 0.0);
}

TEST(DistributionTest, GiniSingleNodeIsZero) {
  auto d = MakeRanked({42});
  EXPECT_NEAR(d.gini(), 0.0, 1e-9);
}

TEST(DistributionTest, GiniAllZeroLoadsIsZero) {
  auto d = MakeRanked({0, 0, 0});
  EXPECT_DOUBLE_EQ(d.gini(), 0.0);
}

TEST(DistributionTest, GiniPerfectlyUniformLargePopulation) {
  std::vector<uint64_t> loads(1000, 7);
  auto d = MakeRanked(loads);
  EXPECT_NEAR(d.gini(), 0.0, 1e-9);
}

TEST(DistributionTest, GiniHighWhenConcentrated) {
  std::vector<uint64_t> loads(100, 0);
  loads[0] = 1000;
  auto d = MakeRanked(loads);
  EXPECT_GT(d.gini(), 0.95);
  EXPECT_LE(d.gini(), 1.0);
}

TEST(DistributionTest, GiniOrdersByImbalance) {
  auto balanced = MakeRanked({10, 10, 10, 10});
  auto mild = MakeRanked({16, 12, 8, 4});
  auto extreme = MakeRanked({37, 1, 1, 1});
  EXPECT_LT(balanced.gini(), mild.gini());
  EXPECT_LT(mild.gini(), extreme.gini());
}

TEST(DistributionTest, AtRankBeyondEndIsZero) {
  auto d = MakeRanked({5});
  EXPECT_EQ(d.at_rank(0), 5u);
  EXPECT_EQ(d.at_rank(9), 0u);
}

TEST(DistributionTest, SampleRanksSpansRange) {
  std::vector<uint64_t> loads;
  for (int i = 100; i > 0; --i) loads.push_back(static_cast<uint64_t>(i));
  auto d = MakeRanked(loads);
  auto samples = SampleRanks(d, 5);
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_EQ(samples.front(), 100u);  // Rank 0: the max.
  EXPECT_EQ(samples.back(), 1u);     // Last rank: the min.
}

TEST(DistributionTest, SampleRanksClampsToPopulation) {
  // Fewer nodes than requested points: one sample per node, no repeats.
  auto d = MakeRanked({9, 5, 2});
  auto samples = SampleRanks(d, 10);
  EXPECT_EQ(samples, (std::vector<uint64_t>{9, 5, 2}));
}

TEST(DistributionTest, SampleRanksSingleNode) {
  auto d = MakeRanked({7});
  auto samples = SampleRanks(d, 10);
  EXPECT_EQ(samples, (std::vector<uint64_t>{7}));
}

TEST(ReporterTest, SampleRankGridNeverRepeatsARank) {
  for (size_t max_nodes : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                           size_t{9}, size_t{10}, size_t{11}, size_t{100}}) {
    auto ranks = SampleRankGrid(max_nodes, 10);
    EXPECT_EQ(ranks.size(), std::min<size_t>(10, max_nodes));
    for (size_t i = 1; i < ranks.size(); ++i) {
      EXPECT_LT(ranks[i - 1], ranks[i])
          << "duplicate/unordered rank with max_nodes=" << max_nodes;
    }
    if (!ranks.empty()) {
      EXPECT_EQ(ranks.front(), 0u);
      EXPECT_EQ(ranks.back(), max_nodes - 1);
    }
  }
}

TEST(ReporterTest, SampleRankGridEmptyEdges) {
  EXPECT_TRUE(SampleRankGrid(0, 10).empty());
  EXPECT_TRUE(SampleRankGrid(10, 0).empty());
  EXPECT_EQ(SampleRankGrid(1, 10), (std::vector<size_t>{0}));
}

TEST(ReporterTest, TablePrintsAllSeries) {
  TableReporter t("My Figure", "x");
  t.set_x({1, 2});
  t.AddSeries({"alpha", {10, 20}});
  t.AddSeries({"beta", {30, 40}});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Figure"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("40.000"), std::string::npos);
}

TEST(ReporterTest, RankedFigurePrintsParticipants) {
  std::ostringstream os;
  PrintRankedFigure(os, "Loads", {"run1"}, {MakeRanked({5, 3, 0, 0})}, 4);
  const std::string out = os.str();
  EXPECT_NE(out.find("participants"), std::string::npos);
  EXPECT_NE(out.find("Loads"), std::string::npos);
}

}  // namespace
}  // namespace rjoin::stats
