// Tests of the interned key-id plane: KeyInterner identity/lookup
// semantics, concurrent intern/lookup (run under TSan in CI), the
// KeyIdMap flat container, ProjectionSet fingerprint semantics (including
// the deliberate collision behavior), node-state slab pooling, and
// id-stability plus bit-identical answers across shard counts.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/interner.h"
#include "core/key_map.h"
#include "core/node_state.h"
#include "core/slab_pool.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "runtime/shard_router.h"
#include "runtime/sharded_runtime.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/parser.h"
#include "sql/schema.h"
#include "stats/metrics.h"

namespace rjoin::core {
namespace {

// ------------------------------------------------------------ KeyInterner --

TEST(KeyInternerTest, InternIsIdempotent) {
  KeyInterner in;
  const KeyId a = in.Intern("alpha", Level::kAttribute);
  const KeyId b = in.Intern("beta", Level::kValue);
  EXPECT_NE(a, b);
  EXPECT_EQ(in.Intern("alpha", Level::kAttribute), a);
  EXPECT_EQ(in.Intern("beta", Level::kValue), b);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.stats().misses, 2u);
  EXPECT_EQ(in.stats().hits, 2u);
}

TEST(KeyInternerTest, EntriesRoundTrip) {
  KeyInterner in;
  const KeyId a = in.InternAttribute("R", "A");
  EXPECT_EQ(in.text(a), AttributeKey("R", "A").text);
  EXPECT_EQ(in.level(a), Level::kAttribute);
  EXPECT_EQ(in.ring_id(a), KeyRingId(AttributeKey("R", "A")));

  const KeyId v = in.InternValue("R", "A", sql::Value::Int(42));
  EXPECT_EQ(in.text(v), ValueKey("R", "A", sql::Value::Int(42)).text);
  EXPECT_EQ(in.level(v), Level::kValue);
  EXPECT_EQ(in.ring_id(v), KeyRingId(ValueKey("R", "A", sql::Value::Int(42))));

  // The boundary IndexKey form interns to the same id as the builders.
  EXPECT_EQ(in.Intern(AttributeKey("R", "A")), a);
}

TEST(KeyInternerTest, FindMissesWithoutInserting) {
  KeyInterner in;
  EXPECT_EQ(in.Find("never-interned"), kInvalidKeyId);
  EXPECT_EQ(in.size(), 0u);
  const KeyId a = in.Intern("present", Level::kAttribute);
  EXPECT_EQ(in.Find("present"), a);
}

TEST(KeyInternerTest, SameTextAtBothLevelsStaysDistinct) {
  // A sharded attribute key's text can equal a value key's text: with
  // shard suffix "#3", AttributeKey(R, A)+shard 3 and ValueKey(R, A, "#3")
  // concatenate identically. Identity is the (text, level) pair, so the
  // two intern to distinct ids that share a ring position — exactly the
  // seed's IndexKey{text, level} semantics.
  KeyInterner in;
  const KeyId attr = in.WithShard(in.InternAttribute("R", "A"), 3);
  const KeyId value = in.InternValue("R", "A", sql::Value::Str("#3"));
  ASSERT_EQ(in.text(attr), in.text(value));
  EXPECT_NE(attr, value);
  EXPECT_EQ(in.level(attr), Level::kAttribute);
  EXPECT_EQ(in.level(value), Level::kValue);
  EXPECT_EQ(in.ring_id(attr), in.ring_id(value));
  EXPECT_EQ(in.Find(in.text(attr), Level::kAttribute), attr);
  EXPECT_EQ(in.Find(in.text(value), Level::kValue), value);
}

TEST(KeyInternerTest, WithShardMatchesBoundaryForm) {
  KeyInterner in;
  const KeyId base = in.InternAttribute("R", "A");
  EXPECT_EQ(in.WithShard(base, 0), base);
  const KeyId s3 = in.WithShard(base, 3);
  EXPECT_EQ(in.text(s3), ShardedAttributeKey("R", "A", 3).text);
  EXPECT_EQ(in.level(s3), Level::kAttribute);
}

TEST(KeyInternerTest, SurvivesIndexResizes) {
  // Push well past the initial 1024-slot index so reads span resizes.
  KeyInterner in;
  std::vector<KeyId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(in.Intern("key-" + std::to_string(i), Level::kValue));
  }
  EXPECT_EQ(in.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(in.Find("key-" + std::to_string(i)), ids[i]);
    EXPECT_EQ(in.text(ids[i]), "key-" + std::to_string(i));
  }
}

// The concurrency shape the sharded runtime produces: many threads
// interning overlapping key sets (mostly hits) while also looking up
// entries interned by other threads. Run under TSan in CI.
TEST(KeyInternerTest, ConcurrentInternAndLookupAgree) {
  KeyInterner in;
  constexpr int kThreads = 8;
  constexpr int kKeys = 2000;  // spans several index resizes
  std::vector<std::vector<KeyId>> ids(kThreads,
                                      std::vector<KeyId>(kKeys, 0));
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (int k = 0; k < kKeys; ++k) {
        const std::string text = "shared-" + std::to_string(k);
        const KeyId id = in.Intern(text, Level::kValue);
        ids[t][k] = id;
        // Entry fields must be fully visible through the published id.
        EXPECT_EQ(in.text(id), text);
        EXPECT_EQ(in.Find(text), id);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every thread resolved every text to the same id.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]);
  }
  EXPECT_EQ(in.size(), static_cast<uint32_t>(kKeys));
}

// The churn shape: while worker-like threads keep interning/looking up the
// steady-state key population, a "churn" thread interns waves of brand-new
// keys (the joiner's re-sharded attribute keys and fresh value keys churn
// traces produce) and immediately resolves them. Mixes first-sight inserts
// with concurrent hits across index resizes. Run under TSan in CI.
TEST(KeyInternerTest, ChurnInterleavedInternAndLookupStress) {
  KeyInterner in;
  constexpr int kWorkers = 6;
  constexpr int kSteadyKeys = 600;
  constexpr int kChurnWaves = 40;
  constexpr int kKeysPerWave = 50;
  std::atomic<int> ready{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kWorkers + 1) {
      }
      uint64_t rounds = 0;
      // At least one full round regardless of scheduling (a single-core
      // host can let the churn thread finish first).
      do {
        for (int k = 0; k < kSteadyKeys; ++k) {
          const std::string text = "steady-" + std::to_string(k);
          const KeyId id = in.Intern(text, Level::kValue);
          EXPECT_EQ(in.Find(text, Level::kValue), id);
          EXPECT_EQ(in.text(id), text);
        }
        ++rounds;
      } while (!stop.load(std::memory_order_acquire));
      EXPECT_GT(rounds, 0u) << "worker " << t << " never completed a round";
    });
  }
  std::thread churn([&] {
    ready.fetch_add(1);
    while (ready.load() < kWorkers + 1) {
    }
    for (int wave = 0; wave < kChurnWaves; ++wave) {
      for (int k = 0; k < kKeysPerWave; ++k) {
        const std::string text =
            "churn-" + std::to_string(wave) + "-" + std::to_string(k);
        const KeyId id = in.Intern(text, Level::kAttribute);
        EXPECT_EQ(in.Find(text, Level::kAttribute), id);
        EXPECT_EQ(in.level(id), Level::kAttribute);
      }
    }
    stop.store(true, std::memory_order_release);
  });
  churn.join();
  for (auto& th : threads) th.join();
  EXPECT_EQ(in.size(),
            static_cast<uint32_t>(kSteadyKeys + kChurnWaves * kKeysPerWave));
}

// ------------------------------------------------- handoff emission order --

TEST(HandoffOrderTest, KeysInRangeSortedIgnoresMapInsertionOrder) {
  // ROADMAP note: KeyIdMap iteration order is unspecified — nothing
  // ordering-sensitive may consume it. Handoff extraction therefore sorts
  // by ring id: two maps holding the same key set in reversed insertion
  // order must emit the identical sequence.
  KeyInterner in;
  std::vector<KeyId> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(in.Intern("hk-" + std::to_string(i), Level::kValue));
  }
  KeyIdMap<uint64_t> forward, backward;
  for (size_t i = 0; i < keys.size(); ++i) forward[keys[i]] = i;
  for (size_t i = keys.size(); i-- > 0;) backward[keys[i]] = i;

  const dht::NodeId whole_low = dht::NodeId::FromKey("range-anchor");
  const auto a =
      KeysInRangeSorted(forward, in, whole_low, whole_low);  // whole ring
  const auto b = KeysInRangeSorted(backward, in, whole_low, whole_low);
  ASSERT_EQ(a.size(), keys.size());
  EXPECT_EQ(a, b) << "emission depends on KeyIdMap insertion order";
  // And the order really is ring order.
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_TRUE(in.ring_id(a[i - 1]) < in.ring_id(a[i]) ||
                (in.ring_id(a[i - 1]) == in.ring_id(a[i]) && a[i - 1] < a[i]))
        << "not sorted by ring id at " << i;
  }
}

TEST(HandoffOrderTest, KeysInRangeSortedFiltersByRingInterval) {
  KeyInterner in;
  KeyIdMap<int> m;
  std::vector<KeyId> keys;
  for (int i = 0; i < 200; ++i) {
    const KeyId id = in.Intern("fk-" + std::to_string(i), Level::kValue);
    m[id] = i;
    keys.push_back(id);
  }
  // Pick an interval (low, high] from two interned ring positions.
  std::vector<KeyId> sorted = keys;
  SortKeysByRingId(&sorted, in);
  const dht::NodeId low = in.ring_id(sorted[40]);
  const dht::NodeId high = in.ring_id(sorted[120]);
  const auto got = KeysInRangeSorted(m, in, low, high);
  // (low, high]: sorted[41..120] inclusive — 80 keys.
  ASSERT_EQ(got.size(), 80u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], sorted[41 + i]);
    EXPECT_TRUE(dht::InIntervalOpenClosed(in.ring_id(got[i]), low, high));
  }
  // Same-level same-ring-text tie break: both levels of one text emit
  // attribute first (Level::kAttribute < Level::kValue).
  KeyIdMap<int> tied;
  const KeyId attr = in.Intern("tie-text", Level::kAttribute);
  const KeyId value = in.Intern("tie-text", Level::kValue);
  tied[value] = 1;
  tied[attr] = 2;
  const dht::NodeId anchor = in.ring_id(attr);
  const auto pair = KeysInRangeSorted(tied, in, anchor, anchor);
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0], attr);
  EXPECT_EQ(pair[1], value);
}

// --------------------------------------------------------------- KeyIdMap --

TEST(KeyIdMapTest, InsertFindGrow) {
  KeyIdMap<uint64_t> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(7), nullptr);
  for (KeyId k = 0; k < 1000; ++k) m[k] = k * 3;
  EXPECT_EQ(m.size(), 1000u);
  for (KeyId k = 0; k < 1000; ++k) {
    ASSERT_NE(m.Find(k), nullptr);
    EXPECT_EQ(*m.Find(k), k * 3);
  }
  EXPECT_EQ(m.Find(1000), nullptr);

  uint64_t sum = 0;
  size_t visited = 0;
  m.ForEach([&](KeyId, uint64_t& v) {
    sum += v;
    ++visited;
  });
  EXPECT_EQ(visited, 1000u);
  EXPECT_EQ(sum, 3u * (999u * 1000u) / 2u);

  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(3), nullptr);
  m[3] = 9;  // reusable after clear
  EXPECT_EQ(*m.Find(3), 9u);
}

// ---------------------------------------------------------- ProjectionSet --

TEST(ProjectionSetTest, DeduplicatesAndGrowsPastInline) {
  ProjectionSet set;
  for (uint64_t i = 1; i <= 100; ++i) {
    EXPECT_TRUE(set.Insert(i * 0x9e3779b9u)) << i;
  }
  EXPECT_EQ(set.size(), 100u);
  for (uint64_t i = 1; i <= 100; ++i) {
    EXPECT_FALSE(set.Insert(i * 0x9e3779b9u)) << i;
  }
  EXPECT_EQ(set.size(), 100u);
}

TEST(ProjectionSetTest, ZeroFingerprintIsValid) {
  ProjectionSet set;
  EXPECT_TRUE(set.Insert(0));
  EXPECT_FALSE(set.Insert(0));
  EXPECT_EQ(set.size(), 1u);
}

// The documented collision trade-off: the set stores 64-bit fingerprints,
// not projections, so two *different* projections that fingerprint to the
// same 64-bit value are treated as one — the second is suppressed. (The
// engine's DISTINCT rule accepts this ~n^2/2^64 false-suppression rate in
// exchange for never storing projection strings.)
TEST(ProjectionSetTest, CollidingFingerprintsAreSuppressed) {
  ProjectionSet set;
  const uint64_t fp = 0xdeadbeefcafef00dull;
  EXPECT_TRUE(set.Insert(fp));   // projection A
  EXPECT_FALSE(set.Insert(fp));  // different projection B, same fingerprint
  EXPECT_EQ(set.size(), 1u);

  // The zero alias is part of the same trade: a projection hashing to 0
  // and one hashing to the alias constant collide.
  EXPECT_TRUE(set.Insert(0));
  EXPECT_FALSE(set.Insert(0x9e3779b97f4a7c15ull));
}

// ---------------------------------------------------------------- SlabPool --

TEST(SlabPoolTest, RecyclesThroughFreelist) {
  SlabPool<AlttEntry> pool(4);  // tiny slabs to force growth
  std::vector<uint32_t> idx;
  for (int i = 0; i < 10; ++i) idx.push_back(pool.Allocate());
  EXPECT_EQ(pool.allocated(), 10u);
  EXPECT_EQ(pool.live(), 10u);
  for (uint32_t i : idx) pool.Free(i);
  EXPECT_EQ(pool.live(), 0u);
  // Steady state: re-allocation reuses freed nodes, no new storage.
  for (int i = 0; i < 10; ++i) pool.Allocate();
  EXPECT_EQ(pool.allocated(), 10u);
  EXPECT_EQ(pool.live(), 10u);
}

TEST(SlabPoolTest, FreeDropsOwnedResources) {
  SlabPool<AlttEntry> pool;
  const uint32_t idx = pool.Allocate();
  TuplePool& tuples = TuplePool::Global();
  const uint64_t released_before = tuples.stats().released;
  TupleRef tuple =
      tuples.Make("R", {sql::Value::Int(1)}, 1, 1, 1);
  pool.at(idx).value = AlttEntry{std::move(tuple), 5};
  pool.Free(idx);
  EXPECT_EQ(tuples.stats().released, released_before + 1)
      << "Free must release the tuple reference back to the pool";
}

// ------------------------------------- id stability across shard counts --

struct Harness {
  explicit Harness(size_t nodes, uint32_t shards = 0, uint64_t seed = 7)
      : catalog(TestCatalog()),
        network(dht::ChordNetwork::Create(nodes, seed)),
        latency(1),
        metrics(network->num_total()),
        transport(network.get(), &simulator, &latency, &metrics,
                  Rng(seed * 31)),
        engine(EngineConfig{}, &catalog, network.get(), &transport,
               &simulator, &metrics) {
    if (shards > 0) {
      runtime = std::make_unique<runtime::ShardedRuntime>(
          runtime::ShardedRuntime::Options{shards, 1}, network->num_total(),
          &metrics);
      router = std::make_unique<runtime::ShardRouter>(runtime.get(),
                                                      seed * 31);
      transport.set_router(router.get());
      engine.AttachRuntime(runtime.get());
    }
  }

  static sql::Catalog TestCatalog() {
    sql::Catalog c;
    EXPECT_TRUE(c.AddRelation(sql::Schema("R", {"A", "B"})).ok());
    EXPECT_TRUE(c.AddRelation(sql::Schema("S", {"A", "B"})).ok());
    return c;
  }

  void Run() {
    if (runtime != nullptr) {
      runtime->Run();
    } else {
      simulator.Run();
    }
  }

  sql::Catalog catalog;
  std::unique_ptr<dht::ChordNetwork> network;
  sim::Simulator simulator;
  sim::FixedLatency latency;
  stats::MetricsRegistry metrics;
  dht::Transport transport;
  RJoinEngine engine;
  // Declared last: workers join before transport/simulator go away.
  std::unique_ptr<runtime::ShardedRuntime> runtime;
  std::unique_ptr<runtime::ShardRouter> router;
};

std::vector<sql::Value> Row(int64_t a, int64_t b) {
  return {sql::Value::Int(a), sql::Value::Int(b)};
}

/// One fixed workload: a join query plus an interleaved R/S stream.
void RunWorkload(Harness& h) {
  auto parsed = sql::Parser::Parse(
      "SELECT R.B, S.B FROM R, S WHERE R.A = S.A WINDOW 8 TUPLES");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(h.engine.SubmitQuery(0, std::move(*parsed)).ok());
  h.Run();
  for (int i = 0; i < 48; ++i) {
    const char* rel = (i % 2 == 0) ? "R" : "S";
    ASSERT_TRUE(h.engine.PublishTuple(1, rel, Row(i % 5, i)).ok());
    h.Run();
  }
}

std::vector<std::string> AnswerStrings(const RJoinEngine& engine) {
  std::vector<std::string> out;
  for (const Answer& a : engine.answers()) {
    std::string s = std::to_string(a.query_id) + "@" +
                    std::to_string(a.delivered_at) + ":";
    for (const sql::Value& v : a.row) s += v.ToKeyString() + ",";
    out.push_back(std::move(s));
  }
  return out;
}

TEST(KeyIdStabilityTest, IdsAndAnswersInvariantAcrossShardCounts) {
  // The workload's key texts, resolved through the global interner before,
  // between, and after runs at different shard counts: ids must never
  // change once assigned (append-only interner), and the engines must
  // produce bit-identical answer streams — id values never order behavior.
  KeyInterner& in = KeyInterner::Global();

  Harness serial(24, /*shards=*/0);
  RunWorkload(serial);
  const std::vector<std::string> serial_answers =
      AnswerStrings(serial.engine);
  ASSERT_FALSE(serial_answers.empty());

  std::vector<std::string> texts;
  std::vector<KeyId> ids_before;
  for (const char* attr : {"A", "B"}) {
    for (const char* rel : {"R", "S"}) {
      texts.push_back(AttributeKey(rel, attr).text);
      for (int v = 0; v < 5; ++v) {
        texts.push_back(ValueKey(rel, attr, sql::Value::Int(v)).text);
      }
    }
  }
  for (const std::string& t : texts) ids_before.push_back(in.Find(t));
  // The attribute-level keys of the workload must exist by now.
  EXPECT_NE(in.Find(AttributeKey("R", "A").text), kInvalidKeyId);

  for (uint32_t shards : {1u, 4u, 7u}) {
    Harness sharded(24, shards);
    RunWorkload(sharded);
    EXPECT_EQ(AnswerStrings(sharded.engine), serial_answers)
        << "answers diverged at S=" << shards;
    for (size_t i = 0; i < texts.size(); ++i) {
      EXPECT_EQ(in.Find(texts[i]), ids_before[i])
          << "id of '" << texts[i] << "' changed at S=" << shards;
    }
  }
}

}  // namespace
}  // namespace rjoin::core
