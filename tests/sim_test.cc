#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/latency.h"
#include "sim/simulator.h"

namespace rjoin::sim {
namespace {

// Wraps a closure in a pooled Control envelope at absolute time `when`.
core::EnvelopeRef ControlAt(core::MessagePool& pool, SimTime when,
                            std::function<void()> action) {
  core::EnvelopeRef env = pool.Acquire();
  env->time = when;
  env->task = core::MessageTask(core::Control{std::move(action)});
  return env;
}

void RunEnvelope(core::EnvelopeRef env) { core::RunControl(std::move(env)); }

TEST(EventQueueTest, OrdersByTime) {
  core::MessagePool pool;
  EventQueue q;
  std::vector<int> order;
  q.Push(ControlAt(pool, 30, [&] { order.push_back(3); }));
  q.Push(ControlAt(pool, 10, [&] { order.push_back(1); }));
  q.Push(ControlAt(pool, 20, [&] { order.push_back(2); }));
  while (!q.empty()) RunEnvelope(q.Pop());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoOnTies) {
  core::MessagePool pool;
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(ControlAt(pool, 5, [&order, i] { order.push_back(i); }));
  }
  while (!q.empty()) RunEnvelope(q.Pop());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, ClearEmpties) {
  core::MessagePool pool;
  EventQueue q;
  q.Push(ControlAt(pool, 1, [] {}));
  q.Push(ControlAt(pool, 2, [] {}));
  q.Clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PoppedEnvelopesRecycleThroughThePool) {
  core::MessagePool pool;
  EventQueue q;
  for (int round = 0; round < 100; ++round) {
    q.Push(ControlAt(pool, static_cast<SimTime>(round), [] {}));
    RunEnvelope(q.Pop());
  }
  const core::MessagePool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquired, 100u);
  // One envelope in flight at a time: the first Acquire allocates, the
  // other 99 are freelist hits — zero allocations in steady state.
  EXPECT_EQ(stats.envelopes_allocated, 1u);
  EXPECT_EQ(stats.recycled, 99u);
}

// -------------------------------------------- calendar-queue edge cases --
//
// The EventQueue is backed by a windowed calendar (sim/calendar_queue.h);
// these tests force its off-window machinery: overflow migration, window
// rebase on a past push, interleaved push/pop on the active bucket, and a
// randomized shootout against an order-stamp sort oracle.

TEST(CalendarQueueTest, FarFutureEventsMigrateFromOverflow) {
  core::MessagePool pool;
  EventQueue q;
  std::vector<int> order;
  // Spread far beyond one 1024-tick window: the tail sits in the overflow
  // heap until the cursor reaches it.
  for (int i = 9; i >= 0; --i) {
    q.Push(ControlAt(pool, static_cast<SimTime>(i) * 700,
                     [&order, i] { order.push_back(i); }));
  }
  EXPECT_EQ(q.size(), 10u);
  while (!q.empty()) RunEnvelope(q.Pop());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(CalendarQueueTest, PushBehindTheCursorRebasesAndStaysOrdered) {
  core::MessagePool pool;
  EventQueue q;
  std::vector<SimTime> popped;
  auto note = [&popped](SimTime t) { return [&popped, t] { popped.push_back(t); }; };
  q.Push(ControlAt(pool, 5000, note(5000)));
  q.Push(ControlAt(pool, 5001, note(5001)));
  RunEnvelope(q.Pop());  // cursor advances to 5000
  // A bounded run can legally schedule behind the advanced cursor: the
  // window rebases and ordering still holds.
  q.Push(ControlAt(pool, 100, note(100)));
  q.Push(ControlAt(pool, 4000, note(4000)));
  while (!q.empty()) RunEnvelope(q.Pop());
  EXPECT_EQ(popped, (std::vector<SimTime>{5000, 100, 4000, 5001}));
}

TEST(CalendarQueueTest, SameTickPushWhileDrainingKeepsFifo) {
  core::MessagePool pool;
  EventQueue q;
  std::vector<int> order;
  // Event 0 pushes two more events at its own tick while the bucket is
  // actively draining; they must run after it, in push order.
  q.Push(ControlAt(pool, 7, [&] {
    order.push_back(0);
    q.Push(ControlAt(pool, 7, [&] { order.push_back(1); }));
    q.Push(ControlAt(pool, 7, [&] { order.push_back(2); }));
  }));
  q.Push(ControlAt(pool, 7, [&] { order.push_back(3); }));
  while (!q.empty()) RunEnvelope(q.Pop());
  EXPECT_EQ(order, (std::vector<int>{0, 3, 1, 2}));
}

TEST(CalendarQueueTest, RandomizedShootoutMatchesReferenceModel) {
  core::MessagePool pool;
  EventQueue q;
  Rng rng(123);
  // Reference model: (time, push sequence) pairs; each pop must deliver the
  // model's minimum — the EventQueue contract is min-of-present with FIFO
  // on ties, regardless of which calendar bucket or overflow path served it.
  std::set<std::pair<SimTime, int>> ref;
  std::vector<std::pair<SimTime, int>> popped;
  int tag = 0;
  // Mixed regime: clustered near-term times, a far-future tail past the
  // 1024-tick window, duplicate ticks, and interleaved pops that drag the
  // window forward (later cheap pushes then force rebases).
  for (int round = 0; round < 50; ++round) {
    const int pushes = 1 + static_cast<int>(rng.NextBounded(40));
    for (int i = 0; i < pushes; ++i) {
      const uint64_t r = rng.NextBounded(100);
      const SimTime t = r < 80 ? rng.NextBounded(512)
                       : r < 95 ? 2000 + rng.NextBounded(8192)
                                : 100000 + rng.NextBounded(1000);
      const int id = tag++;
      ref.emplace(t, id);
      q.Push(ControlAt(pool, t, [&popped, t, id] {
        popped.emplace_back(t, id);
      }));
    }
    const int pops = static_cast<int>(rng.NextBounded(20));
    for (int i = 0; i < pops && !q.empty(); ++i) {
      ASSERT_EQ(q.PeekTime(), ref.begin()->first);
      RunEnvelope(q.Pop());
      ASSERT_FALSE(popped.empty());
      ASSERT_EQ(popped.back(), *ref.begin());
      ref.erase(ref.begin());
    }
  }
  while (!q.empty()) {
    RunEnvelope(q.Pop());
    ASSERT_EQ(popped.back(), *ref.begin());
    ref.erase(ref.begin());
  }
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(popped.size(), static_cast<size_t>(tag));
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator s;
  SimTime seen = 0;
  s.ScheduleAfter(7, [&] { seen = s.Now(); });
  s.Run();
  EXPECT_EQ(seen, 7u);
  EXPECT_EQ(s.Now(), 7u);
}

TEST(SimulatorTest, NestedSchedulingRuns) {
  Simulator s;
  int fired = 0;
  s.ScheduleAfter(1, [&] {
    ++fired;
    s.ScheduleAfter(1, [&] {
      ++fired;
      s.ScheduleAfter(1, [&] { ++fired; });
    });
  });
  EXPECT_EQ(s.Run(), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.Now(), 3u);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  s.ScheduleAfter(5, [&] { ++fired; });
  s.ScheduleAfter(15, [&] { ++fired; });
  s.RunUntil(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 10u);  // Clock advances even without events.
  s.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.Now(), 15u);
}

TEST(SimulatorTest, RunStepsBoundsExecution) {
  Simulator s;
  int fired = 0;
  for (int i = 0; i < 10; ++i) s.ScheduleAfter(1, [&] { ++fired; });
  EXPECT_EQ(s.RunSteps(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(s.PendingEvents(), 6u);
}

TEST(SimulatorTest, ResetDropsPending) {
  Simulator s;
  int fired = 0;
  s.ScheduleAfter(1, [&] { ++fired; });
  s.Reset();
  s.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator s;
  SimTime seen = 0;
  s.ScheduleAt(42, [&] { seen = s.Now(); });
  s.Run();
  EXPECT_EQ(seen, 42u);
}

TEST(LatencyTest, FixedIsConstant) {
  FixedLatency l(3);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(l.Delay(rng), 3u);
  EXPECT_EQ(l.max_delay(), 3u);
}

TEST(LatencyTest, UniformWithinBounds) {
  UniformLatency l(2, 9);
  Rng rng(5);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const SimTime d = l.Delay(rng);
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 9u);
    lo |= (d == 2);
    hi |= (d == 9);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
  EXPECT_EQ(l.max_delay(), 9u);
}

TEST(LatencyTest, BurstyMixesDelays) {
  BurstyLatency l(1, 100, 0.5);
  Rng rng(7);
  int bursts = 0;
  for (int i = 0; i < 1000; ++i) {
    const SimTime d = l.Delay(rng);
    EXPECT_TRUE(d == 1 || d == 100);
    if (d == 100) ++bursts;
  }
  EXPECT_GT(bursts, 300);
  EXPECT_LT(bursts, 700);
  EXPECT_EQ(l.max_delay(), 100u);
}

}  // namespace
}  // namespace rjoin::sim
