// Fault-injection battery for successor-list replication and silent-failure
// recovery (docs/failures.md): nodes CRASH — no goodbye, no handoff — while
// the tuple stream runs, the successor detects ownership at the topology
// generation bump and promotes its replica slices, and the suite asserts
// the three hard properties: (1) with replication factor r=2, killing any
// single node loses zero answers against the uncrashed centralized oracle;
// (2) the answer stream stays bit-identical for any shard count under any
// seeded FaultPlan trace; (3) a promoted owner's per-key state equals the
// state a graceful leave of the same node would have handed off.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/node_state.h"
#include "core/slab_pool.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/evaluator.h"
#include "stats/metrics.h"
#include "util/random.h"
#include "workload/churn.h"
#include "workload/experiment.h"
#include "workload/generator.h"

namespace rjoin {
namespace {

constexpr uint32_t kNilQ = core::SlabPool<core::StoredQuery>::kNil;
constexpr uint32_t kNilC = core::SlabPool<core::TupleChunk>::kNil;
constexpr uint32_t kNilA = core::SlabPool<core::AlttEntry>::kNil;

// ----------------------------------------------------- serial crashes ----

/// Minimal serial harness with a replication knob: explicit crashes between
/// publishes, oracle checks at the end (mirrors churn_runtime_test's
/// SerialHarness).
struct FaultHarness {
  explicit FaultHarness(size_t nodes, uint32_t replication, uint64_t seed = 7)
      : network(dht::ChordNetwork::Create(nodes, seed)),
        latency(1),
        metrics(network->num_total()),
        transport(network.get(), &simulator, &latency, &metrics,
                  Rng(seed * 31)),
        engine(Config(replication), &catalog, network.get(), &transport,
               &simulator, &metrics) {}

  static core::EngineConfig Config(uint32_t replication) {
    core::EngineConfig cfg;
    cfg.keep_history = true;
    cfg.replication = replication;
    return cfg;
  }

  static sql::Catalog MakeCatalog() {
    sql::Catalog c;
    EXPECT_TRUE(c.AddRelation(sql::Schema("R", {"A", "B", "C"})).ok());
    EXPECT_TRUE(c.AddRelation(sql::Schema("S", {"A", "B", "C"})).ok());
    EXPECT_TRUE(c.AddRelation(sql::Schema("P", {"A", "B", "C"})).ok());
    return c;
  }

  uint64_t Submit(dht::NodeIndex owner, const std::string& text) {
    auto id = engine.SubmitQuerySql(owner, text);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    simulator.Run();
    return *id;
  }

  void Publish(dht::NodeIndex node, const std::string& rel,
               std::vector<int64_t> ints) {
    std::vector<sql::Value> vals;
    vals.reserve(ints.size());
    for (int64_t v : ints) vals.push_back(sql::Value::Int(v));
    auto t = engine.PublishTuple(node, rel, std::move(vals));
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    simulator.Run();
  }

  void Crash(dht::NodeIndex victim, uint32_t take_successors = 0) {
    ASSERT_TRUE(
        engine.ScheduleCrash(simulator.Now(), victim, take_successors).ok());
    simulator.Run();
  }

  std::vector<std::string> OracleRows(uint64_t qid) {
    sql::CentralizedEvaluator oracle(&catalog);
    auto iq = engine.FindQuery(qid);
    EXPECT_NE(iq, nullptr);
    std::vector<std::string> rows;
    for (const auto& row :
         oracle.Evaluate(iq->spec(), iq->ins_time(), engine.history())) {
      rows.push_back(sql::AnswerRowKey(row));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  std::vector<std::string> GotRows(uint64_t qid) {
    std::vector<std::string> rows;
    for (const auto& a : engine.AnswersFor(qid)) {
      rows.push_back(sql::AnswerRowKey(a.row));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  sql::Catalog catalog = MakeCatalog();
  std::unique_ptr<dht::ChordNetwork> network;
  sim::Simulator simulator;
  sim::FixedLatency latency;
  stats::MetricsRegistry metrics;
  dht::Transport transport;
  core::RJoinEngine engine;
};

TEST(SerialCrashTest, ReplicatedCrashesLoseNothing) {
  // r=2: every slice lives at its owner and the owner's first successor.
  // Crash 11 of 16 nodes one at a time — each promotion must recover the
  // full slice, so the late matching tuple still joins completely.
  FaultHarness h(16, /*replication=*/2);
  const uint64_t q = h.Submit(0, "SELECT R.B, S.C FROM R, S WHERE R.A=S.A");
  h.Publish(1, "R", {7, 10, 11});
  h.Publish(1, "R", {8, 12, 13});

  size_t crashes = 0;
  for (dht::NodeIndex victim = 3; victim < 16 && h.network->num_alive() > 4;
       ++victim) {
    h.Crash(victim);
    EXPECT_TRUE(h.network->ValidSuccessorLists())
        << "successor lists broken after crashing node " << victim;
    ++crashes;
  }
  EXPECT_EQ(h.engine.churn_stats().crashes_applied, crashes);
  EXPECT_EQ(h.engine.churn_stats().handoff_messages, 0u)
      << "silent failures must not emit goodbye handoffs";
  EXPECT_GT(h.engine.replication_stats().replica_updates, 0u);

  h.Publish(2, "S", {7, 20, 21});
  h.Publish(2, "S", {8, 22, 23});
  EXPECT_EQ(h.GotRows(q), h.OracleRows(q));
  EXPECT_EQ(h.engine.AnswersFor(q).size(), 2u);
}

TEST(SerialCrashTest, UnreplicatedCrashStaysSoundButMayLose) {
  // r=1 (replication off): crashed state is simply gone. The engine must
  // neither crash nor invent answers — delivered rows are a subset of the
  // oracle's.
  FaultHarness h(16, /*replication=*/1);
  const uint64_t q = h.Submit(0, "SELECT R.B, S.C FROM R, S WHERE R.A=S.A");
  h.Publish(1, "R", {7, 10, 11});

  for (dht::NodeIndex victim = 3; victim < 16 && h.network->num_alive() > 4;
       ++victim) {
    h.Crash(victim);
  }
  EXPECT_EQ(h.engine.replication_stats().replica_updates, 0u);
  EXPECT_EQ(h.engine.replication_stats().promotions_emitted, 0u);

  h.Publish(2, "S", {7, 20, 21});
  const auto got = h.GotRows(q);
  const auto expected = h.OracleRows(q);
  EXPECT_TRUE(std::includes(expected.begin(), expected.end(), got.begin(),
                            got.end()))
      << "crash without replication produced rows the oracle does not have";
}

TEST(SerialCrashTest, CorrelatedCrashTakesAdjacentSuccessors) {
  FaultHarness h(16, /*replication=*/2);
  h.Publish(1, "R", {7, 10, 11});
  h.Crash(3, /*take_successors=*/2);
  EXPECT_EQ(h.engine.churn_stats().crashes_applied, 3u);
  EXPECT_EQ(h.network->num_alive(), 13u);
  EXPECT_TRUE(h.network->ValidSuccessorLists());
}

TEST(SerialCrashTest, CrashOfLastNodeIsRejected) {
  FaultHarness h(2, /*replication=*/2);
  h.Crash(0);
  EXPECT_EQ(h.engine.churn_stats().crashes_applied, 1u);
  // The survivor cannot crash: its range would be ownerless.
  h.Crash(1);
  EXPECT_EQ(h.engine.churn_stats().crashes_applied, 1u);
  EXPECT_EQ(h.engine.churn_stats().ops_rejected, 1u);
}

// ------------------------------------------ successor-list repair (dht) ----

TEST(SuccessorListRepairTest, EveryChurnOpLeavesValidLists) {
  // Regression for the graceful-leave gap: LeaveNode (and CrashNode) must
  // repair the successor lists of the departed node's predecessors, not
  // just splice the ring. Walk a seeded mixed sequence and revalidate the
  // ground truth after every single operation.
  auto network = dht::ChordNetwork::Create(32, 17);
  ASSERT_TRUE(network->ValidSuccessorLists());
  Rng rng(991);
  size_t joins = 0;
  for (int op = 0; op < 40 && network->num_alive() > 4; ++op) {
    const uint64_t pick = rng.NextBounded(3);
    const auto alive = network->AliveNodes();  // ring order, any may die
    if (pick == 0) {
      auto added = network->JoinAndSplice(
          dht::NodeId::FromKey("repair-join:" + std::to_string(joins++)),
          alive.front());
      ASSERT_TRUE(added.ok()) << added.status().ToString();
    } else {
      // Remove a random alive node, half gracefully, half by crash — both
      // paths share the splice-and-repair.
      const dht::NodeIndex victim = alive[rng.NextBounded(alive.size())];
      if (pick == 1) {
        ASSERT_TRUE(network->LeaveNode(victim).ok());
      } else {
        ASSERT_TRUE(network->CrashNode(victim).ok());
      }
    }
    ASSERT_TRUE(network->ValidSuccessorLists())
        << "op " << op << " left a stale successor list";
  }
}

// ------------------------------------------------- sharded equivalence ----

workload::ExperimentConfig BaseFailureConfig() {
  workload::ExperimentConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_queries = 100;
  cfg.num_tuples = 48;
  cfg.way = 3;
  cfg.workload.num_relations = 6;
  cfg.workload.num_attributes = 4;
  cfg.workload.num_values = 25;
  cfg.seed = 9;
  cfg.keep_history = true;  // oracle checks
  cfg.replication = 2;
  return cfg;
}

struct RunOutput {
  workload::ExperimentResult result;
  std::vector<std::string> answers;  // (query, row, time) render
  uint64_t total_messages = 0;
  uint64_t total_qpl = 0;
  size_t stored_queries = 0;
  size_t stored_tuples = 0;
  core::RJoinEngine::ChurnStats churn;
  core::RJoinEngine::ReplicationStats replication;
  std::vector<uint64_t> recovery_ticks;
  /// Per-query sorted row keys + history render, for oracle comparison.
  std::map<uint64_t, std::vector<std::string>> per_query_rows;
  std::map<uint64_t, std::vector<std::string>> oracle_rows;
};

RunOutput RunWith(workload::ExperimentConfig cfg, uint32_t shards) {
  cfg.shards = shards;
  workload::Experiment e(cfg);
  RunOutput out;
  out.result = e.Run();
  for (const core::Answer& a : e.engine().answers()) {
    out.answers.push_back(std::to_string(a.query_id) + "|" +
                          sql::AnswerRowKey(a.row) + "|" +
                          std::to_string(a.delivered_at));
    out.per_query_rows[a.query_id].push_back(sql::AnswerRowKey(a.row));
  }
  out.total_messages = e.metrics().total_messages();
  out.total_qpl = e.metrics().total_qpl();
  out.stored_queries = e.engine().CountStoredQueries();
  out.stored_tuples = e.engine().CountStoredTuples();
  out.churn = e.engine().churn_stats();
  out.replication = e.engine().replication_stats();
  out.recovery_ticks = e.engine().promotion_recovery_ticks();

  sql::CentralizedEvaluator oracle(&e.catalog());
  for (uint64_t qid = 1; qid <= cfg.num_queries; ++qid) {
    auto iq = e.engine().FindQuery(qid);
    if (iq == nullptr) continue;
    std::vector<std::string> rows;
    for (const auto& row :
         oracle.Evaluate(iq->spec(), iq->ins_time(), e.engine().history())) {
      rows.push_back(sql::AnswerRowKey(row));
    }
    std::sort(rows.begin(), rows.end());
    out.oracle_rows[qid] = std::move(rows);
  }
  for (auto& [qid, rows] : out.per_query_rows) {
    std::sort(rows.begin(), rows.end());
  }
  return out;
}

void ExpectIdentical(const RunOutput& a, const RunOutput& b) {
  // Bit-identical answer streams: same rows, same order, same virtual
  // delivery times — under crashes, promotions, and mirror traffic.
  EXPECT_EQ(a.answers, b.answers);
  EXPECT_EQ(a.result.final_snapshot.storage, b.result.final_snapshot.storage);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_qpl, b.total_qpl);
  EXPECT_EQ(a.stored_queries, b.stored_queries);
  EXPECT_EQ(a.stored_tuples, b.stored_tuples);
  EXPECT_EQ(a.churn.joins_applied, b.churn.joins_applied);
  EXPECT_EQ(a.churn.leaves_applied, b.churn.leaves_applied);
  EXPECT_EQ(a.churn.crashes_applied, b.churn.crashes_applied);
  EXPECT_EQ(a.churn.handoff_messages, b.churn.handoff_messages);
  EXPECT_EQ(a.churn.handoffs_installed, b.churn.handoffs_installed);
  EXPECT_EQ(a.churn.forwarded_messages, b.churn.forwarded_messages);
  // The replication ledger is part of the determinism surface.
  EXPECT_EQ(a.replication.replica_updates, b.replication.replica_updates);
  EXPECT_EQ(a.replication.replica_keys, b.replication.replica_keys);
  EXPECT_EQ(a.replication.replica_bytes, b.replication.replica_bytes);
  EXPECT_EQ(a.replication.promotions_emitted,
            b.replication.promotions_emitted);
  EXPECT_EQ(a.replication.promotions_installed,
            b.replication.promotions_installed);
  EXPECT_EQ(a.replication.promoted_records, b.replication.promoted_records);
  EXPECT_EQ(a.replication.answers_lost, b.replication.answers_lost);
  EXPECT_EQ(a.recovery_ticks, b.recovery_ticks);
}

void ExpectMatchesOracle(const RunOutput& out) {
  size_t checked = 0;
  for (const auto& [qid, expected] : out.oracle_rows) {
    auto it = out.per_query_rows.find(qid);
    const std::vector<std::string> got =
        it == out.per_query_rows.end() ? std::vector<std::string>{}
                                       : it->second;
    EXPECT_EQ(got, expected) << "query " << qid;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

void ExpectSubsetOfOracle(const RunOutput& out) {
  for (const auto& [qid, got] : out.per_query_rows) {
    auto it = out.oracle_rows.find(qid);
    ASSERT_NE(it, out.oracle_rows.end()) << "answers for unknown query";
    const std::vector<std::string>& expected = it->second;
    EXPECT_TRUE(std::includes(expected.begin(), expected.end(), got.begin(),
                              got.end()))
        << "query " << qid << " delivered rows the oracle does not have";
  }
}

TEST(FailureRuntimeTest, SingleKillWithR2LosesZeroAnswers) {
  // The acceptance scenario: one silent kill mid-run, replication_factor=2
  // — the delivered answers must equal the uncrashed centralized oracle's,
  // at every shard count, bit-identically.
  workload::ExperimentConfig cfg = BaseFailureConfig();
  workload::ChurnSpec churn;
  churn.spare_nodes = 1;
  workload::FaultPlan faults;
  faults.crashes = 1;
  churn.faults = faults;
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_EQ(s1.churn.crashes_applied, 1u);
  EXPECT_EQ(s1.churn.handoff_messages, 0u)
      << "a silent kill must not emit goodbye handoffs";
  EXPECT_GT(s1.replication.promotions_emitted, 0u);
  EXPECT_GT(s1.replication.replica_updates, 0u);
  EXPECT_GT(s1.answers.size(), 0u);
  ExpectMatchesOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
  ExpectIdentical(s1, RunWith(cfg, 7));  // uneven partition
}

TEST(FailureRuntimeTest, MultiKillSweepWithR2StaysComplete) {
  // Several independent (non-correlated) kills across the stream: every
  // orphaned range has a live replica, so completeness still holds.
  workload::ExperimentConfig cfg = BaseFailureConfig();
  workload::ChurnSpec churn;
  churn.spare_nodes = 6;
  workload::FaultPlan faults;
  faults.crashes = 6;
  churn.faults = faults;
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_EQ(s1.churn.crashes_applied, 6u);
  ExpectMatchesOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
  ExpectIdentical(s1, RunWith(cfg, 7));
}

TEST(FailureRuntimeTest, SingleKillWithoutReplicationIsSoundSubset) {
  // Same trace, replication off: loss is allowed (and measured by the
  // bench), but the engine must stay sound and deterministic.
  workload::ExperimentConfig cfg = BaseFailureConfig();
  cfg.replication = 1;
  workload::ChurnSpec churn;
  churn.spare_nodes = 1;
  workload::FaultPlan faults;
  faults.crashes = 1;
  churn.faults = faults;
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_EQ(s1.churn.crashes_applied, 1u);
  EXPECT_EQ(s1.replication.replica_updates, 0u);
  ExpectSubsetOfOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
}

TEST(FailureRuntimeTest, CorrelatedKillWorstCaseIsBoundedAndDeterministic) {
  // Correlated kill of a victim plus its adjacent successor defeats r=2 for
  // ranges whose both copies died: loss is expected, but it must stay a
  // strict subset (no invented or duplicated rows), the run must terminate,
  // and every shard count must agree bit-for-bit on what was lost.
  workload::ExperimentConfig cfg = BaseFailureConfig();
  workload::ChurnSpec churn;
  churn.spare_nodes = 2;
  workload::FaultPlan faults;
  faults.crashes = 2;
  faults.correlated = 1;
  churn.faults = faults;
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  // Each crash event kills the victim plus one ring successor.
  EXPECT_EQ(s1.churn.crashes_applied, 4u);
  ExpectSubsetOfOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
  ExpectIdentical(s1, RunWith(cfg, 7));
}

TEST(FailureRuntimeTest, CrashDuringHandoffRaceRecovers) {
  // Crashes pinned one tick after a join/leave: the StateHandoff is still
  // in flight when the ring changes under it. Reforwarding plus promotion
  // must still deliver the complete answer set.
  workload::ExperimentConfig cfg = BaseFailureConfig();
  workload::ChurnSpec churn;
  churn.joins = 4;
  churn.leaves = 4;
  churn.spare_nodes = 6;
  workload::FaultPlan faults;
  faults.crashes = 2;
  faults.crash_during_handoff = true;
  churn.faults = faults;
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_EQ(s1.churn.crashes_applied, 2u);
  EXPECT_GT(s1.churn.joins_applied + s1.churn.leaves_applied, 0u);
  ExpectMatchesOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
  ExpectIdentical(s1, RunWith(cfg, 7));
}

TEST(FailureRuntimeTest, CrashThenRejoinRaceRecovers) {
  // Every crash is followed by a fresh join that may land inside the
  // promoted region: the promoted owner hands the recovered slice onward.
  workload::ExperimentConfig cfg = BaseFailureConfig();
  workload::ChurnSpec churn;
  churn.spare_nodes = 3;
  workload::FaultPlan faults;
  faults.crashes = 3;
  faults.crash_then_rejoin = true;
  churn.faults = faults;
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_EQ(s1.churn.crashes_applied, 3u);
  EXPECT_EQ(s1.churn.joins_applied, 3u);  // the rejoins
  ExpectMatchesOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
}

class SeededFaultTraceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededFaultTraceTest, MixedFaultStormStaysEquivalent) {
  // Seeded mixed storm: graceful churn + silent kills interleaved, r=3.
  workload::ExperimentConfig cfg = BaseFailureConfig();
  cfg.seed = GetParam();
  cfg.num_queries = 60;
  cfg.replication = 3;
  workload::ChurnSpec churn;
  churn.joins = 6;
  churn.leaves = 4;
  churn.spare_nodes = 8;
  churn.seed = GetParam() * 131 + 7;
  workload::FaultPlan faults;
  faults.crashes = 4;
  faults.seed = GetParam() * 17 + 3;
  churn.faults = faults;
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_EQ(s1.churn.crashes_applied, 4u);
  ExpectMatchesOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
  ExpectIdentical(s1, RunWith(cfg, 7));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededFaultTraceTest,
                         ::testing::Values(21, 22, 23));

// ------------------------------------- promoted-state equality property ----

/// Digest of one node's primary per-key state: stored-query content
/// fingerprints, the stored-tuple id multiset, live ALTT (tuple, expiry)
/// pairs, and the raw rate bucket. Replica slices and DISTINCT bookkeeping
/// are deliberately excluded — they are caches, not state the paper's
/// operators observe.
std::map<core::KeyId, std::string> StateDigest(const core::RJoinEngine& eng,
                                               dht::NodeIndex n,
                                               uint64_t now) {
  const core::NodeState& st = eng.state_of(n);
  std::map<core::KeyId, std::vector<std::string>> parts;
  st.queries.ForEach([&](core::KeyId key, const core::BucketList& bucket) {
    for (uint32_t cur = bucket.head; cur != kNilQ;
         cur = st.query_pool.at(cur).next) {
      parts[key].push_back(
          "q:" + std::to_string(
                     st.query_pool.at(cur).value.residual.ContentFingerprint64()));
    }
  });
  st.tuples.ForEach([&](core::KeyId key, const core::TupleBucket& bucket) {
    for (uint32_t cur = bucket.head; cur != kNilC;
         cur = st.tuple_chunks.at(cur).next) {
      const core::TupleChunk& chunk = st.tuple_chunks.at(cur).value;
      for (uint32_t i = 0; i < chunk.count; ++i) {
        parts[key].push_back("t:" +
                             std::to_string(chunk.refs[i]->tuple_id));
      }
    }
  });
  st.altt.ForEach([&](core::KeyId key, const core::BucketList& bucket) {
    for (uint32_t cur = bucket.head; cur != kNilA;
         cur = st.altt_pool.at(cur).next) {
      const core::AlttEntry& e = st.altt_pool.at(cur).value;
      if (e.expires < now) continue;  // lazily-expired entries don't count
      parts[key].push_back("a:" + std::to_string(e.tuple->tuple_id) + "@" +
                           std::to_string(e.expires));
    }
  });
  std::vector<core::KeyId> rate_keys;
  st.rates.AppendTrackedKeys(&rate_keys);
  for (core::KeyId key : rate_keys) {
    uint64_t epoch = 0, current = 0, previous = 0;
    if (st.rates.PeekKey(key, &epoch, &current, &previous)) {
      parts[key].push_back("r:" + std::to_string(epoch) + ":" +
                           std::to_string(current) + ":" +
                           std::to_string(previous));
    }
  }
  std::map<core::KeyId, std::string> digest;
  for (auto& [key, v] : parts) {
    std::sort(v.begin(), v.end());
    std::string joined;
    for (const std::string& s : v) {
      joined += s;
      joined += '|';
    }
    if (!joined.empty()) digest[key] = std::move(joined);
  }
  return digest;
}

TEST(PromotionPropertyTest, CrashedStateEqualsGracefulHandoffState) {
  // Property: for the same seeded operation script, crashing a node under
  // r=2 leaves the network in exactly the state a graceful leave of that
  // node would have — per key: same StoredQuery set, same tuple multiset,
  // same live ALTT expiries, same rate buckets. Run the crash script and
  // its graceful twin in lockstep on a fixed virtual clock and compare
  // every alive node's digest.
  constexpr size_t kNodes = 20;
  constexpr uint64_t kStep = 48;  // drains every cascade before the next op
  FaultHarness crashed(kNodes, /*replication=*/2, /*seed=*/13);
  FaultHarness graceful(kNodes, /*replication=*/2, /*seed=*/13);

  auto both_submit = [&](dht::NodeIndex owner, const std::string& text) {
    crashed.Submit(owner, text);
    graceful.Submit(owner, text);
  };
  auto both_publish = [&](dht::NodeIndex node, const std::string& rel,
                          std::vector<int64_t> ints) {
    crashed.Publish(node, rel, ints);
    graceful.Publish(node, rel, std::move(ints));
  };
  auto advance_to = [&](uint64_t t) {
    crashed.simulator.RunUntil(t);
    graceful.simulator.RunUntil(t);
  };

  both_submit(0, "SELECT R.B, S.C FROM R, S WHERE R.A=S.A");
  both_submit(1, "SELECT R.C, P.B FROM R, P WHERE R.B=P.B");
  both_submit(2, "SELECT DISTINCT S.B, P.C FROM S, P WHERE S.A=P.A");
  advance_to(kStep);

  Rng rng(515);
  const std::vector<dht::NodeIndex> victims = {5, 9, 13};
  size_t next_victim = 0;
  const char* rels[] = {"R", "S", "P"};
  uint64_t t = kStep;
  for (int step = 0; step < 18; ++step) {
    const dht::NodeIndex publisher = rng.NextBounded(3);
    const std::string rel = rels[rng.NextBounded(3)];
    const int64_t a = 5 + static_cast<int64_t>(rng.NextBounded(4));
    const int64_t b = 20 + static_cast<int64_t>(rng.NextBounded(3));
    const int64_t c = 30 + static_cast<int64_t>(rng.NextBounded(5));
    both_publish(publisher, rel, {a, b, c});
    if (step % 6 == 5 && next_victim < victims.size()) {
      const dht::NodeIndex v = victims[next_victim++];
      ASSERT_TRUE(
          crashed.engine.ScheduleCrash(crashed.simulator.Now(), v).ok());
      ASSERT_TRUE(
          graceful.engine.ScheduleLeave(graceful.simulator.Now(), v).ok());
      crashed.simulator.Run();
      graceful.simulator.Run();
    }
    t += kStep;
    advance_to(t);
  }
  ASSERT_EQ(crashed.engine.churn_stats().crashes_applied, victims.size());
  ASSERT_EQ(graceful.engine.churn_stats().leaves_applied, victims.size());
  EXPECT_GT(crashed.engine.replication_stats().promotions_installed, 0u);

  // Same splice, same survivors.
  const auto alive = crashed.network->AliveNodes();
  ASSERT_EQ(alive, graceful.network->AliveNodes());

  for (dht::NodeIndex n : alive) {
    const auto got = StateDigest(crashed.engine, n, t);
    const auto want = StateDigest(graceful.engine, n, t);
    EXPECT_EQ(got, want) << "node " << n
                         << ": promoted state diverges from the graceful"
                            " handoff twin";
  }

  // Both twins keep their slab pools balanced through the churn.
  for (dht::NodeIndex n = 0; n < crashed.engine.num_nodes(); ++n) {
    const core::NodeState& st = crashed.engine.state_of(n);
    EXPECT_EQ(st.query_pool.acquired() - st.query_pool.released(),
              st.query_pool.live());
    EXPECT_EQ(st.altt_pool.acquired() - st.altt_pool.released(),
              st.altt_pool.live());
  }
}

}  // namespace
}  // namespace rjoin
