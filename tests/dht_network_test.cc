#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "dht/chord_network.h"
#include "dht/load_balancer.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "stats/metrics.h"
#include "util/random.h"

namespace rjoin::dht {
namespace {

// Linear-scan ground truth for successor resolution.
NodeIndex BruteForceSuccessor(const ChordNetwork& net, const NodeId& key) {
  NodeIndex best = kInvalidNode;
  NodeId best_dist = NodeId::Max();
  for (NodeIndex i : net.AliveNodes()) {
    const NodeId dist = net.node(i).id().Subtract(key);
    if (best == kInvalidNode || dist < best_dist) {
      best = i;
      best_dist = dist;
    }
  }
  return best;
}

TEST(ChordNetworkTest, CreateBuildsRequestedSize) {
  auto net = ChordNetwork::Create(64, 1);
  EXPECT_EQ(net->num_alive(), 64u);
  EXPECT_EQ(net->num_total(), 64u);
}

TEST(ChordNetworkTest, RingOrderIsConsistent) {
  auto net = ChordNetwork::Create(32, 2);
  auto order = net->AliveNodes();
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LT(net->node(order[i]).id(), net->node(order[i + 1]).id());
  }
  // Successor pointers follow ring order.
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(net->node(order[i]).successor(),
              order[(i + 1) % order.size()]);
    EXPECT_EQ(net->node(order[(i + 1) % order.size()]).predecessor(),
              order[i]);
  }
}

class SuccessorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SuccessorPropertyTest, SuccessorMatchesBruteForce) {
  auto net = ChordNetwork::Create(50, GetParam());
  Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 200; ++i) {
    const NodeId key = NodeId::FromKey("key:" + std::to_string(rng.Next()));
    EXPECT_EQ(net->SuccessorOf(key), BruteForceSuccessor(*net, key));
  }
}

TEST_P(SuccessorPropertyTest, RouteReachesResponsibleNode) {
  auto net = ChordNetwork::Create(50, GetParam());
  Rng rng(GetParam() * 17 + 3);
  const auto alive = net->AliveNodes();
  for (int i = 0; i < 100; ++i) {
    const NodeId key = NodeId::FromKey("route:" + std::to_string(rng.Next()));
    const NodeIndex src = alive[rng.NextBounded(alive.size())];
    const auto path = net->Route(src, key);
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), net->SuccessorOf(key));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuccessorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ChordNetworkTest, RouteHopsAreLogarithmic) {
  auto net = ChordNetwork::Create(256, 9);
  Rng rng(99);
  const auto alive = net->AliveNodes();
  double total_hops = 0;
  const int kLookups = 500;
  size_t max_hops = 0;
  for (int i = 0; i < kLookups; ++i) {
    const NodeId key = NodeId::FromKey("h:" + std::to_string(rng.Next()));
    const NodeIndex src = alive[rng.NextBounded(alive.size())];
    const size_t hops = net->RouteHops(src, key);
    total_hops += static_cast<double>(hops);
    max_hops = std::max(max_hops, hops);
  }
  // Chord: O(log N) w.h.p. — average should be around (1/2) log2 N, and
  // certainly far below linear.
  EXPECT_LT(total_hops / kLookups, 2.0 * std::log2(256.0));
  EXPECT_LT(max_hops, 40u);
}

TEST(ChordNetworkTest, SelfRouteIsZeroHops) {
  auto net = ChordNetwork::Create(16, 4);
  for (NodeIndex n : net->AliveNodes()) {
    // A key the node itself is responsible for: its own id.
    const auto path = net->Route(n, net->node(n).id());
    EXPECT_EQ(path.size(), 1u);
    EXPECT_EQ(path.front(), n);
  }
}

TEST(ChordNetworkTest, SingleNodeOwnsEverything) {
  auto net = ChordNetwork::Create(1, 5);
  const NodeIndex only = net->AliveNodes()[0];
  EXPECT_EQ(net->SuccessorOf(NodeId::FromKey("anything")), only);
  EXPECT_EQ(net->Route(only, NodeId::FromKey("x")).size(), 1u);
}

TEST(ChordNetworkTest, FailNodeRedistributesKeys) {
  auto net = ChordNetwork::Create(20, 6);
  const NodeId key = NodeId::FromKey("victim-key");
  const NodeIndex owner = net->SuccessorOf(key);
  ASSERT_TRUE(net->FailNode(owner).ok());
  net->Stabilize();
  const NodeIndex new_owner = net->SuccessorOf(key);
  EXPECT_NE(new_owner, owner);
  EXPECT_EQ(new_owner, BruteForceSuccessor(*net, key));
  EXPECT_EQ(net->num_alive(), 19u);
  // Routing still works from every surviving node.
  for (NodeIndex n : net->AliveNodes()) {
    EXPECT_EQ(net->Route(n, key).back(), new_owner);
  }
}

TEST(ChordNetworkTest, FailTwiceIsNotFound) {
  auto net = ChordNetwork::Create(8, 7);
  const NodeIndex victim = net->AliveNodes()[0];
  EXPECT_TRUE(net->FailNode(victim).ok());
  EXPECT_FALSE(net->FailNode(victim).ok());
}

TEST(ChordNetworkTest, LateJoinIntegratesAfterStabilize) {
  auto net = ChordNetwork::Create(16, 8);
  auto added = net->AddNode(NodeId::FromKey("late-joiner"));
  ASSERT_TRUE(added.ok());
  net->Stabilize();
  EXPECT_EQ(net->num_alive(), 17u);
  const NodeId key = NodeId::FromKey("late-joiner");  // its own id
  EXPECT_EQ(net->SuccessorOf(key), *added);
  for (NodeIndex n : net->AliveNodes()) {
    EXPECT_EQ(net->Route(n, key).back(), *added);
  }
}

TEST(ChordNetworkTest, DuplicatePositionRejected) {
  auto net = ChordNetwork::Create(4, 9);
  const NodeId taken = net->node(net->AliveNodes()[0]).id();
  EXPECT_EQ(net->AddNode(taken).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(ChordNetworkTest, SizeEstimateIsRightOrderOfMagnitude) {
  for (size_t n : {64u, 256u, 1024u}) {
    auto net = ChordNetwork::Create(n, 10);
    double est_sum = 0;
    const auto alive = net->AliveNodes();
    for (size_t i = 0; i < 16; ++i) {
      est_sum += net->EstimateSize(alive[i * alive.size() / 16]);
    }
    const double est = est_sum / 16.0;
    EXPECT_GT(est, static_cast<double>(n) / 4.0) << n;
    EXPECT_LT(est, static_cast<double>(n) * 4.0) << n;
  }
}

// ------------------------------------------------------------- Transport --

// Typed test payload: an AnswerDeliver whose query_id carries the value.
core::MessageTask TestMsg(int v) {
  core::AnswerDeliver msg;
  msg.query_id = static_cast<uint64_t>(v);
  return core::MessageTask(std::move(msg));
}

class Collector : public MessageHandler {
 public:
  void HandleMessage(NodeIndex self, core::MessageTask&& task) override {
    ASSERT_EQ(task.kind(), core::MessageKind::kAnswerDeliver);
    received.emplace_back(self, static_cast<int>(task.answer().query_id));
  }
  std::vector<std::pair<NodeIndex, int>> received;
};

class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = ChordNetwork::Create(32, 11);
    metrics_.Resize(net_->num_total());
    transport_ = std::make_unique<Transport>(net_.get(), &sim_, &latency_,
                                             &metrics_, Rng(5));
    transport_->set_handler(&collector_);
  }

  std::unique_ptr<ChordNetwork> net_;
  sim::Simulator sim_;
  sim::FixedLatency latency_{1};
  stats::MetricsRegistry metrics_;
  std::unique_ptr<Transport> transport_;
  Collector collector_;
};

TEST_F(TransportTest, SendDeliversToResponsibleNode) {
  const NodeId key = NodeId::FromKey("t-key");
  const NodeIndex src = net_->AliveNodes()[0];
  const size_t hops = transport_->Send(src, key, TestMsg(7));
  sim_.Run();
  ASSERT_EQ(collector_.received.size(), 1u);
  EXPECT_EQ(collector_.received[0].first, net_->SuccessorOf(key));
  EXPECT_EQ(collector_.received[0].second, 7);
  // Traffic: exactly `hops` transmissions were charged in total.
  EXPECT_EQ(metrics_.total_messages(), hops);
}

TEST_F(TransportTest, SendChargesEachForwarderOnce) {
  const NodeId key = NodeId::FromKey("charge-key");
  const NodeIndex src = net_->AliveNodes()[0];
  const auto path = net_->Route(src, key);
  transport_->Send(src, key, TestMsg(1));
  sim_.Run();
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_GE(metrics_.node(path[i]).messages_sent, 1u);
  }
  // The destination transmits nothing.
  if (path.size() > 1) {
    EXPECT_EQ(metrics_.node(path.back()).messages_sent, 0u);
  }
}

TEST_F(TransportTest, DeliveryDelayEqualsHopCount) {
  const NodeId key = NodeId::FromKey("delay-key");
  const NodeIndex src = net_->AliveNodes()[0];
  const size_t hops = transport_->Send(src, key, TestMsg(2));
  sim_.Run();
  EXPECT_EQ(sim_.Now(), hops);  // FixedLatency(1) per hop.
}

TEST_F(TransportTest, MultiSendDeliversAll) {
  const NodeIndex src = net_->AliveNodes()[0];
  std::vector<std::pair<NodeId, core::MessageTask>> batch;
  for (int i = 0; i < 10; ++i) {
    batch.emplace_back(NodeId::FromKey("k" + std::to_string(i)), TestMsg(i));
  }
  transport_->MultiSend(src, std::move(batch));
  sim_.Run();
  EXPECT_EQ(collector_.received.size(), 10u);
}

TEST_F(TransportTest, SendDirectIsOneMessageOneHop) {
  const NodeIndex src = net_->AliveNodes()[0];
  const NodeIndex dst = net_->AliveNodes()[5];
  transport_->SendDirect(src, dst, TestMsg(3));
  sim_.Run();
  ASSERT_EQ(collector_.received.size(), 1u);
  EXPECT_EQ(collector_.received[0].first, dst);
  EXPECT_EQ(metrics_.total_messages(), 1u);
  EXPECT_EQ(metrics_.node(src).messages_sent, 1u);
}

TEST_F(TransportTest, RicTrafficTaggedSeparately) {
  const NodeIndex src = net_->AliveNodes()[0];
  transport_->SendDirect(src, net_->AliveNodes()[1], TestMsg(4),
                         /*ric=*/true);
  transport_->SendDirect(src, net_->AliveNodes()[2], TestMsg(5),
                         /*ric=*/false);
  sim_.Run();
  EXPECT_EQ(metrics_.total_messages(), 2u);
  EXPECT_EQ(metrics_.total_ric_messages(), 1u);
}

TEST_F(TransportTest, ChargeRouteCountsWithoutDelivering) {
  const NodeId key = NodeId::FromKey("charge-only");
  const NodeIndex src = net_->AliveNodes()[3];
  const size_t hops = transport_->ChargeRoute(src, key, /*ric=*/true);
  EXPECT_EQ(metrics_.total_messages(), hops);
  EXPECT_EQ(metrics_.total_ric_messages(), hops);
  sim_.Run();
  EXPECT_TRUE(collector_.received.empty());
}

// ---------------------------------------------------------- LoadBalancer --

TEST(LoadBalancerTest, BalancedPositionsEqualizeWeight) {
  // 1000 keys, heavily skewed weights.
  std::vector<KeyLoad> items;
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    KeyLoad kl;
    kl.id = NodeId::FromKey("item:" + std::to_string(i));
    kl.weight = (i % 100 == 0) ? 1000 : 1;  // Ten hot keys.
    items.push_back(kl);
  }
  const size_t kNodes = 50;
  auto positions = IdMovementBalancer::ComputeBalancedPositions(items, kNodes);
  ASSERT_EQ(positions.size(), kNodes);
  // Positions must be unique.
  std::set<NodeId> unique(positions.begin(), positions.end());
  EXPECT_EQ(unique.size(), kNodes);

  // Build the network at those positions and measure per-node weight.
  auto net = ChordNetwork::CreateWithPositions(positions);
  std::vector<uint64_t> load(net->num_total(), 0);
  uint64_t total = 0;
  for (const auto& kl : items) {
    load[net->SuccessorOf(kl.id)] += kl.weight;
    total += kl.weight;
  }
  const double mean = static_cast<double>(total) / kNodes;
  uint64_t max_load = 0;
  for (uint64_t l : load) max_load = std::max(max_load, l);
  // A single hot key (weight 1000) cannot be split, so the best possible
  // max is ~1000; require we land close to that rather than the unbalanced
  // ~many-thousands.
  EXPECT_LT(static_cast<double>(max_load), 1000.0 + 3.0 * mean);
}

TEST(LoadBalancerTest, UniformFallbackWithoutSignal) {
  auto positions = IdMovementBalancer::ComputeBalancedPositions({}, 8);
  ASSERT_EQ(positions.size(), 8u);
  std::set<NodeId> unique(positions.begin(), positions.end());
  EXPECT_EQ(unique.size(), 8u);
  // Consecutive gaps should be near-equal (uniform spread).
  std::vector<NodeId> sorted(positions.begin(), positions.end());
  std::sort(sorted.begin(), sorted.end());
  const double expected_gap = std::pow(2.0, 160.0) / 8.0;
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    const double gap = sorted[i + 1].Subtract(sorted[i]).ToDouble();
    EXPECT_NEAR(gap, expected_gap, expected_gap * 0.01);
  }
}

}  // namespace
}  // namespace rjoin::dht
