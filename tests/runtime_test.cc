// Tests of the sharded parallel runtime: deterministic round/mailbox
// mechanics on raw runtimes, and end-to-end S=1 vs S=4 equivalence of whole
// experiments (answers, per-node message counts, load snapshots) across
// engine configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "runtime/shard_router.h"
#include "runtime/sharded_runtime.h"
#include "sql/evaluator.h"
#include "stats/metrics.h"
#include "workload/experiment.h"

namespace rjoin {
namespace {

using runtime::EventKey;
using runtime::ShardedRuntime;

// ---------------------------------------------------------------- raw runtime

struct TraceEntry {
  sim::SimTime time = 0;
  stats::NodeIndex node = 0;
  uint64_t tag = 0;

  auto operator<=>(const TraceEntry&) const = default;
};

/// Per-node trace sinks: each vector is written only by the shard owning
/// the node, so concurrent rounds never race on them.
struct Trace {
  explicit Trace(size_t nodes) : per_node(nodes) {}
  std::vector<std::vector<TraceEntry>> per_node;

  std::vector<TraceEntry> Merged() const {
    std::vector<TraceEntry> all;
    for (const auto& v : per_node) {
      all.insert(all.end(), v.begin(), v.end());
    }
    std::sort(all.begin(), all.end());
    return all;
  }
};

/// A deterministic message storm: every executed event at `node` fans out to
/// (node + 1) % nodes and (node + 3) % nodes until `depth` generations have
/// run. Cross-shard for most partitions, self-sends included when nodes are
/// few. Returns the merged execution trace.
std::vector<TraceEntry> RunStorm(uint32_t shards, size_t nodes, int depth) {
  stats::MetricsRegistry metrics(nodes);
  ShardedRuntime::Options opt;
  opt.shards = shards;
  opt.lookahead = 2;
  ShardedRuntime rt(opt, nodes, &metrics);
  Trace trace(nodes);

  // Recursive fan-out; captures rt/trace by reference (alive through Run).
  std::function<void(stats::NodeIndex, int, uint64_t)> fire =
      [&](stats::NodeIndex node, int remaining, uint64_t tag) {
        trace.per_node[node].push_back(
            TraceEntry{rt.Now(), node, tag});
        if (remaining == 0) return;
        for (stats::NodeIndex step : {1u, 3u}) {
          const stats::NodeIndex dst =
              static_cast<stats::NodeIndex>((node + step) % nodes);
          const uint64_t seq = rt.NextEmitSeq(node);
          sim::SimTime when = rt.Now() + 2;  // matches lookahead
          if (dst != node) when = std::max(when, rt.CurrentRoundEnd());
          rt.ScheduleEvent(EventKey{when, node, seq}, dst,
                           [&fire, dst, remaining, tag, step] {
                             fire(dst, remaining - 1, tag * 10 + step);
                           });
        }
      };

  for (stats::NodeIndex n = 0; n < nodes; ++n) {
    rt.ScheduleEvent(EventKey{0, n, rt.NextEmitSeq(n)}, n,
                     [&fire, n, depth] { fire(n, depth, 7); });
  }
  rt.Run();
  return trace.Merged();
}

TEST(ShardedRuntimeTest, RunDrainsAndCountsEvents) {
  stats::MetricsRegistry metrics(4);
  ShardedRuntime rt({.shards = 2, .lookahead = 1}, 4, &metrics);
  int fired = 0;
  rt.ScheduleEvent(EventKey{5, 0, 1}, 0, [&] { ++fired; });
  rt.ScheduleEvent(EventKey{9, 3, 1}, 3, [&] { ++fired; });
  EXPECT_FALSE(rt.Idle());
  EXPECT_EQ(rt.PendingEvents(), 2u);
  EXPECT_EQ(rt.Run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(rt.Idle());
  // Clock lands on the last executed event's time (Simulator semantics).
  EXPECT_EQ(rt.Now(), 9u);
  EXPECT_EQ(rt.TotalEventsExecuted(), 2u);
}

TEST(ShardedRuntimeTest, RunUntilAdvancesClockAndHoldsFutureEvents) {
  stats::MetricsRegistry metrics(2);
  ShardedRuntime rt({.shards = 2, .lookahead = 1}, 2, &metrics);
  int fired = 0;
  rt.ScheduleEvent(EventKey{3, 0, 1}, 0, [&] { ++fired; });
  rt.ScheduleEvent(EventKey{10, 1, 1}, 1, [&] { ++fired; });
  EXPECT_EQ(rt.RunUntil(7), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(rt.Now(), 7u);  // clock advances even past the drained event
  EXPECT_EQ(rt.PendingEvents(), 1u);
  EXPECT_EQ(rt.Run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(ShardedRuntimeTest, MailboxDeliversInEventKeyOrder) {
  // Three same-time messages from different sources + seqs must execute at
  // the destination in (time, src, seq) order regardless of arrival path.
  stats::MetricsRegistry metrics(8);
  ShardedRuntime rt({.shards = 4, .lookahead = 4}, 8, &metrics);
  std::vector<std::pair<stats::NodeIndex, uint64_t>> order;
  // Node 7 (shard 3) receives from nodes 0, 2, 4 (shards 0, 1, 2).
  for (stats::NodeIndex src : {4u, 0u, 2u}) {  // scheduled out of order
    for (uint64_t seq : {2u, 1u}) {
      rt.ScheduleEvent(EventKey{20, src, seq}, 7,
                       [&order, src, seq] { order.emplace_back(src, seq); });
    }
  }
  rt.Run();
  const std::vector<std::pair<stats::NodeIndex, uint64_t>> want = {
      {0, 1}, {0, 2}, {2, 1}, {2, 2}, {4, 1}, {4, 2}};
  EXPECT_EQ(order, want);
}

// ------------------------------------------------------- watermark edges

/// Storm over zero-latency links: cross-node hops take 0 ticks, so the
/// delivery rule must defer them by the 1-tick lookahead (the clamp for
/// zero-capable latency models) — identically for every partitioning.
std::vector<TraceEntry> RunZeroDelayStorm(uint32_t shards, size_t nodes,
                                          int depth) {
  stats::MetricsRegistry metrics(nodes);
  ShardedRuntime rt({.shards = shards, .lookahead = 1}, nodes, &metrics);
  Trace trace(nodes);
  std::function<void(stats::NodeIndex, int)> fire =
      [&](stats::NodeIndex node, int remaining) {
        trace.per_node[node].push_back(TraceEntry{rt.Now(), node, 1});
        if (remaining == 0) return;
        for (stats::NodeIndex step : {1u, 3u}) {
          const stats::NodeIndex dst =
              static_cast<stats::NodeIndex>((node + step) % nodes);
          // Zero-delay hop, deferred to the lookahead edge (now + 1).
          const sim::SimTime when =
              std::max(rt.Now(), rt.CurrentRoundEnd());
          rt.ScheduleEvent(EventKey{when, node, rt.NextEmitSeq(node)}, dst,
                           [&fire, dst, remaining] {
                             fire(dst, remaining - 1);
                           });
        }
      };
  for (stats::NodeIndex n = 0; n < nodes; ++n) {
    rt.ScheduleEvent(EventKey{0, n, rt.NextEmitSeq(n)}, n,
                     [&fire, n, depth] { fire(n, depth); });
  }
  rt.Run();
  return trace.Merged();
}

TEST(ShardedRuntimeTest, ZeroLatencyLinksDeferOneTickInvariantly) {
  const auto serial = RunZeroDelayStorm(/*shards=*/1, /*nodes=*/12, 6);
  EXPECT_FALSE(serial.empty());
  // Every generation lands exactly one tick after its parent.
  for (uint32_t shards : {2u, 4u, 8u}) {
    EXPECT_EQ(RunZeroDelayStorm(shards, 12, 6), serial)
        << "shards=" << shards;
  }
}

/// Storm over slow links: every cross-shard hop is guaranteed to take at
/// least `kLink` ticks, declared via SetLinkLookahead — receivers may run
/// that far ahead of their peers, and the trace must not change.
std::vector<TraceEntry> RunWideLinkStorm(uint32_t shards, size_t nodes,
                                         int depth) {
  constexpr sim::SimTime kLink = 4;
  stats::MetricsRegistry metrics(nodes);
  ShardedRuntime rt({.shards = shards, .lookahead = 1}, nodes, &metrics);
  for (uint32_t i = 0; i < shards; ++i) {
    for (uint32_t j = 0; j < shards; ++j) {
      if (i != j) rt.SetLinkLookahead(i, j, kLink);
    }
  }
  Trace trace(nodes);
  std::function<void(stats::NodeIndex, int)> fire =
      [&](stats::NodeIndex node, int remaining) {
        trace.per_node[node].push_back(TraceEntry{rt.Now(), node, 2});
        if (remaining == 0) return;
        for (stats::NodeIndex step : {1u, 5u}) {
          const stats::NodeIndex dst =
              static_cast<stats::NodeIndex>((node + step) % nodes);
          // Every cross-node hop takes the full link minimum (the schedule
          // rule must respect the widest bound for any partitioning).
          rt.ScheduleEvent(
              EventKey{rt.Now() + kLink, node, rt.NextEmitSeq(node)}, dst,
              [&fire, dst, remaining] { fire(dst, remaining - 1); });
        }
      };
  for (stats::NodeIndex n = 0; n < nodes; ++n) {
    rt.ScheduleEvent(EventKey{0, n, rt.NextEmitSeq(n)}, n,
                     [&fire, n, depth] { fire(n, depth); });
  }
  rt.Run();
  return trace.Merged();
}

TEST(ShardedRuntimeTest, PerLinkLookaheadKeepsTraceInvariant) {
  const auto serial = RunWideLinkStorm(/*shards=*/1, /*nodes=*/12, 5);
  EXPECT_FALSE(serial.empty());
  for (uint32_t shards : {2u, 4u}) {
    EXPECT_EQ(RunWideLinkStorm(shards, 12, 5), serial)
        << "shards=" << shards;
  }
}

TEST(ShardedRuntimeTest, SingleShardWatermarkIsDegenerate) {
  // S=1 has no peers: the frontier is unbounded, the whole run is one
  // epoch, and the worker can never stall on a watermark.
  stats::MetricsRegistry metrics(4);
  ShardedRuntime rt({.shards = 1, .lookahead = 2}, 4, &metrics);
  std::function<void(stats::NodeIndex, int)> fire =
      [&](stats::NodeIndex node, int remaining) {
        if (remaining == 0) return;
        const stats::NodeIndex dst =
            static_cast<stats::NodeIndex>((node + 1) % 4);
        rt.ScheduleEvent(
            EventKey{rt.Now() + 2, node, rt.NextEmitSeq(node)}, dst,
            [&fire, dst, remaining] { fire(dst, remaining - 1); });
      };
  rt.ScheduleEvent(EventKey{0, 0, rt.NextEmitSeq(0)}, 0,
                   [&fire] { fire(0, 20); });
  rt.Run();
  const auto sched = rt.scheduler_stats();
  EXPECT_EQ(sched.epochs, 1u);
  EXPECT_EQ(sched.watermark_stalls, 0u);
  // 21 events spaced 2 ticks over one epoch: the lockstep scheduler would
  // have run ~21 one-lookahead rounds; the watermark model ran 1 epoch.
  EXPECT_GT(sched.equivalent_rounds, sched.epochs);
  EXPECT_GT(sched.overlap_ratio(), 0.9);
}

TEST(ShardedRuntimeTest, StarvedShardRecoversWhenWorkArrives) {
  // Shard 1's only events arrive late, produced by a long local chain on
  // shard 0: its worker idles behind the watermark (parking after the spin
  // budget) and must wake for each delivery. The result must not depend on
  // any of that timing.
  stats::MetricsRegistry metrics(2);
  ShardedRuntime rt({.shards = 2, .lookahead = 1}, 2, &metrics);
  std::vector<sim::SimTime> hits;  // node 1 only — single-writer
  std::function<void(int)> step = [&](int k) {
    if (k % 10 == 0 && k > 0) {
      rt.ScheduleEvent(EventKey{rt.Now() + 1, 0, rt.NextEmitSeq(0)}, 1,
                       [&] { hits.push_back(rt.Now()); });
    }
    if (k < 50) {
      rt.ScheduleEvent(EventKey{rt.Now() + 1, 0, rt.NextEmitSeq(0)}, 0,
                       [&step, k] { step(k + 1); });
    }
  };
  rt.ScheduleEvent(EventKey{0, 0, rt.NextEmitSeq(0)}, 0, [&step] { step(0); });
  rt.Run();
  const std::vector<sim::SimTime> want = {11, 21, 31, 41, 51};
  EXPECT_EQ(hits, want);
  // Exactly the five cross-shard deliveries rode the mailbox plane.
  EXPECT_EQ(rt.mailbox_stats().envelopes, 5u);
}

/// Barrier hook that records rendezvous times and requests a serial phase
/// at fixed boundaries, like the engine's RIC-epoch schedule.
struct RecordingHook : runtime::BarrierHook {
  explicit RecordingHook(sim::SimTime period) : period(period) {}
  void OnBarrier(sim::SimTime t) override { barriers.push_back(t); }
  sim::SimTime NextRendezvous(sim::SimTime after) override {
    return ((after / period) + 1) * period;
  }
  sim::SimTime period;
  std::vector<sim::SimTime> barriers;
};

/// A chain on node 0 (events at 0, 1, 2, ... 2 * period) that stages a
/// rendezvous cap from the events at `period - 1` and `period` — the first
/// lands exactly on the hook's natural horizon (the cap is a no-op), the
/// second caps the following epoch from its very first tick. Cross-sends
/// to node 1 after each cap probe the post-rendezvous frontier.
std::pair<std::vector<TraceEntry>, std::vector<sim::SimTime>> RunCapStorm(
    uint32_t shards) {
  constexpr sim::SimTime kPeriod = 8;
  stats::MetricsRegistry metrics(2);
  ShardedRuntime rt({.shards = shards, .lookahead = 1}, 2, &metrics);
  RecordingHook hook(kPeriod);
  rt.AddBarrierHook(&hook);
  Trace trace(2);
  std::function<void(int)> step = [&](int k) {
    trace.per_node[0].push_back(TraceEntry{rt.Now(), 0, 3});
    const sim::SimTime t = rt.Now();
    if (t == kPeriod - 1 || t == kPeriod) {
      // Stage a serial-phase request exactly like a churn op would: cap
      // the horizon at this event's time + lookahead.
      rt.RequestRendezvousBy(t + rt.lookahead());
      rt.ScheduleEvent(EventKey{t + 1, 0, rt.NextEmitSeq(0)}, 1, [&] {
        trace.per_node[1].push_back(TraceEntry{rt.Now(), 1, 4});
      });
    }
    if (k < 2 * kPeriod) {
      rt.ScheduleEvent(EventKey{t + 1, 0, rt.NextEmitSeq(0)}, 0,
                       [&step, k] { step(k + 1); });
    }
  };
  rt.ScheduleEvent(EventKey{0, 0, rt.NextEmitSeq(0)}, 0, [&step] { step(0); });
  rt.Run();
  return {trace.Merged(), hook.barriers};
}

TEST(ShardedRuntimeTest, RendezvousCapAtWatermarkBoundaryIsInvariant) {
  const auto serial = RunCapStorm(/*shards=*/1);
  EXPECT_FALSE(serial.first.empty());
  // The cap schedule is a pure function of the event population: barrier
  // times and the trace must match for any shard count.
  for (uint32_t shards : {2u, 4u}) {
    const auto sharded = RunCapStorm(shards);
    EXPECT_EQ(sharded.first, serial.first) << "shards=" << shards;
    EXPECT_EQ(sharded.second, serial.second) << "shards=" << shards;
  }
}

TEST(ShardedRuntimeTest, StormTraceIsShardCountInvariant) {
  const auto serial = RunStorm(/*shards=*/1, /*nodes=*/16, /*depth=*/5);
  EXPECT_FALSE(serial.empty());
  for (uint32_t shards : {2u, 4u, 8u}) {
    EXPECT_EQ(RunStorm(shards, 16, 5), serial) << "shards=" << shards;
  }
}

TEST(ShardedRuntimeTest, EmptyAndSingleNodeShardsAreHarmless) {
  // More shards than nodes: every shard holds at most one node, several
  // hold none and must just idle through the barriers.
  const auto serial = RunStorm(/*shards=*/1, /*nodes=*/3, /*depth=*/4);
  EXPECT_EQ(RunStorm(/*shards=*/8, 3, 4), serial);
  EXPECT_EQ(RunStorm(/*shards=*/3, 3, 4), serial);
}

TEST(ShardedRuntimeTest, ZeroDelaySelfSendExecutesInRound) {
  // A node sending to itself with zero delay (src == Successor(key) in the
  // transport) must execute within the same round and the same tick.
  stats::MetricsRegistry metrics(2);
  ShardedRuntime rt({.shards = 2, .lookahead = 1}, 2, &metrics);
  std::vector<sim::SimTime> times;
  rt.ScheduleEvent(EventKey{4, 1, 1}, 1, [&] {
    times.push_back(rt.Now());
    rt.ScheduleEvent(EventKey{rt.Now(), 1, rt.NextEmitSeq(1)}, 1,
                     [&] { times.push_back(rt.Now()); });
  });
  rt.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 4u);
  EXPECT_EQ(times[1], 4u);
}

TEST(ShardedRuntimeTest, ShardMetricsMergeIntoMainAtBarriers) {
  stats::MetricsRegistry metrics(4);
  ShardedRuntime rt({.shards = 2, .lookahead = 1}, 4, &metrics);
  // Workers charge traffic through their own delta registries.
  rt.ScheduleEvent(EventKey{1, 0, 1}, 0, [&] {
    rt.ActiveMetrics()->AddTraffic(0, 2);
    rt.ActiveMetrics()->AddTraffic(3, 1);  // other shard's node: still local
  });
  rt.ScheduleEvent(EventKey{1, 3, 1}, 3,
                   [&] { rt.ActiveMetrics()->AddQpl(3, 5); });
  rt.Run();
  EXPECT_EQ(metrics.total_messages(), 3u);
  EXPECT_EQ(metrics.node(0).messages_sent, 2u);
  EXPECT_EQ(metrics.node(3).messages_sent, 1u);
  EXPECT_EQ(metrics.node(3).qpl, 5u);
  EXPECT_EQ(metrics.total_qpl(), 5u);
  // Deltas were drained.
  EXPECT_EQ(rt.shard_metrics(0)->total_messages(), 0u);
  EXPECT_EQ(rt.shard_metrics(1)->total_qpl(), 0u);
}

TEST(MetricsRegistryTest, MergeFromDrainsDeltasExactly) {
  stats::MetricsRegistry main(3);
  stats::MetricsRegistry shard(3);
  shard.EnableDeltaTracking();
  shard.AddTraffic(1, 4, /*ric=*/true);
  shard.AddStore(2, 2);
  shard.RemoveStore(2, 1);
  shard.AddAnswer();
  main.MergeFrom(&shard);
  EXPECT_EQ(main.node(1).messages_sent, 4u);
  EXPECT_EQ(main.node(1).ric_messages_sent, 4u);
  EXPECT_EQ(main.node(2).storage_total, 2u);
  EXPECT_EQ(main.node(2).storage_current, 1);
  EXPECT_EQ(main.answers_delivered(), 1u);
  EXPECT_EQ(shard.total_messages(), 0u);
  EXPECT_EQ(shard.node(1).messages_sent, 0u);
  // A second merge is a no-op.
  main.MergeFrom(&shard);
  EXPECT_EQ(main.node(1).messages_sent, 4u);
}

// ------------------------------------------------------- experiment parity

workload::ExperimentConfig BaseConfig() {
  workload::ExperimentConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_queries = 120;
  cfg.num_tuples = 48;
  cfg.way = 3;
  cfg.workload.num_relations = 6;
  cfg.workload.num_attributes = 4;
  cfg.workload.num_values = 25;
  cfg.seed = 9;
  return cfg;
}

struct RunOutput {
  workload::ExperimentResult result;
  std::vector<std::string> answers;  // (query, row, time) render
  uint64_t total_messages = 0;
  uint64_t total_qpl = 0;
  size_t stored_queries = 0;
  size_t stored_tuples = 0;
};

RunOutput RunWith(workload::ExperimentConfig cfg, uint32_t shards) {
  cfg.shards = shards;
  workload::Experiment e(cfg);
  RunOutput out;
  out.result = e.Run();
  for (const core::Answer& a : e.engine().answers()) {
    out.answers.push_back(std::to_string(a.query_id) + "|" +
                          sql::AnswerRowKey(a.row) + "|" +
                          std::to_string(a.delivered_at));
  }
  out.total_messages = e.metrics().total_messages();
  out.total_qpl = e.metrics().total_qpl();
  out.stored_queries = e.engine().CountStoredQueries();
  out.stored_tuples = e.engine().CountStoredTuples();
  return out;
}

void ExpectIdentical(const RunOutput& a, const RunOutput& b) {
  // Identical answers: same rows, same order, same virtual delivery times.
  EXPECT_EQ(a.answers, b.answers);
  // Identical per-node message counts and load snapshots.
  EXPECT_EQ(a.result.final_snapshot.messages, b.result.final_snapshot.messages);
  EXPECT_EQ(a.result.final_snapshot.ric_messages,
            b.result.final_snapshot.ric_messages);
  EXPECT_EQ(a.result.final_snapshot.qpl, b.result.final_snapshot.qpl);
  EXPECT_EQ(a.result.final_snapshot.storage, b.result.final_snapshot.storage);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_qpl, b.total_qpl);
  EXPECT_EQ(a.result.answers_delivered, b.result.answers_delivered);
  EXPECT_EQ(a.stored_queries, b.stored_queries);
  EXPECT_EQ(a.stored_tuples, b.stored_tuples);
  // The per-tuple cumulative series must match sample by sample.
  ASSERT_EQ(a.result.per_tuple.size(), b.result.per_tuple.size());
  for (size_t i = 0; i < a.result.per_tuple.size(); ++i) {
    EXPECT_EQ(a.result.per_tuple[i].total_messages,
              b.result.per_tuple[i].total_messages)
        << "tuple " << i;
    EXPECT_EQ(a.result.per_tuple[i].total_storage,
              b.result.per_tuple[i].total_storage)
        << "tuple " << i;
  }
}

TEST(RuntimeEquivalenceTest, RicConfigMatchesAcrossShardCounts) {
  const workload::ExperimentConfig cfg = BaseConfig();  // kRic default
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_GT(s1.answers.size(), 0u);
  ExpectIdentical(s1, RunWith(cfg, 4));
  ExpectIdentical(s1, RunWith(cfg, 7));  // uneven partition
}

TEST(RuntimeEquivalenceTest, WindowedConfigMatchesAcrossShardCounts) {
  workload::ExperimentConfig cfg = BaseConfig();
  cfg.num_tuples = 64;
  sql::WindowSpec w;
  w.use_windows = true;
  w.unit = sql::WindowSpec::Unit::kTuples;
  w.size = 12;
  cfg.window = w;
  cfg.sweep_every = 8;
  const RunOutput s1 = RunWith(cfg, 1);
  ExpectIdentical(s1, RunWith(cfg, 4));
}

TEST(RuntimeEquivalenceTest, ReplicatedConfigMatchesAcrossShardCounts) {
  workload::ExperimentConfig cfg = BaseConfig();
  cfg.attr_replication = 2;
  cfg.rewrite_levels = core::RewriteIndexLevels::kIncludeAttribute;
  const RunOutput s1 = RunWith(cfg, 1);
  ExpectIdentical(s1, RunWith(cfg, 4));
}

TEST(RuntimeEquivalenceTest, RandomAndWorstPoliciesMatchAcrossShardCounts) {
  workload::ExperimentConfig cfg = BaseConfig();
  cfg.policy = core::PlannerPolicy::kRandom;
  ExpectIdentical(RunWith(cfg, 1), RunWith(cfg, 4));
  cfg.policy = core::PlannerPolicy::kWorst;
  cfg.charge_ric = false;
  ExpectIdentical(RunWith(cfg, 1), RunWith(cfg, 4));
}

TEST(RuntimeEquivalenceTest, PipelinedStreamingMatchesAcrossShardCounts) {
  workload::ExperimentConfig cfg = BaseConfig();
  cfg.pipeline_stream = true;  // many tuples in flight per round
  const RunOutput s1 = RunWith(cfg, 1);
  ExpectIdentical(s1, RunWith(cfg, 4));
}

TEST(RuntimeEquivalenceTest, LegacySerialMatchesShardedWhenNoRatesAreRead) {
  // With the kFirstInClause policy nothing reads RIC rates and nothing
  // draws planner randomness, and FixedLatency ignores the message RNG —
  // so the sharded run must reproduce the legacy serial simulator's answer
  // multiset and traffic totals exactly (delivery order within a tick may
  // differ; counts cannot).
  workload::ExperimentConfig cfg = BaseConfig();
  cfg.policy = core::PlannerPolicy::kFirstInClause;
  cfg.charge_ric = false;
  // kForceSerial, not 0: 0 would resolve through RJOIN_SHARDS, making this
  // comparison vacuous in the sharded CI job. Churn pinned off (not left
  // to RJOIN_CHURN): serial applies churn immediately, sharded at round
  // barriers, so serial-vs-sharded parity only holds on a static ring.
  cfg.churn = workload::ChurnSpec{};
  RunOutput serial =
      RunWith(cfg, workload::ExperimentConfig::kForceSerial);
  RunOutput sharded = RunWith(cfg, 4);
  std::sort(serial.answers.begin(), serial.answers.end());
  std::sort(sharded.answers.begin(), sharded.answers.end());
  EXPECT_EQ(serial.answers, sharded.answers);
  EXPECT_EQ(serial.total_messages, sharded.total_messages);
  EXPECT_EQ(serial.total_qpl, sharded.total_qpl);
  EXPECT_EQ(serial.result.final_snapshot.messages,
            sharded.result.final_snapshot.messages);
  EXPECT_EQ(serial.stored_queries, sharded.stored_queries);
  EXPECT_EQ(serial.stored_tuples, sharded.stored_tuples);
}

}  // namespace
}  // namespace rjoin
