// Tests of live topology churn in the sharded runtime: nodes join and
// leave *while* the tuple stream is running, state moves between owners as
// StateHandoff batches, and the battery asserts the two hard properties of
// docs/churn.md — (1) the answer stream is bit-identical for any shard
// count under any churn trace, and (2) the delivered answers still match
// the centralized sql::Evaluator oracle (eventual completeness across
// handoffs, ALTT Delta included).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "runtime/sharded_runtime.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/evaluator.h"
#include "stats/metrics.h"
#include "workload/churn.h"
#include "workload/experiment.h"
#include "workload/generator.h"

namespace rjoin {
namespace {

// --------------------------------------------------- serial-path churn ----

/// Minimal serial harness: explicit joins/leaves between publishes, oracle
/// checks at the end. Exercises the immediate-apply path (no runtime).
struct SerialHarness {
  explicit SerialHarness(size_t nodes, uint64_t seed = 7)
      : network(dht::ChordNetwork::Create(nodes, seed)),
        latency(1),
        metrics(network->num_total()),
        transport(network.get(), &simulator, &latency, &metrics,
                  Rng(seed * 31)),
        engine(HistoryConfig(), &catalog, network.get(), &transport,
               &simulator, &metrics) {}

  static core::EngineConfig HistoryConfig() {
    core::EngineConfig cfg;
    cfg.keep_history = true;
    return cfg;
  }

  static sql::Catalog MakeCatalog() {
    sql::Catalog c;
    EXPECT_TRUE(c.AddRelation(sql::Schema("R", {"A", "B", "C"})).ok());
    EXPECT_TRUE(c.AddRelation(sql::Schema("S", {"A", "B", "C"})).ok());
    EXPECT_TRUE(c.AddRelation(sql::Schema("P", {"A", "B", "C"})).ok());
    return c;
  }

  uint64_t Submit(dht::NodeIndex owner, const std::string& text) {
    auto id = engine.SubmitQuerySql(owner, text);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    simulator.Run();
    return *id;
  }

  void Publish(dht::NodeIndex node, const std::string& rel,
               std::vector<int64_t> ints) {
    std::vector<sql::Value> vals;
    vals.reserve(ints.size());
    for (int64_t v : ints) vals.push_back(sql::Value::Int(v));
    auto t = engine.PublishTuple(node, rel, std::move(vals));
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    simulator.Run();
  }

  void OracleCheck(uint64_t qid) {
    sql::CentralizedEvaluator oracle(&catalog);
    auto iq = engine.FindQuery(qid);
    ASSERT_NE(iq, nullptr);
    std::vector<std::string> expected;
    for (const auto& row :
         oracle.Evaluate(iq->spec(), iq->ins_time(), engine.history())) {
      expected.push_back(sql::AnswerRowKey(row));
    }
    std::vector<std::string> got;
    for (const auto& a : engine.AnswersFor(qid)) {
      got.push_back(sql::AnswerRowKey(a.row));
    }
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "query " << qid;
  }

  sql::Catalog catalog = MakeCatalog();
  std::unique_ptr<dht::ChordNetwork> network;
  sim::Simulator simulator;
  sim::FixedLatency latency;
  stats::MetricsRegistry metrics;
  dht::Transport transport;
  core::RJoinEngine engine;
};

TEST(SerialChurnTest, JoinMovesStateAndAnswersStayComplete) {
  SerialHarness h(16);
  const uint64_t q = h.Submit(0, "SELECT R.B, S.C FROM R, S WHERE R.A=S.A");
  h.Publish(1, "R", {7, 10, 11});

  // A join right where stored state lives: every key moves somewhere on
  // some seed; 8 joins guarantee several non-empty handoffs.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(h.engine
                    .ScheduleJoin(h.simulator.Now(),
                                  dht::NodeId::FromKey("joiner:" +
                                                       std::to_string(i)),
                                  0)
                    .ok());
    h.simulator.Run();
  }
  EXPECT_EQ(h.engine.churn_stats().joins_applied, 8u);
  EXPECT_GT(h.engine.churn_stats().handoff_messages, 0u);

  // The second half of the join arrives after churn: the rewritten query
  // (wherever it now lives) must still trigger.
  h.Publish(2, "S", {7, 20, 21});
  h.OracleCheck(q);
  EXPECT_EQ(h.engine.AnswersFor(q).size(), 1u);
}

TEST(SerialChurnTest, LeaveHandsOffAndAnswersStayComplete) {
  SerialHarness h(16);
  const uint64_t q = h.Submit(0, "SELECT R.B, S.C FROM R, S WHERE R.A=S.A");
  h.Publish(1, "R", {7, 10, 11});
  h.Publish(1, "R", {8, 12, 13});

  // Leave every node but owner/publishers' working set — state under the
  // departed nodes' ranges must move to survivors, never vanish.
  size_t leaves = 0;
  for (dht::NodeIndex victim = 3; victim < 16 && h.network->num_alive() > 4;
       ++victim) {
    if (victim == 0 || victim == 1 || victim == 2) continue;
    ASSERT_TRUE(h.engine.ScheduleLeave(h.simulator.Now(), victim).ok());
    h.simulator.Run();
    ++leaves;
  }
  EXPECT_EQ(h.engine.churn_stats().leaves_applied, leaves);
  EXPECT_GT(h.engine.churn_stats().handoff_messages, 0u);

  h.Publish(2, "S", {7, 20, 21});
  h.Publish(2, "S", {8, 22, 23});
  h.OracleCheck(q);
  EXPECT_EQ(h.engine.AnswersFor(q).size(), 2u);
}

TEST(SerialChurnTest, LeaveOfLastNodeIsRejected) {
  SerialHarness h(2);
  ASSERT_TRUE(h.engine.ScheduleLeave(0, 0).ok());
  h.simulator.Run();
  EXPECT_EQ(h.engine.churn_stats().leaves_applied, 1u);
  // The survivor cannot leave: its range would be ownerless.
  ASSERT_TRUE(h.engine.ScheduleLeave(h.simulator.Now(), 1).ok());
  h.simulator.Run();
  EXPECT_EQ(h.engine.churn_stats().leaves_applied, 1u);
  EXPECT_EQ(h.engine.churn_stats().ops_rejected, 1u);
}

// ------------------------------------------------- sharded equivalence ----

workload::ExperimentConfig BaseChurnConfig() {
  workload::ExperimentConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_queries = 100;
  cfg.num_tuples = 48;
  cfg.way = 3;
  cfg.workload.num_relations = 6;
  cfg.workload.num_attributes = 4;
  cfg.workload.num_values = 25;
  cfg.seed = 9;
  cfg.keep_history = true;  // oracle checks
  return cfg;
}

struct RunOutput {
  workload::ExperimentResult result;
  std::vector<std::string> answers;  // (query, row, time) render
  uint64_t total_messages = 0;
  uint64_t total_qpl = 0;
  size_t stored_queries = 0;
  size_t stored_tuples = 0;
  core::RJoinEngine::ChurnStats churn;
  /// Per-query sorted row keys + history render, for oracle comparison.
  std::map<uint64_t, std::vector<std::string>> per_query_rows;
  std::map<uint64_t, std::vector<std::string>> oracle_rows;
};

RunOutput RunWith(workload::ExperimentConfig cfg, uint32_t shards) {
  cfg.shards = shards;
  workload::Experiment e(cfg);
  RunOutput out;
  out.result = e.Run();
  for (const core::Answer& a : e.engine().answers()) {
    out.answers.push_back(std::to_string(a.query_id) + "|" +
                          sql::AnswerRowKey(a.row) + "|" +
                          std::to_string(a.delivered_at));
    out.per_query_rows[a.query_id].push_back(sql::AnswerRowKey(a.row));
  }
  out.total_messages = e.metrics().total_messages();
  out.total_qpl = e.metrics().total_qpl();
  out.stored_queries = e.engine().CountStoredQueries();
  out.stored_tuples = e.engine().CountStoredTuples();
  out.churn = e.engine().churn_stats();

  sql::CentralizedEvaluator oracle(&e.catalog());
  for (uint64_t qid = 1; qid <= cfg.num_queries; ++qid) {
    auto iq = e.engine().FindQuery(qid);
    if (iq == nullptr) continue;
    std::vector<std::string> rows;
    for (const auto& row :
         oracle.Evaluate(iq->spec(), iq->ins_time(), e.engine().history())) {
      rows.push_back(sql::AnswerRowKey(row));
    }
    std::sort(rows.begin(), rows.end());
    out.oracle_rows[qid] = std::move(rows);
  }
  for (auto& [qid, rows] : out.per_query_rows) {
    std::sort(rows.begin(), rows.end());
  }
  return out;
}

void ExpectIdentical(const RunOutput& a, const RunOutput& b) {
  // Bit-identical answer streams: same rows, same order, same virtual
  // delivery times.
  EXPECT_EQ(a.answers, b.answers);
  EXPECT_EQ(a.result.final_snapshot.messages, b.result.final_snapshot.messages);
  EXPECT_EQ(a.result.final_snapshot.storage, b.result.final_snapshot.storage);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_qpl, b.total_qpl);
  EXPECT_EQ(a.stored_queries, b.stored_queries);
  EXPECT_EQ(a.stored_tuples, b.stored_tuples);
  // Churn executed identically: same applications, same handoff traffic.
  EXPECT_EQ(a.churn.joins_applied, b.churn.joins_applied);
  EXPECT_EQ(a.churn.leaves_applied, b.churn.leaves_applied);
  EXPECT_EQ(a.churn.handoff_messages, b.churn.handoff_messages);
  EXPECT_EQ(a.churn.handoff_queries, b.churn.handoff_queries);
  EXPECT_EQ(a.churn.handoff_tuples, b.churn.handoff_tuples);
  EXPECT_EQ(a.churn.handoff_bytes, b.churn.handoff_bytes);
  EXPECT_EQ(a.churn.handoffs_installed, b.churn.handoffs_installed);
  EXPECT_EQ(a.churn.forwarded_messages, b.churn.forwarded_messages);
}

void ExpectMatchesOracle(const RunOutput& out) {
  size_t checked = 0;
  for (const auto& [qid, expected] : out.oracle_rows) {
    auto it = out.per_query_rows.find(qid);
    const std::vector<std::string> got =
        it == out.per_query_rows.end() ? std::vector<std::string>{}
                                       : it->second;
    EXPECT_EQ(got, expected) << "query " << qid;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(ChurnRuntimeTest, JoinOnlyTraceIsShardCountInvariantAndComplete) {
  workload::ExperimentConfig cfg = BaseChurnConfig();
  workload::ChurnSpec churn;
  churn.joins = 12;
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_EQ(s1.churn.joins_applied, 12u);
  EXPECT_GT(s1.churn.handoff_messages, 0u);
  EXPECT_GT(s1.answers.size(), 0u);
  ExpectMatchesOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
  ExpectIdentical(s1, RunWith(cfg, 7));  // uneven partition
}

TEST(ChurnRuntimeTest, LeaveOnlyTraceIsShardCountInvariantAndComplete) {
  workload::ExperimentConfig cfg = BaseChurnConfig();
  workload::ChurnSpec churn;
  churn.leaves = 12;
  churn.spare_nodes = 12;  // leave victims reserved at startup
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_EQ(s1.churn.leaves_applied, 12u);
  EXPECT_GT(s1.churn.handoff_messages, 0u);
  ExpectMatchesOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
  ExpectIdentical(s1, RunWith(cfg, 7));
}

TEST(ChurnRuntimeTest, MixedTraceMeetsAcceptanceBar) {
  // The acceptance scenario: >= 10 joins + 10 leaves mid-stream, same
  // answer stream at S=1/4/7, oracle equality.
  workload::ExperimentConfig cfg = BaseChurnConfig();
  workload::ChurnSpec churn;
  churn.joins = 12;
  churn.leaves = 12;
  churn.spare_nodes = 6;  // half the victims are spares, half are joiners
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_GE(s1.churn.joins_applied, 10u);
  EXPECT_GE(s1.churn.leaves_applied, 10u);
  EXPECT_GT(s1.churn.handoff_messages, 0u);
  EXPECT_GT(s1.answers.size(), 0u);
  ExpectMatchesOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
  ExpectIdentical(s1, RunWith(cfg, 7));
}

TEST(ChurnRuntimeTest, RouteCacheOnOffIsBitIdenticalUnderChurn) {
  // The route cache memoizes per-topology-generation paths; every churn op
  // bumps the generation. The whole-run result surface — answer stream,
  // traffic totals, handoff accounting — must be bit-identical with the
  // cache killed (RJOIN_ROUTE_CACHE=0), at every shard count: the cache
  // changes who computes a path, never the path.
  workload::ExperimentConfig cfg = BaseChurnConfig();
  workload::ChurnSpec churn;
  churn.joins = 10;
  churn.leaves = 10;
  churn.spare_nodes = 5;
  cfg.churn = churn;
  const RunOutput on1 = RunWith(cfg, 1);
  const RunOutput on4 = RunWith(cfg, 4);
  ASSERT_EQ(setenv("RJOIN_ROUTE_CACHE", "0", 1), 0);
  const RunOutput off1 = RunWith(cfg, 1);
  const RunOutput off7 = RunWith(cfg, 7);
  unsetenv("RJOIN_ROUTE_CACHE");
  ExpectIdentical(on1, off1);
  ExpectIdentical(on1, on4);
  ExpectIdentical(on1, off7);
  ExpectMatchesOracle(on1);
}

TEST(ChurnRuntimeTest, WindowedChurnHonorsAlttAcrossHandoff) {
  // Windowed continuous queries + churn: ALTT entries migrate with their
  // original expiry, window residuals expire identically on every path.
  workload::ExperimentConfig cfg = BaseChurnConfig();
  cfg.num_tuples = 64;
  sql::WindowSpec w;
  w.use_windows = true;
  w.unit = sql::WindowSpec::Unit::kTuples;
  w.size = 12;
  cfg.window = w;
  cfg.sweep_every = 8;
  workload::ChurnSpec churn;
  churn.joins = 8;
  churn.leaves = 8;
  churn.spare_nodes = 4;
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_GT(s1.churn.handoff_messages, 0u);
  ExpectIdentical(s1, RunWith(cfg, 4));
}

TEST(ChurnRuntimeTest, PipelinedStormIsShardCountInvariant) {
  // Churn storm under pipelined streaming: many tuples and handoffs in
  // flight at once, topology mutating every few rounds.
  workload::ExperimentConfig cfg = BaseChurnConfig();
  cfg.pipeline_stream = true;
  workload::ChurnSpec churn;
  churn.joins = 16;
  churn.leaves = 16;
  churn.spare_nodes = 8;
  churn.settle_ticks = 32;
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_GE(s1.churn.joins_applied + s1.churn.leaves_applied, 24u);
  ExpectMatchesOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
}

class SeededChurnStormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededChurnStormTest, RandomTraceStaysEquivalentAndComplete) {
  workload::ExperimentConfig cfg = BaseChurnConfig();
  cfg.seed = GetParam();
  cfg.num_queries = 60;
  workload::ChurnSpec churn;
  churn.rate = 0.5;  // ~one churn op every other tuple
  churn.spare_nodes = 6;
  churn.seed = GetParam() * 131 + 7;
  cfg.churn = churn;
  const RunOutput s1 = RunWith(cfg, 1);
  EXPECT_GT(s1.churn.joins_applied + s1.churn.leaves_applied, 0u);
  ExpectMatchesOracle(s1);
  ExpectIdentical(s1, RunWith(cfg, 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededChurnStormTest,
                         ::testing::Values(11, 12, 13));

TEST(ChurnRuntimeTest, JoinedNodesBalanceAcrossShards) {
  // Churn-joined nodes (indices past the initial size) must round-robin
  // across shards: a join-heavy run may not pile every new node onto the
  // last block-partition shard, and growing may not move existing nodes.
  constexpr size_t kInitial = 40;
  constexpr size_t kJoined = 13;
  constexpr uint32_t kShards = 4;
  stats::MetricsRegistry metrics(kInitial);
  runtime::ShardedRuntime rt({.shards = kShards, .lookahead = 1}, kInitial,
                             &metrics);
  std::vector<uint32_t> before(kInitial);
  for (stats::NodeIndex n = 0; n < kInitial; ++n) before[n] = rt.ShardOf(n);
  rt.GrowNodes(kInitial + kJoined);

  std::vector<size_t> histogram(kShards, 0);
  for (stats::NodeIndex n = kInitial; n < kInitial + kJoined; ++n) {
    const uint32_t s = rt.ShardOf(n);
    ASSERT_LT(s, kShards);
    ++histogram[s];
  }
  const auto [lo, hi] = std::minmax_element(histogram.begin(),
                                            histogram.end());
  EXPECT_LE(*hi - *lo, 1u) << "joined-node ownership is unbalanced";
  EXPECT_GT(*lo, 0u);  // every shard picked up join work
  for (stats::NodeIndex n = 0; n < kInitial; ++n) {
    EXPECT_EQ(rt.ShardOf(n), before[n]) << "node " << n << " moved shards";
  }
}

TEST(ChurnTraceTest, GeneratorIsDeterministicAndClampsLeaves)
{
  workload::ChurnSpec spec;
  spec.joins = 5;
  spec.leaves = 9;      // only 5 joins + 2 spares available
  spec.spare_nodes = 2;
  size_t joins = 0, leaves = 0;
  const auto a = workload::GenerateChurnTrace(spec, 100, 1000, 5000, 42,
                                              &joins, &leaves);
  EXPECT_EQ(joins, 5u);
  EXPECT_EQ(leaves, 7u);  // clamped to the victim supply
  EXPECT_EQ(a.size(), 12u);
  const auto b = workload::GenerateChurnTrace(spec, 100, 1000, 5000, 42,
                                              nullptr, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].victim_slot, b[i].victim_slot);
  }
  // Times are ordered and inside the span (leaves may spill past the end
  // by their settle gap only).
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i].time, a[i - 1].time);
  EXPECT_GE(a.front().time, 1000u);
}

}  // namespace
}  // namespace rjoin
