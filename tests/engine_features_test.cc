// Tests of the optional engine features: one-time (snapshot) queries
// (Section 4's "Delta can be infinity" framework) and attribute-level query
// replication (the load-spreading scheme of [18] referenced in Section 3).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/engine.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/evaluator.h"
#include "sql/parser.h"
#include "sql/schema.h"
#include "stats/metrics.h"
#include "workload/generator.h"

namespace rjoin::core {
namespace {

struct Harness {
  Harness(size_t nodes, EngineConfig cfg, sql::Catalog cat, uint64_t seed = 7)
      : catalog(std::move(cat)),
        network(dht::ChordNetwork::Create(nodes, seed)),
        latency(1),
        metrics(network->num_total()),
        transport(network.get(), &simulator, &latency, &metrics,
                  Rng(seed * 31)),
        engine(cfg, &catalog, network.get(), &transport, &simulator,
               &metrics) {}

  void Publish(dht::NodeIndex node, const std::string& rel,
               std::vector<int64_t> ints) {
    std::vector<sql::Value> vals;
    for (int64_t v : ints) vals.push_back(sql::Value::Int(v));
    ASSERT_TRUE(engine.PublishTuple(node, rel, std::move(vals)).ok());
    simulator.Run();
  }

  sql::Catalog catalog;
  std::unique_ptr<dht::ChordNetwork> network;
  sim::Simulator simulator;
  sim::FixedLatency latency;
  stats::MetricsRegistry metrics;
  dht::Transport transport;
  RJoinEngine engine;
};

sql::Catalog TestCatalog() {
  sql::Catalog c;
  EXPECT_TRUE(c.AddRelation(sql::Schema("R", {"A", "B"})).ok());
  EXPECT_TRUE(c.AddRelation(sql::Schema("S", {"A", "B"})).ok());
  return c;
}

EngineConfig SnapshotConfig() {
  EngineConfig cfg;
  cfg.keep_history = true;
  cfg.altt_delta = EngineConfig::kInfiniteDelta;  // Full history retained.
  return cfg;
}

// ------------------------------------------------- One-time queries ----

TEST(OneTimeQueryTest, SeesOnlyThePast) {
  Harness h(24, SnapshotConfig(), TestCatalog());
  h.Publish(1, "R", {1, 10});
  h.Publish(2, "S", {1, 20});
  h.simulator.RunUntil(h.simulator.Now() + 5);

  auto spec = sql::Parser::Parse("SELECT R.B, S.B FROM R,S WHERE R.A=S.A");
  ASSERT_TRUE(spec.ok());
  auto qid = h.engine.SubmitOneTimeQuery(0, *spec);
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  h.simulator.Run();
  ASSERT_EQ(h.engine.AnswersFor(*qid).size(), 1u);
  EXPECT_EQ(h.engine.AnswersFor(*qid)[0].row[0], sql::Value::Int(10));

  // Tuples published after the snapshot do not extend the answer set.
  h.Publish(3, "R", {1, 30});
  h.Publish(4, "S", {1, 40});
  EXPECT_EQ(h.engine.AnswersFor(*qid).size(), 1u);
}

TEST(OneTimeQueryTest, EmptyPastYieldsNothing) {
  Harness h(24, SnapshotConfig(), TestCatalog());
  auto spec = sql::Parser::Parse("SELECT R.B, S.B FROM R,S WHERE R.A=S.A");
  ASSERT_TRUE(spec.ok());
  auto qid = h.engine.SubmitOneTimeQuery(0, *spec);
  ASSERT_TRUE(qid.ok());
  h.simulator.Run();
  h.Publish(1, "R", {1, 10});
  h.Publish(2, "S", {1, 20});
  EXPECT_TRUE(h.engine.AnswersFor(*qid).empty());
}

TEST(OneTimeQueryTest, MatchesOracleOverHistory) {
  workload::WorkloadParams wp;
  wp.num_relations = 3;
  wp.num_attributes = 2;
  wp.num_values = 3;
  wp.zipf_theta = 0.4;
  auto catalog = workload::BuildCatalog(wp);
  Harness h(24, SnapshotConfig(), std::move(*catalog), 11);

  workload::TupleGenerator tgen(wp, &h.catalog, 3);
  for (int i = 0; i < 40; ++i) {
    auto d = tgen.Next();
    ASSERT_TRUE(h.engine
                    .PublishTuple(static_cast<dht::NodeIndex>(i % 24),
                                  d.relation, std::move(d.values))
                    .ok());
    h.simulator.Run();
    h.simulator.RunUntil(h.simulator.Now() + 2);
  }

  workload::QueryGenerator qgen(wp, &h.catalog, 5);
  auto spec = qgen.Next(2);
  auto qid = h.engine.SubmitOneTimeQuery(0, spec);
  ASSERT_TRUE(qid.ok());
  h.simulator.Run();

  // Oracle: evaluate over the full history with one-time eligibility
  // (pubT <= insT). The oracle takes ins_time as a lower bound, so feed it
  // only the eligible tuples with ins_time 0.
  auto iq = h.engine.FindQuery(*qid);
  std::vector<sql::TuplePtr> past;
  for (const auto& t : h.engine.history()) {
    if (t->pub_time <= iq->ins_time()) past.push_back(t);
  }
  sql::CentralizedEvaluator oracle(&h.catalog);
  const auto expected = oracle.Evaluate(iq->spec(), 0, past);
  EXPECT_EQ(h.engine.AnswersFor(*qid).size(), expected.size())
      << iq->spec().ToString();
}

TEST(OneTimeQueryTest, AddsNoPermanentState) {
  Harness h(24, SnapshotConfig(), TestCatalog());
  h.Publish(1, "R", {1, 10});
  const size_t stored_before = h.engine.CountStoredQueries();
  auto spec = sql::Parser::Parse("SELECT R.B, S.B FROM R,S WHERE R.A=S.A");
  ASSERT_TRUE(spec.ok());
  auto qid = h.engine.SubmitOneTimeQuery(0, *spec);
  ASSERT_TRUE(qid.ok());
  h.simulator.Run();
  EXPECT_EQ(h.engine.CountStoredQueries(), stored_before);
}

TEST(OneTimeQueryTest, RejectsWindowClause) {
  Harness h(8, SnapshotConfig(), TestCatalog());
  auto spec = sql::Parser::Parse(
      "SELECT R.B FROM R,S WHERE R.A=S.A WINDOW 10 TUPLES");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(h.engine.SubmitOneTimeQuery(0, *spec).ok());
}

// ------------------------------------------- Attribute replication ----

TEST(ReplicationTest, AnswersUnchangedByReplication) {
  for (uint32_t r : {1u, 2u, 4u}) {
    EngineConfig cfg;
    cfg.keep_history = true;
    cfg.attr_replication = r;
    Harness h(24, cfg, TestCatalog(), 13);
    auto qid = h.engine.SubmitQuerySql(
        0, "SELECT R.B, S.B FROM R,S WHERE R.A=S.A");
    ASSERT_TRUE(qid.ok());
    h.simulator.Run();
    for (int i = 0; i < 12; ++i) {
      h.Publish(static_cast<dht::NodeIndex>(i % 24), i % 2 ? "R" : "S",
                {i % 3, 100 + i});
    }
    // 2 R-tuples x 2 S-tuples join per residue class of A: A values cycle
    // 0,1,2 over 12 tuples; compute expected via the oracle.
    sql::CentralizedEvaluator oracle(&h.catalog);
    auto iq = h.engine.FindQuery(*qid);
    const auto expected =
        oracle.Evaluate(iq->spec(), iq->ins_time(), h.engine.history());
    EXPECT_EQ(h.engine.AnswersFor(*qid).size(), expected.size())
        << "replication " << r;
  }
}

TEST(ReplicationTest, SpreadsAttributeLevelLoad) {
  // The load relief applies to the attribute-level rendezvous node (the
  // hot node of Section 3's discussion): with replication, each shard sees
  // only 1/r of the relation's tuples.
  auto attr_node_qpl = [](uint32_t replication) {
    EngineConfig cfg;
    cfg.attr_replication = replication;
    sql::Catalog cat;
    EXPECT_TRUE(cat.AddRelation(sql::Schema("R", {"A", "B"})).ok());
    EXPECT_TRUE(cat.AddRelation(sql::Schema("S", {"A", "B"})).ok());
    Harness h(64, cfg, std::move(cat), 17);
    // Many queries all indexed under R.A (the only candidate): one hot
    // attribute-level node without replication.
    for (int i = 0; i < 30; ++i) {
      auto qid = h.engine.SubmitQuerySql(
          static_cast<dht::NodeIndex>(i), "SELECT R.B FROM R,S WHERE R.A=S.A");
      EXPECT_TRUE(qid.ok());
    }
    h.simulator.Run();
    Rng rng(5);
    for (int i = 0; i < 60; ++i) {
      std::vector<sql::Value> vals = {
          sql::Value::Int(static_cast<int64_t>(rng.NextBounded(8))),
          sql::Value::Int(i)};
      EXPECT_TRUE(h.engine
                      .PublishTuple(static_cast<dht::NodeIndex>(i % 64), "R",
                                    std::move(vals))
                      .ok());
      h.simulator.Run();
    }
    const dht::NodeIndex attr_node =
        h.network->SuccessorOf(KeyRingId(AttributeKey("R", "A")));
    return h.metrics.node(attr_node).qpl;
  };
  const uint64_t unreplicated = attr_node_qpl(1);
  const uint64_t replicated = attr_node_qpl(4);
  EXPECT_LT(replicated, unreplicated);
}

TEST(ReplicationTest, ShardKeysAreDistinctButShardZeroIsPlain) {
  const IndexKey base = AttributeKey("R", "A");
  EXPECT_EQ(WithShard(base, 0).text, base.text);
  EXPECT_NE(WithShard(base, 1).text, base.text);
  EXPECT_NE(WithShard(base, 1).text, WithShard(base, 2).text);
  EXPECT_EQ(ShardedAttributeKey("R", "A", 3).text, WithShard(base, 3).text);
}

}  // namespace
}  // namespace rjoin::core
