// Pool-balance suite: every pooled record the engine acquires must be
// released — TuplePool records (flat tuple plane), SlabPool nodes (stored
// queries / ALTT entries), and MessagePool envelopes. The scenarios are the
// three lifetimes that historically leaked in refcounted designs: windowed
// GC sweeps, live topology churn with state handoff, and ALTT Delta-expiry.
//
// Also holds the batched-probe-kernel equivalence tests: the tight-loop
// value-id kernel (RJoinEngine::ProbeTupleSpans) probes large stored spans
// for one-time queries, and its answers must match the brute-force
// CentralizedEvaluator oracle row for row.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/messages.h"
#include "core/tuple_ref.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/evaluator.h"
#include "stats/metrics.h"
#include "workload/experiment.h"
#include "workload/generator.h"

namespace rjoin::core {
namespace {

// ------------------------------------------------------ pool balance ----

/// Per-node slab pools must balance while the engine is live:
/// acquired - released == live for both the query pool and the ALTT pool.
void ExpectSlabPoolsBalanced(const RJoinEngine& engine) {
  for (dht::NodeIndex n = 0; n < engine.num_nodes(); ++n) {
    const NodeState& st = engine.state_of(n);
    EXPECT_EQ(st.query_pool.acquired() - st.query_pool.released(),
              st.query_pool.live())
        << "query_pool imbalance at node " << n;
    EXPECT_EQ(st.altt_pool.acquired() - st.altt_pool.released(),
              st.altt_pool.live())
        << "altt_pool imbalance at node " << n;
  }
}

TEST(PoolBalanceTest, WindowedGcHeavyRunReturnsEveryPooledRecord) {
  const TuplePool::Stats tuples_before = TuplePool::Global().stats();
  const MessagePool::GlobalStats msgs_before = MessagePool::Aggregate();
  {
    workload::ExperimentConfig cfg;
    cfg.num_nodes = 48;
    cfg.num_queries = 48;
    cfg.num_tuples = 160;
    cfg.workload.num_relations = 4;
    cfg.workload.num_attributes = 3;
    cfg.workload.num_values = 8;
    sql::WindowSpec window;
    window.use_windows = true;
    window.unit = sql::WindowSpec::Unit::kTuples;
    window.kind = sql::WindowSpec::Kind::kSliding;
    window.size = 16;
    cfg.window = window;
    cfg.sweep_every = 8;  // GC-heavy: sweep every 8 tuples.
    cfg.tuple_gap = 4;
    workload::Experiment experiment(cfg);
    auto result = experiment.Run();
    EXPECT_EQ(result.num_tuples, cfg.num_tuples);
    ExpectSlabPoolsBalanced(experiment.engine());
  }
  // With the experiment destroyed, every tuple record and envelope the run
  // acquired must have been released (released == acquired, as deltas
  // against whatever other tests left outstanding).
  const TuplePool::Stats tuples_after = TuplePool::Global().stats();
  EXPECT_GT(tuples_after.released, tuples_before.released);
  EXPECT_EQ(tuples_after.outstanding(), tuples_before.outstanding());
  const MessagePool::GlobalStats msgs_after = MessagePool::Aggregate();
  EXPECT_GT(msgs_after.released, msgs_before.released);
  EXPECT_EQ(msgs_after.outstanding(), msgs_before.outstanding());
}

TEST(PoolBalanceTest, ChurnRunReturnsEveryPooledRecord) {
  const TuplePool::Stats tuples_before = TuplePool::Global().stats();
  const MessagePool::GlobalStats msgs_before = MessagePool::Aggregate();
  {
    workload::ExperimentConfig cfg;
    cfg.num_nodes = 48;
    cfg.num_queries = 40;
    cfg.num_tuples = 120;
    cfg.workload.num_relations = 4;
    cfg.workload.num_attributes = 3;
    cfg.workload.num_values = 8;
    workload::ChurnSpec churn;
    churn.rate = 0.5;  // Heavy: one churn op per two tuples.
    churn.spare_nodes = 6;
    cfg.churn = churn;
    workload::Experiment experiment(cfg);
    auto result = experiment.Run();
    EXPECT_EQ(result.num_tuples, cfg.num_tuples);
    const auto& cs = experiment.engine().churn_stats();
    EXPECT_GT(cs.joins_applied + cs.leaves_applied, 0u)
        << "churn run applied no topology changes";
    ExpectSlabPoolsBalanced(experiment.engine());
  }
  const TuplePool::Stats tuples_after = TuplePool::Global().stats();
  EXPECT_EQ(tuples_after.outstanding(), tuples_before.outstanding());
  const MessagePool::GlobalStats msgs_after = MessagePool::Aggregate();
  EXPECT_EQ(msgs_after.outstanding(), msgs_before.outstanding());
}

TEST(PoolBalanceTest, CrashRunReturnsEveryPooledRecord) {
  // Silent failures with replication on: replica slices hold extra TupleRef
  // pins and mirror traffic rides pooled envelopes; crashes drop whole
  // nodes' state and promotions re-install it. Every acquire must still
  // balance — in the per-node slabs, the global tuple plane, and the
  // envelope pool.
  const TuplePool::Stats tuples_before = TuplePool::Global().stats();
  const MessagePool::GlobalStats msgs_before = MessagePool::Aggregate();
  {
    workload::ExperimentConfig cfg;
    cfg.num_nodes = 48;
    cfg.num_queries = 40;
    cfg.num_tuples = 120;
    cfg.workload.num_relations = 4;
    cfg.workload.num_attributes = 3;
    cfg.workload.num_values = 8;
    cfg.replication = 2;
    workload::ChurnSpec churn;
    churn.rate = 0.25;
    churn.spare_nodes = 8;
    workload::FaultPlan faults;
    faults.crashes = 4;
    churn.faults = faults;
    cfg.churn = churn;
    workload::Experiment experiment(cfg);
    auto result = experiment.Run();
    EXPECT_EQ(result.num_tuples, cfg.num_tuples);
    const auto& cs = experiment.engine().churn_stats();
    EXPECT_EQ(cs.crashes_applied, 4u);
    EXPECT_GT(experiment.engine().replication_stats().replica_updates, 0u);
    ExpectSlabPoolsBalanced(experiment.engine());
  }
  const TuplePool::Stats tuples_after = TuplePool::Global().stats();
  EXPECT_EQ(tuples_after.outstanding(), tuples_before.outstanding());
  const MessagePool::GlobalStats msgs_after = MessagePool::Aggregate();
  EXPECT_EQ(msgs_after.outstanding(), msgs_before.outstanding());
}

// Engine-level harness (mirrors engine_features_test.cc) for scenarios
// needing direct control over the clock and EngineConfig.
struct Harness {
  Harness(size_t nodes, EngineConfig cfg, sql::Catalog cat, uint64_t seed = 7)
      : catalog(std::move(cat)),
        network(dht::ChordNetwork::Create(nodes, seed)),
        latency(1),
        metrics(network->num_total()),
        transport(network.get(), &simulator, &latency, &metrics,
                  Rng(seed * 31)),
        engine(cfg, &catalog, network.get(), &transport, &simulator,
               &metrics) {}

  sql::Catalog catalog;
  std::unique_ptr<dht::ChordNetwork> network;
  sim::Simulator simulator;
  sim::FixedLatency latency;
  stats::MetricsRegistry metrics;
  dht::Transport transport;
  RJoinEngine engine;
};

TEST(PoolBalanceTest, DeltaExpiryDrainsAlttPool) {
  const TuplePool::Stats tuples_before = TuplePool::Global().stats();
  {
    workload::WorkloadParams wp;
    wp.num_relations = 3;
    wp.num_attributes = 2;
    wp.num_values = 4;
    wp.zipf_theta = 0.4;
    auto catalog = workload::BuildCatalog(wp);

    EngineConfig cfg;
    cfg.altt_delta = 32;  // Finite Delta: ALTT entries expire.
    Harness h(24, cfg, std::move(*catalog), 19);

    workload::TupleGenerator tgen(wp, &h.catalog, 3);
    workload::TupleGenerator::Draw d;
    auto publish = [&](int i) {
      tgen.Next(&d);
      ASSERT_TRUE(h.engine
                      .PublishTuple(static_cast<dht::NodeIndex>(i % 24),
                                    d.relation, d.values)
                      .ok());
      h.simulator.Run();
      h.simulator.RunUntil(h.simulator.Now() + 4);
    };

    for (int i = 0; i < 30; ++i) publish(i);
    // Let every entry from the first burst age past Delta, then publish a
    // second burst: appends at the same attribute buckets trim expired
    // heads back into the slab freelist.
    h.simulator.RunUntil(h.simulator.Now() + 2 * cfg.altt_delta);
    for (int i = 30; i < 60; ++i) publish(i);

    uint64_t altt_released = 0;
    for (dht::NodeIndex n = 0; n < h.engine.num_nodes(); ++n) {
      altt_released += h.engine.state_of(n).altt_pool.released();
    }
    EXPECT_GT(altt_released, 0u) << "Delta-expiry freed no ALTT entries";
    ExpectSlabPoolsBalanced(h.engine);
  }
  // ALTT entries own TupleRefs; expiry plus teardown must return every
  // record to the flat tuple pool.
  const TuplePool::Stats tuples_after = TuplePool::Global().stats();
  EXPECT_GT(tuples_after.released, tuples_before.released);
  EXPECT_EQ(tuples_after.outstanding(), tuples_before.outstanding());
}

// --------------------------------- batched probe kernel equivalence ----

std::vector<std::string> SortedRowKeys(const std::vector<Answer>& answers) {
  std::vector<std::string> keys;
  keys.reserve(answers.size());
  for (const auto& a : answers) keys.push_back(sql::AnswerRowKey(a.row));
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::string> SortedRowKeys(
    const std::vector<std::vector<sql::Value>>& rows) {
  std::vector<std::string> keys;
  keys.reserve(rows.size());
  for (const auto& r : rows) keys.push_back(sql::AnswerRowKey(r));
  std::sort(keys.begin(), keys.end());
  return keys;
}

class BatchProbeKernelTest : public ::testing::TestWithParam<uint64_t> {};

// One-time queries submitted after a long stream probe the full stored
// state in one ProbeStoredState pass per bound relation — the widest spans
// the batch kernel ever sees. The answers must equal the scalar oracle's
// bag over the pre-submission history.
TEST_P(BatchProbeKernelTest, OneTimeProbeMatchesScalarOracle) {
  const uint64_t seed = GetParam();
  workload::WorkloadParams wp;
  wp.num_relations = 3;
  wp.num_attributes = 2;
  wp.num_values = 3;  // Tiny domain: large same-key spans, frequent joins.
  wp.zipf_theta = 0.4;
  auto catalog = workload::BuildCatalog(wp);

  EngineConfig cfg;
  cfg.keep_history = true;
  cfg.altt_delta = EngineConfig::kInfiniteDelta;  // Full ALTT history.
  Harness h(24, cfg, std::move(*catalog), seed);

  workload::TupleGenerator tgen(wp, &h.catalog, seed * 5 + 2);
  workload::TupleGenerator::Draw d;
  for (int i = 0; i < 50; ++i) {
    tgen.Next(&d);
    ASSERT_TRUE(h.engine
                    .PublishTuple(static_cast<dht::NodeIndex>(i % 24),
                                  d.relation, d.values)
                    .ok());
    h.simulator.Run();
    h.simulator.RunUntil(h.simulator.Now() + 2);
  }

  sql::CentralizedEvaluator oracle(&h.catalog);
  workload::QueryGenerator qgen(wp, &h.catalog, seed * 3 + 1);
  for (int i = 0; i < 4; ++i) {
    sql::Query spec = qgen.Next(2 + (i % 2));
    spec.distinct = (i % 2 == 1);  // Exercise the kernel's DISTINCT path.
    auto qid = h.engine.SubmitOneTimeQuery(static_cast<dht::NodeIndex>(i),
                                           spec);
    ASSERT_TRUE(qid.ok()) << qid.status().ToString();
    h.simulator.Run();

    auto iq = h.engine.FindQuery(*qid);
    ASSERT_NE(iq, nullptr);
    std::vector<sql::TuplePtr> past;
    for (const auto& t : h.engine.history()) {
      if (t->pub_time <= iq->ins_time()) past.push_back(t);
    }
    // One-time eligibility is pubT <= insT: the oracle's insT bound runs
    // the other way, so restrict the history and evaluate from time 0.
    const auto expected = oracle.Evaluate(iq->spec(), 0, past);
    EXPECT_EQ(SortedRowKeys(h.engine.AnswersFor(*qid)),
              SortedRowKeys(expected))
        << iq->spec().ToString();
  }
}

// Continuous queries trigger the same kernel span-by-span as tuples
// arrive; interleaving submissions and publications covers both the OnEval
// trigger walk and mid-stream stored-state probes.
TEST_P(BatchProbeKernelTest, InterleavedStreamMatchesScalarOracle) {
  const uint64_t seed = GetParam();
  workload::WorkloadParams wp;
  wp.num_relations = 3;
  wp.num_attributes = 2;
  wp.num_values = 3;
  wp.zipf_theta = 0.5;
  auto catalog = workload::BuildCatalog(wp);

  EngineConfig cfg;
  cfg.keep_history = true;
  Harness h(24, cfg, std::move(*catalog), seed);

  workload::QueryGenerator qgen(wp, &h.catalog, seed * 3 + 1);
  workload::TupleGenerator tgen(wp, &h.catalog, seed * 5 + 2);
  workload::TupleGenerator::Draw d;
  std::vector<uint64_t> qids;
  for (int i = 0; i < 45; ++i) {
    if (i % 15 == 0) {  // A new query every 15 tuples, mid-stream.
      auto qid = h.engine.SubmitQuery(static_cast<dht::NodeIndex>(i % 24),
                                      qgen.Next(2));
      ASSERT_TRUE(qid.ok());
      qids.push_back(*qid);
    }
    tgen.Next(&d);
    ASSERT_TRUE(h.engine
                    .PublishTuple(static_cast<dht::NodeIndex>(i % 24),
                                  d.relation, d.values)
                    .ok());
    h.simulator.Run();
    h.simulator.RunUntil(h.simulator.Now() + 2);
  }

  sql::CentralizedEvaluator oracle(&h.catalog);
  for (uint64_t qid : qids) {
    auto iq = h.engine.FindQuery(qid);
    ASSERT_NE(iq, nullptr);
    const auto expected =
        oracle.Evaluate(iq->spec(), iq->ins_time(), h.engine.history());
    EXPECT_EQ(SortedRowKeys(h.engine.AnswersFor(qid)),
              SortedRowKeys(expected))
        << iq->spec().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchProbeKernelTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace rjoin::core
