#include <gtest/gtest.h>

#include "sql/evaluator.h"
#include "sql/parser.h"
#include "sql/query.h"
#include "sql/rewriter.h"
#include "sql/schema.h"
#include "sql/tuple.h"
#include "sql/value.h"

namespace rjoin::sql {
namespace {

// ----------------------------------------------------------------- Value --

TEST(ValueTest, IntBasics) {
  const Value v = Value::Int(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_EQ(v.ToKeyString(), "42");
  EXPECT_EQ(v.ToDisplayString(), "42");
}

TEST(ValueTest, StringBasics) {
  const Value v = Value::Str("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_EQ(v.ToDisplayString(), "'hello'");
}

TEST(ValueTest, EqualityAcrossKinds) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
}

TEST(ValueTest, HasherDistinguishes) {
  Value::Hasher h;
  EXPECT_NE(h(Value::Int(1)), h(Value::Int(2)));
}

// ---------------------------------------------------------------- Schema --

TEST(SchemaTest, AttrIndex) {
  Schema s("R", {"A", "B", "C"});
  EXPECT_EQ(s.AttrIndex("A"), 0);
  EXPECT_EQ(s.AttrIndex("C"), 2);
  EXPECT_EQ(s.AttrIndex("Z"), -1);
  EXPECT_EQ(s.arity(), 3u);
}

TEST(CatalogTest, AddAndFind) {
  Catalog c;
  EXPECT_TRUE(c.AddRelation(Schema("R", {"A"})).ok());
  EXPECT_EQ(c.AddRelation(Schema("R", {"B"})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_NE(c.Find("R"), nullptr);
  EXPECT_EQ(c.Find("S"), nullptr);
  EXPECT_EQ(c.size(), 1u);
}

// ---------------------------------------------------------------- Parser --

TEST(ParserTest, PaperExampleQuery) {
  auto q = Parser::Parse(
      "select R.B, S.B from R,S,P where R.A=S.A and S.B=P.B");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(q->distinct);
  ASSERT_EQ(q->select_list.size(), 2u);
  EXPECT_EQ(q->select_list[0].attr.ToString(), "R.B");
  ASSERT_EQ(q->relations.size(), 3u);
  ASSERT_EQ(q->joins.size(), 2u);
  EXPECT_EQ(q->joins[0].ToString(), "R.A=S.A");
  EXPECT_EQ(q->joins[1].ToString(), "S.B=P.B");
  EXPECT_TRUE(q->selections.empty());
}

TEST(ParserTest, RewrittenFormWithConstants) {
  // The paper's q2: "select 5, S.B from S,P where 3=S.A and S.B=P.B".
  auto q = Parser::Parse("select 5, S.B from S,P where 3=S.A and S.B=P.B");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->select_list.size(), 2u);
  EXPECT_TRUE(q->select_list[0].is_constant());
  EXPECT_EQ(*q->select_list[0].constant, Value::Int(5));
  ASSERT_EQ(q->selections.size(), 1u);
  EXPECT_EQ(q->selections[0].attr.ToString(), "S.A");
  EXPECT_EQ(q->selections[0].value, Value::Int(3));
  ASSERT_EQ(q->joins.size(), 1u);
}

TEST(ParserTest, DistinctKeyword) {
  auto q = Parser::Parse("SELECT DISTINCT R.A FROM R,S WHERE R.A = S.B");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
}

TEST(ParserTest, CaseInsensitiveKeywordsCaseSensitiveIdents) {
  auto q = Parser::Parse("sElEcT r.a FrOm r, s WhErE r.a = s.b");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->relations[0], "r");  // identifiers keep their case
}

TEST(ParserTest, StringLiterals) {
  auto q = Parser::Parse("SELECT R.A FROM R WHERE R.B = 'abc def'");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->selections.size(), 1u);
  EXPECT_EQ(q->selections[0].value, Value::Str("abc def"));
}

TEST(ParserTest, NegativeIntegers) {
  auto q = Parser::Parse("SELECT R.A FROM R WHERE R.B = -17");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->selections[0].value, Value::Int(-17));
}

TEST(ParserTest, WindowClauseTuples) {
  auto q = Parser::Parse(
      "SELECT R.A FROM R,S WHERE R.A=S.A WINDOW 100 TUPLES");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->window.use_windows);
  EXPECT_EQ(q->window.size, 100u);
  EXPECT_EQ(q->window.unit, WindowSpec::Unit::kTuples);
  EXPECT_EQ(q->window.kind, WindowSpec::Kind::kSliding);
}

TEST(ParserTest, WindowClauseTimeTumbling) {
  auto q = Parser::Parse(
      "SELECT R.A FROM R,S WHERE R.A=S.A WINDOW 500 TIME TUMBLING");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->window.unit, WindowSpec::Unit::kTime);
  EXPECT_EQ(q->window.kind, WindowSpec::Kind::kTumbling);
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* kQueries[] = {
      "SELECT R.B, S.B FROM R, S, P WHERE R.A=S.A AND S.B=P.B",
      "SELECT DISTINCT R.A FROM R, S WHERE R.A=S.B AND R.C=5",
      "SELECT 5, S.B FROM S, P WHERE S.A=3 AND S.B=P.B",
      "SELECT R.A FROM R, S WHERE R.A=S.A WINDOW 42 TUPLES",
  };
  for (const char* text : kQueries) {
    auto q1 = Parser::Parse(text);
    ASSERT_TRUE(q1.ok()) << text;
    auto q2 = Parser::Parse(q1->ToString());
    ASSERT_TRUE(q2.ok()) << q1->ToString();
    EXPECT_EQ(q1->ToString(), q2->ToString());
  }
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parser::Parse("").ok());
  EXPECT_FALSE(Parser::Parse("SELECT").ok());
  EXPECT_FALSE(Parser::Parse("SELECT R.A").ok());               // no FROM
  EXPECT_FALSE(Parser::Parse("SELECT R.A FROM R WHERE").ok());  // empty where
  EXPECT_FALSE(Parser::Parse("SELECT R.A FROM R WHERE R.A").ok());
  EXPECT_FALSE(Parser::Parse("SELECT R.A FROM R WHERE 1=2").ok());
  EXPECT_FALSE(Parser::Parse("SELECT R.A FROM R extra garbage = 1").ok());
  EXPECT_FALSE(Parser::Parse("SELECT R.A FROM R WHERE R.A = 'oops").ok());
  EXPECT_FALSE(
      Parser::Parse("SELECT R.A FROM R,S WHERE R.A=S.A WINDOW 10").ok());
}

// ----------------------------------------------------------- Query model --

TEST(QueryTest, WhereAttrsInClauseOrder) {
  auto q = Parser::Parse(
      "SELECT R.B FROM R,S,P WHERE R.A=S.A AND S.B=P.B AND P.C=1");
  ASSERT_TRUE(q.ok());
  auto attrs = q->AllWhereAttrs();
  ASSERT_EQ(attrs.size(), 5u);
  EXPECT_EQ(attrs[0].ToString(), "R.A");
  EXPECT_EQ(attrs[1].ToString(), "S.A");
  EXPECT_EQ(attrs[2].ToString(), "S.B");
  EXPECT_EQ(attrs[3].ToString(), "P.B");
  EXPECT_EQ(attrs[4].ToString(), "P.C");
  auto s_attrs = q->WhereAttrsOf("S");
  ASSERT_EQ(s_attrs.size(), 2u);
}

// -------------------------------------------------------------- Rewriter --

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation(Schema("R", {"A", "B"})).ok());
    ASSERT_TRUE(catalog_.AddRelation(Schema("S", {"A", "B"})).ok());
    ASSERT_TRUE(catalog_.AddRelation(Schema("P", {"B", "C"})).ok());
  }
  Catalog catalog_;
};

TEST_F(RewriterTest, PaperSection3Example) {
  // q1: select R.B, S.B from R,S,P where R.A=S.A and S.B=P.B
  // incoming R tuple (3,5) =>
  // q2: select 5, S.B from S,P where 3=S.A and S.B=P.B
  auto q1 = Parser::Parse(
      "select R.B, S.B from R,S,P where R.A=S.A and S.B=P.B");
  ASSERT_TRUE(q1.ok());
  Rewriter rewriter(&catalog_);
  auto t = MakeTuple("R", {Value::Int(3), Value::Int(5)}, 1, 1, 1);
  ASSERT_TRUE(rewriter.Triggers(*q1, *t));
  auto q2 = rewriter.Rewrite(*q1, *t);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->ToString(), "SELECT 5, S.B FROM S, P WHERE S.B=P.B AND S.A=3");
  EXPECT_FALSE(q2->IsComplete());
}

TEST_F(RewriterTest, FullChainToCompletion) {
  auto q = Parser::Parse(
      "select R.B, S.B from R,S,P where R.A=S.A and S.B=P.B");
  ASSERT_TRUE(q.ok());
  Rewriter rewriter(&catalog_);
  auto r = MakeTuple("R", {Value::Int(3), Value::Int(5)}, 1, 1, 1);
  auto s = MakeTuple("S", {Value::Int(3), Value::Int(7)}, 2, 2, 2);
  auto p = MakeTuple("P", {Value::Int(7), Value::Int(9)}, 3, 3, 3);

  auto q1 = rewriter.Rewrite(*q, *r);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(rewriter.Triggers(*q1, *s));
  auto q2 = rewriter.Rewrite(*q1, *s);
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(rewriter.Triggers(*q2, *p));
  auto q3 = rewriter.Rewrite(*q2, *p);
  ASSERT_TRUE(q3.ok());
  EXPECT_TRUE(q3->IsComplete());
  auto row = Rewriter::ExtractAnswer(*q3);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], Value::Int(5));
  EXPECT_EQ(row[1], Value::Int(7));
}

TEST_F(RewriterTest, NonMatchingSelectionDoesNotTrigger) {
  auto q = Parser::Parse("select S.B from S where S.A = 10");
  ASSERT_TRUE(q.ok());
  Rewriter rewriter(&catalog_);
  auto bad = MakeTuple("S", {Value::Int(9), Value::Int(1)}, 1, 1, 1);
  auto good = MakeTuple("S", {Value::Int(10), Value::Int(1)}, 1, 1, 2);
  EXPECT_FALSE(rewriter.Triggers(*q, *bad));
  EXPECT_TRUE(rewriter.Triggers(*q, *good));
  EXPECT_FALSE(rewriter.Rewrite(*q, *bad).ok());
}

TEST_F(RewriterTest, UnrelatedRelationDoesNotTrigger) {
  auto q = Parser::Parse("select R.B from R,S where R.A=S.A");
  ASSERT_TRUE(q.ok());
  Rewriter rewriter(&catalog_);
  auto t = MakeTuple("P", {Value::Int(1), Value::Int(2)}, 1, 1, 1);
  EXPECT_FALSE(rewriter.Triggers(*q, *t));
}

TEST_F(RewriterTest, ArityMismatchRejected) {
  auto q = Parser::Parse("select R.B from R,S where R.A=S.A");
  ASSERT_TRUE(q.ok());
  Rewriter rewriter(&catalog_);
  auto t = MakeTuple("R", {Value::Int(1)}, 1, 1, 1);  // R has arity 2
  EXPECT_FALSE(rewriter.Rewrite(*q, *t).ok());
}

// ------------------------------------------------------------- Evaluator --

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddRelation(Schema("R", {"A", "B"})).ok());
    ASSERT_TRUE(catalog_.AddRelation(Schema("S", {"A", "B"})).ok());
  }
  Catalog catalog_;
};

TEST_F(EvaluatorTest, BasicEquiJoin) {
  auto q = Parser::Parse("select R.B, S.B from R,S where R.A=S.A");
  ASSERT_TRUE(q.ok());
  std::vector<TuplePtr> tuples = {
      MakeTuple("R", {Value::Int(1), Value::Int(10)}, 1, 1, 1),
      MakeTuple("S", {Value::Int(1), Value::Int(20)}, 2, 2, 2),
      MakeTuple("S", {Value::Int(2), Value::Int(30)}, 3, 3, 3),
  };
  CentralizedEvaluator eval(&catalog_);
  auto rows = eval.Evaluate(*q, 0, tuples);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(10));
  EXPECT_EQ(rows[0][1], Value::Int(20));
}

TEST_F(EvaluatorTest, BagSemanticsKeepsDuplicates) {
  // The paper's Example 2: (1,b) is produced twice.
  auto q = Parser::Parse("select R.A, S.A from R,S where R.B=S.B");
  ASSERT_TRUE(q.ok());
  std::vector<TuplePtr> tuples = {
      MakeTuple("R", {Value::Int(1), Value::Int(2)}, 1, 1, 1),
      MakeTuple("S", {Value::Str("b"), Value::Int(2)}, 2, 2, 2),
      MakeTuple("S", {Value::Str("b"), Value::Int(2)}, 3, 3, 3),
  };
  // Note: S.B here is S's second attribute; adjust to schema (A, B).
  CentralizedEvaluator eval(&catalog_);
  auto rows = eval.Evaluate(*q, 0, tuples);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(EvaluatorTest, DistinctCollapsesDuplicates) {
  auto q = Parser::Parse("select DISTINCT R.A, S.A from R,S where R.B=S.B");
  ASSERT_TRUE(q.ok());
  std::vector<TuplePtr> tuples = {
      MakeTuple("R", {Value::Int(1), Value::Int(2)}, 1, 1, 1),
      MakeTuple("S", {Value::Str("b"), Value::Int(2)}, 2, 2, 2),
      MakeTuple("S", {Value::Str("b"), Value::Int(2)}, 3, 3, 3),
  };
  CentralizedEvaluator eval(&catalog_);
  auto rows = eval.Evaluate(*q, 0, tuples);
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(EvaluatorTest, InsertionTimeExcludesOlderTuples) {
  auto q = Parser::Parse("select R.B, S.B from R,S where R.A=S.A");
  ASSERT_TRUE(q.ok());
  std::vector<TuplePtr> tuples = {
      MakeTuple("R", {Value::Int(1), Value::Int(10)}, /*pub=*/5, 1, 1),
      MakeTuple("S", {Value::Int(1), Value::Int(20)}, /*pub=*/15, 2, 2),
  };
  CentralizedEvaluator eval(&catalog_);
  EXPECT_EQ(eval.Evaluate(*q, 0, tuples).size(), 1u);
  EXPECT_EQ(eval.Evaluate(*q, 10, tuples).size(), 0u);  // R tuple too old
}

TEST_F(EvaluatorTest, SlidingWindowBoundsCombinations) {
  auto q = Parser::Parse(
      "select R.B, S.B from R,S where R.A=S.A WINDOW 10 TIME");
  ASSERT_TRUE(q.ok());
  std::vector<TuplePtr> tuples = {
      MakeTuple("R", {Value::Int(1), Value::Int(10)}, /*pub=*/100, 1, 1),
      MakeTuple("S", {Value::Int(1), Value::Int(20)}, /*pub=*/105, 2, 2),
      MakeTuple("S", {Value::Int(1), Value::Int(30)}, /*pub=*/120, 3, 3),
  };
  CentralizedEvaluator eval(&catalog_);
  auto rows = eval.Evaluate(*q, 0, tuples);
  ASSERT_EQ(rows.size(), 1u);  // Only the (100,105) pair fits in W=10.
  EXPECT_EQ(rows[0][1], Value::Int(20));
}

TEST_F(EvaluatorTest, TumblingWindowUsesEpochs) {
  auto q = Parser::Parse(
      "select R.B, S.B from R,S where R.A=S.A WINDOW 10 TIME TUMBLING");
  ASSERT_TRUE(q.ok());
  std::vector<TuplePtr> tuples = {
      MakeTuple("R", {Value::Int(1), Value::Int(10)}, /*pub=*/8, 1, 1),
      MakeTuple("S", {Value::Int(1), Value::Int(20)}, /*pub=*/9, 2, 2),
      MakeTuple("S", {Value::Int(1), Value::Int(30)}, /*pub=*/11, 3, 3),
  };
  // pub 8 and 9 share epoch [0,10); pub 11 is in [10,20).
  CentralizedEvaluator eval(&catalog_);
  auto rows = eval.Evaluate(*q, 0, tuples);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Int(20));
}

TEST_F(EvaluatorTest, TupleWindowUsesSequenceNumbers) {
  auto q = Parser::Parse(
      "select R.B, S.B from R,S where R.A=S.A WINDOW 2 TUPLES");
  ASSERT_TRUE(q.ok());
  std::vector<TuplePtr> tuples = {
      MakeTuple("R", {Value::Int(1), Value::Int(10)}, 1, /*seq=*/1, 1),
      MakeTuple("S", {Value::Int(1), Value::Int(20)}, 2, /*seq=*/2, 2),
      MakeTuple("S", {Value::Int(1), Value::Int(30)}, 3, /*seq=*/5, 3),
  };
  CentralizedEvaluator eval(&catalog_);
  auto rows = eval.Evaluate(*q, 0, tuples);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Int(20));
}

TEST_F(EvaluatorTest, AnswerRowKeyDistinguishesRows) {
  EXPECT_NE(AnswerRowKey({Value::Int(1), Value::Int(2)}),
            AnswerRowKey({Value::Int(12)}));
  EXPECT_EQ(AnswerRowKey({Value::Int(1)}), AnswerRowKey({Value::Int(1)}));
}

}  // namespace
}  // namespace rjoin::sql
