// Tests of the batched ingest hot path: RJoinEngine::PublishBatch and
// ObserveStreamHistoryBulk must be observationally identical to the
// equivalent sequence of per-tuple calls — same answers, same message
// counts, same stored state — while error paths must leave no partial state.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "runtime/shard_router.h"
#include "runtime/sharded_runtime.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/evaluator.h"
#include "sql/schema.h"
#include "stats/metrics.h"
#include "workload/generator.h"

namespace rjoin::core {
namespace {

struct Harness {
  /// `shards` > 0 routes the engine through the sharded parallel runtime
  /// (the RJOIN_SHARDS path); 0 keeps the serial simulator.
  Harness(size_t nodes, EngineConfig cfg, uint64_t seed = 7,
          uint32_t shards = 0)
      : catalog(TestCatalog()),
        network(dht::ChordNetwork::Create(nodes, seed)),
        latency(std::make_unique<sim::FixedLatency>(1)),
        metrics(network->num_total()),
        transport(network.get(), &simulator, latency.get(), &metrics,
                  Rng(seed * 31)),
        engine(cfg, &catalog, network.get(), &transport, &simulator,
               &metrics) {
    if (shards > 0) {
      runtime = std::make_unique<runtime::ShardedRuntime>(
          runtime::ShardedRuntime::Options{
              .shards = shards,
              .lookahead = runtime::AutoRoundWidth(*latency)},
          network->num_total(), &metrics);
      router =
          std::make_unique<runtime::ShardRouter>(runtime.get(), seed * 31);
      transport.set_router(router.get());
      engine.AttachRuntime(runtime.get());
    }
  }

  void Run() {
    if (runtime != nullptr) {
      runtime->Run();
    } else {
      simulator.Run();
    }
  }

  static sql::Catalog TestCatalog() {
    sql::Catalog c;
    EXPECT_TRUE(c.AddRelation(sql::Schema("R", {"A", "B", "C"})).ok());
    EXPECT_TRUE(c.AddRelation(sql::Schema("S", {"A", "B", "C"})).ok());
    EXPECT_TRUE(c.AddRelation(sql::Schema("P", {"A", "B", "C"})).ok());
    return c;
  }

  uint64_t Submit(dht::NodeIndex owner, const std::string& text) {
    auto id = engine.SubmitQuerySql(owner, text);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    Run();
    return *id;
  }

  sql::Catalog catalog;
  std::unique_ptr<dht::ChordNetwork> network;
  sim::Simulator simulator;
  std::unique_ptr<sim::LatencyModel> latency;
  stats::MetricsRegistry metrics;
  dht::Transport transport;
  RJoinEngine engine;
  // Declared last so worker threads join (and shard heaps drain into
  // still-live pools) before the rest of the stack is destroyed.
  std::unique_ptr<runtime::ShardedRuntime> runtime;
  std::unique_ptr<runtime::ShardRouter> router;
};

std::vector<sql::Value> Row(std::vector<int64_t> ints) {
  std::vector<sql::Value> vals;
  vals.reserve(ints.size());
  for (int64_t v : ints) vals.push_back(sql::Value::Int(v));
  return vals;
}

std::vector<std::string> SortedRowKeys(const std::vector<Answer>& answers) {
  std::vector<std::string> keys;
  keys.reserve(answers.size());
  for (const Answer& a : answers) {
    keys.push_back(std::to_string(a.query_id) + "/" +
                   sql::AnswerRowKey(a.row));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// The workload both harnesses of the equivalence tests run: two continuous
// joins, then the same tuple stream — via PublishTuple in one and
// PublishBatch in the other.
const char* kQueryRS = "SELECT R.B, S.B FROM R, S WHERE R.A = S.A";
const char* kQuerySP = "SELECT S.C, P.C FROM S, P WHERE S.B = P.B";

std::vector<std::pair<std::string, std::vector<int64_t>>> StreamRows() {
  return {
      {"R", {1, 10, 100}}, {"R", {2, 20, 200}}, {"R", {1, 11, 101}},
      {"S", {1, 5, 50}},   {"S", {2, 5, 51}},   {"S", {3, 6, 52}},
      {"P", {9, 5, 90}},   {"P", {9, 6, 91}},
  };
}

void RunQueries(Harness& h) {
  h.Submit(0, kQueryRS);
  h.Submit(1, kQuerySP);
}

TEST(PublishBatchTest, BatchOfOneEqualsPublishTuple) {
  EngineConfig cfg;
  Harness single(64, cfg);
  Harness batched(64, cfg);
  RunQueries(single);
  RunQueries(batched);

  for (const auto& [rel, ints] : StreamRows()) {
    auto t = single.engine.PublishTuple(3, rel, Row(ints));
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    single.simulator.Run();

    std::vector<std::vector<sql::Value>> rows;
    rows.push_back(Row(ints));
    auto b = batched.engine.PublishBatch(3, rel, std::move(rows));
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(b->size(), 1u);
    batched.simulator.Run();

    EXPECT_EQ((*t)->seq_no, (*b)[0]->seq_no);
    EXPECT_EQ((*t)->pub_time, (*b)[0]->pub_time);
  }

  EXPECT_EQ(single.metrics.total_messages(), batched.metrics.total_messages());
  EXPECT_EQ(single.metrics.total_qpl(), batched.metrics.total_qpl());
  EXPECT_EQ(single.metrics.total_storage(), batched.metrics.total_storage());
  EXPECT_EQ(single.engine.CountStoredTuples(),
            batched.engine.CountStoredTuples());
  EXPECT_EQ(single.engine.CountStoredQueries(),
            batched.engine.CountStoredQueries());
  EXPECT_FALSE(single.engine.answers().empty());
  EXPECT_EQ(SortedRowKeys(single.engine.answers()),
            SortedRowKeys(batched.engine.answers()));
}

TEST(PublishBatchTest, WholeBatchEqualsSequentialPublishes) {
  EngineConfig cfg;
  Harness single(64, cfg);
  Harness batched(64, cfg);
  RunQueries(single);
  RunQueries(batched);

  // Sequential publishes without intermediate Run(): the messages enter the
  // network exactly as one batch per relation would send them.
  for (const auto& [rel, ints] : StreamRows()) {
    if (rel != "R") continue;
    ASSERT_TRUE(single.engine.PublishTuple(3, rel, Row(ints)).ok());
  }
  std::vector<std::vector<sql::Value>> r_rows;
  for (const auto& [rel, ints] : StreamRows()) {
    if (rel == "R") r_rows.push_back(Row(ints));
  }
  auto b = batched.engine.PublishBatch(3, "R", std::move(r_rows));
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->size(), 3u);

  single.simulator.Run();
  batched.simulator.Run();

  // Sequence numbers continue from the same counter in the same order.
  EXPECT_EQ((*b)[0]->seq_no + 1, (*b)[1]->seq_no);
  EXPECT_EQ((*b)[1]->seq_no + 1, (*b)[2]->seq_no);

  EXPECT_EQ(single.metrics.total_messages(), batched.metrics.total_messages());
  EXPECT_EQ(single.metrics.total_qpl(), batched.metrics.total_qpl());
  EXPECT_EQ(single.engine.CountStoredTuples(),
            batched.engine.CountStoredTuples());
  EXPECT_EQ(SortedRowKeys(single.engine.answers()),
            SortedRowKeys(batched.engine.answers()));
}

TEST(PublishBatchTest, UnknownRelationPublishesNothing) {
  EngineConfig cfg;
  cfg.keep_history = true;
  Harness h(64, cfg);
  const uint64_t msgs_before = h.metrics.total_messages();

  std::vector<std::vector<sql::Value>> rows;
  rows.push_back(Row({1, 2, 3}));
  auto b = h.engine.PublishBatch(0, "NoSuchRelation", std::move(rows));
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kNotFound);

  h.simulator.Run();
  EXPECT_EQ(h.metrics.total_messages(), msgs_before);
  EXPECT_TRUE(h.engine.history().empty());
}

TEST(PublishBatchTest, ArityMismatchAnywhereInBatchIsAtomic) {
  EngineConfig cfg;
  cfg.keep_history = true;
  Harness h(64, cfg);

  // First row valid, second row too short: nothing may be published, no
  // sequence number may be consumed.
  std::vector<std::vector<sql::Value>> rows;
  rows.push_back(Row({1, 2, 3}));
  rows.push_back(Row({4, 5}));
  auto b = h.engine.PublishBatch(0, "R", std::move(rows));
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kInvalidArgument);

  h.simulator.Run();
  EXPECT_EQ(h.metrics.total_messages(), 0u);
  EXPECT_EQ(h.engine.CountStoredTuples(), 0u);
  EXPECT_TRUE(h.engine.history().empty());

  // The failed batch must not have burned sequence numbers: the next publish
  // starts where a fresh engine would.
  auto t = h.engine.PublishTuple(0, "R", Row({1, 2, 3}));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->seq_no, 1u);
}

TEST(PublishBatchTest, EmptyBatchIsANoOp) {
  EngineConfig cfg;
  Harness h(64, cfg);
  auto b = h.engine.PublishBatch(0, "R", {});
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(b->empty());
  h.simulator.Run();
  EXPECT_EQ(h.metrics.total_messages(), 0u);
}

TEST(PublishBatchTest, AttrReplicationShardsCycleLikeSequentialPublishes) {
  EngineConfig cfg;
  cfg.attr_replication = 3;
  Harness single(64, cfg);
  Harness batched(64, cfg);
  Harness unreplicated(64, EngineConfig{});
  RunQueries(single);
  RunQueries(batched);
  RunQueries(unreplicated);

  for (const auto& [rel, ints] : StreamRows()) {
    ASSERT_TRUE(single.engine.PublishTuple(3, rel, Row(ints)).ok());
    ASSERT_TRUE(unreplicated.engine.PublishTuple(3, rel, Row(ints)).ok());
  }
  // Same global publication order (R rows, then S, then P) in both engines,
  // so seq_no % replication — the shard assignment — matches row for row.
  for (const auto& [rel, ints] : StreamRows()) {
    std::vector<std::vector<sql::Value>> one;
    one.push_back(Row(ints));
    ASSERT_TRUE(batched.engine.PublishBatch(3, rel, std::move(one)).ok());
  }
  single.simulator.Run();
  batched.simulator.Run();
  unreplicated.simulator.Run();

  EXPECT_EQ(single.metrics.total_messages(), batched.metrics.total_messages());
  EXPECT_EQ(single.metrics.total_qpl(), batched.metrics.total_qpl());
  EXPECT_EQ(SortedRowKeys(single.engine.answers()),
            SortedRowKeys(batched.engine.answers()));
  // Replication spreads load but must not duplicate or lose answers; the
  // batched path under r=3 delivers the same rows as an unreplicated engine.
  EXPECT_EQ(SortedRowKeys(batched.engine.answers()),
            SortedRowKeys(unreplicated.engine.answers()));
}

TEST(ObserveBulkTest, BulkObservationsDriveTheSameRicDecisions) {
  // Prime two engines with identical stream history — one per tuple, one
  // bulk — then submit the same query under the RIC policy. If the recorded
  // rates differ, the indexing decision and therefore the traffic differ.
  EngineConfig cfg;
  cfg.policy = PlannerPolicy::kRic;
  Harness per_tuple(64, cfg);
  Harness bulk(64, cfg);

  std::vector<std::vector<sql::Value>> hot_r, cold_s;
  for (int64_t i = 0; i < 40; ++i) hot_r.push_back(Row({1, i, i}));
  for (int64_t i = 0; i < 2; ++i) cold_s.push_back(Row({1, i, i}));

  for (const auto& row : hot_r) {
    ASSERT_TRUE(per_tuple.engine.ObserveStreamHistory("R", row).ok());
  }
  for (const auto& row : cold_s) {
    ASSERT_TRUE(per_tuple.engine.ObserveStreamHistory("S", row).ok());
  }
  ASSERT_TRUE(bulk.engine.ObserveStreamHistoryBulk("R", hot_r).ok());
  ASSERT_TRUE(bulk.engine.ObserveStreamHistoryBulk("S", cold_s).ok());

  RunQueries(per_tuple);
  RunQueries(bulk);
  EXPECT_EQ(per_tuple.metrics.total_messages(), bulk.metrics.total_messages());
  EXPECT_EQ(per_tuple.metrics.total_ric_messages(),
            bulk.metrics.total_ric_messages());
  EXPECT_EQ(per_tuple.engine.CountStoredQueries(),
            bulk.engine.CountStoredQueries());
}

TEST(ObserveBulkTest, BulkValidatesEveryRowFirst) {
  EngineConfig cfg;
  cfg.policy = PlannerPolicy::kRic;
  Harness h(64, cfg);

  std::vector<std::vector<sql::Value>> rows;
  rows.push_back(Row({1, 2, 3}));
  rows.push_back(Row({1}));  // Bad arity.
  auto s = h.engine.ObserveStreamHistoryBulk("R", rows);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(h.engine.ObserveStreamHistoryBulk("NoSuchRelation", {}).code(),
            StatusCode::kNotFound);

  // Nothing was recorded: an engine that never observed anything makes the
  // same (rate-blind) indexing decision and spends the same traffic.
  Harness fresh(64, cfg);
  h.Submit(0, kQueryRS);
  fresh.Submit(0, kQueryRS);
  EXPECT_EQ(h.metrics.total_messages(), fresh.metrics.total_messages());
}

TEST(TupleGeneratorBatchTest, NextBatchGroupsByRelationPreservingOrder) {
  workload::WorkloadParams params;
  params.num_relations = 4;
  params.num_attributes = 3;
  auto catalog = workload::BuildCatalog(params);

  // Two generators with the same seed: Next() defines the reference stream.
  workload::TupleGenerator reference(params, catalog.get(), 17);
  workload::TupleGenerator grouped(params, catalog.get(), 17);

  constexpr size_t kN = 100;
  std::vector<workload::TupleGenerator::Draw> draws;
  for (size_t i = 0; i < kN; ++i) draws.push_back(reference.Next());
  const auto batches = grouped.NextBatch(kN);

  size_t total = 0;
  for (const auto& b : batches) {
    EXPECT_FALSE(b.rows.empty());
    total += b.rows.size();
    // Row order within a group follows draw order; verify against the
    // reference stream filtered to this relation.
    size_t next = 0;
    for (const auto& d : draws) {
      if (d.relation != b.relation) continue;
      ASSERT_LT(next, b.rows.size());
      EXPECT_EQ(d.values.size(), b.rows[next].size());
      for (size_t v = 0; v < d.values.size(); ++v) {
        EXPECT_EQ(d.values[v].ToKeyString(), b.rows[next][v].ToKeyString());
      }
      ++next;
    }
    EXPECT_EQ(next, b.rows.size());
  }
  EXPECT_EQ(total, kN);

  // Relations must not repeat across groups.
  for (size_t i = 0; i < batches.size(); ++i) {
    for (size_t j = i + 1; j < batches.size(); ++j) {
      EXPECT_NE(batches[i].relation, batches[j].relation);
    }
  }
}

// ------------------------------------------- sharded-runtime equivalence --
//
// Batched ingest must stay observationally identical to per-tuple ingest
// when the engine runs on the sharded parallel runtime (the RJOIN_SHARDS
// path): same MultiSend envelope chains, same emission-seq draws, same
// barrier schedule.

/// Runs the standard two-query workload with `batched` choosing the ingest
/// path, on `shards` workers (0 = serial).
std::unique_ptr<Harness> RunShardedWorkload(bool batched, uint32_t shards) {
  auto harness =
      std::make_unique<Harness>(64, EngineConfig{}, /*seed=*/7, shards);
  Harness& h = *harness;
  RunQueries(h);
  if (batched) {
    // Group consecutive same-relation rows exactly as the stream emits
    // them, preserving the global publication order.
    const auto stream = StreamRows();
    size_t i = 0;
    while (i < stream.size()) {
      const std::string rel = stream[i].first;
      std::vector<std::vector<sql::Value>> rows;
      while (i < stream.size() && stream[i].first == rel) {
        rows.push_back(Row(stream[i].second));
        ++i;
      }
      EXPECT_TRUE(h.engine.PublishBatch(3, rel, std::move(rows)).ok());
      h.Run();
    }
  } else {
    for (const auto& [rel, ints] : StreamRows()) {
      EXPECT_TRUE(h.engine.PublishTuple(3, rel, Row(ints)).ok());
      h.Run();
    }
  }
  return harness;
}

void ExpectEquivalent(Harness& a, Harness& b) {
  EXPECT_EQ(a.metrics.total_messages(), b.metrics.total_messages());
  EXPECT_EQ(a.metrics.total_qpl(), b.metrics.total_qpl());
  EXPECT_EQ(a.metrics.total_storage(), b.metrics.total_storage());
  EXPECT_EQ(a.engine.CountStoredTuples(), b.engine.CountStoredTuples());
  EXPECT_EQ(a.engine.CountStoredQueries(), b.engine.CountStoredQueries());
  EXPECT_FALSE(a.engine.answers().empty());
  EXPECT_EQ(SortedRowKeys(a.engine.answers()),
            SortedRowKeys(b.engine.answers()));
}

TEST(ShardedBatchTest, BatchEqualsSinglesOnTheShardedRuntime) {
  auto singles = RunShardedWorkload(/*batched=*/false, /*shards=*/4);
  auto batched = RunShardedWorkload(/*batched=*/true, /*shards=*/4);
  ExpectEquivalent(*singles, *batched);
}

TEST(ShardedBatchTest, ShardedBatchMatchesOneShardBitIdentically) {
  auto s1p = RunShardedWorkload(/*batched=*/true, /*shards=*/1);
  auto s4p = RunShardedWorkload(/*batched=*/true, /*shards=*/4);
  Harness& s1 = *s1p;
  Harness& s4 = *s4p;
  ExpectEquivalent(s1, s4);
  // Bit-identical, not just same multiset: delivery order and times match.
  ASSERT_EQ(s1.engine.answers().size(), s4.engine.answers().size());
  for (size_t i = 0; i < s1.engine.answers().size(); ++i) {
    EXPECT_EQ(s1.engine.answers()[i].query_id,
              s4.engine.answers()[i].query_id);
    EXPECT_EQ(s1.engine.answers()[i].delivered_at,
              s4.engine.answers()[i].delivered_at);
    EXPECT_EQ(sql::AnswerRowKey(s1.engine.answers()[i].row),
              sql::AnswerRowKey(s4.engine.answers()[i].row));
  }
}

TEST(ShardedBatchTest, ObserveBulkMatchesSinglesOnTheShardedRuntime) {
  // Identical stream history — bulk vs per-tuple — then the same RIC-driven
  // workload on 4 shards: any rate divergence changes indexing decisions
  // and therefore traffic.
  Harness bulk(64, EngineConfig{}, /*seed=*/7, /*shards=*/4);
  Harness singles(64, EngineConfig{}, /*seed=*/7, /*shards=*/4);

  std::vector<std::pair<std::string, std::vector<int64_t>>> history = {
      {"R", {1, 10, 100}}, {"R", {1, 11, 101}}, {"S", {1, 5, 50}},
      {"S", {2, 5, 51}},   {"P", {9, 5, 90}},
  };
  std::vector<std::vector<sql::Value>> r_rows, s_rows, p_rows;
  for (const auto& [rel, ints] : history) {
    ASSERT_TRUE(singles.engine.ObserveStreamHistory(rel, Row(ints)).ok());
    auto& bucket = rel == "R" ? r_rows : (rel == "S" ? s_rows : p_rows);
    bucket.push_back(Row(ints));
  }
  ASSERT_TRUE(bulk.engine.ObserveStreamHistoryBulk("R", r_rows).ok());
  ASSERT_TRUE(bulk.engine.ObserveStreamHistoryBulk("S", s_rows).ok());
  ASSERT_TRUE(bulk.engine.ObserveStreamHistoryBulk("P", p_rows).ok());

  RunQueries(bulk);
  RunQueries(singles);
  for (const auto& [rel, ints] : StreamRows()) {
    ASSERT_TRUE(bulk.engine.PublishTuple(3, rel, Row(ints)).ok());
    ASSERT_TRUE(singles.engine.PublishTuple(3, rel, Row(ints)).ok());
    bulk.Run();
    singles.Run();
  }
  ExpectEquivalent(bulk, singles);
}

}  // namespace
}  // namespace rjoin::core
