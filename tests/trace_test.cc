#include <gtest/gtest.h>

#include <sstream>
#include <tuple>
#include <vector>

#include "stats/histogram.h"
#include "stats/trace.h"
#include "workload/experiment.h"

namespace rjoin {
namespace {

using stats::LogHistogram;
using stats::TraceCategory;
using stats::TraceEvent;
using stats::Tracer;

// ------------------------------------------------------------ LogHistogram

TEST(LogHistogramTest, EmptyReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
}

TEST(LogHistogramTest, SmallValuesAreExact) {
  // Values below 2^kSubBits each get their own bucket, so the reported
  // percentile (the bucket lower bound) is the value itself.
  LogHistogram h;
  for (uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) h.Record(v);
  EXPECT_EQ(h.count(), LogHistogram::kSubBuckets);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_EQ(h.Percentile(100), 15u);
  EXPECT_EQ(h.Percentile(0), 0u);  // rank clamps to the first sample
}

TEST(LogHistogramTest, BucketBoundsAreConsistent) {
  // The bucket lower bound never exceeds the value, and relative bucket
  // error is bounded by 1/2^kSubBits.
  for (uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{15}, uint64_t{16}, uint64_t{17},
        uint64_t{31}, uint64_t{32}, uint64_t{1000}, uint64_t{1} << 20,
        (uint64_t{1} << 20) + 12345, uint64_t{1} << 40,
        ~uint64_t{0} >> 1, ~uint64_t{0}}) {
    const uint32_t idx = LogHistogram::BucketIndex(v);
    ASSERT_LT(idx, LogHistogram::kBuckets) << "v=" << v;
    const uint64_t lo = LogHistogram::BucketLowerBound(idx);
    EXPECT_LE(lo, v) << "v=" << v;
    if (v >= LogHistogram::kSubBuckets) {
      // Width of the bucket at v is lo / kSubBuckets.
      EXPECT_LE(static_cast<double>(v - lo),
                static_cast<double>(lo) / LogHistogram::kSubBuckets)
          << "v=" << v;
    } else {
      EXPECT_EQ(lo, v);
    }
    // Bucket indices are monotone in the value.
    if (v > 0) EXPECT_GE(idx, LogHistogram::BucketIndex(v - 1));
  }
}

TEST(LogHistogramTest, PercentileFindsMedian) {
  LogHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  // Rank 50 is value 50; bucket lower bound of 50 is 48 ([48,52) bucket).
  EXPECT_EQ(h.Percentile(50),
            LogHistogram::BucketLowerBound(LogHistogram::BucketIndex(50)));
  EXPECT_EQ(h.Percentile(100),
            LogHistogram::BucketLowerBound(LogHistogram::BucketIndex(100)));
}

TEST(LogHistogramTest, MergeMatchesCombinedRecording) {
  LogHistogram a, b, combined;
  for (uint64_t v = 0; v < 500; v += 3) {
    a.Record(v);
    combined.Record(v);
  }
  for (uint64_t v = 1; v < 800; v += 7) {
    b.Record(v * v);
    combined.Record(v * v);
  }
  a.MergeFrom(b);
  EXPECT_TRUE(a.CountsEqual(combined));
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {1.0, 25.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p)) << "p=" << p;
  }
}

TEST(LogHistogramTest, MergeFromEmptyKeepsState) {
  LogHistogram a, empty;
  a.Record(5);
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5u);
}

TEST(LogHistogramTest, DiffFromIsolatesNewSamples) {
  LogHistogram h;
  h.Record(10);
  h.Record(20);
  const LogHistogram base = h;
  h.Record(30);
  h.Record(40);
  const LogHistogram delta = h.DiffFrom(base);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_EQ(delta.sum(), 70u);
  EXPECT_EQ(delta.Percentile(100),
            LogHistogram::BucketLowerBound(LogHistogram::BucketIndex(40)));
}

// ----------------------------------------------------- trace determinism

// Small experiment that still exercises routing, rewrites, answers, and
// (optionally) churn, and fits comfortably in the default per-thread ring.
workload::ExperimentConfig SmallConfig(uint32_t shards, bool churn) {
  workload::ExperimentConfig cfg;
  cfg.num_nodes = 48;
  cfg.num_queries = 150;
  cfg.num_tuples = 30;
  cfg.way = 3;
  cfg.workload.num_relations = 6;
  cfg.workload.num_attributes = 6;
  cfg.workload.num_values = 40;
  cfg.workload.zipf_theta = 0.9;
  cfg.seed = 7;
  cfg.shards = shards;  // explicit, overriding RJOIN_SHARDS
  if (churn) {
    workload::ChurnSpec spec;
    spec.joins = 2;
    spec.leaves = 2;
    spec.spare_nodes = 3;
    spec.seed = 11;
    cfg.churn = spec;
  }
  return cfg;
}

struct TraceRun {
  std::vector<TraceEvent> events;  // kStall/kRendezvous filtered out
  Tracer::HistogramSet hist;
  uint64_t answers = 0;
};

// kStall and kRendezvous are wall-clock/schedule-dependent by design
// (docs/observability.md); everything else must be bit-identical across
// shard counts.
bool IsScheduleDependent(const TraceEvent& e) {
  return e.cat == TraceCategory::kStall ||
         e.cat == TraceCategory::kRendezvous;
}

TraceRun RunTraced(uint32_t shards, bool churn) {
  Tracer::Global().set_enabled(true);
  Tracer::Global().Reset();
  TraceRun out;
  {
    workload::Experiment exp(SmallConfig(shards, churn));
    const workload::ExperimentResult result = exp.Run();
    out.answers = result.answers_delivered;
  }  // destructor joins the worker threads; the tracer is quiesced
  EXPECT_EQ(Tracer::Global().DroppedEvents(), 0u);
  for (const TraceEvent& e : Tracer::Global().MergedEvents()) {
    if (!IsScheduleDependent(e)) out.events.push_back(e);
  }
  out.hist = Tracer::Global().AggregateHistograms();
  Tracer::Global().Reset();
  Tracer::Global().set_enabled(false);
  return out;
}

// The deterministic payload of an event: everything except wall_ns and the
// recording track (which depend on thread placement).
auto Signature(const TraceEvent& e) {
  return std::make_tuple(e.key_time, e.key_src, e.key_seq,
                         static_cast<uint32_t>(e.cat), e.kind, e.node, e.peer,
                         e.arg, e.vtime);
}

void ExpectSameTrace(const TraceRun& a, const TraceRun& b,
                     const std::string& label) {
  EXPECT_EQ(a.answers, b.answers) << label;
  ASSERT_EQ(a.events.size(), b.events.size()) << label;
  for (size_t i = 0; i < a.events.size(); ++i) {
    ASSERT_EQ(Signature(a.events[i]), Signature(b.events[i]))
        << label << ": merged event " << i << " diverges ("
        << stats::TraceCategoryName(a.events[i].cat) << " vs "
        << stats::TraceCategoryName(b.events[i].cat) << ")";
  }
  EXPECT_TRUE(a.hist.answer_latency.CountsEqual(b.hist.answer_latency))
      << label;
  EXPECT_TRUE(a.hist.rewrite_depth.CountsEqual(b.hist.rewrite_depth))
      << label;
  EXPECT_TRUE(a.hist.route_hops.CountsEqual(b.hist.route_hops)) << label;
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_EQ(a.hist.answer_latency.Percentile(p),
              b.hist.answer_latency.Percentile(p))
        << label << " p" << p;
  }
}

TEST(TraceDeterminismTest, MergedTraceIdenticalAcrossShardCounts) {
  const TraceRun s1 = RunTraced(1, /*churn=*/false);
  ASSERT_FALSE(s1.events.empty());
  EXPECT_GT(s1.answers, 0u);
  EXPECT_GT(s1.hist.answer_latency.count(), 0u);
  EXPECT_GT(s1.hist.route_hops.count(), 0u);
  EXPECT_GT(s1.hist.rewrite_depth.count(), 0u);
  const TraceRun s4 = RunTraced(4, /*churn=*/false);
  const TraceRun s7 = RunTraced(7, /*churn=*/false);
  ExpectSameTrace(s1, s4, "S=1 vs S=4");
  ExpectSameTrace(s1, s7, "S=1 vs S=7");
}

TEST(TraceDeterminismTest, MergedTraceIdenticalAcrossShardCountsUnderChurn) {
  const TraceRun s1 = RunTraced(1, /*churn=*/true);
  ASSERT_FALSE(s1.events.empty());
  bool saw_churn = false;
  for (const TraceEvent& e : s1.events) {
    if (e.cat == TraceCategory::kChurn) saw_churn = true;
  }
  EXPECT_TRUE(saw_churn) << "churn config produced no churn trace events";
  const TraceRun s4 = RunTraced(4, /*churn=*/true);
  const TraceRun s7 = RunTraced(7, /*churn=*/true);
  ExpectSameTrace(s1, s4, "churn S=1 vs S=4");
  ExpectSameTrace(s1, s7, "churn S=1 vs S=7");
}

TEST(TraceDeterminismTest, DisabledTracerStillFeedsHistograms) {
  Tracer::Global().set_enabled(false);
  Tracer::Global().Reset();
  {
    workload::Experiment exp(SmallConfig(1, /*churn=*/false));
    exp.Run();
  }
  EXPECT_TRUE(Tracer::Global().MergedEvents().empty());
  const Tracer::HistogramSet hist = Tracer::Global().AggregateHistograms();
  EXPECT_GT(hist.answer_latency.count(), 0u);
  EXPECT_GT(hist.route_hops.count(), 0u);
  Tracer::Global().Reset();
}

TEST(TraceExportTest, ChromeTraceCarriesAllCategories) {
  Tracer::Global().set_enabled(true);
  Tracer::Global().Reset();
  {
    workload::Experiment exp(SmallConfig(4, /*churn=*/true));
    exp.Run();
  }
  std::ostringstream os;
  Tracer::Global().WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Every category the small churny run must produce.
  for (const char* name : {"send", "route", "deliver", "rewrite", "answer",
                           "churn", "rendezvous"}) {
    EXPECT_NE(json.find(std::string("\"cat\":\"") + name + "\""),
              std::string::npos)
        << "missing category " << name;
  }
  // Balanced braces/brackets as a cheap well-formedness check (strings in
  // the trace never contain braces).
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  Tracer::Global().Reset();
  Tracer::Global().set_enabled(false);
}

}  // namespace
}  // namespace rjoin
