// Tests of the cached routing plane (dht/route_cache.h + Transport's
// SendKey/MultiSendKeys): entry round-trips against the greedy RoutePath
// ground truth, topology-generation invalidation after churn, the one-hop
// forwarding path for departed senders, hit/miss accounting, cached ==
// uncached delivery equivalence, and destination coalescing semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/interner.h"
#include "core/key.h"
#include "core/messages.h"
#include "dht/chord_network.h"
#include "dht/route_cache.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "stats/metrics.h"
#include "util/random.h"

namespace rjoin::dht {
namespace {

// Typed test payload: an AnswerDeliver whose query_id carries the value.
core::MessageTask TestMsg(int v) {
  core::AnswerDeliver msg;
  msg.query_id = static_cast<uint64_t>(v);
  return core::MessageTask(std::move(msg));
}

class Collector : public MessageHandler {
 public:
  void HandleMessage(NodeIndex self, core::MessageTask&& task) override {
    ASSERT_EQ(task.kind(), core::MessageKind::kAnswerDeliver);
    received.emplace_back(self, static_cast<int>(task.answer().query_id));
  }
  std::vector<std::pair<NodeIndex, int>> received;
};

// ------------------------------------------------------------ RouteCache --

TEST(RouteCacheTest, InsertLookupRoundTripsTheForwardingTail) {
  auto net = ChordNetwork::Create(64, 3);
  const auto alive = net->AliveNodes();
  RouteCache cache;
  const uint64_t gen = net->topology_generation();
  const NodeId ring_id = NodeId::FromKey("round-trip-key");
  const auto path = net->Route(alive[5], ring_id);
  ASSERT_GT(path.size(), 1u);

  cache.Insert(42, gen, path);
  const RouteCache::Entry* entry = cache.Lookup(42, gen);
  ASSERT_NE(entry, nullptr);
  // The entry is the full forwarding tail path[1..]: replaying it charges
  // the same nodes and draws the same latencies as the uncached walk.
  ASSERT_EQ(entry->hops, path.size() - 1);
  for (uint32_t i = 0; i < entry->hops; ++i) {
    EXPECT_EQ(entry->hop[i], path[i + 1]);
  }
  EXPECT_EQ(entry->hop[entry->hops - 1], net->SuccessorOf(ring_id));
}

TEST(RouteCacheTest, GenerationMismatchInvalidatesEveryEntry) {
  auto net = ChordNetwork::Create(32, 4);
  const auto alive = net->AliveNodes();
  RouteCache cache;
  for (uint32_t k = 0; k < 8; ++k) {
    cache.Insert(k, /*generation=*/0,
                 net->Route(alive[0], NodeId::FromKey("g" + std::to_string(k))));
  }
  ASSERT_NE(cache.Lookup(3, 0), nullptr);
  // One generation bump (any churn op) drops the whole table...
  EXPECT_EQ(cache.Lookup(3, 1), nullptr);
  for (uint32_t k = 0; k < 8; ++k) {
    EXPECT_EQ(cache.Lookup(k, 1), nullptr);
  }
  // ...and the table re-fills at the new generation.
  const auto path = net->Route(alive[0], NodeId::FromKey("g3"));
  cache.Insert(3, 1, path);
  const RouteCache::Entry* entry = cache.Lookup(3, 1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->hops, path.size() - 1);
}

TEST(RouteCacheTest, SelfRoutesAndOverlongPathsStayUncached) {
  RouteCache cache;
  // A self-route (source is responsible) has no forwarding tail.
  cache.Insert(1, 0, std::vector<NodeIndex>{7});
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  // Paths longer than kMaxCachedHops recompute every time.
  std::vector<NodeIndex> long_path(RouteCache::kMaxCachedHops + 2);
  for (size_t i = 0; i < long_path.size(); ++i) {
    long_path[i] = static_cast<NodeIndex>(i);
  }
  cache.Insert(2, 0, long_path);
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);
}

TEST(RouteCacheTest, AggregateCountsHitsAndMisses) {
  const RouteCache::Stats before = RouteCache::Aggregate();
  auto net = ChordNetwork::Create(16, 5);
  const auto alive = net->AliveNodes();
  RouteCache cache;
  EXPECT_EQ(cache.Lookup(9, 0), nullptr);  // miss
  const auto path = net->Route(alive[1], NodeId::FromKey("acct"));
  if (path.size() > 1) {
    cache.Insert(9, 0, path);
    EXPECT_NE(cache.Lookup(9, 0), nullptr);  // hit
    EXPECT_NE(cache.Lookup(9, 0), nullptr);  // hit
    const RouteCache::Stats after = RouteCache::Aggregate();
    EXPECT_EQ(after.hits - before.hits, 2u);
    EXPECT_EQ(after.misses - before.misses, 1u);
  }
}

TEST(RouteCacheTest, GrowsPastInitialCapacityWithoutLosingEntries) {
  RouteCache cache;
  std::vector<NodeIndex> path{1, 2, 3};  // tail {2, 3}
  for (uint32_t k = 0; k < 500; ++k) {
    cache.Insert(k, 0, path);
  }
  for (uint32_t k = 0; k < 500; ++k) {
    const RouteCache::Entry* e = cache.Lookup(k, 0);
    ASSERT_NE(e, nullptr) << k;
    EXPECT_EQ(e->hops, 2u);
  }
}

// -------------------------------------------------------- SuccessorCache --

TEST(SuccessorCacheTest, LookupMissesThenHitsAfterInsert) {
  const RouteCache::Stats before = RouteCache::Aggregate();
  SuccessorCache cache;
  EXPECT_EQ(cache.Lookup(7, /*generation=*/3), kInvalidNode);  // miss
  cache.Insert(7, 3, /*responsible=*/42);
  EXPECT_EQ(cache.Lookup(7, 3), 42u);  // hit
  EXPECT_EQ(cache.Lookup(7, 3), 42u);  // hit
  // Both cache levels share the process-wide counters.
  const RouteCache::Stats after = RouteCache::Aggregate();
  EXPECT_EQ(after.hits - before.hits, 2u);
  EXPECT_EQ(after.misses - before.misses, 1u);
}

TEST(SuccessorCacheTest, StaleGenerationMissesPerEntry) {
  SuccessorCache cache;
  cache.Insert(1, /*generation=*/5, 10);
  cache.Insert(2, /*generation=*/5, 11);
  // A topology bump does not clear the table; each entry simply fails its
  // per-lookup generation check until re-inserted under the new stamp.
  EXPECT_EQ(cache.Lookup(1, 6), kInvalidNode);
  EXPECT_EQ(cache.Lookup(2, 6), kInvalidNode);
  cache.Insert(1, 6, 20);
  EXPECT_EQ(cache.Lookup(1, 6), 20u);
  // The overwritten slot no longer answers for the old generation either.
  EXPECT_EQ(cache.Lookup(1, 5), kInvalidNode);
  // Untouched entries stay valid under their own stamp (a thread only ever
  // queries with its network's current generation, but the memo itself is
  // per-entry, not per-table).
  EXPECT_EQ(cache.Lookup(2, 5), 11u);
}

TEST(SuccessorCacheTest, GrowsToCoverLargeKeyIds) {
  SuccessorCache cache;
  cache.Insert(100000, /*generation=*/2, 9);
  EXPECT_EQ(cache.Lookup(100000, 2), 9u);
  EXPECT_EQ(cache.Lookup(99999, 2), kInvalidNode);  // neighbors untouched
}

TEST(SuccessorCacheTest, SweepBookkeepingTracksGenerations) {
  SuccessorCache cache;
  EXPECT_EQ(cache.swept_generation(), 0u);  // never swept
  cache.set_swept_generation(4);
  EXPECT_EQ(cache.swept_generation(), 4u);
}

// ----------------------------------------------------- Transport + cache --

class TransportCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = ChordNetwork::Create(32, 11);
    metrics_.Resize(net_->num_total());
    transport_ = std::make_unique<Transport>(net_.get(), &sim_, &latency_,
                                             &metrics_, Rng(5));
    transport_->set_handler(&collector_);
  }

  core::KeyId Intern(const std::string& text) {
    return core::KeyInterner::Global().Intern(text, core::Level::kValue);
  }

  std::unique_ptr<ChordNetwork> net_;
  sim::Simulator sim_;
  sim::FixedLatency latency_{1};
  stats::MetricsRegistry metrics_;
  std::unique_ptr<Transport> transport_;
  Collector collector_;
};

TEST_F(TransportCacheTest, WarmSendKeyIsBitIdenticalToColdSendKey) {
  const core::KeyId key = Intern("warm-vs-cold");
  const NodeIndex src = net_->AliveNodes()[0];
  const NodeIndex responsible =
      net_->SuccessorOf(core::KeyInterner::Global().ring_id(key));

  const size_t cold_hops = transport_->SendKey(src, key, TestMsg(1));
  sim_.Run();
  const uint64_t cold_messages = metrics_.total_messages();
  const sim::SimTime cold_elapsed = sim_.Now();

  // The second send resolves from the cache; hop count, per-hop traffic
  // charges, and delivery delay must replay the cold walk exactly.
  const size_t warm_hops = transport_->SendKey(src, key, TestMsg(2));
  sim_.Run();
  EXPECT_EQ(warm_hops, cold_hops);
  EXPECT_EQ(metrics_.total_messages() - cold_messages, cold_messages);
  EXPECT_EQ(sim_.Now() - cold_elapsed, cold_elapsed);
  ASSERT_EQ(collector_.received.size(), 2u);
  EXPECT_EQ(collector_.received[0].first, responsible);
  EXPECT_EQ(collector_.received[1].first, responsible);
}

TEST_F(TransportCacheTest, LeaveNodeInvalidatesTheCachedRoute) {
  const core::KeyId key = Intern("leave-invalidates");
  const NodeId ring_id = core::KeyInterner::Global().ring_id(key);
  NodeIndex src = net_->AliveNodes()[0];
  const NodeIndex old_responsible = net_->SuccessorOf(ring_id);
  if (src == old_responsible) src = net_->AliveNodes()[1];

  transport_->SendKey(src, key, TestMsg(1));  // warms the cache
  sim_.Run();

  // The responsible node departs: the topology generation bumps, so the
  // stale entry (ending at the dead node) is never replayed — the next
  // send re-walks and delivers to the spliced-in successor.
  ASSERT_TRUE(net_->LeaveNode(old_responsible).ok());
  const NodeIndex new_responsible = net_->SuccessorOf(ring_id);
  ASSERT_NE(new_responsible, old_responsible);

  collector_.received.clear();
  transport_->SendKey(src, key, TestMsg(2));
  sim_.Run();
  ASSERT_EQ(collector_.received.size(), 1u);
  EXPECT_EQ(collector_.received[0].first, new_responsible);
}

TEST_F(TransportCacheTest, DepartedSenderTakesOneHopForwarding) {
  const core::KeyId key = Intern("departed-sender");
  const NodeId ring_id = core::KeyInterner::Global().ring_id(key);
  const auto alive = net_->AliveNodes();
  NodeIndex src = alive[0];
  if (src == net_->SuccessorOf(ring_id)) src = alive[1];

  transport_->SendKey(src, key, TestMsg(1));  // warms the cache
  sim_.Run();

  // The *sender* departs. An in-flight handoff may still emit from it: the
  // post-churn forwarding rule charges exactly one transmission and hands
  // the message one hop to the current responsible, cache not consulted.
  ASSERT_TRUE(net_->LeaveNode(src).ok());
  const NodeIndex responsible = net_->SuccessorOf(ring_id);
  collector_.received.clear();
  const uint64_t before = metrics_.total_messages();
  const sim::SimTime t0 = sim_.Now();
  transport_->SendKey(src, key, TestMsg(2));
  sim_.Run();
  ASSERT_EQ(collector_.received.size(), 1u);
  EXPECT_EQ(collector_.received[0].first, responsible);
  EXPECT_EQ(metrics_.total_messages() - before, 1u);
  EXPECT_EQ(sim_.Now() - t0, 1u);  // FixedLatency(1), one hop
}

TEST_F(TransportCacheTest, DisabledCacheMatchesEnabledCacheExactly) {
  // Two identically seeded transports over identically seeded networks,
  // one with the cache killed: every delivery and every counter must be
  // bit-identical — the cache may change who computes the path, never the
  // path.
  auto net2 = ChordNetwork::Create(32, 11);
  stats::MetricsRegistry metrics2;
  metrics2.Resize(net2->num_total());
  sim::Simulator sim2;
  Collector collector2;
  Transport uncached(net2.get(), &sim2, &latency_, &metrics2, Rng(5));
  uncached.set_handler(&collector2);
  uncached.set_route_cache_enabled(false);

  Rng keys(77);
  for (int i = 0; i < 40; ++i) {
    const core::KeyId key =
        Intern("dis-vs-en:" + std::to_string(keys.Next() % 12));
    const NodeIndex src = net_->AliveNodes()[i % 32];
    const size_t hops_cached = transport_->SendKey(src, key, TestMsg(i));
    const size_t hops_plain = uncached.SendKey(src, key, TestMsg(i));
    EXPECT_EQ(hops_cached, hops_plain) << i;
  }
  sim_.Run();
  sim2.Run();
  EXPECT_EQ(collector_.received, collector2.received);
  EXPECT_EQ(metrics_.total_messages(), metrics2.total_messages());
  EXPECT_EQ(sim_.Now(), sim2.Now());
}

TEST_F(TransportCacheTest, MultiSendKeysCoalescesByDestination) {
  const NodeIndex src = net_->AliveNodes()[3];
  // A batch with deliberate destination repeats: 3 distinct keys, each
  // carried 4 times.
  std::vector<std::pair<core::KeyId, core::MessageTask>> batch;
  std::vector<NodeIndex> expect_dst;
  for (int i = 0; i < 12; ++i) {
    const core::KeyId key = Intern("coalesce:" + std::to_string(i % 3));
    batch.emplace_back(key, TestMsg(i));
    expect_dst.push_back(
        net_->SuccessorOf(core::KeyInterner::Global().ring_id(key)));
  }
  const Transport::CoalesceStats before = Transport::AggregateCoalesce();
  transport_->MultiSendKeys(src, &batch);
  EXPECT_TRUE(batch.empty());  // drained in place
  sim_.Run();

  // Every payload arrives at its own responsible node.
  ASSERT_EQ(collector_.received.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    const int v = collector_.received[i].second;
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 12);
    EXPECT_EQ(collector_.received[i].first,
              expect_dst[static_cast<size_t>(v)]);
  }

  // One wire message per distinct destination, all 12 payloads accounted.
  const Transport::CoalesceStats after = Transport::AggregateCoalesce();
  std::vector<NodeIndex> distinct = expect_dst;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  EXPECT_EQ(after.groups - before.groups, distinct.size());
  EXPECT_EQ(after.payloads - before.payloads, 12u);
}

}  // namespace
}  // namespace rjoin::dht
