#include <gtest/gtest.h>

#include "dht/load_balancer.h"
#include "stats/distribution.h"
#include "workload/experiment.h"
#include "workload/generator.h"

namespace rjoin::workload {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.num_nodes = 48;
  cfg.num_queries = 150;
  cfg.num_tuples = 60;
  cfg.way = 3;
  cfg.workload.num_relations = 6;
  cfg.workload.num_attributes = 4;
  cfg.workload.num_values = 25;
  cfg.seed = 5;
  return cfg;
}

TEST(WorkloadTest, CatalogHasRequestedShape) {
  WorkloadParams wp;
  auto catalog = BuildCatalog(wp);
  EXPECT_EQ(catalog->size(), 10u);
  const sql::Schema* r0 = catalog->Find("R0");
  ASSERT_NE(r0, nullptr);
  EXPECT_EQ(r0->arity(), 10u);
}

TEST(WorkloadTest, TupleGeneratorRespectsDomain) {
  WorkloadParams wp;
  wp.num_values = 7;
  auto catalog = BuildCatalog(wp);
  TupleGenerator gen(wp, catalog.get(), 3);
  for (int i = 0; i < 200; ++i) {
    auto d = gen.Next();
    EXPECT_NE(catalog->Find(d.relation), nullptr);
    for (const auto& v : d.values) {
      ASSERT_TRUE(v.is_int());
      EXPECT_GE(v.AsInt(), 0);
      EXPECT_LT(v.AsInt(), 7);
    }
  }
}

TEST(WorkloadTest, TupleGeneratorIsZipfSkewed) {
  WorkloadParams wp;
  wp.zipf_theta = 0.9;
  auto catalog = BuildCatalog(wp);
  TupleGenerator gen(wp, catalog.get(), 11);
  int r0_count = 0;
  const int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.Next().relation == "R0") ++r0_count;
  }
  // Under Zipf(0.9) over 10 relations, rank 0 has ~27% mass; uniform would
  // be 10%.
  EXPECT_GT(r0_count, kDraws / 5);
}

TEST(WorkloadTest, QueryGeneratorBuildsChains) {
  WorkloadParams wp;
  auto catalog = BuildCatalog(wp);
  QueryGenerator gen(wp, catalog.get(), 13);
  for (int i = 0; i < 50; ++i) {
    sql::Query q = gen.Next(4);
    EXPECT_EQ(q.relations.size(), 4u);
    EXPECT_EQ(q.joins.size(), 3u);
    // Chain property: join i connects relations i and i+1.
    for (size_t j = 0; j < q.joins.size(); ++j) {
      EXPECT_EQ(q.joins[j].left.relation, q.relations[j]);
      EXPECT_EQ(q.joins[j].right.relation, q.relations[j + 1]);
    }
    // Distinct relations.
    std::set<std::string> rels(q.relations.begin(), q.relations.end());
    EXPECT_EQ(rels.size(), 4u);
  }
}

TEST(WorkloadTest, QueryGeneratorAttachesWindow) {
  WorkloadParams wp;
  auto catalog = BuildCatalog(wp);
  QueryGenerator gen(wp, catalog.get(), 17);
  sql::WindowSpec w;
  w.use_windows = true;
  w.unit = sql::WindowSpec::Unit::kTuples;
  w.size = 99;
  sql::Query q = gen.Next(3, w);
  EXPECT_TRUE(q.window.use_windows);
  EXPECT_EQ(q.window.size, 99u);
}

TEST(ExperimentTest, RunsEndToEnd) {
  Experiment e(SmallConfig());
  auto result = e.Run();
  EXPECT_EQ(result.num_nodes, 48u);
  EXPECT_EQ(result.per_tuple.size(), 60u);
  EXPECT_GT(result.traffic_after_queries, 0u);
  EXPECT_GT(result.per_tuple.back().total_messages,
            result.traffic_after_queries);
  EXPECT_GT(result.MsgsPerNodePerTuple(), 0.0);
  // Cumulative series is monotone.
  for (size_t i = 1; i < result.per_tuple.size(); ++i) {
    EXPECT_GE(result.per_tuple[i].total_messages,
              result.per_tuple[i - 1].total_messages);
    EXPECT_GE(result.per_tuple[i].total_qpl,
              result.per_tuple[i - 1].total_qpl);
  }
}

TEST(ExperimentTest, DeterministicForSeed) {
  Experiment a(SmallConfig()), b(SmallConfig());
  auto ra = a.Run();
  auto rb = b.Run();
  EXPECT_EQ(ra.per_tuple.back().total_messages,
            rb.per_tuple.back().total_messages);
  EXPECT_EQ(ra.answers_delivered, rb.answers_delivered);
}

TEST(ExperimentTest, CheckpointsCaptured) {
  ExperimentConfig cfg = SmallConfig();
  cfg.checkpoints = {10, 30, 60};
  // Churn pinned off (not left to RJOIN_CHURN): the assertions below pin
  // the per-node snapshot width to the initial node count, which join
  // churn legitimately grows.
  cfg.churn = ChurnSpec{};
  Experiment e(cfg);
  auto result = e.Run();
  ASSERT_EQ(result.snapshots.size(), 3u);
  EXPECT_EQ(result.snapshots[0].after_tuples, 10u);
  EXPECT_EQ(result.snapshots[2].after_tuples, 60u);
  EXPECT_EQ(result.snapshots[0].qpl.size(), 48u);
  // Loads grow between checkpoints.
  uint64_t q10 = 0, q60 = 0;
  for (auto v : result.snapshots[0].qpl) q10 += v;
  for (auto v : result.snapshots[2].qpl) q60 += v;
  EXPECT_LT(q10, q60);
}

TEST(ExperimentTest, RicCheaperThanWorstCase) {
  ExperimentConfig cfg = SmallConfig();
  cfg.policy = core::PlannerPolicy::kRic;
  auto ric = Experiment(cfg).Run();
  cfg.policy = core::PlannerPolicy::kWorst;
  cfg.charge_ric = false;
  auto worst = Experiment(cfg).Run();
  EXPECT_LT(ric.per_tuple.back().total_qpl,
            worst.per_tuple.back().total_qpl);
}

TEST(ExperimentTest, WindowedRunStoresLessThanUnwindowed) {
  ExperimentConfig cfg = SmallConfig();
  cfg.num_tuples = 120;
  auto unwindowed = Experiment(cfg).Run();

  sql::WindowSpec w;
  w.use_windows = true;
  w.unit = sql::WindowSpec::Unit::kTuples;
  w.size = 10;
  cfg.window = w;
  cfg.sweep_every = 8;
  auto windowed = Experiment(cfg).Run();

  uint64_t stored_unwindowed = 0, stored_windowed = 0;
  for (auto v : unwindowed.final_snapshot.storage) stored_unwindowed += v;
  for (auto v : windowed.final_snapshot.storage) stored_windowed += v;
  EXPECT_LT(stored_windowed, stored_unwindowed);
}

TEST(ExperimentTest, IdMovementImprovesBalance) {
  // Two-phase Fig. 9 methodology: observe the key-load profile, rebalance
  // node positions, re-run the same workload.
  ExperimentConfig cfg = SmallConfig();
  cfg.num_tuples = 80;
  Experiment baseline(cfg);
  auto base_result = baseline.Run();
  auto profile = baseline.KeyLoadProfile();
  ASSERT_FALSE(profile.empty());

  ExperimentConfig balanced_cfg = cfg;
  balanced_cfg.node_positions =
      dht::IdMovementBalancer::ComputeBalancedPositions(profile,
                                                        cfg.num_nodes);
  Experiment balanced(balanced_cfg);
  auto bal_result = balanced.Run();

  auto base_dist = stats::MakeRanked(base_result.final_snapshot.storage);
  auto bal_dist = stats::MakeRanked(bal_result.final_snapshot.storage);
  // The hottest node sheds load and more nodes participate (Fig. 9 shape).
  EXPECT_LT(bal_dist.max(), base_dist.max());
  EXPECT_GE(bal_dist.participants(), base_dist.participants());
}

TEST(ScaleTest, ApplyScaleShrinksButFloors) {
  ExperimentConfig cfg;
  cfg.num_nodes = 1000;
  cfg.num_queries = 20000;
  cfg.ApplyScale(0.25);
  EXPECT_EQ(cfg.num_nodes, 250u);
  EXPECT_EQ(cfg.num_queries, 5000u);
  ExperimentConfig tiny;
  tiny.num_nodes = 20;
  tiny.num_queries = 20;
  tiny.ApplyScale(0.01);
  EXPECT_GE(tiny.num_nodes, 16u);
  EXPECT_GE(tiny.num_queries, 16u);
}

}  // namespace
}  // namespace rjoin::workload
