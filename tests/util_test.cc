#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "util/random.h"
#include "util/sha1.h"
#include "util/status.h"
#include "util/zipf.h"

namespace rjoin {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(),  Status::NotFound("").code(),
      Status::AlreadyExists("").code(),    Status::OutOfRange("").code(),
      Status::FailedPrecondition("").code(), Status::Unimplemented("").code(),
      Status::Internal("").code(),
  };
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(3);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo |= (v == -2);
    hi |= (v == 2);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(42);
  Rng fork1 = a.Fork();
  Rng b(42);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fork1.Next(), fork2.Next());
}

// ------------------------------------------------------------------ Zipf --

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(100, 0.9);
  double sum = 0;
  for (uint64_t r = 0; r < 100; ++r) sum += z.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (uint64_t r = 0; r < 10; ++r) EXPECT_NEAR(z.Pmf(r), 0.1, 1e-12);
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  ZipfDistribution mild(100, 0.3), hot(100, 0.9);
  EXPECT_GT(hot.Pmf(0), mild.Pmf(0));
  EXPECT_LT(hot.Pmf(99), mild.Pmf(99));
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfDistribution z(50, 0.7);
  for (uint64_t r = 1; r < 50; ++r) EXPECT_LE(z.Pmf(r), z.Pmf(r - 1));
}

TEST(ZipfTest, SampleMatchesPmfRoughly) {
  ZipfDistribution z(10, 0.9);
  Rng rng(17);
  std::map<uint64_t, int> counts;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.Sample(rng)];
  for (uint64_t r = 0; r < 10; ++r) {
    const double observed = static_cast<double>(counts[r]) / kDraws;
    EXPECT_NEAR(observed, z.Pmf(r), 0.01) << "rank " << r;
  }
}

TEST(ZipfTest, SingletonDomain) {
  ZipfDistribution z(1, 0.9);
  Rng rng(1);
  EXPECT_EQ(z.Sample(rng), 0u);
  EXPECT_NEAR(z.Pmf(0), 1.0, 1e-12);
}

// ------------------------------------------------------------------ SHA1 --

TEST(Sha1Test, KnownVectors) {
  // FIPS-180 test vectors.
  EXPECT_EQ(Sha1ToHex(Sha1("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1ToHex(Sha1("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1ToHex(Sha1(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edges must not crash and must
  // produce distinct digests.
  std::set<std::string> digests;
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    digests.insert(Sha1ToHex(Sha1(std::string(len, 'x'))));
  }
  EXPECT_EQ(digests.size(), 10u);
}

TEST(Sha1Test, LongInput) {
  // "a" * 1,000,000 from FIPS-180.
  EXPECT_EQ(Sha1ToHex(Sha1(std::string(1000000, 'a'))),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, AvalancheOnSingleBitChange) {
  const auto a = Sha1("key:1");
  const auto b = Sha1("key:2");
  int differing_words = 0;
  for (int i = 0; i < 5; ++i) {
    if (a[i] != b[i]) ++differing_words;
  }
  EXPECT_EQ(differing_words, 5);
}

}  // namespace
}  // namespace rjoin
